// Incremental distributed backup — the paper's future-work items working
// together (Section VI-A):
//
//  * a large archive is shared in coding units; when a few bytes change,
//    only the touched units are re-encoded and re-disseminated
//    ("an efficient means of handling rapid changes and modifications");
//  * the user carries a 36-byte Merkle root per unit instead of a digest
//    table ("minimizing the amount of meta-data that the user needs to
//    carry around");
//  * restore works from any k messages per unit, mixing old and new
//    generations correctly.
#include <cstdio>
#include <vector>

#include "coding/merkle_auth.hpp"
#include "coding/update.hpp"
#include "core/fairshare.hpp"
#include "sim/rng.hpp"

using namespace fairshare;

namespace {

std::vector<std::byte> make_blob(std::size_t n, std::uint64_t seed) {
  sim::SplitMix64 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte{static_cast<std::uint8_t>(rng.next())};
  return out;
}

}  // namespace

int main() {
  constexpr std::size_t kUnit = 256 * 1024;  // scaled-down "1 MB" units
  const coding::CodingParams params{gf::FieldId::gf2_32, 1u << 12};
  coding::SecretKey secret{};
  secret[0] = 42;

  // Day 0: back up a 1 MiB archive as 4 units.
  auto archive = make_blob(4 * kUnit, 1);
  coding::ChunkedEncoder encoder(secret, 1000, archive, params, kUnit);
  std::vector<std::vector<coding::EncodedMessage>> stored(encoder.units());
  std::size_t day0_bytes = 0;
  for (std::size_t u = 0; u < encoder.units(); ++u) {
    stored[u] = encoder.unit(u).generate(encoder.unit(u).k());
    for (const auto& m : stored[u]) day0_bytes += m.wire_size();
  }
  coding::ChunkedFileInfo metadata = encoder.info();
  std::printf("day 0: backed up %zu KiB as %zu units (%zu KiB coded)\n",
              archive.size() / 1024, encoder.units(), day0_bytes / 1024);

  // The user's pocket metadata: one Merkle root per unit.
  std::vector<coding::MerkleAuthenticator> auths;
  std::size_t carried = 0;
  for (std::size_t u = 0; u < stored.size(); ++u) {
    auths.emplace_back(stored[u]);
    carried += 36;  // root + leaf count
  }
  const std::size_t table_equivalent =
      [&] {
        std::size_t total = 0;
        for (const auto& unit : metadata.units)
          total += unit.message_digests.size() * 16;
        return total;
      }();
  std::printf("user carries %zu bytes of Merkle roots (digest table would "
              "be %zu bytes)\n",
              carried, table_equivalent);

  // Day 1: a small edit inside unit 2.
  archive[2 * kUnit + 1234] ^= std::byte{0x7F};
  const coding::UpdatePlan plan = coding::plan_update(metadata, archive);
  std::printf("day 1: edit detected in %zu of %zu units\n",
              plan.changed_units.size(), plan.new_unit_count);

  coding::FileUpdate update =
      coding::apply_update(secret, metadata, archive, 2000);
  std::size_t day1_bytes = 0;
  for (std::size_t e = 0; e < update.encoders.size(); ++e) {
    const std::size_t u = update.changed_units[e];
    stored[u] = update.encoders[e]->generate(update.encoders[e]->k());
    update.info.units[u] = update.encoders[e]->info();
    auths[u] = coding::MerkleAuthenticator(stored[u]);
    for (const auto& m : stored[u]) day1_bytes += m.wire_size();
  }
  metadata = update.info;
  std::printf("day 1: re-disseminated %zu KiB (full backup would resend "
              "%zu KiB) — %.0fx saving\n",
              day1_bytes / 1024, day0_bytes / 1024,
              static_cast<double>(day0_bytes) /
                  static_cast<double>(day1_bytes));

  // Restore: verify every stored message against the carried roots, then
  // decode all units.
  coding::ChunkedDecoder decoder(secret, metadata);
  std::size_t verified = 0;
  for (std::size_t u = 0; u < stored.size(); ++u) {
    const coding::MerkleVerifier verifier(auths[u].root(),
                                          auths[u].leaf_count());
    for (std::size_t i = 0; i < stored[u].size(); ++i) {
      const auto am = auths[u].attach(stored[u][i], i);
      if (!verifier.verify(am)) {
        std::printf("verification failure at unit %zu message %zu!\n", u, i);
        return 1;
      }
      ++verified;
      decoder.add(am.message);
    }
  }
  if (!decoder.complete()) {
    std::printf("restore incomplete!\n");
    return 1;
  }
  const bool exact = decoder.reconstruct() == archive;
  std::printf("restore: %zu messages Merkle-verified, archive %s\n", verified,
              exact ? "EXACT (including the day-1 edit)" : "CORRUPT");
  return exact ? 0 : 1;
}
