// Quickstart: share a file into the peer network, then download it from
// everywhere at once — faster than your home uplink.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Walks the three phases of the paper's system:
//   1. initialization — the owner's machine trickles secret-keyed coded
//      messages to the other peers while its uplink is idle;
//   2. access — the user, at a remote machine, opens authenticated
//      sessions to every peer and pulls coded messages in parallel;
//   3. reconstruction — k innovative messages decode the exact file.
#include <cstdio>
#include <vector>

#include "core/fairshare.hpp"
#include "sim/rng.hpp"

using namespace fairshare;

int main() {
  // --- a 5-peer neighborhood; everyone has a 256 kbps uplink -------------
  std::vector<p2p::PeerParams> peers(5);
  for (auto& p : peers) p.upload_kbps = 256.0;

  p2p::SystemConfig config;
  config.auth = p2p::AuthMode::full;  // real RSA challenge-response
  config.rsa_bits = 512;              // demo-grade keys
  p2p::System network(std::move(peers), config);

  // --- the file: 512 KiB of "home video" ---------------------------------
  sim::SplitMix64 rng(7);
  std::vector<std::byte> video(512 * 1024);
  for (auto& b : video) b = std::byte{static_cast<std::uint8_t>(rng.next())};

  // Paper parameters scaled to the file: q = 2^32, m = 2^12 (16 KiB
  // messages), so k = 32 chunks.
  const coding::CodingParams params{gf::FieldId::gf2_32, 1u << 12};
  const p2p::PeerId owner = 0;
  network.share_file(owner, /*file_id=*/1, video, params);
  std::printf("sharing %zu KiB as k=%zu coded chunks of %zu KiB\n",
              video.size() / 1024, coding::chunks_for_bytes(video.size(), params),
              params.message_bytes() / 1024);

  // --- phase 1: dissemination while idle ---------------------------------
  while (network.dissemination_progress(1) < 1.0) network.run(500);
  std::printf("dissemination complete at t=%llu s; each peer stores %zu KiB\n",
              static_cast<unsigned long long>(network.now()),
              network.store_bytes(1) / 1024);

  // --- phase 2: the user requests the file from a remote location --------
  const auto request = network.request_file(owner, 1, /*download_kbps=*/3000);
  network.run_until_complete(request, 100000);

  // --- phase 3: verify and report ----------------------------------------
  const auto& stats = network.stats(request);
  const double seconds =
      static_cast<double>(stats.completed_slot - stats.started_slot);
  const double rate = static_cast<double>(video.size()) * 8.0 / 1000.0 / seconds;
  std::printf("downloaded in %.0f s at %.0f kbps (uplink alone: 256 kbps)\n",
              seconds, rate);
  std::printf("messages: %zu innovative, %zu duplicate, %zu rejected\n",
              stats.messages_accepted, stats.messages_non_innovative,
              stats.messages_bad_digest);

  const bool intact = network.data(request) == video;
  std::printf("reconstruction %s; speedup over single uplink: %.1fx\n",
              intact ? "EXACT" : "CORRUPT", rate / 256.0);
  return intact && rate > 256.0 ? 0 : 1;
}
