// A real swarm on localhost: five peer processes-worth of servers on TCP
// ports, RSA-authenticated sessions, coded messages as actual bytes on
// actual sockets, and the aggregation effect measured with wall-clock time
// (each peer paced to a consumer-uplink rate).
//
// This is the paper's Figure 4 made literal: the "user at computer d"
// is the download client; the peers are PeerServer instances.
#include <cstdio>
#include <memory>
#include <vector>

#include "coding/encoder.hpp"
#include "crypto/chacha20.hpp"
#include "net/download_client.hpp"
#include "net/peer_server.hpp"
#include "sim/rng.hpp"

using namespace fairshare;

int main() {
  // --- identities ---------------------------------------------------------
  std::array<std::uint8_t, 32> seed_key{};
  seed_key[0] = 5;
  std::array<std::uint8_t, 12> nonce{};
  crypto::ChaCha20 key_rng(seed_key, nonce, 0);
  const crypto::RsaKeyPair user_key = crypto::RsaKeyPair::generate(512, key_rng);
  std::vector<crypto::RsaKeyPair> peer_keys;
  const std::size_t n_peers = 5;
  for (std::size_t i = 0; i < n_peers; ++i)
    peer_keys.push_back(crypto::RsaKeyPair::generate(512, key_rng));
  std::printf("generated 1 user + %zu peer RSA identities\n", n_peers);

  // --- the file and its coded dissemination ------------------------------
  sim::SplitMix64 rng(42);
  std::vector<std::byte> file(512 * 1024);  // 512 KiB "holiday photos"
  for (auto& b : file) b = std::byte{static_cast<std::uint8_t>(rng.next())};
  coding::SecretKey secret{};
  secret[0] = 99;
  const coding::CodingParams params{gf::FieldId::gf2_32, 1u << 12};  // 16 KiB
  coding::FileEncoder encoder(secret, 1, file, params);

  const double uplink_kbps = 1024.0;  // consumer-ish uplink per peer
  std::vector<std::unique_ptr<net::PeerServer>> servers;
  std::vector<net::PeerEndpoint> endpoints;
  for (std::size_t p = 0; p < n_peers; ++p) {
    p2p::MessageStore store;
    for (auto& m : encoder.generate(encoder.k())) store.store(std::move(m));
    net::PeerServer::Config config;
    config.peer_id = p;
    config.rate_kbps = uplink_kbps;
    config.require_auth = true;
    config.rng_seed = 1000 + p;
    auto server = std::make_unique<net::PeerServer>(config, std::move(store),
                                                    peer_keys[p]);
    server->register_user(7, user_key.pub);
    if (!server->start()) {
      std::printf("failed to bind a port\n");
      return 1;
    }
    net::PeerEndpoint ep;
    ep.port = server->port();
    ep.peer_id = p;
    ep.identity = peer_keys[p].pub;
    endpoints.push_back(ep);
    servers.push_back(std::move(server));
    std::printf("peer %zu serving %zu coded messages on 127.0.0.1:%u at "
                "%.0f kbps\n",
                p, encoder.k(), ep.port, uplink_kbps);
  }

  // --- the remote user pulls from everyone at once ------------------------
  net::DownloadOptions options;
  options.user_id = 7;
  options.user_key = &user_key;
  const net::DownloadReport swarm_report =
      net::download_file(endpoints, secret, encoder.info(), options);
  if (!swarm_report.success) {
    std::printf("swarm download failed (%zu sessions failed)\n",
                swarm_report.sessions_failed);
    return 1;
  }
  const double swarm_kbps =
      file.size() * 8.0 / 1000.0 / swarm_report.seconds;

  // --- compare with a single-peer (home-uplink-only) download -------------
  const std::vector<net::PeerEndpoint> single{endpoints[0]};
  const net::DownloadReport single_report =
      net::download_file(single, secret, encoder.info(), options);
  const double single_kbps =
      single_report.success
          ? file.size() * 8.0 / 1000.0 / single_report.seconds
          : 0.0;

  const bool intact = swarm_report.data == file;
  std::printf("\nswarm : %zu messages in %.2f s -> %.0f kbps (%s)\n",
              swarm_report.messages_accepted, swarm_report.seconds,
              swarm_kbps, intact ? "EXACT" : "CORRUPT");
  std::printf("single: %.2f s -> %.0f kbps\n", single_report.seconds,
              single_kbps);
  std::printf("aggregation speedup over one uplink: %.1fx (peers: %zu)\n",
              swarm_kbps / single_kbps, n_peers);

  for (auto& s : servers) s->stop();
  return (intact && swarm_kbps > 1.5 * single_kbps) ? 0 : 1;
}
