// Remote photo access with hostile peers: the "My Pictures" scenario of
// Figure 1, plus the security machinery of Section III-C.
//
// A user's photo folder is shared across a neighborhood that contains one
// peer serving corrupted data and one peer impersonating another identity.
// The download still reconstructs exactly, every forged message is caught
// by the per-message MD5 digests, and the impersonator never passes the
// RSA challenge-response handshake.
#include <cstdio>
#include <vector>

#include "core/fairshare.hpp"
#include "sim/rng.hpp"

using namespace fairshare;

int main() {
  // 6 peers: #2 tampers with payloads it serves, #4 impersonates.
  std::vector<p2p::PeerParams> peers(6);
  for (auto& p : peers) p.upload_kbps = 384.0;
  peers[2].tampers = true;
  peers[4].impersonates = true;

  p2p::SystemConfig config;
  config.auth = p2p::AuthMode::full;
  config.rsa_bits = 512;
  config.seed = 99;
  p2p::System network(std::move(peers), config);

  // A 3-photo folder (numbers scaled down for a quick demo).
  sim::SplitMix64 rng(23);
  const std::size_t photo_sizes[] = {180 * 1024, 240 * 1024, 150 * 1024};
  std::vector<std::vector<std::byte>> photos;
  const coding::CodingParams params{gf::FieldId::gf2_32, 1u << 11};  // 8 KiB msgs
  const p2p::PeerId owner = 5;
  for (std::size_t i = 0; i < 3; ++i) {
    std::vector<std::byte> photo(photo_sizes[i]);
    for (auto& b : photo) b = std::byte{static_cast<std::uint8_t>(rng.next())};
    network.share_file(owner, 10 + i, photo, params);
    photos.push_back(std::move(photo));
  }
  while (network.dissemination_progress(12) < 1.0) network.run(500);
  std::printf("photos disseminated by t=%llu s\n",
              static_cast<unsigned long long>(network.now()));

  std::size_t forged_caught = 0, auth_blocked = 0;
  bool all_exact = true;
  for (std::size_t i = 0; i < 3; ++i) {
    const auto req = network.request_file(owner, 10 + i, 4000.0);
    if (!network.run_until_complete(req, 100000)) {
      std::printf("photo %zu did not complete\n", i);
      return 1;
    }
    const auto& stats = network.stats(req);
    const bool exact = network.data(req) == photos[i];
    all_exact = all_exact && exact;
    forged_caught += stats.messages_bad_digest;
    auth_blocked += stats.auth_failures;
    std::printf("photo %zu: %s in %llu s — %zu innovative, %zu forged "
                "(rejected), %zu peers failed auth\n",
                i, exact ? "EXACT" : "CORRUPT",
                static_cast<unsigned long long>(stats.completed_slot -
                                                stats.started_slot),
                stats.messages_accepted, stats.messages_bad_digest,
                stats.auth_failures);
  }

  std::printf("\nsecurity summary: %zu forged messages caught by MD5 "
              "digests, impersonator blocked %zu times by the "
              "challenge-response handshake\n",
              forged_caught, auth_blocked);
  const bool defended = forged_caught > 0 && auth_blocked == 3 && all_exact;
  std::printf("defense verdict: %s\n", defended ? "HELD" : "BREACHED");
  return defended ? 0 : 1;
}
