// Home-video streaming (the paper's Section III-D scenario): a large video
// is split into 1 MB-class units, each encoded as its own coded file, so a
// remote user can start playback after the first unit decodes instead of
// waiting for the whole download.
//
// Demonstrates ChunkedEncoder/ChunkedDecoder layered over the p2p system
// (one shared file per unit) and reports per-unit "playback ready" times.
#include <cstdio>
#include <vector>

#include "core/fairshare.hpp"
#include "sim/rng.hpp"

using namespace fairshare;

int main() {
  // 2 MiB "video", four 512 KiB streaming units (scaled-down 1 MB chunks
  // to keep the demo quick).
  constexpr std::size_t kUnitBytes = 512 * 1024;
  sim::SplitMix64 rng(11);
  std::vector<std::byte> video(4 * kUnitBytes);
  for (auto& b : video) b = std::byte{static_cast<std::uint8_t>(rng.next())};

  const coding::CodingParams params{gf::FieldId::gf2_32, 1u << 12};

  // 6 peers; the video owner has the typical slow uplink.
  std::vector<p2p::PeerParams> peers(6);
  for (auto& p : peers) p.upload_kbps = 512.0;
  peers[0].upload_kbps = 256.0;  // the owner's cable-modem uplink

  p2p::SystemConfig config;
  config.auth = p2p::AuthMode::disabled;  // keep the demo fast
  p2p::System network(std::move(peers), config);

  // Share each unit as its own coded file: unit u -> file id 100 + u.
  const std::size_t units = video.size() / kUnitBytes;
  for (std::size_t u = 0; u < units; ++u) {
    network.share_file(0, 100 + u,
                       std::span<const std::byte>(video).subspan(
                           u * kUnitBytes, kUnitBytes),
                       params);
  }
  while (network.dissemination_progress(100 + units - 1) < 1.0)
    network.run(1000);
  std::printf("video disseminated by t=%llu s (%zu units)\n",
              static_cast<unsigned long long>(network.now()), units);

  // The user streams: request unit u, play it while unit u+1 downloads.
  // Low-resolution home video (Figure 1's middle callout) ~ 800 kbps.
  const double playback_kbps = 800.0;
  std::vector<std::byte> received;
  double total_stall_s = 0.0;
  const std::uint64_t t_start = network.now();
  for (std::size_t u = 0; u < units; ++u) {
    const std::uint64_t t0 = network.now();
    const auto req = network.request_file(0, 100 + u, 8000.0);
    if (!network.run_until_complete(req, 100000)) {
      std::printf("unit %zu failed to download\n", u);
      return 1;
    }
    const double dl_s = static_cast<double>(network.now() - t0);
    const double play_s = kUnitBytes * 8.0 / 1000.0 / playback_kbps;
    // Stall if the unit took longer to fetch than the previous unit plays.
    if (u > 0 && dl_s > play_s) total_stall_s += dl_s - play_s;
    const auto unit_data = network.data(req);
    received.insert(received.end(), unit_data.begin(), unit_data.end());
    std::printf("unit %zu ready after %.0f s (plays for %.0f s)%s\n", u, dl_s,
                play_s, u == 0 ? "  <- playback starts here" : "");
  }

  const bool intact = received == video;
  const double elapsed = static_cast<double>(network.now() - t_start);
  const double swarm_rate = video.size() * 8.0 / 1000.0 / elapsed;
  std::printf("\nfull video: %s, fetched at %.0f kbps aggregate "
              "(owner uplink 256 kbps), stalls %.0f s\n",
              intact ? "EXACT" : "CORRUPT", swarm_rate, total_stall_s);
  std::printf("streaming verdict: playback %s sustainable at %.0f kbps\n",
              swarm_rate >= playback_kbps ? "IS" : "IS NOT", playback_kbps);
  return intact ? 0 : 1;
}
