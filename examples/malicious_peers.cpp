// Fairness under attack: a rate-level tour of Section IV's guarantees.
//
// One network, four behaviors: honest Equation-(2) peers, a free rider, a
// capacity liar, and a two-peer coalition.  The run prints each user's
// long-run download against its isolated baseline and against Theorem 1's
// lower bound — the attacks hurt only the attackers.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/fairshare.hpp"

using namespace fairshare;

int main() {
  const std::size_t n = 8;
  const double mu = 600.0;

  core::Scenario sc;
  std::vector<std::string> role(n, "honest (Eq. 2)");
  for (std::size_t i = 0; i < n; ++i) {
    sc.add_peer(mu);
    sc.demand(i, std::make_shared<sim::BernoulliDemand>(0.7, 40 + i));
  }
  // Peer 1: free rider — requests like everyone, uploads nothing.
  sc.policy(1, std::make_shared<alloc::FreeRiderPolicy>());
  role[1] = "free rider";
  // Peer 2: liar — declares 10x capacity (matters only under Eq. 3; shown
  // here to be harmless under Eq. 2).
  sc.declares(2, 10 * mu);
  role[2] = "capacity liar";
  // Peers 3+4: coalition — each serves only coalition members.
  for (std::size_t i : {3u, 4u}) {
    sc.policy(i, std::make_shared<alloc::CoalitionPolicy>(
                     std::vector<std::size_t>{3, 4}));
    role[i] = "coalition {3,4}";
  }

  sim::Simulator sim = sc.build();
  sim.run(40000);

  // Theorem 1 guarantees the bound for every peer that *follows rule (2)*
  // when serving — the free rider refuses to serve even its own user, so
  // it forfeits its own guarantee (self-inflicted; marked "n/a").
  std::printf("%-4s %-16s %10s %10s %10s %8s\n", "peer", "role", "isolated",
              "bound", "measured", "ok");
  bool honest_all_gain = true, bound_all_hold = true;
  for (std::size_t i = 0; i < n; ++i) {
    const sim::IncentiveBound b = sim::incentive_bound(sim, i);
    const bool follows_rule = (i != 1);  // everyone but the free rider
    const bool ok = b.average_download >= 0.97 * b.bound;
    if (follows_rule) bound_all_hold = bound_all_hold && ok;
    if (role[i] == "honest (Eq. 2)" &&
        b.average_download < sim.isolated_average(i))
      honest_all_gain = false;
    std::printf("%-4zu %-16s %10.1f %10.1f %10.1f %8s\n", i, role[i].c_str(),
                b.isolated, b.bound, b.average_download,
                follows_rule ? (ok ? "yes" : "NO") : "n/a");
  }

  const double rider = sim.download(1).mean(30000, 40000);
  const double honest = sim.download(0).mean(30000, 40000);
  std::printf("\nfree rider tail rate: %.1f kbps vs honest %.1f kbps\n",
              rider, honest);
  std::printf("honest users all gain over isolation: %s\n",
              honest_all_gain ? "yes" : "no");
  std::printf("Theorem 1 bound holds for every rule-following user\n"
              "(incl. the liar and the coalition): %s\n",
              bound_all_hold ? "yes" : "no");
  return (honest_all_gain && bound_all_hold && rider < 0.25 * honest) ? 0 : 1;
}
