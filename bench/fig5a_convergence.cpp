// Figure 5(a): ten saturated users; download rates start from a random-
// looking transient and converge to each peer's own upload capacity.
//
// "Ten users request large files from the system.  Their download rate
// converges to the upload rate (U/L) of their corresponding peers."
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/scenario.hpp"
#include "sim/rng.hpp"

int main() {
  using namespace fairshare;
  bench::header("Figure 5(a)",
                "10 saturated users, uploads 100..1000 kbps, Equation (2)");

  std::vector<double> uploads;
  std::vector<std::string> labels;
  for (int i = 1; i <= 10; ++i) {
    uploads.push_back(100.0 * i);
    labels.push_back("UL" + std::to_string(100 * i) + "kbps");
  }
  // "peer-wise random initial allocation" (figure caption): each peer
  // seeds its contribution ledger with random positive credit, producing
  // the paper's visibly random early transient before convergence.
  core::Scenario scenario = core::saturated_scenario(uploads, 1.0);
  sim::SplitMix64 seed_rng(2006);
  for (std::size_t i = 0; i < uploads.size(); ++i) {
    std::vector<double> ledger(uploads.size());
    for (auto& v : ledger) v = 1.0 + 5000.0 * seed_rng.next_double();
    scenario.policy(
        i, std::make_shared<alloc::ProportionalContributionPolicy>(
               std::move(ledger)));
  }
  sim::Simulator sim = scenario.build();
  sim.run(3500);

  bench::print_download_series(sim, 10, 100, labels);
  bench::ascii_chart(sim, 50, labels);

  // Shape checks: tail rates converge toward own upload, ordered by mu.
  // With random initial credit the residual decays like 1/t (the paper's
  // "slow dynamics"), so a 10% band at t = 3000..3500 matches the figure.
  bool converged = true, ordered = true;
  double prev_tail = 0.0;
  for (std::size_t i = 0; i < sim.n(); ++i) {
    const double tail = sim.download(i).mean(3000, 3500);
    if (std::abs(tail - uploads[i]) > 0.10 * uploads[i]) converged = false;
    if (tail < prev_tail) ordered = false;
    prev_tail = tail;
  }
  bench::shape_check(converged,
                     "every user's tail download is within 10% of its own "
                     "upload capacity (rates commensurate with uploads)");
  bench::shape_check(ordered, "tail downloads are ordered like the uploads");

  // The transient exists: early downloads differ from the fixed point.
  double early_gap = 0.0;
  for (std::size_t i = 0; i < sim.n(); ++i)
    early_gap =
        std::max(early_gap, std::abs(sim.download(i).mean(0, 50) - uploads[i]) /
                                uploads[i]);
  bench::shape_check(early_gap > 0.10,
                     "initial allocation is far from the fair point "
                     "(visible convergence transient)");
  return 0;
}
