// Ablation A4: fairness vs allocation granularity (Section III-D).
//
// "we also wish to avoid large message sizes m, which dilute our notion of
// fairness ... by introducing quantization errors when nodes divide up
// their upload bandwidth amongst requesting users."  Peers serve whole
// messages, so the allocation quantum is one message per slot: m*p bits.
// We sweep the quantum and measure both fairness dilution and wasted
// (floored-away) bandwidth.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/scenario.hpp"
#include "sim/metrics.hpp"

namespace {

using namespace fairshare;

struct QuantResult {
  double jain;
  double waste_fraction;  // offered bandwidth lost to flooring
};

QuantResult run(double quantum_kbps) {
  // Deliberately uneven uploads so fair shares are non-round numbers.
  const std::vector<double> uploads{130, 270, 410, 550, 690};
  core::Scenario sc = core::saturated_scenario(uploads, 1.0);
  sc.quantum(quantum_kbps);
  sim::Simulator sim = sc.build();
  sim.run(6000);

  std::vector<double> ratios;
  double delivered = 0, offered = 0;
  for (std::size_t i = 0; i < sim.n(); ++i) {
    ratios.push_back(sim.download(i).mean(4000, 6000) / uploads[i]);
    delivered += sim.average_download(i);
    offered += sim.offered(i).mean();
  }
  return {sim::jain_index(ratios), 1.0 - delivered / offered};
}

}  // namespace

int main() {
  bench::header("Ablation A4",
                "fairness dilution vs allocation quantum (Section III-D)");

  // Quanta corresponding to one message per slot for m*p = 2^11..2^16
  // bits; pairwise fair-point flows here range ~8..230 kbps, so the top
  // quanta visibly distort shares without zeroing everything.
  std::printf("quantum_kbps,jain_index,wasted_fraction\n");
  std::vector<double> quanta{0.0, 2.0, 8.0, 33.0, 66.0};
  double jain_fine = 0, jain_coarse = 0, waste_coarse = 0;
  for (double q : quanta) {
    const QuantResult r = run(q);
    std::printf("%.0f,%.5f,%.4f\n", q, r.jain, r.waste_fraction);
    if (q == 0.0) jain_fine = r.jain;
    if (q == 66.0) {
      jain_coarse = r.jain;
      waste_coarse = r.waste_fraction;
    }
  }

  bench::shape_check(jain_fine > 0.999,
                     "continuous allocation is essentially perfectly fair");
  bench::shape_check(jain_coarse < jain_fine,
                     "large quanta (large m) dilute fairness, as Section "
                     "III-D warns");
  bench::shape_check(waste_coarse > 0.05,
                     "coarse quanta also waste meaningful bandwidth to "
                     "flooring — the reason to cap m and chunk files at 1 MB");
  return 0;
}
