// Extension: chunked vs dense decode at file sizes the paper never ran.
//
// Dense RLNC decode is O(k^2 * m) field operations, which is fine at the
// paper's 1 MB / k = 8 operating point and crippling at k = 8192 (1 GB):
// the coefficient matrix alone stops fitting in cache and every new row
// eliminates against thousands of pivots.  The overlapping-class codec
// (coding/chunked.hpp) bounds every elimination to one class of
// `class_size` chunks, so decode cost grows linearly with file size.
// This bench measures both codecs' decode throughput and reception
// overhead (messages consumed beyond k) at 10 MB / 100 MB / 1 GB, plus an
// opt-in 10 GB point (FAIRSHARE_BENCH_10G=1).
//
// Decode work only: instead of running the O(k^2 * m) dense *encode* to
// produce a measurable stream, both decoders are fed synthetic messages —
// sequential ids whose coefficient rows come from the real secret-keyed
// ChaCha generator, over one shared payload buffer — with digest checks
// relaxed.  Elimination cost depends only on the coefficient rows, never
// on payload content, so the timings match a real stream while setup
// stays O(file size).
//
// Wired into BENCH_kernels.json by the bench_baseline target as two
// sections: runs.chunked_decode (10/100 MB, refreshed and compared in
// CI's bench-smoke) and runs.chunked_decode_huge (the 1 GB acceptance
// point and the optional 10 GB one; baseline-only, too slow for CI).
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <vector>

#include "coding/chunked.hpp"
#include "coding/decoder.hpp"
#include "coding/params.hpp"
#include "sim/rng.hpp"

namespace {

using namespace fairshare;

// The paper's field/message geometry (Section III-C): 128 KiB messages
// over GF(2^32), so 1 GB lands at k = 8192.
const coding::CodingParams kParams{gf::FieldId::gf2_32, 1u << 15};

coding::SecretKey bench_secret() {
  coding::SecretKey s{};
  s[0] = 99;
  return s;
}

coding::FileInfo synthetic_info(std::size_t bytes, coding::CodecKind codec) {
  coding::FileInfo info;
  info.file_id = 1;
  info.original_bytes = bytes;
  info.params = kParams;
  info.k = coding::chunks_for_bytes(bytes, kParams);
  info.codec = codec;  // chunked keeps the default 64/8 schedule
  return info;
}

std::vector<std::byte> payload_buffer() {
  std::vector<std::byte> payload(kParams.message_bytes());
  sim::SplitMix64 rng(0xBE);
  for (auto& b : payload) b = std::byte{static_cast<std::uint8_t>(rng.next())};
  return payload;
}

void BM_DenseDecode(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0)) << 20;
  const coding::FileInfo info =
      synthetic_info(bytes, coding::CodecKind::dense);
  coding::EncodedMessage msg;
  msg.file_id = info.file_id;
  msg.payload = payload_buffer();

  std::size_t consumed = 0;
  for (auto _ : state) {
    coding::FileDecoder decoder(bench_secret(), info,
                                /*require_digests=*/false);
    consumed = 0;
    for (std::uint64_t id = 0; !decoder.complete(); ++id) {
      msg.message_id = id;
      decoder.add(msg);
      ++consumed;
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) *
                          static_cast<std::int64_t>(state.iterations()));
  state.counters["k"] = static_cast<double>(info.k);
  state.counters["consumed"] = static_cast<double>(consumed);
  state.counters["overhead_pct"] =
      100.0 * static_cast<double>(consumed - info.k) /
      static_cast<double>(info.k);
  state.counters["classes"] = 1.0;
}

void BM_ChunkedDecode(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0)) << 20;
  const coding::FileInfo info =
      synthetic_info(bytes, coding::CodecKind::chunked);
  const coding::chunked::ClassMap map(info.k, info.schedule);
  coding::EncodedMessage msg;
  msg.file_id = info.file_id;
  msg.payload = payload_buffer();

  std::size_t consumed = 0;
  for (auto _ : state) {
    coding::chunked::Decoder decoder(bench_secret(), info,
                                     /*require_digests=*/false);
    consumed = 0;
    // Unscreened sequential ids: the quota schedule makes in-order
    // delivery complete at ~k consumed; the 3-period cap only guards
    // against a pathological rng draw.
    for (std::uint64_t id = 0; !decoder.complete(); ++id) {
      if (id >= 3 * static_cast<std::uint64_t>(info.k)) {
        state.SkipWithError("chunked decode did not converge in 3 periods");
        return;
      }
      msg.message_id = id;
      decoder.add(msg);
      ++consumed;
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) *
                          static_cast<std::int64_t>(state.iterations()));
  state.counters["k"] = static_cast<double>(info.k);
  state.counters["consumed"] = static_cast<double>(consumed);
  state.counters["overhead_pct"] =
      100.0 * static_cast<double>(consumed - info.k) /
      static_cast<double>(info.k);
  state.counters["classes"] = static_cast<double>(map.classes());
}

void configure(benchmark::internal::Benchmark* b, bool huge_points) {
  b->Unit(benchmark::kMillisecond)->Iterations(1);
  b->Arg(10)->Arg(100);
  if (huge_points) {
    b->Arg(1024);
    // The 10 GB point needs ~25 GB of RAM and the better part of an hour
    // for the dense side; strictly opt-in.
    if (std::getenv("FAIRSHARE_BENCH_10G")) b->Arg(10240);
  }
}

}  // namespace

int main(int argc, char** argv) {
#ifdef __OPTIMIZE__
  benchmark::AddCustomContext("fairshare_build_type", "release");
#else
  benchmark::AddCustomContext("fairshare_build_type", "debug");
#endif
  // The 1 GB+ args only exist when the caller asks for them, so CI's
  // bench-smoke filter never has to know they exist and --compare's
  // missing-name check stays meaningful per section.
  const bool huge = std::getenv("FAIRSHARE_BENCH_HUGE") != nullptr ||
                    std::getenv("FAIRSHARE_BENCH_10G") != nullptr;
  configure(benchmark::RegisterBenchmark("BM_ChunkedDecode", BM_ChunkedDecode),
            huge);
  configure(benchmark::RegisterBenchmark("BM_DenseDecode", BM_DenseDecode),
            huge);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
