// Ablation A2: the paper's future-work remedy for slow dynamics.
//
// "the system has slow dynamics, which could be speeded up by
// disproportionately weighing newer contributions over older ones."
// We replay the Figure 8(b) capacity-drop scenario under exponentially
// decayed contribution ledgers with several decay factors and measure how
// fast the dropped peer's download re-converges to its new fair point.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "common.hpp"
#include "core/scenario.hpp"

namespace {

using namespace fairshare;

// Returns slots after the drop until peer 0's smoothed download stays
// within 5% of its new fair point (512), and the steady-state jitter.
struct AdaptResult {
  double settle_slots;
  double tail_rate;
};

AdaptResult run(double decay) {
  const std::size_t n = 8;
  core::Scenario sc;
  for (std::size_t i = 0; i < n; ++i) {
    sc.add_peer(1024.0);
    if (decay < 1.0)
      sc.policy(i, std::make_shared<alloc::DecayingContributionPolicy>(
                       n, decay, 1.0));
  }
  const std::uint64_t drop_at = 3000;
  sc.capacity_schedule(0, [drop_at](std::uint64_t t) {
    return t < drop_at ? 1024.0 : 512.0;
  });
  sim::Simulator sim = sc.build();
  sim.run(12000);

  const auto smooth = sim.download(0).smoothed(50);
  double settle = static_cast<double>(sim.now() - drop_at);
  for (std::size_t t = drop_at; t < sim.now(); ++t) {
    bool stays = true;
    for (std::size_t u = t; u < std::min<std::size_t>(t + 500, sim.now());
         ++u) {
      if (std::fabs(smooth[u] - 512.0) > 0.05 * 512.0) {
        stays = false;
        break;
      }
    }
    if (stays) {
      settle = static_cast<double>(t - drop_at);
      break;
    }
  }
  return {settle, sim.download(0).mean(11000, 12000)};
}

}  // namespace

int main() {
  bench::header("Ablation A2",
                "adaptation speed vs contribution-ledger decay factor");

  std::printf("decay,settle_slots_after_drop,tail_rate_kbps\n");
  double settle_cumulative = 0, settle_fast = 0;
  double tail_cumulative = 0;
  bool decayed_fair = true;
  for (double decay : {1.0, 0.9999, 0.999, 0.99}) {
    const AdaptResult r = run(decay);
    std::printf("%.4f,%.0f,%.1f\n", decay, r.settle_slots, r.tail_rate);
    if (decay == 1.0) {
      settle_cumulative = r.settle_slots;
      tail_cumulative = r.tail_rate;
    }
    if (decay == 0.99) settle_fast = r.settle_slots;
    if (decay <= 0.999 && std::fabs(r.tail_rate - 512.0) > 0.08 * 512.0)
      decayed_fair = false;
  }

  bench::shape_check(settle_fast < settle_cumulative,
                     "decayed ledgers re-converge faster than the cumulative "
                     "ledger after a capacity change");
  bench::shape_check(decayed_fair,
                     "decayed ledgers reach the new fair point (the remedy "
                     "does not break fairness)");
  bench::shape_check(std::fabs(tail_cumulative - 512.0) > 0.1 * 512.0,
                     "the cumulative ledger is still far from the fair point "
                     "9000 s after the drop — the paper's 'slow dynamics'");
  return 0;
}
