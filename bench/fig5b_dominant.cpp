// Figure 5(b): three peers where one peer's upload dominates the sum of
// the others (128 + 256 < 1024) — fairness holds without the
// "non-dominant" condition required by Yang & de Veciana.
#include <cstdio>

#include "common.hpp"
#include "core/scenario.hpp"
#include "sim/metrics.hpp"

int main() {
  using namespace fairshare;
  bench::header("Figure 5(b)",
                "3 saturated peers 128/256/1024 kbps (dominating peer)");

  const std::vector<double> uploads{128, 256, 1024};
  sim::Simulator sim = core::saturated_scenario(uploads, 1.0).build();
  sim.run(3500);

  const std::vector<std::string> labels{"UL128kbps", "UL256kbps",
                                        "UL1024kbps"};
  bench::print_download_series(sim, 10, 100, labels);
  bench::ascii_chart(sim, 50, labels);

  bool converged = true;
  for (std::size_t i = 0; i < sim.n(); ++i) {
    const double tail = sim.download(i).mean(3000, 3500);
    std::printf("peer%zu tail=%.1f kbps (upload %.0f)\n", i, tail, uploads[i]);
    if (std::abs(tail - uploads[i]) > 0.05 * uploads[i]) converged = false;
  }
  bench::shape_check(uploads[2] > uploads[0] + uploads[1],
                     "peer 2 dominates the sum of all other uploads");
  bench::shape_check(converged,
                     "downloads still converge to own uploads without the "
                     "non-dominance condition");
  bench::shape_check(sim::pairwise_unfairness(sim) < 0.05,
                     "pairwise exchanged bandwidth equalizes (Corollary 1)");
  return 0;
}
