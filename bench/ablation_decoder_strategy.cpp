// Ablation A8: progressive elimination vs the paper's literal batch
// decode (collect k, invert the sub-matrix, multiply).
//
// Total work is the same order, but the *latency* profiles differ: the
// progressive decoder spreads its O(m k^2) across message arrivals, so the
// residual work after the last message lands is one row's worth; the batch
// decoder does everything at the end.  For streaming (Section III-D) the
// post-arrival latency is what the user feels.
#include <chrono>
#include <cstdio>
#include <vector>

#include "coding/batch_decoder.hpp"
#include "coding/decoder.hpp"
#include "coding/encoder.hpp"
#include "common.hpp"
#include "sim/rng.hpp"

namespace {

using namespace fairshare;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  bench::header("Ablation A8",
                "decode strategy: progressive elimination vs batch inversion");

  sim::SplitMix64 rng(42);
  std::vector<std::byte> data(1u << 20);
  for (auto& b : data) b = std::byte{static_cast<std::uint8_t>(rng.next())};
  coding::SecretKey secret{};
  secret[0] = 9;

  std::printf("q,m,k,progressive_total_s,progressive_tail_s,batch_tail_s\n");
  bool tail_wins_everywhere = true;
  bool totals_comparable = true;
  for (const auto& [field, m] :
       {std::pair{gf::FieldId::gf2_8, std::size_t{1} << 14},
        std::pair{gf::FieldId::gf2_16, std::size_t{1} << 13},
        std::pair{gf::FieldId::gf2_32, std::size_t{1} << 13}}) {
    const coding::CodingParams params{field, m};
    coding::FileEncoder encoder(secret, 1, data, params);
    const std::size_t k = encoder.k();
    const auto messages = encoder.generate(k);

    // Progressive: total time and "tail" (work after the last arrival).
    auto t0 = std::chrono::steady_clock::now();
    coding::FileDecoder progressive(secret, encoder.info());
    for (std::size_t i = 0; i + 1 < messages.size(); ++i)
      progressive.add(messages[i]);
    const auto t_last = std::chrono::steady_clock::now();
    progressive.add(messages.back());
    const auto out1 = progressive.reconstruct();
    const double prog_total = seconds_since(t0);
    const double prog_tail = seconds_since(t_last);

    // Batch: everything happens after the k-th message.
    coding::BatchDecoder batch(secret, encoder.info());
    for (const auto& msg : messages) batch.add(msg);
    const auto t_batch = std::chrono::steady_clock::now();
    const auto out2 = batch.decode();
    const double batch_tail = seconds_since(t_batch);

    if (!out2 || *out2 != out1) {
      std::fprintf(stderr, "decoder mismatch!\n");
      return 1;
    }
    std::printf("%s,%zu,%zu,%.4f,%.4f,%.4f\n",
                std::string(gf::field_name(field)).c_str(), m, k, prog_total,
                prog_tail, batch_tail);
    if (prog_tail > 0.5 * batch_tail) tail_wins_everywhere = false;
    if (prog_total > 3.0 * batch_tail) totals_comparable = false;
  }

  bench::shape_check(tail_wins_everywhere,
                     "progressive decoding leaves <50% of the batch "
                     "decoder's work for after the last message arrives "
                     "(lower user-felt latency)");
  bench::shape_check(totals_comparable,
                     "total work stays within ~3x of batch inversion (same "
                     "asymptotic O(m k^2) cost)");
  return 0;
}
