// Extension: multi-threaded decoding.
//
// The paper notes its measurement "code was not parallelized to utilize
// both the available processors" of the Pentium-4 testbed (Section V-B).
// The payload work of Gaussian elimination splits perfectly by symbol
// range; this bench measures the decode speedup of fanning the row
// kernels over a thread pool.
#include <chrono>
#include <thread>
#include <cstdio>
#include <vector>

#include "coding/decoder.hpp"
#include "coding/encoder.hpp"
#include "common.hpp"
#include "sim/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace fairshare;

double decode_seconds(const coding::FileEncoder& encoder,
                      const std::vector<coding::EncodedMessage>& messages,
                      const coding::SecretKey& secret,
                      util::ThreadPool* pool) {
  const auto t0 = std::chrono::steady_clock::now();
  coding::FileDecoder decoder(secret, encoder.info());
  if (pool) decoder.set_thread_pool(pool);
  for (const auto& msg : messages) decoder.add(msg);
  const double s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  if (!decoder.complete()) std::exit(1);
  return s;
}

}  // namespace

int main() {
  bench::header("Extension: parallel decode",
                "thread-pool speedup of the decoder's row kernels (8 MB)");

  sim::SplitMix64 rng(7);
  std::vector<std::byte> data(8u << 20);
  for (auto& b : data) b = std::byte{static_cast<std::uint8_t>(rng.next())};
  coding::SecretKey secret{};
  secret[0] = 3;

  // Large k and m so there is real work: 8 MB, k = 64, 128 KiB messages.
  const coding::CodingParams params{gf::FieldId::gf2_32, 1u << 15};
  coding::FileEncoder encoder(secret, 1, data, params);
  const auto messages = encoder.generate(encoder.k());

  std::printf("threads,decode_s,speedup\n");
  const double serial = decode_seconds(encoder, messages, secret, nullptr);
  std::printf("1,%.3f,1.00\n", serial);
  double best = serial;
  for (std::size_t threads : {2u, 4u}) {
    util::ThreadPool pool(threads);
    const double s = decode_seconds(encoder, messages, secret, &pool);
    std::printf("%zu,%.3f,%.2f\n", threads, s, serial / s);
    best = std::min(best, s);
  }

  // Correctness cross-check once more with the pool.
  util::ThreadPool pool(4);
  coding::FileDecoder check(secret, encoder.info());
  check.set_thread_pool(&pool);
  for (const auto& msg : messages) check.add(msg);
  const bool exact = check.complete() && check.reconstruct() == data;

  bench::shape_check(exact, "pooled decode reproduces the file exactly");
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u\n", hw);
  if (hw > 1) {
    bench::shape_check(best < serial,
                       "threads reduce decode wall-clock (payload kernels "
                       "parallelize)");
  } else {
    // Single-core host: no speedup is possible; verify the pool's fan-out
    // overhead stays modest instead.
    bench::shape_check(best < serial * 1.5,
                       "on a single-core host the pool adds <50% overhead "
                       "(speedup requires >1 hardware thread)");
  }
  return 0;
}
