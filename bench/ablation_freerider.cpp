// Ablation A5: free-rider resilience, Equation (2) vs Equation (3).
//
// A fraction of peers upload nothing but request constantly.  Under
// Eq. (2) they starve (their measured contribution decays toward the
// epsilon seed); under Eq. (3) they keep receiving whatever they *declare*
// — free riding is profitable.
#include <cstdio>
#include <memory>
#include <vector>

#include "common.hpp"
#include "core/scenario.hpp"

namespace {

using namespace fairshare;

struct RiderResult {
  double rider_kbps;
  double honest_kbps;
};

RiderResult run(bool use_eq3, std::size_t riders, std::size_t n) {
  const double mu = 500.0;
  core::Scenario sc;
  for (std::size_t i = 0; i < n; ++i) {
    sc.add_peer(mu);
    if (i < riders)
      sc.policy(i, std::make_shared<alloc::FreeRiderPolicy>());
    else if (use_eq3)
      sc.policy(i, std::make_shared<alloc::DeclaredProportionalPolicy>());
  }
  // Riders still *declare* full capacity (they lie by omission).
  sim::Simulator sim = sc.build();
  sim.run(10000);
  const double rider = sim.download(0).mean(8000, 10000);
  const double honest = sim.download(n - 1).mean(8000, 10000);
  return {rider, honest};
}

}  // namespace

int main() {
  bench::header("Ablation A5",
                "free riders: starved by Eq. (2), subsidized by Eq. (3)");

  const std::size_t n = 10;
  std::printf("riders,eq2_rider,eq2_honest,eq3_rider,eq3_honest\n");
  bool eq2_starves = true, eq3_subsidizes = true, honest_protected = true;
  for (std::size_t riders : {1u, 2u, 4u}) {
    const RiderResult eq2 = run(false, riders, n);
    const RiderResult eq3 = run(true, riders, n);
    std::printf("%zu,%.1f,%.1f,%.1f,%.1f\n", riders, eq2.rider_kbps,
                eq2.honest_kbps, eq3.rider_kbps, eq3.honest_kbps);
    if (eq2.rider_kbps > 0.05 * eq2.honest_kbps) eq2_starves = false;
    if (eq3.rider_kbps < 0.8 * eq3.honest_kbps) eq3_subsidizes = false;
    if (eq2.honest_kbps < 0.9 * 500.0) honest_protected = false;
  }

  bench::shape_check(eq2_starves,
                     "under Eq. (2) free riders get <5% of an honest peer's "
                     "rate");
  bench::shape_check(eq3_subsidizes,
                     "under Eq. (3) free riders keep near-honest service "
                     "(the baseline cannot punish them)");
  bench::shape_check(honest_protected,
                     "honest peers under Eq. (2) keep ~their own upload "
                     "regardless of rider count");
  return 0;
}
