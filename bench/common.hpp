// Shared helpers for the experiment harnesses.  Each bench binary
// regenerates one table or figure of the paper and prints:
//   * a header naming the experiment,
//   * the series/rows in CSV form (easy to plot),
//   * a SHAPE-CHECK section asserting the qualitative claims the paper
//     makes about that figure (who wins, orderings, crossovers).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "gf/row_ops.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace fairshare::bench {

/// A packed row of n uniformly random symbols of `f`, seeded for
/// reproducibility.  Shared by the kernel microbenchmarks.
inline std::vector<std::byte> random_row(const gf::FieldView& f,
                                         std::size_t n, std::uint64_t seed) {
  sim::SplitMix64 rng(seed);
  std::vector<std::byte> row(f.row_bytes(n), std::byte{0});
  for (std::size_t i = 0; i < n; ++i)
    f.set(row.data(), i, rng.next() & (f.order - 1));
  return row;
}

inline void header(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void shape_check(bool ok, const std::string& claim) {
  std::printf("SHAPE-CHECK %s: %s\n", ok ? "PASS" : "FAIL", claim.c_str());
}

/// Print smoothed download-rate series of every peer, downsampled.
inline void print_download_series(const sim::Simulator& sim,
                                  std::size_t smooth_window,
                                  std::size_t sample_every,
                                  const std::vector<std::string>& labels) {
  std::printf("t_seconds");
  for (const auto& l : labels) std::printf(",%s", l.c_str());
  std::printf("\n");
  std::vector<std::vector<double>> smoothed;
  for (std::size_t i = 0; i < sim.n(); ++i)
    smoothed.push_back(sim.download(i).smoothed(smooth_window));
  for (std::size_t t = 0; t < sim.now(); t += sample_every) {
    std::printf("%zu", t);
    for (std::size_t i = 0; i < sim.n(); ++i)
      std::printf(",%.1f", smoothed[i][t]);
    std::printf("\n");
  }
}

/// Rough ASCII rendering of download-rate series — the bench-terminal
/// version of the paper's figures.  Each series is drawn with its own
/// glyph; rows are rate bands (top = max), columns are time buckets.
inline void ascii_chart(const sim::Simulator& sim, std::size_t smooth_window,
                        const std::vector<std::string>& labels,
                        std::size_t width = 72, std::size_t height = 16) {
  std::vector<std::vector<double>> series;
  double max_v = 1.0;
  for (std::size_t i = 0; i < sim.n(); ++i) {
    series.push_back(sim.download(i).smoothed(smooth_window));
    for (double v : series.back()) max_v = std::max(max_v, v);
  }
  static const char glyphs[] = "0123456789abcdef";
  std::vector<std::string> canvas(height, std::string(width, ' '));
  const std::size_t t_max = sim.now();
  for (std::size_t s = 0; s < series.size(); ++s) {
    const char g = glyphs[s % (sizeof(glyphs) - 1)];
    for (std::size_t col = 0; col < width; ++col) {
      const std::size_t t = col * (t_max - 1) / (width - 1);
      const double v = series[s][t];
      auto row = static_cast<std::size_t>((1.0 - v / max_v) * (height - 1));
      row = std::min(row, height - 1);
      canvas[row][col] = g;
    }
  }
  std::printf("\n%7.0f +%s\n", max_v, std::string(width, '-').c_str());
  for (std::size_t r = 0; r < height; ++r) {
    if (r == height - 1)
      std::printf("%7.0f |%s\n", 0.0, canvas[r].c_str());
    else
      std::printf("        |%s\n", canvas[r].c_str());
  }
  std::printf("  kbps   0%*s%zu s", static_cast<int>(width - 2), "", t_max);
  std::printf("   (series: ");
  for (std::size_t s = 0; s < labels.size(); ++s)
    std::printf("%c=%s ", glyphs[s % (sizeof(glyphs) - 1)],
                labels[s].c_str());
  std::printf(")\n\n");
}

}  // namespace fairshare::bench
