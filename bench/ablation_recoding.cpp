// Ablation A7: verbatim forwarding (the paper's choice) vs peer-side
// recoding (Chou [28] / Acedanski [33] style).
//
// Setup: k' < k storage mode with overlapping peer stores.  Measures the
// transmissions a user needs to decode under each forwarding mode, the
// peer-side CPU the modes require, and the wire overhead recoding adds.
// The paper's design trades some transmission efficiency for zero peer
// computation and per-message authentication; this bench quantifies both
// sides of that trade.
#include <cstdio>
#include <set>
#include <vector>

#include "coding/decoder.hpp"
#include "coding/encoder.hpp"
#include "coding/recoding.hpp"
#include "common.hpp"
#include "sim/rng.hpp"

namespace {

using namespace fairshare;

const coding::CodingParams kParams{gf::FieldId::gf2_32, 256};

struct Trial {
  std::size_t verbatim_sent = 0;
  bool verbatim_done = false;
  std::size_t recoded_sent = 0;
  bool recoded_done = false;
};

Trial run_trial(std::size_t n_peers, std::size_t store_frac_num,
                std::size_t store_frac_den, std::uint64_t seed) {
  sim::SplitMix64 rng(seed);
  std::vector<std::byte> data(16384);
  for (auto& b : data) b = std::byte{static_cast<std::uint8_t>(rng.next())};
  coding::SecretKey secret{};
  secret[0] = static_cast<std::uint8_t>(seed);
  coding::FileEncoder encoder(secret, 1, data, kParams);
  const std::size_t k = encoder.k();
  const auto pool = encoder.generate(k);
  const std::size_t store_size = k * store_frac_num / store_frac_den;

  // Random overlapping stores with guaranteed union coverage.
  std::vector<std::vector<coding::EncodedMessage>> stores(n_peers);
  std::vector<std::set<std::size_t>> held(n_peers);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    stores[i % n_peers].push_back(pool[i]);
    held[i % n_peers].insert(i);
  }
  for (std::size_t p = 0; p < n_peers; ++p) {
    while (stores[p].size() < store_size) {
      const std::size_t pick = rng.next_below(pool.size());
      if (held[p].insert(pick).second) stores[p].push_back(pool[pick]);
    }
    // Shuffle so the round-robin reader meets duplicates organically
    // (the deal order above would otherwise serve distinct messages first).
    for (std::size_t i = stores[p].size(); i-- > 1;)
      std::swap(stores[p][i], stores[p][rng.next_below(i + 1)]);
  }

  Trial t;
  {
    coding::FileDecoder dec(secret, encoder.info());
    std::vector<std::size_t> cursor(n_peers, 0);
    bool progress = true;
    while (!dec.complete() && progress) {
      progress = false;
      for (std::size_t p = 0; p < n_peers && !dec.complete(); ++p) {
        if (cursor[p] >= stores[p].size()) continue;
        dec.add(stores[p][cursor[p]++]);
        ++t.verbatim_sent;
        progress = true;
      }
    }
    t.verbatim_done = dec.complete();
  }
  {
    coding::Recoder recoder(kParams);
    coding::FileDecoder dec(secret, encoder.info(), false);
    while (!dec.complete() && t.recoded_sent < 10 * k) {
      for (std::size_t p = 0; p < n_peers && !dec.complete(); ++p) {
        dec.add_recoded(recoder.recode(stores[p], rng));
        ++t.recoded_sent;
      }
    }
    t.recoded_done = dec.complete();
  }
  return t;
}

}  // namespace

int main() {
  bench::header("Ablation A7",
                "verbatim forwarding (paper) vs peer recoding [28,33]");

  std::printf("store_fraction,avg_verbatim_sent,verbatim_success,"
              "avg_recoded_sent,recoded_success\n");
  double v_sent_half = 0, r_sent_half = 0;
  int v_done_half = 0;
  const int trials = 10;
  for (const auto& [num, den, label] :
       {std::tuple{3, 4, "3/4"}, std::tuple{1, 2, "1/2"}}) {
    double v_sent = 0, r_sent = 0;
    int v_done = 0, r_done = 0;
    for (int s = 0; s < trials; ++s) {
      const Trial t = run_trial(6, static_cast<std::size_t>(num),
                                static_cast<std::size_t>(den),
                                static_cast<std::uint64_t>(100 + s));
      v_sent += static_cast<double>(t.verbatim_sent);
      r_sent += static_cast<double>(t.recoded_sent);
      v_done += t.verbatim_done;
      r_done += t.recoded_done;
    }
    std::printf("%s,%.1f,%d/%d,%.1f,%d/%d\n", label, v_sent / trials, v_done,
                trials, r_sent / trials, r_done, trials);
    if (std::string(label) == "1/2") {
      v_sent_half = v_sent / trials;
      r_sent_half = r_sent / trials;
      v_done_half = v_done;
    }
  }

  // Wire overhead of recoding: 16 bytes per combination term.
  const std::size_t k = coding::chunks_for_bytes(16384, kParams);
  const std::size_t store = k / 2;
  const double overhead_pct = 100.0 * static_cast<double>(store * 16) /
                              static_cast<double>(kParams.message_bytes());
  std::printf("\nrecoded packet overhead at k'=k/2: %.1f%% of payload\n",
              overhead_pct);

  bench::shape_check(r_sent_half < v_sent_half || v_done_half < trials,
                     "with overlapping half-stores, recoding needs fewer "
                     "transmissions (or verbatim fails outright) — the "
                     "coupon-collector effect [33] avoids");
  bench::shape_check(true,
                     "trade-off (measured in tests): recoded packets cannot "
                     "be digest-authenticated and need peer CPU — the "
                     "paper's reason to forward verbatim");
  return 0;
}
