// Table I: number of messages k required to encode 1 MB of data across
// field sizes q = 2^p and message lengths m.
#include <cstdio>

#include "coding/params.hpp"
#include "common.hpp"

int main() {
  using namespace fairshare;
  bench::header("Table I", "messages k for 1 MB across (q, m)");

  const gf::FieldId fields[] = {gf::FieldId::gf2_4, gf::FieldId::gf2_8,
                                gf::FieldId::gf2_16, gf::FieldId::gf2_32};
  const std::size_t megabyte = 1u << 20;

  std::printf("%-10s", "q \\ m");
  for (int e = 13; e <= 18; ++e) std::printf("%8s", ("2^" + std::to_string(e)).c_str());
  std::printf("\n");

  // The values the paper prints.
  const std::size_t expected[4][6] = {{256, 128, 64, 32, 16, 8},
                                      {128, 64, 32, 16, 8, 4},
                                      {64, 32, 16, 8, 4, 2},
                                      {32, 16, 8, 4, 2, 1}};
  bool all_match = true;
  for (int fi = 0; fi < 4; ++fi) {
    std::printf("%-10s", std::string(gf::field_name(fields[fi])).c_str());
    for (int e = 13; e <= 18; ++e) {
      const coding::CodingParams params{fields[fi], std::size_t{1} << e};
      const std::size_t k = coding::chunks_for_bytes(megabyte, params);
      std::printf("%8zu", k);
      if (k != expected[fi][e - 13]) all_match = false;
    }
    std::printf("\n");
  }

  bench::shape_check(all_match,
                     "every cell matches the paper's Table I exactly");
  bench::shape_check(
      coding::chunks_for_bytes(megabyte,
                               coding::CodingParams::paper_defaults()) == 8,
      "the paper's example (q=2^32, m=2^15) needs k = 8 messages");
  return 0;
}
