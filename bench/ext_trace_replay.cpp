// Trace-replay throughput: how fast the two replay engines chew through
// the synthetic workload families.
//
// BM_TraceReplaySim_* measure the slotted-simulator engine alone — pure
// compute, the number that regresses when the allocator/simulator hot path
// slows down.  BM_TraceReplayLive runs the same flash-crowd trace against
// a real paced PeerServer over loopback TCP; its wall time is dominated by
// the pacing schedule itself (the trace spans horizon * slot_seconds of
// wall clock), so treat it as an end-to-end smoke number, not a kernel
// timing.  bytes_per_second reports delivered payload per wall second.
//
// The bench_baseline CMake target runs these with --benchmark_out and
// merges the condensed entries into BENCH_kernels.json under
// runs.trace_replay (tools/bench_to_json.py --merge).
#include <benchmark/benchmark.h>

#include <cstdint>

#include "coding/params.hpp"
#include "net/replay_driver.hpp"
#include "sim/replay.hpp"
#include "sim/workload.hpp"

namespace {

using namespace fairshare;

constexpr std::uint64_t kFileBytes = 20000;
const coding::CodingParams kParams{gf::FieldId::gf2_32, 256};

double overhead() {
  coding::FileInfo shape;
  shape.original_bytes = kFileBytes;
  shape.params = kParams;
  shape.k = coding::chunks_for_bytes(kFileBytes, kParams);
  return net::wire_overhead_factor(shape);
}

sim::SimReplayConfig sim_config(double rate_kbps) {
  sim::SimReplayConfig config;
  config.rate_kbps = rate_kbps;
  config.slot_seconds = 0.05;
  config.quantize_bytes = kFileBytes;
  config.wire_overhead = overhead();
  return config;
}

double delivered_payload(const sim::ReplayReport& report) {
  double bytes = 0.0;
  for (const sim::ReplayUserStats& user : report.users)
    bytes += user.delivered_bytes;
  return bytes;
}

void run_sim_family(benchmark::State& state, const sim::WorkloadTrace& trace,
                    double rate_kbps) {
  double delivered = 0.0;
  for (auto _ : state) {
    const sim::ReplayReport report = sim::replay_sim(trace, sim_config(rate_kbps));
    delivered = delivered_payload(report);
    benchmark::DoNotOptimize(&report);
  }
  state.counters["events"] = static_cast<double>(trace.size());
  state.counters["delivered_bytes"] = delivered;
  state.SetBytesProcessed(static_cast<std::int64_t>(
      delivered * static_cast<double>(state.iterations())));
}

void BM_TraceReplaySim_Poisson(benchmark::State& state) {
  sim::PoissonConfig config;
  config.users = 4;
  config.horizon = 64;
  config.mean_bytes = kFileBytes;
  config.seed = 1;
  run_sim_family(state, sim::poisson_trace(config), 8000.0);
}
BENCHMARK(BM_TraceReplaySim_Poisson)->Unit(benchmark::kMicrosecond);

void BM_TraceReplaySim_Zipf(benchmark::State& state) {
  sim::ZipfConfig config;
  config.users = 4;
  config.horizon = 64;
  config.events = 64;
  config.mean_bytes = kFileBytes;
  config.seed = 1;
  run_sim_family(state, sim::zipf_trace(config), 8000.0);
}
BENCHMARK(BM_TraceReplaySim_Zipf)->Unit(benchmark::kMicrosecond);

void BM_TraceReplaySim_Flash(benchmark::State& state) {
  sim::FlashCrowdConfig config;
  config.users = 4;
  config.horizon = 64;
  config.mean_bytes = kFileBytes;
  config.seed = 1;
  run_sim_family(state, sim::flash_crowd_trace(config), 8000.0);
}
BENCHMARK(BM_TraceReplaySim_Flash)->Unit(benchmark::kMicrosecond);

// End-to-end: paced server + real downloads over loopback.  One iteration
// replays a 0.6 s trace, so iterations are pinned low to keep the bench
// (and CI's bench-smoke) fast.
void BM_TraceReplayLive(benchmark::State& state) {
  sim::FlashCrowdConfig trace_config;
  trace_config.users = 3;
  trace_config.horizon = 12;
  trace_config.mean_bytes = kFileBytes;
  trace_config.seed = 1;
  const sim::WorkloadTrace trace = sim::flash_crowd_trace(trace_config);

  double delivered = 0.0;
  std::size_t failed = 0;
  for (auto _ : state) {
    net::LiveReplayConfig config;
    config.rate_kbps = 8000.0;
    config.slot_seconds = 0.05;
    const sim::ReplayReport report =
        net::replay_live(trace, kFileBytes, kParams, config);
    delivered = delivered_payload(report);
    failed += report.transfers_failed;
  }
  state.counters["events"] = static_cast<double>(trace.size());
  state.counters["transfers_failed"] = static_cast<double>(failed);
  state.SetBytesProcessed(static_cast<std::int64_t>(
      delivered * static_cast<double>(state.iterations())));
}
BENCHMARK(BM_TraceReplayLive)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  // Same self-report as microbench_kernels: record this binary's own
  // optimisation state so tools/bench_to_json.py can refuse to bless a
  // debug-build baseline.
#ifdef __OPTIMIZE__
  benchmark::AddCustomContext("fairshare_build_type", "release");
#else
  benchmark::AddCustomContext("fairshare_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
