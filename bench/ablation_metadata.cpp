// Ablation A6 (paper future work, Section VI-A): "minimizing the amount of
// meta-data that the user needs to carry around".
//
// Compares the baseline per-message MD5 digest table against Merkle-root
// authentication across file sizes: bytes the user must carry offline vs
// per-message wire overhead, using the paper's default coding parameters
// (q = 2^32, m = 2^15 -> 128 KiB messages) and n = 10 peers' worth of
// stored messages.
#include <cmath>
#include <cstdio>
#include <vector>

#include "coding/encoder.hpp"
#include "coding/merkle_auth.hpp"
#include "common.hpp"
#include "sim/rng.hpp"

int main() {
  using namespace fairshare;
  bench::header("Ablation A6",
                "user-carried metadata: MD5 digest table vs Merkle root");

  const coding::CodingParams params = coding::CodingParams::paper_defaults();
  const std::size_t peers = 10;

  std::printf("file_MB,k,messages,digest_table_B,merkle_carried_B,"
              "proof_overhead_B_per_msg,proof_overhead_pct_of_msg\n");
  bool merkle_always_smaller = true;
  bool overhead_stays_tiny = true;
  for (std::size_t mb : {1u, 4u, 16u, 64u, 256u}) {
    const std::size_t bytes = mb << 20;
    const std::size_t k = coding::chunks_for_bytes(bytes, params);
    const std::size_t n_messages = k * peers;
    const std::size_t digest_table = n_messages * 16;
    const std::size_t merkle_carried = 32 + 4;
    const std::size_t proof_entries = static_cast<std::size_t>(
        std::ceil(std::log2(static_cast<double>(n_messages))));
    const std::size_t proof_bytes = 4 + 32 * proof_entries;
    const double pct = 100.0 * static_cast<double>(proof_bytes) /
                       static_cast<double>(params.message_bytes());
    std::printf("%zu,%zu,%zu,%zu,%zu,%zu,%.3f\n", mb, k, n_messages,
                digest_table, merkle_carried, proof_bytes, pct);
    if (merkle_carried >= digest_table) merkle_always_smaller = false;
    if (pct > 1.0) overhead_stays_tiny = false;
  }

  // Verify the real implementation agrees with the accounting on a small
  // concrete instance.
  sim::SplitMix64 rng(5);
  std::vector<std::byte> data(1u << 18);
  for (auto& b : data) b = std::byte{static_cast<std::uint8_t>(rng.next())};
  const coding::CodingParams small{gf::FieldId::gf2_32, 1u << 12};
  coding::SecretKey secret{};
  coding::FileEncoder enc(secret, 1, data, small);
  const auto messages = enc.generate(enc.k() * 4);
  const coding::MerkleAuthenticator auth(messages);
  const auto am = auth.attach(messages[3], 3);
  const coding::MerkleVerifier verifier(auth.root(), auth.leaf_count());

  bench::shape_check(merkle_always_smaller,
                     "the 36-byte Merkle root always beats the 16B/message "
                     "digest table (1.3 KB at 1 MB, 327 KB at 256 MB)");
  bench::shape_check(overhead_stays_tiny,
                     "per-message proof overhead stays below 1% of a "
                     "128 KiB message");
  bench::shape_check(verifier.verify(am),
                     "implementation check: attached proofs verify against "
                     "the carried root");
  return 0;
}
