// Extension: empirical innovation probability vs field size.
//
// Section III-A claims random beta rows are "almost surely linearly
// independent [34]" and that the encoder can guarantee exactly k messages
// by screening.  Here we measure, per field, the probability that an
// UNSCREENED random row is dependent given current rank r — theory says
// q^{r-k} — and the aggregate overhead of decoding from unscreened
// messages, plus the encoder's observed screening skip rate.
#include <cstdio>
#include <vector>

#include "coding/coefficients.hpp"
#include "coding/encoder.hpp"
#include "common.hpp"
#include "linalg/progressive.hpp"
#include "sim/rng.hpp"

namespace {

using namespace fairshare;

}  // namespace

int main() {
  bench::header("Extension: innovation probability",
                "dependent-row rates vs field size (the [34] claim, measured)");

  const std::size_t k = 16;
  std::printf("field,unscreened_dependent_rate,theory_worst(1/q),"
              "avg_msgs_to_decode,encoder_skip_rate\n");
  bool matches_theory = true;
  bool big_fields_never_skip = true;
  for (gf::FieldId field : gf::kAllFields) {
    const coding::CodingParams params{field, 64};
    const auto& f = gf::field_view(field);
    sim::SplitMix64 rng(static_cast<std::uint64_t>(field) + 100);

    // Unscreened: random rows into a rank tracker until full; count
    // dependent draws.  (Worst-case dependent probability at rank k-1 is
    // q^{-1}; earlier ranks are far smaller, so the mean rate is < 1/q.)
    std::size_t dependent = 0, draws = 0;
    double msgs_total = 0;
    const int trials = field == gf::FieldId::gf2_4 ? 2000 : 200;
    for (int t = 0; t < trials; ++t) {
      linalg::IncrementalRank tracker(field, k);
      std::size_t msgs = 0;
      while (!tracker.full()) {
        std::vector<std::uint64_t> row(k);
        for (auto& v : row) v = rng.next() & (f.order - 1);
        ++draws;
        ++msgs;
        if (!tracker.add_row(row)) ++dependent;
      }
      msgs_total += static_cast<double>(msgs);
    }
    const double dep_rate = static_cast<double>(dependent) /
                            static_cast<double>(draws);
    const double theory = 1.0 / static_cast<double>(f.order);

    // Encoder-side screening skip rate over many batches.
    std::vector<std::byte> data(1024);
    for (auto& b : data) b = std::byte{static_cast<std::uint8_t>(rng.next())};
    coding::SecretKey secret{};
    secret[0] = static_cast<std::uint8_t>(field);
    coding::FileEncoder enc(secret, 1, data, params);
    enc.generate(20 * enc.k());
    const double skip_rate =
        1.0 - static_cast<double>(enc.messages_generated()) /
                  static_cast<double>(enc.ids_examined());

    std::printf("%s,%.6f,%.6f,%.2f,%.6f\n",
                std::string(gf::field_name(field)).c_str(), dep_rate, theory,
                msgs_total / trials, skip_rate);

    // Dependent rate must be within a small factor of 1/q (and ~0 for the
    // big fields).
    if (field == gf::FieldId::gf2_4 && (dep_rate > 5 * theory)) {
      matches_theory = false;
    }
    if ((field == gf::FieldId::gf2_16 || field == gf::FieldId::gf2_32) &&
        skip_rate > 0.0)
      big_fields_never_skip = false;
  }

  bench::shape_check(matches_theory,
                     "unscreened dependent-row rate is within a small factor "
                     "of the 1/q theory bound");
  bench::shape_check(big_fields_never_skip,
                     "over GF(2^16)/GF(2^32) the encoder's screening never "
                     "fires — rows are 'almost surely' independent [34]");
  return 0;
}
