// google-benchmark microbenchmarks of the hot kernels underlying Table II:
// field row operations (the O(m k^2) elimination inner loop), scalar
// multiplication, hashing, and the ChaCha20 coefficient stream.
#include <benchmark/benchmark.h>

#include <vector>

#include "crypto/chacha20.hpp"
#include "crypto/md5.hpp"
#include "crypto/sha256.hpp"
#include "gf/row_ops.hpp"
#include "linalg/matrix.hpp"
#include "sim/rng.hpp"

namespace {

using namespace fairshare;

std::vector<std::byte> random_row(const gf::FieldView& f, std::size_t n,
                                  std::uint64_t seed) {
  sim::SplitMix64 rng(seed);
  std::vector<std::byte> row(f.row_bytes(n), std::byte{0});
  for (std::size_t i = 0; i < n; ++i)
    f.set(row.data(), i, rng.next() & (f.order - 1));
  return row;
}

void BM_RowAxpy(benchmark::State& state) {
  const auto field = static_cast<gf::FieldId>(state.range(0));
  const std::size_t m = static_cast<std::size_t>(state.range(1));
  const auto& f = gf::field_view(field);
  auto dst = random_row(f, m, 1);
  const auto src = random_row(f, m, 2);
  const std::uint64_t c = 0x1234567 & (f.order - 1);
  for (auto _ : state) {
    f.axpy(dst.data(), src.data(), c ? c : 3, m);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.row_bytes(m)));
}
BENCHMARK(BM_RowAxpy)
    ->ArgsProduct({{0, 1, 2, 3}, {1 << 13, 1 << 15}})
    ->ArgNames({"field", "m"});

void BM_ScalarMul(benchmark::State& state) {
  const auto field = static_cast<gf::FieldId>(state.range(0));
  const auto& f = gf::field_view(field);
  std::uint64_t a = 0x9E3779B9 & (f.order - 1), b = 0x85EBCA77 & (f.order - 1);
  if (a == 0) a = 3;
  if (b == 0) b = 5;
  for (auto _ : state) {
    a = f.mul(a, b) | 1;
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_ScalarMul)->DenseRange(0, 3)->ArgNames({"field"});

void BM_MatrixInvert(benchmark::State& state) {
  const auto field = static_cast<gf::FieldId>(state.range(0));
  const std::size_t k = static_cast<std::size_t>(state.range(1));
  const auto& f = gf::field_view(field);
  sim::SplitMix64 rng(7);
  linalg::Matrix m(field, k, k);
  for (std::size_t r = 0; r < k; ++r)
    for (std::size_t c = 0; c < k; ++c)
      m.set(r, c, rng.next() & (f.order - 1));
  for (auto _ : state) {
    auto inv = linalg::invert(m);
    benchmark::DoNotOptimize(inv);
  }
}
BENCHMARK(BM_MatrixInvert)
    ->ArgsProduct({{1, 3}, {8, 32, 128}})
    ->ArgNames({"field", "k"});

void BM_Md5(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> data(n, 0xAB);
  for (auto _ : state) {
    auto d = crypto::Md5::hash(std::span<const std::uint8_t>(data));
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Md5)->Arg(1 << 17)->ArgNames({"bytes"});

void BM_Sha256(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> data(n, 0xCD);
  for (auto _ : state) {
    auto d = crypto::Sha256::hash(std::span<const std::uint8_t>(data));
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Sha256)->Arg(1 << 17)->ArgNames({"bytes"});

void BM_ChaCha20Stream(benchmark::State& state) {
  std::array<std::uint8_t, 32> key{};
  std::array<std::uint8_t, 12> nonce{};
  crypto::ChaCha20 rng(key, nonce, 0);
  std::vector<std::uint8_t> buf(1 << 16);
  for (auto _ : state) {
    rng.generate(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_ChaCha20Stream);

}  // namespace

BENCHMARK_MAIN();
