// google-benchmark microbenchmarks of the hot kernels underlying Table II:
// field row operations (the O(m k^2) elimination inner loop), the full
// decode pipeline those kernels feed, scalar multiplication, hashing, and
// the ChaCha20 coefficient stream.
//
// Row-kernel benchmarks carry a `simd` axis: simd=0 pins the portable
// scalar kernels (gf::scalar_field_view), simd=1 uses whatever
// gf::field_view dispatched for this host; each row's label records the
// kernel variant actually measured.  BM_DecodePipeline exercises the real
// coding::FileDecoder, whose kernels come from the process-wide dispatch —
// run the binary again under FAIRSHARE_FORCE_SCALAR_KERNELS=1 for the
// scalar pipeline numbers (tools/bench_to_json.py merges the two runs into
// the committed BENCH_kernels.json baseline).
#include <benchmark/benchmark.h>

#include <vector>

#include "coding/decoder.hpp"
#include "coding/encoder.hpp"
#include "common.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/md5.hpp"
#include "crypto/sha256.hpp"
#include "gf/row_ops.hpp"
#include "linalg/matrix.hpp"
#include "net/peer_server.hpp"
#include "net/socket.hpp"
#include "p2p/store.hpp"
#include "p2p/wire.hpp"
#include "sim/rng.hpp"

namespace {

using namespace fairshare;

const gf::FieldView& view_for(std::int64_t simd, gf::FieldId id) {
  return simd ? gf::field_view(id) : gf::scalar_field_view(id);
}

void BM_RowAxpy(benchmark::State& state) {
  const auto field = static_cast<gf::FieldId>(state.range(0));
  const std::size_t m = static_cast<std::size_t>(state.range(1));
  const auto& f = view_for(state.range(2), field);
  auto dst = bench::random_row(f, m, 1);
  const auto src = bench::random_row(f, m, 2);
  // Masking the constant into the field keeps it nonzero for every field
  // (low byte 0x67), so the kernels stay on their general path.
  const std::uint64_t c = 0x1234567 & (f.order - 1);
  for (auto _ : state) {
    f.axpy(dst.data(), src.data(), c, m);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetLabel(f.kernel);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.row_bytes(m)));
}
BENCHMARK(BM_RowAxpy)
    ->ArgsProduct({{0, 1, 2, 3}, {1 << 13, 1 << 15}, {0, 1}})
    ->ArgNames({"field", "m", "simd"});

void BM_RowScale(benchmark::State& state) {
  const auto field = static_cast<gf::FieldId>(state.range(0));
  const std::size_t m = static_cast<std::size_t>(state.range(1));
  const auto& f = view_for(state.range(2), field);
  auto row = bench::random_row(f, m, 3);
  const std::uint64_t c = 0x1234567 & (f.order - 1);
  for (auto _ : state) {
    f.scale(row.data(), c, m);
    benchmark::DoNotOptimize(row.data());
  }
  state.SetLabel(f.kernel);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.row_bytes(m)));
}
BENCHMARK(BM_RowScale)
    ->ArgsProduct({{0, 1, 2, 3}, {1 << 15}, {0, 1}})
    ->ArgNames({"field", "m", "simd"});

// Full elimination pipeline at Table II parameters: decode 1 MB from k
// fresh coded messages through the real coding::FileDecoder (coefficient
// regeneration, digest checks, progressive Gaussian elimination).  The
// paper's example point is (q = 2^32, m = 2^15); we sweep all four fields
// at m = 2^15.  Kernels come from the process-wide dispatch — the label
// records which variant ran.
void BM_DecodePipeline(benchmark::State& state) {
  const auto field = static_cast<gf::FieldId>(state.range(0));
  const std::size_t m = static_cast<std::size_t>(state.range(1));

  sim::SplitMix64 rng(42);
  std::vector<std::byte> data(1u << 20);
  for (auto& b : data) b = std::byte{static_cast<std::uint8_t>(rng.next())};

  const coding::CodingParams params{field, m};
  coding::SecretKey secret{};
  secret[0] = 7;
  coding::FileEncoder encoder(secret, 1, data, params);
  const auto messages = encoder.generate(encoder.k());

  for (auto _ : state) {
    coding::FileDecoder decoder(secret, encoder.info());
    for (const auto& msg : messages) decoder.add(msg);
    if (!decoder.complete()) state.SkipWithError("decode incomplete");
    benchmark::DoNotOptimize(decoder.rank());
  }
  state.SetLabel(gf::field_view(field).kernel);
  state.counters["k"] = static_cast<double>(encoder.k());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_DecodePipeline)
    ->ArgsProduct({{0, 1, 2, 3}, {1 << 15}})
    ->ArgNames({"field", "m"})
    ->Unit(benchmark::kMillisecond);

// End-to-end serve pipeline, the twin of BM_DecodePipeline on the other
// side of the wire: a client drains one whole stored file from a running
// PeerServer over loopback TCP per iteration.  The backend axis compares
// the epoll reactor's zero-copy scatter-gather path (backend=1: 21
// framing bytes staged, payloads referenced in the MessageStore and
// gathered by sendmsg) against the blocking threads path (backend=0,
// which encodes and copies every frame).  Unpaced and unauthenticated, so
// the number measures the serve path itself.
void BM_ServePipeline(benchmark::State& state) {
  const bool epoll = state.range(0) != 0;
  constexpr std::size_t kMessages = 256;
  constexpr std::size_t kPayload = 4096;
  sim::SplitMix64 rng(9);
  p2p::MessageStore store;
  std::size_t stream_bytes = 0;
  for (std::size_t i = 0; i < kMessages; ++i) {
    coding::EncodedMessage m;
    m.file_id = 1;
    m.message_id = i;
    m.payload.resize(kPayload);
    for (auto& b : m.payload)
      b = std::byte{static_cast<std::uint8_t>(rng.next())};
    stream_bytes += p2p::wire::kCodedMessageHeaderBytes + m.payload.size();
    store.store(std::move(m));
  }
  net::PeerServer::Config config;
  config.require_auth = false;
  config.backend =
      epoll ? net::NetBackend::epoll : net::NetBackend::threads;
  net::PeerServer server(config, std::move(store));
  if (!server.start()) {
    state.SkipWithError("server start failed");
    return;
  }
  for (auto _ : state) {
    auto client = net::Socket::connect_to("127.0.0.1", server.port());
    if (!client) {
      state.SkipWithError("connect failed");
      break;
    }
    p2p::wire::FileRequest request;
    request.user_id = 7;
    request.file_id = 1;
    if (!net::send_frame(*client, p2p::wire::encode(request))) {
      state.SkipWithError("request failed");
      break;
    }
    client->set_recv_timeout(5000);
    std::size_t frames = 0;
    while (auto frame = net::recv_frame(*client, 1u << 20)) {
      benchmark::DoNotOptimize(frame->data());
      ++frames;
    }
    if (frames != kMessages) {
      state.SkipWithError("short stream");
      break;
    }
  }
  state.SetLabel(net::to_string(server.backend()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream_bytes));
  server.stop();
}
BENCHMARK(BM_ServePipeline)
    ->ArgsProduct({{0, 1}})
    ->ArgNames({"backend"})
    ->Unit(benchmark::kMillisecond);

void BM_ScalarMul(benchmark::State& state) {
  const auto field = static_cast<gf::FieldId>(state.range(0));
  const auto& f = gf::field_view(field);
  std::uint64_t a = 0x9E3779B9 & (f.order - 1), b = 0x85EBCA77 & (f.order - 1);
  if (a == 0) a = 3;
  if (b == 0) b = 5;
  for (auto _ : state) {
    a = f.mul(a, b) | 1;
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_ScalarMul)->DenseRange(0, 3)->ArgNames({"field"});

void BM_MatrixInvert(benchmark::State& state) {
  const auto field = static_cast<gf::FieldId>(state.range(0));
  const std::size_t k = static_cast<std::size_t>(state.range(1));
  const auto& f = gf::field_view(field);
  sim::SplitMix64 rng(7);
  linalg::Matrix m(field, k, k);
  for (std::size_t r = 0; r < k; ++r)
    for (std::size_t c = 0; c < k; ++c)
      m.set(r, c, rng.next() & (f.order - 1));
  for (auto _ : state) {
    auto inv = linalg::invert(m);
    benchmark::DoNotOptimize(inv);
  }
}
BENCHMARK(BM_MatrixInvert)
    ->ArgsProduct({{1, 3}, {8, 32, 128}})
    ->ArgNames({"field", "k"});

void BM_Md5(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> data(n, 0xAB);
  for (auto _ : state) {
    auto d = crypto::Md5::hash(std::span<const std::uint8_t>(data));
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Md5)->Arg(1 << 17)->ArgNames({"bytes"});

void BM_Sha256(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> data(n, 0xCD);
  for (auto _ : state) {
    auto d = crypto::Sha256::hash(std::span<const std::uint8_t>(data));
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Sha256)->Arg(1 << 17)->ArgNames({"bytes"});

void BM_ChaCha20Stream(benchmark::State& state) {
  std::array<std::uint8_t, 32> key{};
  std::array<std::uint8_t, 12> nonce{};
  crypto::ChaCha20 rng(key, nonce, 0);
  std::vector<std::uint8_t> buf(1 << 16);
  for (auto _ : state) {
    rng.generate(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_ChaCha20Stream);

}  // namespace

int main(int argc, char** argv) {
  // The library_build_type the benchmark library self-reports describes
  // how *libbenchmark* was compiled (Debian ships a debug one), not this
  // binary; record our own optimisation state so tools/bench_to_json.py
  // can refuse to bless a debug-build baseline.
#ifdef __OPTIMIZE__
  benchmark::AddCustomContext("fairshare_build_type", "release");
#else
  benchmark::AddCustomContext("fairshare_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
