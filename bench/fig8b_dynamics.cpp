// Figure 8(b): adaptation dynamics.  Ten saturated peers at 1024 kbps;
// one peer's upload drops to 512 kbps at t = 1000 s and is restored at
// t = 3000 s.  Its download tracks the change (slowly, as the paper
// notes), and the other peers quickly recover the lost service among
// themselves.
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/scenario.hpp"

int main() {
  using namespace fairshare;
  bench::header("Figure 8(b)",
                "one peer's upload drops 1024->512 kbps at t=1000, restored "
                "at t=3000");

  const std::size_t n = 10;
  core::Scenario sc;
  std::vector<std::string> labels;
  for (std::size_t i = 0; i < n; ++i) {
    sc.add_peer(1024.0);
    labels.push_back(i == 0 ? "peer0_drops" : "peer" + std::to_string(i));
  }
  sc.capacity_schedule(0, [](std::uint64_t t) {
    return (t >= 1000 && t < 3000) ? 512.0 : 1024.0;
  });
  sim::Simulator sim = sc.build();
  sim.run(10000);

  bench::print_download_series(sim, 10, 200, labels);
  bench::ascii_chart(sim, 50, labels);

  const double before = sim.download(0).mean(800, 1000);
  const double during = sim.download(0).mean(2500, 3000);
  const double after = sim.download(0).mean(9000, 10000);
  const double other_during = sim.download(5).mean(2500, 3000);
  std::printf("peer0: before=%.1f during-drop=%.1f after-restore=%.1f\n",
              before, during, after);
  std::printf("peer5 during peer0's drop: %.1f\n", other_during);

  bench::shape_check(before > 0.95 * 1024,
                     "pre-drop, peer 0 downloads at ~1024 kbps");
  bench::shape_check(during < 0.85 * before,
                     "peer 0's download falls after its upload drops");
  bench::shape_check(during > 512 * 0.9,
                     "...but not below its reduced contribution level");
  bench::shape_check(after > 0.90 * 1024,
                     "peer 0's download recovers after capacity is restored "
                     "(slow dynamics: may still be converging)");
  bench::shape_check(other_during > 0.97 * 1024,
                     "the other peers quickly recover the lost service "
                     "amongst themselves");
  return 0;
}
