// Extension: "geographic data robustness" quantified (Introduction bullet:
// "Robustness — Data is redundantly available from various sources").
//
// Monte Carlo over peer availability: each of the n-1 helper peers stores
// k' coded messages and is online independently with probability p; the
// owner is offline (the remote-access scenario).  The file is recoverable
// iff the online peers jointly hold >= k *distinct-enough* messages — with
// large q any k distinct messages decode, so recoverability is
// sum-of-online-stores >= k with distinctness guaranteed by construction
// (dissemination gives each peer its own batch).
//
// Compares against replication with the same total storage: storing full
// replicas at floor((n-1)*k'/k) peers survives only if one of THOSE peers
// is online.  Coding dominates at every loss rate — the classic erasure-
// coding vs replication result, realized by this system's dissemination.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "sim/rng.hpp"

namespace {

using namespace fairshare;

// P[file recoverable] with n_helpers peers each holding kprime distinct
// messages, each online w.p. p: need sum over online stores >= k.
double coded_availability(std::size_t n_helpers, std::size_t kprime,
                          std::size_t k, double p, sim::SplitMix64& rng,
                          int trials) {
  int ok = 0;
  for (int t = 0; t < trials; ++t) {
    std::size_t have = 0;
    for (std::size_t i = 0; i < n_helpers; ++i)
      if (rng.next_double() < p) have += kprime;
    if (have >= k) ++ok;
  }
  return static_cast<double>(ok) / trials;
}

// Same storage budget spent on whole-file replicas.
double replica_availability(std::size_t replicas, double p,
                            sim::SplitMix64& rng, int trials) {
  int ok = 0;
  for (int t = 0; t < trials; ++t) {
    bool alive = false;
    for (std::size_t i = 0; i < replicas && !alive; ++i)
      alive = rng.next_double() < p;
    if (alive) ++ok;
  }
  return static_cast<double>(ok) / trials;
}

}  // namespace

int main() {
  bench::header("Extension: robustness",
                "file availability under peer failures — coding vs replicas");

  const std::size_t n_helpers = 9;  // the paper's 10-peer network sans owner
  const std::size_t k = 8;          // paper defaults (1 MB, q=2^32, m=2^15)
  const std::size_t kprime = 4;     // half-storage mode, 4.5x total redundancy
  const std::size_t replicas = n_helpers * kprime / k;  // same bytes: 4 copies
  const int trials = 20000;

  std::printf("p_online,coded_availability,replica_availability\n");
  sim::SplitMix64 rng(77);
  bool coding_dominates = true;
  double coded_at_half = 0;
  for (double p : {0.3, 0.5, 0.7, 0.9, 0.99}) {
    const double coded =
        coded_availability(n_helpers, kprime, k, p, rng, trials);
    const double replicated = replica_availability(replicas, p, rng, trials);
    std::printf("%.2f,%.4f,%.4f\n", p, coded, replicated);
    if (coded + 0.01 < replicated) coding_dominates = false;
    if (p == 0.5) coded_at_half = coded;
  }

  bench::shape_check(coding_dominates,
                     "coded dissemination is at least as available as "
                     "same-budget replication at every online probability");
  bench::shape_check(coded_at_half > 0.85,
                     "with half the peers offline the file stays "
                     "recoverable >85% of the time (geographic robustness)");
  return 0;
}
