// Figure 6: three-peer home-video streaming day.  Each user streams during
// 12 randomly chosen one-hour blocks of a 24-hour day; every peer
// contributes its upload all day.  The shaded regions of the paper's plot
// — download capacity above what a single-user (isolated) setup delivers —
// appear here as per-hour gains.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/scenario.hpp"

int main() {
  using namespace fairshare;
  bench::header("Figure 6",
                "3 peers 256/512/1024 kbps, 12 random streaming hours each");

  const std::vector<double> uploads{256, 512, 1024};
  core::Scenario sc;
  for (std::size_t i = 0; i < uploads.size(); ++i) {
    sc.add_peer(uploads[i]);
    sc.demand(i, std::make_shared<sim::RandomBlocksDemand>(
                     3600, 24, 12, 1000 + i));
  }
  sim::Simulator sim = sc.build();
  sim.run(24 * 3600);

  std::printf("hour,peer0_dl,peer0_req,peer1_dl,peer1_req,peer2_dl,peer2_req\n");
  for (int h = 0; h < 24; ++h) {
    const std::size_t b = static_cast<std::size_t>(h) * 3600;
    std::printf("%d", h);
    for (std::size_t i = 0; i < 3; ++i)
      std::printf(",%.0f,%.0f", sim.download(i).mean(b, b + 3600),
                  sim.requested(i).mean(b, b + 3600));
    std::printf("\n");
  }

  // Gains: extra bandwidth over the isolated baseline while streaming.
  bool all_gain = true;
  bool never_below = true;
  for (std::size_t i = 0; i < 3; ++i) {
    double active_dl = 0.0;
    std::size_t active_slots = 0;
    for (std::size_t t = 0; t < sim.now(); ++t) {
      if (sim.requested(i).at(t) > 0.5) {
        active_dl += sim.download(i).at(t);
        ++active_slots;
      }
    }
    const double mean_active =
        active_slots ? active_dl / static_cast<double>(active_slots) : 0.0;
    std::printf("peer%zu mean streaming rate %.1f kbps vs isolated %.0f\n", i,
                mean_active, uploads[i]);
    if (mean_active <= uploads[i] * 1.02) all_gain = false;
    // Long-run average must not fall below the isolated average (Thm 1).
    if (sim.average_download(i) + 1e-6 < sim.isolated_average(i))
      never_below = false;
  }
  bench::shape_check(all_gain,
                     "every user streams faster than its isolated upload "
                     "capacity (the shaded gains)");
  bench::shape_check(never_below,
                     "no user's long-run average falls below isolation "
                     "(incentive to join)");
  return 0;
}
