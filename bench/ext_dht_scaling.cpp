// Extension bench (not a paper figure): scaling of the Chord content-
// location substrate — average/worst lookup hops vs ring size, matching
// the O(log n) bound the DHT literature (cited in the paper's Section II)
// promises.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "dht/chord.hpp"
#include "sim/rng.hpp"

int main() {
  using namespace fairshare;
  bench::header("Extension: DHT scaling",
                "Chord lookup hops vs ring size (content location substrate)");

  std::printf("nodes,avg_hops,p99_hops,log2_n\n");
  bool logarithmic = true;
  for (std::size_t n : {16u, 64u, 256u, 1024u}) {
    dht::ChordRing ring;
    sim::SplitMix64 rng(2006 + n);
    while (ring.size() < n) ring.join(rng.next());
    const auto nodes = ring.nodes();

    const int trials = 2000;
    std::vector<std::size_t> hops;
    hops.reserve(trials);
    for (int t = 0; t < trials; ++t) {
      const auto r =
          ring.lookup(rng.next(), nodes[rng.next_below(nodes.size())]);
      hops.push_back(r.hops);
    }
    std::sort(hops.begin(), hops.end());
    double sum = 0;
    for (std::size_t h : hops) sum += static_cast<double>(h);
    const double avg = sum / trials;
    const std::size_t p99 = hops[trials * 99 / 100];
    const double log_n = std::log2(static_cast<double>(n));
    std::printf("%zu,%.2f,%zu,%.1f\n", n, avg, p99, log_n);
    if (avg > log_n) logarithmic = false;
  }

  bench::shape_check(logarithmic,
                     "average lookup stays below log2(n) hops at every size");
  return 0;
}
