// Extension: session scaling on the event-driven serving core.
//
// One PeerServer on the epoll backend serves 32, 128, then 512 concurrent
// paced sessions; the server-side byte counters measure delivered
// throughput over a steady-state window at each width.  The reactor's
// claim is that sessions are state machines multiplexed onto O(num_loops)
// threads, so the paced rate must stay FLAT as the session count grows —
// where a thread-per-session server would start paying scheduler and
// memory costs per connection.
//
// Optional argv[1]: write the measured points as JSON (uploaded by CI
// next to BENCH_kernels.json; runners are too noisy to gate merges on,
// so the shape checks print rather than fail the build).
#include <cstdio>
#include <string>
#include <vector>

#include "coding/encoder.hpp"
#include "common.hpp"
#include "net/peer_server.hpp"
#include "p2p/wire.hpp"
#include "sim/rng.hpp"

#ifdef __linux__
#include <poll.h>
#include <sys/socket.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <thread>

namespace {

using namespace fairshare;
using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kFileId = 4;
constexpr double kRateKbps = 48000.0;

// 256 B messages so even 1/512th of the rate refills a session's bucket
// every few quanta (see tests/net/session_soak_test.cpp on cycle length).
p2p::MessageStore make_store() {
  sim::SplitMix64 rng(17);
  std::vector<std::byte> data(20000);
  for (auto& b : data) b = std::byte{static_cast<std::uint8_t>(rng.next())};
  coding::SecretKey secret{};
  secret[0] = 3;
  coding::FileEncoder encoder(secret, kFileId, data,
                              {gf::FieldId::gf2_32, 64});
  p2p::MessageStore store;
  for (auto& m : encoder.generate(4096)) store.store(std::move(m));
  return store;
}

std::size_t streaming_sessions(const net::PeerServer& server) {
  std::size_t n = 0;
  for (const auto& share : server.allocation_snapshot())
    n += share.active_sessions;
  return n;
}

/// Serve `sessions` concurrent downloads for a fixed window; returns the
/// steady-state delivered rate in kbps (0 on setup failure).
double measure(std::size_t sessions, std::size_t* threads_out,
               std::string* backend_out) {
  net::PeerServer::Config config;
  config.require_auth = false;
  config.peer_id = 2;
  config.rate_kbps = kRateKbps;
  config.num_loops = 2;
  net::PeerServer server(config, make_store());
  if (!server.start()) return 0.0;
  *threads_out = server.serving_threads();
  *backend_out = net::to_string(server.backend());

  std::vector<net::Socket> clients;
  clients.reserve(sessions);
  for (std::size_t i = 0; i < sessions; ++i) {
    auto socket = net::Socket::connect_to("127.0.0.1", server.port());
    if (!socket) return 0.0;
    p2p::wire::FileRequest request;
    request.user_id = 1;
    request.file_id = kFileId;
    if (!net::send_frame(*socket, p2p::wire::encode(request))) return 0.0;
    socket->set_nonblocking(true);
    clients.push_back(std::move(*socket));
  }

  std::atomic<bool> drain_stop{false};
  std::thread drainer([&] {
    std::vector<pollfd> pfds(sessions);
    for (std::size_t i = 0; i < sessions; ++i)
      pfds[i] = {clients[i].native_handle(), POLLIN, 0};
    std::vector<char> sink(64 * 1024);
    while (!drain_stop.load()) {
      if (::poll(pfds.data(), pfds.size(), 50) <= 0) continue;
      for (auto& p : pfds) {
        if (!(p.revents & (POLLIN | POLLHUP | POLLERR))) continue;
        const ssize_t n =
            ::recv(p.fd, sink.data(), sink.size(), MSG_DONTWAIT);
        if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK))
          p.events = 0;
      }
    }
  });

  double kbps = 0.0;
  const auto ramp_deadline = Clock::now() + std::chrono::seconds(10);
  while (streaming_sessions(server) < sessions &&
         Clock::now() < ramp_deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  if (streaming_sessions(server) == sessions) {
    constexpr auto kWindow = std::chrono::milliseconds(1000);
    const std::uint64_t before = server.user_bytes_sent(1);
    const auto t0 = Clock::now();
    std::this_thread::sleep_for(kWindow);
    const std::uint64_t after = server.user_bytes_sent(1);
    const double seconds = std::chrono::duration<double>(
        Clock::now() - t0).count();
    kbps = static_cast<double>(after - before) * 8.0 / 1000.0 / seconds;
  }
  drain_stop = true;
  drainer.join();
  server.stop();
  return kbps;
}

}  // namespace

int main(int argc, char** argv) {
  bench::header("Extension: session scaling",
                "paced throughput vs concurrent sessions on the reactor");

  const std::vector<std::size_t> widths = {32, 128, 512};
  std::vector<double> rates;
  std::size_t threads = 0;
  std::string backend;
  std::printf("sessions,kbps,ratio_vs_32,serving_threads\n");
  for (std::size_t n : widths) {
    const double kbps = measure(n, &threads, &backend);
    rates.push_back(kbps);
    std::printf("%zu,%.0f,%.3f,%zu\n", n, kbps,
                rates.front() > 0 ? kbps / rates.front() : 0.0, threads);
  }

  double lo = rates[0], hi = rates[0], sum = 0.0;
  for (double r : rates) {
    lo = std::min(lo, r);
    hi = std::max(hi, r);
    sum += r;
  }
  const double mean = sum / static_cast<double>(rates.size());
  const double spread = mean > 0 ? (hi - lo) / mean : 1.0;
  std::printf("backend=%s spread=%.3f\n", backend.c_str(), spread);

  if (argc > 1) {
    if (FILE* out = std::fopen(argv[1], "w")) {
      std::fprintf(out,
                   "{\n  \"bench\": \"ext_session_scaling\",\n"
                   "  \"backend\": \"%s\",\n"
                   "  \"rate_kbps\": %.0f,\n"
                   "  \"serving_threads\": %zu,\n"
                   "  \"spread\": %.4f,\n  \"points\": [\n",
                   backend.c_str(), kRateKbps, threads, spread);
      for (std::size_t i = 0; i < widths.size(); ++i)
        std::fprintf(out, "    {\"sessions\": %zu, \"kbps\": %.1f}%s\n",
                     widths[i], rates[i],
                     i + 1 < widths.size() ? "," : "");
      std::fprintf(out, "  ]\n}\n");
      std::fclose(out);
      std::printf("wrote %s\n", argv[1]);
    }
  }

  bench::shape_check(backend == "epoll",
                     "the epoll backend served every configuration");
  bench::shape_check(threads == 2,
                     "serving threads stayed O(loops) — 2 for 512 sessions");
  bench::shape_check(lo > 0.0, "every width sustained a nonzero paced rate");
  bench::shape_check(spread < 0.10,
                     "throughput flat within 10% from 32 to 512 sessions");
  bench::shape_check(rates.back() < 1.25 * kRateKbps,
                     "512 sessions never overshoot the configured uplink");
  return 0;
}

#else  // !__linux__

int main() {
  fairshare::bench::header(
      "Extension: session scaling",
      "paced throughput vs concurrent sessions on the reactor");
  std::printf("skipped: the reactor backend requires Linux epoll\n");
  return 0;
}

#endif
