// Table II: decoding (== encoding) times for 1 MB of data across (q, m).
//
// Absolute numbers differ from the paper's 2006 Pentium-4/NTL testbed; the
// claims to reproduce are the *shape*: fewer messages k (larger m or
// larger q) decode faster, larger fields are worth their more expensive
// symbol operations, and the paper's example point (q = 2^32, m = 2^15)
// sustains real-time (>= 1 MB/s) decoding.  Also reports the coefficient-
// matrix (k x k) share of the work — negligible, as the paper argues
// ("the matrix inversion time was negligible", ablation A3).
#include <chrono>
#include <cstdio>
#include <vector>

#include "coding/decoder.hpp"
#include "coding/encoder.hpp"
#include "common.hpp"
#include "linalg/progressive.hpp"
#include "sim/rng.hpp"

namespace {

using namespace fairshare;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct CellResult {
  std::size_t k;
  double encode_s;
  double decode_s;
  double coeff_only_s;  // k x k elimination alone (the "inversion" share)
};

CellResult run_cell(gf::FieldId field, std::size_t m,
                    const std::vector<std::byte>& data) {
  const coding::CodingParams params{field, m};
  coding::SecretKey secret{};
  secret[0] = 7;

  auto t0 = std::chrono::steady_clock::now();
  coding::FileEncoder encoder(secret, 1, data, params);
  const std::size_t k = encoder.k();
  const auto messages = encoder.generate(k);
  const double encode_s = seconds_since(t0);

  t0 = std::chrono::steady_clock::now();
  coding::FileDecoder decoder(secret, encoder.info());
  for (const auto& msg : messages) decoder.add(msg);
  const double decode_s = seconds_since(t0);
  if (!decoder.complete() || decoder.reconstruct() != data) {
    std::fprintf(stderr, "decode mismatch at %s m=%zu\n",
                 std::string(gf::field_name(field)).c_str(), m);
    std::exit(1);
  }

  // Coefficient-only elimination (payload length 1 symbol ~ pure k x k).
  t0 = std::chrono::steady_clock::now();
  {
    linalg::ProgressiveSolver solver(field, k, 1);
    coding::CoefficientGenerator gen(secret, 1, params, k);
    const auto& f = gf::field_view(field);
    std::vector<std::byte> tiny(f.row_bytes(1), std::byte{0});
    for (const auto& msg : messages)
      solver.add_row(gen.row(msg.message_id).data(), tiny.data());
  }
  const double coeff_only_s = seconds_since(t0);

  return {k, encode_s, decode_s, coeff_only_s};
}

}  // namespace

int main() {
  bench::header("Table II", "decoding (encoding) times for 1 MB across (q, m)");

  // 1 MB of pseudorandom data.
  sim::SplitMix64 rng(42);
  std::vector<std::byte> data(1u << 20);
  for (auto& b : data) b = std::byte{static_cast<std::uint8_t>(rng.next())};

  const gf::FieldId fields[] = {gf::FieldId::gf2_4, gf::FieldId::gf2_8,
                                gf::FieldId::gf2_16, gf::FieldId::gf2_32};
  double grid[4][6] = {};

  std::printf("decode seconds (k in parentheses); rows q, columns m\n");
  std::printf("%-10s", "q \\ m");
  for (int e = 13; e <= 18; ++e)
    std::printf("%14s", ("2^" + std::to_string(e)).c_str());
  std::printf("\n");

  double worst_coeff_share = 0.0;
  for (int fi = 0; fi < 4; ++fi) {
    std::printf("%-10s", std::string(gf::field_name(fields[fi])).c_str());
    for (int e = 13; e <= 18; ++e) {
      const CellResult r = run_cell(fields[fi], std::size_t{1} << e, data);
      grid[fi][e - 13] = r.decode_s;
      worst_coeff_share =
          std::max(worst_coeff_share, r.coeff_only_s / r.decode_s);
      char cell[32];
      std::snprintf(cell, sizeof cell, "%.3f(%zu)", r.decode_s, r.k);
      std::printf("%14s", cell);
    }
    std::printf("\n");
  }

  std::printf("\nthroughput MB/s at the paper's example point (q=2^32, m=2^15): "
              "%.1f\n", 1.0 / grid[3][2]);
  std::printf("max coefficient-elimination share of decode time: %.1f%%\n",
              100.0 * worst_coeff_share);

  // Shape checks mirroring the paper's reading of Table II.
  bool rows_monotone = true;
  for (int fi = 0; fi < 4; ++fi)
    for (int e = 1; e < 6; ++e)
      if (grid[fi][e] > grid[fi][e - 1] * 1.15) rows_monotone = false;
  bench::shape_check(rows_monotone,
                     "within each field, larger m (smaller k) decodes faster");

  // Column check limited to m <= 2^16: below ~5 ms the cells are pure
  // constant overhead and noise, as in the paper's own bottom-right cells.
  bool cols_monotone = true;
  for (int e = 0; e < 4; ++e)
    for (int fi = 1; fi < 4; ++fi)
      if (grid[fi][e] > grid[fi - 1][e] * 1.15) cols_monotone = false;
  bench::shape_check(cols_monotone,
                     "larger field sizes win despite costlier symbol ops "
                     "(\"it makes sense to use larger field sizes\")");

  bench::shape_check(grid[3][2] < 1.0,
                     "q=2^32, m=2^15 decodes 1 MB in under a second "
                     "(real-time streaming feasible)");
  bench::shape_check(worst_coeff_share < 0.25,
                     "coefficient-matrix work is a minor share of decoding "
                     "(the paper's 'matrix inversion time was negligible')");
  return 0;
}
