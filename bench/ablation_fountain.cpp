// Ablation A9: RLNC (the paper's codec) vs an LT fountain code (the
// "digital fountain" approach of the paper's related work [18]).
//
// Same 1 MB file, same block/message size.  Compares (a) reception
// overhead — symbols needed beyond k — and (b) decode CPU.  RLNC receives
// exactly k messages (screened batches) at the price of field arithmetic;
// LT pays a k(1+eps) reception overhead for XOR-only decoding.  In the
// paper's remote-access setting reception overhead is wasted *download
// bandwidth* — the scarce resource — which is a further reason RLNC fits.
#include <chrono>
#include <cstdio>
#include <vector>

#include "coding/decoder.hpp"
#include "coding/encoder.hpp"
#include "coding/fountain.hpp"
#include "common.hpp"
#include "sim/rng.hpp"

namespace {

using namespace fairshare;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  bench::header("Ablation A9",
                "RLNC (paper) vs LT fountain code [18]: overhead and CPU");

  sim::SplitMix64 rng(99);
  std::vector<std::byte> data(1u << 20);
  for (auto& b : data) b = std::byte{static_cast<std::uint8_t>(rng.next())};

  std::printf("k,block_KiB,rlnc_symbols,rlnc_overhead,lt_symbols,"
              "lt_overhead,rlnc_decode_s,lt_decode_s\n");
  bool rlnc_exact = true, lt_overhead_positive = true, lt_cpu_cheaper = true;
  for (const std::size_t block_bytes : {1u << 14, 1u << 13}) {
    const std::size_t m = block_bytes / 4;  // GF(2^32) symbols per message
    const coding::CodingParams params{gf::FieldId::gf2_32, m};
    coding::SecretKey secret{};
    secret[0] = 1;

    coding::FileEncoder encoder(secret, 1, data, params);
    const std::size_t k = encoder.k();
    const auto messages = encoder.generate(k);
    auto t0 = std::chrono::steady_clock::now();
    coding::FileDecoder rlnc(secret, encoder.info());
    for (const auto& msg : messages) rlnc.add(msg);
    const double rlnc_s = seconds_since(t0);
    if (!rlnc.complete() || rlnc.reconstruct() != data) return 1;
    const std::size_t rlnc_syms = messages.size();

    coding::LtEncoder lt_enc(data, block_bytes);
    // Decode CPU measured over the full reception (XOR work dominates).
    t0 = std::chrono::steady_clock::now();
    coding::LtDecoder lt_dec(lt_enc.k(), block_bytes, data.size());
    while (!lt_dec.complete()) lt_dec.add(lt_enc.next_symbol(rng));
    const double lt_s = seconds_since(t0);
    if (lt_dec.reconstruct() != data) return 1;
    const std::size_t lt_syms = lt_dec.symbols_received();

    const double rlnc_ov = static_cast<double>(rlnc_syms) / k - 1.0;
    const double lt_ov = static_cast<double>(lt_syms) / k - 1.0;
    std::printf("%zu,%zu,%zu,%.3f,%zu,%.3f,%.4f,%.4f\n", k,
                block_bytes / 1024, rlnc_syms, rlnc_ov, lt_syms, lt_ov,
                rlnc_s, lt_s);
    if (rlnc_syms != k) rlnc_exact = false;
    if (lt_syms <= k) lt_overhead_positive = false;
    if (lt_s > rlnc_s) lt_cpu_cheaper = false;
  }

  bench::shape_check(rlnc_exact,
                     "RLNC decodes from exactly k messages (screened "
                     "batches; 'exactly k messages will suffice')");
  bench::shape_check(lt_overhead_positive,
                     "the LT fountain needs strictly more than k symbols "
                     "(reception overhead = wasted download bandwidth)");
  bench::shape_check(lt_cpu_cheaper,
                     "LT decodes with less CPU (XOR-only peeling) — the "
                     "classic trade the paper resolves in favor of RLNC");
  return 0;
}
