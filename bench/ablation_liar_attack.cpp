// Ablation A1: why Equation (2) instead of Equation (3).
//
// A capacity liar inflates its declared upload by a factor L.  Under the
// declared-proportional baseline (Eq. 3) its download grows with the lie;
// under the contribution-proportional rule (Eq. 2) the lie is irrelevant
// because peers divide bandwidth by *measured received contribution*.
#include <cstdio>
#include <memory>
#include <vector>

#include "common.hpp"
#include "core/scenario.hpp"

namespace {

using namespace fairshare;

double liar_download(bool use_eq3, double lie_factor) {
  const std::size_t n = 6;
  const double mu = 400.0;
  core::Scenario sc;
  for (std::size_t i = 0; i < n; ++i) {
    sc.add_peer(mu);
    if (use_eq3)
      sc.policy(i, std::make_shared<alloc::DeclaredProportionalPolicy>());
  }
  sc.declares(0, mu * lie_factor);
  sim::Simulator sim = sc.build();
  sim.run(8000);
  return sim.download(0).mean(6000, 8000);
}

}  // namespace

int main() {
  bench::header("Ablation A1",
                "capacity-liar attack: Equation (2) vs Equation (3)");

  std::printf("lie_factor,eq3_liar_kbps,eq2_liar_kbps,honest_mu\n");
  double eq3_at_1 = 0, eq3_at_16 = 0, eq2_max_dev = 0;
  for (double lie : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    const double eq3 = liar_download(true, lie);
    const double eq2 = liar_download(false, lie);
    std::printf("%.0f,%.1f,%.1f,400\n", lie, eq3, eq2);
    if (lie == 1.0) eq3_at_1 = eq3;
    if (lie == 16.0) eq3_at_16 = eq3;
    eq2_max_dev = std::max(eq2_max_dev, std::abs(eq2 - 400.0));
  }

  bench::shape_check(eq3_at_16 > 2.0 * eq3_at_1,
                     "under Eq. (3) a 16x lie more than doubles the liar's "
                     "download (d/d(declared) > 0, Section IV-B)");
  bench::shape_check(eq2_max_dev < 0.05 * 400.0,
                     "under Eq. (2) the lie changes nothing: download stays "
                     "at the liar's true upload");
  return 0;
}
