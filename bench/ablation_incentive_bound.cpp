// Theorem 1 / Corollary 1 numerically: for randomized heterogeneous
// networks, print measured average downloads against the incentive lower
// bound (inequality 12) and the pairwise-fairness discrepancy as gamma->1.
#include <cstdio>
#include <memory>
#include <vector>

#include "common.hpp"
#include "core/scenario.hpp"
#include "sim/metrics.hpp"
#include "sim/rng.hpp"

namespace {

using namespace fairshare;

sim::Simulator random_network(std::uint64_t seed, std::size_t n,
                              double gamma_lo, double gamma_hi) {
  sim::SplitMix64 rng(seed);
  core::Scenario sc;
  for (std::size_t i = 0; i < n; ++i) {
    sc.add_peer(100.0 + static_cast<double>(rng.next_below(900)));
    const double gamma = gamma_lo + (gamma_hi - gamma_lo) * rng.next_double();
    sc.demand(i, std::make_shared<sim::BernoulliDemand>(gamma, rng.next()));
  }
  return sc.build();
}

}  // namespace

int main() {
  bench::header("Theorem 1 / Corollary 1",
                "incentive bound and pairwise fairness, randomized networks");

  std::printf("net,peer,gamma,isolated,bound,measured,slack\n");
  bool bound_holds = true;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    sim::Simulator s = random_network(seed, 6, 0.2, 0.9);
    s.run(40000);
    for (std::size_t i = 0; i < s.n(); ++i) {
      const sim::IncentiveBound b = sim::incentive_bound(s, i);
      const double slack = b.average_download - b.bound;
      std::printf("%llu,%zu,%.2f,%.1f,%.1f,%.1f,%.1f\n",
                  static_cast<unsigned long long>(seed), i,
                  s.empirical_gamma(i), b.isolated, b.bound,
                  b.average_download, slack);
      if (b.average_download < 0.97 * b.bound) bound_holds = false;
    }
  }
  bench::shape_check(bound_holds,
                     "inequality (12) holds for every peer in every random "
                     "network (3% finite-horizon slack)");

  std::printf("\ngamma,pairwise_unfairness\n");
  double last_unfairness = 1.0;
  bool tightens = true;
  for (double gamma : {0.5, 0.8, 0.95, 1.0}) {
    sim::Simulator s = random_network(99, 6, gamma, gamma);
    s.run(40000);
    const double u = sim::pairwise_unfairness(s);
    std::printf("%.2f,%.4f\n", gamma, u);
    if (gamma == 1.0 && u > 0.05) tightens = false;
    last_unfairness = u;
  }
  bench::shape_check(tightens && last_unfairness < 0.05,
                     "pairwise fairness becomes exact in the saturated "
                     "regime (Corollary 1)");
  return 0;
}
