// Figure 8(a): incentive to contribute while idle.
//
// Peer 0 contributes from t = 0 but downloads only from t = 1000; peer 1
// neither contributes nor downloads before t = 1000; the other eight peers
// contribute and download throughout.  After t = 1000, peer 0's banked
// credit buys it a visibly better download rate than latecomer peer 1, and
// before t = 1000 the others enjoy rates above their own upload (they
// split peer 0's unused bandwidth).
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/scenario.hpp"

int main() {
  using namespace fairshare;
  bench::header("Figure 8(a)",
                "contribute-while-idle credit; 10 peers at 1024 kbps");

  const std::size_t n = 10;
  const double mu = 1024.0;
  core::Scenario sc;
  std::vector<std::string> labels;
  for (std::size_t i = 0; i < n; ++i) {
    sc.add_peer(mu);
    labels.push_back(i == 0 ? "peer0_earlyContrib"
                            : (i == 1 ? "peer1_lateContrib"
                                      : "peer" + std::to_string(i)));
  }
  // Peers 0 and 1 start downloading at t=1000; peer 1 also only starts
  // contributing then.
  using Iv = sim::IntervalDemand::Interval;
  sc.demand(0, std::make_shared<sim::IntervalDemand>(
                   std::vector<Iv>{{1000, 3500}}));
  sc.demand(1, std::make_shared<sim::IntervalDemand>(
                   std::vector<Iv>{{1000, 3500}}));
  sc.contributes_when(1, [](std::uint64_t t) { return t >= 1000; });
  sim::Simulator sim = sc.build();
  sim.run(3500);

  bench::print_download_series(sim, 10, 100, labels);
  bench::ascii_chart(sim, 50, labels);

  const double others_before = sim.download(5).mean(500, 1000);
  const double peer0_after = sim.download(0).mean(1000, 1500);
  const double peer1_after = sim.download(1).mean(1000, 1500);
  std::printf("others before t=1000: %.1f kbps (upload %.0f)\n",
              others_before, mu);
  std::printf("peer0 (banked credit) after t=1000: %.1f kbps\n", peer0_after);
  std::printf("peer1 (no credit)     after t=1000: %.1f kbps\n", peer1_after);

  bench::shape_check(others_before > mu,
                     "before t=1000 the 8 active users download above their "
                     "own upload (they absorb peer 0's idle contribution)");
  bench::shape_check(peer0_after > 1.05 * peer1_after,
                     "the peer that contributed while idle is rewarded with "
                     "a measurably better rate than the late joiner");
  bench::shape_check(peer0_after > mu && peer1_after <= 1.02 * mu,
                     "banked credit buys service above one's own upload; "
                     "the late joiner starts at roughly its own rate");
  bench::shape_check(sim.download(1).mean(0, 1000) == 0.0,
                     "peer 1 receives nothing before it requests");
  return 0;
}
