// Extension: service capacity under job workloads (the Yang-de Veciana
// [16,17] style of analysis the paper builds on).
//
// Each user receives download jobs by a Poisson-like process (geometric
// inter-arrivals) and requests bandwidth while its queue is non-empty.
// Measures mean job latency vs offered load for the paper's Equation (2)
// and the equal-split baseline — both with all-honest peers and with a
// free-rider minority, where Eq. (2)'s service differentiation protects
// the honest users' latency.
#include <cstdio>
#include <memory>
#include <vector>

#include "alloc/policies.hpp"
#include "common.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace fairshare;

struct WorkloadResult {
  double honest_mean_latency = 0.0;
  double rider_mean_latency = 0.0;
  std::size_t honest_jobs = 0;
};

// rho: offered load per user (arrival_rate * job_kb / mu).
WorkloadResult run(double rho, std::size_t riders, bool equal_split,
                   std::uint64_t seed) {
  const std::size_t n = 10;
  const double mu = 500.0;               // kbps
  const double job_kb = 4000.0;          // 4 Mb per job (~8 s alone)
  const double arrival_p = rho * mu / job_kb;  // per slot per user

  std::vector<std::shared_ptr<sim::ManualDemand>> demand(n);
  std::vector<sim::PeerSetup> peers;
  for (std::size_t i = 0; i < n; ++i) {
    sim::PeerSetup p;
    p.upload_kbps = mu;
    demand[i] = std::make_shared<sim::ManualDemand>();
    p.demand = demand[i];
    if (i < riders)
      p.policy = std::make_shared<alloc::FreeRiderPolicy>();
    else if (equal_split)
      p.policy = std::make_shared<alloc::EqualSplitPolicy>();
    else
      p.policy = std::make_shared<alloc::ProportionalContributionPolicy>(n);
    peers.push_back(std::move(p));
  }
  sim::Simulator sim(std::move(peers));

  sim::SplitMix64 rng(seed);
  std::vector<double> remaining(n, 0.0);        // current job residue (kb)
  std::vector<std::vector<std::uint64_t>> queue(n);  // arrival slots
  std::vector<std::uint64_t> started(n, 0);
  double honest_latency = 0, rider_latency = 0;
  std::size_t honest_done = 0, rider_done = 0;

  const std::uint64_t horizon = 40000;
  for (std::uint64_t t = 0; t < horizon; ++t) {
    // Arrivals.
    for (std::size_t i = 0; i < n; ++i)
      if (rng.next_double() < arrival_p) queue[i].push_back(t);
    // Start next job if idle.
    for (std::size_t i = 0; i < n; ++i) {
      if (remaining[i] <= 0.0 && !queue[i].empty()) {
        remaining[i] = job_kb;
        started[i] = queue[i].front();
      }
      demand[i]->set(remaining[i] > 0.0);
    }
    sim.step();
    // Progress.
    for (std::size_t i = 0; i < n; ++i) {
      if (remaining[i] <= 0.0) continue;
      remaining[i] -= sim.download(i).at(t);
      if (remaining[i] <= 0.0) {
        const double latency = static_cast<double>(t + 1 - started[i]);
        if (i < riders) {
          rider_latency += latency;
          ++rider_done;
        } else {
          honest_latency += latency;
          ++honest_done;
        }
        queue[i].erase(queue[i].begin());
      }
    }
  }
  WorkloadResult out;
  out.honest_jobs = honest_done;
  out.honest_mean_latency =
      honest_done ? honest_latency / static_cast<double>(honest_done) : 1e9;
  out.rider_mean_latency =
      rider_done ? rider_latency / static_cast<double>(rider_done) : 1e9;
  return out;
}

}  // namespace

int main() {
  bench::header("Extension: service capacity",
                "job latency vs load; Eq. (2) service differentiation");

  std::printf("rho,eq2_latency_s,equal_split_latency_s\n");
  bool loaded_grows = true;
  double eq2_low = 0, eq2_high = 0;
  for (double rho : {0.3, 0.6, 0.9}) {
    const WorkloadResult eq2 = run(rho, 0, false, 1);
    const WorkloadResult eq = run(rho, 0, true, 1);
    std::printf("%.1f,%.1f,%.1f\n", rho, eq2.honest_mean_latency,
                eq.honest_mean_latency);
    if (rho == 0.3) eq2_low = eq2.honest_mean_latency;
    if (rho == 0.9) eq2_high = eq2.honest_mean_latency;
  }
  if (eq2_high <= eq2_low) loaded_grows = false;

  std::printf("\nwith 3/10 free riders at rho=0.6:\n");
  std::printf("policy,honest_latency_s,rider_latency_s\n");
  const WorkloadResult eq2_r = run(0.6, 3, false, 2);
  const WorkloadResult eq_r = run(0.6, 3, true, 2);
  std::printf("eq2,%.1f,%.1f\n", eq2_r.honest_mean_latency,
              eq2_r.rider_mean_latency);
  std::printf("equal_split,%.1f,%.1f\n", eq_r.honest_mean_latency,
              eq_r.rider_mean_latency);

  bench::shape_check(loaded_grows,
                     "latency grows with offered load (queueing behaves)");
  bench::shape_check(
      eq2_r.honest_mean_latency < eq_r.honest_mean_latency,
      "with free riders present, Eq. (2) gives honest users lower latency "
      "than equal-split (service differentiation, cf. [20])");
  bench::shape_check(eq2_r.rider_mean_latency > 4.0 * eq2_r.honest_mean_latency,
                     "under Eq. (2) the riders themselves wait far longer "
                     "(no free lunch)");
  return 0;
}
