// Figure 1: transmission times over asymmetric consumer links, log-log.
//
// Pure link arithmetic — the motivating chart.  The paper's callouts: a
// one-hour TV-resolution mpeg-2 home video (~1 GB) takes ~9 hours to send
// up a 256 kbps cable-modem uplink but ~45 minutes to pull down a 3 Mbps
// downlink; transfers differ by roughly an order of magnitude link-for-link.
#include <cmath>
#include <cstdio>

#include "common.hpp"

namespace {

struct Link {
  const char* name;
  double kbps;
};

constexpr Link kLinks[] = {
    {"dialup_up_28kbps", 28.0},
    {"dialup_down_56kbps", 56.0},
    {"cable_up_256kbps", 256.0},
    {"cable_down_3Mbps", 3000.0},
};

double seconds_for(double megabytes, double kbps) {
  return megabytes * 8.0 * 1000.0 / kbps;  // MB -> kilobits / kbps
}

}  // namespace

int main() {
  using fairshare::bench::header;
  using fairshare::bench::shape_check;
  header("Figure 1", "transmission time vs size over asymmetric links");

  std::printf("size_MB");
  for (const Link& l : kLinks) std::printf(",%s_seconds", l.name);
  std::printf("\n");
  for (double exp = 0.0; exp <= 5.0; exp += 0.25) {
    const double mb = std::pow(10.0, exp);
    std::printf("%.2f", mb);
    for (const Link& l : kLinks) std::printf(",%.0f", seconds_for(mb, l.kbps));
    std::printf("\n");
  }

  // The paper's worked example: 1-hour TV-resolution mpeg-2 video ~1 GB.
  const double video_mb = 1024.0;
  const double up = seconds_for(video_mb, 256.0);
  const double down = seconds_for(video_mb, 3000.0);
  std::printf("\nmpeg2_1hr_video_1GB: upload_256kbps=%.1f h, "
              "download_3Mbps=%.1f min\n",
              up / 3600.0, down / 60.0);

  shape_check(up > 8.5 * 3600 && up < 10.5 * 3600,
              "1 GB up a 256 kbps cable link takes ~9 hours");
  shape_check(down > 35 * 60 && down < 55 * 60,
              "1 GB down a 3 Mbps cable link takes ~45 minutes");
  shape_check(up / down > 10.0,
              "cable up/down asymmetry spans an order of magnitude");
  shape_check(seconds_for(10.0, 28.0) / seconds_for(10.0, 56.0) == 2.0,
              "dialup asymmetry is the 28/56 capacity ratio");
  return 0;
}
