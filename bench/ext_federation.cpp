// Federated-swarm serving capacity: sessions per core at flat throughput
// as the federation grows from 1 to 2 to 4 server processes' worth of
// state (each "process" is one DiscoveryNode + one PeerServer pair over
// real loopback TCP, exactly the shape tests/disco/federation_test.cpp
// drives).
//
// Every iteration resolves the file's providers purely through DHT
// lookups (no static peer list) and then runs a fixed pool of concurrent
// download sessions spread across the resolved endpoints.  The headline
// number is bytes_per_second of delivered payload; the committed counters
// are the federation size, the session pool, sessions_per_core, and the
// routing hop count of the resolve — a federation that scales keeps
// bytes_per_second roughly flat per server while hops stay O(log n).
//
// The bench_baseline CMake target runs this with --benchmark_out and
// merges the condensed entries into BENCH_kernels.json under
// runs.federation (tools/bench_to_json.py --merge).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "coding/encoder.hpp"
#include "disco/client.hpp"
#include "disco/node.hpp"
#include "net/download_client.hpp"
#include "net/peer_server.hpp"
#include "sim/rng.hpp"

namespace {

using namespace fairshare;

constexpr std::uint64_t kFileId = 42;
constexpr std::size_t kFileBytes = 60'000;
constexpr std::size_t kSessions = 8;
// Quarter-point ring ids keep the routing geometry identical across runs.
constexpr dht::RingId kIds[] = {
    0x2000000000000000ull, 0x6000000000000000ull, 0xa000000000000000ull,
    0xe000000000000000ull};

std::vector<std::byte> blob(std::size_t n, std::uint64_t seed) {
  sim::SplitMix64 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte{static_cast<std::uint8_t>(rng.next())};
  return out;
}

// One federation: n discovery nodes, n unpaced servers announcing into
// them, all fully joined and announced before the constructor returns.
struct Federation {
  std::vector<std::shared_ptr<disco::DiscoveryNode>> nodes;
  std::vector<std::unique_ptr<net::PeerServer>> servers;
  coding::FileInfo info;
  coding::SecretKey secret{};

  explicit Federation(std::size_t n) {
    secret[0] = 99;
    const std::vector<std::byte> data = blob(kFileBytes, 4321);
    const coding::CodingParams params{gf::FieldId::gf2_32, 256};
    coding::FileEncoder encoder(secret, kFileId, data, params);

    for (std::size_t i = 0; i < n; ++i) {
      disco::NodeConfig node_config;
      node_config.ring_id = kIds[i];
      node_config.origin_id = 100 + i;
      node_config.gossip_period_ms = 100;
      node_config.reannounce_period_ms = 500;
      node_config.provider_ttl_ms = 600'000;
      node_config.rng_seed = 500 + i;
      if (i > 0) node_config.seeds = {nodes[0]->self()};
      auto node =
          std::make_shared<disco::DiscoveryNode>(std::move(node_config));
      node->start();
      nodes.push_back(node);

      p2p::MessageStore store;
      for (auto& m : encoder.generate(encoder.k())) store.store(std::move(m));
      net::PeerServer::Config config;
      config.peer_id = 100 + i;
      config.require_auth = false;
      config.rng_seed = 300 + i;
      config.discovery = node;
      auto server =
          std::make_unique<net::PeerServer>(config, std::move(store));
      server->start();
      servers.push_back(std::move(server));
    }
    // message_digests covers every message generated so far; take the
    // client metadata only after all stores are stocked.
    info = encoder.info();
    wait_announced();
  }

  ~Federation() {
    for (auto& server : servers) server->stop();
    for (auto& node : nodes) node->stop();
  }

  disco::ClientConfig disco_config() const {
    disco::ClientConfig config;
    for (const auto& node : nodes) config.seeds.push_back(node->self());
    return config;
  }

  void wait_announced() const {
    const disco::Client client(disco_config());
    while (client.resolve(kFileId).size() < servers.size())
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
};

void BM_FederatedDownload(benchmark::State& state) {
  const auto server_count = static_cast<std::size_t>(state.range(0));
  const Federation fed(server_count);

  int hops = 0;
  double delivered = 0.0;
  std::size_t failed = 0;
  for (auto _ : state) {
    const auto peers =
        disco::resolve_peers(kFileId, fed.disco_config(), {}, &hops);
    if (peers.size() != server_count) {
      state.SkipWithError("DHT resolve did not return every server");
      return;
    }
    std::vector<std::thread> sessions;
    std::vector<std::uint8_t> ok(kSessions, 0);
    for (std::size_t s = 0; s < kSessions; ++s) {
      sessions.emplace_back([&, s] {
        // Each session downloads from one resolved endpoint, round-robin
        // across the federation, as a distinct user.
        net::DownloadOptions options;
        options.user_id = 1 + s;
        const std::vector<net::PeerEndpoint> mine{peers[s % peers.size()]};
        const auto report =
            net::download_file(mine, fed.secret, fed.info, options);
        ok[s] = report.success ? 1 : 0;
      });
    }
    for (auto& session : sessions) session.join();
    for (std::size_t s = 0; s < kSessions; ++s) {
      if (ok[s])
        delivered += static_cast<double>(kFileBytes);
      else
        ++failed;
    }
  }

  const double cores =
      static_cast<double>(std::thread::hardware_concurrency());
  state.counters["servers"] = static_cast<double>(server_count);
  state.counters["sessions"] = static_cast<double>(kSessions);
  state.counters["sessions_per_core"] =
      static_cast<double>(kSessions) / (cores > 0.0 ? cores : 1.0);
  state.counters["resolve_hops"] = static_cast<double>(hops);
  state.counters["downloads_failed"] = static_cast<double>(failed);
  state.SetBytesProcessed(static_cast<std::int64_t>(delivered));
}
BENCHMARK(BM_FederatedDownload)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  // Same self-report as microbench_kernels: record this binary's own
  // optimisation state so tools/bench_to_json.py can refuse to bless a
  // debug-build baseline.
#ifdef __OPTIMIZE__
  benchmark::AddCustomContext("fairshare_build_type", "release");
#else
  benchmark::AddCustomContext("fairshare_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
