// Figure 7: same day as Figure 6, but peer 1 only starts contributing
// after the first 3 hours.  Two artifacts the paper highlights:
//   * peer 1 still gets some service in the first hours (others split
//     bandwidth obliviously off the initial equal credit);
//   * around hours 3-4 peer 1 is penalized for its earlier
//     non-contribution, with the penalty decaying as it earns credit.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/scenario.hpp"

int main() {
  using namespace fairshare;
  bench::header("Figure 7",
                "3 peers 256/512/1024 kbps; peer 1 contributes only after "
                "hour 3");

  const std::vector<double> uploads{256, 512, 1024};
  core::Scenario sc;
  for (std::size_t i = 0; i < uploads.size(); ++i) {
    sc.add_peer(uploads[i]);
    // Identical demand seeds to Figure 6 for comparability.
    sc.demand(i, std::make_shared<sim::RandomBlocksDemand>(
                     3600, 24, 12, 1000 + i));
  }
  sc.contributes_when(1, [](std::uint64_t t) { return t >= 3 * 3600; });
  sim::Simulator sim = sc.build();
  sim.run(24 * 3600);

  std::printf("hour,peer0_dl,peer0_req,peer1_dl,peer1_req,peer2_dl,peer2_req\n");
  for (int h = 0; h < 24; ++h) {
    const std::size_t b = static_cast<std::size_t>(h) * 3600;
    std::printf("%d", h);
    for (std::size_t i = 0; i < 3; ++i)
      std::printf(",%.0f,%.0f", sim.download(i).mean(b, b + 3600),
                  sim.requested(i).mean(b, b + 3600));
    std::printf("\n");
  }

  // Build a reference run where peer 1 contributes all day (Figure 6).
  core::Scenario ref;
  for (std::size_t i = 0; i < uploads.size(); ++i) {
    ref.add_peer(uploads[i]);
    ref.demand(i, std::make_shared<sim::RandomBlocksDemand>(
                      3600, 24, 12, 1000 + i));
  }
  sim::Simulator full = ref.build();
  full.run(24 * 3600);

  // Penalty window: peer 1's download while requesting, shortly after it
  // joins, is below the always-contributing reference.
  auto active_mean = [](const sim::Simulator& s, std::size_t i,
                        std::size_t b, std::size_t e) {
    double dl = 0.0;
    std::size_t n = 0;
    for (std::size_t t = b; t < e; ++t) {
      if (s.requested(i).at(t) > 0.5) {
        dl += s.download(i).at(t);
        ++n;
      }
    }
    return n ? dl / static_cast<double>(n) : 0.0;
  };

  const double penalty_window =
      active_mean(sim, 1, 3 * 3600, 6 * 3600);
  const double penalty_ref = active_mean(full, 1, 3 * 3600, 6 * 3600);
  const double late_window = active_mean(sim, 1, 12 * 3600, 24 * 3600);
  const double late_ref = active_mean(full, 1, 12 * 3600, 24 * 3600);
  std::printf("peer1 streaming rate hours 3-6: %.1f (vs %.1f always-on)\n",
              penalty_window, penalty_ref);
  std::printf("peer1 streaming rate hours 12-24: %.1f (vs %.1f always-on)\n",
              late_window, late_ref);

  bench::shape_check(
      penalty_window < 0.9 * penalty_ref || penalty_ref == 0.0,
      "peer 1 is penalized shortly after joining (hours 3-6)");
  bench::shape_check(late_window > 0.75 * late_ref,
                     "the penalty decays once peer 1 accumulates credit");

  // Early free service: before hour 3 the other peers, holding only the
  // equal initial credit, still serve peer 1 when it requests.
  const double early_service = active_mean(sim, 1, 0, 3 * 3600);
  bench::shape_check(early_service > 0.0,
                     "peer 1 still gets some service before contributing "
                     "(oblivious initial credit)");
  return 0;
}
