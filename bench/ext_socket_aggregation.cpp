// Extension: the headline aggregation effect over REAL TCP sockets.
//
// Peers run as localhost servers paced to a consumer uplink; the client
// downloads with 1, 2, 4, then 8 parallel sessions and measures the
// wall-clock rate.  The paper's claim — download rate approaches the SUM
// of the contributing uplinks, not the owner's single uplink — shows up
// as near-linear scaling.
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "coding/encoder.hpp"
#include "common.hpp"
#include "net/download_client.hpp"
#include "net/peer_server.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "sim/rng.hpp"

namespace {

using namespace fairshare;

}  // namespace

int main() {
  bench::header("Extension: socket aggregation",
                "parallel-session download rate over real TCP vs peer count");

  sim::SplitMix64 rng(3);
  std::vector<std::byte> file(192 * 1024);
  for (auto& b : file) b = std::byte{static_cast<std::uint8_t>(rng.next())};
  coding::SecretKey secret{};
  secret[0] = 8;
  const coding::CodingParams params{gf::FieldId::gf2_32, 1u << 11};  // 8 KiB
  coding::FileEncoder encoder(secret, 1, file, params);

  const double uplink_kbps = 768.0;
  const std::size_t max_peers = 8;
  // Every server and the client report into one registry, as a swarm on a
  // shared process would; series stay apart via their peer= labels.
  obs::MetricsRegistry registry;
  std::vector<std::unique_ptr<net::PeerServer>> servers;
  std::vector<net::PeerEndpoint> endpoints;
  for (std::size_t p = 0; p < max_peers; ++p) {
    p2p::MessageStore store;
    for (auto& m : encoder.generate(encoder.k())) store.store(std::move(m));
    net::PeerServer::Config config;
    config.peer_id = p;
    config.rate_kbps = uplink_kbps;
    config.require_auth = false;
    config.registry = &registry;
    auto server = std::make_unique<net::PeerServer>(config, std::move(store));
    if (!server->start()) return 1;
    net::PeerEndpoint ep;
    ep.port = server->port();
    ep.peer_id = p;
    endpoints.push_back(ep);
    servers.push_back(std::move(server));
  }

  std::printf("peers,seconds,kbps,scaling_vs_single\n");
  double single_kbps = 0.0, best_kbps = 0.0;
  std::uint64_t report_bytes_received = 0;
  bool all_exact = true;
  for (std::size_t n : {1u, 2u, 4u, 8u}) {
    const std::vector<net::PeerEndpoint> subset(endpoints.begin(),
                                                endpoints.begin() + n);
    net::DownloadOptions options;
    options.registry = &registry;
    const net::DownloadReport report =
        net::download_file(subset, secret, encoder.info(), options);
    report_bytes_received += report.bytes_received;
    if (!report.success || report.data != file) {
      all_exact = false;
      continue;
    }
    const double kbps = file.size() * 8.0 / 1000.0 / report.seconds;
    if (n == 1) single_kbps = kbps;
    best_kbps = std::max(best_kbps, kbps);
    std::printf("%zu,%.2f,%.0f,%.2f\n", n, report.seconds, kbps,
                kbps / single_kbps);
  }
  // Observability now flows from one registry snapshot instead of polling
  // each server's accessors: the same coherent instant covers every peer.
  const obs::RegistrySnapshot snap = registry.snapshot();
  std::printf("server,completed,messages,peak_sessions,user0_bytes\n");
  std::size_t total_completed = 0;
  for (std::size_t p = 0; p < servers.size(); ++p) {
    std::uint64_t completed = 0, messages = 0, user0_bytes = 0;
    double peak = 0.0;
    const std::string peer = std::to_string(p);
    for (const auto& c : snap.counters) {
      const bool mine = !c.labels.empty() && c.labels[0].second == peer;
      if (!mine) continue;
      if (c.name == "fairshare_server_sessions_completed_total")
        completed = c.value;
      else if (c.name == "fairshare_server_messages_sent_total")
        messages = c.value;
      else if (c.name == "fairshare_server_user_bytes_total" &&
               c.labels.size() > 1 && c.labels[1].second == "0")
        user0_bytes = c.value;
    }
    for (const auto& g : snap.gauges)
      if (g.name == "fairshare_server_peak_sessions" && !g.labels.empty() &&
          g.labels[0].second == peer)
        peak = g.value;
    total_completed += completed;
    std::printf("%zu,%llu,%llu,%.0f,%llu\n", p,
                static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(messages), peak,
                static_cast<unsigned long long>(user0_bytes));
  }
  // Per-user rate/byte table straight off the JSON exporter: the dump is
  // line-oriented, so each matching line IS one finished table row.
  std::printf("registry per-user series (JSON exporter lines):\n");
  std::istringstream json(obs::to_json(snap));
  for (std::string line; std::getline(json, line);)
    if (line.find("fairshare_server_user_bytes_total") != std::string::npos ||
        line.find("fairshare_server_user_rate_kbps") != std::string::npos)
      std::printf("  %s\n", line.c_str());
  for (const auto& share : servers[0]->allocation_snapshot())
    std::printf("alloc_snapshot: user=%llu rate_kbps=%.0f bytes=%llu "
                "sessions=%zu\n",
                static_cast<unsigned long long>(share.user_id),
                share.rate_kbps,
                static_cast<unsigned long long>(share.bytes_sent),
                share.active_sessions);
  for (auto& s : servers) s->stop();

  bench::shape_check(all_exact, "every configuration reconstructed exactly");
  bench::shape_check(
      registry.counter_total("fairshare_client_bytes_received_total") ==
          report_bytes_received,
      "registry byte counters equal the DownloadReports exactly");
  bench::shape_check(total_completed > 0,
                     "servers closed sessions cleanly (stop frames observed)");
  bench::shape_check(single_kbps < 1.25 * uplink_kbps,
                     "one session is pinned near the single uplink rate");
  bench::shape_check(best_kbps > 4.0 * single_kbps,
                     "eight parallel sessions beat one uplink by >4x — "
                     "aggregation fills the download pipe");
  return 0;
}
