// Per-peer message storage (the "File-id.dat" store of Figure 3).
//
// Peers hold other users' coded messages verbatim: "rather than having
// peers transferring linear combinations of their information to others on
// the network, peers transmit exactly what was uploaded to their storage
// area ... peers do not need to perform any computation when messages are
// requested from them; they simply forward what they have stored"
// (Section III-A, technical difference 2).
//
// A per-file storage limit models the k' < k mode of Section III-D, where
// a peer "conserves storage space" and downloads must make up the deficit
// from other peers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "coding/message.hpp"

namespace fairshare::p2p {

/// Produces the next fresh coded message of one file (typically bound to
/// a coding::FileEncoder or coding::chunked::Encoder on the owning peer).
using MessageGenerator = std::function<coding::EncodedMessage()>;

class MessageStore {
 public:
  /// `per_file_limit`: maximum messages stored per file id (k' of Section
  /// III-D); additional uploads are rejected.
  explicit MessageStore(std::size_t per_file_limit = SIZE_MAX)
      : per_file_limit_(per_file_limit) {}

  /// Store a message verbatim.  Returns false (and drops it) when the
  /// per-file limit is reached, the exact message id is already held, or
  /// the file has an encode-on-demand source attached (mixing the two
  /// would renumber the source's index space mid-download).
  bool store(coding::EncodedMessage message);

  /// Attach an encode-on-demand source for `file_id`: up to `budget`
  /// further messages generated lazily by `next`, indexed after any
  /// verbatim-stored ones.  This is how the *owning* peer serves chunked
  /// files without pre-materializing every message.  Generated messages
  /// are cached in a std::deque, whose growth never invalidates
  /// references — the zero-copy serve path (net::try_write_frame_ext)
  /// keeps pointers into payloads while frames drain, and at() stays safe
  /// to call from concurrent sessions (generation is mutex-guarded).
  /// Replaces any previous source for the file.
  void attach_source(std::uint64_t file_id, std::size_t budget,
                     MessageGenerator next);

  /// Stored messages plus the attached source's budget, if any.
  std::size_t count(std::uint64_t file_id) const;
  /// Messages of one file in storage order; index < count(file_id).
  /// Indexes at or past the stored count are generated on demand; the
  /// returned reference stays valid for the store's lifetime.
  const coding::EncodedMessage& at(std::uint64_t file_id,
                                   std::size_t index) const;

  /// All file ids with at least one stored message or a source (sorted).
  std::vector<std::uint64_t> file_ids() const;

  /// Total bytes of stored payloads (the paper's "disk-space for
  /// bandwidth" trade).  On-demand caches are excluded: they are working
  /// memory of the serving session, not committed storage.
  std::size_t bytes_used() const { return bytes_used_; }
  std::size_t per_file_limit() const { return per_file_limit_; }

 private:
  struct Source {
    std::size_t budget = 0;
    MessageGenerator next;
    mutable std::mutex mutex;
    mutable std::deque<coding::EncodedMessage> cache;
  };

  std::size_t per_file_limit_;
  std::size_t bytes_used_ = 0;
  std::unordered_map<std::uint64_t, std::vector<coding::EncodedMessage>>
      files_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Source>> sources_;
};

}  // namespace fairshare::p2p
