// Per-peer message storage (the "File-id.dat" store of Figure 3).
//
// Peers hold other users' coded messages verbatim: "rather than having
// peers transferring linear combinations of their information to others on
// the network, peers transmit exactly what was uploaded to their storage
// area ... peers do not need to perform any computation when messages are
// requested from them; they simply forward what they have stored"
// (Section III-A, technical difference 2).
//
// A per-file storage limit models the k' < k mode of Section III-D, where
// a peer "conserves storage space" and downloads must make up the deficit
// from other peers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "coding/message.hpp"

namespace fairshare::p2p {

class MessageStore {
 public:
  /// `per_file_limit`: maximum messages stored per file id (k' of Section
  /// III-D); additional uploads are rejected.
  explicit MessageStore(std::size_t per_file_limit = SIZE_MAX)
      : per_file_limit_(per_file_limit) {}

  /// Store a message verbatim.  Returns false (and drops it) when the
  /// per-file limit is reached or the exact message id is already held.
  bool store(coding::EncodedMessage message);

  std::size_t count(std::uint64_t file_id) const;
  /// Messages of one file in storage order; index < count(file_id).
  const coding::EncodedMessage& at(std::uint64_t file_id,
                                   std::size_t index) const;

  /// All file ids with at least one stored message (sorted).
  std::vector<std::uint64_t> file_ids() const;

  /// Total bytes of stored payloads (the paper's "disk-space for
  /// bandwidth" trade).
  std::size_t bytes_used() const { return bytes_used_; }
  std::size_t per_file_limit() const { return per_file_limit_; }

 private:
  std::size_t per_file_limit_;
  std::size_t bytes_used_ = 0;
  std::unordered_map<std::uint64_t, std::vector<coding::EncodedMessage>>
      files_;
};

}  // namespace fairshare::p2p
