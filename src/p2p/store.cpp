#include "p2p/store.hpp"

#include <algorithm>
#include <cassert>

namespace fairshare::p2p {

bool MessageStore::store(coding::EncodedMessage message) {
  if (sources_.count(message.file_id) != 0) return false;
  auto& list = files_[message.file_id];
  if (list.size() >= per_file_limit_) return false;
  const auto dup = std::find_if(
      list.begin(), list.end(), [&](const coding::EncodedMessage& m) {
        return m.message_id == message.message_id;
      });
  if (dup != list.end()) return false;
  bytes_used_ += message.payload.size();
  list.push_back(std::move(message));
  return true;
}

void MessageStore::attach_source(std::uint64_t file_id, std::size_t budget,
                                 MessageGenerator next) {
  auto source = std::make_unique<Source>();
  source->budget = budget;
  source->next = std::move(next);
  sources_[file_id] = std::move(source);
}

std::vector<std::uint64_t> MessageStore::file_ids() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(files_.size() + sources_.size());
  for (const auto& [fid, list] : files_)
    if (!list.empty()) ids.push_back(fid);
  for (const auto& [fid, src] : sources_)
    if (src->budget > 0 && files_.count(fid) == 0) ids.push_back(fid);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::size_t MessageStore::count(std::uint64_t file_id) const {
  const auto it = files_.find(file_id);
  const std::size_t stored = it == files_.end() ? 0 : it->second.size();
  const auto sit = sources_.find(file_id);
  return stored + (sit == sources_.end() ? 0 : sit->second->budget);
}

const coding::EncodedMessage& MessageStore::at(std::uint64_t file_id,
                                               std::size_t index) const {
  const auto it = files_.find(file_id);
  const std::size_t stored = it == files_.end() ? 0 : it->second.size();
  if (index < stored) return it->second[index];

  const auto sit = sources_.find(file_id);
  assert(sit != sources_.end() && "index past stored messages, no source");
  const Source& src = *sit->second;
  const std::size_t want = index - stored;
  assert(want < src.budget);
  std::lock_guard<std::mutex> lock(src.mutex);
  while (src.cache.size() <= want) src.cache.push_back(src.next());
  return src.cache[want];
}

}  // namespace fairshare::p2p
