#include "p2p/store.hpp"

#include <algorithm>
#include <cassert>

namespace fairshare::p2p {

bool MessageStore::store(coding::EncodedMessage message) {
  auto& list = files_[message.file_id];
  if (list.size() >= per_file_limit_) return false;
  const auto dup = std::find_if(
      list.begin(), list.end(), [&](const coding::EncodedMessage& m) {
        return m.message_id == message.message_id;
      });
  if (dup != list.end()) return false;
  bytes_used_ += message.payload.size();
  list.push_back(std::move(message));
  return true;
}

std::vector<std::uint64_t> MessageStore::file_ids() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(files_.size());
  for (const auto& [fid, list] : files_)
    if (!list.empty()) ids.push_back(fid);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::size_t MessageStore::count(std::uint64_t file_id) const {
  const auto it = files_.find(file_id);
  return it == files_.end() ? 0 : it->second.size();
}

const coding::EncodedMessage& MessageStore::at(std::uint64_t file_id,
                                               std::size_t index) const {
  const auto it = files_.find(file_id);
  assert(it != files_.end() && index < it->second.size());
  return it->second[index];
}

}  // namespace fairshare::p2p
