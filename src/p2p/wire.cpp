#include "p2p/wire.hpp"

#include <bit>
#include <cstring>

namespace fairshare::p2p::wire {

namespace {

// ----------------------------------------------------------------- Writer

class Writer {
 public:
  explicit Writer(MessageType type) { put_u8(static_cast<std::uint8_t>(type)); }

  void put_u8(std::uint8_t v) { buf_.push_back(std::byte{v}); }

  void put_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      buf_.push_back(std::byte{static_cast<std::uint8_t>(v >> (8 * i))});
  }

  void put_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      buf_.push_back(std::byte{static_cast<std::uint8_t>(v >> (8 * i))});
  }

  void put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }

  void put_bytes(std::span<const std::uint8_t> data) {
    const auto* p = reinterpret_cast<const std::byte*>(data.data());
    buf_.insert(buf_.end(), p, p + data.size());
  }

  void put_bytes(std::span<const std::byte> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Length-prefixed (u32) byte string.
  void put_blob(std::span<const std::uint8_t> data) {
    put_u32(static_cast<std::uint32_t>(data.size()));
    put_bytes(data);
  }

  void put_blob(std::span<const std::byte> data) {
    put_u32(static_cast<std::uint32_t>(data.size()));
    put_bytes(data);
  }

  std::vector<std::byte> take() { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

// ----------------------------------------------------------------- Reader

class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  bool ok() const { return ok_; }
  bool at_end() const { return ok_ && pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

  bool expect_type(MessageType type) {
    return get_u8() == static_cast<std::uint8_t>(type) && ok_;
  }

  std::uint8_t get_u8() {
    if (!take(1)) return 0;
    return std::to_integer<std::uint8_t>(data_[pos_ - 1]);
  }

  std::uint32_t get_u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(
               std::to_integer<std::uint8_t>(data_[pos_ - 4 + i]))
           << (8 * i);
    return v;
  }

  std::uint64_t get_u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               std::to_integer<std::uint8_t>(data_[pos_ - 8 + i]))
           << (8 * i);
    return v;
  }

  double get_f64() { return std::bit_cast<double>(get_u64()); }

  bool get_bytes(std::span<std::uint8_t> out) {
    if (!take(out.size())) return false;
    std::memcpy(out.data(), data_.data() + pos_ - out.size(), out.size());
    return true;
  }

  /// Length-prefixed byte string; bounded so corrupt lengths fail cleanly.
  bool get_blob(std::vector<std::uint8_t>& out) {
    const std::uint32_t len = get_u32();
    if (!ok_ || len > remaining()) {
      ok_ = false;
      return false;
    }
    out.resize(len);
    return get_bytes(out);
  }

  bool get_blob_bytes(std::vector<std::byte>& out) {
    const std::uint32_t len = get_u32();
    if (!ok_ || len > remaining()) {
      ok_ = false;
      return false;
    }
    out.assign(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
               data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return true;
  }

 private:
  bool take(std::size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

void put_digest(Writer& w, const crypto::Sha256Digest& d) {
  w.put_bytes(std::span<const std::uint8_t>(d));
}

bool get_digest(Reader& r, crypto::Sha256Digest& d) {
  return r.get_bytes(d);
}

}  // namespace

// ---------------------------------------------------------------- encode

std::vector<std::byte> encode(const crypto::AuthHello& msg) {
  Writer w(MessageType::auth_hello);
  w.put_u64(msg.user_id);
  w.put_bytes(std::span<const std::uint8_t>(msg.user_nonce));
  return w.take();
}

std::vector<std::byte> encode(const crypto::AuthChallenge& msg) {
  Writer w(MessageType::auth_challenge);
  w.put_u64(msg.peer_id);
  w.put_bytes(std::span<const std::uint8_t>(msg.peer_nonce));
  w.put_blob(std::span<const std::uint8_t>(msg.signature));
  return w.take();
}

std::vector<std::byte> encode(const crypto::AuthResponse& msg) {
  Writer w(MessageType::auth_response);
  w.put_blob(std::span<const std::uint8_t>(msg.signature));
  w.put_blob(std::span<const std::uint8_t>(msg.encrypted_session_key));
  return w.take();
}

std::vector<std::byte> encode(const FileRequest& msg) {
  Writer w(MessageType::file_request);
  w.put_u64(msg.user_id);
  w.put_u64(msg.file_id);
  w.put_f64(msg.max_rate_kbps);
  return w.take();
}

std::vector<std::byte> encode(const StopTransmission& msg) {
  Writer w(MessageType::stop_transmission);
  w.put_u64(msg.user_id);
  w.put_u64(msg.file_id);
  return w.take();
}

std::vector<std::byte> encode(const coding::EncodedMessage& msg) {
  Writer w(MessageType::coded_message);
  w.put_u64(msg.file_id);
  w.put_u64(msg.message_id);
  w.put_blob(std::span<const std::byte>(msg.payload));
  return w.take();
}

std::array<std::byte, kCodedMessageHeaderBytes> encode_coded_message_header(
    const coding::EncodedMessage& msg) {
  std::array<std::byte, kCodedMessageHeaderBytes> out{};
  out[0] = std::byte{static_cast<std::uint8_t>(MessageType::coded_message)};
  const auto put = [&out](std::size_t at, std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i)
      out[at + static_cast<std::size_t>(i)] =
          std::byte{static_cast<std::uint8_t>(v >> (8 * i))};
  };
  put(1, msg.file_id, 8);
  put(9, msg.message_id, 8);
  put(17, msg.payload.size(), 4);
  return out;
}

std::vector<std::byte> encode(const coding::AuthenticatedMessage& msg) {
  Writer w(MessageType::authenticated_message);
  w.put_u64(msg.message.file_id);
  w.put_u64(msg.message.message_id);
  w.put_blob(std::span<const std::byte>(msg.message.payload));
  w.put_u32(msg.leaf_index);
  w.put_u32(static_cast<std::uint32_t>(msg.proof.size()));
  for (const auto& d : msg.proof) put_digest(w, d);
  return w.take();
}

std::vector<std::byte> encode(const coding::FileInfo& info) {
  Writer w(MessageType::file_info);
  w.put_u64(info.file_id);
  w.put_u64(info.original_bytes);
  w.put_u8(static_cast<std::uint8_t>(gf::field_bits(info.params.field)));
  w.put_u64(info.params.m);
  w.put_u64(info.k);
  w.put_bytes(std::span<const std::uint8_t>(info.content_digest));
  w.put_u32(static_cast<std::uint32_t>(info.message_digests.size()));
  for (const auto& [mid, digest] : info.message_digests) {
    w.put_u64(mid);
    w.put_bytes(std::span<const std::uint8_t>(digest));
  }
  // Versioned codec trailer: only emitted for non-dense codecs, so frames
  // from dense files are byte-identical to the pre-codec format and old
  // clients keep decoding them.  New clients treat a frame ending at the
  // digest table as dense (decode_file_info below).
  if (info.codec != coding::CodecKind::dense) {
    w.put_u8(static_cast<std::uint8_t>(info.codec));
    w.put_u32(info.schedule.class_size);
    w.put_u32(info.schedule.overlap);
    w.put_u64(info.schedule.seed);
  }
  return w.take();
}

// ---------------------------------------------------------------- decode

std::optional<MessageType> peek_type(std::span<const std::byte> frame) {
  if (frame.empty()) return std::nullopt;
  const auto tag = std::to_integer<std::uint8_t>(frame[0]);
  if (tag < 1 || tag > 8) return std::nullopt;
  return static_cast<MessageType>(tag);
}

std::optional<crypto::AuthHello> decode_auth_hello(
    std::span<const std::byte> frame) {
  Reader r(frame);
  if (!r.expect_type(MessageType::auth_hello)) return std::nullopt;
  crypto::AuthHello msg;
  msg.user_id = r.get_u64();
  if (!r.get_bytes(msg.user_nonce) || !r.at_end()) return std::nullopt;
  return msg;
}

std::optional<crypto::AuthChallenge> decode_auth_challenge(
    std::span<const std::byte> frame) {
  Reader r(frame);
  if (!r.expect_type(MessageType::auth_challenge)) return std::nullopt;
  crypto::AuthChallenge msg;
  msg.peer_id = r.get_u64();
  if (!r.get_bytes(msg.peer_nonce)) return std::nullopt;
  if (!r.get_blob(msg.signature) || !r.at_end()) return std::nullopt;
  return msg;
}

std::optional<crypto::AuthResponse> decode_auth_response(
    std::span<const std::byte> frame) {
  Reader r(frame);
  if (!r.expect_type(MessageType::auth_response)) return std::nullopt;
  crypto::AuthResponse msg;
  if (!r.get_blob(msg.signature)) return std::nullopt;
  if (!r.get_blob(msg.encrypted_session_key) || !r.at_end())
    return std::nullopt;
  return msg;
}

std::optional<FileRequest> decode_file_request(
    std::span<const std::byte> frame) {
  Reader r(frame);
  if (!r.expect_type(MessageType::file_request)) return std::nullopt;
  FileRequest msg;
  msg.user_id = r.get_u64();
  msg.file_id = r.get_u64();
  msg.max_rate_kbps = r.get_f64();
  if (!r.at_end()) return std::nullopt;
  return msg;
}

std::optional<StopTransmission> decode_stop_transmission(
    std::span<const std::byte> frame) {
  Reader r(frame);
  if (!r.expect_type(MessageType::stop_transmission)) return std::nullopt;
  StopTransmission msg;
  msg.user_id = r.get_u64();
  msg.file_id = r.get_u64();
  if (!r.at_end()) return std::nullopt;
  return msg;
}

std::optional<coding::EncodedMessage> decode_coded_message(
    std::span<const std::byte> frame) {
  Reader r(frame);
  if (!r.expect_type(MessageType::coded_message)) return std::nullopt;
  coding::EncodedMessage msg;
  msg.file_id = r.get_u64();
  msg.message_id = r.get_u64();
  if (!r.get_blob_bytes(msg.payload) || !r.at_end()) return std::nullopt;
  return msg;
}

std::optional<coding::AuthenticatedMessage> decode_authenticated_message(
    std::span<const std::byte> frame) {
  Reader r(frame);
  if (!r.expect_type(MessageType::authenticated_message)) return std::nullopt;
  coding::AuthenticatedMessage msg;
  msg.message.file_id = r.get_u64();
  msg.message.message_id = r.get_u64();
  if (!r.get_blob_bytes(msg.message.payload)) return std::nullopt;
  msg.leaf_index = r.get_u32();
  const std::uint32_t proof_len = r.get_u32();
  if (!r.ok() || static_cast<std::size_t>(proof_len) * 32 > r.remaining())
    return std::nullopt;
  msg.proof.resize(proof_len);
  for (auto& d : msg.proof)
    if (!get_digest(r, d)) return std::nullopt;
  if (!r.at_end()) return std::nullopt;
  return msg;
}

std::optional<coding::FileInfo> decode_file_info(
    std::span<const std::byte> frame) {
  Reader r(frame);
  if (!r.expect_type(MessageType::file_info)) return std::nullopt;
  coding::FileInfo info;
  info.file_id = r.get_u64();
  info.original_bytes = r.get_u64();
  const std::uint8_t bits = r.get_u8();
  if (!gf::field_from_bits(bits, info.params.field)) return std::nullopt;
  info.params.m = r.get_u64();
  info.k = r.get_u64();
  if (!r.get_bytes(info.content_digest)) return std::nullopt;
  const std::uint32_t digests = r.get_u32();
  // Each entry is 8 + 16 bytes; bound before reserving.
  if (!r.ok() || static_cast<std::size_t>(digests) * 24 > r.remaining())
    return std::nullopt;
  for (std::uint32_t i = 0; i < digests; ++i) {
    const std::uint64_t mid = r.get_u64();
    crypto::Md5Digest digest;
    if (!r.get_bytes(digest)) return std::nullopt;
    info.message_digests.emplace(mid, digest);
  }
  if (r.at_end()) return info;  // pre-codec frame: dense by default
  const std::uint8_t codec = r.get_u8();
  if (codec != static_cast<std::uint8_t>(coding::CodecKind::chunked))
    return std::nullopt;  // dense never writes a trailer; unknown = reject
  info.codec = coding::CodecKind::chunked;
  info.schedule.class_size = r.get_u32();
  info.schedule.overlap = r.get_u32();
  info.schedule.seed = r.get_u64();
  if (!r.ok() || !r.at_end() || !info.schedule.valid()) return std::nullopt;
  return info;
}

}  // namespace fairshare::p2p::wire
