// The full peer-to-peer system of Section III: initialization
// (dissemination of coded messages while links are idle), authenticated
// download sessions, per-slot bandwidth allocation, on-the-fly message
// authentication, and the stop message when decoding completes.
//
// This is a message-level discrete-time simulation: real coded bytes move
// between in-process peers under per-slot capacity budgets, users run real
// decoders, and the handshake of Figure 4(b) runs real RSA.  Examples and
// integration tests drive this class; the rate-level fairness experiments
// of Figures 5-8 use the lighter sim::Simulator instead.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "alloc/policy.hpp"
#include "dht/chord.hpp"
#include "coding/chunker.hpp"
#include "coding/decoder.hpp"
#include "coding/encoder.hpp"
#include "crypto/auth.hpp"
#include "p2p/store.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"

namespace fairshare::p2p {

using PeerId = std::size_t;

/// Whether download sessions run the RSA challenge-response handshake.
enum class AuthMode {
  disabled,  ///< skip handshakes (large fairness sims)
  full,      ///< mutual RSA challenge-response + HMAC session tags
};

struct PeerParams {
  double upload_kbps = 256.0;
  /// How the peer divides upload among requesting users.  Null selects the
  /// paper's Equation (2) policy.
  std::shared_ptr<alloc::AllocationPolicy> policy;
  /// k' storage mode of Section III-D (max stored messages per file).
  std::size_t store_limit_per_file = SIZE_MAX;
  /// Adversary: serves corrupted payloads (callers expect the decoder's
  /// MD5 authentication to reject every one of them).
  bool tampers = false;
  /// Adversary: presents a key other than its registered identity during
  /// the handshake (IP-spoofing / man-in-the-middle stand-in); sessions to
  /// it must fail authentication and serve nothing.
  bool impersonates = false;
  /// Probability that a fully transferred message from this peer is lost
  /// in transit (link-level loss).  The bandwidth is still spent; the
  /// session retransmits the same message on its next budget.
  double loss_rate = 0.0;
  /// Chaos: refuse download sessions outright — the simulator mirror of
  /// net::FaultPlan::refuse_connection.  Store contents, dissemination,
  /// and DHT announcements are unaffected; only session opening fails.
  bool refuses_sessions = false;
  /// Chaos: the connection dies after serving this many messages — the
  /// mirror of net::FaultPlan::reset_after_frames.  The request re-opens
  /// the session after SystemConfig::handshake_slots (the simulator's
  /// retry backoff), re-streaming the store from the start exactly like
  /// the socket client's reconnect, up to
  /// SystemConfig::session_max_attempts connections.
  std::size_t reset_after_messages = SIZE_MAX;
  /// Adversary/chaos: fraction of served payloads corrupted (`tampers` is
  /// the rate-1.0 special case) — the mirror of
  /// net::FaultPlan::corrupt_rate.  The decoder's MD5 authentication must
  /// reject every corrupted message.
  double tamper_rate = 0.0;
};

struct SystemConfig {
  AuthMode auth = AuthMode::full;
  std::size_t rsa_bits = 512;  ///< demo-grade keys; see crypto/rsa.hpp
  std::uint64_t seed = 1;
  /// Handshake latency charged before a session serves data (slots).
  std::uint64_t handshake_slots = 2;
  /// Connections a request may open to one peer (first try included)
  /// before the session fails for good — the simulator mirror of
  /// net::RetryPolicy::max_attempts.
  std::size_t session_max_attempts = 4;
};

/// Outcome counters for one download request.
struct RequestStats {
  std::size_t messages_accepted = 0;
  std::size_t messages_non_innovative = 0;
  std::size_t messages_bad_digest = 0;
  std::size_t messages_lost = 0;  ///< transfers dropped by link loss
  std::size_t auth_failures = 0;  ///< sessions that failed the handshake
  std::size_t sessions_refused = 0;  ///< peers that refused to serve at all
  std::size_t sessions_reset = 0;    ///< mid-stream resets (incl. re-opens)
  std::size_t locate_hops = 0;    ///< DHT routing hops spent finding peers
  std::size_t peers_contacted = 0;  ///< sessions opened (located + owner)
  std::uint64_t started_slot = 0;
  std::uint64_t completed_slot = 0;  ///< valid when complete
};

class System {
 public:
  System(std::vector<PeerParams> peers, SystemConfig config = {});
  ~System();

  std::size_t n() const { return peers_.size(); }
  std::uint64_t now() const { return slot_; }

  // ----------------------------------------------------- initialization
  /// Owner starts sharing `data` under `file_id`.  Coded messages (k per
  /// other peer) are queued for dissemination, which proceeds in the
  /// background using the owner's upload capacity left over after serving
  /// downloads ("executed when some upload bandwidth is available").
  void share_file(PeerId owner, std::uint64_t file_id,
                  std::span<const std::byte> data,
                  const coding::CodingParams& params);

  /// Fraction of queued dissemination messages fully uploaded, in [0, 1].
  double dissemination_progress(std::uint64_t file_id) const;

  // ------------------------------------------------------------- access
  /// User `user` requests `file_id` from a remote location with download
  /// capacity `download_kbps`.  Opens (authenticated) sessions to every
  /// peer.  One active request per user at a time.  Returns a handle.
  std::size_t request_file(PeerId user, std::uint64_t file_id,
                           double download_kbps);

  bool complete(std::size_t request) const;
  /// Decoded file bytes.  Precondition: complete(request).
  std::vector<std::byte> data(std::size_t request) const;
  const RequestStats& stats(std::size_t request) const;

  // -------------------------------------------------------------- churn
  /// Take a peer offline/online.  Offline peers serve nothing, receive no
  /// dissemination, and their DHT announcements are suspended; active
  /// downloads fail over to the remaining holders (geographic robustness
  /// in action).  The peer's store survives, so coming back online
  /// restores service without re-dissemination.
  void set_online(PeerId peer, bool online);
  bool online(PeerId peer) const { return online_[peer]; }

  // -------------------------------------------------------------- clock
  void step();
  void run(std::uint64_t slots);
  /// Steps until the request completes or `max_slots` elapse; returns
  /// whether it completed.
  bool run_until_complete(std::size_t request, std::uint64_t max_slots);

  // ------------------------------------------------------------ metrics
  /// Download rate (kbps) delivered to each user per slot.
  const sim::Trace& download_trace(PeerId user) const {
    return download_trace_[user];
  }
  /// Stored bytes at a peer (the disk-for-bandwidth trade).
  std::size_t store_bytes(PeerId peer) const;
  /// Messages a peer holds for a file (dissemination observability).
  std::size_t stored_messages(PeerId peer, std::uint64_t file_id) const;

 private:
  struct PeerState;
  struct FileRecord;
  struct Session;
  struct Request;

  FileRecord* find_file(std::uint64_t file_id);
  const FileRecord* find_file(std::uint64_t file_id) const;
  void serve_sessions(std::vector<double>& used_upload);
  void disseminate(const std::vector<double>& used_upload);
  void deliver(Request& req, PeerId peer, coding::EncodedMessage message);
  bool open_sessions(Request& req);

  SystemConfig config_;
  std::uint64_t slot_ = 0;
  std::vector<PeerParams> params_;
  std::vector<std::unique_ptr<PeerState>> peers_;
  std::vector<std::unique_ptr<FileRecord>> files_;
  std::vector<std::unique_ptr<Request>> requests_;
  std::vector<sim::Trace> download_trace_;
  std::vector<double> slot_delivered_kb_;  // scratch, per user
  sim::SplitMix64 loss_rng_{0};
  std::vector<bool> online_;
  /// Content location: peers announce stored files on a Chord ring; a
  /// request routes a lookup to learn whom to contact (Section II's
  /// "out-of-band mechanism", made concrete).
  dht::ContentLocator locator_{dht::ChordRing{}};
  std::vector<dht::RingId> ring_id_;  ///< peer index -> ring id
};

}  // namespace fairshare::p2p
