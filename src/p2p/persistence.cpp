#include "p2p/persistence.hpp"

#include <cstring>
#include <fstream>

#include "p2p/wire.hpp"

namespace fairshare::p2p {

namespace {

constexpr char kMagic[4] = {'F', 'S', 'S', 'T'};
constexpr std::uint32_t kVersion = 1;

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(std::byte{static_cast<std::uint8_t>(v >> (8 * i))});
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(std::byte{static_cast<std::uint8_t>(v >> (8 * i))});
}

class Cursor {
 public:
  explicit Cursor(std::span<const std::byte> data) : data_(data) {}
  bool ok() const { return ok_; }
  bool at_end() const { return ok_ && pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(
               std::to_integer<std::uint8_t>(data_[pos_ - 4 + i]))
           << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               std::to_integer<std::uint8_t>(data_[pos_ - 8 + i]))
           << (8 * i);
    return v;
  }

  std::span<const std::byte> bytes(std::size_t n) {
    if (!take(n)) return {};
    return data_.subspan(pos_ - n, n);
  }

 private:
  bool take(std::size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

std::vector<std::byte> serialize_store(const MessageStore& store) {
  std::vector<std::byte> out;
  for (char c : kMagic) out.push_back(std::byte{static_cast<std::uint8_t>(c)});
  put_u32(out, kVersion);
  const auto ids = store.file_ids();
  put_u32(out, static_cast<std::uint32_t>(ids.size()));
  for (std::uint64_t fid : ids) {
    put_u64(out, fid);
    const std::size_t count = store.count(fid);
    put_u32(out, static_cast<std::uint32_t>(count));
    for (std::size_t i = 0; i < count; ++i) {
      const std::vector<std::byte> frame = wire::encode(store.at(fid, i));
      put_u32(out, static_cast<std::uint32_t>(frame.size()));
      out.insert(out.end(), frame.begin(), frame.end());
    }
  }
  return out;
}

std::optional<MessageStore> deserialize_store(std::span<const std::byte> data,
                                              std::size_t per_file_limit) {
  Cursor c(data);
  const auto magic = c.bytes(4);
  if (!c.ok() || magic.size() != 4 ||
      std::memcmp(magic.data(), kMagic, 4) != 0)
    return std::nullopt;
  if (c.u32() != kVersion) return std::nullopt;

  MessageStore store(per_file_limit);
  const std::uint32_t files = c.u32();
  for (std::uint32_t f = 0; f < files; ++f) {
    const std::uint64_t fid = c.u64();
    const std::uint32_t count = c.u32();
    if (!c.ok()) return std::nullopt;
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint32_t len = c.u32();
      if (!c.ok() || len > c.remaining()) return std::nullopt;
      const auto frame = c.bytes(len);
      auto msg = wire::decode_coded_message(frame);
      if (!msg || msg->file_id != fid) return std::nullopt;
      store.store(std::move(*msg));  // limit drops excess, as documented
    }
  }
  if (!c.at_end()) return std::nullopt;
  return store;
}

namespace {

bool write_all(const std::string& path, std::span<const std::byte> data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return out.good();
}

std::optional<std::vector<std::byte>> read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  in.seekg(0);
  std::vector<std::byte> data(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(data.data()), size);
  if (!in.good() && size != 0) return std::nullopt;
  return data;
}

}  // namespace

bool save_store(const MessageStore& store, const std::string& path) {
  return write_all(path, serialize_store(store));
}

std::optional<MessageStore> load_store(const std::string& path,
                                       std::size_t per_file_limit) {
  const auto data = read_all(path);
  if (!data) return std::nullopt;
  return deserialize_store(*data, per_file_limit);
}

bool save_file_info(const coding::FileInfo& info, const std::string& path) {
  return write_all(path, wire::encode(info));
}

std::optional<coding::FileInfo> load_file_info(const std::string& path) {
  const auto data = read_all(path);
  if (!data) return std::nullopt;
  return wire::decode_file_info(*data);
}

}  // namespace fairshare::p2p
