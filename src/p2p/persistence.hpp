// Durable peer state: serialize a peer's message store (and the metadata a
// user carries) to bytes/files, so peers survive restarts without
// re-dissemination and users can stash their FileInfo on a USB stick —
// "if the owning peer is off-line, this information needs to be carried by
// the user" (Section III-C).
//
// Container layout (little-endian):
//   "FSST" | u32 version | u32 file-count |
//     per file: u64 file-id | u32 message-count |
//       per message: u32 frame-length | wire::coded_message frame
// Every decoder is bounds-checked; malformed containers yield nullopt.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "coding/message.hpp"
#include "p2p/store.hpp"

namespace fairshare::p2p {

/// Serialize an entire store.
std::vector<std::byte> serialize_store(const MessageStore& store);

/// Rebuild a store from serialize_store output.  `per_file_limit` applies
/// to the new store (excess messages are dropped, mirroring store()).
std::optional<MessageStore> deserialize_store(
    std::span<const std::byte> data, std::size_t per_file_limit = SIZE_MAX);

/// File-backed convenience wrappers (atomic-ish: write then rename is the
/// caller's job; these are plain write/read).
bool save_store(const MessageStore& store, const std::string& path);
std::optional<MessageStore> load_store(const std::string& path,
                                       std::size_t per_file_limit = SIZE_MAX);

/// User-carried metadata on disk (wire::file_info frame).
bool save_file_info(const coding::FileInfo& info, const std::string& path);
std::optional<coding::FileInfo> load_file_info(const std::string& path);

}  // namespace fairshare::p2p
