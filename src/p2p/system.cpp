#include "p2p/system.hpp"

#include <algorithm>
#include <cassert>
#include <deque>

#include "alloc/policies.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "sim/rng.hpp"

namespace fairshare::p2p {

namespace {

double wire_kilobits(const coding::EncodedMessage& msg) {
  return static_cast<double>(msg.wire_size()) * 8.0 / 1000.0;
}

}  // namespace

struct System::PeerState {
  MessageStore store;
  std::shared_ptr<alloc::AllocationPolicy> policy;
  std::optional<crypto::RsaKeyPair> identity;
  /// Key an impersonator presents instead of its registered identity.
  std::optional<crypto::RsaKeyPair> rogue;

  explicit PeerState(std::size_t store_limit) : store(store_limit) {}
};

struct System::FileRecord {
  PeerId owner = 0;
  std::uint64_t file_id = 0;
  coding::SecretKey secret{};
  coding::FileEncoder encoder;

  struct PendingUpload {
    PeerId target;
    coding::EncodedMessage message;
    double sent_kilobits = 0.0;
  };
  std::deque<PendingUpload> queue;
  std::size_t total_queued = 0;
  std::size_t uploaded = 0;

  FileRecord(PeerId owner_id, std::uint64_t fid, const coding::SecretKey& key,
             std::span<const std::byte> data,
             const coding::CodingParams& params)
      : owner(owner_id), file_id(fid), secret(key),
        encoder(key, fid, data, params) {}
};

struct System::Session {
  PeerId peer = 0;
  enum class State { handshaking, active, failed, closed } state =
      State::handshaking;
  std::uint64_t active_at = 0;  ///< slot when data may start flowing
  std::size_t cursor = 0;       ///< next stored message (non-owner peers)
  std::size_t served_this_conn = 0;  ///< messages since (re)connect
  std::size_t attempts = 1;          ///< connections opened so far
  double bucket_kilobits = 0.0;
  crypto::SessionKey key{};
  bool has_key = false;
  /// Owner-generated message awaiting retransmission after a loss (stored
  /// messages need no copy; the cursor simply is not advanced).
  std::optional<coding::EncodedMessage> pending_retransmit;
};

struct System::Request {
  PeerId user = 0;
  std::uint64_t file_id = 0;
  double download_kbps = 0.0;
  coding::FileDecoder decoder;
  std::vector<Session> sessions;
  RequestStats stats;
  bool done = false;
  std::vector<std::byte> result;

  Request(PeerId u, std::uint64_t fid, double dl,
          const coding::SecretKey& secret, const coding::FileInfo& info)
      : user(u), file_id(fid), download_kbps(dl), decoder(secret, info) {}
};

System::System(std::vector<PeerParams> peers, SystemConfig config)
    : config_(config), params_(std::move(peers)) {
  const std::size_t n = params_.size();
  assert(n > 0);
  crypto::Sha256 seed_hash;
  const std::uint8_t seed_bytes[8] = {
      static_cast<std::uint8_t>(config_.seed),
      static_cast<std::uint8_t>(config_.seed >> 8),
      static_cast<std::uint8_t>(config_.seed >> 16),
      static_cast<std::uint8_t>(config_.seed >> 24),
      static_cast<std::uint8_t>(config_.seed >> 32),
      static_cast<std::uint8_t>(config_.seed >> 40),
      static_cast<std::uint8_t>(config_.seed >> 48),
      static_cast<std::uint8_t>(config_.seed >> 56)};
  seed_hash.update(std::span<const std::uint8_t>(seed_bytes, 8));
  const crypto::Sha256Digest key = seed_hash.finish();
  const std::array<std::uint8_t, crypto::ChaCha20::kNonceSize> nonce{};
  crypto::ChaCha20 rng{std::span<const std::uint8_t, 32>(key), nonce};

  peers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto state = std::make_unique<PeerState>(params_[i].store_limit_per_file);
    state->policy = params_[i].policy
                        ? params_[i].policy
                        : std::make_shared<
                              alloc::ProportionalContributionPolicy>(n);
    if (config_.auth == AuthMode::full) {
      state->identity = crypto::RsaKeyPair::generate(config_.rsa_bits, rng);
      if (params_[i].impersonates)
        state->rogue = crypto::RsaKeyPair::generate(config_.rsa_bits, rng);
    }
    peers_.push_back(std::move(state));
  }
  download_trace_.resize(n);
  slot_delivered_kb_.resize(n);
  loss_rng_ = sim::SplitMix64(config_.seed ^ 0xA5A5A5A5A5A5A5A5ull);
  online_.assign(n, true);
  // Every peer joins the content-location ring.
  ring_id_.resize(n);
  for (PeerId i = 0; i < n; ++i) {
    ring_id_[i] = dht::ring_hash_u64(i, config_.seed ^ 0x70656572);  // "peer"
    locator_.handle_join(ring_id_[i]);
  }
}

System::~System() = default;

void System::set_online(PeerId peer, bool online) {
  assert(peer < n());
  if (online_[peer] == online) return;
  online_[peer] = online;
  if (online)
    locator_.handle_join(ring_id_[peer]);
  else
    locator_.handle_leave(ring_id_[peer]);
}

System::FileRecord* System::find_file(std::uint64_t file_id) {
  for (auto& f : files_)
    if (f->file_id == file_id) return f.get();
  return nullptr;
}

const System::FileRecord* System::find_file(std::uint64_t file_id) const {
  for (const auto& f : files_)
    if (f->file_id == file_id) return f.get();
  return nullptr;
}

void System::share_file(PeerId owner, std::uint64_t file_id,
                        std::span<const std::byte> data,
                        const coding::CodingParams& params) {
  assert(owner < n());
  assert(find_file(file_id) == nullptr && "file id already in use");

  // Derive the owner's per-file secret from the system seed (deterministic
  // runs); a deployment would draw it from the OS entropy pool.
  crypto::Sha256 h;
  static constexpr char kLabel[] = "fairshare-file-secret";
  h.update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kLabel), sizeof(kLabel) - 1));
  std::uint8_t ids[24];
  for (int i = 0; i < 8; ++i) {
    ids[i] = static_cast<std::uint8_t>(config_.seed >> (8 * i));
    ids[8 + i] = static_cast<std::uint8_t>(file_id >> (8 * i));
    ids[16 + i] = static_cast<std::uint8_t>(static_cast<std::uint64_t>(owner) >>
                                            (8 * i));
  }
  h.update(std::span<const std::uint8_t>(ids, 24));
  coding::SecretKey secret;
  const crypto::Sha256Digest digest = h.finish();
  std::copy(digest.begin(), digest.end(), secret.begin());

  auto record =
      std::make_unique<FileRecord>(owner, file_id, secret, data, params);

  // Queue k messages for every peer other than the owner ("up to k
  // messages per peer"), respecting each target's storage limit.
  const std::size_t k = record->encoder.k();
  for (PeerId target = 0; target < n(); ++target) {
    if (target == owner) continue;
    const std::size_t count =
        std::min(k, peers_[target]->store.per_file_limit());
    for (std::size_t c = 0; c < count; ++c) {
      record->queue.push_back(
          {target, record->encoder.next_message(), 0.0});
    }
  }
  record->total_queued = record->queue.size();
  files_.push_back(std::move(record));
}

double System::dissemination_progress(std::uint64_t file_id) const {
  const FileRecord* f = find_file(file_id);
  assert(f != nullptr);
  if (f->total_queued == 0) return 1.0;
  return static_cast<double>(f->uploaded) /
         static_cast<double>(f->total_queued);
}

bool System::open_sessions(Request& req) {
  // Locate holders via the DHT, then contact them plus the owner (who can
  // always serve fresh messages, Section III-A's client-server fallback).
  // The user is at a remote machine: route from its own peer's ring node
  // when that peer is online, otherwise from any live ring node.
  const FileRecord* file = find_file(req.file_id);
  dht::ContentLocator::LocateResult located;
  if (locator_.ring().contains(ring_id_[req.user])) {
    located = locator_.locate(req.file_id, ring_id_[req.user]);
  } else if (locator_.ring().size() > 0) {
    located = locator_.locate(req.file_id, locator_.ring().nodes().front());
  }
  req.stats.locate_hops = located.hops;
  std::vector<bool> contact(n(), false);
  for (std::uint64_t peer : located.peers) contact[peer] = true;
  contact[file->owner] = true;

  for (PeerId peer = 0; peer < n(); ++peer) {
    Session session;
    session.peer = peer;
    session.active_at = slot_ + config_.handshake_slots;
    if (!contact[peer]) {
      session.state = Session::State::closed;  // never contacted
      req.sessions.push_back(session);
      continue;
    }
    ++req.stats.peers_contacted;

    if (params_[peer].refuses_sessions) {
      // Connection refused: the mirror of a socket peer that never
      // accepts.  No retry — refusal is deterministic, exactly like
      // net::FaultPlan::refuse_connection.
      session.state = Session::State::failed;
      ++req.stats.sessions_refused;
      req.sessions.push_back(session);
      continue;
    }

    if (config_.auth == AuthMode::full) {
      // Run the real mutual handshake of Figure 4(b).  The user side signs
      // with the requesting user's identity; the peer side with its own —
      // or with a bogus key when it is an impersonator.  The user always
      // verifies against the peer's *registered* public key.
      const crypto::RsaKeyPair& user_key = *peers_[req.user]->identity;
      const crypto::RsaKeyPair& registered_key = *peers_[peer]->identity;
      const crypto::RsaKeyPair& presented_key =
          peers_[peer]->rogue ? *peers_[peer]->rogue : registered_key;

      // Fresh deterministic randomness for nonces/session key.
      crypto::Sha256 h;
      static constexpr char kLabel[] = "fairshare-handshake";
      h.update(std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(kLabel), sizeof(kLabel) - 1));
      std::uint8_t ctx[24];
      for (int i = 0; i < 8; ++i) {
        ctx[i] = static_cast<std::uint8_t>(slot_ >> (8 * i));
        ctx[8 + i] =
            static_cast<std::uint8_t>(static_cast<std::uint64_t>(peer) >>
                                      (8 * i));
        ctx[16 + i] =
            static_cast<std::uint8_t>(static_cast<std::uint64_t>(req.user) >>
                                      (8 * i));
      }
      h.update(std::span<const std::uint8_t>(ctx, 24));
      const crypto::Sha256Digest hk = h.finish();
      const std::array<std::uint8_t, crypto::ChaCha20::kNonceSize> nonce{};
      crypto::ChaCha20 rng{std::span<const std::uint8_t, 32>(hk), nonce};

      crypto::AuthInitiator initiator(req.user, user_key, registered_key.pub,
                                      rng);
      crypto::AuthResponder responder(peer, presented_key, user_key.pub, rng);
      const crypto::AuthHello hello = initiator.hello();
      const crypto::AuthChallenge challenge = responder.on_hello(hello);
      const auto response = initiator.on_challenge(challenge);
      if (!response || !responder.on_response(*response)) {
        session.state = Session::State::failed;
        ++req.stats.auth_failures;
        req.sessions.push_back(session);
        continue;
      }
      session.key = initiator.session_key();
      session.has_key = true;
    }
    req.sessions.push_back(session);
  }
  return true;
}

std::size_t System::request_file(PeerId user, std::uint64_t file_id,
                                 double download_kbps) {
  assert(user < n());
  FileRecord* file = find_file(file_id);
  assert(file != nullptr && "request for unshared file");
#ifndef NDEBUG
  for (const auto& r : requests_)
    assert((r->done || r->user != user) &&
           "one active request per user at a time");
#endif

  auto req = std::make_unique<Request>(user, file_id, download_kbps,
                                       file->secret, file->encoder.info());
  req->stats.started_slot = slot_;
  open_sessions(*req);
  requests_.push_back(std::move(req));
  return requests_.size() - 1;
}

bool System::complete(std::size_t request) const {
  return requests_[request]->done;
}

std::vector<std::byte> System::data(std::size_t request) const {
  assert(requests_[request]->done);
  return requests_[request]->result;
}

const RequestStats& System::stats(std::size_t request) const {
  return requests_[request]->stats;
}

std::size_t System::store_bytes(PeerId peer) const {
  return peers_[peer]->store.bytes_used();
}

std::size_t System::stored_messages(PeerId peer,
                                    std::uint64_t file_id) const {
  return peers_[peer]->store.count(file_id);
}

void System::deliver(Request& req, PeerId peer,
                     coding::EncodedMessage message) {
  // `tampers` corrupts everything without spending a random draw (so the
  // RNG streams of existing experiments are unchanged); tamper_rate
  // corrupts the configured fraction of deliveries.
  const bool tamper =
      params_[peer].tampers ||
      (params_[peer].tamper_rate > 0.0 &&
       loss_rng_.next_double() < params_[peer].tamper_rate);
  if (tamper) {
    // Corrupt one payload byte; MD5 authentication must catch it.
    if (!message.payload.empty()) message.payload[0] ^= std::byte{0x01};
  }

  // Note: the session HMAC (auth.hpp) protects against third-party
  // in-flight tampering, but a *malicious authenticated sender* tags the
  // corrupted bytes itself — which is exactly why the paper authenticates
  // messages with owner-stored MD5 digests (Section III-C).  The decoder's
  // digest check below is the defense exercised here.
  switch (req.decoder.add(message)) {
    case coding::AddResult::accepted:
      ++req.stats.messages_accepted;
      break;
    case coding::AddResult::non_innovative:
      ++req.stats.messages_non_innovative;
      break;
    case coding::AddResult::bad_digest:
      ++req.stats.messages_bad_digest;
      break;
    default:
      break;
  }

  if (req.decoder.complete() && !req.done) {
    // "User u sends a stop transmission ... and reconstructs file X."
    req.result = req.decoder.reconstruct();
    req.done = true;
    req.stats.completed_slot = slot_ + 1;
    for (Session& s : req.sessions)
      if (s.state != Session::State::failed) s.state = Session::State::closed;
  }
}

void System::serve_sessions(std::vector<double>& used_upload) {
  const std::size_t count = n();
  std::fill(slot_delivered_kb_.begin(), slot_delivered_kb_.end(), 0.0);

  // Which user is actively downloadable from which peer this slot.
  // requesting[u] per peer; also remember the request driving it.
  std::vector<Request*> active_request(count, nullptr);
  for (auto& rp : requests_) {
    Request& req = *rp;
    if (!req.done) active_request[req.user] = &req;
  }

  // Allocation matrix mu[peer][user].
  std::vector<double> matrix(count * count, 0.0);
  std::vector<std::uint8_t> requesting(count, 0);
  std::vector<double> declared(count);
  std::vector<double> row(count);
  for (std::size_t i = 0; i < count; ++i) declared[i] = params_[i].upload_kbps;

  for (PeerId peer = 0; peer < count; ++peer) {
    // Build this peer's requester set.
    std::fill(requesting.begin(), requesting.end(), 0);
    bool any = false;
    for (PeerId user = 0; user < count; ++user) {
      Request* req = active_request[user];
      if (!req) continue;
      Session& s = req->sessions[peer];
      if (s.state != Session::State::active &&
          s.state != Session::State::handshaking)
        continue;
      if (slot_ < s.active_at) continue;
      s.state = Session::State::active;
      const FileRecord* file = find_file(req->file_id);
      const bool servable =
          online_[peer] &&
          ((peer == file->owner) ||
           s.cursor < peers_[peer]->store.count(req->file_id));
      if (!servable) continue;
      requesting[user] = 1;
      any = true;
    }
    if (!any || params_[peer].upload_kbps <= 0.0) continue;

    alloc::PeerContext ctx;
    ctx.self = peer;
    ctx.slot = slot_;
    ctx.capacity = params_[peer].upload_kbps;
    ctx.requesting = requesting;
    ctx.declared = declared;
    peers_[peer]->policy->allocate(ctx, row);

    double sum = 0.0;
    for (std::size_t u = 0; u < count; ++u) {
      if (!requesting[u] || row[u] < 0.0) row[u] = 0.0;
      sum += row[u];
    }
    if (sum > ctx.capacity && sum > 0.0) {
      const double scale = ctx.capacity / sum;
      for (std::size_t u = 0; u < count; ++u) row[u] *= scale;
    }
    for (std::size_t u = 0; u < count; ++u) matrix[peer * count + u] = row[u];
  }

  // Enforce each user's download capacity (TCP backpressure).
  for (PeerId user = 0; user < count; ++user) {
    Request* req = active_request[user];
    if (!req) continue;
    double total = 0.0;
    for (PeerId peer = 0; peer < count; ++peer)
      total += matrix[peer * count + user];
    if (total > req->download_kbps && total > 0.0) {
      const double scale = req->download_kbps / total;
      for (PeerId peer = 0; peer < count; ++peer)
        matrix[peer * count + user] *= scale;
    }
  }

  // Move bytes: fill each session's bucket, deliver completed messages.
  for (PeerId peer = 0; peer < count; ++peer) {
    for (PeerId user = 0; user < count; ++user) {
      const double rate = matrix[peer * count + user];
      if (rate <= 0.0) continue;
      Request* req = active_request[user];
      Session& s = req->sessions[peer];
      used_upload[peer] += rate;
      slot_delivered_kb_[user] += rate;
      s.bucket_kilobits += rate;  // kbps * 1 s = kilobits

      FileRecord* file = find_file(req->file_id);
      const double loss = params_[peer].loss_rate;
      for (;;) {
        if (req->done) break;
        coding::EncodedMessage next;
        if (peer == file->owner) {
          if (s.pending_retransmit) {
            // A previously lost owner-generated message goes out again.
            const double need = wire_kilobits(*s.pending_retransmit);
            if (s.bucket_kilobits < need) break;
            s.bucket_kilobits -= need;
            next = *s.pending_retransmit;
          } else {
            // The owner encodes on demand (unbounded fresh supply); peek
            // cost by generating only when the bucket can pay for one.
            const double need =
                static_cast<double>(16 +
                                    file->encoder.params().message_bytes()) *
                8.0 / 1000.0;
            if (s.bucket_kilobits < need) break;
            next = file->encoder.next_message();
            // The user's decoder learns the fresh digest from its (online)
            // own peer, as Section III-C allows.
            req->decoder.add_digest(next.message_id, next.digest());
            s.bucket_kilobits -= need;
          }
          if (loss > 0.0 && loss_rng_.next_double() < loss) {
            // Bandwidth spent, message dropped in transit; retransmit.
            ++req->stats.messages_lost;
            s.pending_retransmit = std::move(next);
            continue;
          }
          s.pending_retransmit.reset();
        } else {
          if (s.cursor >= peers_[peer]->store.count(req->file_id)) break;
          const coding::EncodedMessage& stored =
              peers_[peer]->store.at(req->file_id, s.cursor);
          const double need = wire_kilobits(stored);
          if (s.bucket_kilobits < need) break;
          s.bucket_kilobits -= need;
          if (loss > 0.0 && loss_rng_.next_double() < loss) {
            // Cursor not advanced: the verbatim store retransmits.
            ++req->stats.messages_lost;
            continue;
          }
          next = stored;
          ++s.cursor;
        }
        deliver(*req, peer, std::move(next));
        ++s.served_this_conn;
        if (s.served_this_conn >= params_[peer].reset_after_messages &&
            !req->done) {
          // Mid-stream reset: this connection dies.  The request fails
          // over exactly like the socket client's retry path — re-open
          // after the handshake latency and re-stream the verbatim store
          // from the start (already-decoded messages fall out as
          // non-innovative) — until the attempt budget is spent.
          ++req->stats.sessions_reset;
          if (s.attempts >= config_.session_max_attempts) {
            s.state = Session::State::failed;
          } else {
            ++s.attempts;
            s.state = Session::State::handshaking;
            s.active_at = slot_ + config_.handshake_slots;
            s.served_this_conn = 0;
            s.cursor = 0;
            s.pending_retransmit.reset();
          }
          break;
        }
      }
    }
  }

  for (PeerId user = 0; user < count; ++user)
    download_trace_[user].append(slot_delivered_kb_[user]);

  // Local feedback to every peer's policy: what its user received.
  std::vector<double> received(count);
  for (PeerId user = 0; user < count; ++user) {
    for (PeerId peer = 0; peer < count; ++peer)
      received[peer] = matrix[peer * count + user];
    alloc::SlotFeedback fb;
    fb.slot = slot_;
    fb.received = received;
    peers_[user]->policy->observe(fb);
  }
}

void System::disseminate(const std::vector<double>& used_upload) {
  // Leftover upload capacity drives the initialization phase.
  std::vector<double> leftover(n());
  for (PeerId i = 0; i < n(); ++i)
    leftover[i] = std::max(0.0, params_[i].upload_kbps - used_upload[i]);

  for (auto& fp : files_) {
    FileRecord& file = *fp;
    if (!online_[file.owner]) continue;
    double& budget = leftover[file.owner];
    while (!file.queue.empty() && budget > 0.0) {
      auto& pending = file.queue.front();
      if (!online_[pending.target]) {
        // Rotate offline targets to the back so online ones still fill.
        file.queue.push_back(std::move(pending));
        file.queue.pop_front();
        // Avoid spinning when everyone left is offline.
        bool any_online = false;
        for (const auto& q : file.queue)
          if (online_[q.target]) any_online = true;
        if (!any_online) break;
        continue;
      }
      const double need = wire_kilobits(pending.message) - pending.sent_kilobits;
      if (budget < need) {
        pending.sent_kilobits += budget;
        budget = 0.0;
        break;
      }
      budget -= need;
      const PeerId target = pending.target;
      const bool had_any =
          peers_[target]->store.count(file.file_id) > 0;
      peers_[target]->store.store(std::move(pending.message));
      if (!had_any)  // first message landed: advertise on the ring
        locator_.announce(file.file_id, target);
      file.queue.pop_front();
      ++file.uploaded;
    }
  }
}

void System::step() {
  std::vector<double> used_upload(n(), 0.0);
  serve_sessions(used_upload);
  disseminate(used_upload);
  ++slot_;
}

void System::run(std::uint64_t slots) {
  for (std::uint64_t s = 0; s < slots; ++s) step();
}

bool System::run_until_complete(std::size_t request, std::uint64_t max_slots) {
  for (std::uint64_t s = 0; s < max_slots && !complete(request); ++s) step();
  return complete(request);
}

}  // namespace fairshare::p2p
