// Binary wire formats for every protocol message the system exchanges.
//
// The in-process simulation passes C++ objects around for speed, but a
// deployable system (and the paper's Figure 4(b) timeline) needs concrete
// frames: the three handshake messages, the file request (transmission
// "2"/"3"), coded data ("4"), the stop message ("5"), and the metadata
// (FileInfo) the user carries to a remote machine.  All integers are
// little-endian; every decoder is bounds-checked and total (malformed
// input yields nullopt, never UB) — exercised by mutation tests.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "coding/merkle_auth.hpp"
#include "coding/message.hpp"
#include "crypto/auth.hpp"

namespace fairshare::p2p::wire {

/// Frame type tags (first byte of every frame).
enum class MessageType : std::uint8_t {
  auth_hello = 1,
  auth_challenge = 2,
  auth_response = 3,
  file_request = 4,       ///< Figure 4(b) transmission "2"/"3"
  coded_message = 5,      ///< transmission "4"
  stop_transmission = 6,  ///< transmission "5"
  authenticated_message = 7,  ///< coded message + Merkle proof
  file_info = 8,              ///< user-carried metadata
};

/// Transmission "2"/"3": an authenticated user asks a peer for a file's
/// messages at up to `max_rate_kbps`.
struct FileRequest {
  std::uint64_t user_id = 0;
  std::uint64_t file_id = 0;
  double max_rate_kbps = 0.0;

  bool operator==(const FileRequest&) const = default;
};

/// Transmission "5": enough messages decoded; stop sending.
struct StopTransmission {
  std::uint64_t user_id = 0;
  std::uint64_t file_id = 0;

  bool operator==(const StopTransmission&) const = default;
};

// --------------------------------------------------------------- encoders
std::vector<std::byte> encode(const crypto::AuthHello& msg);
std::vector<std::byte> encode(const crypto::AuthChallenge& msg);
std::vector<std::byte> encode(const crypto::AuthResponse& msg);
std::vector<std::byte> encode(const FileRequest& msg);
std::vector<std::byte> encode(const StopTransmission& msg);
std::vector<std::byte> encode(const coding::EncodedMessage& msg);

/// Framing bytes of a coded_message frame ahead of the payload: the type
/// tag, both u64 ids, and the u32 payload length.
inline constexpr std::size_t kCodedMessageHeaderBytes = 1 + 8 + 8 + 4;

/// Encode only the coded_message framing, for scatter-gather sends: the
/// returned header followed by msg.payload is byte-identical to
/// encode(msg), so the serving path can reference the payload in place
/// instead of copying it into a frame.
std::array<std::byte, kCodedMessageHeaderBytes> encode_coded_message_header(
    const coding::EncodedMessage& msg);
std::vector<std::byte> encode(const coding::AuthenticatedMessage& msg);
std::vector<std::byte> encode(const coding::FileInfo& info);

// --------------------------------------------------------------- decoders
// Each consumes a full frame produced by the matching encode().
std::optional<crypto::AuthHello> decode_auth_hello(
    std::span<const std::byte> frame);
std::optional<crypto::AuthChallenge> decode_auth_challenge(
    std::span<const std::byte> frame);
std::optional<crypto::AuthResponse> decode_auth_response(
    std::span<const std::byte> frame);
std::optional<FileRequest> decode_file_request(
    std::span<const std::byte> frame);
std::optional<StopTransmission> decode_stop_transmission(
    std::span<const std::byte> frame);
std::optional<coding::EncodedMessage> decode_coded_message(
    std::span<const std::byte> frame);
std::optional<coding::AuthenticatedMessage> decode_authenticated_message(
    std::span<const std::byte> frame);
std::optional<coding::FileInfo> decode_file_info(
    std::span<const std::byte> frame);

/// Type tag of a frame (nullopt when empty or unknown).
std::optional<MessageType> peek_type(std::span<const std::byte> frame);

}  // namespace fairshare::p2p::wire
