#include "util/thread_pool.hpp"

#include <algorithm>
#include <cassert>

namespace fairshare::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // The caller participates in parallel_for, so spawn threads - 1 workers.
  workers_.reserve(threads > 0 ? threads - 1 : 0);
  for (std::size_t i = 1; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::grab_and_run() {
  std::size_t job;
  const std::function<void(std::size_t)>* fn;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (fn_ == nullptr || next_job_ >= jobs_) return false;
    job = next_job_++;
    fn = fn_;
  }
  (*fn)(job);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (++completed_ == jobs_) done_.notify_all();
  }
  return true;
}

void ThreadPool::worker_loop() {
  std::size_t seen_generation = 0;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] {
        return stop_ || !tasks_.empty() ||
               (fn_ != nullptr && generation_ != seen_generation &&
                next_job_ < jobs_);
      });
      if (stop_) return;
      if (fn_ != nullptr && generation_ != seen_generation &&
          next_job_ < jobs_) {
        seen_generation = generation_;
      } else {
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
    }
    if (task) {
      task();
      continue;
    }
    while (grab_and_run()) {
    }
  }
}

void ThreadPool::submit(std::function<void()> task) {
  assert(!workers_.empty() && "submit() needs at least one worker thread");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::parallel_for(std::size_t jobs,
                              const std::function<void(std::size_t)>& fn) {
  if (jobs == 0) return;
  if (jobs == 1 || workers_.empty()) {
    for (std::size_t i = 0; i < jobs; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    assert(fn_ == nullptr && "nested parallel_for is not supported");
    fn_ = &fn;
    jobs_ = jobs;
    next_job_ = 0;
    completed_ = 0;
    ++generation_;
  }
  wake_.notify_all();
  while (grab_and_run()) {
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return completed_ == jobs_; });
    fn_ = nullptr;
  }
}

}  // namespace fairshare::util
