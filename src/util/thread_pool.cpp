#include "util/thread_pool.hpp"

#include <algorithm>
#include <cassert>

namespace fairshare::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // The caller participates in parallel_for, so the worker cap is
  // threads - 1.  Nothing spawns here: workers appear on demand.
  limit_ = threads - 1;
  workers_.reserve(limit_);
}

void ThreadPool::spawn_up_to_locked(std::size_t want) {
  if (stop_) return;
  want = std::min(want, limit_);
  while (workers_.size() < want)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::grab_and_run() {
  std::size_t job;
  const std::function<void(std::size_t)>* fn;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (fn_ == nullptr || next_job_ >= jobs_) return false;
    job = next_job_++;
    fn = fn_;
  }
  (*fn)(job);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (++completed_ == jobs_) done_.notify_all();
  }
  return true;
}

void ThreadPool::worker_loop() {
  std::size_t seen_generation = 0;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++idle_;
      wake_.wait(lock, [&] {
        return stop_ || !tasks_.empty() ||
               (fn_ != nullptr && generation_ != seen_generation &&
                next_job_ < jobs_);
      });
      --idle_;
      if (stop_) return;
      if (fn_ != nullptr && generation_ != seen_generation &&
          next_job_ < jobs_) {
        seen_generation = generation_;
      } else {
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
    }
    if (task) {
      task();
      continue;
    }
    while (grab_and_run()) {
    }
  }
}

void ThreadPool::submit(std::function<void()> task) {
  assert(limit_ > 0 && "submit() needs at least one worker thread");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push_back(std::move(task));
    // Every queued task should have an idle worker lined up; grow toward
    // the cap only when demand outruns the supply.
    if (idle_ < tasks_.size())
      spawn_up_to_locked(workers_.size() + (tasks_.size() - idle_));
  }
  wake_.notify_one();
}

void ThreadPool::parallel_for(std::size_t jobs,
                              const std::function<void(std::size_t)>& fn) {
  if (jobs == 0) return;
  if (jobs == 1 || limit_ == 0) {
    for (std::size_t i = 0; i < jobs; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    assert(fn_ == nullptr && "nested parallel_for is not supported");
    // The batch is a barrier with known demand: make sure enough workers
    // exist for every job to run concurrently with the caller.
    spawn_up_to_locked(jobs - 1);
    fn_ = &fn;
    jobs_ = jobs;
    next_job_ = 0;
    completed_ = 0;
    ++generation_;
  }
  wake_.notify_all();
  while (grab_and_run()) {
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return completed_ == jobs_; });
    fn_ = nullptr;
  }
}

}  // namespace fairshare::util
