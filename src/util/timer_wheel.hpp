// Hashed timer wheel: O(1) arm/cancel, batched expiry in deadline order.
//
// The reactor's event loop (net/event_loop.hpp) needs thousands of cheap
// timers — one pacing tick per quantum, per-session handshake deadlines,
// per-frame solo-pacing delays, and fault-injection delay releases — where
// a std::priority_queue would pay O(log n) per arm and offer no cancel.
// A hashed wheel hashes each absolute deadline into one of kSlots buckets
// of one tick each; arming appends to a bucket, cancelling erases by id,
// and advance() walks only the buckets the clock has passed.  Entries
// whose deadline lies a full rotation (or more) ahead simply stay in
// their bucket until the wheel comes round again.
//
// Single-threaded by design: the owning event loop is the only caller.
// Cross-thread arming goes through EventLoop::post.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

namespace fairshare::util {

/// Timer container over an abstract monotonic nanosecond clock (callers
/// pass `now`; the wheel never reads a clock itself, so tests drive it
/// deterministically).
class TimerWheel {
 public:
  using Callback = std::function<void()>;
  using TimerId = std::uint64_t;  ///< 0 is never a valid id

  /// `tick_ns` is the bucket granularity (default 1 ms): expiries are
  /// precise to the deadline (advance compares exact deadlines), the tick
  /// only bounds how much bucket-walking one advance() does.
  explicit TimerWheel(std::uint64_t tick_ns = 1'000'000);

  /// Arm a one-shot timer at absolute `deadline_ns`.  Returns its id.
  TimerId add(std::uint64_t deadline_ns, Callback cb);

  /// Disarm; false if the id already fired, was cancelled, or never was.
  bool cancel(TimerId id);

  /// Pop every entry with deadline <= now_ns into `out`, ordered by
  /// (deadline, arming order), and return how many expired.  Callbacks are
  /// NOT run here — the caller runs them after, so an expiring callback
  /// may freely add() or cancel() without re-entering the wheel.
  std::size_t advance(std::uint64_t now_ns, std::vector<Callback>& out);

  /// Earliest pending deadline, or nullopt when empty.  O(size).
  std::optional<std::uint64_t> next_deadline_ns() const;

  std::size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }

 private:
  static constexpr std::size_t kSlots = 256;  // power of two

  struct Entry {
    TimerId id = 0;
    std::uint64_t deadline_ns = 0;
    Callback cb;
  };

  std::size_t slot_of(std::uint64_t deadline_ns) const {
    return static_cast<std::size_t>(deadline_ns / tick_ns_) & (kSlots - 1);
  }

  std::uint64_t tick_ns_;
  std::vector<std::vector<Entry>> slots_{kSlots};
  std::unordered_map<TimerId, std::size_t> slot_by_id_;
  TimerId next_id_ = 1;
  std::size_t live_ = 0;
  std::uint64_t last_advance_ns_ = 0;
};

}  // namespace fairshare::util
