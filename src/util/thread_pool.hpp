// Minimal blocking thread pool for data-parallel row operations and
// fire-and-forget tasks.
//
// The decoder's cost is dominated by axpy over m-symbol payload rows
// (Table II's O(m k^2) term).  Rows are independent byte ranges, so the
// work splits perfectly; ParallelFor gives the Gaussian-elimination
// kernels an easy fan-out without per-call thread spawning.  submit()
// additionally lets long-lived owners (net::PeerServer's session handlers)
// run detached tasks on the same fixed worker set, which caps their
// concurrency at the pool size.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fairshare::util {

/// Bounded worker pool.  parallel_for blocks the caller until every
/// chunk has run; nested parallel_for from inside a task is not supported.
///
/// Workers spawn lazily: construction costs no threads, and threads come
/// into existence only when outstanding work exceeds the idle supply (up
/// to the construction-time cap).  A server that sizes its pool for a
/// worst-case session count therefore pays for the sessions it actually
/// has, which matters on small machines running many servers.
class ThreadPool {
 public:
  /// Capacity of `threads` (>= 1).  0 selects hardware_concurrency.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (worker cap + the participating caller).
  std::size_t size() const { return limit_ + 1; }

  /// Invoke fn(i) for every i in [0, jobs), distributed over the pool
  /// (the calling thread participates).  Blocks until all complete.
  void parallel_for(std::size_t jobs,
                    const std::function<void(std::size_t)>& fn);

  /// Enqueue a fire-and-forget task for the workers (the caller does not
  /// participate, so the pool needs >= 2 threads).  Tasks may block for a
  /// long time; at most workers() tasks run at once.  Destruction joins
  /// running tasks but discards ones still queued.
  void submit(std::function<void()> task);

  /// Worker threads available to submit().
  std::size_t workers() const { return limit_; }

 private:
  void worker_loop();
  bool grab_and_run();
  void spawn_up_to_locked(std::size_t want);

  std::size_t limit_ = 0;
  std::size_t idle_ = 0;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::deque<std::function<void()>> tasks_;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t jobs_ = 0;
  std::size_t next_job_ = 0;
  std::size_t completed_ = 0;
  std::size_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace fairshare::util
