#include "util/timer_wheel.hpp"

#include <algorithm>

namespace fairshare::util {

TimerWheel::TimerWheel(std::uint64_t tick_ns)
    : tick_ns_(tick_ns ? tick_ns : 1) {}

TimerWheel::TimerId TimerWheel::add(std::uint64_t deadline_ns, Callback cb) {
  const TimerId id = next_id_++;
  // A deadline at or before the advance cursor would hash into a bucket
  // the cursor already passed and sleep out a whole rotation; park it in
  // the bucket the next advance() walks first instead.
  const std::size_t slot = slot_of(std::max(deadline_ns, last_advance_ns_));
  slots_[slot].push_back(Entry{id, deadline_ns, std::move(cb)});
  slot_by_id_.emplace(id, slot);
  ++live_;
  return id;
}

bool TimerWheel::cancel(TimerId id) {
  const auto it = slot_by_id_.find(id);
  if (it == slot_by_id_.end()) return false;
  auto& bucket = slots_[it->second];
  for (auto e = bucket.begin(); e != bucket.end(); ++e) {
    if (e->id == id) {
      bucket.erase(e);
      slot_by_id_.erase(it);
      --live_;
      return true;
    }
  }
  return false;  // unreachable unless the map and buckets disagree
}

std::size_t TimerWheel::advance(std::uint64_t now_ns,
                                std::vector<Callback>& out) {
  if (live_ == 0) {
    last_advance_ns_ = now_ns;
    return 0;
  }
  // Walk the buckets the clock passed since the last advance; a gap of a
  // full rotation (or first use) degenerates to one scan of every bucket.
  const std::uint64_t from_tick = last_advance_ns_ / tick_ns_;
  const std::uint64_t to_tick = now_ns / tick_ns_;
  const std::uint64_t span = to_tick - from_tick + 1;
  const std::size_t walk =
      span >= kSlots ? kSlots : static_cast<std::size_t>(span);

  std::vector<Entry> due;
  for (std::size_t i = 0; i < walk; ++i) {
    auto& bucket = slots_[(from_tick + i) & (kSlots - 1)];
    for (std::size_t j = 0; j < bucket.size();) {
      if (bucket[j].deadline_ns <= now_ns) {
        slot_by_id_.erase(bucket[j].id);
        due.push_back(std::move(bucket[j]));
        bucket[j] = std::move(bucket.back());
        bucket.pop_back();
        --live_;
      } else {
        ++j;
      }
    }
  }
  last_advance_ns_ = now_ns;
  // Buckets hold entries unordered; the contract is deadline order (ties:
  // arming order, which ids encode).
  std::sort(due.begin(), due.end(), [](const Entry& a, const Entry& b) {
    return a.deadline_ns != b.deadline_ns ? a.deadline_ns < b.deadline_ns
                                          : a.id < b.id;
  });
  for (Entry& e : due) out.push_back(std::move(e.cb));
  return due.size();
}

std::optional<std::uint64_t> TimerWheel::next_deadline_ns() const {
  std::optional<std::uint64_t> best;
  if (live_ == 0) return best;
  for (const auto& bucket : slots_)
    for (const Entry& e : bucket)
      if (!best || e.deadline_ns < *best) best = e.deadline_ns;
  return best;
}

}  // namespace fairshare::util
