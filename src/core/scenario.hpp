// Convenience builder for rate-level sharing scenarios.
//
// The figures of Section V are all instances of "n peers, given upload
// capacities, given demand patterns, Equation (2) unless stated";
// Scenario captures that shape so experiments read like the paper's
// prose.  For message-level experiments (real coded bytes, RSA sessions)
// use p2p::System directly.
#pragma once

#include <memory>
#include <vector>

#include "alloc/policies.hpp"
#include "sim/simulator.hpp"

namespace fairshare::core {

class Scenario {
 public:
  /// Allocation-ledger seed epsilon for Equation (2) peers ("small and
  /// equal non-zero contribution between every two peers", Section V).
  Scenario& epsilon(double value) {
    epsilon_ = value;
    return *this;
  }

  /// Allocation granularity (Section III-D quantization), kbps.
  Scenario& quantum(double kbps) {
    config_.quantum_kbps = kbps;
    return *this;
  }

  /// Add a peer with the paper's Equation (2) policy and saturated demand;
  /// returns the peer index.  Refine with the setters below.
  std::size_t add_peer(double upload_kbps);

  /// Add a fully custom peer.
  std::size_t add_peer(sim::PeerSetup setup);

  /// Replace peer i's demand process.
  Scenario& demand(std::size_t i, std::shared_ptr<sim::DemandProcess> d);
  /// Replace peer i's allocation policy.
  Scenario& policy(std::size_t i, std::shared_ptr<alloc::AllocationPolicy> p);
  /// Make peer i declare a (possibly false) capacity.
  Scenario& declares(std::size_t i, double kbps);
  /// Gate peer i's contribution by a slot predicate (late joiners).
  Scenario& contributes_when(std::size_t i,
                             std::function<bool(std::uint64_t)> gate);
  /// Time-varying capacity for peer i (drops/recoveries).
  Scenario& capacity_schedule(std::size_t i,
                              std::function<double(std::uint64_t)> schedule);

  std::size_t size() const { return peers_.size(); }

  /// Materialize the simulator.  Policies default to Equation (2) with the
  /// scenario epsilon; demand defaults to AlwaysDemand.
  sim::Simulator build() const;

 private:
  double epsilon_ = 1.0;
  sim::SimConfig config_;
  std::vector<sim::PeerSetup> peers_;
};

/// n saturated Equation-(2) peers with the given upload capacities — the
/// Figure 5 shape.
Scenario saturated_scenario(const std::vector<double>& uploads_kbps,
                            double epsilon = 1.0);

}  // namespace fairshare::core
