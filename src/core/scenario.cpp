#include "core/scenario.hpp"

#include <cassert>

namespace fairshare::core {

std::size_t Scenario::add_peer(double upload_kbps) {
  sim::PeerSetup setup;
  setup.upload_kbps = upload_kbps;
  peers_.push_back(std::move(setup));
  return peers_.size() - 1;
}

std::size_t Scenario::add_peer(sim::PeerSetup setup) {
  peers_.push_back(std::move(setup));
  return peers_.size() - 1;
}

Scenario& Scenario::demand(std::size_t i,
                           std::shared_ptr<sim::DemandProcess> d) {
  peers_.at(i).demand = std::move(d);
  return *this;
}

Scenario& Scenario::policy(std::size_t i,
                           std::shared_ptr<alloc::AllocationPolicy> p) {
  peers_.at(i).policy = std::move(p);
  return *this;
}

Scenario& Scenario::declares(std::size_t i, double kbps) {
  peers_.at(i).declared_kbps = kbps;
  return *this;
}

Scenario& Scenario::contributes_when(
    std::size_t i, std::function<bool(std::uint64_t)> gate) {
  peers_.at(i).contributes = std::move(gate);
  return *this;
}

Scenario& Scenario::capacity_schedule(
    std::size_t i, std::function<double(std::uint64_t)> schedule) {
  peers_.at(i).capacity_schedule = std::move(schedule);
  return *this;
}

sim::Simulator Scenario::build() const {
  std::vector<sim::PeerSetup> peers = peers_;
  for (auto& p : peers) {
    if (!p.demand) p.demand = std::make_shared<sim::AlwaysDemand>();
    if (!p.policy)
      p.policy = std::make_shared<alloc::ProportionalContributionPolicy>(
          peers.size(), epsilon_);
  }
  return sim::Simulator(std::move(peers), config_);
}

Scenario saturated_scenario(const std::vector<double>& uploads_kbps,
                            double epsilon) {
  Scenario s;
  s.epsilon(epsilon);
  for (double u : uploads_kbps) s.add_peer(u);
  return s;
}

}  // namespace fairshare::core
