// Umbrella header for the fairshare library.
//
// fairshare reproduces "Fast data access over asymmetric channels using
// fair and secure bandwidth sharing" (Agarwal, Laifenfeld, Trachtenberg,
// Alanyali — ICDCS 2006): a peer-to-peer system in which users predistribute
// secret-keyed random-linear-coded copies of their data to other peers
// while links are idle, then download from many peers at once — beating
// their own home link's upload capacity — under the contribution-
// proportional bandwidth allocation rule of Equation (2).
//
// Layer map (bottom-up):
//   gf::      GF(2^p) arithmetic, p in {4, 8, 16, 32}
//   linalg::  matrices and progressive Gaussian elimination over GF(2^p)
//   crypto::  MD5, SHA-256, HMAC, ChaCha20, bignum/RSA, challenge-response
//   coding::  the secret-keyed RLNC codec (Section III)
//   alloc::   allocation policies: Equation (2), baselines, adversaries
//   sim::     time-slotted bandwidth simulator + fairness metrics (Sec. IV-V)
//   p2p::     full message-level system: stores, dissemination, sessions
//   core::    scenario builder gluing the above together
#pragma once

#include "alloc/policies.hpp"
#include "alloc/policy.hpp"
#include "coding/chunker.hpp"
#include "coding/decoder.hpp"
#include "coding/encoder.hpp"
#include "core/scenario.hpp"
#include "crypto/auth.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"
#include "crypto/md5.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"
#include "gf/field.hpp"
#include "gf/row_ops.hpp"
#include "linalg/matrix.hpp"
#include "linalg/progressive.hpp"
#include "p2p/system.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
