#include "net/peer_server.hpp"

#include <chrono>

#include "crypto/chacha20.hpp"
#include "crypto/sha256.hpp"
#include "p2p/wire.hpp"

namespace fairshare::net {

namespace {

// Largest frame a server will accept from a client (handshake frames and
// requests are small; coded messages flow the other way).
constexpr std::size_t kMaxClientFrame = 1 << 16;

crypto::ChaCha20 seeded_rng(std::uint64_t seed, std::uint64_t salt) {
  crypto::Sha256 h;
  std::uint8_t buf[16];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<std::uint8_t>(seed >> (8 * i));
    buf[8 + i] = static_cast<std::uint8_t>(salt >> (8 * i));
  }
  h.update(std::span<const std::uint8_t>(buf, 16));
  const crypto::Sha256Digest key = h.finish();
  const std::array<std::uint8_t, crypto::ChaCha20::kNonceSize> nonce{};
  return crypto::ChaCha20(std::span<const std::uint8_t, 32>(key), nonce);
}

}  // namespace

PeerServer::PeerServer(Config config, p2p::MessageStore store,
                       std::optional<crypto::RsaKeyPair> identity)
    : config_(config), store_(std::move(store)), identity_(std::move(identity)) {}

PeerServer::~PeerServer() { stop(); }

void PeerServer::register_user(std::uint64_t user_id,
                               crypto::RsaPublicKey key) {
  users_.emplace(user_id, std::move(key));
}

bool PeerServer::start() {
  auto listener = Listener::bind_local(config_.port);
  if (!listener) return false;
  listener_ = std::move(*listener);
  port_ = listener_.port();
  running_ = true;
  thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void PeerServer::stop() {
  running_ = false;
  if (thread_.joinable()) thread_.join();
  listener_.close();
}

void PeerServer::accept_loop() {
  std::uint64_t session_salt = 0;
  while (running_) {
    auto client = listener_.accept(/*timeout_ms=*/50);
    if (!client) continue;
    ++session_salt;
    handle_session(std::move(*client));
  }
}

void PeerServer::handle_session(Socket client) {
  static std::atomic<std::uint64_t> session_counter{0};
  const std::uint64_t salt = ++session_counter;

  crypto::SessionKey session_key{};
  if (config_.require_auth) {
    if (!identity_) return;
    const auto hello_frame = recv_frame(client, kMaxClientFrame);
    if (!hello_frame) return;
    const auto hello = p2p::wire::decode_auth_hello(*hello_frame);
    if (!hello) return;
    const auto user = users_.find(hello->user_id);
    if (user == users_.end()) {
      ++auth_rejections_;
      return;
    }
    crypto::ChaCha20 rng = seeded_rng(config_.rng_seed, salt);
    crypto::AuthResponder responder(config_.peer_id, *identity_, user->second,
                                    rng);
    const auto challenge = responder.on_hello(*hello);
    if (!send_frame(client, p2p::wire::encode(challenge))) return;
    const auto response_frame = recv_frame(client, kMaxClientFrame);
    if (!response_frame) return;
    const auto response = p2p::wire::decode_auth_response(*response_frame);
    if (!response || !responder.on_response(*response)) {
      ++auth_rejections_;
      return;
    }
    session_key = responder.session_key();
  }
  (void)session_key;  // available for per-frame HMAC tagging if desired

  const auto request_frame = recv_frame(client, kMaxClientFrame);
  if (!request_frame) return;
  const auto request = p2p::wire::decode_file_request(*request_frame);
  if (!request) return;

  // Transmission "4": stream the verbatim store, paced to the upload rate.
  const double rate =
      (config_.rate_kbps > 0.0 &&
       (request->max_rate_kbps <= 0.0 || config_.rate_kbps < request->max_rate_kbps))
          ? config_.rate_kbps
          : request->max_rate_kbps;
  const std::size_t count = store_.count(request->file_id);
  for (std::size_t i = 0; i < count && running_; ++i) {
    const coding::EncodedMessage& msg = store_.at(request->file_id, i);
    if (!send_frame(client, p2p::wire::encode(msg))) return;  // client left
    ++messages_sent_;
    if (rate > 0.0) {
      const double ms =
          static_cast<double>(msg.wire_size()) * 8.0 / rate;  // kb / kbps
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<long>(ms * 1000.0)));
    }
    // Transmission "5": the user says stop as soon as it can decode.
    if (client.readable(0)) {
      const auto stop_frame = recv_frame(client, kMaxClientFrame);
      if (!stop_frame) return;
      if (p2p::wire::decode_stop_transmission(*stop_frame)) break;
    }
  }
  ++sessions_completed_;
}

}  // namespace fairshare::net
