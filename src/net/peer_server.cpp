#include "net/peer_server.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "alloc/policies.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/sha256.hpp"
#include "net/event_loop.hpp"
#include "obs/export.hpp"
#include "obs/signal_dump.hpp"
#include "obs/trace.hpp"
#include "p2p/wire.hpp"

namespace fairshare::net {

const char* to_string(NetBackend backend) {
  return backend == NetBackend::epoll ? "epoll" : "threads";
}

NetBackend default_net_backend() {
  if (const char* env = std::getenv("FAIRSHARE_NET_BACKEND")) {
    if (std::strcmp(env, "threads") == 0) return NetBackend::threads;
    if (std::strcmp(env, "epoll") == 0)
      return epoll_available() ? NetBackend::epoll : NetBackend::threads;
    // Unrecognised values fall through to the build default.
  }
#if defined(FAIRSHARE_NET_BACKEND_THREADS)
  return NetBackend::threads;
#else
  return epoll_available() ? NetBackend::epoll : NetBackend::threads;
#endif
}

crypto::ChaCha20 PeerServer::seeded_rng(std::uint64_t seed,
                                        std::uint64_t salt) {
  crypto::Sha256 h;
  std::uint8_t buf[16];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<std::uint8_t>(seed >> (8 * i));
    buf[8 + i] = static_cast<std::uint8_t>(salt >> (8 * i));
  }
  h.update(std::span<const std::uint8_t>(buf, 16));
  const crypto::Sha256Digest key = h.finish();
  const std::array<std::uint8_t, crypto::ChaCha20::kNonceSize> nonce{};
  return crypto::ChaCha20(std::span<const std::uint8_t, 32>(key), nonce);
}

PeerServer::PeerServer(Config config, p2p::MessageStore store,
                       std::optional<crypto::RsaKeyPair> identity)
    : config_(config),
      store_(std::move(store)),
      identity_(std::move(identity)),
      user_bytes_(config_.max_users, 0),
      user_rate_kbps_(config_.max_users, 0.0),
      declared_(config_.max_users, 0.0),
      policy_(std::make_unique<alloc::SynchronizedPolicy>(
          std::make_unique<alloc::ProportionalContributionPolicy>(
              config_.max_users))),
      pt_requesting_(config_.max_users, 0),
      pt_received_(config_.max_users, 0.0),
      pt_shares_(config_.max_users, 0.0),
      pt_sessions_(config_.max_users, 0),
      applied_remote_(config_.max_users, 0.0),
      registry_(config.registry ? config.registry
                                : &obs::MetricsRegistry::global()),
      m_user_bytes_(config_.max_users, nullptr),
      m_user_rate_(config_.max_users, nullptr) {
  const obs::LabelList peer = {{"peer", std::to_string(config_.peer_id)}};
  m_sessions_completed_ =
      &registry_->counter("fairshare_server_sessions_completed_total", peer);
  m_sessions_rejected_ =
      &registry_->counter("fairshare_server_sessions_rejected_total", peer);
  m_auth_rejections_ =
      &registry_->counter("fairshare_server_auth_rejections_total", peer);
  m_messages_sent_ =
      &registry_->counter("fairshare_server_messages_sent_total", peer);
  m_active_sessions_ =
      &registry_->gauge("fairshare_server_active_sessions", peer);
  m_peak_sessions_ = &registry_->gauge("fairshare_server_peak_sessions", peer);
  m_quantum_ns_ =
      &registry_->histogram("fairshare_server_quantum_ns", peer);
}

PeerServer::~PeerServer() { stop(); }

void PeerServer::register_user(std::uint64_t user_id,
                               crypto::RsaPublicKey key) {
  users_.emplace(user_id, std::move(key));
}

void PeerServer::set_policy(std::unique_ptr<alloc::AllocationPolicy> policy) {
  policy_ = std::make_unique<alloc::SynchronizedPolicy>(std::move(policy));
}

void PeerServer::seed_contribution(std::uint64_t user_id, double amount) {
  std::vector<double> received(config_.max_users, 0.0);
  {
    std::lock_guard<std::mutex> lock(pacing_mutex_);
    const auto slot = user_slot_locked(user_id);
    if (!slot) return;
    received[*slot] = amount;
  }
  alloc::SlotFeedback feedback;
  feedback.slot = 0;
  feedback.received = received;
  policy_->observe(feedback);
}

std::optional<std::size_t> PeerServer::user_slot_locked(
    std::uint64_t user_id) {
  const auto it = user_slots_.find(user_id);
  if (it != user_slots_.end()) return it->second;
  if (slot_users_.size() >= config_.max_users) return std::nullopt;
  const std::size_t slot = slot_users_.size();
  slot_users_.push_back(user_id);
  user_slots_.emplace(user_id, slot);
  const obs::LabelList labels = {{"peer", std::to_string(config_.peer_id)},
                                 {"user", std::to_string(user_id)}};
  m_user_bytes_[slot] =
      &registry_->counter("fairshare_server_user_bytes_total", labels);
  m_user_rate_[slot] =
      &registry_->gauge("fairshare_server_user_rate_kbps", labels);
  return slot;
}

std::uint64_t PeerServer::user_bytes_sent(std::uint64_t user_id) const {
  std::lock_guard<std::mutex> lock(pacing_mutex_);
  const auto it = user_slots_.find(user_id);
  return it == user_slots_.end() ? 0 : user_bytes_[it->second];
}

std::vector<PeerServer::AllocationShare> PeerServer::allocation_snapshot()
    const {
  // One lock acquisition covers every field read, so the returned rows are
  // a coherent instant of the allocation state: a single pass over the
  // session registry (O(users + sessions), not O(users * sessions))
  // instead of a rescan per user row.
  std::lock_guard<std::mutex> lock(pacing_mutex_);
  std::vector<AllocationShare> out(slot_users_.size());
  for (std::size_t slot = 0; slot < slot_users_.size(); ++slot) {
    out[slot].user_id = slot_users_[slot];
    out[slot].rate_kbps = user_rate_kbps_[slot];
    out[slot].bytes_sent = user_bytes_[slot];
  }
  for (const auto& [id, st] : sessions_)
    if (st->streaming && st->user_slot < out.size())
      ++out[st->user_slot].active_sessions;
  return out;
}

NetBackend PeerServer::backend() const {
  if (started_) return backend_;
  const NetBackend want = config_.backend.value_or(default_net_backend());
  return (want == NetBackend::epoll && !epoll_available())
             ? NetBackend::threads
             : want;
}

std::size_t PeerServer::effective_max_sessions() const {
  return backend_ == NetBackend::threads
             ? std::min(config_.max_sessions, kThreadsSessionCap)
             : config_.max_sessions;
}

bool PeerServer::start() {
  backend_ = backend();
  started_ = true;
  if (!config_.stats_json_path.empty()) {
    obs::enable_sigusr1_trigger();
    dump_generation_seen_ = obs::sigusr1_generation();
  }
  // Announce every stored file to discovery once the port is known (the
  // hook owns the TTL refresh from there).
  const auto announce_stored = [this] {
    if (!config_.discovery) return;
    ServeEndpoint self;
    self.host = config_.advertise_host;
    self.port = port_;
    self.peer_id = config_.peer_id;
    for (const std::uint64_t file_id : store_.file_ids())
      config_.discovery->announce_file(file_id, self);
  };
  if (backend_ == NetBackend::epoll) {
    running_ = true;
    if (reactor_start()) {
      announce_stored();
      return true;
    }
    // The reactor could not come up (fd limits, failed bind): fall back
    // to the portable path rather than refusing to serve.
    running_ = false;
    backend_ = NetBackend::threads;
  }
  auto listener = Listener::bind_local(config_.port);
  if (!listener) return false;
  listener_ = std::move(*listener);
  port_ = listener_.port();
  running_ = true;
  // Pool capacity is effective_max_sessions workers plus the
  // (never-participating) caller slot.  The pool spawns lazily, so this
  // is a ceiling on concurrent sessions, not an upfront thread cost; the
  // kThreadsSessionCap clamp additionally keeps the 1024-session default
  // from meaning a thousand-thread burst under full load.
  const std::size_t workers =
      std::max<std::size_t>(effective_max_sessions(), 1) + 1;
  pool_ = std::make_unique<util::ThreadPool>(workers);
  std::size_t serving = workers + 1;  // + accept loop (capacity, not spawned)
  if (config_.rate_kbps > 0.0) {
    pacing_thread_ = std::thread([this] { pacing_loop(); });
    ++serving;
  }
  serving_threads_ = serving;
  accept_thread_ = std::thread([this] { accept_loop(); });
  announce_stored();
  return true;
}

void PeerServer::stop() {
  const bool was_running = running_.exchange(false);
  {
    std::lock_guard<std::mutex> lock(pacing_mutex_);
  }
  pacing_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  pool_.reset();  // joins every in-flight session handler
  if (pacing_thread_.joinable()) pacing_thread_.join();
  reactor_stop();  // joins the loops (no-op for the threads backend)
  listener_.close();
  serving_threads_ = 0;
  // At-exit dump, once, after every session has finished counting.
  if (was_running && !config_.stats_json_path.empty())
    obs::dump_json(*registry_, config_.stats_json_path);
}

void PeerServer::accept_loop() {
  while (running_) {
    // A SIGUSR1 since the last look means "dump now"; the handler only
    // bumps a generation, all IO happens here on a normal thread.
    if (!config_.stats_json_path.empty()) {
      const std::uint64_t gen = obs::sigusr1_generation();
      if (gen != dump_generation_seen_) {
        dump_generation_seen_ = gen;
        obs::dump_json(*registry_, config_.stats_json_path);
      }
    }
    auto client = listener_.accept(/*timeout_ms=*/50);
    if (!client) continue;
    if (active_sessions_.load() >= effective_max_sessions()) {
      ++sessions_rejected_;
      m_sessions_rejected_->add(1);
      continue;  // Socket destructor closes the connection
    }
    const std::size_t now_active = ++active_sessions_;
    m_active_sessions_->add(1.0);
    std::size_t peak = peak_sessions_.load();
    while (now_active > peak &&
           !peak_sessions_.compare_exchange_weak(peak, now_active)) {
    }
    m_peak_sessions_->set(static_cast<double>(peak_sessions_.load()));
    const std::uint64_t salt = ++session_counter_;
    client->set_recv_timeout(config_.recv_timeout_ms);
    client->set_send_timeout(config_.handshake_timeout_ms);
    std::unique_ptr<Transport> transport =
        std::make_unique<Socket>(std::move(*client));
    if (config_.transport_wrapper)
      transport = config_.transport_wrapper(std::move(transport));
    // std::function needs a copyable closure; hand the transport over
    // shared.
    std::shared_ptr<Transport> shared = std::move(transport);
    pool_->submit([this, shared, salt] {
      handle_session(*shared, salt);
      --active_sessions_;
      m_active_sessions_->add(-1.0);
    });
  }
}

void PeerServer::pacing_tick_locked() {
  ++pt_slot_;
  const double quantum_s = config_.pacing_quantum_ms / 1000.0;
  const std::uint64_t tick_t0 = obs::monotonic_ns();

  std::fill(pt_requesting_.begin(), pt_requesting_.end(), 0);
  std::fill(pt_received_.begin(), pt_received_.end(), 0.0);
  std::fill(pt_sessions_.begin(), pt_sessions_.end(), 0);
  for (const auto& [id, st] : sessions_) {
    pt_received_[st->user_slot] += st->quantum_bytes;
    st->quantum_bytes = 0.0;
    if (st->streaming) {
      pt_requesting_[st->user_slot] = 1;
      ++pt_sessions_[st->user_slot];
    }
  }

  // Federation: publish this server's cumulative per-user service to the
  // swarm and fold in what each user earned at OTHER origin servers.  The
  // hook reports a monotone swarm-wide total; only its growth since the
  // last tick enters the feedback (the policy itself accumulates), so the
  // fold is idempotent under gossip re-delivery.
  if (config_.discovery) {
    for (std::size_t s = 0; s < slot_users_.size(); ++s) {
      config_.discovery->publish_contribution(
          slot_users_[s], static_cast<double>(user_bytes_[s]));
      const double remote =
          config_.discovery->swarm_contribution(slot_users_[s]);
      if (remote > applied_remote_[s]) {
        pt_received_[s] += remote - applied_remote_[s];
        applied_remote_[s] = remote;
      }
    }
  }

  // Feedback first: Equation (2)'s ledger S accumulates the service each
  // user's peer has actually delivered (here: bytes this server sent on
  // the user's behalf — the local measurement available to a live peer).
  alloc::SlotFeedback feedback;
  feedback.slot = pt_slot_;
  feedback.received = pt_received_;
  policy_->observe(feedback);

  alloc::PeerContext ctx;
  ctx.self = 0;
  ctx.slot = pt_slot_;
  ctx.capacity = config_.rate_kbps;
  ctx.requesting = pt_requesting_;
  ctx.declared = declared_;  // live peers declare nothing (all zeros)
  policy_->allocate(ctx, pt_shares_);

  for (std::size_t s = 0; s < config_.max_users; ++s) {
    user_rate_kbps_[s] = pt_requesting_[s] ? pt_shares_[s] : 0.0;
    if (m_user_rate_[s]) m_user_rate_[s]->set(user_rate_kbps_[s]);
  }

  for (const auto& [id, st] : sessions_) {
    if (!st->streaming) continue;
    double share = pt_shares_[st->user_slot] /
                   static_cast<double>(pt_sessions_[st->user_slot]);
    if (st->cap_kbps > 0.0) share = std::min(share, st->cap_kbps);
    const double grant = share * 1000.0 / 8.0 * quantum_s;  // kbps -> bytes
    st->budget_bytes += grant;
    // A session that fell asleep must not burst an unbounded backlog.
    const double burst_cap = std::max(4.0 * grant, 1.0);
    st->budget_bytes = std::min(st->budget_bytes, burst_cap);
  }
  m_quantum_ns_->record(obs::monotonic_ns() - tick_t0);
}

void PeerServer::pacing_loop() {
  const auto quantum = std::chrono::milliseconds(config_.pacing_quantum_ms);
  auto next = std::chrono::steady_clock::now() + quantum;

  std::unique_lock<std::mutex> lock(pacing_mutex_);
  while (running_) {
    pacing_cv_.wait_until(lock, next, [&] { return !running_.load(); });
    if (!running_) break;
    next += quantum;
    pacing_tick_locked();
    pacing_cv_.notify_all();
  }
  lock.unlock();
  pacing_cv_.notify_all();  // release sessions still waiting on budget
}

std::optional<std::vector<std::byte>> PeerServer::recv_frame_by(
    Transport& client, std::chrono::steady_clock::time_point deadline) {
  while (running_) {
    auto frame = recv_frame(client, kMaxClientFrame);
    if (frame) return frame;
    if (!client.timed_out()) return std::nullopt;  // closed or stalled
    if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
  }
  return std::nullopt;
}

void PeerServer::handle_session(Transport& client, std::uint64_t salt) {
  obs::TraceSpan span(&registry_->spans(), "server.session");
  const auto handshake_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(config_.handshake_timeout_ms);

  crypto::SessionKey session_key{};
  std::uint64_t authed_user = 0;
  bool have_authed_user = false;
  if (config_.require_auth) {
    if (!identity_) return;
    const auto hello_frame = recv_frame_by(client, handshake_deadline);
    if (!hello_frame) return;
    const auto hello = p2p::wire::decode_auth_hello(*hello_frame);
    if (!hello) return;
    const auto user = users_.find(hello->user_id);
    if (user == users_.end()) {
      ++auth_rejections_;
      m_auth_rejections_->add(1);
      return;
    }
    crypto::ChaCha20 rng = seeded_rng(config_.rng_seed, salt);
    crypto::AuthResponder responder(config_.peer_id, *identity_, user->second,
                                    rng);
    const auto challenge = responder.on_hello(*hello);
    if (!send_frame(client, p2p::wire::encode(challenge))) return;
    const auto response_frame = recv_frame_by(client, handshake_deadline);
    if (!response_frame) return;
    const auto response = p2p::wire::decode_auth_response(*response_frame);
    if (!response || !responder.on_response(*response)) {
      ++auth_rejections_;
      m_auth_rejections_->add(1);
      return;
    }
    session_key = responder.session_key();
    authed_user = hello->user_id;
    have_authed_user = true;
  }
  (void)session_key;  // available for per-frame HMAC tagging if desired

  const auto request_frame = recv_frame_by(client, handshake_deadline);
  if (!request_frame) return;
  const auto request = p2p::wire::decode_file_request(*request_frame);
  if (!request) return;
  // The allocation key is the *authenticated* identity when there is one;
  // an unauthenticated server has only the request's claim to go by.
  const std::uint64_t user_id =
      have_authed_user ? authed_user : request->user_id;

  // The advertised cap is untrusted wire input: a corrupt (or hostile)
  // request carrying a denormal, negative, or non-finite rate must not be
  // able to park this session in a near-infinite pacing sleep — it would
  // stall stop() behind the thread-pool join.  Sub-1-kbps caps mean "no
  // cap"; the per-frame sleep below is bounded as a second line of
  // defence.
  double client_cap = request->max_rate_kbps;
  if (!std::isfinite(client_cap) || client_cap < 1.0) client_cap = 0.0;

  const bool paced = config_.rate_kbps > 0.0;
  std::shared_ptr<SessionState> st;
  {
    std::lock_guard<std::mutex> lock(pacing_mutex_);
    const auto slot = user_slot_locked(user_id);
    if (!slot) return;  // ledger full: cannot account for this user
    st = std::make_shared<SessionState>();
    st->user_id = user_id;
    st->user_slot = *slot;
    st->cap_kbps = client_cap;
    st->streaming = true;
    sessions_.emplace(salt, st);
  }

  // Transmission "4": stream the verbatim store.  Under pacing the session
  // spends the token budget the scheduler grants its user each quantum;
  // unpaced it honours at most the client's own advertised cap.
  const double solo_rate = paced ? 0.0 : client_cap;
  bool completed = true;
  const std::size_t count = store_.count(request->file_id);
  for (std::size_t i = 0; i < count && running_; ++i) {
    const coding::EncodedMessage& msg = store_.at(request->file_id, i);
    const auto frame = p2p::wire::encode(msg);
    if (paced) {
      std::unique_lock<std::mutex> lock(pacing_mutex_);
      pacing_cv_.wait(lock, [&] {
        return !running_.load() || st->budget_bytes > 0.0;
      });
      if (!running_) {
        completed = false;
        break;
      }
      // Debt model: any positive budget admits one frame; the overdraft is
      // repaid out of future grants, so frames larger than one quantum's
      // grant still flow at the allocated average rate.
      st->budget_bytes -= static_cast<double>(frame.size());
      st->quantum_bytes += static_cast<double>(frame.size());
      user_bytes_[st->user_slot] += frame.size();
      m_user_bytes_[st->user_slot]->add(frame.size());
    } else {
      std::lock_guard<std::mutex> lock(pacing_mutex_);
      user_bytes_[st->user_slot] += frame.size();
      m_user_bytes_[st->user_slot]->add(frame.size());
    }
    if (!send_frame(client, frame)) {  // client left
      completed = false;
      break;
    }
    ++messages_sent_;
    m_messages_sent_->add(1);
    if (solo_rate > 0.0) {
      const double ms = std::min(
          static_cast<double>(msg.wire_size()) * 8.0 / solo_rate,  // kb / kbps
          1000.0);  // bound one frame's sleep so stop() stays prompt
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<long>(ms * 1000.0)));
    }
    // Transmission "5": the user says stop as soon as it can decode.
    if (client.readable(0)) {
      const auto stop_frame = recv_frame(client, kMaxClientFrame);
      if (!stop_frame) {
        completed = false;
        break;
      }
      if (p2p::wire::decode_stop_transmission(*stop_frame)) break;
    }
  }

  {
    std::lock_guard<std::mutex> lock(pacing_mutex_);
    sessions_.erase(salt);
  }
  if (completed) {
    ++sessions_completed_;
    m_sessions_completed_->add(1);
  }
}

}  // namespace fairshare::net
