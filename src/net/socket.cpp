#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace fairshare::net {

// ------------------------------------------------------------------ Socket

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(other.fd_), timed_out_(other.timed_out_) {
  other.fd_ = -1;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    timed_out_ = other.timed_out_;
    other.fd_ = -1;
  }
  return *this;
}

bool Socket::set_recv_timeout(int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  return ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0;
}

bool Socket::set_send_timeout(int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  return ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) == 0;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<Socket> Socket::connect_to(const std::string& host,
                                         std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string ip = (host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return std::nullopt;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

bool Socket::write_all(std::span<const std::byte> data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool Socket::read_exact(std::span<std::byte> out) {
  timed_out_ = false;
  std::size_t got = 0;
  // A peer that stalls mid-read gets a bounded number of timeout windows
  // before the read is declared dead (frames are written whole, so partial
  // arrivals normally complete within one window).
  int stalls = 0;
  while (got < out.size()) {
    const ssize_t n = ::recv(fd_, out.data() + got, out.size() - got, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (got == 0) {
          timed_out_ = true;  // clean timeout, nothing consumed: retryable
          return false;
        }
        if (++stalls < 20) continue;
      }
      return false;
    }
    stalls = 0;
    got += static_cast<std::size_t>(n);
  }
  return true;
}

bool Socket::readable(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  return ::poll(&pfd, 1, timeout_ms) > 0 && (pfd.revents & POLLIN);
}

// ---------------------------------------------------------------- Listener

Listener::~Listener() { close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<Listener> Listener::bind_local(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  Listener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

std::optional<Socket> Listener::accept(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  if (::poll(&pfd, 1, timeout_ms) <= 0) return std::nullopt;
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) return std::nullopt;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

}  // namespace fairshare::net
