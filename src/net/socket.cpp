#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace fairshare::net {

namespace {

bool fd_set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return next == flags || ::fcntl(fd, F_SETFL, next) == 0;
}

}  // namespace

// ------------------------------------------------------------------ Socket

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(other.fd_),
      timed_out_(other.timed_out_),
      recv_timeout_ms_(other.recv_timeout_ms_) {
  other.fd_ = -1;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    timed_out_ = other.timed_out_;
    recv_timeout_ms_ = other.recv_timeout_ms_;
    other.fd_ = -1;
  }
  return *this;
}

bool Socket::set_nonblocking(bool on) { return fd_set_nonblocking(fd_, on); }

bool Socket::set_recv_timeout(int timeout_ms) {
  // Poll-based: recv() itself never carries the timeout, so the setting
  // works identically on blocking and O_NONBLOCK fds (SO_RCVTIMEO is
  // ignored by a non-blocking recv, which used to make the old API decay
  // to a busy spin the moment a reactor flipped the fd's mode).
  recv_timeout_ms_ = timeout_ms > 0 ? timeout_ms : 0;
  return fd_ >= 0;
}

bool Socket::set_send_timeout(int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  return ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) == 0;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<Socket> Socket::connect_to(const std::string& host,
                                         std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string ip = (host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return std::nullopt;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

bool Socket::write_all(std::span<const std::byte> data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        // Non-blocking fd used through the blocking API: wait for space
        // (bounded, so a peer that stopped reading cannot park us).
        pollfd pfd{fd_, POLLOUT, 0};
        if (::poll(&pfd, 1, 1000) > 0) continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool Socket::read_exact(std::span<std::byte> out) {
  timed_out_ = false;
  std::size_t got = 0;
  // A peer that stalls mid-read gets a bounded number of timeout windows
  // before the read is declared dead (frames are written whole, so partial
  // arrivals normally complete within one window).
  int stalls = 0;
  while (got < out.size()) {
    // The timeout lives in poll(), not in recv(): identical behaviour
    // whether or not the fd is O_NONBLOCK.
    if (recv_timeout_ms_ > 0) {
      pollfd pfd{fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, recv_timeout_ms_);
      if (ready == 0) {
        if (got == 0) {
          timed_out_ = true;  // clean timeout, nothing consumed: retryable
          return false;
        }
        if (++stalls < 20) continue;
        return false;
      }
      if (ready < 0) {
        if (errno == EINTR) continue;
        return false;
      }
    }
    const ssize_t n = ::recv(fd_, out.data() + got, out.size() - got,
                             recv_timeout_ms_ > 0 ? MSG_DONTWAIT : 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (recv_timeout_ms_ > 0) continue;  // poll above re-arms the wait
        // No timeout configured but the fd is non-blocking: block here.
        pollfd pfd{fd_, POLLIN, 0};
        if (::poll(&pfd, 1, -1) > 0 || errno == EINTR) continue;
      }
      return false;
    }
    stalls = 0;
    got += static_cast<std::size_t>(n);
  }
  return true;
}

bool Socket::readable(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  return ::poll(&pfd, 1, timeout_ms) > 0 && (pfd.revents & POLLIN);
}

IoStatus Socket::try_read_bytes(std::byte* out, std::size_t n,
                                std::size_t& got) {
  got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd_, out + got, n - got, MSG_DONTWAIT);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) return got > 0 ? IoStatus::ok : IoStatus::closed;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return got > 0 ? IoStatus::ok : IoStatus::blocked;
    return IoStatus::error;
  }
  return IoStatus::ok;
}

IoStatus Socket::try_write_bytes_vec(const std::span<const std::byte>* bufs,
                                     std::size_t nbufs, std::size_t& put) {
  put = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < nbufs; ++i) total += bufs[i].size();
  while (put < total) {
    // Rebuild the iovec past what has already left; progress fills the
    // buffers strictly in order, as the base try_flush assumes.
    iovec iov[2];
    std::size_t niov = 0;
    std::size_t skip = put;
    for (std::size_t i = 0; i < nbufs && niov < 2; ++i) {
      if (skip >= bufs[i].size()) {
        skip -= bufs[i].size();
        continue;
      }
      iov[niov].iov_base =
          const_cast<std::byte*>(bufs[i].data() + skip);
      iov[niov].iov_len = bufs[i].size() - skip;
      ++niov;
      skip = 0;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = niov;
    const ssize_t r = ::sendmsg(fd_, &msg, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (r > 0) {
      put += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return put > 0 ? IoStatus::ok : IoStatus::blocked;
    return errno == EPIPE || errno == ECONNRESET ? IoStatus::closed
                                                 : IoStatus::error;
  }
  return IoStatus::ok;
}

IoStatus Socket::try_write_bytes(const std::byte* data, std::size_t n,
                                 std::size_t& put) {
  put = 0;
  while (put < n) {
    const ssize_t r = ::send(fd_, data + put, n - put,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (r > 0) {
      put += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return put > 0 ? IoStatus::ok : IoStatus::blocked;
    return errno == EPIPE || errno == ECONNRESET ? IoStatus::closed
                                                 : IoStatus::error;
  }
  return IoStatus::ok;
}

// ---------------------------------------------------------------- Listener

Listener::~Listener() { close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Listener::set_nonblocking(bool on) {
  return fd_set_nonblocking(fd_, on);
}

std::optional<Listener> Listener::bind_local(std::uint16_t port,
                                             bool reuse_port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
#ifdef SO_REUSEPORT
  if (reuse_port)
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));
#else
  if (reuse_port) {
    ::close(fd);
    return std::nullopt;
  }
#endif

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, backlog) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  Listener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

std::optional<Socket> Listener::accept(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  if (::poll(&pfd, 1, timeout_ms) <= 0) return std::nullopt;
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) return std::nullopt;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

}  // namespace fairshare::net
