#include "net/event_loop.hpp"

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>
#endif

#include <algorithm>
#include <cerrno>
#include <utility>

#include "obs/trace.hpp"

namespace fairshare::net {

bool epoll_available() {
#ifdef __linux__
  const int fd = ::epoll_create1(0);
  if (fd < 0) return false;
  ::close(fd);
  return true;
#else
  return false;
#endif
}

struct EventLoop::PeriodicState {
  std::uint64_t period_ns = 0;
  std::uint64_t deadline_ns = 0;
  std::function<void()> cb;
  TimerId wheel_id = 0;  ///< the currently armed one-shot
  bool cancelled = false;
};

EventLoop::EventLoop(std::string name, obs::MetricsRegistry* registry)
    : registry_(registry ? registry : &obs::MetricsRegistry::global()) {
  const obs::LabelList labels = {{"loop", std::move(name)}};
  m_tick_ns_ = &registry_->histogram("fairshare_loop_tick_ns", labels);
  m_ready_depth_ = &registry_->gauge("fairshare_loop_ready_depth", labels);
  m_fds_ = &registry_->gauge("fairshare_loop_fds", labels);
  m_busy_ns_ = &registry_->counter("fairshare_loop_busy_ns_total", labels);
  m_wait_ns_ = &registry_->counter("fairshare_loop_wait_ns_total", labels);
  m_wakeups_ = &registry_->counter("fairshare_loop_wakeups_total", labels);
#ifdef __linux__
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ >= 0 && wake_fd_ >= 0) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  }
#endif
}

EventLoop::~EventLoop() {
#ifdef __linux__
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
#endif
}

void EventLoop::wake() {
#ifdef __linux__
  if (wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(wake_fd_, &one, sizeof(one));  // EAGAIN = already pending
  }
#endif
}

void EventLoop::drain_wake_fd() {
#ifdef __linux__
  std::uint64_t count = 0;
  while (::read(wake_fd_, &count, sizeof(count)) > 0) {
  }
#endif
}

void EventLoop::stop() {
  stop_requested_.store(true, std::memory_order_release);
  wake();
}

void EventLoop::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    posted_.push_back(std::move(fn));
  }
  wake();
}

bool EventLoop::add_fd(int fd, std::uint32_t events, FdCallback cb) {
#ifdef __linux__
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  const int op =
      fds_.count(fd) != 0 ? EPOLL_CTL_MOD : EPOLL_CTL_ADD;
  if (::epoll_ctl(epoll_fd_, op, fd, &ev) != 0 &&
      !(op == EPOLL_CTL_ADD && errno == EEXIST &&
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0))
    return false;
  auto entry = std::make_shared<FdEntry>();
  entry->cb = std::move(cb);
  entry->events = events;
  fds_[fd] = std::move(entry);
  m_fds_->set(static_cast<double>(fds_.size()));
  return true;
#else
  (void)fd;
  (void)events;
  (void)cb;
  return false;
#endif
}

bool EventLoop::modify_fd(int fd, std::uint32_t events) {
#ifdef __linux__
  const auto it = fds_.find(fd);
  if (it == fds_.end()) return false;
  if (it->second->events == events) return true;
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) return false;
  it->second->events = events;
  return true;
#else
  (void)fd;
  (void)events;
  return false;
#endif
}

void EventLoop::remove_fd(int fd) {
#ifdef __linux__
  if (fds_.erase(fd) == 0) return;
  // The fd may already be closed (fault-injected reset, peer teardown):
  // the kernel dropped it from the epoll set on close, so EBADF/ENOENT
  // here is the expected aftermath, not an error.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  m_fds_->set(static_cast<double>(fds_.size()));
#else
  (void)fd;
#endif
}

EventLoop::TimerId EventLoop::add_timer_at(std::uint64_t deadline_ns,
                                           std::function<void()> cb) {
  return wheel_.add(deadline_ns, std::move(cb));
}

EventLoop::TimerId EventLoop::add_timer_after(std::uint64_t delay_ns,
                                              std::function<void()> cb) {
  return wheel_.add(obs::monotonic_ns() + delay_ns, std::move(cb));
}

EventLoop::TimerId EventLoop::add_periodic(std::uint64_t period_ns,
                                           std::function<void()> cb) {
  auto state = std::make_shared<PeriodicState>();
  state->period_ns = period_ns ? period_ns : 1;
  state->deadline_ns = obs::monotonic_ns() + state->period_ns;
  state->cb = std::move(cb);
  // The public id is the FIRST wheel id; it stays valid across rearms
  // through the periodics_ table.
  state->wheel_id =
      wheel_.add(state->deadline_ns, [this, state] { fire_periodic(state); });
  const TimerId public_id = state->wheel_id;
  periodics_.emplace(public_id, state);
  return public_id;
}

void EventLoop::fire_periodic(const std::shared_ptr<PeriodicState>& state) {
  if (state->cancelled) return;
  state->cb();
  if (state->cancelled) return;  // cb may cancel its own timer
  const std::uint64_t now = obs::monotonic_ns();
  state->deadline_ns += state->period_ns;
  if (state->deadline_ns <= now)  // fell behind: skip ticks, don't burst
    state->deadline_ns = now + state->period_ns;
  state->wheel_id =
      wheel_.add(state->deadline_ns, [this, state] { fire_periodic(state); });
}

bool EventLoop::cancel_timer(TimerId id) {
  const auto it = periodics_.find(id);
  if (it != periodics_.end()) {
    it->second->cancelled = true;
    wheel_.cancel(it->second->wheel_id);
    periodics_.erase(it);
    return true;
  }
  return wheel_.cancel(id);
}

int EventLoop::wait_timeout_ms() const {
  {
    // Pending posted work: don't sleep at all.  (The eventfd would wake
    // us anyway; this avoids even entering the kernel sleep.)
    std::lock_guard<std::mutex> lock(post_mutex_);
    if (!posted_.empty()) return 0;
  }
  const auto next = wheel_.next_deadline_ns();
  if (!next) return 500;  // defensive cap; eventfd covers real wakeups
  const std::uint64_t now = obs::monotonic_ns();
  if (*next <= now) return 0;
  const std::uint64_t delta_ms = (*next - now + 999'999) / 1'000'000;
  return static_cast<int>(std::min<std::uint64_t>(delta_ms, 500));
}

void EventLoop::run() {
#ifdef __linux__
  if (!valid()) return;
  loop_thread_ = std::this_thread::get_id();
  running_.store(true, std::memory_order_release);
  epoll_event events[128];
  while (!stop_requested_.load(std::memory_order_acquire)) {
    const std::uint64_t wait_t0 = obs::monotonic_ns();
    const int n =
        ::epoll_wait(epoll_fd_, events, 128, wait_timeout_ms());
    const std::uint64_t t0 = obs::monotonic_ns();
    m_wait_ns_->add(t0 - wait_t0);
    m_wakeups_->add(1);
    if (n > 0) m_ready_depth_->set(static_cast<double>(n));
    if (stop_requested_.load(std::memory_order_acquire)) break;

    // 1. timers due now (pacing ticks, deadlines, delay releases)
    expired_.clear();
    wheel_.advance(t0, expired_);
    for (auto& cb : expired_) cb();

    // 2. fd readiness — look each fd up at dispatch time so a callback
    // removing a sibling in the same batch makes its event a no-op
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        drain_wake_fd();
        continue;
      }
      const auto it = fds_.find(fd);
      if (it == fds_.end()) continue;
      const std::shared_ptr<FdEntry> entry = it->second;  // keep alive
      entry->cb(events[i].events);
      if (stop_requested_.load(std::memory_order_acquire)) break;
    }

    // 3. cross-thread tasks
    {
      std::lock_guard<std::mutex> lock(post_mutex_);
      running_tasks_.swap(posted_);
    }
    for (auto& task : running_tasks_) task();
    running_tasks_.clear();

    const std::uint64_t busy = obs::monotonic_ns() - t0;
    m_busy_ns_->add(busy);
    m_tick_ns_->record(busy);
  }
  running_.store(false, std::memory_order_release);
#endif
}

}  // namespace fairshare::net
