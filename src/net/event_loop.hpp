// One-thread epoll reactor: fd readiness + timer wheel + cross-thread
// tasks behind a single epoll_wait.
//
// The paper's peers do zero coding work (coefficients never leave the
// owner), so a live peer session is pure paced byte-shoveling — the
// canonical event-loop workload.  One EventLoop owns every session fd of
// a PeerServer shard: readiness callbacks drive the per-session state
// machines, the util::TimerWheel carries the Eq. (2) pacing tick plus all
// per-session deadlines, and an eventfd lets other threads post work or
// stop the loop without signals or polling.
//
// Threading contract:
//  * run() turns the calling thread into the loop thread; every fd/timer
//    method below is loop-thread-only (they touch unlocked state);
//  * post() and stop() are the two thread-safe entry points — both wake a
//    sleeping epoll_wait through the eventfd;
//  * callbacks run on the loop thread and may freely add/modify/remove
//    fds and timers, including their own.
//
// Dispatch robustness: events are delivered by fd lookup at dispatch time,
// so a callback that removes another fd in the same batch simply makes the
// stale event a no-op.  A closed-and-recycled fd inside one batch can at
// worst hand the new registration a spurious readiness event — callbacks
// must (and here always do) treat readiness as a hint, not a guarantee.
//
// Observability (labels loop=<name>): fairshare_loop_tick_ns histogram
// (work per wakeup), fairshare_loop_ready_depth gauge (events per
// epoll_wait), fairshare_loop_fds gauge, fairshare_loop_busy_ns_total /
// fairshare_loop_wait_ns_total counters (their ratio is loop saturation),
// and fairshare_loop_wakeups_total.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "util/timer_wheel.hpp"

namespace fairshare::net {

/// True when the platform provides epoll (compile-time) and an epoll
/// instance can actually be created (runtime) — the `caps` CLI line.
bool epoll_available();

class EventLoop {
 public:
  using FdCallback = std::function<void(std::uint32_t epoll_events)>;
  using TimerId = util::TimerWheel::TimerId;

  /// `name` labels this loop's metric series; `registry` null = global.
  explicit EventLoop(std::string name = "0",
                     obs::MetricsRegistry* registry = nullptr);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// False when the epoll/eventfd instances could not be created; run()
  /// returns immediately in that case.
  bool valid() const { return epoll_fd_ >= 0 && wake_fd_ >= 0; }

  /// Run until stop(): the caller becomes the loop thread.
  void run();
  /// Request exit (thread-safe, idempotent).  run() returns after the
  /// current dispatch batch; pending timers/tasks are dropped unrun.
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// True on the loop thread (valid once run() started).
  bool in_loop_thread() const {
    return std::this_thread::get_id() == loop_thread_;
  }

  // ------------------------------------------------------------ fds
  /// Register `fd` for `events` (EPOLLIN/EPOLLOUT/...; level-triggered).
  /// One callback per fd; re-adding an fd replaces its registration.
  bool add_fd(int fd, std::uint32_t events, FdCallback cb);
  /// Change the interest set of a registered fd.
  bool modify_fd(int fd, std::uint32_t events);
  /// Forget `fd`.  Safe after the fd was closed (EPOLL_CTL_DEL failures
  /// are ignored — the kernel already dropped closed fds).
  void remove_fd(int fd);
  std::size_t fd_count() const { return fds_.size(); }

  // ---------------------------------------------------------- timers
  /// One-shot timer at absolute steady-clock `deadline_ns`
  /// (obs::monotonic_ns() scale).  Loop-thread-only; from elsewhere, wrap
  /// in post().
  TimerId add_timer_at(std::uint64_t deadline_ns, std::function<void()> cb);
  /// One-shot timer `delay_ns` from now.
  TimerId add_timer_after(std::uint64_t delay_ns, std::function<void()> cb);
  /// Repeating timer every `period_ns` (first fire one period from now).
  /// Cancel with the returned id.  Rearms by deadline += period, so the
  /// average rate does not drift with dispatch latency.
  TimerId add_periodic(std::uint64_t period_ns, std::function<void()> cb);
  bool cancel_timer(TimerId id);

  // ----------------------------------------------------------- tasks
  /// Queue `fn` to run on the loop thread (thread-safe; wakes the loop).
  /// Callable before run() — tasks run once the loop starts.
  void post(std::function<void()> fn);

 private:
  struct FdEntry {
    FdCallback cb;
    std::uint32_t events = 0;
  };
  struct PeriodicState;

  void wake();
  void drain_wake_fd();
  void fire_periodic(const std::shared_ptr<PeriodicState>& state);
  int wait_timeout_ms() const;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::thread::id loop_thread_;

  // shared_ptr so a callback replacing or removing its own registration
  // mid-dispatch never frees the closure it is executing from.
  std::unordered_map<int, std::shared_ptr<FdEntry>> fds_;  // loop thread only
  util::TimerWheel wheel_;                // loop thread only
  std::unordered_map<TimerId, std::shared_ptr<PeriodicState>> periodics_;

  mutable std::mutex post_mutex_;
  std::vector<std::function<void()>> posted_;

  // Scratch reused across iterations (no per-tick allocation in steady
  // state).
  std::vector<util::TimerWheel::Callback> expired_;
  std::vector<std::function<void()>> running_tasks_;

  obs::MetricsRegistry* registry_;
  obs::Histogram* m_tick_ns_;
  obs::Gauge* m_ready_depth_;
  obs::Gauge* m_fds_;
  obs::Counter* m_busy_ns_;
  obs::Counter* m_wait_ns_;
  obs::Counter* m_wakeups_;
};

}  // namespace fairshare::net
