// Live workload replay: the same WorkloadTrace the simulator runs, played
// against a real PeerServer over TCP.
//
// replay_live() stands up one paced server holding an encoded file, then
// walks the trace in wall time with ONE worker thread per user — the live
// form of the sim engine's closed-loop TraceDemand.  A worker sleeps until
// its next event's arrival instant (arrival_slot * slot_seconds), then
// performs ceil(bytes / file size) back-to-back full-file downloads via
// net::download_file; events that arrive while earlier ones are still
// transferring simply queue behind them, which is exactly the backlog the
// sim drains at the user's Equation (2) share (the server grants a user's
// whole share to its single open session).  Demand is quantized to whole
// files like sim::replay_sim with quantize_bytes = file size, and the
// resulting per-user goodput/share lands in the same ReplayReport schema —
// sim::replay_agrees() is the comparison.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "coding/params.hpp"
#include "net/peer_server.hpp"
#include "sim/replay.hpp"

namespace fairshare::net {

namespace coding = fairshare::coding;

/// Framed-wire-bytes / payload-bytes factor of downloading one file: the
/// decode needs k coded messages, each framed with kCodedMessageHeaderBytes
/// ahead of message_bytes() of payload, while goodput counts only the
/// original_bytes reconstructed.  The server paces (and its Eq. (2) ledger
/// accrues) framed bytes, so sim capacity divides this factor out.
double wire_overhead_factor(const coding::FileInfo& info);

struct LiveReplayConfig {
  /// Server upload pacing in kbps (the wire rate, as PeerServer meters it).
  double rate_kbps = 4000.0;
  /// Wall seconds one trace slot stands for.
  double slot_seconds = 0.05;
  /// Serving backend; unset = default_net_backend().
  std::optional<NetBackend> backend;
  /// Server re-allocation period.  Replay transfers are short, and a fresh
  /// session waits up to one quantum for its first budget grant — at the
  /// stock 20 ms that wait alone skews single-file events, so replay runs
  /// a finer tick than a production server would.
  int pacing_quantum_ms = 5;
  /// Handshake nonce/session-key stream seed (auth is off for replay; the
  /// seed still names the client rng streams).
  std::uint64_t rng_seed = 1;
  /// Initial Eq. (2) ledger credits (user_id, framed-bytes) — forwarded to
  /// PeerServer::seed_contribution; give sim::replay_sim the same list.
  std::vector<std::pair<std::uint64_t, double>> seed_contributions;
  /// When set, the server and every download report into this registry and
  /// the run publishes sim::publish_replay_metrics there too.
  obs::MetricsRegistry* registry = nullptr;
};

/// Replay `trace` against a live server serving one file of `file_bytes`
/// encoded with `params`.  The trace must be normalized.  Blocks until
/// every transfer completes (or fails: counted in transfers_failed, never
/// retried past download_file's own retry policy).
sim::ReplayReport replay_live(const sim::WorkloadTrace& trace,
                              std::uint64_t file_bytes,
                              const coding::CodingParams& params,
                              const LiveReplayConfig& config);

}  // namespace fairshare::net
