#include "net/transport.hpp"

namespace fairshare::net {

bool Transport::write_frame(std::span<const std::byte> frame) {
  std::byte header[4];
  const auto len = static_cast<std::uint32_t>(frame.size());
  for (int i = 0; i < 4; ++i)
    header[i] = std::byte{static_cast<std::uint8_t>(len >> (8 * i))};
  return write_all(std::span<const std::byte>(header, 4)) && write_all(frame);
}

std::optional<std::vector<std::byte>> Transport::read_frame(
    std::size_t max_len) {
  std::byte header[4];
  if (!read_exact(std::span<std::byte>(header, 4))) return std::nullopt;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(header[i]))
           << (8 * i);
  if (len > max_len) return std::nullopt;
  std::vector<std::byte> frame(len);
  if (!read_exact(frame)) {
    // A timeout between header and body cannot be retried (the header is
    // already consumed); surface it as a hard error.
    clear_timed_out();
    return std::nullopt;
  }
  return frame;
}

bool send_frame(Transport& transport, std::span<const std::byte> frame) {
  return transport.write_frame(frame);
}

std::optional<std::vector<std::byte>> recv_frame(Transport& transport,
                                                 std::size_t max_len) {
  return transport.read_frame(max_len);
}

}  // namespace fairshare::net
