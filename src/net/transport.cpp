#include "net/transport.hpp"

#include <algorithm>
#include <cstring>

namespace fairshare::net {

bool Transport::write_frame(std::span<const std::byte> frame) {
  std::byte header[4];
  const auto len = static_cast<std::uint32_t>(frame.size());
  for (int i = 0; i < 4; ++i)
    header[i] = std::byte{static_cast<std::uint8_t>(len >> (8 * i))};
  return write_all(std::span<const std::byte>(header, 4)) && write_all(frame);
}

std::optional<std::vector<std::byte>> Transport::read_frame(
    std::size_t max_len) {
  std::byte header[4];
  if (!read_exact(std::span<std::byte>(header, 4))) return std::nullopt;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(header[i]))
           << (8 * i);
  if (len > max_len) return std::nullopt;
  std::vector<std::byte> frame(len);
  if (!read_exact(frame)) {
    // A timeout between header and body cannot be retried (the header is
    // already consumed); surface it as a hard error.
    clear_timed_out();
    return std::nullopt;
  }
  return frame;
}

// ------------------------------------------------------ non-blocking path

IoStatus Transport::try_read_bytes(std::byte* out, std::size_t n,
                                   std::size_t& got) {
  // Emulation over the blocking primitives, for transports without real
  // non-blocking IO (test pipes): only start a read when at least one
  // byte is pending, then read the requested span whole.  Partial frames
  // may block briefly; frames are written whole, so in practice they
  // complete within one call.
  got = 0;
  if (!readable(0)) return IoStatus::blocked;
  if (!read_exact(std::span<std::byte>(out, n))) {
    if (timed_out()) return IoStatus::blocked;
    return valid() ? IoStatus::closed : IoStatus::error;
  }
  got = n;
  return IoStatus::ok;
}

IoStatus Transport::try_write_bytes(const std::byte* data, std::size_t n,
                                    std::size_t& put) {
  put = 0;
  if (!write_all(std::span<const std::byte>(data, n)))
    return valid() ? IoStatus::closed : IoStatus::error;
  put = n;
  return IoStatus::ok;
}

TryWrite Transport::try_write_frame(std::span<const std::byte> frame) {
  return try_write_frame_ext(frame, {});
}

TryWrite Transport::try_write_frame_ext(std::span<const std::byte> head,
                                        std::span<const std::byte> ext) {
  // Backpressure: a new frame is accepted only once the previous one has
  // fully drained, so staging stays bounded by one frame and the caller's
  // pacing budget counts each frame exactly once.
  if (want_write()) {
    const IoStatus flushed = try_flush();
    if (flushed == IoStatus::blocked) return {IoStatus::blocked, false};
    if (flushed != IoStatus::ok) return {flushed, false};
  }
  out_buf_.resize(4 + head.size());
  out_off_ = 0;
  const auto len = static_cast<std::uint32_t>(head.size() + ext.size());
  for (int i = 0; i < 4; ++i)
    out_buf_[i] = std::byte{static_cast<std::uint8_t>(len >> (8 * i))};
  if (!head.empty())
    std::memcpy(out_buf_.data() + 4, head.data(), head.size());
  ext_ = ext;
  ext_off_ = 0;
  const IoStatus flushed = try_flush();
  if (flushed == IoStatus::blocked) return {IoStatus::blocked, true};
  return {flushed, flushed == IoStatus::ok};
}

IoStatus Transport::try_write_bytes_vec(const std::span<const std::byte>* bufs,
                                        std::size_t nbufs, std::size_t& put) {
  put = 0;
  for (std::size_t i = 0; i < nbufs; ++i) {
    std::size_t p = 0;
    const IoStatus st = try_write_bytes(bufs[i].data(), bufs[i].size(), p);
    put += p;
    if (st != IoStatus::ok || p < bufs[i].size()) return st;
  }
  return IoStatus::ok;
}

IoStatus Transport::try_flush() {
  while (out_off_ < out_buf_.size() || ext_off_ < ext_.size()) {
    std::span<const std::byte> bufs[2];
    std::size_t nbufs = 0;
    if (out_off_ < out_buf_.size())
      bufs[nbufs++] =
          std::span<const std::byte>(out_buf_).subspan(out_off_);
    if (ext_off_ < ext_.size()) bufs[nbufs++] = ext_.subspan(ext_off_);
    std::size_t put = 0;
    const IoStatus st = try_write_bytes_vec(bufs, nbufs, put);
    // Stream writes fill in order: progress lands on the staged head
    // first, the rest on the referenced extent.
    const std::size_t head_put =
        std::min(put, out_buf_.size() - out_off_);
    out_off_ += head_put;
    ext_off_ += put - head_put;
    if (st != IoStatus::ok) return st;
  }
  out_buf_.clear();
  out_off_ = 0;
  ext_ = {};
  ext_off_ = 0;
  return IoStatus::ok;
}

TryRead Transport::try_read_frame(std::size_t max_len) {
  // Header, then body; both may arrive in fragments across calls.
  while (in_hdr_got_ < 4) {
    std::size_t got = 0;
    const IoStatus st =
        try_read_bytes(in_hdr_ + in_hdr_got_, 4 - in_hdr_got_, got);
    in_hdr_got_ += got;
    if (st != IoStatus::ok) {
      if (st == IoStatus::blocked) return {IoStatus::blocked, {}};
      // EOF cleanly *between* frames is closed; mid-header it is an error.
      if (st == IoStatus::closed)
        return {in_hdr_got_ == 0 ? IoStatus::closed : IoStatus::error, {}};
      return {IoStatus::error, {}};
    }
  }
  if (in_body_.empty() && in_got_ == 0) {
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
      len |= static_cast<std::uint32_t>(
                 std::to_integer<std::uint8_t>(in_hdr_[i]))
             << (8 * i);
    if (len > max_len) return {IoStatus::error, {}};
    in_body_.resize(len);
  }
  while (in_got_ < in_body_.size()) {
    std::size_t got = 0;
    const IoStatus st = try_read_bytes(in_body_.data() + in_got_,
                                       in_body_.size() - in_got_, got);
    in_got_ += got;
    if (st != IoStatus::ok) {
      if (st == IoStatus::blocked) return {IoStatus::blocked, {}};
      return {st == IoStatus::closed ? IoStatus::error : st, {}};  // mid-frame
    }
  }
  TryRead out{IoStatus::ok, std::move(in_body_)};
  in_body_ = {};
  in_hdr_got_ = 0;
  in_got_ = 0;
  return out;
}

bool send_frame(Transport& transport, std::span<const std::byte> frame) {
  return transport.write_frame(frame);
}

std::optional<std::vector<std::byte>> recv_frame(Transport& transport,
                                                 std::size_t max_len) {
  return transport.read_frame(max_len);
}

}  // namespace fairshare::net
