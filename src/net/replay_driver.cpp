#include "net/replay_driver.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <map>
#include <mutex>
#include <thread>

#include "coding/encoder.hpp"
#include "net/download_client.hpp"
#include "p2p/wire.hpp"
#include "sim/rng.hpp"

namespace fairshare::net {

double wire_overhead_factor(const coding::FileInfo& info) {
  assert(info.original_bytes > 0 && info.k > 0);
  const double framed =
      static_cast<double>(info.k) *
      static_cast<double>(p2p::wire::kCodedMessageHeaderBytes +
                          info.params.message_bytes());
  return framed / static_cast<double>(info.original_bytes);
}

namespace {

std::vector<std::byte> blob(std::size_t n, std::uint64_t seed) {
  sim::SplitMix64 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte{static_cast<std::uint8_t>(rng.next())};
  return out;
}

}  // namespace

sim::ReplayReport replay_live(const sim::WorkloadTrace& input,
                              std::uint64_t file_bytes,
                              const coding::CodingParams& params,
                              const LiveReplayConfig& config) {
  assert(input.is_sorted() && "normalize() the trace first");
  assert(file_bytes > 0);
  assert(config.rate_kbps > 0.0 && config.slot_seconds > 0.0);

  const sim::WorkloadTrace trace = input.quantized(file_bytes);
  const std::vector<std::uint64_t> ids = trace.users();

  coding::SecretKey secret{};
  secret[0] = 55;
  const std::vector<std::byte> data =
      blob(file_bytes, config.rng_seed ^ 0xB10Bull);
  coding::FileEncoder encoder(secret, /*file_id=*/42, data, params);
  p2p::MessageStore store;
  for (auto& m : encoder.generate(encoder.k())) store.store(std::move(m));
  const coding::FileInfo info = encoder.info();

  PeerServer::Config server_config;
  server_config.rate_kbps = config.rate_kbps;
  server_config.require_auth = false;
  server_config.peer_id = 1;
  server_config.rng_seed = config.rng_seed;
  server_config.backend = config.backend;
  server_config.max_users = std::max<std::size_t>(ids.size() + 1, 8);
  server_config.pacing_quantum_ms = config.pacing_quantum_ms;
  server_config.registry = config.registry;
  PeerServer server(server_config, std::move(store));
  for (const auto& [user_id, amount] : config.seed_contributions)
    server.seed_contribution(user_id, amount);
  const bool started = server.start();

  sim::ReplayReport report;
  report.mode = "live";
  report.rate_kbps = config.rate_kbps;
  report.slot_seconds = config.slot_seconds;
  report.wire_overhead = wire_overhead_factor(info);
  report.total_bytes = trace.total_bytes();
  report.users.resize(ids.size());

  std::map<std::uint64_t, std::size_t> index_of;
  for (std::size_t u = 0; u < ids.size(); ++u) {
    index_of[ids[u]] = u;
    report.users[u].user_id = ids[u];
    report.users[u].first_seconds = -1.0;
  }

  if (!started) {
    report.transfers_failed = trace.size();
    return report;
  }

  PeerEndpoint endpoint;
  endpoint.port = server.port();
  endpoint.peer_id = server_config.peer_id;
  const std::vector<PeerEndpoint> endpoints = {endpoint};

  // Split the trace into per-user event queues (the trace is time-sorted,
  // so each slice is too) and fill the static per-user columns up front.
  std::vector<std::vector<sim::WorkloadEvent>> queues(ids.size());
  for (const sim::WorkloadEvent& event : trace.events()) {
    const std::size_t u = index_of.at(event.user_id);
    queues[u].push_back(event);
    sim::ReplayUserStats& s = report.users[u];
    ++s.events;
    s.bytes += event.bytes;
    if (s.first_seconds < 0.0)
      s.first_seconds =
          static_cast<double>(event.arrival_slot) * config.slot_seconds;
  }

  std::mutex agg_mutex;
  std::size_t failed_total = 0;

  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed_seconds = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  // One worker per user — the live TraceDemand: sleep to the next arrival,
  // then drain the backlog through one session at a time (a single open
  // session receives the user's whole Eq. (2) share, so the drain rate is
  // the one the sim models; queued events ARE the backlog).
  std::vector<std::thread> workers;
  workers.reserve(ids.size());
  for (std::size_t u = 0; u < ids.size(); ++u) {
    workers.emplace_back([&, u] {
      std::uint64_t transfer = 0;
      for (const sim::WorkloadEvent& event : queues[u]) {
        const auto arrival_tp =
            t0 +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(
                    static_cast<double>(event.arrival_slot) *
                    config.slot_seconds));
        std::this_thread::sleep_until(arrival_tp);
        const std::uint64_t files = event.bytes / file_bytes;
        for (std::uint64_t f = 0; f < files; ++f) {
          DownloadOptions options;
          options.user_id = ids[u];
          options.rng_seed = config.rng_seed + (u << 20) + ++transfer;
          options.registry = config.registry;
          const DownloadReport dl =
              download_file(endpoints, secret, info, options);
          const double now_s = elapsed_seconds();
          std::lock_guard<std::mutex> lock(agg_mutex);
          sim::ReplayUserStats& s = report.users[u];
          if (dl.success) {
            s.delivered_bytes += static_cast<double>(info.original_bytes);
            s.done_seconds = std::max(s.done_seconds, now_s);
          } else {
            ++failed_total;
          }
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  report.seconds = elapsed_seconds();
  server.stop();

  report.slots = static_cast<std::uint64_t>(
      std::ceil(report.seconds / config.slot_seconds));
  report.transfers_failed = failed_total;
  double goodput_sum = 0.0;
  for (sim::ReplayUserStats& s : report.users) {
    if (s.first_seconds < 0.0) s.first_seconds = 0.0;
    const double span = s.done_seconds - s.first_seconds;
    s.goodput_bps = (s.delivered_bytes > 0.0 && span > 0.0)
                        ? s.delivered_bytes * 8.0 / span
                        : 0.0;
    goodput_sum += s.goodput_bps;
  }
  for (sim::ReplayUserStats& s : report.users)
    s.share = goodput_sum > 0.0 ? s.goodput_bps / goodput_sum : 0.0;

  if (config.registry) sim::publish_replay_metrics(report, *config.registry);
  return report;
}

}  // namespace fairshare::net
