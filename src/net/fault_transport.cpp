#include "net/fault_transport.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace fairshare::net {

// ----------------------------------------------------------- FaultInjector

FaultInjector::FaultInjector(FaultPlan plan, obs::MetricsRegistry* registry)
    : plan_(plan), shared_(std::make_shared<Shared>()) {
  shared_->rng = sim::SplitMix64(plan.seed);
  if (registry) {
    const obs::LabelList seed = {{"seed", std::to_string(plan.seed)}};
    shared_->m_refused =
        &registry->counter("fairshare_faults_connections_refused_total", seed);
    shared_->m_reset =
        &registry->counter("fairshare_faults_connections_reset_total", seed);
    shared_->m_dropped =
        &registry->counter("fairshare_faults_frames_dropped_total", seed);
    shared_->m_corrupted =
        &registry->counter("fairshare_faults_frames_corrupted_total", seed);
    shared_->m_duplicated =
        &registry->counter("fairshare_faults_frames_duplicated_total", seed);
    shared_->m_delayed =
        &registry->counter("fairshare_faults_frames_delayed_total", seed);
  }
}

bool FaultInjector::admits_connection() {
  if (!plan_.refuse_connection) return true;
  std::lock_guard<std::mutex> lock(shared_->mutex);
  ++shared_->stats.connections_refused;
  if (shared_->m_refused) shared_->m_refused->add(1);
  return false;
}

std::unique_ptr<Transport> FaultInjector::wrap(
    std::unique_ptr<Transport> inner) {
  return std::make_unique<FaultyTransport>(std::move(inner), plan_, shared_);
}

FaultStats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(shared_->mutex);
  return shared_->stats;
}

// --------------------------------------------------------- FaultyTransport

FaultyTransport::FaultyTransport(std::unique_ptr<Transport> inner,
                                 FaultPlan plan)
    : FaultyTransport(std::move(inner), plan,
                      std::make_shared<FaultInjector::Shared>()) {
  shared_->rng = sim::SplitMix64(plan.seed);
}

FaultyTransport::FaultyTransport(
    std::unique_ptr<Transport> inner, FaultPlan plan,
    std::shared_ptr<FaultInjector::Shared> shared)
    : inner_(std::move(inner)), plan_(plan), shared_(std::move(shared)) {}

FaultyTransport::Faults FaultyTransport::draw_faults() {
  // Always four draws per frame: the schedule is a pure function of the
  // seed and the frame index, not of which rates happen to be non-zero.
  std::lock_guard<std::mutex> lock(shared_->mutex);
  Faults f;
  f.drop = shared_->rng.next_double() < plan_.drop_rate;
  f.corrupt = shared_->rng.next_double() < plan_.corrupt_rate;
  f.duplicate = shared_->rng.next_double() < plan_.duplicate_rate;
  f.delay = shared_->rng.next_double() < plan_.delay_rate;
  if (f.corrupt) f.corrupt_at = shared_->rng.next();
  if (f.drop) {
    ++shared_->stats.frames_dropped;
    if (shared_->m_dropped) shared_->m_dropped->add(1);
  }
  if (f.corrupt) {
    ++shared_->stats.frames_corrupted;
    if (shared_->m_corrupted) shared_->m_corrupted->add(1);
  }
  if (f.duplicate) {
    ++shared_->stats.frames_duplicated;
    if (shared_->m_duplicated) shared_->m_duplicated->add(1);
  }
  if (f.delay) {
    ++shared_->stats.frames_delayed;
    if (shared_->m_delayed) shared_->m_delayed->add(1);
  }
  return f;
}

void FaultyTransport::flip_payload_byte(std::vector<std::byte>& frame,
                                        std::uint64_t draw) {
  if (frame.empty()) return;
  // Aim past the 17-byte coded-message prefix (frame type + file id +
  // message id) so the frame still parses and the MD5 digest check is the
  // layer that must catch the flip.  Short frames get any byte flipped.
  constexpr std::size_t kPrefix = 17;
  const std::size_t lo = frame.size() > kPrefix ? kPrefix : 0;
  const std::size_t idx = lo + draw % (frame.size() - lo);
  frame[idx] ^= std::byte{0x01};
}

bool FaultyTransport::consume_frame_budget() {
  if (reset_) return false;
  if (frames_used_ >= plan_.reset_after_frames) {
    reset_ = true;
    inner_->close();  // the RST analog: both directions die at once
    std::lock_guard<std::mutex> lock(shared_->mutex);
    ++shared_->stats.connections_reset;
    if (shared_->m_reset) shared_->m_reset->add(1);
    return false;
  }
  ++frames_used_;
  return true;
}

bool FaultyTransport::write_all(std::span<const std::byte> data) {
  return !reset_ && inner_->write_all(data);
}

bool FaultyTransport::read_exact(std::span<std::byte> out) {
  return !reset_ && inner_->read_exact(out);
}

bool FaultyTransport::write_frame(std::span<const std::byte> frame) {
  if (!consume_frame_budget()) return false;
  const Faults f = draw_faults();
  if (f.delay)
    std::this_thread::sleep_for(std::chrono::milliseconds(plan_.delay_ms));
  if (f.drop) return true;  // swallowed in transit; sender cannot tell
  if (f.corrupt) {
    std::vector<std::byte> mangled(frame.begin(), frame.end());
    flip_payload_byte(mangled, f.corrupt_at);
    const bool ok = inner_->write_frame(mangled);
    return ok && (!f.duplicate || inner_->write_frame(mangled));
  }
  const bool ok = inner_->write_frame(frame);
  return ok && (!f.duplicate || inner_->write_frame(frame));
}

std::optional<std::vector<std::byte>> FaultyTransport::read_frame(
    std::size_t max_len) {
  if (pending_duplicate_) {
    auto again = std::move(*pending_duplicate_);
    pending_duplicate_.reset();
    return again;
  }
  for (;;) {
    if (!consume_frame_budget()) return std::nullopt;
    auto frame = inner_->read_frame(max_len);
    if (!frame) {
      --frames_used_;  // nothing crossed; give the budget back
      return std::nullopt;
    }
    const Faults f = draw_faults();
    if (f.delay)
      std::this_thread::sleep_for(std::chrono::milliseconds(plan_.delay_ms));
    if (f.drop) continue;  // lost in transit; read the next one
    if (f.corrupt) flip_payload_byte(*frame, f.corrupt_at);
    if (f.duplicate) pending_duplicate_ = *frame;
    return frame;
  }
}

TryWrite FaultyTransport::try_write_frame(std::span<const std::byte> frame) {
  if (reset_) return {IoStatus::closed, false};
  // A duplicate copy still owed to the inner transport must drain before a
  // new frame may be accepted (frames stay ordered on the wire).
  {
    const IoStatus st = try_flush();
    if (st == IoStatus::blocked && dup_out_frame_)
      return {IoStatus::blocked, false};
    if (st == IoStatus::closed || st == IoStatus::error) return {st, false};
  }
  if (!pending_write_faults_) {
    // First touch of this frame: spend the budget and draw its faults;
    // both survive any {blocked,false} retries so the seeded schedule is
    // identical to the blocking path's.
    if (!consume_frame_budget()) return {IoStatus::closed, false};
    pending_write_faults_ = draw_faults();
    if (pending_write_faults_->delay)
      write_release_ = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(plan_.delay_ms);
  }
  if (write_release_) {
    if (std::chrono::steady_clock::now() < *write_release_)
      return {IoStatus::blocked, false};  // retry_after() names the instant
    write_release_.reset();
  }
  const Faults f = *pending_write_faults_;
  const TryWrite result = forward_write(frame, f);
  if (result.accepted) pending_write_faults_.reset();
  return result;
}

TryWrite FaultyTransport::try_write_frame_ext(std::span<const std::byte> head,
                                              std::span<const std::byte> ext) {
  // Rebuilt identically on every {blocked,false} retry, so the frame the
  // drawn faults eventually apply to is the one the caller keeps offering.
  ext_scratch_.clear();
  ext_scratch_.reserve(head.size() + ext.size());
  ext_scratch_.insert(ext_scratch_.end(), head.begin(), head.end());
  ext_scratch_.insert(ext_scratch_.end(), ext.begin(), ext.end());
  return try_write_frame(ext_scratch_);
}

TryWrite FaultyTransport::forward_write(std::span<const std::byte> frame,
                                        const Faults& faults) {
  if (faults.drop) return {IoStatus::ok, true};  // swallowed in transit
  std::vector<std::byte> mangled;
  std::span<const std::byte> payload = frame;
  if (faults.corrupt) {
    mangled.assign(frame.begin(), frame.end());
    flip_payload_byte(mangled, faults.corrupt_at);
    payload = mangled;
  }
  TryWrite r = inner_->try_write_frame(payload);
  if (!r.accepted) return r;
  if (faults.duplicate)
    dup_out_frame_.emplace(payload.begin(), payload.end());
  const IoStatus st = try_flush();  // opportunistically push the duplicate
  return {st, true};
}

IoStatus FaultyTransport::try_flush() {
  if (reset_) return IoStatus::closed;
  const IoStatus st = inner_->try_flush();
  if (st != IoStatus::ok) return st;
  if (dup_out_frame_) {
    const TryWrite r = inner_->try_write_frame(*dup_out_frame_);
    if (r.accepted) dup_out_frame_.reset();
    return r.status;
  }
  return IoStatus::ok;
}

TryRead FaultyTransport::try_read_frame(std::size_t max_len) {
  if (pending_duplicate_) {
    TryRead out{IoStatus::ok, std::move(*pending_duplicate_)};
    pending_duplicate_.reset();
    return out;
  }
  for (;;) {
    if (reset_) return {IoStatus::closed, {}};
    if (delayed_read_frame_) {
      if (std::chrono::steady_clock::now() < *read_release_)
        return {IoStatus::blocked, {}};  // time-gated; see retry_after()
      read_release_.reset();
      const Faults f = *delayed_read_faults_;
      delayed_read_faults_.reset();
      std::vector<std::byte> frame = std::move(*delayed_read_frame_);
      delayed_read_frame_.reset();
      if (f.drop) continue;  // delayed, then lost anyway
      if (f.corrupt) flip_payload_byte(frame, f.corrupt_at);
      if (f.duplicate) pending_duplicate_ = frame;
      return {IoStatus::ok, std::move(frame)};
    }
    TryRead r = inner_->try_read_frame(max_len);
    if (r.status != IoStatus::ok) return {r.status, {}};
    // The frame crossed the wire: now it counts against the reset budget
    // (the blocking path spends the budget up front and refunds on a
    // failed read — same totals, no refund needed here).
    if (!consume_frame_budget()) return {IoStatus::closed, {}};
    const Faults f = draw_faults();
    if (f.delay) {
      read_release_ = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(plan_.delay_ms);
      delayed_read_frame_ = std::move(r.frame);
      delayed_read_faults_ = f;
      return {IoStatus::blocked, {}};
    }
    if (f.drop) continue;  // lost in transit; try the next one
    if (f.corrupt) flip_payload_byte(r.frame, f.corrupt_at);
    if (f.duplicate) pending_duplicate_ = r.frame;
    return {IoStatus::ok, std::move(r.frame)};
  }
}

bool FaultyTransport::want_write() const {
  return !reset_ && (dup_out_frame_.has_value() || inner_->want_write());
}

bool FaultyTransport::want_read() const {
  return pending_duplicate_.has_value() ||
         (!reset_ && inner_->want_read());
}

std::optional<std::chrono::steady_clock::time_point>
FaultyTransport::retry_after() const {
  if (write_release_ && read_release_)
    return std::min(*write_release_, *read_release_);
  if (write_release_) return write_release_;
  if (read_release_) return read_release_;
  return inner_->retry_after();
}

bool FaultyTransport::set_recv_timeout(int timeout_ms) {
  return inner_->set_recv_timeout(timeout_ms);
}

bool FaultyTransport::set_send_timeout(int timeout_ms) {
  return inner_->set_send_timeout(timeout_ms);
}

bool FaultyTransport::timed_out() const {
  return !reset_ && inner_->timed_out();
}

void FaultyTransport::clear_timed_out() { inner_->clear_timed_out(); }

bool FaultyTransport::readable(int timeout_ms) {
  if (pending_duplicate_) return true;
  return !reset_ && inner_->readable(timeout_ms);
}

void FaultyTransport::close() { inner_->close(); }

bool FaultyTransport::valid() const { return !reset_ && inner_->valid(); }

FaultStats FaultyTransport::stats() const {
  std::lock_guard<std::mutex> lock(shared_->mutex);
  return shared_->stats;
}

}  // namespace fairshare::net
