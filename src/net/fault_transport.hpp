// Deterministic fault injection over the net::Transport seam.
//
// FaultyTransport wraps any Transport and perturbs the frame stream per a
// seeded FaultPlan: connection refusal, a hard reset after N frames,
// per-frame drop / delay / duplication, and single-byte corruption.  The
// corruption fault targets the payload region of a frame, so a corrupted
// coded message still parses — it must be caught by the decoder's MD5
// message digests, exercising the paper's on-the-fly authentication
// (Section III-C) exactly where a real packet-mangling adversary would
// strike.
//
// All randomness flows from one SplitMix64 stream seeded by the plan, and
// — crucially for retry/failover testing — a FaultInjector keeps that
// stream (and its statistics) alive *across* reconnects of the same peer,
// so a frame dropped on the first attempt is an independent coin flip on
// the second.  Same seed + same traffic => same fault schedule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "sim/rng.hpp"

namespace fairshare::net {

/// What faults to inject, and when.  Rates are per-frame probabilities
/// drawn from the plan's seed.
struct FaultPlan {
  std::uint64_t seed = 1;
  /// Connection attempts fail outright (FaultInjector::admits_connection).
  bool refuse_connection = false;
  /// Hard reset after this many frames crossed the transport (either
  /// direction, dropped frames included); SIZE_MAX = never.  Counted per
  /// connection, so every reconnect gets a fresh budget.
  std::size_t reset_after_frames = SIZE_MAX;
  double drop_rate = 0.0;       ///< frame silently swallowed
  double duplicate_rate = 0.0;  ///< frame delivered twice
  double corrupt_rate = 0.0;    ///< one payload byte flipped
  double delay_rate = 0.0;      ///< frame delayed by delay_ms
  int delay_ms = 0;             ///< injected per-frame latency
};

/// Cumulative injection counters (for asserting a plan actually fired).
struct FaultStats {
  std::size_t connections_refused = 0;
  std::size_t connections_reset = 0;
  std::size_t frames_dropped = 0;
  std::size_t frames_corrupted = 0;
  std::size_t frames_duplicated = 0;
  std::size_t frames_delayed = 0;
};

/// Per-peer fault state shared by every connection to that peer: one RNG
/// stream + stats, surviving reconnects.  Thread-safe (a server-side
/// wrapper may serve concurrent sessions through one injector).
class FaultInjector {
 public:
  /// With a registry, every injected fault is mirrored into
  /// fairshare_faults_<kind>_total counters labelled seed=<plan.seed>
  /// (the registry totals always equal stats()).  Null = no mirroring:
  /// chaos tests spin up many short-lived injectors and should not spam
  /// the process-wide registry unless they ask to.
  explicit FaultInjector(FaultPlan plan,
                         obs::MetricsRegistry* registry = nullptr);

  const FaultPlan& plan() const { return plan_; }

  /// False (and counted) when the plan refuses connections; callers treat
  /// it like ECONNREFUSED and never dial.
  bool admits_connection();

  /// Wrap one established connection in this injector's fault schedule.
  std::unique_ptr<Transport> wrap(std::unique_ptr<Transport> inner);

  FaultStats stats() const;

  /// Shared mutable state; public only for FaultyTransport.
  struct Shared {
    mutable std::mutex mutex;
    sim::SplitMix64 rng{0};
    FaultStats stats;
    // Registry mirrors of the stats fields, bumped at the same sites;
    // null (the default) = stats only.
    obs::Counter* m_refused = nullptr;
    obs::Counter* m_reset = nullptr;
    obs::Counter* m_dropped = nullptr;
    obs::Counter* m_corrupted = nullptr;
    obs::Counter* m_duplicated = nullptr;
    obs::Counter* m_delayed = nullptr;
  };

 private:
  FaultPlan plan_;
  std::shared_ptr<Shared> shared_;
};

/// A Transport decorator executing a FaultPlan at frame granularity.
/// Byte-level calls pass through untouched; the protocol stack speaks
/// frames, and frames are where faults are observable and countable.
///
/// Both IO disciplines are faulted identically: the blocking family
/// realises a delay fault as a sleep (the legacy client path), while the
/// non-blocking try_* family turns the same delay into a deadline exposed
/// through retry_after() — the reactor arms a timer-wheel entry and the
/// loop thread never sleeps.  Faults for a frame are drawn exactly once,
/// on first touch, so the seeded schedule is identical across retries of
/// a delayed frame and across the two disciplines.
class FaultyTransport final : public Transport {
 public:
  /// Standalone wrapper with its own RNG/stat state (unit tests).  Prefer
  /// FaultInjector::wrap when connections may be re-established.
  FaultyTransport(std::unique_ptr<Transport> inner, FaultPlan plan);
  FaultyTransport(std::unique_ptr<Transport> inner, FaultPlan plan,
                  std::shared_ptr<FaultInjector::Shared> shared);

  bool write_all(std::span<const std::byte> data) override;
  bool read_exact(std::span<std::byte> out) override;
  bool write_frame(std::span<const std::byte> frame) override;
  std::optional<std::vector<std::byte>> read_frame(
      std::size_t max_len) override;

  TryWrite try_write_frame(std::span<const std::byte> frame) override;
  /// Zero-copy callers fault identically to copying callers: the frame is
  /// materialised as head ++ ext (corruption may need to mutate it, and
  /// faults must not touch the caller's shared payload store) and pushed
  /// through try_write_frame — one budget charge, one fault draw.
  TryWrite try_write_frame_ext(std::span<const std::byte> head,
                               std::span<const std::byte> ext) override;
  IoStatus try_flush() override;
  TryRead try_read_frame(std::size_t max_len) override;
  bool want_write() const override;
  bool want_read() const override;
  std::optional<std::chrono::steady_clock::time_point> retry_after()
      const override;

  bool set_recv_timeout(int timeout_ms) override;
  bool set_send_timeout(int timeout_ms) override;
  bool timed_out() const override;
  void clear_timed_out() override;
  bool readable(int timeout_ms) override;
  void close() override;
  bool valid() const override;

  FaultStats stats() const;

 private:
  struct Faults {
    bool drop = false;
    bool corrupt = false;
    bool duplicate = false;
    bool delay = false;
    std::uint64_t corrupt_at = 0;  ///< raw draw for the flip position
  };
  /// Draw this frame's faults (fixed number of draws per frame, so the
  /// schedule depends only on the seed and the frame sequence).
  Faults draw_faults();
  void flip_payload_byte(std::vector<std::byte>& frame, std::uint64_t draw);
  /// Consume one frame of the reset budget; false once the budget is gone
  /// (the connection is torn down and counted on first exhaustion).
  bool consume_frame_budget();
  /// Forward an accepted outbound frame (post-faults) to the inner
  /// transport, duplicating when asked.
  TryWrite forward_write(std::span<const std::byte> frame,
                         const Faults& faults);

  std::unique_ptr<Transport> inner_;
  FaultPlan plan_;
  std::shared_ptr<FaultInjector::Shared> shared_;
  std::size_t frames_used_ = 0;
  bool reset_ = false;
  std::optional<std::vector<std::byte>> pending_duplicate_;

  // Non-blocking machinery.  Outbound: faults drawn on first touch of a
  // frame survive {blocked,false} retries; a delay gates acceptance until
  // write_release_; a drawn duplicate becomes a second copy owed to the
  // inner transport (dup_out_frame_), drained by try_flush.  Inbound: a
  // delayed frame is stashed whole with its drawn faults and released
  // once read_release_ passes.
  std::optional<Faults> pending_write_faults_;
  std::vector<std::byte> ext_scratch_;  ///< head++ext image, capacity reused
  std::optional<std::chrono::steady_clock::time_point> write_release_;
  std::optional<std::vector<std::byte>> dup_out_frame_;
  std::optional<std::chrono::steady_clock::time_point> read_release_;
  std::optional<std::vector<std::byte>> delayed_read_frame_;
  std::optional<Faults> delayed_read_faults_;
};

}  // namespace fairshare::net
