// PeerServer's epoll serving core (NetBackend::epoll).
//
// N net::EventLoop reactors own every session fd; each accepted
// connection becomes a Session state machine (hello -> response ->
// request -> streaming -> done) driven entirely by readiness callbacks
// and timer-wheel entries — no thread ever blocks on a socket:
//
//  * the listener(s) are non-blocking and SO_REUSEPORT-sharded across
//    loops when Config::num_loops > 1;
//  * outbound frames go through the non-blocking Transport seam
//    (try_write_frame_ext's accepted-at-most-once contract keeps pacing
//    byte accounting exactly-once); coded messages are sent zero-copy —
//    21 framing bytes into an arena-recycled head buffer, the payload
//    referenced in the immutable MessageStore and gathered onto the wire
//    by sendmsg — so serving never copies a payload;
//  * the Eq. (2) pacing tick is a periodic timer on loop 0 — the same
//    pacing_tick_locked() the threads backend runs — which then posts a
//    pump to every loop so sessions spend their fresh budgets;
//  * fault-injected delays (FaultyTransport) surface as retry_after()
//    deadlines: the fd leaves the interest set and a timer-wheel entry
//    owns the wakeup, so a delayed frame never busy-spins the loop;
//  * handshake deadlines and solo pacing (unpaced server honouring a
//    client's advertised cap) are plain timer-wheel entries too.
//
// Everything mutable on a session is loop-thread-only except the shared
// pacing state (SessionState, the per-user tables), which stays under
// pacing_mutex_ exactly as in the threads backend.
#include "net/peer_server.hpp"

#ifdef __linux__

#include <sys/epoll.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "crypto/chacha20.hpp"
#include "net/event_loop.hpp"
#include "obs/export.hpp"
#include "obs/signal_dump.hpp"
#include "obs/trace.hpp"
#include "p2p/wire.hpp"

namespace fairshare::net {

struct PeerServer::ReactorState {
  struct PerLoop;

  /// One connection as a non-blocking state machine.  Loop-thread-only.
  struct Session {
    enum class Phase { hello, response, request, streaming, done };
    enum class Staged { none, ctrl, data };

    std::uint64_t salt = 0;
    int fd = -1;
    std::shared_ptr<Transport> transport;
    Phase phase = Phase::hello;
    PerLoop* pl = nullptr;

    // Handshake state (the responder borrows the rng; both live here).
    std::unique_ptr<crypto::ChaCha20> rng;
    std::optional<crypto::AuthResponder> responder;
    std::uint64_t authed_user = 0;
    bool have_authed_user = false;

    // Streaming state.
    std::shared_ptr<SessionState> st;  // shared with pacing (pacing_mutex_)
    std::uint64_t file_id = 0;
    std::size_t next_msg = 0;
    std::size_t msg_count = 0;
    double solo_rate = 0.0;  ///< unpaced client cap (kbps); 0 = none
    bool paced = false;

    // The single in-flight outbound frame not yet accepted by the
    // transport (ctrl = challenge, unbudgeted; data = coded message), as
    // the head ++ ext pair of try_write_frame_ext: head is a small
    // arena-recycled buffer (a whole ctrl frame, or the 21 framing bytes
    // of a coded message) and ext references the payload inside the
    // server's immutable MessageStore — no payload copy is ever made.
    std::vector<std::byte> staged_head;
    std::span<const std::byte> staged_ext;
    Staged staged_kind = Staged::none;

    EventLoop::TimerId handshake_timer = 0;
    EventLoop::TimerId retry_timer = 0;  ///< fault release / solo spacing
    bool solo_wait = false;   ///< inter-frame gap of a solo-paced stream
    bool registered = false;  ///< fd currently in the epoll set
    std::uint32_t interest = 0;
    std::optional<obs::TraceSpan> span;
  };

  struct PerLoop {
    std::unique_ptr<EventLoop> loop;
    Listener listener;
    std::thread thread;
    std::unordered_map<std::uint64_t, std::shared_ptr<Session>> sessions;

    /// Arena of reusable send buffers (loop-thread-only): frame heads are
    /// borrowed per encode and returned once the transport accepts them,
    /// so a steady paced stream allocates nothing per message.
    std::vector<std::vector<std::byte>> send_arena;
    static constexpr std::size_t kArenaCap = 64;

    std::vector<std::byte> arena_get() {
      if (send_arena.empty()) return {};
      auto buf = std::move(send_arena.back());
      send_arena.pop_back();
      buf.clear();
      return buf;
    }
    void arena_put(std::vector<std::byte>&& buf) {
      if (buf.capacity() > 0 && send_arena.size() < kArenaCap)
        send_arena.push_back(std::move(buf));
    }
  };

  /// Frames one pump may send before yielding, so hundreds of sessions
  /// sharing a loop each get timely slices.
  static constexpr int kFramesPerPass = 64;

  explicit ReactorState(PeerServer* server) : srv(server) {}

  PeerServer* srv;
  std::vector<std::unique_ptr<PerLoop>> loops;

  void accept_ready(PerLoop& pl);
  void pump(const std::shared_ptr<Session>& s);
  bool flush_staged(const std::shared_ptr<Session>& s);
  bool pump_read(const std::shared_ptr<Session>& s);
  bool handle_frame(const std::shared_ptr<Session>& s,
                    std::vector<std::byte> frame);
  bool pump_stream(const std::shared_ptr<Session>& s);
  void account_sent(const std::shared_ptr<Session>& s, std::size_t bytes);
  void update_interest(const std::shared_ptr<Session>& s);
  void arm_retry(const std::shared_ptr<Session>& s,
                 std::chrono::steady_clock::time_point release);
  void arm_retry_ns(const std::shared_ptr<Session>& s,
                    std::uint64_t delay_ns);
  void finish(const std::shared_ptr<Session>& s, bool completed);
  void pump_streaming(PerLoop& pl);
};

void PeerServer::ReactorState::accept_ready(PerLoop& pl) {
  for (;;) {
    auto client = pl.listener.accept(/*timeout_ms=*/0);
    if (!client) return;
    if (!srv->running_) return;
    if (srv->active_sessions_.load() >= srv->config_.max_sessions) {
      ++srv->sessions_rejected_;
      srv->m_sessions_rejected_->add(1);
      continue;  // Socket destructor closes the connection
    }
    const std::size_t now_active = ++srv->active_sessions_;
    srv->m_active_sessions_->add(1.0);
    std::size_t peak = srv->peak_sessions_.load();
    while (now_active > peak &&
           !srv->peak_sessions_.compare_exchange_weak(peak, now_active)) {
    }
    srv->m_peak_sessions_->set(
        static_cast<double>(srv->peak_sessions_.load()));

    const std::uint64_t salt = ++srv->session_counter_;
    client->set_nonblocking(true);
    const int fd = client->native_handle();
    std::unique_ptr<Transport> transport =
        std::make_unique<Socket>(std::move(*client));
    if (srv->config_.transport_wrapper)
      transport = srv->config_.transport_wrapper(std::move(transport));

    auto s = std::make_shared<Session>();
    s->salt = salt;
    s->fd = fd;
    s->transport = std::move(transport);
    s->phase = srv->config_.require_auth ? Session::Phase::hello
                                         : Session::Phase::request;
    s->pl = &pl;
    s->span.emplace(&srv->registry_->spans(), "server.session");
    pl.sessions.emplace(salt, s);

    s->handshake_timer = pl.loop->add_timer_after(
        static_cast<std::uint64_t>(srv->config_.handshake_timeout_ms) *
            1'000'000ull,
        [this, s] {
          s->handshake_timer = 0;
          if (s->phase != Session::Phase::streaming &&
              s->phase != Session::Phase::done)
            finish(s, false);
        });
    s->registered = true;
    s->interest = EPOLLIN;
    pl.loop->add_fd(fd, EPOLLIN, [this, s](std::uint32_t) { pump(s); });
    // First pump: the wrapper may already refuse (zero reset budget) or
    // hold buffered input.
    pump(s);
  }
}

void PeerServer::ReactorState::pump(const std::shared_ptr<Session>& s) {
  if (s->phase == Session::Phase::done) return;
  if (!srv->running_) {
    finish(s, false);
    return;
  }
  if (!flush_staged(s)) return;
  if (!pump_read(s)) return;
  if (s->phase == Session::Phase::streaming && !pump_stream(s)) return;
  update_interest(s);
}

bool PeerServer::ReactorState::flush_staged(
    const std::shared_ptr<Session>& s) {
  if (s->transport->want_write()) {
    const IoStatus st = s->transport->try_flush();
    if (st == IoStatus::closed || st == IoStatus::error) {
      finish(s, false);
      return false;
    }
  }
  if (s->staged_kind != Session::Staged::none &&
      !s->transport->want_write()) {
    const TryWrite r =
        s->transport->try_write_frame_ext(s->staged_head, s->staged_ext);
    if (r.status == IoStatus::closed || r.status == IoStatus::error) {
      finish(s, false);
      return false;
    }
    if (r.accepted) {
      const std::size_t bytes = s->staged_head.size() + s->staged_ext.size();
      const bool was_data = s->staged_kind == Session::Staged::data;
      s->pl->arena_put(std::move(s->staged_head));
      s->staged_head.clear();
      s->staged_ext = {};
      s->staged_kind = Session::Staged::none;
      if (was_data) account_sent(s, bytes);
    } else if (const auto release = s->transport->retry_after()) {
      arm_retry(s, *release);
    }
  }
  return true;
}

bool PeerServer::ReactorState::pump_read(const std::shared_ptr<Session>& s) {
  for (int i = 0; i < 32; ++i) {
    TryRead r = s->transport->try_read_frame(PeerServer::kMaxClientFrame);
    if (r.status == IoStatus::blocked) {
      if (const auto release = s->transport->retry_after())
        arm_retry(s, *release);
      return true;
    }
    if (r.status != IoStatus::ok) {
      // EOF or a dead wrapper before the stream finished: the client left.
      finish(s, false);
      return false;
    }
    if (!handle_frame(s, std::move(r.frame))) return false;
  }
  // An inbound flood must not starve the other sessions: yield, requeue.
  auto self = s;
  s->pl->loop->post([this, self] { pump(self); });
  return true;
}

bool PeerServer::ReactorState::handle_frame(
    const std::shared_ptr<Session>& s, std::vector<std::byte> frame) {
  switch (s->phase) {
    case Session::Phase::hello: {
      const auto hello = p2p::wire::decode_auth_hello(frame);
      if (!hello || !srv->identity_) {
        finish(s, false);
        return false;
      }
      const auto user = srv->users_.find(hello->user_id);
      if (user == srv->users_.end()) {
        ++srv->auth_rejections_;
        srv->m_auth_rejections_->add(1);
        finish(s, false);
        return false;
      }
      s->rng = std::make_unique<crypto::ChaCha20>(
          PeerServer::seeded_rng(srv->config_.rng_seed, s->salt));
      s->responder.emplace(srv->config_.peer_id, *srv->identity_,
                           user->second, *s->rng);
      const auto challenge = s->responder->on_hello(*hello);
      s->authed_user = hello->user_id;
      s->have_authed_user = true;
      s->phase = Session::Phase::response;
      auto out = p2p::wire::encode(challenge);
      const TryWrite r = s->transport->try_write_frame_ext(out, {});
      if (r.status == IoStatus::closed || r.status == IoStatus::error) {
        finish(s, false);
        return false;
      }
      if (r.accepted) {
        s->pl->arena_put(std::move(out));
      } else {
        s->staged_head = std::move(out);
        s->staged_ext = {};
        s->staged_kind = Session::Staged::ctrl;
        if (const auto release = s->transport->retry_after())
          arm_retry(s, *release);
      }
      return true;
    }
    case Session::Phase::response: {
      const auto response = p2p::wire::decode_auth_response(frame);
      if (!response || !s->responder->on_response(*response)) {
        ++srv->auth_rejections_;
        srv->m_auth_rejections_->add(1);
        finish(s, false);
        return false;
      }
      s->phase = Session::Phase::request;
      return true;
    }
    case Session::Phase::request: {
      const auto request = p2p::wire::decode_file_request(frame);
      if (!request) {
        finish(s, false);
        return false;
      }
      // Untrusted wire input: a denormal/negative/non-finite cap must not
      // poison the pacing arithmetic (same sanitising as the threads
      // backend).  Sub-1-kbps caps mean "no cap".
      double client_cap = request->max_rate_kbps;
      if (!std::isfinite(client_cap) || client_cap < 1.0) client_cap = 0.0;
      const std::uint64_t user_id =
          s->have_authed_user ? s->authed_user : request->user_id;
      s->paced = srv->config_.rate_kbps > 0.0;
      bool slot_ok = false;
      {
        std::lock_guard<std::mutex> lock(srv->pacing_mutex_);
        const auto slot = srv->user_slot_locked(user_id);
        if (slot) {
          auto st = std::make_shared<SessionState>();
          st->user_id = user_id;
          st->user_slot = *slot;
          st->cap_kbps = client_cap;
          st->streaming = true;
          srv->sessions_.emplace(s->salt, st);
          s->st = std::move(st);
          slot_ok = true;
        }
      }
      if (!slot_ok) {  // ledger full: cannot account for this user
        finish(s, false);
        return false;
      }
      if (s->handshake_timer) {
        s->pl->loop->cancel_timer(s->handshake_timer);
        s->handshake_timer = 0;
      }
      s->phase = Session::Phase::streaming;
      s->file_id = request->file_id;
      s->msg_count = srv->store_.count(request->file_id);
      s->solo_rate = s->paced ? 0.0 : client_cap;
      return true;
    }
    case Session::Phase::streaming: {
      // Transmission "5": the user says stop as soon as it can decode.
      // Anything else inbound is ignored, as on the blocking path.
      if (p2p::wire::decode_stop_transmission(frame)) {
        finish(s, true);
        return false;
      }
      return true;
    }
    case Session::Phase::done:
      return false;
  }
  return false;
}

bool PeerServer::ReactorState::pump_stream(
    const std::shared_ptr<Session>& s) {
  int sent_this_pass = 0;
  while (s->phase == Session::Phase::streaming && srv->running_ &&
         s->staged_kind == Session::Staged::none && !s->solo_wait &&
         s->next_msg < s->msg_count) {
    if (s->transport->want_write()) {
      const IoStatus st = s->transport->try_flush();
      if (st == IoStatus::closed || st == IoStatus::error) {
        finish(s, false);
        return false;
      }
      if (st == IoStatus::blocked) break;  // EPOLLOUT resumes us
    }
    if (s->paced) {
      std::lock_guard<std::mutex> lock(srv->pacing_mutex_);
      // Debt model: any positive budget admits one frame; the overdraft
      // is repaid out of future grants (identical to the threads path).
      if (s->st->budget_bytes <= 0.0) break;  // next pacing tick resumes us
    }
    const coding::EncodedMessage& msg =
        srv->store_.at(s->file_id, s->next_msg);
    // Zero-copy handoff: only the 21 framing bytes are encoded (into an
    // arena-recycled buffer); the payload is referenced in place inside
    // the immutable store, which outlives the session — exactly the
    // lifetime try_write_frame_ext requires.
    std::vector<std::byte> head = s->pl->arena_get();
    const auto hdr = p2p::wire::encode_coded_message_header(msg);
    head.assign(hdr.begin(), hdr.end());
    const std::span<const std::byte> ext(msg.payload);
    const std::size_t bytes = head.size() + ext.size();
    const TryWrite r = s->transport->try_write_frame_ext(head, ext);
    if (r.status == IoStatus::closed || r.status == IoStatus::error) {
      finish(s, false);
      return false;
    }
    if (!r.accepted) {
      s->staged_head = std::move(head);
      s->staged_ext = ext;
      s->staged_kind = Session::Staged::data;
      if (const auto release = s->transport->retry_after())
        arm_retry(s, *release);
      break;
    }
    s->pl->arena_put(std::move(head));
    account_sent(s, bytes);
    if (++sent_this_pass >= kFramesPerPass) {
      auto self = s;
      s->pl->loop->post([this, self] { pump(self); });
      break;
    }
  }
  if (s->phase == Session::Phase::streaming && s->next_msg >= s->msg_count &&
      s->staged_kind == Session::Staged::none &&
      !s->transport->want_write()) {
    finish(s, true);  // whole store streamed and drained
    return false;
  }
  return true;
}

void PeerServer::ReactorState::account_sent(
    const std::shared_ptr<Session>& s, std::size_t bytes) {
  {
    std::lock_guard<std::mutex> lock(srv->pacing_mutex_);
    if (s->paced) {
      s->st->budget_bytes -= static_cast<double>(bytes);
      s->st->quantum_bytes += static_cast<double>(bytes);
    }
    srv->user_bytes_[s->st->user_slot] += bytes;
    srv->m_user_bytes_[s->st->user_slot]->add(bytes);
  }
  ++srv->messages_sent_;
  srv->m_messages_sent_->add(1);
  ++s->next_msg;
  if (s->solo_rate > 0.0) {
    // One frame per cap-derived interval (bounded so stop() stays prompt).
    const double ms = std::min(
        static_cast<double>(bytes) * 8.0 / s->solo_rate, 1000.0);
    s->solo_wait = true;
    arm_retry_ns(s, static_cast<std::uint64_t>(ms * 1e6));
  }
}

void PeerServer::ReactorState::update_interest(
    const std::shared_ptr<Session>& s) {
  if (s->phase == Session::Phase::done) return;
  // A time-gated transport (fault-injected delay) makes fd readiness
  // meaningless; with level-triggered epoll it would busy-spin the loop.
  // Deregister entirely and let the retry timer own the wakeup.
  if (s->transport->retry_after().has_value()) {
    if (s->registered) {
      s->pl->loop->remove_fd(s->fd);
      s->registered = false;
    }
    return;
  }
  std::uint32_t want = EPOLLIN;
  if (s->transport->want_write() ||
      s->staged_kind != Session::Staged::none)
    want |= EPOLLOUT;
  if (!s->registered) {
    s->registered = true;
    s->interest = want;
    auto self = s;
    s->pl->loop->add_fd(s->fd, want,
                        [this, self](std::uint32_t) { pump(self); });
  } else if (want != s->interest) {
    s->interest = want;
    s->pl->loop->modify_fd(s->fd, want);
  }
}

void PeerServer::ReactorState::arm_retry(
    const std::shared_ptr<Session>& s,
    std::chrono::steady_clock::time_point release) {
  const auto delay = release - std::chrono::steady_clock::now();
  const std::int64_t ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(delay).count();
  // Half a millisecond of cushion: firing marginally early would find the
  // transport still gated and re-arm, wasting a wheel trip.
  arm_retry_ns(s, ns > 0 ? static_cast<std::uint64_t>(ns) + 500'000ull : 1);
}

void PeerServer::ReactorState::arm_retry_ns(
    const std::shared_ptr<Session>& s, std::uint64_t delay_ns) {
  if (s->retry_timer) return;  // one release timer at a time
  s->retry_timer = s->pl->loop->add_timer_after(delay_ns, [this, s] {
    s->retry_timer = 0;
    s->solo_wait = false;
    pump(s);
  });
}

void PeerServer::ReactorState::finish(const std::shared_ptr<Session>& s,
                                      bool completed) {
  if (s->phase == Session::Phase::done) return;
  s->phase = Session::Phase::done;
  if (s->handshake_timer) {
    s->pl->loop->cancel_timer(s->handshake_timer);
    s->handshake_timer = 0;
  }
  if (s->retry_timer) {
    s->pl->loop->cancel_timer(s->retry_timer);
    s->retry_timer = 0;
  }
  if (s->registered) {
    s->pl->loop->remove_fd(s->fd);
    s->registered = false;
  }
  if (s->st) {
    std::lock_guard<std::mutex> lock(srv->pacing_mutex_);
    srv->sessions_.erase(s->salt);
  }
  s->pl->arena_put(std::move(s->staged_head));
  s->transport->close();
  s->span.reset();
  if (completed) {
    ++srv->sessions_completed_;
    srv->m_sessions_completed_->add(1);
  }
  --srv->active_sessions_;
  srv->m_active_sessions_->add(-1.0);
  s->pl->sessions.erase(s->salt);
}

void PeerServer::ReactorState::pump_streaming(PerLoop& pl) {
  // Copy first: pump may finish (and erase) sessions.
  std::vector<std::shared_ptr<Session>> live;
  live.reserve(pl.sessions.size());
  for (const auto& [salt, s] : pl.sessions)
    if (s->phase == Session::Phase::streaming) live.push_back(s);
  for (const auto& s : live) pump(s);
}

bool PeerServer::reactor_start() {
  const std::size_t nloops = std::max<std::size_t>(1, config_.num_loops);
  auto rs = std::make_shared<ReactorState>(this);
  std::uint16_t port = config_.port;
  for (std::size_t i = 0; i < nloops; ++i) {
    auto pl = std::make_unique<ReactorState::PerLoop>();
    pl->loop = std::make_unique<EventLoop>(
        std::to_string(config_.peer_id) + "." + std::to_string(i),
        registry_);
    if (!pl->loop->valid()) return false;
    // All shards must carry SO_REUSEPORT; the first bind resolves port 0.
    auto listener = Listener::bind_local(port, /*reuse_port=*/nloops > 1);
    if (!listener) return false;
    pl->listener = std::move(*listener);
    if (i == 0) port = pl->listener.port();
    pl->listener.set_nonblocking(true);
    rs->loops.push_back(std::move(pl));
  }
  port_ = port;
  reactor_ = std::move(rs);
  ReactorState* r = reactor_.get();

  for (auto& plp : r->loops) {
    auto* pl = plp.get();
    pl->loop->post([r, pl] {
      pl->loop->add_fd(pl->listener.native_handle(), EPOLLIN,
                       [r, pl](std::uint32_t) { r->accept_ready(*pl); });
    });
  }

  // Loop 0 carries the shared timers: the Eq. (2) pacing tick (which then
  // pumps every loop so sessions spend their fresh budgets) and the
  // SIGUSR1 dump poll.
  EventLoop* loop0 = r->loops.front()->loop.get();
  if (config_.rate_kbps > 0.0) {
    const auto quantum_ns =
        static_cast<std::uint64_t>(config_.pacing_quantum_ms) * 1'000'000ull;
    loop0->post([this, r, loop0, quantum_ns] {
      loop0->add_periodic(quantum_ns, [this, r] {
        {
          std::lock_guard<std::mutex> lock(pacing_mutex_);
          pacing_tick_locked();
        }
        pacing_cv_.notify_all();  // nobody waits here, but stay symmetric
        for (auto& plp : r->loops) {
          auto* pl = plp.get();
          pl->loop->post([r, pl] { r->pump_streaming(*pl); });
        }
      });
    });
  }
  if (!config_.stats_json_path.empty()) {
    loop0->post([this, loop0] {
      loop0->add_periodic(50'000'000ull, [this] {
        const std::uint64_t gen = obs::sigusr1_generation();
        if (gen != dump_generation_seen_) {
          dump_generation_seen_ = gen;
          obs::dump_json(*registry_, config_.stats_json_path);
        }
      });
    });
  }

  for (auto& plp : r->loops) {
    EventLoop* lp = plp->loop.get();
    plp->thread = std::thread([lp] { lp->run(); });
  }
  serving_threads_ = nloops;
  return true;
}

void PeerServer::reactor_stop() {
  if (!reactor_) return;
  ReactorState* r = reactor_.get();
  for (auto& plp : r->loops) {
    auto* pl = plp.get();
    // Posted tasks run in order: tear every session down, then stop the
    // loop — both on the loop's own thread, so no session state races.
    pl->loop->post([r, pl] {
      std::vector<std::shared_ptr<ReactorState::Session>> doomed;
      doomed.reserve(pl->sessions.size());
      for (const auto& [salt, s] : pl->sessions) doomed.push_back(s);
      for (const auto& s : doomed) r->finish(s, false);
    });
    EventLoop* lp = pl->loop.get();
    lp->post([lp] { lp->stop(); });
  }
  for (auto& plp : r->loops)
    if (plp->thread.joinable()) plp->thread.join();
  for (auto& plp : r->loops) plp->listener.close();
  reactor_.reset();
}

}  // namespace fairshare::net

#else  // !__linux__

namespace fairshare::net {

// No epoll on this platform: start() falls back to the threads backend.
bool PeerServer::reactor_start() { return false; }
void PeerServer::reactor_stop() { reactor_.reset(); }

}  // namespace fairshare::net

#endif
