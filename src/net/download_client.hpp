// The user's download client: opens one authenticated TCP session per
// peer, pulls coded messages from all of them in parallel, feeds a shared
// decoder, and sends stop the instant rank k is reached (Section III-B
// over real sockets).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coding/decoder.hpp"
#include "crypto/rsa.hpp"

namespace fairshare::net {

/// One peer the client may download from.
struct PeerEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint64_t peer_id = 0;
  /// The peer's registered public key (empty modulus => expect no auth).
  crypto::RsaPublicKey identity;
};

struct DownloadReport {
  bool success = false;
  std::vector<std::byte> data;
  std::size_t messages_accepted = 0;
  std::size_t messages_rejected = 0;  ///< bad digest / malformed frames
  std::size_t sessions_failed = 0;    ///< connect or handshake failures
  double seconds = 0.0;
};

struct DownloadOptions {
  std::uint64_t user_id = 0;
  const crypto::RsaKeyPair* user_key = nullptr;  ///< null => no auth
  double max_rate_kbps = 0.0;  ///< advertised per-peer cap (0 = none)
  std::uint64_t rng_seed = 1;  ///< handshake nonce/session-key stream
  /// How often a session blocked on a quiet peer re-checks whether a
  /// sibling already completed the decode (straggler stop latency).
  int recv_timeout_ms = 100;
};

/// Download `info`'s file from `peers` in parallel and decode it with
/// `secret`.  Blocks until the decode completes or every session ends.
DownloadReport download_file(const std::vector<PeerEndpoint>& peers,
                             const coding::SecretKey& secret,
                             const coding::FileInfo& info,
                             const DownloadOptions& options);

}  // namespace fairshare::net
