// The user's download client: opens one authenticated TCP session per
// peer, pulls coded messages from all of them in parallel, feeds a shared
// decoder, and sends stop the instant rank k is reached (Section III-B
// over real sockets).
//
// Failure model: a peer that refuses the connection, dies mid-handshake,
// or resets mid-stream is retried with exponential backoff + deterministic
// jitter (RetryPolicy) up to max_attempts, and each re-established session
// resumes feeding the *shared* decoder — replayed messages fall out as
// non-innovative, so nothing is double-counted.  The download therefore
// succeeds whenever the union of peers that keep answering jointly holds
// >= k innovative messages, no matter which individual sessions flap
// (chaos_test.cpp proves this under seeded fault schedules).
//
// Counter semantics — the failure counters PARTITION failure events:
//   * a failure event is a connection attempt that errors while the decode
//     is still incomplete (an error seen after completion is shutdown
//     noise, not a failure);
//   * every failure event is counted in exactly one of sessions_retried
//     (another attempt to that peer followed) or sessions_failed (it was
//     the peer's last word: the retry policy was exhausted, the peer
//     failed authentication permanently, or the download completed while
//     the peer was backing off);
//   * hence sessions_retried + sessions_failed == total failed attempts,
//     and sessions_failed <= peers.size() (at most one terminal failure
//     per peer).  chaos_test asserts this invariant.
//   * frames_corrupt counts frames whose *content* failed verification
//     (unparseable wire bytes or an MD5 digest mismatch); it is a subset
//     of messages_rejected, which additionally counts wrong-file and
//     wrong-size messages.  Corrupt frames never reach the solver.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "coding/decoder.hpp"
#include "crypto/rsa.hpp"
#include "net/retry.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"

namespace fairshare::net {

/// One peer the client may download from.
struct PeerEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint64_t peer_id = 0;
  /// The peer's registered public key (empty modulus => expect no auth).
  crypto::RsaPublicKey identity;

  /// Two endpoints are the same peer when they dial the same address as
  /// the same identity — discovery can surface one server through several
  /// paths (owner record + successor replicas + static config), and a
  /// duplicate would open two sessions against one pacing slot.
  bool operator==(const PeerEndpoint& other) const {
    return host == other.host && port == other.port &&
           peer_id == other.peer_id && identity.n == other.identity.n &&
           identity.e == other.identity.e;
  }
};

/// Hash over the addressable fields (identity is excluded: equal
/// endpoints hash equal, and an address collision just probes).
struct PeerEndpointHash {
  std::size_t operator()(const PeerEndpoint& p) const {
    std::size_t h = std::hash<std::string>{}(p.host);
    h ^= std::hash<std::uint64_t>{}(p.peer_id) + 0x9e3779b97f4a7c15ull +
         (h << 6) + (h >> 2);
    h ^= std::hash<std::uint16_t>{}(p.port) + 0x9e3779b97f4a7c15ull +
         (h << 6) + (h >> 2);
    return h;
  }
};

/// `peers` with duplicate endpoints removed, first occurrence kept (order
/// is meaningful: callers put DHT-resolved providers before static
/// fallbacks).
std::vector<PeerEndpoint> dedup_endpoints(std::vector<PeerEndpoint> peers);

/// Per-peer slice of a DownloadReport.
struct PeerDownloadStats {
  std::uint64_t peer_id = 0;
  std::size_t attempts = 0;          ///< connections tried (successes too)
  std::size_t sessions_retried = 0;  ///< failed attempts that were retried
  bool gave_up = false;              ///< final attempt ended in an error
  std::size_t messages_accepted = 0;  ///< innovative messages via this peer
  std::size_t messages_redundant = 0;  ///< valid but non-innovative
  std::size_t messages_rejected = 0;
  std::size_t frames_corrupt = 0;
  std::uint64_t bytes_received = 0;  ///< wire payload bytes from this peer
};

struct DownloadReport {
  bool success = false;
  std::vector<std::byte> data;
  std::size_t messages_accepted = 0;
  std::size_t messages_rejected = 0;  ///< bad digest / malformed / mismatch
  std::size_t frames_corrupt = 0;     ///< unparseable or digest-rejected
  std::size_t sessions_failed = 0;    ///< peers whose last attempt failed
  std::size_t sessions_retried = 0;   ///< failed attempts that were retried
  std::uint64_t bytes_received = 0;   ///< wire payload bytes, all peers
  double seconds = 0.0;
  std::vector<PeerDownloadStats> per_peer;  ///< one entry per endpoint
};

struct DownloadOptions {
  std::uint64_t user_id = 0;
  const crypto::RsaKeyPair* user_key = nullptr;  ///< null => no auth
  double max_rate_kbps = 0.0;  ///< advertised per-peer cap (0 = none)
  std::uint64_t rng_seed = 1;  ///< handshake nonce/session-key stream
  /// How often a session blocked on a quiet peer re-checks whether a
  /// sibling already completed the decode (straggler stop latency).
  int recv_timeout_ms = 100;
  /// Per-peer reconnect policy; backoff jitter derives from rng_seed.
  RetryPolicy retry;
  /// How connections are opened; null => TCP via Socket::connect_to.
  /// Called once per attempt; return nullptr for a refused connection.
  /// Tests inject FaultyTransport wrappers here (fault_transport.hpp).
  std::function<std::unique_ptr<Transport>(const PeerEndpoint&)>
      transport_factory;
  /// Registry the download reports into (per-peer frame/byte/retry
  /// counters labelled user=<user_id>, peer=<peer_id>, decoder rank/
  /// elimination instruments, and client.download/client.session spans);
  /// null = the process-wide obs global registry.  The registry carries
  /// exactly the numbers the returned DownloadReport does — incremented
  /// at the same sites — so exporters and the report never disagree.
  obs::MetricsRegistry* registry = nullptr;
};

/// Download `info`'s file from `peers` in parallel and decode it with
/// `secret`.  Blocks until the decode completes or every session ends.
DownloadReport download_file(const std::vector<PeerEndpoint>& peers,
                             const coding::SecretKey& secret,
                             const coding::FileInfo& info,
                             const DownloadOptions& options);

}  // namespace fairshare::net
