// Retry/backoff policy for download sessions.
//
// Pure arithmetic: given the index of the attempt that just failed and a
// seed, delay_ms returns how long to back off before the next attempt —
// exponential growth from base_ms, capped at max_ms, with deterministic
// "equal jitter" (uniform over the upper half of the envelope) so a swarm
// of retrying sessions de-synchronises without losing reproducibility.
// Callers do the actual waiting (download_file waits on a condition
// variable so a completed decode cuts every backoff short); tests drive
// the function with a fake clock and never sleep.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/rng.hpp"

namespace fairshare::net {

struct RetryPolicy {
  /// Total connection attempts per peer (first try included); >= 1.
  int max_attempts = 3;
  /// Backoff envelope after the first failed attempt.
  int base_ms = 20;
  /// Envelope cap; delays never exceed this.
  int max_ms = 2000;

  /// Backoff before attempt `failed_attempt + 1`, where `failed_attempt`
  /// is 1-based.  Deterministic in (policy, failed_attempt, seed); lies in
  /// [envelope/2, envelope] with envelope = min(max_ms, base_ms *
  /// 2^(failed_attempt-1)).
  int delay_ms(int failed_attempt, std::uint64_t seed) const {
    if (failed_attempt < 1 || base_ms <= 0) return 0;
    std::int64_t envelope = base_ms;
    for (int i = 1; i < failed_attempt && envelope < max_ms; ++i)
      envelope *= 2;
    envelope = std::min<std::int64_t>(envelope, max_ms);
    const std::int64_t half = envelope / 2;
    sim::SplitMix64 rng(seed ^ (0x9E3779B97F4A7C15ull *
                                static_cast<std::uint64_t>(failed_attempt)));
    return static_cast<int>(
        half + static_cast<std::int64_t>(rng.next_below(
                   static_cast<std::uint64_t>(envelope - half + 1))));
  }
};

}  // namespace fairshare::net
