// A peer as a real TCP server.
//
// Serves its verbatim message store over the wire protocol, along the
// Figure 4(b) timeline: (1) mutual challenge-response authentication,
// (2/3) the user's file request, (4) a paced stream of stored coded
// messages, (5) stop.  Peers still never touch coefficients or do coding
// work — they read frames out of their store and pace them to the
// configured upload rate.
//
// Sessions run concurrently: the accept loop hands each connection to a
// util::ThreadPool worker (bounded by Config::max_sessions), and a pacing
// scheduler re-divides rate_kbps across the active sessions every quantum
// through a pluggable alloc::AllocationPolicy — by default the paper's
// Equation (2) contribution-proportional rule, keyed by authenticated
// user id and fed by the bytes each user was actually served.  The live
// server therefore reproduces the allocation dynamics the simulator
// models, instead of serializing downloads one at a time.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "alloc/synchronized_policy.hpp"
#include "crypto/auth.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "p2p/store.hpp"
#include "util/thread_pool.hpp"

namespace fairshare::net {

class PeerServer {
 public:
  struct Config {
    std::uint16_t port = 0;   ///< 0 = pick a free port
    double rate_kbps = 0.0;   ///< upload capacity mu_i; 0 = unpaced
    bool require_auth = true;
    std::uint64_t peer_id = 0;
    std::uint64_t rng_seed = 1;  ///< nonce/session-key stream seed
    std::size_t max_sessions = 32;  ///< concurrent sessions; extras dropped
    std::size_t max_users = 64;     ///< distinct users the ledger can track
    int pacing_quantum_ms = 20;     ///< scheduler re-allocation period
    int recv_timeout_ms = 100;      ///< session recv poll (shutdown latency)
    int handshake_timeout_ms = 5000;  ///< auth + request must finish by then
    /// Accept-path hook: every accepted connection's Transport is passed
    /// through this before the session runs, so chaos tests can inject
    /// server-side faults (e.g. a FaultInjector::wrap closure) without the
    /// server knowing.  Null = serve the raw socket.  Must be thread-safe:
    /// called from the accept loop while sessions run concurrently.
    std::function<std::unique_ptr<Transport>(std::unique_ptr<Transport>)>
        transport_wrapper;
    /// Registry this server reports into (sessions, per-user bytes, pacing
    /// latency, spans); null = the process-wide obs global registry.
    /// Series are labelled peer=<peer_id>, so several servers can share
    /// one registry (give them distinct peer_ids, as a real swarm would).
    obs::MetricsRegistry* registry = nullptr;
    /// Non-empty: write the registry as JSON here (atomic tmp+rename) when
    /// the process receives SIGUSR1 and again when the server stops, so a
    /// live peer and a finished bench emit the same artifact.  Inspect
    /// with `fairshare_cli stats <path> [--pid <pid>]`.
    std::string stats_json_path;
  };

  /// Last-allocation view of one user, for tests and dashboards.
  struct AllocationShare {
    std::uint64_t user_id = 0;
    double rate_kbps = 0.0;         ///< share granted at the last quantum
    std::uint64_t bytes_sent = 0;   ///< cumulative payload bytes served
    std::size_t active_sessions = 0;
  };

  /// The server takes its store and (when authenticating) its RSA identity
  /// by value; register authorized users before start().
  PeerServer(Config config, p2p::MessageStore store,
             std::optional<crypto::RsaKeyPair> identity = std::nullopt);
  ~PeerServer();

  PeerServer(const PeerServer&) = delete;
  PeerServer& operator=(const PeerServer&) = delete;

  /// Authorize a user's public key (Figure 4(b) assumes peers know the
  /// keys of the users they serve).  Call before start().
  void register_user(std::uint64_t user_id, crypto::RsaPublicKey key);

  /// Replace the allocation policy (default: ProportionalContributionPolicy
  /// over Config::max_users slots).  The policy's vectors must be sized
  /// Config::max_users.  Call before start().
  void set_policy(std::unique_ptr<alloc::AllocationPolicy> policy);

  /// Credit `amount` to a user's contribution ledger S (Equation (2)'s
  /// cumulative term) — e.g. replaying contributions recorded elsewhere.
  void seed_contribution(std::uint64_t user_id, double amount);

  /// Bind and spawn the accept loop + pacing scheduler.  False if the port
  /// cannot be bound.
  bool start();
  /// Stop accepting, wake paced sessions, join every in-flight session.
  void stop();

  std::uint16_t port() const { return port_; }
  std::size_t sessions_completed() const { return sessions_completed_; }
  std::size_t auth_rejections() const { return auth_rejections_; }
  std::size_t messages_sent() const { return messages_sent_; }
  /// Sessions currently being handled (accepted, not yet finished).
  std::size_t active_sessions() const { return active_sessions_; }
  /// High-water mark of active_sessions() since start().
  std::size_t peak_sessions() const { return peak_sessions_; }
  /// Connections dropped because max_sessions were already in flight.
  std::size_t sessions_rejected() const { return sessions_rejected_; }
  /// Cumulative payload bytes streamed to one user (0 if never seen).
  std::uint64_t user_bytes_sent(std::uint64_t user_id) const;
  /// Per-user allocation state: a coherent point-in-time copy taken under
  /// ONE acquisition of the pacing lock, so rates, byte counts, and
  /// session counts in the result all belong to the same instant (bytes
  /// are monotone across successive snapshots; sessions sum to at most the
  /// streaming sessions then active).  O(users + sessions).
  std::vector<AllocationShare> allocation_snapshot() const;
  /// The registry this server reports into (Config::registry or global).
  obs::MetricsRegistry& registry() const { return *registry_; }

 private:
  struct SessionState {
    std::uint64_t user_id = 0;
    std::size_t user_slot = 0;
    double cap_kbps = 0.0;       ///< client-advertised max_rate_kbps
    double budget_bytes = 0.0;   ///< token bucket filled by the scheduler
    double quantum_bytes = 0.0;  ///< sent since the last tick (feedback)
    bool streaming = false;      ///< counts as "requesting" in Eq. (2)
  };

  void accept_loop();
  void pacing_loop();
  void handle_session(Transport& client, std::uint64_t salt);
  /// recv_frame that retries clean timeouts until `deadline` or shutdown.
  std::optional<std::vector<std::byte>> recv_frame_by(
      Transport& client, std::chrono::steady_clock::time_point deadline);
  /// Slot index for a user id, assigning one if unseen; nullopt when all
  /// Config::max_users slots are taken.  Requires pacing_mutex_.
  std::optional<std::size_t> user_slot_locked(std::uint64_t user_id);

  Config config_;
  p2p::MessageStore store_;
  std::optional<crypto::RsaKeyPair> identity_;
  std::map<std::uint64_t, crypto::RsaPublicKey> users_;
  Listener listener_;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::thread pacing_thread_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> session_counter_{0};  // the one salt source

  // Pacing state: one mutex guards the session registry, every
  // SessionState, and the per-user tables below.
  mutable std::mutex pacing_mutex_;
  std::condition_variable pacing_cv_;
  std::unordered_map<std::uint64_t, std::shared_ptr<SessionState>> sessions_;
  std::map<std::uint64_t, std::size_t> user_slots_;
  std::vector<std::uint64_t> slot_users_;
  std::vector<std::uint64_t> user_bytes_;
  std::vector<double> user_rate_kbps_;
  std::vector<double> declared_;  // zeros; live peers declare nothing
  std::unique_ptr<alloc::SynchronizedPolicy> policy_;

  std::atomic<std::size_t> sessions_completed_{0};
  std::atomic<std::size_t> auth_rejections_{0};
  std::atomic<std::size_t> messages_sent_{0};
  std::atomic<std::size_t> active_sessions_{0};
  std::atomic<std::size_t> peak_sessions_{0};
  std::atomic<std::size_t> sessions_rejected_{0};

  // Registry mirrors of the counters above plus pacing instruments.  The
  // accessor methods stay the tests' source of truth; the registry carries
  // the same numbers so exporters see them (instrument pointers resolved
  // once in the constructor / at slot assignment, never per event).
  obs::MetricsRegistry* registry_;  // Config::registry or the global
  obs::Counter* m_sessions_completed_;
  obs::Counter* m_sessions_rejected_;
  obs::Counter* m_auth_rejections_;
  obs::Counter* m_messages_sent_;
  obs::Gauge* m_active_sessions_;
  obs::Gauge* m_peak_sessions_;
  obs::Histogram* m_quantum_ns_;
  std::vector<obs::Counter*> m_user_bytes_;    // by slot; pacing_mutex_
  std::vector<obs::Gauge*> m_user_rate_;       // by slot; pacing_mutex_
  std::uint64_t dump_generation_seen_ = 0;     // accept loop only
};

}  // namespace fairshare::net
