// A peer as a real TCP server.
//
// Serves its verbatim message store over the wire protocol, exactly along
// the Figure 4(b) timeline: (1) mutual challenge-response authentication,
// (2/3) the user's file request, (4) a paced stream of stored coded
// messages, (5) stop.  Peers still never touch coefficients or do coding
// work — they read frames out of their store and pace them to the
// configured upload rate.
//
// Sessions are handled one at a time per server (the accept loop blocks on
// the active session); a swarm of n peers therefore serves n concurrent
// sessions, one each — which is exactly the paper's download pattern.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <thread>

#include "crypto/auth.hpp"
#include "net/socket.hpp"
#include "p2p/store.hpp"

namespace fairshare::net {

class PeerServer {
 public:
  struct Config {
    std::uint16_t port = 0;   ///< 0 = pick a free port
    double rate_kbps = 0.0;   ///< upload pacing; 0 = unpaced
    bool require_auth = true;
    std::uint64_t peer_id = 0;
    std::uint64_t rng_seed = 1;  ///< nonce/session-key stream seed
  };

  /// The server takes its store and (when authenticating) its RSA identity
  /// by value; register authorized users before start().
  PeerServer(Config config, p2p::MessageStore store,
             std::optional<crypto::RsaKeyPair> identity = std::nullopt);
  ~PeerServer();

  PeerServer(const PeerServer&) = delete;
  PeerServer& operator=(const PeerServer&) = delete;

  /// Authorize a user's public key (Figure 4(b) assumes peers know the
  /// keys of the users they serve).
  void register_user(std::uint64_t user_id, crypto::RsaPublicKey key);

  /// Bind and spawn the accept loop.  False if the port cannot be bound.
  bool start();
  /// Stop accepting, close, join.
  void stop();

  std::uint16_t port() const { return port_; }
  std::size_t sessions_completed() const { return sessions_completed_; }
  std::size_t auth_rejections() const { return auth_rejections_; }
  std::size_t messages_sent() const { return messages_sent_; }

 private:
  void accept_loop();
  void handle_session(Socket client);

  Config config_;
  p2p::MessageStore store_;
  std::optional<crypto::RsaKeyPair> identity_;
  std::map<std::uint64_t, crypto::RsaPublicKey> users_;
  Listener listener_;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::size_t> sessions_completed_{0};
  std::atomic<std::size_t> auth_rejections_{0};
  std::atomic<std::size_t> messages_sent_{0};
};

}  // namespace fairshare::net
