// A peer as a real TCP server.
//
// Serves its verbatim message store over the wire protocol, along the
// Figure 4(b) timeline: (1) mutual challenge-response authentication,
// (2/3) the user's file request, (4) a paced stream of stored coded
// messages, (5) stop.  Peers still never touch coefficients or do coding
// work — they read frames out of their store and pace them to the
// configured upload rate.
//
// Sessions run concurrently under one of two serving backends:
//
//  * NetBackend::epoll (the default where available) — an event-driven
//    core: N net::EventLoop reactors (Config::num_loops, SO_REUSEPORT-
//    sharded listeners) own every session fd; each session is a
//    non-blocking state machine (hello -> response -> request ->
//    streaming -> done) driven by readiness callbacks, and the Eq. (2)
//    re-allocation runs as a periodic entry on loop 0's timer wheel.
//    Serving threads are O(loops), not O(sessions), so max_sessions can
//    be raised into the hundreds without a thread per connection.
//  * NetBackend::threads — the original blocking path: the accept loop
//    hands each connection to a util::ThreadPool worker and a pacing
//    thread re-divides rate_kbps every quantum.  Kept as the portable
//    fallback and for A/B runs (FAIRSHARE_NET_BACKEND=threads).
//
// Both backends drive the same pluggable alloc::AllocationPolicy — by
// default the paper's Equation (2) contribution-proportional rule, keyed
// by authenticated user id and fed by the bytes each user was actually
// served — through one shared pacing tick, so the live server reproduces
// the allocation dynamics the simulator models under either backend.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "alloc/synchronized_policy.hpp"
#include "crypto/auth.hpp"
#include "net/discovery.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "p2p/store.hpp"
#include "util/thread_pool.hpp"

namespace fairshare::net {

/// Which serving core a PeerServer runs.
enum class NetBackend {
  threads,  ///< blocking IO, one ThreadPool worker per session
  epoll,    ///< non-blocking reactor(s); threads are O(loops)
};

const char* to_string(NetBackend backend);

/// The backend a server uses when Config::backend is unset: the
/// FAIRSHARE_NET_BACKEND environment variable ("threads"/"epoll") wins,
/// then the compile-time FAIRSHARE_NET_BACKEND_THREADS pin (cmake
/// -DFAIRSHARE_NET_BACKEND=threads), then epoll wherever it is
/// available, else threads.
NetBackend default_net_backend();

class PeerServer {
 public:
  struct Config {
    std::uint16_t port = 0;   ///< 0 = pick a free port
    double rate_kbps = 0.0;   ///< upload capacity mu_i; 0 = unpaced
    bool require_auth = true;
    std::uint64_t peer_id = 0;
    std::uint64_t rng_seed = 1;  ///< nonce/session-key stream seed
    /// Serving core; unset = default_net_backend().  A request for epoll
    /// where the platform has none falls back to threads.
    std::optional<NetBackend> backend;
    /// Event loops (and SO_REUSEPORT listener shards) for the epoll
    /// backend; ignored by the threads backend.
    std::size_t num_loops = 1;
    /// Concurrent sessions; extras are dropped at accept.  The epoll
    /// backend serves this many from O(num_loops) threads; the threads
    /// backend clamps its effective bound to kThreadsSessionCap so the
    /// pool stays sane.
    std::size_t max_sessions = 1024;
    std::size_t max_users = 64;     ///< distinct users the ledger can track
    int pacing_quantum_ms = 20;     ///< scheduler re-allocation period
    int recv_timeout_ms = 100;      ///< session recv poll (shutdown latency)
    int handshake_timeout_ms = 5000;  ///< auth + request must finish by then
    /// Accept-path hook: every accepted connection's Transport is passed
    /// through this before the session runs, so chaos tests can inject
    /// server-side faults (e.g. a FaultInjector::wrap closure) without the
    /// server knowing.  Null = serve the raw socket.  Must be thread-safe:
    /// called from the accept loop while sessions run concurrently.
    std::function<std::unique_ptr<Transport>(std::unique_ptr<Transport>)>
        transport_wrapper;
    /// Registry this server reports into (sessions, per-user bytes, pacing
    /// latency, spans); null = the process-wide obs global registry.
    /// Series are labelled peer=<peer_id>, so several servers can share
    /// one registry (give them distinct peer_ids, as a real swarm would).
    obs::MetricsRegistry* registry = nullptr;
    /// Discovery/federation hook (normally a disco::DiscoveryNode).  When
    /// set, start() announces every stored file id to it, and each pacing
    /// tick publishes this server's per-user contribution totals and folds
    /// gossiped remote contributions into the Eq. (2) ledger — so a user
    /// who contributed through ANOTHER server of the federation earns
    /// share here too.  Remote totals ride the pacing tick, so federation
    /// requires rate_kbps > 0 (an unpaced server never ticks).
    std::shared_ptr<DiscoveryHook> discovery;
    /// Address announced to discovery as this server's serving endpoint
    /// (the listen socket binds loopback; a real deployment would put the
    /// routable name here).
    std::string advertise_host = "127.0.0.1";
    /// Non-empty: write the registry as JSON here (atomic tmp+rename) when
    /// the process receives SIGUSR1 and again when the server stops, so a
    /// live peer and a finished bench emit the same artifact.  Inspect
    /// with `fairshare_cli stats <path> [--pid <pid>]`.
    std::string stats_json_path;
  };

  /// Last-allocation view of one user, for tests and dashboards.
  struct AllocationShare {
    std::uint64_t user_id = 0;
    double rate_kbps = 0.0;         ///< share granted at the last quantum
    std::uint64_t bytes_sent = 0;   ///< cumulative payload bytes served
    std::size_t active_sessions = 0;
  };

  /// The server takes its store and (when authenticating) its RSA identity
  /// by value; register authorized users before start().
  PeerServer(Config config, p2p::MessageStore store,
             std::optional<crypto::RsaKeyPair> identity = std::nullopt);
  ~PeerServer();

  PeerServer(const PeerServer&) = delete;
  PeerServer& operator=(const PeerServer&) = delete;

  /// Authorize a user's public key (Figure 4(b) assumes peers know the
  /// keys of the users they serve).  Call before start().
  void register_user(std::uint64_t user_id, crypto::RsaPublicKey key);

  /// Replace the allocation policy (default: ProportionalContributionPolicy
  /// over Config::max_users slots).  The policy's vectors must be sized
  /// Config::max_users.  Call before start().
  void set_policy(std::unique_ptr<alloc::AllocationPolicy> policy);

  /// Credit `amount` to a user's contribution ledger S (Equation (2)'s
  /// cumulative term) — e.g. replaying contributions recorded elsewhere.
  void seed_contribution(std::uint64_t user_id, double amount);

  /// Bind and spawn the accept loop + pacing scheduler.  False if the port
  /// cannot be bound.
  bool start();
  /// Stop accepting, wake paced sessions, join every in-flight session.
  void stop();

  std::uint16_t port() const { return port_; }
  /// The backend actually serving (resolved at start(); before start(),
  /// what would resolve now).
  NetBackend backend() const;
  /// Threads dedicated to serving: accept + pacing + pool workers under
  /// the threads backend, num_loops under epoll — the scaling claim
  /// "threads are O(loops), not O(sessions)" made measurable.
  std::size_t serving_threads() const { return serving_threads_; }
  std::size_t sessions_completed() const { return sessions_completed_; }
  std::size_t auth_rejections() const { return auth_rejections_; }
  std::size_t messages_sent() const { return messages_sent_; }
  /// Sessions currently being handled (accepted, not yet finished).
  std::size_t active_sessions() const { return active_sessions_; }
  /// High-water mark of active_sessions() since start().
  std::size_t peak_sessions() const { return peak_sessions_; }
  /// Connections dropped because max_sessions were already in flight.
  std::size_t sessions_rejected() const { return sessions_rejected_; }
  /// Cumulative payload bytes streamed to one user (0 if never seen).
  std::uint64_t user_bytes_sent(std::uint64_t user_id) const;
  /// Per-user allocation state: a coherent point-in-time copy taken under
  /// ONE acquisition of the pacing lock, so rates, byte counts, and
  /// session counts in the result all belong to the same instant (bytes
  /// are monotone across successive snapshots; sessions sum to at most the
  /// streaming sessions then active).  O(users + sessions).
  std::vector<AllocationShare> allocation_snapshot() const;
  /// The registry this server reports into (Config::registry or global).
  obs::MetricsRegistry& registry() const { return *registry_; }

 private:
  struct SessionState {
    std::uint64_t user_id = 0;
    std::size_t user_slot = 0;
    double cap_kbps = 0.0;       ///< client-advertised max_rate_kbps
    double budget_bytes = 0.0;   ///< token bucket filled by the scheduler
    double quantum_bytes = 0.0;  ///< sent since the last tick (feedback)
    bool streaming = false;      ///< counts as "requesting" in Eq. (2)
  };

  /// The epoll backend's world (loops, listeners, reactor sessions);
  /// defined in peer_server_epoll.cpp.  Nested so it reaches the pacing
  /// state and instruments directly.
  struct ReactorState;

  /// Threads-backend session bound: a pool this size plus one is spawned
  /// whole at start(), so the configured 1024-session default must not
  /// translate into a thousand idle threads.
  static constexpr std::size_t kThreadsSessionCap = 256;
  /// Largest frame accepted from a client (handshake frames and requests
  /// are small; coded messages flow the other way).
  static constexpr std::size_t kMaxClientFrame = 1 << 16;

  void accept_loop();
  void pacing_loop();
  /// One Eq. (2) re-allocation: feedback -> allocate -> refill budgets.
  /// Requires pacing_mutex_; shared verbatim by the pacing thread and the
  /// reactor's timer-wheel entry.
  void pacing_tick_locked();
  void handle_session(Transport& client, std::uint64_t salt);
  /// recv_frame that retries clean timeouts until `deadline` or shutdown.
  std::optional<std::vector<std::byte>> recv_frame_by(
      Transport& client, std::chrono::steady_clock::time_point deadline);
  /// Slot index for a user id, assigning one if unseen; nullopt when all
  /// Config::max_users slots are taken.  Requires pacing_mutex_.
  std::optional<std::size_t> user_slot_locked(std::uint64_t user_id);
  /// max_sessions as the running backend enforces it.
  std::size_t effective_max_sessions() const;
  /// Deterministic per-session nonce/key stream.
  static crypto::ChaCha20 seeded_rng(std::uint64_t seed, std::uint64_t salt);
  // Epoll backend bring-up/teardown (peer_server_epoll.cpp; the non-Linux
  // build stubs them out and start() falls back to threads).
  bool reactor_start();
  void reactor_stop();

  Config config_;
  p2p::MessageStore store_;
  std::optional<crypto::RsaKeyPair> identity_;
  std::map<std::uint64_t, crypto::RsaPublicKey> users_;
  Listener listener_;
  std::uint16_t port_ = 0;
  NetBackend backend_ = NetBackend::threads;  // resolved at start()
  bool started_ = false;
  std::thread accept_thread_;
  std::thread pacing_thread_;
  std::unique_ptr<util::ThreadPool> pool_;
  // shared_ptr (not unique_ptr) so the deleter is captured where the type
  // is complete (peer_server_epoll.cpp) and every other TU can destroy it.
  std::shared_ptr<ReactorState> reactor_;
  std::atomic<bool> running_{false};
  std::atomic<std::size_t> serving_threads_{0};
  std::atomic<std::uint64_t> session_counter_{0};  // the one salt source

  // Pacing state: one mutex guards the session registry, every
  // SessionState, and the per-user tables below.
  mutable std::mutex pacing_mutex_;
  std::condition_variable pacing_cv_;
  std::unordered_map<std::uint64_t, std::shared_ptr<SessionState>> sessions_;
  std::map<std::uint64_t, std::size_t> user_slots_;
  std::vector<std::uint64_t> slot_users_;
  std::vector<std::uint64_t> user_bytes_;
  std::vector<double> user_rate_kbps_;
  std::vector<double> declared_;  // zeros; live peers declare nothing
  std::unique_ptr<alloc::SynchronizedPolicy> policy_;
  // pacing_tick_locked scratch (guarded by pacing_mutex_; sized max_users).
  std::vector<std::uint8_t> pt_requesting_;
  std::vector<double> pt_received_;
  std::vector<double> pt_shares_;
  std::vector<std::size_t> pt_sessions_;
  std::uint64_t pt_slot_ = 0;
  /// Gossiped remote contribution already folded into the policy ledger,
  /// by slot (pacing_mutex_): each tick applies only the delta against
  /// the hook's current swarm total, keeping the fold idempotent.
  std::vector<double> applied_remote_;

  std::atomic<std::size_t> sessions_completed_{0};
  std::atomic<std::size_t> auth_rejections_{0};
  std::atomic<std::size_t> messages_sent_{0};
  std::atomic<std::size_t> active_sessions_{0};
  std::atomic<std::size_t> peak_sessions_{0};
  std::atomic<std::size_t> sessions_rejected_{0};

  // Registry mirrors of the counters above plus pacing instruments.  The
  // accessor methods stay the tests' source of truth; the registry carries
  // the same numbers so exporters see them (instrument pointers resolved
  // once in the constructor / at slot assignment, never per event).
  obs::MetricsRegistry* registry_;  // Config::registry or the global
  obs::Counter* m_sessions_completed_;
  obs::Counter* m_sessions_rejected_;
  obs::Counter* m_auth_rejections_;
  obs::Counter* m_messages_sent_;
  obs::Gauge* m_active_sessions_;
  obs::Gauge* m_peak_sessions_;
  obs::Histogram* m_quantum_ns_;
  std::vector<obs::Counter*> m_user_bytes_;    // by slot; pacing_mutex_
  std::vector<obs::Gauge*> m_user_rate_;       // by slot; pacing_mutex_
  std::uint64_t dump_generation_seen_ = 0;     // accept loop only
};

}  // namespace fairshare::net
