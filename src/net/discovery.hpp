// The serve path's view of discovery/federation, dependency-inverted.
//
// PeerServer (in net) must not link the disco subsystem — disco sits on
// top of net (Transport, EventLoop, Socket).  This interface is the thin
// waist between them: a server configured with Config::discovery calls
// these three methods and nothing else, and disco::DiscoveryNode
// implements them.  Tests can substitute an in-process fake.
//
// Threading contract: announce_file is called once per stored file from
// start(); publish_contribution and swarm_contribution are called from
// the pacing tick (every Config::pacing_quantum_ms, under the server's
// pacing lock) — implementations must be thread-safe and must never call
// back into the server.
#pragma once

#include <cstdint>
#include <string>

namespace fairshare::net {

/// Where a server can be reached for file requests, as announced to
/// discovery.
struct ServeEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint64_t peer_id = 0;
};

class DiscoveryHook {
 public:
  virtual ~DiscoveryHook() = default;

  /// Register `self` as a provider of `file_id` (the implementation owns
  /// TTL refresh).  False when no discovery node could be reached — the
  /// server keeps serving; the file is just not locatable through the DHT.
  virtual bool announce_file(std::uint64_t file_id,
                             const ServeEndpoint& self) = 0;

  /// Publish this server's cumulative locally-measured contribution for
  /// one user (bytes served on its behalf, Eq. (2)'s ledger S).  Totals
  /// are monotone; re-publishing an unchanged total is a no-op.
  virtual void publish_contribution(std::uint64_t user_id, double total) = 0;

  /// The user's gossiped contribution summed across every OTHER origin
  /// server (this server's own measurement already reaches its policy via
  /// the ordinary feedback path and must not be double-counted).
  virtual double swarm_contribution(std::uint64_t user_id) const = 0;
};

}  // namespace fairshare::net
