#include "net/download_client.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "coding/codec.hpp"
#include "crypto/auth.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/sha256.hpp"
#include "net/socket.hpp"
#include "obs/trace.hpp"
#include "p2p/wire.hpp"
#include "util/thread_pool.hpp"

namespace fairshare::net {

namespace {

constexpr std::size_t kMaxServerFrame = 64 << 20;  // generous payload bound

crypto::ChaCha20 seeded_rng(std::uint64_t seed, std::uint64_t salt) {
  crypto::Sha256 h;
  std::uint8_t buf[16];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<std::uint8_t>(seed >> (8 * i));
    buf[8 + i] = static_cast<std::uint8_t>(salt >> (8 * i));
  }
  h.update(std::span<const std::uint8_t>(buf, 16));
  const crypto::Sha256Digest key = h.finish();
  const std::array<std::uint8_t, crypto::ChaCha20::kNonceSize> nonce{};
  return crypto::ChaCha20(std::span<const std::uint8_t, 32>(key), nonce);
}

/// How one connection attempt ended.
enum class Outcome {
  clean,             ///< decode done / stop sent / store served in full
  failed_retryable,  ///< connect, reset, timeout: another attempt may work
  failed_permanent,  ///< the peer failed authentication: do not go back
};

/// Registry mirrors of one PeerDownloadStats row, resolved once before the
/// session threads start so the hot receive loop only touches counters.
struct PeerInstruments {
  obs::Counter* attempts = nullptr;
  obs::Counter* retries = nullptr;
  obs::Counter* frames = nullptr;
  obs::Counter* bytes = nullptr;
  obs::Counter* corrupt = nullptr;
  obs::Counter* innovative = nullptr;
  obs::Counter* redundant = nullptr;
  obs::Counter* rejected = nullptr;
};

PeerInstruments make_instruments(obs::MetricsRegistry& registry,
                                 std::uint64_t user_id,
                                 std::uint64_t peer_id) {
  const obs::LabelList labels = {{"peer", std::to_string(peer_id)},
                                 {"user", std::to_string(user_id)}};
  PeerInstruments out;
  out.attempts =
      &registry.counter("fairshare_client_attempts_total", labels);
  out.retries = &registry.counter("fairshare_client_retries_total", labels);
  out.frames = &registry.counter("fairshare_client_frames_total", labels);
  out.bytes =
      &registry.counter("fairshare_client_bytes_received_total", labels);
  out.corrupt =
      &registry.counter("fairshare_client_frames_corrupt_total", labels);
  out.innovative = &registry.counter(
      "fairshare_client_messages_innovative_total", labels);
  out.redundant =
      &registry.counter("fairshare_client_messages_redundant_total", labels);
  out.rejected =
      &registry.counter("fairshare_client_messages_rejected_total", labels);
  return out;
}

}  // namespace

std::vector<PeerEndpoint> dedup_endpoints(std::vector<PeerEndpoint> peers) {
  std::unordered_set<PeerEndpoint, PeerEndpointHash> seen;
  seen.reserve(peers.size());
  std::erase_if(peers,
                [&](const PeerEndpoint& p) { return !seen.insert(p).second; });
  return peers;
}

DownloadReport download_file(const std::vector<PeerEndpoint>& raw_peers,
                             const coding::SecretKey& secret,
                             const coding::FileInfo& info,
                             const DownloadOptions& options) {
  // Resolved peer sets may list one server several times (owner record,
  // successor replica, static fallback); a duplicate session would fight
  // itself for the same pacing slot.
  const std::vector<PeerEndpoint> peers = dedup_endpoints(raw_peers);
  DownloadReport report;
  report.per_peer.resize(peers.size());
  obs::MetricsRegistry& registry =
      options.registry ? *options.registry : obs::MetricsRegistry::global();
  std::vector<PeerInstruments> instruments;
  instruments.reserve(peers.size());
  for (const PeerEndpoint& peer : peers)
    instruments.push_back(
        make_instruments(registry, options.user_id, peer.peer_id));
  obs::TraceSpan download_span(&registry.spans(), "client.download");
  // Codec selected per FileInfo: dense files get the progressive solver,
  // chunked files the per-class decoder; the download loop is identical.
  coding::CodecDecoder decoder(secret, info);
  decoder.enable_metrics(registry, options.user_id);
  std::mutex decoder_mutex;
  std::atomic<bool> done{false};
  // Completion broadcast: sessions parked in a retry backoff wake the
  // moment a sibling finishes the decode, instead of sleeping it out.
  std::mutex done_mutex;
  std::condition_variable done_cv;
  const auto mark_done = [&] {
    {
      std::lock_guard<std::mutex> lock(done_mutex);
      done = true;
    }
    done_cv.notify_all();
  };

  const auto t0 = std::chrono::steady_clock::now();

  // One connection attempt, start to finish.  `salt` is unique per attempt
  // so re-established sessions use fresh handshake nonces.
  auto attempt_session = [&](const PeerEndpoint& peer, PeerDownloadStats& ps,
                             PeerInstruments& pi,
                             std::uint64_t salt) -> Outcome {
    obs::TraceSpan span(&registry.spans(), "client.session",
                        download_span.id());
    // An error observed after the decode already finished is shutdown
    // noise (the swarm is tearing down), not a failure event; counting it
    // would break the retried/failed partition documented in the header.
    const auto fail_retryable = [&] {
      return done.load() ? Outcome::clean : Outcome::failed_retryable;
    };
    std::unique_ptr<Transport> transport;
    if (options.transport_factory) {
      transport = options.transport_factory(peer);
    } else {
      auto socket = Socket::connect_to(peer.host, peer.port);
      if (socket) transport = std::make_unique<Socket>(std::move(*socket));
    }
    if (!transport || !transport->valid()) return fail_retryable();

    // Figure 4(b) transmission "1": mutual authentication.
    if (options.user_key != nullptr) {
      crypto::ChaCha20 rng = seeded_rng(options.rng_seed, salt);
      crypto::AuthInitiator initiator(options.user_id, *options.user_key,
                                      peer.identity, rng);
      if (!send_frame(*transport, p2p::wire::encode(initiator.hello())))
        return fail_retryable();
      const auto challenge_frame = recv_frame(*transport, 1 << 16);
      if (!challenge_frame) return fail_retryable();
      const auto challenge =
          p2p::wire::decode_auth_challenge(*challenge_frame);
      if (!challenge) return fail_retryable();
      const auto response = initiator.on_challenge(*challenge);
      // The peer failed to prove its identity: retrying would hand an
      // impersonator more chances, not recover a flaky link.
      if (!response) return Outcome::failed_permanent;
      if (!send_frame(*transport, p2p::wire::encode(*response)))
        return fail_retryable();
    }

    // Transmission "2"/"3": request the file.
    p2p::wire::FileRequest request;
    request.user_id = options.user_id;
    request.file_id = info.file_id;
    request.max_rate_kbps = options.max_rate_kbps;
    if (!send_frame(*transport, p2p::wire::encode(request)))
      return fail_retryable();

    // Transmission "4": consume coded messages until done.  The bounded
    // recv timeout lets a session blocked on a quiet peer notice that a
    // sibling finished the decode, so every session reaches the stop frame
    // below instead of hanging until the peer happens to send again.
    transport->set_recv_timeout(options.recv_timeout_ms);
    while (!done.load()) {
      const auto frame = recv_frame(*transport, kMaxServerFrame);
      if (!frame) {
        if (transport->timed_out()) continue;  // re-check done and retry
        // Reset or premature EOF: retryable — a reconnect re-streams the
        // peer's store, and messages already decoded fall out as
        // non-innovative (no double-count).
        return fail_retryable();
      }
      ps.bytes_received += frame->size();
      pi.frames->add(1);
      pi.bytes->add(frame->size());
      const auto msg = p2p::wire::decode_coded_message(*frame);
      if (!msg) {
        ++ps.frames_corrupt;
        ++ps.messages_rejected;
        pi.corrupt->add(1);
        pi.rejected->add(1);
        continue;
      }
      std::lock_guard<std::mutex> lock(decoder_mutex);
      if (decoder.complete()) break;
      switch (decoder.add(*msg)) {
        case coding::AddResult::accepted:
          ++ps.messages_accepted;
          pi.innovative->add(1);
          break;
        case coding::AddResult::bad_digest:
          // The paper's on-the-fly authentication: a flipped byte anywhere
          // in the frame fails the owner's MD5 and never touches the
          // solver.
          ++ps.frames_corrupt;
          ++ps.messages_rejected;
          pi.corrupt->add(1);
          pi.rejected->add(1);
          break;
        case coding::AddResult::wrong_file:
        case coding::AddResult::bad_size:
          ++ps.messages_rejected;
          pi.rejected->add(1);
          break;
        case coding::AddResult::non_innovative:
          ++ps.messages_redundant;
          pi.redundant->add(1);
          break;
        case coding::AddResult::already_complete:
          break;
      }
      if (decoder.complete()) {
        mark_done();
        break;
      }
    }
    // Transmission "5": stop.
    p2p::wire::StopTransmission stop;
    stop.user_id = options.user_id;
    stop.file_id = info.file_id;
    (void)send_frame(*transport, p2p::wire::encode(stop));
    return Outcome::clean;
  };

  auto session = [&](std::size_t index) {
    const PeerEndpoint& peer = peers[index];
    PeerDownloadStats& ps = report.per_peer[index];
    PeerInstruments& pi = instruments[index];
    ps.peer_id = peer.peer_id;
    const int max_attempts = std::max(1, options.retry.max_attempts);
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
      if (done.load()) break;
      ++ps.attempts;
      pi.attempts->add(1);
      const std::uint64_t salt =
          static_cast<std::uint64_t>(index + 1) |
          (static_cast<std::uint64_t>(attempt) << 32);
      const Outcome outcome = attempt_session(peer, ps, pi, salt);
      if (outcome == Outcome::clean) break;
      // Counter partition (see download_client.hpp): this failed attempt
      // is counted below either as retried (another attempt follows) or,
      // exactly once per peer, as the terminal failure.
      if (outcome == Outcome::failed_permanent || attempt == max_attempts ||
          done.load()) {
        ps.gave_up = true;
        break;
      }
      const int delay = options.retry.delay_ms(
          attempt, options.rng_seed ^ (0xC0FFEEull * (index + 1)));
      // Completion gate before dialing again: wait out the backoff AND
      // re-check under the same mutex mark_done() holds, so a decode that
      // finishes between the timed wait and the next connect cannot slip
      // an extra (instantly-doomed) session onto the wire.
      bool finished;
      {
        std::unique_lock<std::mutex> lock(done_mutex);
        done_cv.wait_for(lock, std::chrono::milliseconds(delay),
                         [&] { return done.load(); });
        finished = done.load();
      }
      if (finished) {  // the swarm finished while this peer backed off
        ps.gave_up = true;
        break;
      }
      ++ps.sessions_retried;
      pi.retries->add(1);
    }
  };

  // One fixed pool serves every per-peer session, and each session keeps
  // its worker across all retry attempts — re-dialing a flaky peer reuses
  // the thread it already has instead of spawning a fresh one per attempt.
  // An explicit latch (not the pool destructor, which discards queued
  // tasks) guarantees every session ran before the report is aggregated.
  {
    std::mutex pool_mutex;
    std::condition_variable pool_cv;
    std::size_t remaining = peers.size();
    util::ThreadPool pool(std::max<std::size_t>(peers.size(), 1) + 1);
    for (std::size_t i = 0; i < peers.size(); ++i)
      pool.submit([&, i] {
        session(i);
        {
          std::lock_guard<std::mutex> lock(pool_mutex);
          --remaining;
        }
        pool_cv.notify_all();
      });
    std::unique_lock<std::mutex> lock(pool_mutex);
    pool_cv.wait(lock, [&] { return remaining == 0; });
  }

  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (const PeerDownloadStats& ps : report.per_peer) {
    report.messages_rejected += ps.messages_rejected;
    report.frames_corrupt += ps.frames_corrupt;
    report.sessions_retried += ps.sessions_retried;
    report.bytes_received += ps.bytes_received;
    if (ps.gave_up) ++report.sessions_failed;
  }
  if (decoder.complete()) {
    report.success = true;
    report.data = decoder.reconstruct();
    report.messages_accepted = decoder.accepted();
  }
  return report;
}

}  // namespace fairshare::net
