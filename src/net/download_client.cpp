#include "net/download_client.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "crypto/auth.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/sha256.hpp"
#include "net/socket.hpp"
#include "p2p/wire.hpp"

namespace fairshare::net {

namespace {

constexpr std::size_t kMaxServerFrame = 64 << 20;  // generous payload bound

crypto::ChaCha20 seeded_rng(std::uint64_t seed, std::uint64_t salt) {
  crypto::Sha256 h;
  std::uint8_t buf[16];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<std::uint8_t>(seed >> (8 * i));
    buf[8 + i] = static_cast<std::uint8_t>(salt >> (8 * i));
  }
  h.update(std::span<const std::uint8_t>(buf, 16));
  const crypto::Sha256Digest key = h.finish();
  const std::array<std::uint8_t, crypto::ChaCha20::kNonceSize> nonce{};
  return crypto::ChaCha20(std::span<const std::uint8_t, 32>(key), nonce);
}

}  // namespace

DownloadReport download_file(const std::vector<PeerEndpoint>& peers,
                             const coding::SecretKey& secret,
                             const coding::FileInfo& info,
                             const DownloadOptions& options) {
  DownloadReport report;
  coding::FileDecoder decoder(secret, info);
  std::mutex decoder_mutex;
  std::atomic<bool> done{false};
  std::atomic<std::size_t> rejected{0};
  std::atomic<std::size_t> failed{0};

  const auto t0 = std::chrono::steady_clock::now();

  auto session = [&](const PeerEndpoint& peer, std::uint64_t salt) {
    auto socket = Socket::connect_to(peer.host, peer.port);
    if (!socket) {
      ++failed;
      return;
    }
    // Figure 4(b) transmission "1": mutual authentication.
    if (options.user_key != nullptr) {
      crypto::ChaCha20 rng = seeded_rng(options.rng_seed, salt);
      crypto::AuthInitiator initiator(options.user_id, *options.user_key,
                                      peer.identity, rng);
      if (!send_frame(*socket, p2p::wire::encode(initiator.hello()))) {
        ++failed;
        return;
      }
      const auto challenge_frame = recv_frame(*socket, 1 << 16);
      if (!challenge_frame) {
        ++failed;
        return;
      }
      const auto challenge =
          p2p::wire::decode_auth_challenge(*challenge_frame);
      if (!challenge) {
        ++failed;
        return;
      }
      const auto response = initiator.on_challenge(*challenge);
      if (!response) {  // peer failed to prove its identity
        ++failed;
        return;
      }
      if (!send_frame(*socket, p2p::wire::encode(*response))) {
        ++failed;
        return;
      }
    }

    // Transmission "2"/"3": request the file.
    p2p::wire::FileRequest request;
    request.user_id = options.user_id;
    request.file_id = info.file_id;
    request.max_rate_kbps = options.max_rate_kbps;
    if (!send_frame(*socket, p2p::wire::encode(request))) {
      ++failed;
      return;
    }

    // Transmission "4": consume coded messages until done.  The bounded
    // recv timeout lets a session blocked on a quiet peer notice that a
    // sibling finished the decode, so every session reaches the stop frame
    // below instead of hanging until the peer happens to send again.
    socket->set_recv_timeout(options.recv_timeout_ms);
    while (!done.load()) {
      const auto frame = recv_frame(*socket, kMaxServerFrame);
      if (!frame) {
        if (socket->timed_out()) continue;  // re-check done and retry
        return;  // peer exhausted its store / closed
      }
      const auto msg = p2p::wire::decode_coded_message(*frame);
      if (!msg) {
        ++rejected;
        continue;
      }
      std::lock_guard<std::mutex> lock(decoder_mutex);
      if (decoder.complete()) break;
      const auto result = decoder.add(*msg);
      if (result == coding::AddResult::bad_digest) ++rejected;
      if (decoder.complete()) {
        done = true;
        break;
      }
    }
    // Transmission "5": stop.
    p2p::wire::StopTransmission stop;
    stop.user_id = options.user_id;
    stop.file_id = info.file_id;
    (void)send_frame(*socket, p2p::wire::encode(stop));
  };

  std::vector<std::thread> threads;
  threads.reserve(peers.size());
  for (std::size_t i = 0; i < peers.size(); ++i)
    threads.emplace_back(session, peers[i], static_cast<std::uint64_t>(i + 1));
  for (auto& t : threads) t.join();

  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  report.messages_rejected = rejected;
  report.sessions_failed = failed;
  if (decoder.complete()) {
    report.success = true;
    report.data = decoder.reconstruct();
    report.messages_accepted = decoder.accepted();
  }
  return report;
}

}  // namespace fairshare::net
