// The byte/frame transport seam under the real-socket protocol stack.
//
// net::Socket is one implementation (a connected TCP stream); tests and
// chaos harnesses substitute others — most importantly net::FaultyTransport
// (fault_transport.hpp), which wraps any Transport and injects seeded
// connection resets, frame drops/delays/duplication, and byte corruption.
// PeerServer and download_file speak only to this interface, so the entire
// Figure 4(b) exchange can be exercised under deterministic fault schedules
// without touching the protocol code.
//
// Frame layer: the virtual read_frame/write_frame pair carries one
// length-prefixed frame (u32 little-endian length, then that many bytes —
// a p2p::wire frame).  Default implementations are provided in terms of
// the byte-level primitives; wrappers override them to observe frame
// boundaries (the natural unit for fault injection).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace fairshare::net {

/// Abstract bidirectional, connection-oriented transport.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Write all bytes; false on error/peer close.
  virtual bool write_all(std::span<const std::byte> data) = 0;

  /// Read exactly out.size() bytes; false on error/EOF.  When a recv
  /// timeout is set and expires before the *first* byte arrives, returns
  /// false with timed_out() true — the caller may safely retry.
  virtual bool read_exact(std::span<std::byte> out) = 0;

  /// Send one length-prefixed frame.  Default: header + write_all.
  virtual bool write_frame(std::span<const std::byte> frame);

  /// Receive one frame; nullopt on EOF/error/oversized (> max_len) frames.
  /// A timeout that strikes mid-frame cannot be retried (the header is
  /// already consumed) and reports as a hard error, not a timeout.
  virtual std::optional<std::vector<std::byte>> read_frame(
      std::size_t max_len);

  /// Bound subsequent reads (0 = block forever).
  virtual bool set_recv_timeout(int timeout_ms) = 0;
  /// Bound subsequent writes (0 = block forever).
  virtual bool set_send_timeout(int timeout_ms) = 0;

  /// True when the last read failure was a clean (zero-byte) timeout.
  virtual bool timed_out() const = 0;
  /// Downgrade a clean timeout to a fatal error.
  virtual void clear_timed_out() = 0;

  /// True when at least one byte is readable within timeout_ms.
  virtual bool readable(int timeout_ms) = 0;

  virtual void close() = 0;
  virtual bool valid() const = 0;
};

/// Send one length-prefixed frame (delegates to transport.write_frame).
bool send_frame(Transport& transport, std::span<const std::byte> frame);

/// Receive one frame (delegates to transport.read_frame).
std::optional<std::vector<std::byte>> recv_frame(Transport& transport,
                                                 std::size_t max_len);

}  // namespace fairshare::net
