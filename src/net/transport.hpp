// The byte/frame transport seam under the real-socket protocol stack.
//
// net::Socket is one implementation (a connected TCP stream); tests and
// chaos harnesses substitute others — most importantly net::FaultyTransport
// (fault_transport.hpp), which wraps any Transport and injects seeded
// connection resets, frame drops/delays/duplication, and byte corruption.
// PeerServer and download_file speak only to this interface, so the entire
// Figure 4(b) exchange can be exercised under deterministic fault schedules
// without touching the protocol code.
//
// Frame layer: the virtual read_frame/write_frame pair carries one
// length-prefixed frame (u32 little-endian length, then that many bytes —
// a p2p::wire frame).  Default implementations are provided in terms of
// the byte-level primitives; wrappers override them to observe frame
// boundaries (the natural unit for fault injection).
//
// Non-blocking half (the reactor serving path, net/event_loop.hpp):
// try_read_frame / try_write_frame never block.  The base class carries
// the partial-frame state machines — an in-progress inbound header/body
// and an outbound staging buffer — over two overridable non-blocking byte
// primitives, so any Transport gets working non-blocking framing for
// free and wrappers can intercept at frame granularity:
//
//  * try_write_frame ACCEPTS a frame at most once (TryWrite::accepted):
//    once accepted it is staged and will be delivered by try_flush, so
//    callers count bytes exactly once; accepted==false means "retry the
//    same frame later" (outbound backlog, or a fault-injected delay whose
//    release time retry_after() exposes so reactors arm a timer instead
//    of sleeping).
//  * try_write_frame_ext is the zero-copy variant: the frame is
//    head ++ ext, where only the small head is copied into staging and
//    the (typically large, immutable) ext is *referenced* until drained.
//    The wire image is identical to try_write_frame(head++ext); both sides
//    drain through one vectored primitive (try_write_bytes_vec, sendmsg
//    on Socket) so a paced coded-message stream costs zero payload copies.
//  * want_write() says whether staged output remains; the reactor maps it
//    onto EPOLLOUT interest.  want_read() says a frame is mid-reassembly.
//  * blocking and non-blocking calls may be mixed on one transport as
//    long as they are not interleaved mid-frame (the server uses only the
//    try_* family; the client only the blocking family).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace fairshare::net {

/// How a non-blocking operation ended.
enum class IoStatus {
  ok,       ///< completed fully
  blocked,  ///< made what progress it could; wait for readiness or
            ///< retry_after(), then call again
  closed,   ///< orderly EOF — the peer is gone
  error,    ///< hard failure; the connection is unusable
};

/// Result of try_write_frame.  `accepted` is the ownership handoff: a
/// frame is accepted at most once, after which the transport delivers it
/// (possibly across several try_flush calls) without the caller resending.
struct TryWrite {
  IoStatus status = IoStatus::error;
  bool accepted = false;
};

/// Result of try_read_frame.  `frame` is meaningful only when status==ok.
struct TryRead {
  IoStatus status = IoStatus::error;
  std::vector<std::byte> frame;
};

/// Abstract bidirectional, connection-oriented transport.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Write all bytes; false on error/peer close.
  virtual bool write_all(std::span<const std::byte> data) = 0;

  /// Read exactly out.size() bytes; false on error/EOF.  When a recv
  /// timeout is set and expires before the *first* byte arrives, returns
  /// false with timed_out() true — the caller may safely retry.
  virtual bool read_exact(std::span<std::byte> out) = 0;

  /// Send one length-prefixed frame.  Default: header + write_all.
  virtual bool write_frame(std::span<const std::byte> frame);

  /// Receive one frame; nullopt on EOF/error/oversized (> max_len) frames.
  /// A timeout that strikes mid-frame cannot be retried (the header is
  /// already consumed) and reports as a hard error, not a timeout.
  virtual std::optional<std::vector<std::byte>> read_frame(
      std::size_t max_len);

  // ------------------------------------------------ non-blocking frames

  /// Stage one frame for delivery without blocking (see the accepted
  /// contract in the header comment).  Default: appends header+frame to
  /// the staging buffer once the previous frame has fully drained, then
  /// flushes opportunistically.
  virtual TryWrite try_write_frame(std::span<const std::byte> frame);

  /// Stage one frame whose payload is head ++ ext, copying only `head`
  /// (plus the length prefix) into the staging buffer; `ext` is held as a
  /// reference and written straight from the caller's memory.  Same
  /// accepted-at-most-once contract and wire image as
  /// try_write_frame(head ++ ext).  LIFETIME: once accepted, the bytes
  /// behind `ext` must stay valid and unchanged until want_write() turns
  /// false (or the transport is closed) — the serving path points it at
  /// the immutable MessageStore, which outlives every session.
  virtual TryWrite try_write_frame_ext(std::span<const std::byte> head,
                                       std::span<const std::byte> ext);

  /// Drain staged output.  ok = nothing left, blocked = bytes remain
  /// (wait for writability), closed/error = connection dead.
  virtual IoStatus try_flush();

  /// Reassemble one frame without blocking.  blocked until a full frame
  /// (header + body) has arrived; oversized frames report error.
  virtual TryRead try_read_frame(std::size_t max_len);

  /// Staged outbound bytes remain (map onto EPOLLOUT interest).
  virtual bool want_write() const {
    return out_off_ < out_buf_.size() || ext_off_ < ext_.size();
  }
  /// An inbound frame is mid-reassembly (header or body partially read).
  virtual bool want_read() const { return in_hdr_got_ > 0 || in_got_ > 0; }

  /// When a blocked try_* call is waiting on *time* rather than on fd
  /// readiness (fault-injected delays), the steady-clock instant at which
  /// retrying can make progress; reactors arm a timer-wheel entry for it
  /// instead of sleeping.  nullopt = readiness-driven as usual.
  virtual std::optional<std::chrono::steady_clock::time_point> retry_after()
      const {
    return std::nullopt;
  }

  // ------------------------------------------------------------- control

  /// Bound subsequent reads (0 = block forever).
  virtual bool set_recv_timeout(int timeout_ms) = 0;
  /// Bound subsequent writes (0 = block forever).
  virtual bool set_send_timeout(int timeout_ms) = 0;

  /// True when the last read failure was a clean (zero-byte) timeout.
  virtual bool timed_out() const = 0;
  /// Downgrade a clean timeout to a fatal error.
  virtual void clear_timed_out() = 0;

  /// True when at least one byte is readable within timeout_ms.
  virtual bool readable(int timeout_ms) = 0;

  virtual void close() = 0;
  virtual bool valid() const = 0;

 protected:
  /// Non-blocking byte primitives under the default frame machines.
  /// `got`/`put` report partial progress; status blocked means zero-or-
  /// partial progress with the rest pending.  The defaults emulate over
  /// the blocking primitives (readable(0) + read_exact / write_all) for
  /// transports without real non-blocking IO (in-process pipes in tests);
  /// Socket overrides them with MSG_DONTWAIT send/recv.
  virtual IoStatus try_read_bytes(std::byte* out, std::size_t n,
                                  std::size_t& got);
  virtual IoStatus try_write_bytes(const std::byte* data, std::size_t n,
                                   std::size_t& put);
  /// Vectored non-blocking write: push the buffers in order, reporting
  /// total progress in `put` (progress fills bufs[0] before bufs[1], as a
  /// stream write must).  Default: sequential try_write_bytes calls;
  /// Socket overrides with one sendmsg so a frame head and its referenced
  /// payload leave in a single syscall.
  virtual IoStatus try_write_bytes_vec(const std::span<const std::byte>* bufs,
                                       std::size_t nbufs, std::size_t& put);

 private:
  // Outbound staging: [out_off_, out_buf_.size()) awaits the wire, then
  // the referenced extent [ext_off_, ext_.size()) of the current frame.
  std::vector<std::byte> out_buf_;
  std::size_t out_off_ = 0;
  std::span<const std::byte> ext_;
  std::size_t ext_off_ = 0;
  // Inbound reassembly: header first, then body.
  std::byte in_hdr_[4] = {};
  std::size_t in_hdr_got_ = 0;
  std::vector<std::byte> in_body_;
  std::size_t in_got_ = 0;
};

/// Send one length-prefixed frame (delegates to transport.write_frame).
bool send_frame(Transport& transport, std::span<const std::byte> frame);

/// Receive one frame (delegates to transport.read_frame).
std::optional<std::vector<std::byte>> recv_frame(Transport& transport,
                                                 std::size_t max_len);

}  // namespace fairshare::net
