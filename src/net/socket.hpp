// Minimal RAII TCP sockets with length-prefixed framing.
//
// The simulation layers (sim::Simulator, p2p::System) model bandwidth; this
// module makes the protocol *real*: peers listen on TCP ports, speak the
// wire formats of p2p/wire.hpp over loopback or a LAN, and the paper's
// Figure 4(b) timeline happens as actual bytes on actual sockets (see
// net/peer_server.hpp, net/download_client.hpp and the localhost_swarm
// example).
//
// Socket is the TCP implementation of the net::Transport seam
// (transport.hpp); the server and client speak to the interface so tests
// can substitute fault-injecting wrappers (fault_transport.hpp).
//
// Frames on the wire: u32 little-endian length, then that many bytes
// (a p2p::wire frame).  IPv4 only.  Two IO disciplines share one fd:
//  * blocking calls (read_exact/write_all) with poll()-backed recv
//    timeouts — timeouts keep working even when the fd is O_NONBLOCK, so
//    the legacy client path and tests are oblivious to the mode;
//  * the inherited non-blocking frame machine over MSG_DONTWAIT
//    primitives, which the epoll reactor (net/event_loop.hpp) drives.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/transport.hpp"

namespace fairshare::net {

/// RAII wrapper over a connected TCP socket.
class Socket final : public Transport {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() override;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Blocking connect to host:port (IPv4 dotted quad or "localhost").
  static std::optional<Socket> connect_to(const std::string& host,
                                          std::uint16_t port);

  bool valid() const override { return fd_ >= 0; }
  int fd() const { return fd_; }
  /// The raw OS handle, for event-loop registration (epoll keys on it).
  int native_handle() const { return fd_; }
  void close() override;

  /// Toggle O_NONBLOCK.  The blocking read/write API keeps working either
  /// way (recv timeouts are poll()-based, sends fall back to poll on
  /// EAGAIN); the try_* family never blocks regardless (MSG_DONTWAIT).
  bool set_nonblocking(bool on);

  /// Bound every subsequent read (0 = block forever).  Implemented with
  /// poll() rather than SO_RCVTIMEO so it is honoured in both blocking
  /// and non-blocking mode.  Lets a reader wake up periodically to
  /// re-check shutdown flags instead of parking in recv() forever.
  bool set_recv_timeout(int timeout_ms) override;
  /// Bound every subsequent write with SO_SNDTIMEO (0 = block forever);
  /// write_all fails instead of hanging on a peer that stopped reading.
  bool set_send_timeout(int timeout_ms) override;

  /// Write all bytes; false on error/peer close.
  bool write_all(std::span<const std::byte> data) override;
  /// Read exactly n bytes; false on error/EOF.  When a recv timeout is set
  /// and it expires before the *first* byte arrives, returns false with
  /// timed_out() true — the caller may safely retry.  A timeout after a
  /// partial read is a stalled peer and reports as a plain error.
  bool read_exact(std::span<std::byte> out) override;
  /// True when the last read_exact failure was a clean (zero-byte) timeout.
  bool timed_out() const override { return timed_out_; }
  /// Downgrade a clean timeout to a fatal error (used by read_frame when a
  /// timeout strikes mid-frame and a retry would desynchronise the stream).
  void clear_timed_out() override { timed_out_ = false; }
  /// True when at least one byte is readable within timeout_ms.
  bool readable(int timeout_ms) override;

 protected:
  IoStatus try_read_bytes(std::byte* out, std::size_t n,
                          std::size_t& got) override;
  IoStatus try_write_bytes(const std::byte* data, std::size_t n,
                           std::size_t& put) override;
  /// Scatter-gather send (sendmsg + MSG_DONTWAIT): a frame head and its
  /// referenced payload leave in one syscall on the zero-copy serve path.
  IoStatus try_write_bytes_vec(const std::span<const std::byte>* bufs,
                               std::size_t nbufs, std::size_t& put) override;

 private:
  int fd_ = -1;
  bool timed_out_ = false;
  int recv_timeout_ms_ = 0;  ///< 0 = wait forever
};

/// RAII listening socket.
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Bind + listen on 127.0.0.1:port.  port 0 picks a free port (readable
  /// via port()).  `reuse_port` sets SO_REUSEPORT before bind so several
  /// listeners (one per event loop) can shard one port kernel-side;
  /// `backlog` sizes the accept queue (hundreds of sessions may dial in
  /// one burst against a reactor server).
  static std::optional<Listener> bind_local(std::uint16_t port,
                                            bool reuse_port = false,
                                            int backlog = 512);

  std::uint16_t port() const { return port_; }
  bool valid() const { return fd_ >= 0; }
  /// The raw OS handle, for event-loop registration.
  int native_handle() const { return fd_; }
  /// Toggle O_NONBLOCK (a reactor accepts until EAGAIN).
  bool set_nonblocking(bool on);

  /// Accept one connection; nullopt on timeout (timeout_ms) or error.
  /// With timeout_ms == 0 on a non-blocking listener this is the
  /// reactor's drain call: it never sleeps.
  std::optional<Socket> accept(int timeout_ms);

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace fairshare::net
