#include "linalg/matrix.hpp"

#include <algorithm>
#include <cassert>

namespace fairshare::linalg {

Matrix::Matrix(gf::FieldId field, std::size_t rows, std::size_t cols)
    : field_(field),
      rows_(rows),
      cols_(cols),
      row_bytes_(gf::field_view(field).row_bytes(cols)),
      data_(rows * row_bytes_, std::byte{0}) {}

Matrix Matrix::identity(gf::FieldId field, std::size_t n) {
  Matrix m(field, n, n);
  for (std::size_t i = 0; i < n; ++i) m.set(i, i, 1);
  return m;
}

std::uint64_t Matrix::at(std::size_t r, std::size_t c) const {
  assert(r < rows_ && c < cols_);
  return gf::field_view(field_).get(row(r), c);
}

void Matrix::set(std::size_t r, std::size_t c, std::uint64_t v) {
  assert(r < rows_ && c < cols_);
  gf::field_view(field_).set(row(r), c, v);
}

Matrix Matrix::mul(const Matrix& other) const {
  assert(cols_ == other.rows_);
  assert(field_ == other.field_);
  const auto& f = gf::field_view(field_);
  Matrix out(field_, rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    // out.row(i) = sum_j this(i,j) * other.row(j): one axpy per nonzero.
    for (std::size_t j = 0; j < cols_; ++j) {
      const std::uint64_t c = at(i, j);
      if (c != 0) f.axpy(out.row(i), other.row(j), c, other.cols_);
    }
  }
  return out;
}

void Matrix::swap_rows(std::size_t a, std::size_t b) {
  if (a == b) return;
  std::swap_ranges(row(a), row(a) + row_bytes_, row(b));
}

bool Matrix::operator==(const Matrix& other) const {
  return field_ == other.field_ && rows_ == other.rows_ &&
         cols_ == other.cols_ && data_ == other.data_;
}

namespace {

// Forward elimination to row-echelon form (in place).  Returns the rank.
// When `companion` is non-null, every row operation is mirrored on it
// (same row count); used to build inverses and solve systems.
std::size_t forward_eliminate(Matrix& m, Matrix* companion) {
  const auto& f = gf::field_view(m.field());
  std::size_t pivot_row = 0;
  for (std::size_t col = 0; col < m.cols() && pivot_row < m.rows(); ++col) {
    // Find a pivot.
    std::size_t p = pivot_row;
    while (p < m.rows() && m.at(p, col) == 0) ++p;
    if (p == m.rows()) continue;
    m.swap_rows(pivot_row, p);
    if (companion) companion->swap_rows(pivot_row, p);

    const std::uint64_t inv = f.inv(m.at(pivot_row, col));
    f.scale(m.row(pivot_row), inv, m.cols());
    if (companion) f.scale(companion->row(pivot_row), inv, companion->cols());

    for (std::size_t r = 0; r < m.rows(); ++r) {
      if (r == pivot_row) continue;
      const std::uint64_t c = m.at(r, col);
      if (c == 0) continue;
      f.axpy(m.row(r), m.row(pivot_row), c, m.cols());
      if (companion)
        f.axpy(companion->row(r), companion->row(pivot_row), c,
               companion->cols());
    }
    ++pivot_row;
  }
  return pivot_row;
}

}  // namespace

std::size_t rank(Matrix m) { return forward_eliminate(m, nullptr); }

std::optional<Matrix> invert(const Matrix& m) {
  assert(m.rows() == m.cols());
  Matrix a = m;
  Matrix inv = Matrix::identity(m.field(), m.rows());
  if (forward_eliminate(a, &inv) != m.rows()) return std::nullopt;
  return inv;
}

std::optional<Matrix> solve(const Matrix& b, const Matrix& y) {
  assert(b.rows() == b.cols());
  assert(b.rows() == y.rows());
  Matrix a = b;
  Matrix x = y;
  if (forward_eliminate(a, &x) != b.rows()) return std::nullopt;
  return x;
}

}  // namespace fairshare::linalg
