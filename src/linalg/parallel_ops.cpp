#include "linalg/parallel_ops.hpp"

#include <algorithm>

namespace fairshare::linalg {

namespace {

// Below this many symbols the fan-out overhead outweighs the work.
constexpr std::size_t kSerialThreshold = 4096;

// Even segment length covering n symbols in `jobs` pieces.
std::size_t segment_symbols(std::size_t n, std::size_t jobs) {
  const std::size_t raw = (n + jobs - 1) / jobs;
  return (raw + 1) & ~std::size_t{1};
}

}  // namespace

void parallel_axpy(const gf::FieldView& f, std::byte* dst,
                   const std::byte* src, std::uint64_t c, std::size_t n,
                   util::ThreadPool* pool) {
  if (pool == nullptr || pool->size() <= 1 || n < kSerialThreshold) {
    f.axpy(dst, src, c, n);
    return;
  }
  const std::size_t jobs = pool->size();
  const std::size_t seg = segment_symbols(n, jobs);
  pool->parallel_for(jobs, [&](std::size_t j) {
    const std::size_t begin = j * seg;
    if (begin >= n) return;
    const std::size_t len = std::min(seg, n - begin);
    const std::size_t off = f.row_bytes(begin);  // begin is even: exact
    f.axpy(dst + off, src + off, c, len);
  });
}

void parallel_scale(const gf::FieldView& f, std::byte* row, std::uint64_t c,
                    std::size_t n, util::ThreadPool* pool) {
  if (pool == nullptr || pool->size() <= 1 || n < kSerialThreshold) {
    f.scale(row, c, n);
    return;
  }
  const std::size_t jobs = pool->size();
  const std::size_t seg = segment_symbols(n, jobs);
  pool->parallel_for(jobs, [&](std::size_t j) {
    const std::size_t begin = j * seg;
    if (begin >= n) return;
    const std::size_t len = std::min(seg, n - begin);
    const std::size_t off = f.row_bytes(begin);
    f.scale(row + off, c, len);
  });
}

}  // namespace fairshare::linalg
