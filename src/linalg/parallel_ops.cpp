#include "linalg/parallel_ops.hpp"

#include <algorithm>

namespace fairshare::linalg {

namespace {

// Segment length covering n symbols in at most `jobs` pieces.  Boundaries
// are rounded up to a whole 64-byte block of the packed row so (a) GF(2^4)
// nibble pairs never straddle a split and (b) every non-final segment is a
// whole number of AVX2 steps — workers never run the scalar tail loop in
// the middle of a row.
std::size_t segment_symbols(std::size_t n, std::size_t jobs, unsigned bits) {
  const std::size_t align = 512 / bits;  // symbols per 64 packed bytes
  const std::size_t raw = (n + jobs - 1) / jobs;
  return (raw + align - 1) / align * align;
}

// Workers that leave at least kMinChunkSymbols each; <= 1 means serial.
std::size_t plan_jobs(const util::ThreadPool* pool, std::size_t n) {
  if (pool == nullptr || pool->size() <= 1) return 1;
  return std::min(pool->size(), n / kMinChunkSymbols);
}

}  // namespace

void parallel_axpy(const gf::FieldView& f, std::byte* dst,
                   const std::byte* src, std::uint64_t c, std::size_t n,
                   util::ThreadPool* pool) {
  const std::size_t jobs = plan_jobs(pool, n);
  if (jobs <= 1) {
    f.axpy(dst, src, c, n);
    return;
  }
  const std::size_t seg = segment_symbols(n, jobs, f.bits);
  pool->parallel_for(jobs, [&](std::size_t j) {
    const std::size_t begin = j * seg;
    if (begin >= n) return;
    const std::size_t len = std::min(seg, n - begin);
    const std::size_t off = f.row_bytes(begin);  // begin is even: exact
    f.axpy(dst + off, src + off, c, len);
  });
}

void parallel_scale(const gf::FieldView& f, std::byte* row, std::uint64_t c,
                    std::size_t n, util::ThreadPool* pool) {
  const std::size_t jobs = plan_jobs(pool, n);
  if (jobs <= 1) {
    f.scale(row, c, n);
    return;
  }
  const std::size_t seg = segment_symbols(n, jobs, f.bits);
  pool->parallel_for(jobs, [&](std::size_t j) {
    const std::size_t begin = j * seg;
    if (begin >= n) return;
    const std::size_t len = std::min(seg, n - begin);
    const std::size_t off = f.row_bytes(begin);
    f.scale(row + off, c, len);
  });
}

}  // namespace fairshare::linalg
