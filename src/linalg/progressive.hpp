// Incremental (online) Gaussian elimination.
//
// Two users in the system need elimination one row at a time:
//  * the encoder screens freshly generated coefficient rows for linear
//    independence before accepting them (Section III-A: "the encoding peer
//    can guarantee that exactly k messages will suffice to decode a file by
//    simply testing generated rows for linear independence");
//  * the decoder folds messages in as they arrive from multiple peers and
//    stops (sends the paper's "stop transmission") the moment rank k is
//    reached (Section III-B).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "gf/row_ops.hpp"
#include "util/thread_pool.hpp"

namespace fairshare::linalg {

/// Tracks the rank of a growing set of length-`cols` coefficient rows.
///
/// add_row() runs one step of reduced row-echelon maintenance; it is
/// O(rank * cols) field operations per call.
class IncrementalRank {
 public:
  IncrementalRank(gf::FieldId field, std::size_t cols);

  /// Reduce `coeffs` (one symbol per entry, length cols) against the
  /// current basis.  Returns true and absorbs the row if it is linearly
  /// independent of everything added so far; returns false (row discarded)
  /// otherwise.
  bool add_row(std::span<const std::uint64_t> coeffs);

  std::size_t rank() const { return pivots_.size(); }
  std::size_t cols() const { return cols_; }
  bool full() const { return rank() == cols_; }

 private:
  gf::FieldId field_;
  std::size_t cols_;
  std::size_t row_bytes_;
  std::vector<std::byte> rows_;        // packed basis rows, rref
  std::vector<std::size_t> pivots_;    // pivots_[i] = pivot column of row i
  std::vector<std::byte> scratch_;     // one packed row
};

/// Online solver for B * X = Y fed one (coefficient row, payload row) pair
/// at a time.  Rows are kept in reduced row-echelon form over the
/// concatenated [coeffs | payload] buffer, so when rank reaches k the
/// payload parts *are* the recovered chunks — no separate back-substitution
/// pass.  This is the decoder core measured in Table II.
class ProgressiveSolver {
 public:
  /// k: number of unknowns (chunks); payload_symbols: m.
  ProgressiveSolver(gf::FieldId field, std::size_t k,
                    std::size_t payload_symbols);

  /// Fold in one received row.  `coeffs` is the packed coefficient row
  /// (k symbols); `payload` the packed message payload (m symbols).
  /// Returns true when the row was innovative (rank increased).
  bool add_row(const std::byte* coeffs, const std::byte* payload);

  /// Convenience overload taking unpacked coefficients.
  bool add_row(std::span<const std::uint64_t> coeffs,
               const std::byte* payload);

  std::size_t rank() const { return filled_; }
  bool complete() const { return filled_ == k_; }

  /// After complete(): packed payload of recovered chunk `i` (m symbols).
  /// The pointer is invalidated by further add_row calls.
  const std::byte* chunk(std::size_t i) const;

  std::size_t k() const { return k_; }
  std::size_t payload_symbols() const { return m_; }

  /// Fan payload row operations out over `pool` (nullptr = serial, the
  /// default).  The pool must outlive the solver.  Results are identical
  /// either way; only wall-clock changes (see bench/ext_parallel_decode).
  void set_thread_pool(util::ThreadPool* pool) { pool_ = pool; }

 private:
  std::byte* slot_row(std::size_t pivot) {
    return rows_.data() + pivot * row_bytes_;
  }
  const std::byte* slot_row(std::size_t pivot) const {
    return rows_.data() + pivot * row_bytes_;
  }

  gf::FieldId field_;
  std::size_t k_;
  std::size_t m_;
  std::size_t total_;      // k + m symbols per stored row
  std::size_t row_bytes_;  // bytes of one packed [coeffs|payload] row
  std::size_t payload_offset_;  // byte offset of payload within a row
  std::size_t filled_ = 0;
  std::vector<std::byte> rows_;     // k slots indexed by pivot column
  std::vector<bool> used_;          // slot occupancy
  std::vector<std::byte> scratch_;  // one packed row
  util::ThreadPool* pool_ = nullptr;
};

}  // namespace fairshare::linalg
