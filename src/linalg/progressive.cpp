#include "linalg/progressive.hpp"

#include <cassert>
#include <cstring>

#include "linalg/parallel_ops.hpp"

namespace fairshare::linalg {

// -------------------------------------------------------- IncrementalRank

IncrementalRank::IncrementalRank(gf::FieldId field, std::size_t cols)
    : field_(field),
      cols_(cols),
      row_bytes_(gf::field_view(field).row_bytes(cols)),
      scratch_(row_bytes_) {}

bool IncrementalRank::add_row(std::span<const std::uint64_t> coeffs) {
  assert(coeffs.size() == cols_);
  const auto& f = gf::field_view(field_);

  std::memset(scratch_.data(), 0, row_bytes_);
  for (std::size_t i = 0; i < cols_; ++i) f.set(scratch_.data(), i, coeffs[i]);

  // Reduce against the existing basis (rows are normalized, pivot = 1).
  for (std::size_t r = 0; r < pivots_.size(); ++r) {
    const std::uint64_t c = f.get(scratch_.data(), pivots_[r]);
    if (c != 0)
      f.axpy(scratch_.data(), rows_.data() + r * row_bytes_, c, cols_);
  }

  // Find the leftmost surviving nonzero.
  std::size_t pivot = cols_;
  for (std::size_t i = 0; i < cols_; ++i) {
    if (f.get(scratch_.data(), i) != 0) {
      pivot = i;
      break;
    }
  }
  if (pivot == cols_) return false;  // dependent

  f.scale(scratch_.data(), f.inv(f.get(scratch_.data(), pivot)), cols_);
  rows_.insert(rows_.end(), scratch_.begin(), scratch_.end());
  pivots_.push_back(pivot);
  return true;
}

// ------------------------------------------------------ ProgressiveSolver

ProgressiveSolver::ProgressiveSolver(gf::FieldId field, std::size_t k,
                                     std::size_t payload_symbols)
    : field_(field), k_(k), m_(payload_symbols) {
  const auto& f = gf::field_view(field);
  const std::size_t coeff_bytes = f.row_bytes(k_);
  // Payload starts at a 64-byte boundary: wide-symbol loads stay naturally
  // aligned and the SIMD kernels' main loops run whole cache lines (they
  // tolerate any offset, but aligned rows avoid split-line traffic in the
  // O(m k^2) hot path).
  payload_offset_ = (coeff_bytes + 63) / 64 * 64;
  row_bytes_ = payload_offset_ + f.row_bytes(m_);
  total_ = k_ + m_;
  rows_.assign(k_ * row_bytes_, std::byte{0});
  used_.assign(k_, false);
  scratch_.assign(row_bytes_, std::byte{0});
}

bool ProgressiveSolver::add_row(const std::byte* coeffs,
                                const std::byte* payload) {
  const auto& f = gf::field_view(field_);
  std::memset(scratch_.data(), 0, row_bytes_);
  std::memcpy(scratch_.data(), coeffs, f.row_bytes(k_));
  std::memcpy(scratch_.data() + payload_offset_, payload, f.row_bytes(m_));

  // Forward-reduce the incoming row against every stored pivot row.
  for (std::size_t col = 0; col < k_; ++col) {
    const std::uint64_t c = f.get(scratch_.data(), col);
    if (c == 0 || !used_[col]) continue;
    const std::byte* base = slot_row(col);
    f.axpy(scratch_.data(), base, c, k_);
    parallel_axpy(f, scratch_.data() + payload_offset_,
                  base + payload_offset_, c, m_, pool_);
  }

  // Locate this row's pivot.
  std::size_t pivot = k_;
  for (std::size_t col = 0; col < k_; ++col) {
    if (f.get(scratch_.data(), col) != 0) {
      pivot = col;
      break;
    }
  }
  if (pivot == k_) return false;  // non-innovative

  const std::uint64_t inv = f.inv(f.get(scratch_.data(), pivot));
  f.scale(scratch_.data(), inv, k_);
  parallel_scale(f, scratch_.data() + payload_offset_, inv, m_, pool_);

  // Back-eliminate the new pivot column from all stored rows so the basis
  // stays in *reduced* echelon form (payloads become plain chunks at rank k).
  for (std::size_t col = 0; col < k_; ++col) {
    if (!used_[col]) continue;
    std::byte* r = slot_row(col);
    const std::uint64_t c = f.get(r, pivot);
    if (c == 0) continue;
    f.axpy(r, scratch_.data(), c, k_);
    parallel_axpy(f, r + payload_offset_, scratch_.data() + payload_offset_,
                  c, m_, pool_);
  }

  std::memcpy(slot_row(pivot), scratch_.data(), row_bytes_);
  used_[pivot] = true;
  ++filled_;
  return true;
}

bool ProgressiveSolver::add_row(std::span<const std::uint64_t> coeffs,
                                const std::byte* payload) {
  assert(coeffs.size() == k_);
  const auto& f = gf::field_view(field_);
  std::vector<std::byte> packed(f.row_bytes(k_), std::byte{0});
  for (std::size_t i = 0; i < k_; ++i) f.set(packed.data(), i, coeffs[i]);
  return add_row(packed.data(), payload);
}

const std::byte* ProgressiveSolver::chunk(std::size_t i) const {
  assert(complete());
  assert(i < k_);
  return slot_row(i) + payload_offset_;
}

}  // namespace fairshare::linalg
