// Dense matrices over GF(2^p) with runtime field selection.
//
// Rows are stored in the packed wire representation of gf/row_ops.hpp, so
// elimination kernels run on exactly the bytes that coded messages carry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "gf/row_ops.hpp"

namespace fairshare::linalg {

/// A rows x cols matrix of GF(2^p) symbols.
///
/// Storage is one contiguous buffer; each row occupies
/// `field_view(f).row_bytes(cols)` bytes.  Elements are addressed through
/// get/set (packed nibble handling for GF(2^4) is hidden here).
class Matrix {
 public:
  /// Zero matrix of the given shape.
  Matrix(gf::FieldId field, std::size_t rows, std::size_t cols);

  /// n x n identity.
  static Matrix identity(gf::FieldId field, std::size_t n);

  gf::FieldId field() const { return field_; }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  /// Bytes per packed row.
  std::size_t row_bytes() const { return row_bytes_; }

  std::uint64_t at(std::size_t r, std::size_t c) const;
  void set(std::size_t r, std::size_t c, std::uint64_t v);

  std::byte* row(std::size_t r) { return data_.data() + r * row_bytes_; }
  const std::byte* row(std::size_t r) const {
    return data_.data() + r * row_bytes_;
  }

  /// this * other (shapes must agree).  Intended for tests and small
  /// coefficient matrices; O(rows * cols * other.cols) scalar multiplies.
  Matrix mul(const Matrix& other) const;

  /// Swap two rows in O(row_bytes).
  void swap_rows(std::size_t a, std::size_t b);

  bool operator==(const Matrix& other) const;

 private:
  gf::FieldId field_;
  std::size_t rows_;
  std::size_t cols_;
  std::size_t row_bytes_;
  std::vector<std::byte> data_;
};

/// Rank by Gaussian elimination on a copy.
std::size_t rank(Matrix m);

/// Inverse of a square matrix, or nullopt if singular.
std::optional<Matrix> invert(const Matrix& m);

/// Solve B * X = Y for X, where B is k x k and Y is k x m.  Returns nullopt
/// when B is singular.  This is the batch form of the paper's decoding step
/// (Section III-B): Y holds k received payload rows, X the file chunks.
std::optional<Matrix> solve(const Matrix& b, const Matrix& y);

}  // namespace fairshare::linalg
