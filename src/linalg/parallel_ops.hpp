// Data-parallel row kernels: the same axpy/scale as gf::FieldView, split
// across a thread pool by symbol ranges.  Used by the progressive solver
// for large payload rows (Table II's dominant O(m k^2) work parallelizes
// perfectly because symbol positions are independent).
#pragma once

#include <cstddef>
#include <cstdint>

#include "gf/row_ops.hpp"
#include "util/thread_pool.hpp"

namespace fairshare::linalg {

/// Minimum symbols of row work a worker must receive before fan-out pays:
/// the SIMD kernels chew through symbols an order of magnitude faster than
/// the old table loops, so below this the wake/join overhead dominates the
/// kernel time it saves.  Shared with coding/chunked.cpp, which applies the
/// same floor to per-class elimination batches before handing classes to
/// the pool.
constexpr std::size_t kMinChunkSymbols = 16384;

/// dst ^= c * src over n symbols, fanned out over `pool` (nullptr or small
/// n falls back to the serial kernel).  Fan-out only happens when every
/// worker gets a large minimum chunk (the SIMD kernels are fast enough
/// that small rows are cheaper serial), and segment boundaries land on
/// 64-byte blocks of the packed row so GF(2^4) nibble packing stays
/// byte-aligned and splits compose with the vector kernels instead of
/// forcing scalar tails mid-row.
void parallel_axpy(const gf::FieldView& f, std::byte* dst,
                   const std::byte* src, std::uint64_t c, std::size_t n,
                   util::ThreadPool* pool);

/// row *= c over n symbols, fanned out like parallel_axpy.
void parallel_scale(const gf::FieldView& f, std::byte* row, std::uint64_t c,
                    std::size_t n, util::ThreadPool* pool);

}  // namespace fairshare::linalg
