// Data-parallel row kernels: the same axpy/scale as gf::FieldView, split
// across a thread pool by symbol ranges.  Used by the progressive solver
// for large payload rows (Table II's dominant O(m k^2) work parallelizes
// perfectly because symbol positions are independent).
#pragma once

#include <cstddef>
#include <cstdint>

#include "gf/row_ops.hpp"
#include "util/thread_pool.hpp"

namespace fairshare::linalg {

/// dst ^= c * src over n symbols, fanned out over `pool` (nullptr or small
/// n falls back to the serial kernel).  Segment boundaries are kept even
/// so GF(2^4) nibble packing stays byte-aligned.
void parallel_axpy(const gf::FieldView& f, std::byte* dst,
                   const std::byte* src, std::uint64_t c, std::size_t n,
                   util::ThreadPool* pool);

/// row *= c over n symbols, fanned out like parallel_axpy.
void parallel_scale(const gf::FieldView& f, std::byte* row, std::uint64_t c,
                    std::size_t n, util::ThreadPool* pool);

}  // namespace fairshare::linalg
