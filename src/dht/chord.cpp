#include "dht/chord.hpp"

#include <cassert>

#include "crypto/sha256.hpp"

namespace fairshare::dht {

RingId ring_hash(std::span<const std::uint8_t> data) {
  const crypto::Sha256Digest d = crypto::Sha256::hash(data);
  RingId id = 0;
  for (int i = 0; i < 8; ++i) id = (id << 8) | d[static_cast<std::size_t>(i)];
  return id;
}

RingId ring_hash(std::string_view data) {
  return ring_hash(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

RingId ring_hash_u64(std::uint64_t value, std::uint64_t salt) {
  std::uint8_t buf[16];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<std::uint8_t>(value >> (8 * i));
    buf[8 + i] = static_cast<std::uint8_t>(salt >> (8 * i));
  }
  return ring_hash(std::span<const std::uint8_t>(buf, 16));
}

bool in_interval(RingId x, RingId from, RingId to) {
  if (from == to) return true;  // (a, a] wraps the whole ring
  if (from < to) return x > from && x <= to;
  return x > from || x <= to;  // wrapped interval
}

// ------------------------------------------------------------- ChordRing

bool ChordRing::join(RingId node) {
  if (!nodes_.insert(node).second) return false;
  rebuild();
  return true;
}

bool ChordRing::leave(RingId node) {
  if (nodes_.erase(node) == 0) return false;
  finger_.erase(node);
  rebuild();
  return true;
}

RingId ChordRing::successor(RingId key) const {
  assert(!nodes_.empty());
  const auto it = nodes_.lower_bound(key);
  return it != nodes_.end() ? *it : *nodes_.begin();
}

void ChordRing::rebuild() {
  finger_.clear();
  for (RingId node : nodes_) {
    auto& table = finger_[node];
    table.resize(kFingers);
    for (std::size_t i = 0; i < kFingers; ++i) {
      const RingId target = node + (RingId{1} << i);  // wraps mod 2^64
      table[i] = successor(target);
    }
  }
}

RouteStep ChordRing::route_step(RingId key, RingId self) const {
  assert(contains(self));
  const auto& table = finger_.at(self);
  const RingId next_node = table[0];  // immediate successor
  if (in_interval(key, self, next_node)) return {true, next_node};
  // Closest preceding finger of `key`.
  RingId forward = self;
  for (std::size_t i = kFingers; i-- > 0;) {
    const RingId f = table[i];
    if (f != self && in_interval(f, self, key - 1)) {
      forward = f;
      break;
    }
  }
  if (forward == self) forward = next_node;  // linear fallback
  return {false, forward};
}

LookupResult ChordRing::lookup(RingId key, RingId start) const {
  assert(contains(start));
  LookupResult result;
  RingId current = start;
  // Bounded walk (a correct ring terminates in O(log n); the bound guards
  // against pathological test inputs).
  for (std::size_t step = 0; step < nodes_.size() + kFingers; ++step) {
    const RouteStep hop = route_step(key, current);
    if (hop.done) {
      result.owner = hop.next;
      return result;
    }
    current = hop.next;
    ++result.hops;
  }
  result.owner = successor(key);  // unreachable on a consistent ring
  return result;
}

std::vector<RingId> ChordRing::successor_list(RingId node) const {
  assert(contains(node));
  std::vector<RingId> out;
  auto it = nodes_.find(node);
  for (std::size_t i = 0; i < kSuccessorListLength && out.size() + 1 < nodes_.size();
       ++i) {
    ++it;
    if (it == nodes_.end()) it = nodes_.begin();
    if (*it == node) break;
    out.push_back(*it);
  }
  return out;
}

std::vector<RingId> ChordRing::fingers(RingId node) const {
  const auto it = finger_.find(node);
  assert(it != finger_.end());
  return it->second;
}

// -------------------------------------------------------- ContentLocator

void ContentLocator::announce(std::uint64_t file_id, std::uint64_t peer) {
  records_[file_id].insert(peer);
  place(file_id);
}

void ContentLocator::withdraw(std::uint64_t file_id, std::uint64_t peer) {
  const auto it = records_.find(file_id);
  if (it == records_.end()) return;
  it->second.erase(peer);
  if (it->second.empty()) {
    records_.erase(it);
    for (auto& [node, files] : placement_) files.erase(file_id);
  }
}

void ContentLocator::place(std::uint64_t file_id) {
  if (ring_.size() == 0) return;
  const RingId primary = ring_.successor(key_for(file_id));
  placement_[primary].insert(file_id);
  for (RingId replica : ring_.successor_list(primary))
    placement_[replica].insert(file_id);
}

ContentLocator::LocateResult ContentLocator::locate(std::uint64_t file_id,
                                                    RingId start) const {
  LocateResult out;
  if (ring_.size() == 0) return out;
  const RingId key = key_for(file_id);
  const LookupResult route = ring_.lookup(key, start);
  out.hops = route.hops;

  // Read from the responsible node, falling back along its successor list
  // (each fallback costs one more hop).
  std::vector<RingId> holders{route.owner};
  const auto succ = ring_.successor_list(route.owner);
  holders.insert(holders.end(), succ.begin(), succ.end());
  for (const RingId node : holders) {
    const auto it = placement_.find(node);
    if (it != placement_.end() && it->second.count(file_id) != 0) {
      const auto rec = records_.find(file_id);
      if (rec != records_.end())
        out.peers.assign(rec->second.begin(), rec->second.end());
      return out;
    }
    ++out.hops;
  }
  return out;  // no replica found
}

void ContentLocator::handle_join(RingId node) {
  if (!ring_.join(node)) return;
  for (const auto& [file_id, peers] : records_) place(file_id);
}

void ContentLocator::handle_leave(RingId node) {
  if (!ring_.leave(node)) return;
  placement_.erase(node);
  if (ring_.size() == 0) return;
  // Re-replicate every record onto the new responsible nodes.
  for (const auto& [file_id, peers] : records_) place(file_id);
}

}  // namespace fairshare::dht
