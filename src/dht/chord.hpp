// Chord-style distributed hash table for content location.
//
// The paper assumes an out-of-band mechanism for finding which peers hold
// a file's coded messages, pointing at Chord/Pastry/Tapestry in its
// related work (Section II: DHTs "provide the important functionality of
// locating shared content on P2P networks", as PAST does over Pastry).
// This module supplies that substrate: a 64-bit identifier ring with
// finger-table routing, successor lists for fault tolerance, and a
// ContentLocator mapping file ids to the peers that store their messages.
//
// This is a protocol simulation (routing state and hop counting are real;
// there is no network IO), matching the repository's simulation substrate.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <string_view>
#include <vector>

namespace fairshare::dht {

/// Point on the 2^64 identifier ring.
using RingId = std::uint64_t;

/// SHA-256-based ring hash (first 8 bytes, big-endian).
RingId ring_hash(std::span<const std::uint8_t> data);
RingId ring_hash(std::string_view data);
/// Hash for numeric keys (file ids, peer indices + salt).
RingId ring_hash_u64(std::uint64_t value, std::uint64_t salt = 0);

/// True when `x` lies in the half-open ring interval (from, to].
bool in_interval(RingId x, RingId from, RingId to);

/// Result of a lookup: which node owns the key and how many routing hops
/// the iterative search took.
struct LookupResult {
  RingId owner = 0;
  std::size_t hops = 0;
};

/// One step of iterative routing, as a node would answer it over the
/// wire: either the owner is known (`done`, owner = successor(key)) or
/// the query should move to `next` (the closest preceding finger).
struct RouteStep {
  bool done = false;
  RingId next = 0;  ///< owner when done, else the node to ask next
};

/// A Chord ring over an explicit node set.
///
/// Nodes are identified by their RingId.  Fingers and successor lists are
/// maintained eagerly on join/leave (the simulation equivalent of Chord's
/// stabilization having converged), so lookups reflect steady-state
/// routing: O(log n) hops with high probability.
class ChordRing {
 public:
  static constexpr std::size_t kFingers = 64;
  static constexpr std::size_t kSuccessorListLength = 4;

  ChordRing() = default;

  /// Add a node; returns false if the id is already present.
  bool join(RingId node);
  /// Remove a node; returns false if absent.
  bool leave(RingId node);

  std::size_t size() const { return nodes_.size(); }
  bool contains(RingId node) const { return nodes_.count(node) != 0; }
  std::vector<RingId> nodes() const {
    return {nodes_.begin(), nodes_.end()};
  }

  /// The node responsible for `key`: successor(key).  Precondition: ring
  /// non-empty.
  RingId successor(RingId key) const;

  /// Iterative finger routing from `start` (must be a member): at each
  /// step the query moves to the closest preceding finger, exactly as a
  /// real Chord node would forward it.  Counts hops.
  LookupResult lookup(RingId key, RingId start) const;

  /// The single routing decision node `self` (must be a member) makes for
  /// `key` — the per-hop body of lookup(), exposed so a networked node
  /// can answer one iterative-routing request at a time: done when the
  /// key falls between self and its immediate successor, otherwise the
  /// closest preceding finger to forward to.
  RouteStep route_step(RingId key, RingId self) const;

  /// The `kSuccessorListLength` nodes following `node` (for replication
  /// and fault tolerance); fewer if the ring is small.
  std::vector<RingId> successor_list(RingId node) const;

  /// Finger table of a node (for tests): finger[i] = successor(node + 2^i).
  std::vector<RingId> fingers(RingId node) const;

 private:
  void rebuild();

  std::set<RingId> nodes_;
  // finger_[node][i] = successor(node + 2^i), rebuilt on churn.
  std::map<RingId, std::vector<RingId>> finger_;
};

/// Content-location service on the ring: file id -> set of peers storing
/// its coded messages.  Records are placed on the responsible node and
/// replicated to its successor list, so they survive `leave` of the
/// primary holder.
class ContentLocator {
 public:
  explicit ContentLocator(ChordRing ring) : ring_(std::move(ring)) {}

  ChordRing& ring() { return ring_; }
  const ChordRing& ring() const { return ring_; }

  /// Register that `peer` stores messages of `file_id`.
  void announce(std::uint64_t file_id, std::uint64_t peer);
  /// Remove a peer's announcement (e.g. it pruned its store).
  void withdraw(std::uint64_t file_id, std::uint64_t peer);

  /// Peers known to store the file, resolved by routing from `start`.
  /// Also reports the routing hops spent.
  struct LocateResult {
    std::vector<std::uint64_t> peers;
    std::size_t hops = 0;
  };
  LocateResult locate(std::uint64_t file_id, RingId start) const;

  /// A ring node departed: drop its replicas, re-replicate from survivors.
  void handle_leave(RingId node);
  /// A ring node arrived: join it and hand it the records it is now
  /// responsible for (stale extra replicas are left in place, as real
  /// Chord stabilization also tolerates).
  void handle_join(RingId node);

 private:
  RingId key_for(std::uint64_t file_id) const {
    return ring_hash_u64(file_id, /*salt=*/0x66696c65);  // "file"
  }
  void place(std::uint64_t file_id);

  ChordRing ring_;
  // Authoritative records (what a perfect network would know) ...
  std::map<std::uint64_t, std::set<std::uint64_t>> records_;
  // ... and their current placement: ring node -> file ids it replicates.
  std::map<RingId, std::set<std::uint64_t>> placement_;
};

}  // namespace fairshare::dht
