// Peer-side recoding — the design alternative the paper rejected.
//
// Practical network coding (Chou et al., the paper's [28]) and coded P2P
// storage (Acedanski et al., [33]; Gkantsidis-Rodriguez, [23]) have peers
// forward fresh random linear combinations of what they store.  The paper
// deliberately does NOT do this: "peers transmit exactly what was uploaded
// to their storage area", so peers need no computation and every message
// can be authenticated by an owner-stored digest.
//
// This module implements the rejected alternative so the trade-off can be
// measured (bench/ablation_recoding): recoding defeats the coupon-
// collector effect when peer stores overlap — almost every recoded packet
// is innovative — but costs peer CPU and forfeits per-message digest
// authentication (a recoded packet is new data the owner never hashed;
// only decode-time content verification can catch tampering).
//
// Secrecy is preserved: a recoded packet carries the combination vector
// alpha over *message ids*, not the secret betas.  Its effective
// coefficient row is sum_i alpha_i * beta_{id_i}, which only the secret
// holder can expand.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "coding/coefficients.hpp"
#include "coding/message.hpp"
#include "sim/rng.hpp"

namespace fairshare::coding {

/// A peer-generated combination of stored messages.
struct RecodedMessage {
  std::uint64_t file_id = 0;
  /// (source message id, alpha coefficient) terms; alphas are field
  /// elements of the file's field.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> combination;
  std::vector<std::byte> payload;  ///< sum_i alpha_i * Y_{id_i}

  /// Wire size: header + 16 bytes per combination term + payload.
  std::size_t wire_size() const {
    return 16 + combination.size() * 16 + payload.size();
  }
};

/// Runs on a peer; needs no secret.  Combines verbatim-stored messages of
/// one file into a fresh packet with coefficients drawn from `rng`.
class Recoder {
 public:
  explicit Recoder(const CodingParams& params) : params_(params) {}

  /// Random combination of `stored` (all must share one file id; at least
  /// one message).  Zero alphas are re-rolled so every term contributes.
  RecodedMessage recode(std::span<const EncodedMessage> stored,
                        sim::SplitMix64& rng) const;

 private:
  CodingParams params_;
};

/// Decoder-side expansion: the effective coefficient row of a recoded
/// packet, sum_i alpha_i * beta_{id_i}, packed like a normal row.
/// Requires the secret (via the CoefficientGenerator).
std::vector<std::byte> effective_row(const CoefficientGenerator& coeffs,
                                     const RecodedMessage& message,
                                     const CodingParams& params);

}  // namespace fairshare::coding
