// Batch decoder: the paper's literal decoding procedure.
//
// Section III-B: "a user requests a total of k messages ... and multiplies
// this by the inverse of the appropriate square sub-matrix of the
// coefficient matrix".  This decoder does exactly that — collect k
// messages, invert the k x k coefficient sub-matrix (O(k^3)), multiply it
// into the payload matrix (O(m k^2)) — in contrast to FileDecoder's
// progressive elimination, which folds messages in as they arrive and
// stops at rank k without a separate inversion pass.
//
// Both produce identical bytes; bench/ablation_decoder_strategy compares
// their costs and their latency profiles (batch cannot start work until
// the k-th message lands; progressive has already absorbed k-1 of them).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "coding/coefficients.hpp"
#include "coding/decoder.hpp"
#include "coding/message.hpp"
#include "obs/metrics.hpp"

namespace fairshare::coding {

class BatchDecoder {
 public:
  BatchDecoder(const SecretKey& secret, const FileInfo& info,
               bool require_digests = true);

  /// Buffer a message (authenticated like FileDecoder).  Returns the same
  /// AddResult vocabulary; `accepted` here means "buffered", since linear
  /// independence is only discovered at decode time.
  AddResult add(const EncodedMessage& message);

  std::size_t buffered() const { return messages_.size(); }
  bool ready() const { return messages_.size() >= info_.k; }

  /// Run the inversion + multiply.  Returns the file bytes, or nullopt if
  /// the buffered coefficient sub-matrix is singular (caller should fetch
  /// more messages and retry; over large q this is vanishingly rare).
  ///
  /// Chunked files (FileInfo::codec == CodecKind::chunked) have no global
  /// k x k system to invert; decode() instead feeds the buffer through a
  /// chunked::Decoder's per-class elimination, with the same
  /// nullopt-means-fetch-more contract when some class is still short.
  std::optional<std::vector<std::byte>> decode();

  /// Report into `registry`: a buffered-message gauge
  /// (fairshare_decoder_batch_buffered{user,file}), a decode()-time
  /// histogram (fairshare_decoder_batch_decode_ns{user,file}), and a
  /// "batch.decode" span per decode() call.  Off by default (no cost).
  void enable_metrics(obs::MetricsRegistry& registry, std::uint64_t user_id);

 private:
  FileInfo info_;
  SecretKey secret_;  // chunked decode builds its decoder lazily
  bool require_digests_;
  CoefficientGenerator coeffs_;
  std::vector<EncodedMessage> messages_;
  obs::Gauge* buffered_gauge_ = nullptr;     // null = metrics disabled
  obs::Histogram* decode_ns_ = nullptr;
  obs::SpanRing* span_ring_ = nullptr;
};

}  // namespace fairshare::coding
