// Merkle-tree message authentication for coded files.
//
// Alternative to the per-message MD5 digest table of Section III-C,
// implementing the paper's future-work goal of shrinking the metadata a
// user carries: the owner builds one Merkle tree over a batch of coded
// messages and the user carries only the 32-byte root (plus the leaf
// count).  Each stored message travels with its authentication path, which
// any downloader verifies against the root before feeding the decoder.
//
// Trade-off surfaced by bench/ablation_metadata: user-carried metadata
// drops from 16 bytes * n_messages to 36 bytes total, at the cost of
// 32 * ceil(log2 n) proof bytes per message on the wire.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coding/message.hpp"
#include "crypto/merkle.hpp"

namespace fairshare::coding {

/// A coded message plus the Merkle authentication data peers store and
/// forward alongside it.
struct AuthenticatedMessage {
  EncodedMessage message;
  std::uint32_t leaf_index = 0;
  std::vector<crypto::Sha256Digest> proof;

  /// Wire overhead versus a bare EncodedMessage.
  std::size_t auth_overhead_bytes() const { return 4 + proof.size() * 32; }
};

/// Owner side: builds the tree over a fixed batch of generated messages
/// (leaf order = batch order) and attaches proofs.
class MerkleAuthenticator {
 public:
  explicit MerkleAuthenticator(std::span<const EncodedMessage> messages);

  const crypto::Sha256Digest& root() const { return tree_.root(); }
  std::size_t leaf_count() const { return tree_.leaf_count(); }

  /// Proof-carrying copy of batch element `index`.
  AuthenticatedMessage attach(const EncodedMessage& message,
                              std::size_t index) const;

  /// Authenticate the whole batch in order.
  std::vector<AuthenticatedMessage> attach_all(
      std::span<const EncodedMessage> messages) const;

 private:
  crypto::MerkleTree tree_;
};

/// User side: 36 bytes of carried state replacing the digest table.
class MerkleVerifier {
 public:
  MerkleVerifier(const crypto::Sha256Digest& root, std::size_t leaf_count)
      : root_(root), leaf_count_(leaf_count) {}

  /// True iff the message bytes match the proof and the proof chains to
  /// the root at the claimed index.
  bool verify(const AuthenticatedMessage& am) const;

  const crypto::Sha256Digest& root() const { return root_; }
  std::size_t leaf_count() const { return leaf_count_; }

 private:
  crypto::Sha256Digest root_;
  std::size_t leaf_count_;
};

}  // namespace fairshare::coding
