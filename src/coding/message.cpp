#include "coding/message.hpp"

#include <cstring>

namespace fairshare::coding {

namespace {

void put_le64(std::byte* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out[i] = std::byte{static_cast<std::uint8_t>(v >> (8 * i))};
}

std::uint64_t get_le64(const std::byte* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(in[i]))
         << (8 * i);
  return v;
}

}  // namespace

std::vector<std::byte> EncodedMessage::serialize() const {
  std::vector<std::byte> wire(wire_size());
  put_le64(wire.data(), file_id);
  put_le64(wire.data() + 8, message_id);
  std::memcpy(wire.data() + 16, payload.data(), payload.size());
  return wire;
}

std::optional<EncodedMessage> EncodedMessage::deserialize(
    std::span<const std::byte> wire) {
  if (wire.size() < 16) return std::nullopt;
  EncodedMessage msg;
  msg.file_id = get_le64(wire.data());
  msg.message_id = get_le64(wire.data() + 8);
  msg.payload.assign(wire.begin() + 16, wire.end());
  return msg;
}

crypto::Md5Digest EncodedMessage::digest() const {
  crypto::Md5 h;
  std::byte header[16];
  put_le64(header, file_id);
  put_le64(header + 8, message_id);
  h.update(std::span<const std::byte>(header, 16));
  h.update(std::span<const std::byte>(payload));
  return h.finish();
}

}  // namespace fairshare::coding
