#include "coding/codec.hpp"

namespace fairshare::coding {

namespace {

std::variant<FileDecoder, chunked::Decoder> make_impl(
    const SecretKey& secret, const FileInfo& info, bool require_digests) {
  if (info.codec == CodecKind::chunked)
    return std::variant<FileDecoder, chunked::Decoder>(
        std::in_place_type<chunked::Decoder>, secret, info, require_digests);
  return std::variant<FileDecoder, chunked::Decoder>(
      std::in_place_type<FileDecoder>, secret, info, require_digests);
}

}  // namespace

CodecDecoder::CodecDecoder(const SecretKey& secret, const FileInfo& info,
                           bool require_digests)
    : kind_(info.codec), impl_(make_impl(secret, info, require_digests)) {}

AddResult CodecDecoder::add(const EncodedMessage& message) {
  return std::visit([&](auto& d) { return d.add(message); }, impl_);
}

AddResult CodecDecoder::add_recoded(const RecodedMessage& message) {
  return std::visit([&](auto& d) { return d.add_recoded(message); }, impl_);
}

void CodecDecoder::add_digest(std::uint64_t message_id,
                              const crypto::Md5Digest& digest) {
  std::visit([&](auto& d) { d.add_digest(message_id, digest); }, impl_);
}

void CodecDecoder::set_thread_pool(util::ThreadPool* pool) {
  std::visit([&](auto& d) { d.set_thread_pool(pool); }, impl_);
}

void CodecDecoder::enable_metrics(obs::MetricsRegistry& registry,
                                  std::uint64_t user_id) {
  std::visit([&](auto& d) { d.enable_metrics(registry, user_id); }, impl_);
}

bool CodecDecoder::complete() const {
  return std::visit([](const auto& d) { return d.complete(); }, impl_);
}

std::size_t CodecDecoder::rank() const {
  return std::visit([](const auto& d) { return d.rank(); }, impl_);
}

std::size_t CodecDecoder::k() const {
  return std::visit([](const auto& d) { return d.k(); }, impl_);
}

std::size_t CodecDecoder::accepted() const {
  return std::visit([](const auto& d) { return d.accepted(); }, impl_);
}

std::size_t CodecDecoder::rejected_auth() const {
  return std::visit([](const auto& d) { return d.rejected_auth(); }, impl_);
}

std::size_t CodecDecoder::non_innovative() const {
  return std::visit([](const auto& d) { return d.non_innovative(); }, impl_);
}

std::vector<std::byte> CodecDecoder::reconstruct() const {
  return std::visit([](const auto& d) { return d.reconstruct(); }, impl_);
}

chunked::Decoder* CodecDecoder::chunked_decoder() {
  return std::get_if<chunked::Decoder>(&impl_);
}

const chunked::Decoder* CodecDecoder::chunked_decoder() const {
  return std::get_if<chunked::Decoder>(&impl_);
}

}  // namespace fairshare::coding
