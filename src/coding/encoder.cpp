#include "coding/encoder.hpp"

#include <cassert>
#include <cstring>

namespace fairshare::coding {

FileEncoder::FileEncoder(const SecretKey& secret, std::uint64_t file_id,
                         std::span<const std::byte> data,
                         const CodingParams& params)
    : secret_(secret),
      params_(params),
      k_(chunks_for_bytes(data.size(), params)),
      chunk_bytes_(params.message_bytes()),
      coeffs_(secret, file_id, params, k_),
      batch_rank_(params.field, k_) {
  assert(k_ > 0 && "empty files cannot be encoded");
  assert((params.field != gf::FieldId::gf2_4 || params.m % 2 == 0) &&
         "GF(2^4) requires even m for byte-aligned chunks");

  // Lay the file out as k chunks of m packed symbols; the packed wire
  // representation is plain little-endian bytes, so this is a copy + pad.
  chunks_.assign(k_ * chunk_bytes_, std::byte{0});
  std::memcpy(chunks_.data(), data.data(), data.size());

  info_.file_id = file_id;
  info_.original_bytes = data.size();
  info_.params = params;
  info_.k = k_;
  info_.content_digest = crypto::Md5::hash(data);
}

EncodedMessage FileEncoder::next_message() {
  const auto& f = gf::field_view(params_.field);
  for (;;) {
    const std::uint64_t candidate = next_id_++;
    const std::vector<std::uint64_t> symbols = coeffs_.row_symbols(candidate);
    if (!batch_rank_.add_row(symbols)) continue;  // dependent; skip this id
    if (batch_rank_.full())
      batch_rank_ = linalg::IncrementalRank(params_.field, k_);

    EncodedMessage msg;
    msg.file_id = info_.file_id;
    msg.message_id = candidate;
    msg.payload.assign(chunk_bytes_, std::byte{0});
    for (std::size_t j = 0; j < k_; ++j) {
      if (symbols[j] != 0)
        f.axpy(msg.payload.data(), chunks_.data() + j * chunk_bytes_,
               symbols[j], params_.m);
    }
    info_.message_digests.emplace(candidate, msg.digest());
    ++generated_;
    return msg;
  }
}

std::vector<EncodedMessage> FileEncoder::generate(std::size_t count) {
  std::vector<EncodedMessage> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(next_message());
  return out;
}

}  // namespace fairshare::coding
