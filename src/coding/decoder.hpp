// File decoder: collects coded messages from any mix of peers, regenerates
// their secret coefficient rows, and reconstructs the file the moment k
// innovative messages have arrived (Section III-B).
//
// Authentication: when the FileInfo carries per-message MD5 digests, every
// incoming message is checked before it touches the solver, so a malicious
// peer "injecting fake messages into the network" (Section III-C) is
// rejected rather than corrupting the decode.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "coding/coefficients.hpp"
#include "coding/message.hpp"
#include "coding/recoding.hpp"
#include "linalg/progressive.hpp"
#include "obs/metrics.hpp"

namespace fairshare::coding {

/// Outcome of feeding one message to the decoder.
enum class AddResult {
  accepted,        ///< innovative; rank increased
  non_innovative,  ///< authentic but linearly dependent on prior messages
  bad_digest,      ///< failed MD5 authentication (or unknown message id)
  wrong_file,      ///< file_id mismatch
  bad_size,        ///< payload length does not match m
  already_complete ///< decode finished; message ignored
};

class FileDecoder {
 public:
  /// `require_digests`: when true (default), messages whose id has no
  /// digest in `info` are rejected — the paper's download-time
  /// authentication.  Set false only for experiments that model a user who
  /// did not carry the digest table.
  FileDecoder(const SecretKey& secret, const FileInfo& info,
              bool require_digests = true);

  AddResult add(const EncodedMessage& message);

  /// Fold in a peer-recoded packet (recoding.hpp).  Its effective
  /// coefficient row is expanded from the secret.  NOTE: no per-message
  /// digest check is possible — the owner never hashed this combination —
  /// which is precisely why the paper's design forwards verbatim; callers
  /// must verify the final content digest instead.
  AddResult add_recoded(const RecodedMessage& message);

  /// Parallelize payload row operations over `pool` (see
  /// linalg::ProgressiveSolver::set_thread_pool).
  void set_thread_pool(util::ThreadPool* pool) {
    solver_.set_thread_pool(pool);
  }

  /// Report decode progress into `registry`: a rank gauge
  /// (fairshare_decoder_rank{user,file}) and a per-message elimination-time
  /// histogram (fairshare_decoder_eliminate_ns{user,file}).  Off by default
  /// so the bare decode pipeline carries zero instrumentation cost; when
  /// enabled the cost is two clock reads plus a histogram record per
  /// innovative-candidate row.
  void enable_metrics(obs::MetricsRegistry& registry, std::uint64_t user_id);

  /// Register the digest of a message generated after the FileInfo
  /// snapshot was taken (e.g. fetched live from the owning peer while it
  /// encodes fresh messages on demand).
  void add_digest(std::uint64_t message_id, const crypto::Md5Digest& digest) {
    info_.message_digests[message_id] = digest;
  }

  bool complete() const { return solver_.complete(); }
  std::size_t rank() const { return solver_.rank(); }
  std::size_t k() const { return info_.k; }

  std::size_t accepted() const { return accepted_; }
  std::size_t rejected_auth() const { return rejected_auth_; }
  std::size_t non_innovative() const { return non_innovative_; }

  /// Reconstructed file (original_bytes long).  Precondition: complete().
  std::vector<std::byte> reconstruct() const;

 private:
  FileInfo info_;
  bool require_digests_;
  CoefficientGenerator coeffs_;
  linalg::ProgressiveSolver solver_;
  std::size_t accepted_ = 0;
  std::size_t rejected_auth_ = 0;
  std::size_t non_innovative_ = 0;
  obs::Gauge* rank_gauge_ = nullptr;       // null = metrics disabled
  obs::Histogram* eliminate_ns_ = nullptr;
};

}  // namespace fairshare::coding
