// Encoded message format and file metadata.
//
// Figure 3 of the paper: a stored data file is a sequence of
// "pre-fabricated" messages, each an 8-byte file-id, an 8-byte (plain
// text) message-id, and an m-symbol encoded payload.  Peers forward these
// verbatim; only the owner (holder of the secret key) can regenerate the
// coefficient row beta_i from the message-id and decode.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "coding/params.hpp"
#include "crypto/md5.hpp"

namespace fairshare::coding {

/// 256-bit secret known only to the encoding peer (Section III-A).
using SecretKey = std::array<std::uint8_t, 32>;

/// One coded message Y_i (Equation 1) plus its plain-text identifiers.
struct EncodedMessage {
  std::uint64_t file_id = 0;
  std::uint64_t message_id = 0;
  std::vector<std::byte> payload;  ///< m packed field symbols

  /// Wire size: 16 header bytes + payload (Figure 3).
  std::size_t wire_size() const { return 16 + payload.size(); }

  /// Serialize to the Figure 3 wire layout (little-endian ids).
  std::vector<std::byte> serialize() const;
  /// Parse a wire buffer; nullopt if it is shorter than a header.
  static std::optional<EncodedMessage> deserialize(
      std::span<const std::byte> wire);

  /// MD5 over the full wire image; this is the digest the owner stores per
  /// message for download-time authentication (Section III-C).
  crypto::Md5Digest digest() const;
};

/// Everything a user must carry to decode a file remotely: the public
/// geometry plus, if the owning peer is offline, the per-message MD5
/// digests ("this information needs to be carried by the user",
/// Section III-C).  The secret key itself is held separately.
struct FileInfo {
  std::uint64_t file_id = 0;
  std::uint64_t original_bytes = 0;  ///< unpadded file length
  CodingParams params;
  std::size_t k = 0;  ///< chunks (decoding needs k innovative messages)
  /// Which codec generated the messages (selects FileDecoder vs
  /// chunked::Decoder at the receiving end; peers forward either verbatim).
  /// On the wire this travels as a versioned trailer whose absence means
  /// dense, so pre-chunked metadata still decodes.
  CodecKind codec = CodecKind::dense;
  /// Class geometry + schedule seed; meaningful only when codec ==
  /// CodecKind::chunked.
  ChunkedSchedule schedule;
  /// MD5 of the plain file contents; lets a decoder double-check its
  /// reconstruction and lets the update planner (update.hpp) detect which
  /// 1 MB units of a modified file actually changed.
  crypto::Md5Digest content_digest{};

  /// message_id -> MD5 of the full wire image.
  std::unordered_map<std::uint64_t, crypto::Md5Digest> message_digests;

  /// Digest table size in bytes (the paper's "128 hash bytes per megabyte"
  /// accounting for k = 8).
  std::size_t digest_bytes() const { return message_digests.size() * 16; }
};

}  // namespace fairshare::coding
