#include "coding/recoding.hpp"

#include <cassert>

namespace fairshare::coding {

RecodedMessage Recoder::recode(std::span<const EncodedMessage> stored,
                               sim::SplitMix64& rng) const {
  assert(!stored.empty());
  const auto& f = gf::field_view(params_.field);

  RecodedMessage out;
  out.file_id = stored.front().file_id;
  out.payload.assign(params_.message_bytes(), std::byte{0});
  out.combination.reserve(stored.size());
  for (const EncodedMessage& msg : stored) {
    assert(msg.file_id == out.file_id);
    assert(msg.payload.size() == params_.message_bytes());
    std::uint64_t alpha = 0;
    while (alpha == 0) alpha = rng.next() & (f.order - 1);
    out.combination.emplace_back(msg.message_id, alpha);
    f.axpy(out.payload.data(), msg.payload.data(), alpha, params_.m);
  }
  return out;
}

std::vector<std::byte> effective_row(const CoefficientGenerator& coeffs,
                                     const RecodedMessage& message,
                                     const CodingParams& params) {
  const auto& f = gf::field_view(params.field);
  std::vector<std::byte> row(f.row_bytes(coeffs.k()), std::byte{0});
  for (const auto& [mid, alpha] : message.combination) {
    const std::vector<std::byte> beta = coeffs.row(mid);
    f.axpy(row.data(), beta.data(), alpha, coeffs.k());
  }
  return row;
}

}  // namespace fairshare::coding
