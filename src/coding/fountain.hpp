// LT fountain codes — the "digital fountain" baseline of the paper's
// related work (Section II: "Erasure code type approaches such as digital
// fountain [18] have been proposed for large scale content distribution").
//
// Implemented to compare against random linear coding on decoding overhead:
// an LT decoder needs k + O(sqrt(k) ln^2(k/delta)) symbols (peeling over
// the robust soliton degree distribution, XOR-only), while RLNC needs
// exactly k (after screening) at the price of field arithmetic.  The
// ablation bench/ablation_fountain measures both sides.
//
// Encoding: each output symbol XORs `d` source blocks, where d is drawn
// from the robust soliton distribution and the d blocks are chosen
// uniformly; the (seed-derived) choices ride along in the symbol header so
// the decoder can rebuild the bipartite graph.  Decoding: classic peeling
// (release degree-1 symbols, substitute, repeat).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sim/rng.hpp"

namespace fairshare::coding {

/// Robust soliton degree distribution over {1..k}.
class RobustSoliton {
 public:
  /// c and delta are the usual tuning knobs (Luby 2002); defaults follow
  /// common practice.
  RobustSoliton(std::size_t k, double c = 0.1, double delta = 0.5);

  /// Sample a degree.
  std::size_t sample(sim::SplitMix64& rng) const;

  /// Probability mass of degree d (for tests).
  double pmf(std::size_t d) const { return pmf_[d]; }
  std::size_t k() const { return k_; }

 private:
  std::size_t k_;
  std::vector<double> pmf_;  // index 1..k
  std::vector<double> cdf_;
};

/// One LT-coded symbol: the XOR of `sources` blocks.
struct LtSymbol {
  std::vector<std::uint32_t> sources;  ///< distinct source-block indices
  std::vector<std::byte> payload;      ///< XOR of those blocks
};

/// LT encoder over fixed-size blocks.
class LtEncoder {
 public:
  /// Splits `data` into k blocks of `block_bytes` (zero-padded tail).
  LtEncoder(std::span<const std::byte> data, std::size_t block_bytes);

  std::size_t k() const { return k_; }
  std::size_t block_bytes() const { return block_bytes_; }

  /// Next coded symbol; degree/source choices from `rng`.
  LtSymbol next_symbol(sim::SplitMix64& rng) const;

 private:
  std::size_t block_bytes_;
  std::size_t k_;
  std::size_t original_bytes_;
  std::vector<std::byte> blocks_;  // k * block_bytes
  RobustSoliton soliton_;

  friend class LtDecoder;
};

/// Peeling decoder.
class LtDecoder {
 public:
  LtDecoder(std::size_t k, std::size_t block_bytes,
            std::size_t original_bytes);

  /// Feed one symbol; returns true when it (eventually) contributed.
  void add(LtSymbol symbol);

  bool complete() const { return decoded_count_ == k_; }
  std::size_t decoded_blocks() const { return decoded_count_; }
  std::size_t symbols_received() const { return received_; }

  /// Precondition: complete().
  std::vector<std::byte> reconstruct() const;

 private:
  void peel();

  std::size_t k_;
  std::size_t block_bytes_;
  std::size_t original_bytes_;
  std::size_t decoded_count_ = 0;
  std::size_t received_ = 0;
  std::vector<std::byte> blocks_;   // decoded blocks
  std::vector<bool> known_;         // which blocks are decoded
  std::vector<LtSymbol> pending_;   // symbols with >1 unknown source
};

}  // namespace fairshare::coding
