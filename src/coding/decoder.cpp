#include "coding/decoder.hpp"

#include <cassert>
#include <cstring>

namespace fairshare::coding {

FileDecoder::FileDecoder(const SecretKey& secret, const FileInfo& info,
                         bool require_digests)
    : info_(info),
      require_digests_(require_digests),
      coeffs_(secret, info.file_id, info.params, info.k),
      solver_(info.params.field, info.k, info.params.m) {}

AddResult FileDecoder::add(const EncodedMessage& message) {
  if (solver_.complete()) return AddResult::already_complete;
  if (message.file_id != info_.file_id) return AddResult::wrong_file;
  if (message.payload.size() != info_.params.message_bytes())
    return AddResult::bad_size;

  if (require_digests_ || !info_.message_digests.empty()) {
    const auto it = info_.message_digests.find(message.message_id);
    if (it == info_.message_digests.end()) {
      if (require_digests_) {
        ++rejected_auth_;
        return AddResult::bad_digest;
      }
    } else if (message.digest() != it->second) {
      ++rejected_auth_;
      return AddResult::bad_digest;
    }
  }

  const std::vector<std::byte> coeff_row = coeffs_.row(message.message_id);
  if (!solver_.add_row(coeff_row.data(), message.payload.data())) {
    ++non_innovative_;
    return AddResult::non_innovative;
  }
  ++accepted_;
  return AddResult::accepted;
}

AddResult FileDecoder::add_recoded(const RecodedMessage& message) {
  if (solver_.complete()) return AddResult::already_complete;
  if (message.file_id != info_.file_id) return AddResult::wrong_file;
  if (message.payload.size() != info_.params.message_bytes())
    return AddResult::bad_size;
  const std::vector<std::byte> row =
      effective_row(coeffs_, message, info_.params);
  if (!solver_.add_row(row.data(), message.payload.data())) {
    ++non_innovative_;
    return AddResult::non_innovative;
  }
  ++accepted_;
  return AddResult::accepted;
}

std::vector<std::byte> FileDecoder::reconstruct() const {
  assert(complete());
  const std::size_t chunk_bytes = info_.params.message_bytes();
  std::vector<std::byte> out(info_.k * chunk_bytes);
  for (std::size_t i = 0; i < info_.k; ++i)
    std::memcpy(out.data() + i * chunk_bytes, solver_.chunk(i), chunk_bytes);
  out.resize(info_.original_bytes);
  return out;
}

}  // namespace fairshare::coding
