#include "coding/decoder.hpp"

#include <cassert>
#include <cstring>

#include "obs/trace.hpp"

namespace fairshare::coding {

FileDecoder::FileDecoder(const SecretKey& secret, const FileInfo& info,
                         bool require_digests)
    : info_(info),
      require_digests_(require_digests),
      coeffs_(secret, info.file_id, info.params, info.k),
      solver_(info.params.field, info.k, info.params.m) {}

AddResult FileDecoder::add(const EncodedMessage& message) {
  if (solver_.complete()) return AddResult::already_complete;
  if (message.file_id != info_.file_id) return AddResult::wrong_file;
  if (message.payload.size() != info_.params.message_bytes())
    return AddResult::bad_size;

  if (require_digests_ || !info_.message_digests.empty()) {
    const auto it = info_.message_digests.find(message.message_id);
    if (it == info_.message_digests.end()) {
      if (require_digests_) {
        ++rejected_auth_;
        return AddResult::bad_digest;
      }
    } else if (message.digest() != it->second) {
      ++rejected_auth_;
      return AddResult::bad_digest;
    }
  }

  const std::vector<std::byte> coeff_row = coeffs_.row(message.message_id);
  const std::uint64_t t0 = eliminate_ns_ ? obs::monotonic_ns() : 0;
  const bool innovative =
      solver_.add_row(coeff_row.data(), message.payload.data());
  if (eliminate_ns_) {
    eliminate_ns_->record(obs::monotonic_ns() - t0);
    rank_gauge_->set(static_cast<double>(solver_.rank()));
  }
  if (!innovative) {
    ++non_innovative_;
    return AddResult::non_innovative;
  }
  ++accepted_;
  return AddResult::accepted;
}

void FileDecoder::enable_metrics(obs::MetricsRegistry& registry,
                                 std::uint64_t user_id) {
  // The codec label splits dense and chunked (chunked.hpp) decode series
  // apart in one registry; exporters see two time series per (file, user).
  const obs::LabelList labels = {{"file", std::to_string(info_.file_id)},
                                 {"user", std::to_string(user_id)},
                                 {"codec", "dense"}};
  rank_gauge_ = &registry.gauge("fairshare_decoder_rank", labels);
  eliminate_ns_ = &registry.histogram("fairshare_decoder_eliminate_ns", labels);
  rank_gauge_->set(static_cast<double>(solver_.rank()));
}

AddResult FileDecoder::add_recoded(const RecodedMessage& message) {
  if (solver_.complete()) return AddResult::already_complete;
  if (message.file_id != info_.file_id) return AddResult::wrong_file;
  if (message.payload.size() != info_.params.message_bytes())
    return AddResult::bad_size;
  const std::vector<std::byte> row =
      effective_row(coeffs_, message, info_.params);
  const std::uint64_t t0 = eliminate_ns_ ? obs::monotonic_ns() : 0;
  const bool innovative = solver_.add_row(row.data(), message.payload.data());
  if (eliminate_ns_) {
    eliminate_ns_->record(obs::monotonic_ns() - t0);
    rank_gauge_->set(static_cast<double>(solver_.rank()));
  }
  if (!innovative) {
    ++non_innovative_;
    return AddResult::non_innovative;
  }
  ++accepted_;
  return AddResult::accepted;
}

std::vector<std::byte> FileDecoder::reconstruct() const {
  assert(complete());
  const std::size_t chunk_bytes = info_.params.message_bytes();
  std::vector<std::byte> out(info_.k * chunk_bytes);
  for (std::size_t i = 0; i < info_.k; ++i)
    std::memcpy(out.data() + i * chunk_bytes, solver_.chunk(i), chunk_bytes);
  out.resize(info_.original_bytes);
  return out;
}

}  // namespace fairshare::coding
