// Incremental updates of shared files (paper future work, Section VI-A).
//
// "Such a system would also require an efficient means of handling rapid
// changes and modifications of data (in the current incarnation,
// modifications have to be re-encoded and re-transmitted to the network)."
//
// Because Section III-D already splits large files into independently
// encoded 1 MB units, a modification only invalidates the units whose
// bytes changed.  plan_update() diffs new content against the per-unit
// content digests in the carried metadata; apply_update() re-encodes only
// those units (under fresh file ids, so peers' stored messages for
// unchanged units stay valid) and produces the updated combined metadata.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "coding/chunker.hpp"

namespace fairshare::coding {

/// Which units of a modified file must be re-encoded and re-disseminated.
struct UpdatePlan {
  std::vector<std::size_t> changed_units;  ///< indices in the NEW layout
  std::size_t new_unit_count = 0;
  std::size_t old_unit_count = 0;
  std::size_t unit_bytes = 0;

  std::size_t unchanged_units() const {
    return new_unit_count - changed_units.size();
  }

  /// Coded bytes that must be re-disseminated to `peers` peers (k messages
  /// per peer per changed unit).
  std::size_t retransmit_bytes(std::size_t peers,
                               const CodingParams& params) const;
  /// What a naive full re-share would cost.
  std::size_t full_retransmit_bytes(std::size_t peers,
                                    const CodingParams& params) const;
};

/// Diff `new_data` against the metadata of the currently shared version.
/// A unit is "changed" when its MD5 differs, it is new (beyond the old
/// length), or its length changed (trailing unit growth/shrink).
UpdatePlan plan_update(const ChunkedFileInfo& current,
                       std::span<const std::byte> new_data);

/// The re-encoded version: fresh encoders for changed units plus the full
/// updated metadata (unchanged units keep their old FileInfo verbatim).
struct FileUpdate {
  ChunkedFileInfo info;
  /// One encoder per changed unit, aligned with `changed_units`.
  std::vector<std::unique_ptr<FileEncoder>> encoders;
  std::vector<std::size_t> changed_units;
};

/// Re-encode the changed units of `new_data` under file ids
/// `new_version_base_id + unit`.  The coding parameters are taken from the
/// current metadata.  Precondition: every unit of `current` used the same
/// CodingParams (true for ChunkedEncoder output).
FileUpdate apply_update(const SecretKey& secret,
                        const ChunkedFileInfo& current,
                        std::span<const std::byte> new_data,
                        std::uint64_t new_version_base_id);

}  // namespace fairshare::coding
