#include "coding/fountain.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

namespace fairshare::coding {

// ---------------------------------------------------------- RobustSoliton

RobustSoliton::RobustSoliton(std::size_t k, double c, double delta) : k_(k) {
  assert(k >= 1);
  const double kd = static_cast<double>(k);
  // Ideal soliton rho(d).
  std::vector<double> rho(k + 1, 0.0);
  rho[1] = 1.0 / kd;
  for (std::size_t d = 2; d <= k; ++d)
    rho[d] = 1.0 / (static_cast<double>(d) * static_cast<double>(d - 1));
  // Robust addition tau(d) with spike at k/R.
  const double big_r = c * std::log(kd / delta) * std::sqrt(kd);
  std::vector<double> tau(k + 1, 0.0);
  if (big_r >= 1.0 && k >= 2) {
    const auto spike = static_cast<std::size_t>(
        std::max(1.0, std::min(kd, std::floor(kd / big_r))));
    for (std::size_t d = 1; d < spike; ++d)
      tau[d] = big_r / (static_cast<double>(d) * kd);
    tau[spike] = big_r * std::log(big_r / delta) / kd;
    if (tau[spike] < 0) tau[spike] = 0;
  }
  double beta = 0.0;
  for (std::size_t d = 1; d <= k; ++d) beta += rho[d] + tau[d];
  pmf_.assign(k + 1, 0.0);
  cdf_.assign(k + 1, 0.0);
  double acc = 0.0;
  for (std::size_t d = 1; d <= k; ++d) {
    pmf_[d] = (rho[d] + tau[d]) / beta;
    acc += pmf_[d];
    cdf_[d] = acc;
  }
}

std::size_t RobustSoliton::sample(sim::SplitMix64& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin() + 1, cdf_.end(), u);
  const auto d = static_cast<std::size_t>(it - cdf_.begin());
  return std::min(d, k_);
}

// -------------------------------------------------------------- LtEncoder

LtEncoder::LtEncoder(std::span<const std::byte> data, std::size_t block_bytes)
    : block_bytes_(block_bytes),
      k_((data.size() + block_bytes - 1) / block_bytes),
      original_bytes_(data.size()),
      soliton_(std::max<std::size_t>(k_, 1)) {
  assert(block_bytes >= 1);
  assert(!data.empty());
  blocks_.assign(k_ * block_bytes_, std::byte{0});
  std::memcpy(blocks_.data(), data.data(), data.size());
}

LtSymbol LtEncoder::next_symbol(sim::SplitMix64& rng) const {
  const std::size_t degree = soliton_.sample(rng);
  LtSymbol symbol;
  symbol.sources.reserve(degree);
  // Sample `degree` distinct blocks.
  while (symbol.sources.size() < degree) {
    const auto pick = static_cast<std::uint32_t>(rng.next_below(k_));
    if (std::find(symbol.sources.begin(), symbol.sources.end(), pick) ==
        symbol.sources.end())
      symbol.sources.push_back(pick);
  }
  symbol.payload.assign(block_bytes_, std::byte{0});
  for (std::uint32_t src : symbol.sources) {
    const std::byte* block = blocks_.data() + src * block_bytes_;
    for (std::size_t i = 0; i < block_bytes_; ++i)
      symbol.payload[i] ^= block[i];
  }
  return symbol;
}

// -------------------------------------------------------------- LtDecoder

LtDecoder::LtDecoder(std::size_t k, std::size_t block_bytes,
                     std::size_t original_bytes)
    : k_(k),
      block_bytes_(block_bytes),
      original_bytes_(original_bytes),
      blocks_(k * block_bytes, std::byte{0}),
      known_(k, false) {}

void LtDecoder::add(LtSymbol symbol) {
  if (complete()) return;
  ++received_;
  // Substitute already-known sources out of the symbol immediately.
  auto it = symbol.sources.begin();
  while (it != symbol.sources.end()) {
    if (known_[*it]) {
      const std::byte* block = blocks_.data() + *it * block_bytes_;
      for (std::size_t i = 0; i < block_bytes_; ++i)
        symbol.payload[i] ^= block[i];
      it = symbol.sources.erase(it);
    } else {
      ++it;
    }
  }
  if (symbol.sources.empty()) return;  // fully redundant
  pending_.push_back(std::move(symbol));
  peel();
}

void LtDecoder::peel() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t s = 0; s < pending_.size();) {
      LtSymbol& sym = pending_[s];
      // Drop sources that became known since queuing.
      auto it = sym.sources.begin();
      while (it != sym.sources.end()) {
        if (known_[*it]) {
          const std::byte* block = blocks_.data() + *it * block_bytes_;
          for (std::size_t i = 0; i < block_bytes_; ++i)
            sym.payload[i] ^= block[i];
          it = sym.sources.erase(it);
        } else {
          ++it;
        }
      }
      if (sym.sources.empty()) {
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(s));
        continue;
      }
      if (sym.sources.size() == 1) {
        // Release: this symbol IS the remaining block.
        const std::uint32_t src = sym.sources.front();
        std::memcpy(blocks_.data() + src * block_bytes_, sym.payload.data(),
                    block_bytes_);
        known_[src] = true;
        ++decoded_count_;
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(s));
        progress = true;
        continue;
      }
      ++s;
    }
  }
}

std::vector<std::byte> LtDecoder::reconstruct() const {
  assert(complete());
  std::vector<std::byte> out = blocks_;
  out.resize(original_bytes_);
  return out;
}

}  // namespace fairshare::coding
