#include "coding/params.hpp"

#include "gf/row_ops.hpp"

namespace fairshare::coding {

const char* to_string(CodecKind kind) {
  switch (kind) {
    case CodecKind::dense: return "dense";
    case CodecKind::chunked: return "chunked";
  }
  return "unknown";
}

std::size_t CodingParams::message_bytes() const {
  return gf::field_view(field).row_bytes(m);
}

std::size_t chunks_for_bytes(std::size_t bytes, const CodingParams& params) {
  const std::size_t bits_per_chunk = params.m * params.bits();
  const std::size_t total_bits = bytes * 8;
  return (total_bits + bits_per_chunk - 1) / bits_per_chunk;
}

}  // namespace fairshare::coding
