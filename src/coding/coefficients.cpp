#include "coding/coefficients.hpp"

#include "crypto/chacha20.hpp"
#include "crypto/sha256.hpp"

namespace fairshare::coding {

namespace {

// 256-bit ChaCha20 key = SHA-256(secret || "fairshare-coef" || file_id ||
// message_id); the message id is the "cryptographic hash of i" seed input
// the paper describes.
crypto::Sha256Digest derive_key(const SecretKey& secret, std::uint64_t file_id,
                                std::uint64_t message_id) {
  crypto::Sha256 h;
  h.update(std::span<const std::uint8_t>(secret.data(), secret.size()));
  static constexpr char kLabel[] = "fairshare-coef";
  h.update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kLabel), sizeof(kLabel) - 1));
  std::uint8_t ids[16];
  for (int i = 0; i < 8; ++i) {
    ids[i] = static_cast<std::uint8_t>(file_id >> (8 * i));
    ids[8 + i] = static_cast<std::uint8_t>(message_id >> (8 * i));
  }
  h.update(std::span<const std::uint8_t>(ids, 16));
  return h.finish();
}

}  // namespace

CoefficientGenerator::CoefficientGenerator(const SecretKey& secret,
                                           std::uint64_t file_id,
                                           const CodingParams& params,
                                           std::size_t k)
    : secret_(secret), file_id_(file_id), field_(params.field), k_(k) {}

std::vector<std::byte> CoefficientGenerator::row(
    std::uint64_t message_id) const {
  const auto& f = gf::field_view(field_);
  const crypto::Sha256Digest key = derive_key(secret_, file_id_, message_id);
  const std::array<std::uint8_t, crypto::ChaCha20::kNonceSize> nonce{};
  crypto::ChaCha20 rng(std::span<const std::uint8_t, 32>(key), nonce);

  std::vector<std::byte> packed(f.row_bytes(k_), std::byte{0});
  // Symbol widths are powers of two <= 32 bits, so raw keystream bits are
  // already uniform over F_q; no rejection needed.
  for (std::size_t j = 0; j < k_; ++j) {
    std::uint64_t v;
    switch (field_) {
      case gf::FieldId::gf2_4: v = rng.next_byte() & 0xF; break;
      case gf::FieldId::gf2_8: v = rng.next_byte(); break;
      case gf::FieldId::gf2_16:
        v = rng.next_byte() | (std::uint64_t{rng.next_byte()} << 8);
        break;
      default: v = rng.next_u32(); break;
    }
    f.set(packed.data(), j, v);
  }
  return packed;
}

std::vector<std::uint64_t> CoefficientGenerator::row_symbols(
    std::uint64_t message_id) const {
  const auto& f = gf::field_view(field_);
  const std::vector<std::byte> packed = row(message_id);
  std::vector<std::uint64_t> out(k_);
  for (std::size_t j = 0; j < k_; ++j) out[j] = f.get(packed.data(), j);
  return out;
}

}  // namespace fairshare::coding
