// Coding parameters (q, m, k) and the arithmetic linking them.
//
// Section III-A: a file of b bits is split into k chunks, each an m-element
// vector over F_q with q = 2^p and m*p*k = b.  Table I of the paper
// tabulates k for 1 MB of data across the (q, m) grid; messages_required()
// reproduces that table.
#pragma once

#include <cstddef>
#include <cstdint>

#include "gf/field_id.hpp"

namespace fairshare::coding {

/// Field and message-length choice for one encoded file.
struct CodingParams {
  gf::FieldId field = gf::FieldId::gf2_32;  ///< q = 2^p
  std::size_t m = 1u << 15;                 ///< symbols per message

  unsigned bits() const { return gf::field_bits(field); }
  /// Payload bytes of one encoded message (packed symbols).
  std::size_t message_bytes() const;
  /// The paper's defaults: k = 8, m = 32768, q = 2^32 (Section III-C).
  static CodingParams paper_defaults() {
    return CodingParams{gf::FieldId::gf2_32, 1u << 15};
  }
};

/// Number of chunks k needed to cover `bytes` of data:
/// k = ceil(8*bytes / (m*p)).  This is Table I when bytes = 2^20.
std::size_t chunks_for_bytes(std::size_t bytes, const CodingParams& params);

}  // namespace fairshare::coding
