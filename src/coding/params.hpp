// Coding parameters (q, m, k) and the arithmetic linking them.
//
// Section III-A: a file of b bits is split into k chunks, each an m-element
// vector over F_q with q = 2^p and m*p*k = b.  Table I of the paper
// tabulates k for 1 MB of data across the (q, m) grid; messages_required()
// reproduces that table.
#pragma once

#include <cstddef>
#include <cstdint>

#include "gf/field_id.hpp"

namespace fairshare::coding {

/// Which codec produced a file's messages.  `dense` is the paper's
/// original full-width RLNC (every coefficient row spans all k chunks);
/// `chunked` is the overlapping-class codec of coding/chunked.hpp, whose
/// rows are nonzero only inside one small chunk class so decode cost stays
/// near-linear in file size.  Serialized on the wire as a versioned
/// FileInfo trailer with a dense default, so metadata written before this
/// field existed still decodes (p2p/wire.cpp).
enum class CodecKind : std::uint8_t {
  dense = 0,
  chunked = 1,
};

const char* to_string(CodecKind kind);

/// Public geometry of the chunked codec's class structure.  Classes are
/// windows of `class_size` consecutive chunks advancing by
/// `class_size - overlap`, so adjacent classes share `overlap` chunks;
/// `seed` fixes the message-id -> class schedule (chunked::ClassMap).
/// Everything here is public — peers and recoders need it to group
/// messages by class — while the coefficient values inside a class stay
/// derived from the secret key exactly as in the dense codec.
struct ChunkedSchedule {
  std::uint32_t class_size = 64;  ///< chunks per class
  std::uint32_t overlap = 8;      ///< chunks shared with the previous class
  std::uint64_t seed = 0;         ///< class-schedule interleave seed

  /// A usable geometry: at least two chunks per class and a strictly
  /// positive stride (overlap < class_size).
  bool valid() const { return class_size >= 2 && overlap < class_size; }

  bool operator==(const ChunkedSchedule&) const = default;
};

/// Field and message-length choice for one encoded file.
struct CodingParams {
  gf::FieldId field = gf::FieldId::gf2_32;  ///< q = 2^p
  std::size_t m = 1u << 15;                 ///< symbols per message

  unsigned bits() const { return gf::field_bits(field); }
  /// Payload bytes of one encoded message (packed symbols).
  std::size_t message_bytes() const;
  /// The paper's defaults: k = 8, m = 32768, q = 2^32 (Section III-C).
  static CodingParams paper_defaults() {
    return CodingParams{gf::FieldId::gf2_32, 1u << 15};
  }
};

/// Number of chunks k needed to cover `bytes` of data:
/// k = ceil(8*bytes / (m*p)).  This is Table I when bytes = 2^20.
std::size_t chunks_for_bytes(std::size_t bytes, const CodingParams& params);

}  // namespace fairshare::coding
