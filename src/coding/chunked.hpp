// Overlapping-class RLNC codec: near-linear decode for large files.
//
// Dense RLNC (encoder.hpp / decoder.hpp) pays O(k^2 * m) field operations
// to decode a file of k chunks, which caps practical file sizes around the
// point where k^2 swamps the SIMD kernels (a 1 GB file at the paper's
// m = 32768, q = 2^32 has k = 8192 and decodes in minutes, not seconds).
// Following the overlapping-class construction of Heidarzadeh-Banihashemi
// (arXiv:0905.2796) and expander chunked codes (arXiv:1307.5664), this
// codec draws every coded message over one small *class* of `class_size`
// consecutive chunks; adjacent classes share `overlap` chunks.  Decoding
// runs an independent progressive elimination per class — O(class_size^2)
// rows of m symbols each, so total work is O(k * class_size * m): linear
// in file size for fixed class geometry — and completed classes donate
// their decoded overlap chunks to incomplete neighbours as unit rows, a
// back-substitution cascade that rescues classes short on direct messages.
//
// Reception overhead stays low because the class *schedule* is quota
// weighted: within every period of k message ids, class c is visited
// q_c = w_c - overlap times (w_c = class width; the first class keeps its
// full width), which sums to exactly k.  In-order delivery therefore
// completes class 0 after its quota, whose donation tops up class 1, and
// so on down the chain — k messages decode the file with overhead limited
// to the rare dependent row (~1/q per class).  Shuffled or lossy delivery
// is rescued by the same cascade running in whatever order classes happen
// to finish.  The schedule is seeded and public (ChunkedSchedule travels
// in FileInfo), so peers and recoders agree on every message's class
// without holding the secret; coefficient *values* inside a class remain
// secret-derived exactly as in the dense codec (coefficients.hpp), which
// preserves the paper's secrecy argument unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "coding/coefficients.hpp"
#include "coding/message.hpp"
#include "coding/recoding.hpp"
#include "linalg/progressive.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace fairshare::coding {

// AddResult (decoder.hpp) is shared by both codecs so call sites switch on
// one enum regardless of codec kind.
enum class AddResult;

namespace chunked {

/// Pure geometry + schedule: which chunks belong to class c, and which
/// class a message id encodes over.  Deterministic from (k, schedule), so
/// encoder, decoder, recoders and peers all derive the same map.
class ClassMap {
 public:
  ClassMap(std::size_t k, const ChunkedSchedule& schedule);

  std::size_t k() const { return k_; }
  std::size_t classes() const { return widths_.size(); }
  const ChunkedSchedule& schedule() const { return schedule_; }

  /// First chunk of class c.
  std::size_t start(std::size_t c) const { return c * stride_; }
  /// Chunks in class c (class_size except possibly the last).
  std::size_t width(std::size_t c) const { return widths_[c]; }
  /// Widest class (solver/coefficient-row sizing).
  std::size_t max_width() const { return max_width_; }

  /// The class message id encodes over: position id % k in the seeded
  /// quota-interleaved period table.
  std::size_t class_of(std::uint64_t message_id) const {
    return table_[message_id % table_.size()];
  }

  /// Classes whose window contains chunk j, in increasing order.  Size is
  /// 1 away from overlap regions, >= 2 inside them.
  std::vector<std::size_t> classes_containing(std::size_t j) const;

  /// True when chunk j lies inside class c's window.
  bool contains(std::size_t c, std::size_t j) const {
    return j >= start(c) && j < start(c) + width(c);
  }

 private:
  std::size_t k_;
  ChunkedSchedule schedule_;
  std::size_t stride_;               // class_size - overlap
  std::vector<std::size_t> widths_;  // per-class chunk counts
  std::size_t max_width_;
  std::vector<std::uint32_t> table_;  // period-k id -> class schedule
};

/// Drop-in sibling of FileEncoder producing class-local messages.  Message
/// i covers only the chunks of class_of(i); rows are screened for linear
/// independence per class in batches of the class width, skipping
/// dependent ids just like the dense encoder so ids stay plain data.
class Encoder {
 public:
  Encoder(const SecretKey& secret, std::uint64_t file_id,
          std::span<const std::byte> data, const CodingParams& params,
          const ChunkedSchedule& schedule);

  /// Metadata for decoding (codec = CodecKind::chunked, schedule filled
  /// in); message_digests covers every message generated so far.
  const FileInfo& info() const { return info_; }
  const ClassMap& class_map() const { return map_; }

  std::size_t k() const { return map_.k(); }
  const CodingParams& params() const { return params_; }

  /// Next screened message; deterministic like FileEncoder::next_message.
  EncodedMessage next_message();
  std::vector<EncodedMessage> generate(std::size_t count);

  std::uint64_t ids_examined() const { return next_id_; }
  std::uint64_t messages_generated() const { return generated_; }

 private:
  SecretKey secret_;
  CodingParams params_;
  ClassMap map_;
  std::size_t chunk_bytes_;
  std::vector<std::byte> chunks_;  // k rows of m packed symbols
  CoefficientGenerator coeffs_;    // sized to max class width, truncated
  FileInfo info_;
  std::vector<linalg::IncrementalRank> batch_rank_;  // one per class
  std::uint64_t next_id_ = 0;
  std::uint64_t generated_ = 0;
};

/// Per-class progressive decoder with cross-class back-substitution.
///
/// Each class owns a linalg::ProgressiveSolver over its window; incoming
/// messages are authenticated (same digest policy as FileDecoder) and
/// folded into their class's solver.  The moment a class completes, its
/// decoded chunks inside every overlap region are donated to incomplete
/// neighbouring classes as unit rows — effectively free back-substitution
/// that propagates breadth-first until no more classes flip.
class Decoder {
 public:
  Decoder(const SecretKey& secret, const FileInfo& info,
          bool require_digests = true);

  AddResult add(const EncodedMessage& message);

  /// Fold in a class-local recoded packet (every source id must map to
  /// one class; see recode_class_local).  A combination spanning classes
  /// cannot enter any class-local solver and is rejected as bad_digest —
  /// under the chunked protocol it is malformed, and like all recoded
  /// packets it carries no owner digest to vouch for it.
  AddResult add_recoded(const RecodedMessage& message);

  /// Decode a whole batch, fanning per-class elimination out over `pool`.
  /// Classes are independent linear systems, so each pool job eliminates
  /// one class's share of the batch serially; classes whose share is under
  /// linalg::kMinChunkSymbols symbols of payload work run inline on the
  /// caller instead of oversplitting the pool.  The donation cascade runs
  /// once, serially, after the barrier.  The decode outcome (completion,
  /// rank, reconstructed bytes) is identical to calling add() per message;
  /// acceptance tallies can differ, because deferring the cascade lets
  /// coded rows land as innovative that an earlier donation would have
  /// made redundant under serial add().
  void add_many(std::span<const EncodedMessage> messages,
                util::ThreadPool* pool);

  /// Parallelize payload row operations *within* each class's solver (see
  /// ProgressiveSolver::set_thread_pool).  Orthogonal to add_many's
  /// across-class fan-out; do not combine both with one pool (nested
  /// parallel_for is unsupported).
  void set_thread_pool(util::ThreadPool* pool);

  /// Chunked-path observability (PR 4 registry pattern):
  ///  * fairshare_decoder_rank{file,user,codec="chunked"} — total rank;
  ///  * fairshare_decoder_eliminate_ns{file,user,codec="chunked"} — the
  ///    decode-time histogram, split from dense by the codec label;
  ///  * fairshare_chunked_class_rank{file,user,class} — per-class gauges;
  ///  * fairshare_chunked_classes_complete_total{file,user} — cascade
  ///    progress counter.
  void enable_metrics(obs::MetricsRegistry& registry, std::uint64_t user_id);

  void add_digest(std::uint64_t message_id, const crypto::Md5Digest& digest) {
    info_.message_digests[message_id] = digest;
  }

  bool complete() const { return classes_complete_ == map_.classes(); }
  /// Sum of per-class solver ranks; reaches sum-of-widths (>= k, the
  /// overlap counted once per class) when complete.
  std::size_t rank() const;
  std::size_t k() const { return info_.k; }
  std::size_t classes_complete() const { return classes_complete_; }
  const ClassMap& class_map() const { return map_; }

  std::size_t accepted() const { return accepted_; }
  std::size_t rejected_auth() const { return rejected_auth_; }
  std::size_t non_innovative() const { return non_innovative_; }

  /// Reconstructed file (original_bytes long).  Precondition: complete().
  std::vector<std::byte> reconstruct() const;

 private:
  struct ClassState {
    linalg::ProgressiveSolver solver;
    bool complete = false;  // set once; donation runs at that moment
  };

  /// One timed add_row into class `cls`'s solver (plus its class-rank
  /// gauge); returns true when the row was innovative.  Cascading and the
  /// global rank gauge are the caller's job — add()/add_recoded cascade
  /// immediately, add_many defers until after its barrier.
  bool eliminate(std::size_t cls, std::span<const std::uint64_t> symbols,
                 const std::byte* payload);
  /// Donate decoded overlap chunks of every class in `ready` to incomplete
  /// neighbours, breadth-first, flipping classes as they fill.
  void run_cascade(std::vector<std::size_t> ready);
  void mark_complete(std::size_t cls);

  FileInfo info_;
  bool require_digests_;
  ClassMap map_;
  CoefficientGenerator coeffs_;  // sized to max class width, truncated
  std::vector<ClassState> classes_;
  std::size_t classes_complete_ = 0;
  std::size_t accepted_ = 0;
  std::size_t rejected_auth_ = 0;
  std::size_t non_innovative_ = 0;
  obs::Gauge* rank_gauge_ = nullptr;  // null = metrics disabled
  obs::Histogram* eliminate_ns_ = nullptr;
  std::vector<obs::Gauge*> class_rank_;
  obs::Counter* classes_complete_total_ = nullptr;
};

/// Peer-side class-local recoding: combine verbatim-stored messages *of
/// one class* into a fresh packet (the chunked analogue of
/// Recoder::recode).  `stored` must be non-empty and share one file id;
/// messages outside class `cls` are skipped, and at least one survivor is
/// required.  Keeping combinations class-local is what lets the decoder
/// expand them against a single class solver.
RecodedMessage recode_class_local(const ClassMap& map, std::size_t cls,
                                  std::span<const EncodedMessage> stored,
                                  const CodingParams& params,
                                  sim::SplitMix64& rng);

}  // namespace chunked
}  // namespace fairshare::coding
