// Large-file streaming support (Section III-D).
//
// "We propose to overcome this problem by dividing large files into 1 MB
// chunks and then encoding each chunk as a separate file.  ...  this
// approach allows large files (e.g., audio or visual data) to be
// 'streamed' to a user in small chunks, rather than forcing the user to
// wait until the entire file contents have been downloaded."
//
// A ChunkedEncoder wraps one FileEncoder per 1 MB unit (unit i gets file
// id base_file_id + i); a ChunkedDecoder routes incoming messages to the
// right unit decoder and exposes per-unit completion so playback can start
// at the first decoded unit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "coding/decoder.hpp"
#include "coding/encoder.hpp"

namespace fairshare::coding {

/// Metadata for a chunked file: per-unit FileInfo plus "additional
/// information about how such 1 MB files fit together" (Section III-D).
struct ChunkedFileInfo {
  std::uint64_t base_file_id = 0;
  std::uint64_t total_bytes = 0;
  std::size_t unit_bytes = 1u << 20;
  std::vector<FileInfo> units;  ///< unit i has file_id base_file_id + i
};

class ChunkedEncoder {
 public:
  /// Unit file ids occupy [base_file_id, base_file_id + units); the caller
  /// is responsible for spacing base ids so ranges do not collide.
  ChunkedEncoder(const SecretKey& secret, std::uint64_t base_file_id,
                 std::span<const std::byte> data, const CodingParams& params,
                 std::size_t unit_bytes = 1u << 20);

  std::size_t units() const { return encoders_.size(); }
  FileEncoder& unit(std::size_t i) { return *encoders_[i]; }

  /// Snapshot of the combined metadata (per-unit digests reflect messages
  /// generated so far).
  ChunkedFileInfo info() const;

 private:
  std::uint64_t base_file_id_;
  std::uint64_t total_bytes_;
  std::size_t unit_bytes_;
  std::vector<std::unique_ptr<FileEncoder>> encoders_;
};

class ChunkedDecoder {
 public:
  ChunkedDecoder(const SecretKey& secret, const ChunkedFileInfo& info,
                 bool require_digests = true);

  /// Routes by message file_id.  Returns wrong_file for ids outside this
  /// chunked file's range.
  AddResult add(const EncodedMessage& message);

  std::size_t units() const { return decoders_.size(); }
  bool unit_complete(std::size_t i) const { return decoders_[i]->complete(); }
  bool complete() const;

  /// Index of the first incomplete unit (== units() when done); the
  /// streaming consumer can hand units [0, next_needed_unit()) to playback.
  std::size_t next_needed_unit() const;

  /// Decoded bytes of one completed unit.
  std::vector<std::byte> unit_data(std::size_t i) const;
  /// Whole file.  Precondition: complete().
  std::vector<std::byte> reconstruct() const;

 private:
  ChunkedFileInfo info_;
  std::vector<std::unique_ptr<FileDecoder>> decoders_;
};

}  // namespace fairshare::coding
