// Codec dispatch: one decoder facade over the dense (decoder.hpp) and
// overlapping-class (chunked.hpp) codecs, selected by FileInfo::codec.
//
// Download paths (net/download_client, coding/batch_decoder, the CLI)
// construct one of these from whatever FileInfo the serving peer
// advertises, so a single client binary interoperates with files encoded
// either way — including metadata written before the codec field existed,
// which decodes as dense (p2p/wire.cpp's versioned trailer).
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "coding/chunked.hpp"
#include "coding/decoder.hpp"

namespace fairshare::coding {

class CodecDecoder {
 public:
  CodecDecoder(const SecretKey& secret, const FileInfo& info,
               bool require_digests = true);

  CodecKind kind() const { return kind_; }

  AddResult add(const EncodedMessage& message);
  AddResult add_recoded(const RecodedMessage& message);

  void add_digest(std::uint64_t message_id, const crypto::Md5Digest& digest);
  void set_thread_pool(util::ThreadPool* pool);
  /// Instruments carry a codec label ("dense"/"chunked"), so both codecs'
  /// series coexist in one registry; the chunked codec additionally
  /// reports per-class gauges (see chunked::Decoder::enable_metrics).
  void enable_metrics(obs::MetricsRegistry& registry, std::uint64_t user_id);

  bool complete() const;
  std::size_t rank() const;
  std::size_t k() const;

  std::size_t accepted() const;
  std::size_t rejected_auth() const;
  std::size_t non_innovative() const;

  /// Reconstructed file bytes.  Precondition: complete().
  std::vector<std::byte> reconstruct() const;

  /// The chunked decoder, or nullptr when decoding dense (for class-level
  /// introspection: classes complete, schedule, add_many batching).
  chunked::Decoder* chunked_decoder();
  const chunked::Decoder* chunked_decoder() const;

 private:
  CodecKind kind_;
  std::variant<FileDecoder, chunked::Decoder> impl_;
};

}  // namespace fairshare::coding
