#include "coding/chunked.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <deque>

#include "coding/decoder.hpp"  // AddResult
#include "linalg/parallel_ops.hpp"
#include "obs/trace.hpp"
#include "sim/rng.hpp"

namespace fairshare::coding::chunked {

// ---------------------------------------------------------------- ClassMap

ClassMap::ClassMap(std::size_t k, const ChunkedSchedule& schedule)
    : k_(k),
      schedule_(schedule),
      stride_(schedule.class_size - schedule.overlap) {
  assert(k > 0 && "empty files cannot be encoded");
  assert(schedule.valid() && "class_size >= 2 and overlap < class_size");

  if (k <= schedule.class_size) {
    // One class covers everything; the schedule degenerates to the dense
    // codec's geometry (but rows are still screened against width k).
    stride_ = k;
    widths_.assign(1, k);
  } else {
    const std::size_t n = (k - schedule.class_size + stride_ - 1) / stride_ + 1;
    widths_.assign(n, schedule.class_size);
    widths_[n - 1] = k - (n - 1) * stride_;
    // ceil() placement guarantees overlap < w_last <= class_size, so the
    // last class always has a positive quota below.
    assert(widths_[n - 1] > schedule.overlap);
  }
  max_width_ = *std::max_element(widths_.begin(), widths_.end());

  // Quota-weighted schedule table: within every period of k ids, class c
  // appears q_c = w_c - overlap times (class 0 keeps its full width), and
  // sum q_c = sum w_c - (n-1)*overlap = k exactly.  Appearances are
  // interleaved earliest-deadline-first at fixed-point spacing k/q_c with
  // a seeded per-class phase, so the stream visits classes proportionally
  // instead of in bursts and different seeds de-correlate which ids
  // neighbouring files burn on which class.
  table_.assign(k_, 0);
  if (widths_.size() > 1) {
    struct Slot {
      std::uint64_t deadline;
      std::uint32_t cls;
    };
    std::vector<Slot> slots;
    slots.reserve(k_);
    constexpr std::uint64_t kScale = 1ull << 16;
    sim::SplitMix64 rng(schedule_.seed ^ 0x243F6A8885A308D3ull);
    for (std::size_t c = 0; c < widths_.size(); ++c) {
      const std::uint64_t quota = widths_[c] - (c > 0 ? schedule_.overlap : 0);
      const std::uint64_t step = k_ * kScale / quota;
      const std::uint64_t phase = rng.next() % step;
      for (std::uint64_t i = 0; i < quota; ++i)
        slots.push_back({phase + i * step, static_cast<std::uint32_t>(c)});
    }
    assert(slots.size() == k_);
    std::sort(slots.begin(), slots.end(), [](const Slot& a, const Slot& b) {
      return a.deadline != b.deadline ? a.deadline < b.deadline
                                      : a.cls < b.cls;
    });
    for (std::size_t i = 0; i < slots.size(); ++i) table_[i] = slots[i].cls;
  }
}

std::vector<std::size_t> ClassMap::classes_containing(std::size_t j) const {
  assert(j < k_);
  std::vector<std::size_t> out;
  if (widths_.size() == 1) {
    out.push_back(0);
    return out;
  }
  // Smallest candidate: the first class whose full-width window could
  // still reach j; largest: the last class starting at or before j.  The
  // short last class is filtered by the explicit contains() check.
  const std::size_t lo =
      j < schedule_.class_size ? 0 : (j - schedule_.class_size) / stride_ + 1;
  const std::size_t hi = std::min(j / stride_, widths_.size() - 1);
  for (std::size_t c = lo; c <= hi; ++c)
    if (contains(c, j)) out.push_back(c);
  assert(!out.empty());
  return out;
}

// ----------------------------------------------------------------- Encoder

Encoder::Encoder(const SecretKey& secret, std::uint64_t file_id,
                 std::span<const std::byte> data, const CodingParams& params,
                 const ChunkedSchedule& schedule)
    : secret_(secret),
      params_(params),
      map_(chunks_for_bytes(data.size(), params), schedule),
      chunk_bytes_(params.message_bytes()),
      coeffs_(secret, file_id, params, map_.max_width()) {
  assert((params.field != gf::FieldId::gf2_4 || params.m % 2 == 0) &&
         "GF(2^4) requires even m for byte-aligned chunks");

  chunks_.assign(map_.k() * chunk_bytes_, std::byte{0});
  std::memcpy(chunks_.data(), data.data(), data.size());

  info_.file_id = file_id;
  info_.original_bytes = data.size();
  info_.params = params;
  info_.k = map_.k();
  info_.codec = CodecKind::chunked;
  info_.schedule = schedule;
  info_.content_digest = crypto::Md5::hash(data);

  batch_rank_.reserve(map_.classes());
  for (std::size_t c = 0; c < map_.classes(); ++c)
    batch_rank_.emplace_back(params.field, map_.width(c));
}

EncodedMessage Encoder::next_message() {
  const auto& f = gf::field_view(params_.field);
  for (;;) {
    const std::uint64_t candidate = next_id_++;
    const std::size_t cls = map_.class_of(candidate);
    const std::size_t w = map_.width(cls);
    const std::vector<std::uint64_t> symbols = coeffs_.row_symbols(candidate);
    const std::span<const std::uint64_t> row(symbols.data(), w);
    if (!batch_rank_[cls].add_row(row)) continue;  // dependent; skip this id
    if (batch_rank_[cls].full())
      batch_rank_[cls] = linalg::IncrementalRank(params_.field, w);

    EncodedMessage msg;
    msg.file_id = info_.file_id;
    msg.message_id = candidate;
    msg.payload.assign(chunk_bytes_, std::byte{0});
    const std::size_t start = map_.start(cls);
    for (std::size_t j = 0; j < w; ++j) {
      if (symbols[j] != 0)
        f.axpy(msg.payload.data(),
               chunks_.data() + (start + j) * chunk_bytes_, symbols[j],
               params_.m);
    }
    info_.message_digests.emplace(candidate, msg.digest());
    ++generated_;
    return msg;
  }
}

std::vector<EncodedMessage> Encoder::generate(std::size_t count) {
  std::vector<EncodedMessage> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(next_message());
  return out;
}

// ----------------------------------------------------------------- Decoder

Decoder::Decoder(const SecretKey& secret, const FileInfo& info,
                 bool require_digests)
    : info_(info),
      require_digests_(require_digests),
      map_(info.k, info.schedule),
      coeffs_(secret, info.file_id, info.params, map_.max_width()) {
  assert(info.codec == CodecKind::chunked);
  classes_.reserve(map_.classes());
  for (std::size_t c = 0; c < map_.classes(); ++c)
    classes_.push_back(ClassState{
        linalg::ProgressiveSolver(info.params.field, map_.width(c),
                                  info.params.m),
        false});
}

void Decoder::set_thread_pool(util::ThreadPool* pool) {
  for (ClassState& st : classes_) st.solver.set_thread_pool(pool);
}

std::size_t Decoder::rank() const {
  std::size_t sum = 0;
  for (const ClassState& st : classes_) sum += st.solver.rank();
  return sum;
}

bool Decoder::eliminate(std::size_t cls,
                        std::span<const std::uint64_t> symbols,
                        const std::byte* payload) {
  ClassState& st = classes_[cls];
  const std::uint64_t t0 = eliminate_ns_ ? obs::monotonic_ns() : 0;
  const bool innovative = st.solver.add_row(symbols, payload);
  if (eliminate_ns_) {
    eliminate_ns_->record(obs::monotonic_ns() - t0);
    class_rank_[cls]->set(static_cast<double>(st.solver.rank()));
  }
  return innovative;
}

void Decoder::mark_complete(std::size_t cls) {
  assert(!classes_[cls].complete);
  classes_[cls].complete = true;
  ++classes_complete_;
  if (classes_complete_total_) classes_complete_total_->add(1);
}

void Decoder::run_cascade(std::vector<std::size_t> ready) {
  std::deque<std::size_t> queue;
  for (std::size_t cls : ready) {
    if (!classes_[cls].complete && classes_[cls].solver.complete()) {
      mark_complete(cls);
      queue.push_back(cls);
    }
  }
  while (!queue.empty()) {
    const std::size_t c = queue.front();
    queue.pop_front();
    const std::size_t start = map_.start(c);
    const std::size_t w = map_.width(c);
    for (std::size_t j = start; j < start + w; ++j) {
      for (std::size_t d : map_.classes_containing(j)) {
        if (d == c || classes_[d].complete) continue;
        // Donate chunk j as the unit row e_{j - start(d)}.  The donor's
        // chunk pointer stays valid because completed classes never see
        // another add_row (add()/add_many skip them).
        std::vector<std::uint64_t> unit(map_.width(d), 0);
        unit[j - map_.start(d)] = 1;
        eliminate(d, unit, classes_[c].solver.chunk(j - start));
        if (classes_[d].solver.complete()) {
          mark_complete(d);
          queue.push_back(d);
        }
      }
    }
  }
  if (rank_gauge_) rank_gauge_->set(static_cast<double>(rank()));
}

AddResult Decoder::add(const EncodedMessage& message) {
  if (complete()) return AddResult::already_complete;
  if (message.file_id != info_.file_id) return AddResult::wrong_file;
  if (message.payload.size() != info_.params.message_bytes())
    return AddResult::bad_size;

  if (require_digests_ || !info_.message_digests.empty()) {
    const auto it = info_.message_digests.find(message.message_id);
    if (it == info_.message_digests.end()) {
      if (require_digests_) {
        ++rejected_auth_;
        return AddResult::bad_digest;
      }
    } else if (message.digest() != it->second) {
      ++rejected_auth_;
      return AddResult::bad_digest;
    }
  }

  const std::size_t cls = map_.class_of(message.message_id);
  if (classes_[cls].complete) {
    ++non_innovative_;
    return AddResult::non_innovative;
  }
  const std::vector<std::uint64_t> symbols =
      coeffs_.row_symbols(message.message_id);
  const bool innovative =
      eliminate(cls, std::span(symbols).first(map_.width(cls)),
                message.payload.data());
  if (classes_[cls].solver.complete()) run_cascade({cls});
  if (rank_gauge_) rank_gauge_->set(static_cast<double>(rank()));
  if (!innovative) {
    ++non_innovative_;
    return AddResult::non_innovative;
  }
  ++accepted_;
  return AddResult::accepted;
}

AddResult Decoder::add_recoded(const RecodedMessage& message) {
  if (complete()) return AddResult::already_complete;
  if (message.file_id != info_.file_id) return AddResult::wrong_file;
  if (message.payload.size() != info_.params.message_bytes())
    return AddResult::bad_size;
  if (message.combination.empty()) {
    ++rejected_auth_;
    return AddResult::bad_digest;
  }
  const std::size_t cls = map_.class_of(message.combination.front().first);
  for (const auto& [mid, alpha] : message.combination) {
    (void)alpha;
    if (map_.class_of(mid) != cls) {  // cross-class: malformed under chunked
      ++rejected_auth_;
      return AddResult::bad_digest;
    }
  }
  if (classes_[cls].complete) {
    ++non_innovative_;
    return AddResult::non_innovative;
  }

  // Effective row: sum_i alpha_i * beta_{id_i} over the class window
  // (addition in GF(2^p) is xor).
  const auto& f = gf::field_view(info_.params.field);
  const std::size_t w = map_.width(cls);
  std::vector<std::uint64_t> row(w, 0);
  for (const auto& [mid, alpha] : message.combination) {
    const std::vector<std::uint64_t> beta = coeffs_.row_symbols(mid);
    for (std::size_t j = 0; j < w; ++j) row[j] ^= f.mul(alpha, beta[j]);
  }

  const bool innovative = eliminate(cls, row, message.payload.data());
  if (classes_[cls].solver.complete()) run_cascade({cls});
  if (rank_gauge_) rank_gauge_->set(static_cast<double>(rank()));
  if (!innovative) {
    ++non_innovative_;
    return AddResult::non_innovative;
  }
  ++accepted_;
  return AddResult::accepted;
}

void Decoder::add_many(std::span<const EncodedMessage> messages,
                       util::ThreadPool* pool) {
  // Route messages to their class; structurally invalid ones (wrong file,
  // wrong payload size) are dropped exactly as a per-message add() would
  // reject them, without touching counters.
  std::vector<std::vector<std::size_t>> by_class(map_.classes());
  const std::size_t payload_bytes = info_.params.message_bytes();
  for (std::size_t i = 0; i < messages.size(); ++i) {
    const EncodedMessage& msg = messages[i];
    if (msg.file_id != info_.file_id || msg.payload.size() != payload_bytes)
      continue;
    by_class[map_.class_of(msg.message_id)].push_back(i);
  }

  struct Tally {
    std::size_t accepted = 0;
    std::size_t rejected_auth = 0;
    std::size_t non_innovative = 0;
  };
  // Authentication + elimination for one class's share of the batch.
  // Touches only that class's solver and thread-safe instruments, so
  // distinct classes can run on distinct pool workers.
  const auto process_class = [&](std::size_t cls, Tally& tally) {
    for (std::size_t i : by_class[cls]) {
      const EncodedMessage& msg = messages[i];
      if (require_digests_ || !info_.message_digests.empty()) {
        const auto it = info_.message_digests.find(msg.message_id);
        if (it == info_.message_digests.end()) {
          if (require_digests_) {
            ++tally.rejected_auth;
            continue;
          }
        } else if (msg.digest() != it->second) {
          ++tally.rejected_auth;
          continue;
        }
      }
      if (classes_[cls].complete || classes_[cls].solver.complete()) {
        ++tally.non_innovative;
        continue;
      }
      const std::vector<std::uint64_t> symbols =
          coeffs_.row_symbols(msg.message_id);
      if (eliminate(cls, std::span(symbols).first(map_.width(cls)),
                    msg.payload.data()))
        ++tally.accepted;
      else
        ++tally.non_innovative;
    }
  };

  // Classes whose share of the batch carries at least kMinChunkSymbols
  // symbols of payload work go to the pool; smaller shares run inline so
  // fan-out overhead never exceeds the elimination it parallelizes.
  std::vector<std::size_t> pooled;
  std::vector<std::size_t> inline_classes;
  for (std::size_t c = 0; c < by_class.size(); ++c) {
    if (by_class[c].empty()) continue;
    const std::size_t work = by_class[c].size() * info_.params.m;
    if (pool != nullptr && pool->size() > 1 &&
        work >= linalg::kMinChunkSymbols)
      pooled.push_back(c);
    else
      inline_classes.push_back(c);
  }

  std::vector<Tally> tallies(pooled.size());
  if (!pooled.empty()) {
    pool->parallel_for(pooled.size(), [&](std::size_t i) {
      process_class(pooled[i], tallies[i]);
    });
  }
  Tally inline_tally;
  for (std::size_t c : inline_classes) process_class(c, inline_tally);

  for (const Tally& t : tallies) {
    accepted_ += t.accepted;
    rejected_auth_ += t.rejected_auth;
    non_innovative_ += t.non_innovative;
  }
  accepted_ += inline_tally.accepted;
  rejected_auth_ += inline_tally.rejected_auth;
  non_innovative_ += inline_tally.non_innovative;

  // Donations mutate neighbouring solvers, so the cascade waits for the
  // barrier and runs serially over every class the batch completed.
  std::vector<std::size_t> ready;
  for (std::size_t c = 0; c < classes_.size(); ++c)
    if (!classes_[c].complete && classes_[c].solver.complete())
      ready.push_back(c);
  run_cascade(std::move(ready));
  if (rank_gauge_) rank_gauge_->set(static_cast<double>(rank()));
}

void Decoder::enable_metrics(obs::MetricsRegistry& registry,
                             std::uint64_t user_id) {
  const std::string file = std::to_string(info_.file_id);
  const std::string user = std::to_string(user_id);
  const obs::LabelList labels = {
      {"file", file}, {"user", user}, {"codec", "chunked"}};
  rank_gauge_ = &registry.gauge("fairshare_decoder_rank", labels);
  eliminate_ns_ =
      &registry.histogram("fairshare_decoder_eliminate_ns", labels);
  classes_complete_total_ = &registry.counter(
      "fairshare_chunked_classes_complete_total", {{"file", file},
                                                   {"user", user}});
  class_rank_.resize(map_.classes());
  for (std::size_t c = 0; c < map_.classes(); ++c) {
    class_rank_[c] = &registry.gauge(
        "fairshare_chunked_class_rank",
        {{"file", file}, {"user", user}, {"class", std::to_string(c)}});
    class_rank_[c]->set(static_cast<double>(classes_[c].solver.rank()));
  }
  rank_gauge_->set(static_cast<double>(rank()));
  classes_complete_total_->add(classes_complete_);
}

std::vector<std::byte> Decoder::reconstruct() const {
  assert(complete());
  const std::size_t chunk_bytes = info_.params.message_bytes();
  std::vector<std::byte> out(map_.k() * chunk_bytes);
  // Every class is complete, so overlap chunks are written more than once
  // with identical bytes; walking classes avoids a per-chunk class lookup.
  for (std::size_t c = 0; c < map_.classes(); ++c) {
    const std::size_t start = map_.start(c);
    for (std::size_t j = 0; j < map_.width(c); ++j)
      std::memcpy(out.data() + (start + j) * chunk_bytes,
                  classes_[c].solver.chunk(j), chunk_bytes);
  }
  out.resize(info_.original_bytes);
  return out;
}

// ---------------------------------------------------------------- Recoding

RecodedMessage recode_class_local(const ClassMap& map, std::size_t cls,
                                  std::span<const EncodedMessage> stored,
                                  const CodingParams& params,
                                  sim::SplitMix64& rng) {
  assert(!stored.empty());
  const auto& f = gf::field_view(params.field);

  RecodedMessage out;
  out.file_id = stored.front().file_id;
  out.payload.assign(params.message_bytes(), std::byte{0});
  for (const EncodedMessage& msg : stored) {
    assert(msg.file_id == out.file_id);
    if (map.class_of(msg.message_id) != cls) continue;
    assert(msg.payload.size() == params.message_bytes());
    std::uint64_t alpha = 0;
    while (alpha == 0) alpha = rng.next() & (f.order - 1);
    out.combination.emplace_back(msg.message_id, alpha);
    f.axpy(out.payload.data(), msg.payload.data(), alpha, params.m);
  }
  assert(!out.combination.empty() &&
         "no stored message belongs to the requested class");
  return out;
}

}  // namespace fairshare::coding::chunked
