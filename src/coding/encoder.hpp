// File encoder: produces the stream of coded messages a peer uploads
// during the initialization phase (Section III-A, Figure 2).
//
// The encoder keeps the k file chunks in memory and generates message i as
// Y_i = sum_j beta_ij X_j, with beta rows derived from the secret key (see
// coefficients.hpp).  Following the paper, generated rows are screened for
// linear independence in batches of k — "the encoding peer can guarantee
// that exactly k messages will suffice to decode a file by simply testing
// generated rows for linear independence before encoding" — by *skipping*
// message ids whose row is dependent within the current batch (ids must
// stay plain data the decoder can reuse, so rows are never re-rolled).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "coding/coefficients.hpp"
#include "coding/message.hpp"
#include "linalg/progressive.hpp"

namespace fairshare::coding {

class FileEncoder {
 public:
  /// Prepares chunks for `data` (zero-padded to k*m symbols).  For
  /// GF(2^4), m must be even so chunks stay byte-aligned.
  FileEncoder(const SecretKey& secret, std::uint64_t file_id,
              std::span<const std::byte> data, const CodingParams& params);

  /// Metadata for decoding; message_digests covers every message generated
  /// so far (grow it by generating messages, then hand it to users).
  const FileInfo& info() const { return info_; }

  std::size_t k() const { return k_; }
  const CodingParams& params() const { return params_; }

  /// Generate the next screened message.  Deterministic: the sequence of
  /// message ids depends only on (secret, file_id, params, data length).
  EncodedMessage next_message();

  /// Generate the next `count` messages.  The paper uploads n*k messages
  /// total, k per peer.
  std::vector<EncodedMessage> generate(std::size_t count);

  /// Message ids examined so far (accepted + skipped); the skip rate is
  /// ~1/q per batch and is asserted tiny in tests.
  std::uint64_t ids_examined() const { return next_id_; }
  std::uint64_t messages_generated() const { return generated_; }

 private:
  SecretKey secret_;
  CodingParams params_;
  std::size_t k_;
  std::size_t chunk_bytes_;
  std::vector<std::byte> chunks_;  // k rows of m packed symbols
  CoefficientGenerator coeffs_;
  FileInfo info_;
  linalg::IncrementalRank batch_rank_;
  std::uint64_t next_id_ = 0;
  std::uint64_t generated_ = 0;
};

}  // namespace fairshare::coding
