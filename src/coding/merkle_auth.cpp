#include "coding/merkle_auth.hpp"

#include <cassert>

namespace fairshare::coding {

namespace {

std::vector<crypto::Sha256Digest> leaf_hashes(
    std::span<const EncodedMessage> messages) {
  std::vector<crypto::Sha256Digest> leaves;
  leaves.reserve(messages.size());
  for (const EncodedMessage& m : messages)
    leaves.push_back(crypto::merkle_leaf_hash(
        std::span<const std::byte>(m.serialize())));
  return leaves;
}

}  // namespace

MerkleAuthenticator::MerkleAuthenticator(
    std::span<const EncodedMessage> messages)
    : tree_(leaf_hashes(messages)) {}

AuthenticatedMessage MerkleAuthenticator::attach(const EncodedMessage& message,
                                                 std::size_t index) const {
  assert(index < tree_.leaf_count());
  AuthenticatedMessage am;
  am.message = message;
  am.leaf_index = static_cast<std::uint32_t>(index);
  am.proof = tree_.proof(index);
  return am;
}

std::vector<AuthenticatedMessage> MerkleAuthenticator::attach_all(
    std::span<const EncodedMessage> messages) const {
  assert(messages.size() == tree_.leaf_count());
  std::vector<AuthenticatedMessage> out;
  out.reserve(messages.size());
  for (std::size_t i = 0; i < messages.size(); ++i)
    out.push_back(attach(messages[i], i));
  return out;
}

bool MerkleVerifier::verify(const AuthenticatedMessage& am) const {
  const crypto::Sha256Digest leaf = crypto::merkle_leaf_hash(
      std::span<const std::byte>(am.message.serialize()));
  return crypto::MerkleTree::verify(root_, leaf_count_, am.leaf_index, leaf,
                                    am.proof);
}

}  // namespace fairshare::coding
