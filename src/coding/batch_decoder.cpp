#include "coding/batch_decoder.hpp"

#include <algorithm>
#include <cstring>

#include "coding/chunked.hpp"
#include "linalg/matrix.hpp"

namespace fairshare::coding {

BatchDecoder::BatchDecoder(const SecretKey& secret, const FileInfo& info,
                           bool require_digests)
    : info_(info),
      secret_(secret),
      require_digests_(require_digests),
      coeffs_(secret, info.file_id, info.params, info.k) {}

AddResult BatchDecoder::add(const EncodedMessage& message) {
  if (message.file_id != info_.file_id) return AddResult::wrong_file;
  if (message.payload.size() != info_.params.message_bytes())
    return AddResult::bad_size;
  if (require_digests_ || !info_.message_digests.empty()) {
    const auto it = info_.message_digests.find(message.message_id);
    if (it == info_.message_digests.end()) {
      if (require_digests_) return AddResult::bad_digest;
    } else if (message.digest() != it->second) {
      return AddResult::bad_digest;
    }
  }
  const bool duplicate = std::any_of(
      messages_.begin(), messages_.end(), [&](const EncodedMessage& m) {
        return m.message_id == message.message_id;
      });
  if (duplicate) return AddResult::non_innovative;
  messages_.push_back(message);
  if (buffered_gauge_)
    buffered_gauge_->set(static_cast<double>(messages_.size()));
  return AddResult::accepted;
}

void BatchDecoder::enable_metrics(obs::MetricsRegistry& registry,
                                  std::uint64_t user_id) {
  const obs::LabelList labels = {{"file", std::to_string(info_.file_id)},
                                 {"user", std::to_string(user_id)}};
  buffered_gauge_ = &registry.gauge("fairshare_decoder_batch_buffered", labels);
  decode_ns_ = &registry.histogram("fairshare_decoder_batch_decode_ns", labels);
  span_ring_ = &registry.spans();
  buffered_gauge_->set(static_cast<double>(messages_.size()));
}

std::optional<std::vector<std::byte>> BatchDecoder::decode() {
  if (!ready()) return std::nullopt;
  obs::TraceSpan span(span_ring_, "batch.decode");
  const std::uint64_t t0 = decode_ns_ ? obs::monotonic_ns() : 0;

  if (info_.codec == CodecKind::chunked) {
    // add() already authenticated the buffer, so the inner decoder runs
    // with the relaxed digest policy (known ids are still verified, but
    // ids past the FileInfo snapshot are not rejected outright).
    chunked::Decoder decoder(secret_, info_, /*require_digests=*/false);
    decoder.add_many(messages_, /*pool=*/nullptr);
    if (!decoder.complete()) {
      // Some class is short on rows; age out the oldest buffered message
      // so retries make progress, mirroring the singular-matrix path.
      if (!messages_.empty()) messages_.erase(messages_.begin());
      if (decode_ns_) decode_ns_->record(obs::monotonic_ns() - t0);
      return std::nullopt;
    }
    auto out = decoder.reconstruct();
    if (decode_ns_) decode_ns_->record(obs::monotonic_ns() - t0);
    return out;
  }

  const std::size_t k = info_.k;
  const std::size_t m = info_.params.m;
  const auto& f = gf::field_view(info_.params.field);

  // Assemble the k x k coefficient sub-matrix B and the k x m payload Y
  // from the first k buffered messages with independent rows.
  linalg::Matrix b(info_.params.field, k, k);
  linalg::Matrix y(info_.params.field, k, m);
  std::size_t row = 0;
  for (const EncodedMessage& msg : messages_) {
    if (row == k) break;
    const std::vector<std::byte> packed = coeffs_.row(msg.message_id);
    std::memcpy(b.row(row), packed.data(), f.row_bytes(k));
    std::memcpy(y.row(row), msg.payload.data(), f.row_bytes(m));
    ++row;
  }

  // X = B^{-1} Y (done as one Gaussian solve; mathematically the paper's
  // "multiply by the inverse").
  const auto x = linalg::solve(b, y);
  if (!x) {
    // Singular draw: drop the oldest message so the caller's next add()
    // brings a fresh row, then signal failure.
    if (!messages_.empty()) messages_.erase(messages_.begin());
    if (decode_ns_) decode_ns_->record(obs::monotonic_ns() - t0);
    return std::nullopt;
  }

  std::vector<std::byte> out(k * f.row_bytes(m));
  for (std::size_t i = 0; i < k; ++i)
    std::memcpy(out.data() + i * f.row_bytes(m), x->row(i), f.row_bytes(m));
  out.resize(info_.original_bytes);
  if (decode_ns_) decode_ns_->record(obs::monotonic_ns() - t0);
  return out;
}

}  // namespace fairshare::coding
