#include "coding/chunker.hpp"

#include <cassert>

namespace fairshare::coding {

ChunkedEncoder::ChunkedEncoder(const SecretKey& secret,
                               std::uint64_t base_file_id,
                               std::span<const std::byte> data,
                               const CodingParams& params,
                               std::size_t unit_bytes)
    : base_file_id_(base_file_id),
      total_bytes_(data.size()),
      unit_bytes_(unit_bytes) {
  assert(unit_bytes > 0);
  const std::size_t n_units = (data.size() + unit_bytes - 1) / unit_bytes;
  encoders_.reserve(n_units);
  for (std::size_t i = 0; i < n_units; ++i) {
    const std::size_t off = i * unit_bytes;
    const std::size_t len = std::min(unit_bytes, data.size() - off);
    encoders_.push_back(std::make_unique<FileEncoder>(
        secret, base_file_id + i, data.subspan(off, len), params));
  }
}

ChunkedFileInfo ChunkedEncoder::info() const {
  ChunkedFileInfo out;
  out.base_file_id = base_file_id_;
  out.total_bytes = total_bytes_;
  out.unit_bytes = unit_bytes_;
  out.units.reserve(encoders_.size());
  for (const auto& enc : encoders_) out.units.push_back(enc->info());
  return out;
}

ChunkedDecoder::ChunkedDecoder(const SecretKey& secret,
                               const ChunkedFileInfo& info,
                               bool require_digests)
    : info_(info) {
  decoders_.reserve(info.units.size());
  for (const auto& unit : info.units)
    decoders_.push_back(
        std::make_unique<FileDecoder>(secret, unit, require_digests));
}

AddResult ChunkedDecoder::add(const EncodedMessage& message) {
  // Route by the unit's actual file id: after an incremental update
  // (update.hpp) changed units carry fresh ids outside the original
  // contiguous range.
  for (std::size_t i = 0; i < info_.units.size(); ++i) {
    if (info_.units[i].file_id == message.file_id)
      return decoders_[i]->add(message);
  }
  return AddResult::wrong_file;
}

bool ChunkedDecoder::complete() const {
  return next_needed_unit() == decoders_.size();
}

std::size_t ChunkedDecoder::next_needed_unit() const {
  for (std::size_t i = 0; i < decoders_.size(); ++i)
    if (!decoders_[i]->complete()) return i;
  return decoders_.size();
}

std::vector<std::byte> ChunkedDecoder::unit_data(std::size_t i) const {
  return decoders_[i]->reconstruct();
}

std::vector<std::byte> ChunkedDecoder::reconstruct() const {
  std::vector<std::byte> out;
  out.reserve(info_.total_bytes);
  for (std::size_t i = 0; i < decoders_.size(); ++i) {
    const std::vector<std::byte> unit = unit_data(i);
    out.insert(out.end(), unit.begin(), unit.end());
  }
  return out;
}

}  // namespace fairshare::coding
