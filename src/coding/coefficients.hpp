// Secret-keyed coefficient-row generation.
//
// Section III-A: each beta_ij is "randomly chosen from F_q using a
// cryptographically strong random number generator ... seeded with a
// cryptographic hash of i, and a secret key known only to the encoding
// peer".  Unlike Chou-Wu-Jain practical network coding, the betas are NOT
// shipped in message headers; they are a shared secret between encoder and
// (future) decoder, reconstructed on both sides from the plain-text
// message id.  This is the paper's first technical difference and the
// basis of its secrecy argument (Section III-C).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "coding/message.hpp"
#include "gf/row_ops.hpp"

namespace fairshare::coding {

/// Deterministically expands (secret, file_id, message_id) into the packed
/// k-symbol coefficient row beta_i.  Identical on encoder and decoder.
class CoefficientGenerator {
 public:
  CoefficientGenerator(const SecretKey& secret, std::uint64_t file_id,
                       const CodingParams& params, std::size_t k);

  /// Packed coefficient row (k symbols) for one message id.
  std::vector<std::byte> row(std::uint64_t message_id) const;

  /// Same row as unpacked symbols, for rank screening and tests.
  std::vector<std::uint64_t> row_symbols(std::uint64_t message_id) const;

  std::size_t k() const { return k_; }

 private:
  SecretKey secret_;
  std::uint64_t file_id_;
  gf::FieldId field_;
  std::size_t k_;
};

}  // namespace fairshare::coding
