#include "coding/update.hpp"

#include <algorithm>
#include <cassert>

#include "crypto/md5.hpp"

namespace fairshare::coding {

std::size_t UpdatePlan::retransmit_bytes(std::size_t peers,
                                         const CodingParams& params) const {
  std::size_t total = 0;
  for (std::size_t u : changed_units) {
    const std::size_t unit_len =
        (u + 1 < new_unit_count)
            ? unit_bytes
            : unit_bytes;  // conservative: full-unit cost for the tail too
    const std::size_t k = chunks_for_bytes(std::max<std::size_t>(unit_len, 1),
                                           params);
    total += k * (16 + params.message_bytes()) * peers;
  }
  return total;
}

std::size_t UpdatePlan::full_retransmit_bytes(
    std::size_t peers, const CodingParams& params) const {
  const std::size_t k = chunks_for_bytes(unit_bytes, params);
  return new_unit_count * k * (16 + params.message_bytes()) * peers;
}

UpdatePlan plan_update(const ChunkedFileInfo& current,
                       std::span<const std::byte> new_data) {
  assert(current.unit_bytes > 0);
  UpdatePlan plan;
  plan.unit_bytes = current.unit_bytes;
  plan.old_unit_count = current.units.size();
  plan.new_unit_count =
      (new_data.size() + current.unit_bytes - 1) / current.unit_bytes;
  if (new_data.empty()) plan.new_unit_count = 0;

  for (std::size_t u = 0; u < plan.new_unit_count; ++u) {
    const std::size_t off = u * current.unit_bytes;
    const std::size_t len =
        std::min(current.unit_bytes, new_data.size() - off);
    if (u >= plan.old_unit_count) {
      plan.changed_units.push_back(u);  // appended unit
      continue;
    }
    const FileInfo& old_unit = current.units[u];
    if (old_unit.original_bytes != len) {
      plan.changed_units.push_back(u);  // length change (tail unit)
      continue;
    }
    const crypto::Md5Digest digest =
        crypto::Md5::hash(new_data.subspan(off, len));
    if (digest != old_unit.content_digest) plan.changed_units.push_back(u);
  }
  return plan;
}

FileUpdate apply_update(const SecretKey& secret,
                        const ChunkedFileInfo& current,
                        std::span<const std::byte> new_data,
                        std::uint64_t new_version_base_id) {
  const UpdatePlan plan = plan_update(current, new_data);
  assert(!current.units.empty());
  const CodingParams params = current.units.front().params;

  FileUpdate update;
  update.changed_units = plan.changed_units;
  update.info.base_file_id = current.base_file_id;
  update.info.total_bytes = new_data.size();
  update.info.unit_bytes = current.unit_bytes;
  update.info.units.reserve(plan.new_unit_count);

  std::size_t next_changed = 0;
  for (std::size_t u = 0; u < plan.new_unit_count; ++u) {
    const bool changed = next_changed < plan.changed_units.size() &&
                         plan.changed_units[next_changed] == u;
    if (!changed) {
      update.info.units.push_back(current.units[u]);  // old metadata valid
      continue;
    }
    ++next_changed;
    const std::size_t off = u * current.unit_bytes;
    const std::size_t len =
        std::min(current.unit_bytes, new_data.size() - off);
    auto encoder = std::make_unique<FileEncoder>(
        secret, new_version_base_id + u, new_data.subspan(off, len), params);
    update.info.units.push_back(encoder->info());
    update.encoders.push_back(std::move(encoder));
  }
  return update;
}

}  // namespace fairshare::coding
