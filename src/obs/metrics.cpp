#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace fairshare::obs {

// ---------------------------------------------------------------- Histogram

std::size_t Histogram::index_of(std::uint64_t v) noexcept {
  if (v < kSub) return static_cast<std::size_t>(v);
  if (v >= (std::uint64_t{1} << kMaxPow)) return kOverflowIndex;
  const int b = 63 - std::countl_zero(v);  // 2^b <= v < 2^(b+1), b >= 3
  const std::uint64_t top = v >> (b - kSubBits);  // in [8, 15]
  return static_cast<std::size_t>((b - kSubBits) * 8 + top);
}

std::uint64_t Histogram::bound_of(std::size_t index) noexcept {
  if (index >= kOverflowIndex) return UINT64_MAX;
  if (index < kSub) return index;
  const int b = static_cast<int>(index / 8) + kSubBits - 1;
  const std::uint64_t top = index - std::size_t{8} * (b - kSubBits);
  return ((top + 1) << (b - kSubBits)) - 1;
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
  Snapshot snap;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[i];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  const std::uint64_t min = min_.load(std::memory_order_relaxed);
  snap.min = snap.count == 0 ? 0 : std::min(min, snap.max);
  return snap;
}

double Histogram::Snapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count))));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cum += buckets[i];
    if (cum >= target) {
      const double v = i == kOverflowIndex
                           ? static_cast<double>(max)
                           : static_cast<double>(bound_of(i));
      return std::clamp(v, static_cast<double>(min), static_cast<double>(max));
    }
  }
  return static_cast<double>(max);
}

// ---------------------------------------------------------- MetricsRegistry

std::string MetricsRegistry::key_of(std::string_view name,
                                    const LabelList& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

template <typename T>
T& MetricsRegistry::find_or_create(Table<T>& table, std::string_view name,
                                   LabelList labels) {
  std::sort(labels.begin(), labels.end());
  std::string key = key_of(name, labels);
  const auto it = table.find(key);
  if (it != table.end()) return *it->second.metric;
  Entry<T> entry;
  entry.name = std::string(name);
  entry.labels = std::move(labels);
  entry.metric = std::make_unique<T>();
  T& ref = *entry.metric;
  table.emplace(std::move(key), std::move(entry));
  return ref;
}

Counter& MetricsRegistry::counter(std::string_view name, LabelList labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(counters_, name, std::move(labels));
}

Gauge& MetricsRegistry::gauge(std::string_view name, LabelList labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(gauges_, name, std::move(labels));
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      LabelList labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_create(histograms_, name, std::move(labels));
}

RegistrySnapshot MetricsRegistry::snapshot(std::size_t max_spans) const {
  RegistrySnapshot out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.counters.reserve(counters_.size());
    for (const auto& [key, entry] : counters_)
      out.counters.push_back({entry.name, entry.labels, entry.metric->value()});
    out.gauges.reserve(gauges_.size());
    for (const auto& [key, entry] : gauges_)
      out.gauges.push_back({entry.name, entry.labels, entry.metric->value()});
    out.histograms.reserve(histograms_.size());
    for (const auto& [key, entry] : histograms_)
      out.histograms.push_back(
          {entry.name, entry.labels, entry.metric->snapshot()});
  }
  out.spans = spans_.snapshot();
  out.spans_pushed = spans_.pushed();
  if (out.spans.size() > max_spans)  // keep the newest
    out.spans.erase(out.spans.begin(),
                    out.spans.end() - static_cast<std::ptrdiff_t>(max_spans));
  return out;
}

std::uint64_t MetricsRegistry::counter_total(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t sum = 0;
  for (const auto& [key, entry] : counters_)
    if (entry.name == name) sum += entry.metric->value();
  return sum;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dtor'd
  return *registry;
}

}  // namespace fairshare::obs
