#include "obs/signal_dump.hpp"

#include <atomic>
#include <csignal>

namespace fairshare::obs {

namespace {

std::atomic<std::uint64_t> g_sigusr1_generation{0};

#ifdef SIGUSR1
extern "C" void on_sigusr1(int) {
  // Only an atomic bump: file IO happens in whichever polling loop
  // observes the generation change.
  g_sigusr1_generation.fetch_add(1, std::memory_order_relaxed);
}
#endif

}  // namespace

void enable_sigusr1_trigger() {
#ifdef SIGUSR1
  static std::atomic<bool> installed{false};
  if (!installed.exchange(true)) std::signal(SIGUSR1, on_sigusr1);
#endif
}

std::uint64_t sigusr1_generation() noexcept {
  return g_sigusr1_generation.load(std::memory_order_relaxed);
}

}  // namespace fairshare::obs
