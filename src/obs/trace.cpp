#include "obs/trace.hpp"

#include <algorithm>
#include <bit>

namespace fairshare::obs {

namespace {

std::size_t round_pow2(std::size_t v) {
  return std::bit_ceil(std::max<std::size_t>(v, 8));
}

}  // namespace

SpanRing::SpanRing(std::size_t capacity)
    : slots_(new Slot[round_pow2(capacity)]),
      mask_(round_pow2(capacity) - 1) {}

void SpanRing::push(const SpanRecord& rec) noexcept {
  const std::uint64_t t = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[t & mask_];
  s.seq.store(2 * t + 1, std::memory_order_release);
  s.id.store(rec.id, std::memory_order_relaxed);
  s.parent.store(rec.parent, std::memory_order_relaxed);
  s.start_ns.store(rec.start_ns, std::memory_order_relaxed);
  s.duration_ns.store(rec.duration_ns, std::memory_order_relaxed);
  s.name.store(rec.name, std::memory_order_relaxed);
  s.seq.store(2 * t + 2, std::memory_order_release);
}

std::vector<SpanRecord> SpanRing::snapshot() const {
  const std::size_t n = mask_ + 1;
  std::vector<std::pair<std::uint64_t, SpanRecord>> found;
  found.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Slot& s = slots_[i];
    const std::uint64_t seq1 = s.seq.load(std::memory_order_acquire);
    if (seq1 == 0 || (seq1 & 1)) continue;  // empty or mid-write
    SpanRecord rec;
    rec.id = s.id.load(std::memory_order_relaxed);
    rec.parent = s.parent.load(std::memory_order_relaxed);
    rec.start_ns = s.start_ns.load(std::memory_order_relaxed);
    rec.duration_ns = s.duration_ns.load(std::memory_order_relaxed);
    rec.name = s.name.load(std::memory_order_relaxed);
    const std::uint64_t seq2 = s.seq.load(std::memory_order_acquire);
    if (seq1 != seq2) continue;  // overwritten while reading
    found.emplace_back((seq1 - 2) / 2, rec);  // recover the push ticket
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<SpanRecord> out;
  out.reserve(found.size());
  for (auto& [ticket, rec] : found) out.push_back(rec);
  return out;
}

std::uint64_t next_span_id() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

TraceSpan::TraceSpan(SpanRing* ring, const char* name,
                     std::uint64_t parent) noexcept
    : ring_(ring),
      name_(name),
      id_(ring ? next_span_id() : 0),
      parent_(parent),
      start_(ring ? monotonic_ns() : 0) {}

void TraceSpan::end() noexcept {
  if (!ring_) return;
  SpanRecord rec;
  rec.id = id_;
  rec.parent = parent_;
  rec.start_ns = start_;
  rec.duration_ns = monotonic_ns() - start_;
  rec.name = name_;
  ring_->push(rec);
  ring_ = nullptr;
}

}  // namespace fairshare::obs
