// SIGUSR1-triggered registry dumps, without doing work in signal context:
// the handler only bumps an atomic generation counter; polling loops that
// already wake periodically (PeerServer's accept loop) compare generations
// and write the dump from a normal thread.
#pragma once

#include <cstdint>

namespace fairshare::obs {

/// Install the SIGUSR1 generation-bump handler (idempotent, thread-safe).
/// No-op on platforms without SIGUSR1.
void enable_sigusr1_trigger();

/// How many SIGUSR1 signals have been observed since the handler was
/// installed.  Pollers dump when the value changes.
std::uint64_t sigusr1_generation() noexcept;

}  // namespace fairshare::obs
