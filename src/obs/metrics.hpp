// Process-wide observability: cheap thread-safe instruments behind one
// registry, so every layer (net, coding, alloc, sim) reports through the
// same surface and exporters (obs/export.hpp) render one uniform artifact.
//
// Cost model — instruments are safe on hot paths:
//  * Counter::add is one relaxed fetch_add on a per-thread shard (no
//    cache-line ping-pong between recording threads);
//  * Gauge::set is one relaxed store;
//  * Histogram::record is three relaxed fetch_adds plus two bounded CAS
//    loops (min/max) on a fixed log-linear bucket table — no allocation,
//    no locks, ~12.5% worst-case relative quantile error (8 sub-buckets
//    per power of two);
//  * instrument REGISTRATION takes the registry mutex and allocates —
//    callers resolve Counter*/Gauge*/Histogram* once at setup and keep the
//    pointer, never look up per event.  Returned references are stable for
//    the registry's lifetime.
//
// Identity: an instrument is (name, sorted labels).  Looking up the same
// identity twice returns the same instrument; the same name with different
// labels is a different time series (e.g. per-user byte counters).  Names
// should already be Prometheus-shaped (snake_case, `_total` suffix on
// counters) — the exporters only sanitize, they do not rename.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace fairshare::obs {

/// Label set attached to an instrument; kept sorted by key internally.
using LabelList = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count, sharded so concurrent recorders
/// do not contend on one cache line.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  static constexpr std::size_t kShards = 8;  // power of two
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  static std::size_t shard_index() noexcept {
    static thread_local const std::size_t idx =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) &
        (kShards - 1);
    return idx;
  }
  std::array<Shard, kShards> shards_;
};

/// Last-written value (rates, ranks, share sizes).  add() is for +1/-1
/// occupancy tracking from multiple threads.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket log-linear histogram over non-negative integer values
/// (typically nanoseconds): exact buckets below 8, then 8 linear
/// sub-buckets per power of two up to 2^40 (~18 minutes in ns), then one
/// overflow bucket.  record() never allocates or locks.
///
/// Edge semantics (tests/obs/histogram_test.cpp pins these):
///  * negative / NaN inputs clamp to 0 and land in the first bucket;
///  * values >= 2^40 land in the overflow bucket; quantiles falling there
///    report the tracked maximum;
///  * quantiles from an empty histogram are 0;
///  * quantiles are clamped into [min, max] of recorded values, so a
///    single-sample histogram reports that sample exactly;
///  * within one Snapshot, quantile(q) is monotone in q.
class Histogram {
 public:
  static constexpr int kSubBits = 3;            ///< 2^3 sub-buckets
  static constexpr std::uint64_t kSub = 1u << kSubBits;
  static constexpr int kMaxPow = 40;            ///< overflow at 2^40
  static constexpr std::size_t kOverflowIndex =
      static_cast<std::size_t>((kMaxPow - 1 - kSubBits) * 8 + 15) + 1;  // 304
  static constexpr std::size_t kBuckets = kOverflowIndex + 1;           // 305

  /// Point-in-time copy; all quantile math runs on one of these so
  /// concurrent recording cannot break per-snapshot monotonicity.
  struct Snapshot {
    std::uint64_t count = 0;     ///< sum of bucket counts at copy time
    std::uint64_t sum = 0;       ///< sum of recorded values
    std::uint64_t min = 0;       ///< 0 when count == 0
    std::uint64_t max = 0;
    std::array<std::uint64_t, kBuckets> buckets{};

    double quantile(double q) const noexcept;
    double mean() const noexcept {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
  };

  void record(std::uint64_t v) noexcept {
    buckets_[index_of(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    update_min(v);
    update_max(v);
  }
  /// Convenience for durations/ratios; negatives and NaN clamp to 0.
  void record(double v) noexcept {
    std::uint64_t u = 0;
    if (v > 0.0)
      u = v >= 9.2e18 ? UINT64_MAX : static_cast<std::uint64_t>(v);
    record(u);
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  Snapshot snapshot() const noexcept;
  /// One-off quantile (takes a fresh snapshot; for correlated quantiles —
  /// p50 <= p95 <= p99 — take one Snapshot and query it).
  double quantile(double q) const noexcept { return snapshot().quantile(q); }

  /// Bucket index for a value (log-linear; monotone in v).
  static std::size_t index_of(std::uint64_t v) noexcept;
  /// Inclusive upper value bound of a bucket (overflow => UINT64_MAX).
  static std::uint64_t bound_of(std::size_t index) noexcept;

 private:
  void update_min(std::uint64_t v) noexcept {
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  void update_max(std::uint64_t v) noexcept {
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

/// Everything an exporter needs, copied under the registry lock in
/// deterministic (sorted-identity) order.
struct RegistrySnapshot {
  struct CounterSample {
    std::string name;
    LabelList labels;
    std::uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    LabelList labels;
    double value = 0.0;
  };
  struct HistogramSample {
    std::string name;
    LabelList labels;
    Histogram::Snapshot snap;
  };
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  std::vector<SpanRecord> spans;       ///< most recent first-N, start order
  std::uint64_t spans_pushed = 0;      ///< lifetime pushes (ring may wrap)
};

/// Owner of every instrument plus the span ring.  Instrument getters are
/// find-or-create and thread-safe; returned references stay valid for the
/// registry's lifetime.  global() is the process-wide default every layer
/// reports to unless handed an explicit registry (tests isolate that way).
class MetricsRegistry {
 public:
  explicit MetricsRegistry(std::size_t span_capacity = 4096)
      : spans_(span_capacity) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name, LabelList labels = {});
  Gauge& gauge(std::string_view name, LabelList labels = {});
  Histogram& histogram(std::string_view name, LabelList labels = {});

  SpanRing& spans() noexcept { return spans_; }
  const SpanRing& spans() const noexcept { return spans_; }

  RegistrySnapshot snapshot(std::size_t max_spans = 256) const;

  /// Sum of one counter series' values across all label sets (snapshot
  /// convenience for tests/benches).
  std::uint64_t counter_total(std::string_view name) const;

  static MetricsRegistry& global();

 private:
  template <typename T>
  struct Entry {
    std::string name;
    LabelList labels;
    std::unique_ptr<T> metric;
  };
  template <typename T>
  using Table = std::map<std::string, Entry<T>, std::less<>>;

  static std::string key_of(std::string_view name, const LabelList& labels);
  template <typename T>
  static T& find_or_create(Table<T>& table, std::string_view name,
                           LabelList labels);

  mutable std::mutex mutex_;
  Table<Counter> counters_;
  Table<Gauge> gauges_;
  Table<Histogram> histograms_;
  SpanRing spans_;
};

}  // namespace fairshare::obs
