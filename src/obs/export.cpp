#include "obs/export.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

namespace fairshare::obs {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) v = 0.0;  // JSON has no NaN/Inf
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_labels_json(std::string& out, const LabelList& labels) {
  out += "\"labels\":{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, k);
    out += "\":\"";
    append_escaped(out, v);
    out += '"';
  }
  out += '}';
}

char sanitize_char(char c, bool digits_ok) {
  const bool alpha =
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
  const bool digit = c >= '0' && c <= '9';
  return alpha || (digit && digits_ok) ? c : '_';
}

std::string sanitize_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (std::size_t i = 0; i < name.size(); ++i)
    out += sanitize_char(name[i], i > 0);
  return out.empty() ? std::string("_") : out;
}

void append_prom_labels(std::string& out, const LabelList& labels,
                        const char* extra_key = nullptr,
                        const std::string& extra_value = {}) {
  if (labels.empty() && !extra_key) return;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += sanitize_name(k);
    out += "=\"";
    append_escaped(out, v);
    out += '"';
  }
  if (extra_key) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += '"';
  }
  out += '}';
}

}  // namespace

std::string to_json(const RegistrySnapshot& snap) {
  std::string out;
  out += "{\n\"schema\": 1,\n\"counters\": [";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    const auto& c = snap.counters[i];
    out += i ? ",\n" : "\n";
    out += "{\"name\":\"";
    append_escaped(out, c.name);
    out += "\",";
    append_labels_json(out, c.labels);
    out += ",\"value\":";
    append_u64(out, c.value);
    out += '}';
  }
  out += "\n],\n\"gauges\": [";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    const auto& g = snap.gauges[i];
    out += i ? ",\n" : "\n";
    out += "{\"name\":\"";
    append_escaped(out, g.name);
    out += "\",";
    append_labels_json(out, g.labels);
    out += ",\"value\":";
    append_double(out, g.value);
    out += '}';
  }
  out += "\n],\n\"histograms\": [";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    out += i ? ",\n" : "\n";
    out += "{\"name\":\"";
    append_escaped(out, h.name);
    out += "\",";
    append_labels_json(out, h.labels);
    out += ",\"count\":";
    append_u64(out, h.snap.count);
    out += ",\"sum\":";
    append_u64(out, h.snap.sum);
    out += ",\"min\":";
    append_u64(out, h.snap.min);
    out += ",\"max\":";
    append_u64(out, h.snap.max);
    out += ",\"mean\":";
    append_double(out, h.snap.mean());
    out += ",\"p50\":";
    append_double(out, h.snap.quantile(0.50));
    out += ",\"p95\":";
    append_double(out, h.snap.quantile(0.95));
    out += ",\"p99\":";
    append_double(out, h.snap.quantile(0.99));
    out += '}';
  }
  out += "\n],\n\"spans\": [";
  for (std::size_t i = 0; i < snap.spans.size(); ++i) {
    const SpanRecord& s = snap.spans[i];
    out += i ? ",\n" : "\n";
    out += "{\"name\":\"";
    append_escaped(out, s.name ? s.name : "");
    out += "\",\"id\":";
    append_u64(out, s.id);
    out += ",\"parent\":";
    append_u64(out, s.parent);
    out += ",\"start_ns\":";
    append_u64(out, s.start_ns);
    out += ",\"duration_ns\":";
    append_u64(out, s.duration_ns);
    out += '}';
  }
  out += "\n],\n\"spans_pushed\": ";
  append_u64(out, snap.spans_pushed);
  out += "\n}\n";
  return out;
}

std::string to_json(const MetricsRegistry& registry, std::size_t max_spans) {
  return to_json(registry.snapshot(max_spans));
}

std::string to_prometheus(const RegistrySnapshot& snap) {
  std::string out;
  std::string last_type_for;
  const auto type_line = [&](const std::string& name, const char* type) {
    if (name == last_type_for) return;  // one TYPE line per family
    last_type_for = name;
    out += "# TYPE ";
    out += name;
    out += ' ';
    out += type;
    out += '\n';
  };
  for (const auto& c : snap.counters) {
    const std::string name = sanitize_name(c.name);
    type_line(name, "counter");
    out += name;
    append_prom_labels(out, c.labels);
    out += ' ';
    append_u64(out, c.value);
    out += '\n';
  }
  for (const auto& g : snap.gauges) {
    const std::string name = sanitize_name(g.name);
    type_line(name, "gauge");
    out += name;
    append_prom_labels(out, g.labels);
    out += ' ';
    append_double(out, g.value);
    out += '\n';
  }
  for (const auto& h : snap.histograms) {
    const std::string name = sanitize_name(h.name);
    type_line(name, "histogram");
    std::uint64_t cum = 0;
    // The closing le="+Inf" series below covers the overflow bucket.
    for (std::size_t b = 0; b < Histogram::kOverflowIndex; ++b) {
      if (h.snap.buckets[b] == 0) continue;
      cum += h.snap.buckets[b];
      char buf[24];
      std::snprintf(buf, sizeof buf, "%" PRIu64, Histogram::bound_of(b));
      out += name;
      out += "_bucket";
      append_prom_labels(out, h.labels, "le", buf);
      out += ' ';
      append_u64(out, cum);
      out += '\n';
    }
    out += name;
    out += "_bucket";
    append_prom_labels(out, h.labels, "le", "+Inf");
    out += ' ';
    append_u64(out, h.snap.count);
    out += '\n';
    out += name;
    out += "_sum";
    append_prom_labels(out, h.labels);
    out += ' ';
    append_u64(out, h.snap.sum);
    out += '\n';
    out += name;
    out += "_count";
    append_prom_labels(out, h.labels);
    out += ' ';
    append_u64(out, h.snap.count);
    out += '\n';
  }
  return out;
}

std::string to_prometheus(const MetricsRegistry& registry) {
  return to_prometheus(registry.snapshot());
}

bool dump_json(const MetricsRegistry& registry, const std::string& path) {
  const std::string body = to_json(registry);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    if (!out.good()) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  return !ec;
}

}  // namespace fairshare::obs
