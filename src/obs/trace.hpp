// Lightweight scoped tracing: TraceSpan stamps a monotonic start on
// construction and pushes one fixed-size SpanRecord into a bounded
// lock-free ring when it ends.  The ring overwrites oldest-first, so
// tracing never blocks, never allocates after construction, and costs a
// handful of relaxed atomic stores per span — cheap enough for per-session
// and per-slot scopes on hot paths.
//
// Span names must be string literals (or otherwise outlive the ring): the
// ring stores the pointer, not a copy.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace fairshare::obs {

/// Steady-clock nanoseconds (process-relative; only differences matter).
inline std::uint64_t monotonic_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One finished span.  parent == 0 means "root".
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  const char* name = "";
};

/// Bounded MPMC overwrite-oldest ring of SpanRecords.  Writers claim a
/// monotonically increasing ticket and publish through a per-slot sequence
/// (odd while writing, even when done); readers discard any slot whose
/// sequence moved mid-read.  Record fields are themselves relaxed atomics,
/// so a reader racing a wrapping writer sees a discarded-or-consistent
/// record, never a torn load.
class SpanRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 8).
  explicit SpanRing(std::size_t capacity);

  void push(const SpanRecord& rec) noexcept;

  /// Consistent records currently resident, oldest push first.  Size is at
  /// most capacity(); concurrent pushes may hide a few in-flight slots.
  std::vector<SpanRecord> snapshot() const;

  std::size_t capacity() const noexcept { return mask_ + 1; }
  /// Lifetime pushes; pushed() - capacity() is a lower bound on overwrites.
  std::uint64_t pushed() const noexcept {
    return head_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  // 0 empty; 2t+1 writing; 2t+2 done
    std::atomic<std::uint64_t> id{0};
    std::atomic<std::uint64_t> parent{0};
    std::atomic<std::uint64_t> start_ns{0};
    std::atomic<std::uint64_t> duration_ns{0};
    std::atomic<const char*> name{""};
  };
  std::unique_ptr<Slot[]> slots_;
  std::size_t mask_;
  std::atomic<std::uint64_t> head_{0};
};

/// RAII span: records [construction, end()/destruction) into a ring.
/// A null ring makes every operation a no-op, so call sites stay
/// unconditional and cost one branch when tracing is off.
class TraceSpan {
 public:
  TraceSpan(SpanRing* ring, const char* name,
            std::uint64_t parent = 0) noexcept;
  ~TraceSpan() { end(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Record now instead of at scope exit; idempotent.
  void end() noexcept;
  /// This span's id, for parenting children (0 when the ring is null).
  std::uint64_t id() const noexcept { return id_; }

 private:
  SpanRing* ring_;
  const char* name_;
  std::uint64_t id_;
  std::uint64_t parent_;
  std::uint64_t start_;
};

/// Process-unique span id (never 0).
std::uint64_t next_span_id() noexcept;

}  // namespace fairshare::obs
