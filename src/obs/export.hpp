// Registry exporters: one JSON artifact for dumps/tools and Prometheus
// text exposition for scrapers.  Both render a RegistrySnapshot, so a dump
// is a coherent point-in-time view regardless of concurrent recording.
//
// The JSON layout is deliberately line-oriented — every sample object sits
// alone on its own line — so `fairshare_cli stats` (and shell pipelines)
// can consume it without a full JSON parser, while remaining strictly
// valid JSON for everything else.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace fairshare::obs {

/// Whole registry as JSON (schema 1): counters, gauges, histograms with
/// count/sum/min/max/mean/p50/p95/p99, the most recent `max_spans` spans,
/// and the lifetime span-push count.
std::string to_json(const MetricsRegistry& registry,
                    std::size_t max_spans = 256);
std::string to_json(const RegistrySnapshot& snap);

/// Prometheus text exposition format (version 0.0.4).  Histograms emit
/// cumulative non-empty `_bucket{le=...}` series plus `_sum`/`_count`;
/// metric and label names are sanitized to [a-zA-Z0-9_:].
std::string to_prometheus(const MetricsRegistry& registry);
std::string to_prometheus(const RegistrySnapshot& snap);

/// Write to_json(registry) to `path` atomically (temp file + rename), so a
/// reader signalled by SIGUSR1 never observes a half-written dump.
/// Returns false if the file cannot be written.
bool dump_json(const MetricsRegistry& registry, const std::string& path);

}  // namespace fairshare::obs
