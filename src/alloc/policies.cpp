#include "alloc/policies.hpp"

#include <algorithm>
#include <cassert>

namespace fairshare::alloc {

// ------------------------------------- ProportionalContributionPolicy (2)

ProportionalContributionPolicy::ProportionalContributionPolicy(
    std::size_t n_peers, double epsilon)
    : received_total_(n_peers, epsilon) {
  assert(epsilon > 0.0 && "Equation (2) needs positive initial values");
}

ProportionalContributionPolicy::ProportionalContributionPolicy(
    std::vector<double> initial_ledger)
    : received_total_(std::move(initial_ledger)) {
#ifndef NDEBUG
  for (double v : received_total_)
    assert(v > 0.0 && "Equation (2) needs positive initial values");
#endif
}

void ProportionalContributionPolicy::allocate(const PeerContext& ctx,
                                              std::span<double> out) {
  assert(out.size() == received_total_.size());
  std::fill(out.begin(), out.end(), 0.0);
  double denom = 0.0;
  for (std::size_t l = 0; l < out.size(); ++l)
    if (ctx.requesting[l]) denom += received_total_[l];
  if (denom <= 0.0) return;
  for (std::size_t j = 0; j < out.size(); ++j)
    if (ctx.requesting[j])
      out[j] = ctx.capacity * received_total_[j] / denom;
}

void ProportionalContributionPolicy::observe(const SlotFeedback& feedback) {
  assert(feedback.received.size() == received_total_.size());
  for (std::size_t j = 0; j < received_total_.size(); ++j)
    received_total_[j] += feedback.received[j];
}

// ------------------------------------------ DecayingContributionPolicy

DecayingContributionPolicy::DecayingContributionPolicy(std::size_t n_peers,
                                                       double decay,
                                                       double epsilon)
    : ProportionalContributionPolicy(n_peers, epsilon), decay_(decay) {
  assert(decay > 0.0 && decay <= 1.0);
}

void DecayingContributionPolicy::observe(const SlotFeedback& feedback) {
  assert(feedback.received.size() == received_total_.size());
  for (std::size_t j = 0; j < received_total_.size(); ++j)
    received_total_[j] =
        decay_ * received_total_[j] + feedback.received[j];
}

// ------------------------------------------ DeclaredProportionalPolicy (3)

void DeclaredProportionalPolicy::allocate(const PeerContext& ctx,
                                          std::span<double> out) {
  std::fill(out.begin(), out.end(), 0.0);
  double denom = 0.0;
  for (std::size_t l = 0; l < out.size(); ++l)
    if (ctx.requesting[l]) denom += ctx.declared[l];
  if (denom <= 0.0) return;
  for (std::size_t j = 0; j < out.size(); ++j)
    if (ctx.requesting[j])
      out[j] = ctx.capacity * ctx.declared[j] / denom;
}

// ------------------------------------------------------- EqualSplitPolicy

void EqualSplitPolicy::allocate(const PeerContext& ctx,
                                std::span<double> out) {
  std::fill(out.begin(), out.end(), 0.0);
  const auto requesters = static_cast<double>(
      std::count_if(ctx.requesting.begin(), ctx.requesting.end(),
                    [](std::uint8_t r) { return r != 0; }));
  if (requesters == 0.0) return;
  for (std::size_t j = 0; j < out.size(); ++j)
    if (ctx.requesting[j]) out[j] = ctx.capacity / requesters;
}

// -------------------------------------------------------------- adversaries

void FreeRiderPolicy::allocate(const PeerContext&, std::span<double> out) {
  std::fill(out.begin(), out.end(), 0.0);
}

void SelfOnlyPolicy::allocate(const PeerContext& ctx, std::span<double> out) {
  std::fill(out.begin(), out.end(), 0.0);
  if (ctx.requesting[ctx.self]) out[ctx.self] = ctx.capacity;
}

CoalitionPolicy::CoalitionPolicy(std::vector<std::size_t> members)
    : members_(std::move(members)) {}

void CoalitionPolicy::allocate(const PeerContext& ctx,
                               std::span<double> out) {
  std::fill(out.begin(), out.end(), 0.0);
  std::size_t active = 0;
  for (std::size_t m : members_)
    if (ctx.requesting[m]) ++active;
  if (active == 0) return;
  for (std::size_t m : members_)
    if (ctx.requesting[m])
      out[m] = ctx.capacity / static_cast<double>(active);
}

}  // namespace fairshare::alloc
