// Mutex wrapper making an AllocationPolicy safe to drive from several
// threads.
//
// Policies themselves follow the external-synchronization contract of
// policy.hpp: the simulator calls them from one thread and pays nothing
// for locks.  The live TCP server (net::PeerServer) is different — its
// pacing scheduler ticks on one thread while ledger seeding and snapshots
// may come from others — so it drives its policy through this wrapper.
#pragma once

#include <memory>
#include <mutex>
#include <utility>

#include "alloc/policy.hpp"

namespace fairshare::alloc {

class SynchronizedPolicy final : public AllocationPolicy {
 public:
  explicit SynchronizedPolicy(std::unique_ptr<AllocationPolicy> inner)
      : inner_(std::move(inner)) {}

  void allocate(const PeerContext& ctx, std::span<double> out) override {
    std::lock_guard<std::mutex> lock(mutex_);
    inner_->allocate(ctx, out);
  }

  void observe(const SlotFeedback& feedback) override {
    std::lock_guard<std::mutex> lock(mutex_);
    inner_->observe(feedback);
  }

  /// Run `fn(AllocationPolicy&)` under the lock — for ledger inspection or
  /// other concrete-policy access that must not race the scheduler.
  template <typename Fn>
  auto with_inner(Fn&& fn) {
    std::lock_guard<std::mutex> lock(mutex_);
    return std::forward<Fn>(fn)(*inner_);
  }

 private:
  std::mutex mutex_;
  std::unique_ptr<AllocationPolicy> inner_;
};

}  // namespace fairshare::alloc
