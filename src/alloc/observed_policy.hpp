// Observability decorator for allocation policies: publishes every
// allocate() decision into a MetricsRegistry as per-user share gauges, so
// the division of a peer's upload capacity — the quantity Equation (2) is
// about — is inspectable live without touching the policy itself.
//
// Same synchronization contract as the wrapped policy (policy.hpp): not
// internally synchronized.  Wrap in alloc::SynchronizedPolicy (or drive
// from one thread) exactly as you would the inner policy; the gauges and
// counters being written are themselves thread-safe.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "alloc/policy.hpp"
#include "obs/metrics.hpp"

namespace fairshare::alloc {

class ObservedPolicy final : public AllocationPolicy {
 public:
  /// `peer_label` distinguishes this policy's series in a shared registry
  /// (label key "peer"); gauges are created lazily, one per user slot.
  ObservedPolicy(std::unique_ptr<AllocationPolicy> inner,
                 obs::MetricsRegistry& registry, std::string peer_label);

  void allocate(const PeerContext& ctx, std::span<double> out) override;
  void observe(const SlotFeedback& feedback) override;

  AllocationPolicy& inner() { return *inner_; }

 private:
  std::unique_ptr<AllocationPolicy> inner_;
  obs::MetricsRegistry& registry_;
  std::string peer_label_;
  std::vector<obs::Gauge*> share_gauges_;  // by user slot, lazily created
  obs::Counter* allocations_;
  obs::Counter* feedback_;
};

}  // namespace fairshare::alloc
