// Bandwidth-allocation policy interface.
//
// Each peer runs its own policy; the simulation engine (sim/simulator.hpp)
// asks the policy once per slot how to divide the peer's upload capacity
// among requesting users, then reports back what the peer's *own user*
// received that slot.  The information flow deliberately matches Section
// IV: "the proposed scheme relies solely on local measurements taken at
// each peer, and it doesn't require any transfer of information among the
// peers or users, which is prone to adversary actions."
//
// A policy sees only:
//  * its own index, capacity, and the current request indicator vector
//    (who is asking — observable, since requesters open connections);
//  * the capacities peers *declare* (used by the gameable Eq. 3 baseline);
//  * per-slot feedback about what its own user received from each peer.
// It never sees other peers' private contribution ledgers.
//
// Synchronization contract: policies are NOT internally synchronized.  The
// simulator drives each policy from a single thread; any caller that mixes
// threads (the live TCP server's pacing scheduler plus seeding/snapshot
// calls) must serialize access externally — see
// alloc/synchronized_policy.hpp for the standard wrapper.
#pragma once

#include <cstdint>
#include <span>

namespace fairshare::alloc {

/// Read-only view handed to AllocationPolicy::allocate each slot.
struct PeerContext {
  std::size_t self = 0;          ///< this peer's index
  std::uint64_t slot = 0;        ///< current time slot t
  double capacity = 0.0;         ///< mu_i available this slot (kbps)
  /// requesting[j] != 0 iff I_j(t) = 1.
  std::span<const std::uint8_t> requesting;
  /// Capacity each peer publicly declares (truthful peers declare mu_j;
  /// liars may inflate).  Only declared-proportional policies read this.
  std::span<const double> declared;
};

/// What this peer's own user received in the slot that just ended:
/// received[j] = mu_ji(t), the bandwidth peer j devoted to user i.
/// This is the "periodic feedback to peer u" of Figure 4(b).
struct SlotFeedback {
  std::uint64_t slot = 0;
  std::span<const double> received;
};

/// Per-peer allocation strategy.  allocate() must fill out[j] with the
/// bandwidth this peer devotes to user j this slot; the engine zeroes
/// entries for non-requesting users and rescales if the row sum exceeds
/// capacity (a peer cannot upload more than its physical link allows).
class AllocationPolicy {
 public:
  virtual ~AllocationPolicy() = default;

  virtual void allocate(const PeerContext& ctx, std::span<double> out) = 0;

  /// End-of-slot local observation; default ignores it.
  virtual void observe(const SlotFeedback& feedback) { (void)feedback; }
};

}  // namespace fairshare::alloc
