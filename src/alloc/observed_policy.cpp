#include "alloc/observed_policy.hpp"

namespace fairshare::alloc {

ObservedPolicy::ObservedPolicy(std::unique_ptr<AllocationPolicy> inner,
                               obs::MetricsRegistry& registry,
                               std::string peer_label)
    : inner_(std::move(inner)),
      registry_(registry),
      peer_label_(std::move(peer_label)),
      allocations_(&registry.counter("fairshare_alloc_allocations_total",
                                     {{"peer", peer_label_}})),
      feedback_(&registry.counter("fairshare_alloc_feedback_total",
                                  {{"peer", peer_label_}})) {}

void ObservedPolicy::allocate(const PeerContext& ctx, std::span<double> out) {
  inner_->allocate(ctx, out);
  allocations_->add();
  if (share_gauges_.size() < out.size()) {
    share_gauges_.reserve(out.size());
    for (std::size_t j = share_gauges_.size(); j < out.size(); ++j)
      share_gauges_.push_back(&registry_.gauge(
          "fairshare_alloc_share_kbps",
          {{"peer", peer_label_}, {"user", std::to_string(j)}}));
  }
  for (std::size_t j = 0; j < out.size(); ++j)
    share_gauges_[j]->set(ctx.requesting[j] ? out[j] : 0.0);
}

void ObservedPolicy::observe(const SlotFeedback& feedback) {
  inner_->observe(feedback);
  feedback_->add();
}

}  // namespace fairshare::alloc
