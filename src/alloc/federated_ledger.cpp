#include "alloc/federated_ledger.hpp"

#include <cmath>

namespace fairshare::alloc {

bool FederatedLedger::record(std::uint64_t user_id, std::uint64_t origin,
                             double total) {
  if (!std::isfinite(total) || total < 0.0) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  double& slot = totals_[{user_id, origin}];
  if (total <= slot) return false;
  slot = total;
  return true;
}

std::size_t FederatedLedger::merge(const std::vector<Entry>& entries) {
  std::size_t grew = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& e : entries) {
    if (!std::isfinite(e.total) || e.total < 0.0) continue;
    double& slot = totals_[{e.user_id, e.origin}];
    if (e.total > slot) {
      slot = e.total;
      ++grew;
    }
  }
  return grew;
}

std::vector<FederatedLedger::Entry> FederatedLedger::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Entry> out;
  out.reserve(totals_.size());
  for (const auto& [key, total] : totals_)
    out.push_back({key.first, key.second, total});
  return out;
}

double FederatedLedger::swarm_total(std::uint64_t user_id,
                                    std::uint64_t exclude_origin) const {
  std::lock_guard<std::mutex> lock(mutex_);
  double sum = 0.0;
  // Entries for one user are contiguous under (user, origin) ordering.
  for (auto it = totals_.lower_bound({user_id, 0});
       it != totals_.end() && it->first.first == user_id; ++it)
    if (it->first.second != exclude_origin) sum += it->second;
  return sum;
}

std::size_t FederatedLedger::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return totals_.size();
}

}  // namespace fairshare::alloc
