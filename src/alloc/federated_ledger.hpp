// Swarm-wide contribution ledger: the CRDT underneath federation.
//
// Each server measures per-user contribution locally (bytes it served on
// the user's behalf — the same quantity Eq. (2)'s ledger S accumulates).
// Federation exchanges those measurements so a user who contributed on
// server A keeps its standing when it downloads from server B.  The
// exchanged state is a grow-only map keyed by (user, origin-server) whose
// values are cumulative byte totals:
//
//   * each origin only ever writes its own (user, self) entries, and only
//     monotonically (totals are cumulative);
//   * merge takes max per key, so the map is a join-semilattice: merges
//     are idempotent, commutative, and associative — gossip can duplicate,
//     reorder, or cross messages and every replica still converges to the
//     per-key maximum, which is the per-origin truth;
//   * a user's swarm-wide contribution is the sum over origins, optionally
//     excluding one origin (a server excludes itself: its own measurement
//     already flows into its policy through the ordinary feedback path).
//
// Thread safety: all methods are internally synchronized — the gossip
// thread, the serving path's pacing tick, and status probes all touch one
// ledger concurrently.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

namespace fairshare::alloc {

class FederatedLedger {
 public:
  /// One (user, origin) total, as gossiped on the wire.
  struct Entry {
    std::uint64_t user_id = 0;
    std::uint64_t origin = 0;  ///< peer id of the measuring server
    double total = 0.0;        ///< cumulative contribution (bytes)

    bool operator==(const Entry&) const = default;
  };

  /// Record a local measurement: keeps max(current, total), so replayed
  /// or stale publishes are harmless.  Returns true when the entry grew.
  bool record(std::uint64_t user_id, std::uint64_t origin, double total);

  /// CRDT max-merge of remote entries; returns how many entries grew
  /// (new keys count).  Non-finite or negative totals are dropped — wire
  /// input must not poison the allocation arithmetic.
  std::size_t merge(const std::vector<Entry>& entries);

  /// Every entry, sorted by (user, origin) — the gossip payload.
  std::vector<Entry> snapshot() const;

  /// Sum of a user's totals across origins, excluding `exclude_origin`
  /// (a server passes its own id so locally-measured contribution is not
  /// double-counted against its feedback path).
  double swarm_total(std::uint64_t user_id,
                     std::uint64_t exclude_origin) const;

  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, double> totals_;
};

}  // namespace fairshare::alloc
