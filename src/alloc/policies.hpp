// Concrete allocation policies: the paper's rule, its baselines, and the
// adversarial strategies used in the fairness experiments.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "alloc/policy.hpp"

namespace fairshare::alloc {

/// The paper's proposed rule, Equation (2):
///
///   mu_ij(t) = mu_i * I_j(t) * S_ji(t) / sum_l I_l(t) * S_li(t)
///
/// where S_ji(t) = sum_{k<t} mu_ji(k) is the cumulative bandwidth peer j
/// has contributed to this peer's user, measured locally.  S starts at a
/// small equal positive epsilon ("arbitrary small positive initial
/// values"), which also matches the simulator setup of Section V.
class ProportionalContributionPolicy : public AllocationPolicy {
 public:
  ProportionalContributionPolicy(std::size_t n_peers, double epsilon = 1.0);

  /// Arbitrary positive initial ledger ("nodes could be assigned any
  /// feasible initial allocation of upload bandwidth", Section V) —
  /// Figure 5(a)'s random initial transient uses this.
  explicit ProportionalContributionPolicy(std::vector<double> initial_ledger);

  void allocate(const PeerContext& ctx, std::span<double> out) override;
  void observe(const SlotFeedback& feedback) override;

  /// Cumulative contribution ledger S_ji (for tests/inspection).
  const std::vector<double>& ledger() const { return received_total_; }

 protected:
  std::vector<double> received_total_;  // S_ji, indexed by j
};

/// Ablation A2 (the paper's own future-work suggestion): identical to
/// Equation (2) but the ledger is an exponentially decayed sum,
/// S <- decay * S + received, so "newer contributions" are weighed
/// "disproportionately ... over older ones" and the system adapts faster
/// (at some cost in long-run fairness smoothing).
class DecayingContributionPolicy final
    : public ProportionalContributionPolicy {
 public:
  DecayingContributionPolicy(std::size_t n_peers, double decay,
                             double epsilon = 1.0);

  void observe(const SlotFeedback& feedback) override;

 private:
  double decay_;
};

/// The motivating baseline, Equation (3) (global proportional fairness in
/// the style of Yang & de Veciana, self-contributions included):
///
///   mu_ij(t) = mu_i * I_j(t) * d_j / sum_l I_l(t) * d_l
///
/// where d_j is peer j's *declared* capacity.  Section IV-B shows
/// d(allocation)/d(declared) > 0 — "a strong incentive for peer j to
/// declare a high contribution" — which the liar-attack ablation
/// demonstrates.
class DeclaredProportionalPolicy final : public AllocationPolicy {
 public:
  void allocate(const PeerContext& ctx, std::span<double> out) override;
};

/// Naive baseline: equal split among current requesters.
class EqualSplitPolicy final : public AllocationPolicy {
 public:
  void allocate(const PeerContext& ctx, std::span<double> out) override;
};

/// Adversary: contributes nothing to anyone (free rider).  Note the engine
/// still lets its *user* request; Theorem 1 predicts it ends up with little
/// more than what its own peer gives it (here: nothing).
class FreeRiderPolicy final : public AllocationPolicy {
 public:
  void allocate(const PeerContext& ctx, std::span<double> out) override;
};

/// Adversary: serves only its own user; other requesters get nothing.
class SelfOnlyPolicy final : public AllocationPolicy {
 public:
  void allocate(const PeerContext& ctx, std::span<double> out) override;
};

/// Adversary/collusion: splits capacity equally among requesting coalition
/// members only (the paper argues Theorem 1's guarantee survives any such
/// coalition strategy).
class CoalitionPolicy final : public AllocationPolicy {
 public:
  explicit CoalitionPolicy(std::vector<std::size_t> members);
  void allocate(const PeerContext& ctx, std::span<double> out) override;

 private:
  std::vector<std::size_t> members_;
};

}  // namespace fairshare::alloc
