// Internal: per-scalar window tables for the wide fields GF(2^16)/GF(2^32).
//
// W[b][v] = c * (v << 8b), so a symbol product is kBytes lookups plus
// kBytes-1 xors.  Built in O(256 * kBytes) xors per scalar via the
// gray-code recurrence W[v] = W[v & (v-1)] ^ cx[...], then amortized over
// the m >= 8192 symbols of a message row.  Shared between the portable
// per-symbol kernels (row_ops.cpp) and the widened 64-bit kernels
// (row_ops_simd.cpp).
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "gf/field.hpp"

namespace fairshare::gf::detail {

template <unsigned Bits>
struct WindowTables {
  using F = GF<Bits>;
  using Elem = typename F::Elem;
  static constexpr unsigned kBytes = Bits / 8;
  std::array<std::array<Elem, 256>, kBytes> w;

  explicit WindowTables(Elem c) {
    // cx[j] = c * x^j for j in [0, Bits).
    std::array<std::uint64_t, Bits> cx;
    std::uint64_t v = c;
    for (unsigned j = 0; j < Bits; ++j) {
      cx[j] = v;
      v <<= 1;
      if ((v >> Bits) & 1) v ^= F::modulus;
    }
    for (unsigned b = 0; b < kBytes; ++b) {
      w[b][0] = 0;
      for (unsigned t = 1; t < 256; ++t) {
        const unsigned low = t & (t - 1);
        const unsigned j = static_cast<unsigned>(std::countr_zero(t));
        w[b][t] = static_cast<Elem>(w[b][low] ^ cx[8 * b + j]);
      }
    }
  }

  Elem mul(Elem x) const {
    Elem r = w[0][x & 0xFF];
    for (unsigned b = 1; b < kBytes; ++b)
      r = static_cast<Elem>(r ^ w[b][(x >> (8 * b)) & 0xFF]);
    return r;
  }
};

}  // namespace fairshare::gf::detail
