// Internal: per-scalar product tables for the wide fields GF(2^16)/GF(2^32).
//
// All three table shapes here are views of the same object — the GF(2)-
// linear map x -> c*x, sliced at different granularities and built from the
// shared cx_powers() basis (cx[j] = c * x^j):
//   * WindowTables: W[b][v] = c * (v << 8b).  A symbol product is kBytes
//     lookups plus kBytes-1 xors; built in O(256 * kBytes) xors per scalar
//     via the gray-code recurrence W[v] = W[v & (v-1)] ^ cx[...], then
//     amortized over the m >= 8192 symbols of a message row.  Consumed by
//     the portable per-symbol kernels (row_ops.cpp) and the widened 64-bit
//     kernels (row_ops_simd.cpp).
//   * NibbleTables: nt[j][o][v] = byte o of c * (v << 4j).  The 4-bit-index
//     split of the same map, shaped for pshufb: each [j][o] sub-table is 16
//     bytes, so the AVX2 split-table kernels look products up a nibble at a
//     time on byte planes.  Built in O(16 * kNibbles) xors per scalar.
//   * GfniMatrices: m[o][k] is the 8x8 GF(2) bit-matrix mapping input byte
//     k of a symbol to output byte o, in gf2p8affineqb operand layout (row
//     i of the matrix lives at qword byte 7-i; row bit j corresponds to
//     input bit j).  The GFNI kernels apply these per byte plane with zero
//     table memory.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "gf/field.hpp"

namespace fairshare::gf::detail {

/// cx[j] = c * x^j for j in [0, Bits): the bit basis of multiplication by c.
template <unsigned Bits>
constexpr std::array<std::uint64_t, Bits> cx_powers(std::uint64_t c) {
  std::array<std::uint64_t, Bits> cx{};
  std::uint64_t v = c;
  for (unsigned j = 0; j < Bits; ++j) {
    cx[j] = v;
    v <<= 1;
    if ((v >> Bits) & 1) v ^= GF<Bits>::modulus;
  }
  return cx;
}

template <unsigned Bits>
struct WindowTables {
  using F = GF<Bits>;
  using Elem = typename F::Elem;
  static constexpr unsigned kBytes = Bits / 8;
  std::array<std::array<Elem, 256>, kBytes> w;

  explicit WindowTables(Elem c) {
    const auto cx = cx_powers<Bits>(c);
    for (unsigned b = 0; b < kBytes; ++b) {
      w[b][0] = 0;
      for (unsigned t = 1; t < 256; ++t) {
        const unsigned low = t & (t - 1);
        const unsigned j = static_cast<unsigned>(std::countr_zero(t));
        w[b][t] = static_cast<Elem>(w[b][low] ^ cx[8 * b + j]);
      }
    }
  }

  Elem mul(Elem x) const {
    Elem r = w[0][x & 0xFF];
    for (unsigned b = 1; b < kBytes; ++b)
      r = static_cast<Elem>(r ^ w[b][(x >> (8 * b)) & 0xFF]);
    return r;
  }
};

template <unsigned Bits>
struct NibbleTables {
  using Elem = typename GF<Bits>::Elem;
  static constexpr unsigned kNibbles = Bits / 4;
  static constexpr unsigned kBytes = Bits / 8;
  // t[j][o] is one 16-byte pshufb operand: byte o of c * (v << 4j).
  alignas(16) std::uint8_t t[kNibbles][kBytes][16];

  explicit NibbleTables(Elem c) {
    const auto cx = cx_powers<Bits>(c);
    for (unsigned j = 0; j < kNibbles; ++j) {
      std::uint64_t p[16];
      p[0] = 0;
      for (unsigned v = 1; v < 16; ++v) {
        const unsigned low = v & (v - 1);
        const unsigned bit = static_cast<unsigned>(std::countr_zero(v));
        p[v] = p[low] ^ cx[4 * j + bit];
      }
      for (unsigned o = 0; o < kBytes; ++o)
        for (unsigned v = 0; v < 16; ++v)
          t[j][o][v] = static_cast<std::uint8_t>(p[v] >> (8 * o));
    }
  }

  Elem mul(Elem x) const {
    std::uint64_t r = 0;
    for (unsigned j = 0; j < kNibbles; ++j) {
      const unsigned nib = (x >> (4 * j)) & 0xF;
      for (unsigned o = 0; o < kBytes; ++o)
        r ^= static_cast<std::uint64_t>(t[j][o][nib]) << (8 * o);
    }
    return static_cast<Elem>(r);
  }
};

template <unsigned Bits>
struct GfniMatrices {
  using Elem = typename GF<Bits>::Elem;
  static constexpr unsigned kBytes = Bits / 8;
  std::uint64_t m[kBytes][kBytes];

  explicit GfniMatrices(Elem c) {
    const auto cx = cx_powers<Bits>(c);
    for (unsigned o = 0; o < kBytes; ++o)
      for (unsigned k = 0; k < kBytes; ++k) {
        std::uint64_t q = 0;
        for (unsigned i = 0; i < 8; ++i) {
          std::uint8_t row = 0;
          for (unsigned j = 0; j < 8; ++j)
            row |= static_cast<std::uint8_t>(
                ((cx[8 * k + j] >> (8 * o + i)) & 1) << j);
          q |= static_cast<std::uint64_t>(row) << (8 * (7 - i));
        }
        m[o][k] = q;
      }
  }
};

}  // namespace fairshare::gf::detail
