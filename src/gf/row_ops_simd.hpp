// Internal: accelerated row-kernel variants behind runtime CPU dispatch.
//
// row_ops.cpp calls accelerated_row_kernels() once per field while building
// the dispatched FieldView table; this header is not installed and must not
// be included outside src/gf.
#pragma once

#include <cstddef>
#include <cstdint>

#include "gf/field_id.hpp"
#include "gf/row_ops.hpp"

namespace fairshare::gf::detail {

/// One axpy/scale pair plus the name reported through FieldView::kernel.
/// `axpy == nullptr` means no accelerated variant applies and the caller
/// keeps the scalar kernels.
struct RowKernels {
  void (*axpy)(std::byte* dst, const std::byte* src, std::uint64_t c,
               std::size_t n) = nullptr;
  void (*scale)(std::byte* row, std::uint64_t c, std::size_t n) = nullptr;
  const char* name = nullptr;
};

/// Best accelerated kernel pair for `id` given the detected `feat`:
/// pshufb split-nibble kernels for GF(2^4)/GF(2^8) (AVX2 preferred over
/// SSSE3), widened 64-bit window kernels for GF(2^16)/GF(2^32) on
/// little-endian hosts.  Every variant returned here is bit-identical to
/// the scalar kernels (tests/gf/simd_dispatch_test.cpp holds them to it).
RowKernels accelerated_row_kernels(FieldId id, const CpuFeatures& feat);

}  // namespace fairshare::gf::detail
