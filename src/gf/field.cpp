#include "gf/field.hpp"

#include <cassert>
#include <vector>

namespace fairshare::gf {

namespace {

// Log/exp tables for a field whose element x (== 2) is primitive.
// exp_table has 2*(q-1) entries so that exp[log(a)+log(b)] needs no
// modular reduction of the exponent sum.
template <unsigned Bits>
struct LogExpTables {
  using Elem = typename FieldTraits<Bits>::Elem;
  std::vector<Elem> exp_table;           // size 2*(q-1)
  std::vector<std::uint32_t> log_table;  // size q; log_table[0] unused

  LogExpTables() {
    constexpr std::uint64_t q = std::uint64_t{1} << Bits;
    constexpr std::uint64_t gm1 = q - 1;
    exp_table.resize(2 * gm1);
    log_table.assign(q, 0);
    std::uint64_t v = 1;
    for (std::uint64_t i = 0; i < gm1; ++i) {
      exp_table[i] = static_cast<Elem>(v);
      exp_table[i + gm1] = static_cast<Elem>(v);
      log_table[v] = static_cast<std::uint32_t>(i);
      v = detail::polymul_mod(v, 2, FieldTraits<Bits>::modulus, Bits);
    }
    assert(v == 1 && "x must be primitive for the chosen modulus");
  }
};

template <unsigned Bits>
const LogExpTables<Bits>& log_exp_tables() {
  static const LogExpTables<Bits> tables;
  return tables;
}

// Full q x q multiplication tables for the two byte-sized fields; these are
// small (256 B and 64 KiB) and make symbol-wise multiply a single lookup.
template <unsigned Bits>
struct MulTable {
  using Elem = typename FieldTraits<Bits>::Elem;
  static constexpr std::size_t q = std::size_t{1} << Bits;
  std::vector<Elem> table;  // table[a*q + b] = a*b

  MulTable() : table(q * q) {
    for (std::size_t a = 0; a < q; ++a)
      for (std::size_t b = 0; b < q; ++b)
        table[a * q + b] = static_cast<Elem>(
            detail::polymul_mod(a, b, FieldTraits<Bits>::modulus, Bits));
  }
};

template <unsigned Bits>
const MulTable<Bits>& mul_table() {
  static const MulTable<Bits> t;
  return t;
}

}  // namespace

template <unsigned Bits>
typename GF<Bits>::Elem GF<Bits>::mul(Elem a, Elem b) {
  if constexpr (Bits <= 8) {
    return mul_table<Bits>().table[(std::size_t{a} << Bits) + b];
  } else if constexpr (Bits == 16) {
    if (a == 0 || b == 0) return 0;
    const auto& t = log_exp_tables<16>();
    return t.exp_table[t.log_table[a] + t.log_table[b]];
  } else {
    return static_cast<Elem>(detail::polymul_mod(a, b, modulus, Bits));
  }
}

template <unsigned Bits>
typename GF<Bits>::Elem GF<Bits>::pow(Elem a, std::uint64_t e) {
  Elem result = 1;
  Elem base = a;
  while (e != 0) {
    if (e & 1) result = mul(result, base);
    base = mul(base, base);
    e >>= 1;
  }
  return result;
}

template <unsigned Bits>
typename GF<Bits>::Elem GF<Bits>::inv(Elem a) {
  assert(a != 0);
  if constexpr (Bits <= 16) {
    const auto& t = log_exp_tables<Bits>();
    return t.exp_table[group_order - t.log_table[a]];
  } else {
    // a^(q-2); cheap enough (<= 64 carry-less multiplies) and branch-free.
    return pow(a, group_order - 1);
  }
}

template <unsigned Bits>
std::uint32_t GF<Bits>::log(Elem a)
  requires(Bits <= 16)
{
  assert(a != 0);
  return log_exp_tables<Bits>().log_table[a];
}

template <unsigned Bits>
typename GF<Bits>::Elem GF<Bits>::exp(std::uint32_t e)
  requires(Bits <= 16)
{
  const auto& t = log_exp_tables<Bits>();
  return t.exp_table[e % group_order];
}

template class GF<4>;
template class GF<8>;
template class GF<16>;
template class GF<32>;

}  // namespace fairshare::gf
