// Runtime identification of the four supported fields, used by the codec
// and the Table I / Table II experiment sweeps to select q = 2^p without
// templating whole call chains.
#pragma once

#include <cstdint>
#include <string_view>

namespace fairshare::gf {

/// The four field sizes evaluated in the paper (Tables I and II).
enum class FieldId : std::uint8_t {
  gf2_4 = 0,   ///< GF(2^4),  4 bits/symbol, 2 symbols packed per byte
  gf2_8 = 1,   ///< GF(2^8),  1 byte/symbol
  gf2_16 = 2,  ///< GF(2^16), 2 bytes/symbol (little endian)
  gf2_32 = 3,  ///< GF(2^32), 4 bytes/symbol (little endian)
};

inline constexpr FieldId kAllFields[] = {FieldId::gf2_4, FieldId::gf2_8,
                                         FieldId::gf2_16, FieldId::gf2_32};

/// Bits per symbol, p.
constexpr unsigned field_bits(FieldId id) {
  switch (id) {
    case FieldId::gf2_4: return 4;
    case FieldId::gf2_8: return 8;
    case FieldId::gf2_16: return 16;
    case FieldId::gf2_32: return 32;
  }
  return 0;  // unreachable
}

/// Field size q = 2^p.
constexpr std::uint64_t field_order(FieldId id) {
  return std::uint64_t{1} << field_bits(id);
}

/// Human-readable name, e.g. "GF(2^16)".
constexpr std::string_view field_name(FieldId id) {
  switch (id) {
    case FieldId::gf2_4: return "GF(2^4)";
    case FieldId::gf2_8: return "GF(2^8)";
    case FieldId::gf2_16: return "GF(2^16)";
    case FieldId::gf2_32: return "GF(2^32)";
  }
  return "GF(?)";
}

/// Inverse of field_bits.  Returns true and sets `out` when `bits` is one
/// of 4, 8, 16, 32.
constexpr bool field_from_bits(unsigned bits, FieldId& out) {
  switch (bits) {
    case 4: out = FieldId::gf2_4; return true;
    case 8: out = FieldId::gf2_8; return true;
    case 16: out = FieldId::gf2_16; return true;
    case 32: out = FieldId::gf2_32; return true;
    default: return false;
  }
}

}  // namespace fairshare::gf
