#include "gf/polynomial.hpp"

#include <bit>
#include <cassert>
#include <vector>

namespace fairshare::gf {

int poly_degree(std::uint64_t p) {
  assert(p != 0);
  return 63 - std::countl_zero(p);
}

std::uint64_t poly_mul_mod(std::uint64_t a, std::uint64_t b,
                           std::uint64_t modulus, unsigned bits) {
  std::uint64_t r = 0;
  while (b != 0) {
    if (b & 1) r ^= a;
    b >>= 1;
    a <<= 1;
    if ((a >> bits) & 1) a ^= modulus;
  }
  return r;
}

std::uint64_t poly_frobenius(std::uint64_t v, std::uint64_t modulus,
                             unsigned bits, unsigned e) {
  for (unsigned i = 0; i < e; ++i) v = poly_mul_mod(v, v, modulus, bits);
  return v;
}

namespace {

std::vector<unsigned> prime_divisors(unsigned n) {
  std::vector<unsigned> divs;
  for (unsigned d = 2; d * d <= n; ++d) {
    if (n % d == 0) {
      divs.push_back(d);
      while (n % d == 0) n /= d;
    }
  }
  if (n > 1) divs.push_back(n);
  return divs;
}

std::vector<std::uint64_t> prime_divisors_u64(std::uint64_t n) {
  std::vector<std::uint64_t> divs;
  for (std::uint64_t d = 2; d * d <= n; ++d) {
    if (n % d == 0) {
      divs.push_back(d);
      while (n % d == 0) n /= d;
    }
  }
  if (n > 1) divs.push_back(n);
  return divs;
}

}  // namespace

bool poly_is_irreducible(std::uint64_t modulus, unsigned bits) {
  assert(bits >= 2 && bits <= 63);
  assert((modulus >> bits) == 1);
  const std::uint64_t x = 2;
  if (poly_frobenius(x, modulus, bits, bits) != x) return false;
  for (unsigned d : prime_divisors(bits)) {
    if (poly_frobenius(x, modulus, bits, bits / d) == x) return false;
  }
  return true;
}

bool poly_is_primitive(std::uint64_t modulus, unsigned bits) {
  assert(bits <= 32);
  if (!poly_is_irreducible(modulus, bits)) return false;
  const std::uint64_t group = (std::uint64_t{1} << bits) - 1;
  for (std::uint64_t d : prime_divisors_u64(group)) {
    // x^(group/d) == 1 would mean ord(x) < group.
    std::uint64_t r = 1, base = 2, e = group / d;
    while (e != 0) {
      if (e & 1) r = poly_mul_mod(r, base, modulus, bits);
      base = poly_mul_mod(base, base, modulus, bits);
      e >>= 1;
    }
    if (r == 1) return false;
  }
  return true;
}

}  // namespace fairshare::gf
