#include "gf/row_ops.hpp"

#include <array>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "gf/field.hpp"
#include "gf/row_ops_simd.hpp"
#include "gf/window_tables.hpp"

namespace fairshare::gf {

namespace {

// ------------------------------------------------------- GF(2^4), packed

// P[c][b] multiplies both nibbles of byte b by the scalar c.
struct Gf4PackedTable {
  std::array<std::array<std::uint8_t, 256>, 16> t{};
  Gf4PackedTable() {
    for (unsigned c = 0; c < 16; ++c) {
      for (unsigned b = 0; b < 256; ++b) {
        const auto lo = GF<4>::mul(static_cast<std::uint8_t>(c),
                                   static_cast<std::uint8_t>(b & 0xF));
        const auto hi = GF<4>::mul(static_cast<std::uint8_t>(c),
                                   static_cast<std::uint8_t>(b >> 4));
        t[c][b] = static_cast<std::uint8_t>(lo | (hi << 4));
      }
    }
  }
};

const Gf4PackedTable& gf4_table() {
  static const Gf4PackedTable tab;
  return tab;
}

std::size_t gf4_row_bytes(std::size_t n) { return (n + 1) / 2; }

std::uint64_t gf4_get(const std::byte* row, std::size_t i) {
  const auto b = std::to_integer<std::uint8_t>(row[i / 2]);
  return (i % 2 == 0) ? (b & 0xF) : (b >> 4);
}

void gf4_set(std::byte* row, std::size_t i, std::uint64_t v) {
  auto b = std::to_integer<std::uint8_t>(row[i / 2]);
  if (i % 2 == 0)
    b = static_cast<std::uint8_t>((b & 0xF0) | (v & 0xF));
  else
    b = static_cast<std::uint8_t>((b & 0x0F) | ((v & 0xF) << 4));
  row[i / 2] = std::byte{b};
}

void gf4_axpy(std::byte* dst, const std::byte* src, std::uint64_t c,
              std::size_t n) {
  if (c == 0) return;
  const std::size_t nb = gf4_row_bytes(n);
  if (c == 1) {
    // Pure xor; no table needed (unit pivots during elimination).
    for (std::size_t i = 0; i < nb; ++i) dst[i] ^= src[i];
    return;
  }
  const auto& tab = gf4_table().t[c & 0xF];
  for (std::size_t i = 0; i < nb; ++i)
    dst[i] ^= std::byte{tab[std::to_integer<std::uint8_t>(src[i])]};
}

void gf4_scale(std::byte* row, std::uint64_t c, std::size_t n) {
  if (c == 1) return;
  const auto& tab = gf4_table().t[c & 0xF];
  const std::size_t nb = gf4_row_bytes(n);
  for (std::size_t i = 0; i < nb; ++i)
    row[i] = std::byte{tab[std::to_integer<std::uint8_t>(row[i])]};
}

// ---------------------------------------------------------------- GF(2^8)

// Full 256x256 product table; row c is the premultiplied lookup for axpy.
struct Gf8Table {
  std::vector<std::uint8_t> t;
  Gf8Table() : t(256 * 256) {
    for (unsigned c = 0; c < 256; ++c)
      for (unsigned b = 0; b < 256; ++b)
        t[c * 256 + b] = GF<8>::mul(static_cast<std::uint8_t>(c),
                                    static_cast<std::uint8_t>(b));
  }
};

const Gf8Table& gf8_table() {
  static const Gf8Table tab;
  return tab;
}

std::size_t gf8_row_bytes(std::size_t n) { return n; }

std::uint64_t gf8_get(const std::byte* row, std::size_t i) {
  return std::to_integer<std::uint8_t>(row[i]);
}

void gf8_set(std::byte* row, std::size_t i, std::uint64_t v) {
  row[i] = std::byte{static_cast<std::uint8_t>(v)};
}

void gf8_axpy(std::byte* dst, const std::byte* src, std::uint64_t c,
              std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    // Pure xor; no table needed (unit pivots during elimination).
    for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
    return;
  }
  const std::uint8_t* tab = gf8_table().t.data() + (c & 0xFF) * 256;
  for (std::size_t i = 0; i < n; ++i)
    dst[i] ^= std::byte{tab[std::to_integer<std::uint8_t>(src[i])]};
}

void gf8_scale(std::byte* row, std::uint64_t c, std::size_t n) {
  if (c == 1) return;
  const std::uint8_t* tab = gf8_table().t.data() + (c & 0xFF) * 256;
  for (std::size_t i = 0; i < n; ++i)
    row[i] = std::byte{tab[std::to_integer<std::uint8_t>(row[i])]};
}

// --------------------------------------------- GF(2^16) / GF(2^32) window

// Per-scalar window tables (gf/window_tables.hpp); each symbol product is
// B lookups + B-1 xors.  This is the portable symbol-at-a-time consumer;
// row_ops_simd.cpp widens it to 64-bit loads on little-endian hosts.
using detail::WindowTables;

template <unsigned Bits>
std::size_t wide_row_bytes(std::size_t n) {
  return n * (Bits / 8);
}

template <unsigned Bits>
std::uint64_t wide_get(const std::byte* row, std::size_t i) {
  typename GF<Bits>::Elem v;
  std::memcpy(&v, row + i * sizeof(v), sizeof(v));
  return v;
}

template <unsigned Bits>
void wide_set(std::byte* row, std::size_t i, std::uint64_t v) {
  const auto e = static_cast<typename GF<Bits>::Elem>(v);
  std::memcpy(row + i * sizeof(e), &e, sizeof(e));
}

template <unsigned Bits>
void wide_axpy(std::byte* dst, const std::byte* src, std::uint64_t c,
               std::size_t n) {
  using Elem = typename GF<Bits>::Elem;
  if (c == 0) return;
  if (c == 1) {
    // Pure xor; no table needed.
    for (std::size_t i = 0; i < n * sizeof(Elem); ++i) dst[i] ^= src[i];
    return;
  }
  const WindowTables<Bits> tab(static_cast<Elem>(c));
  for (std::size_t i = 0; i < n; ++i) {
    Elem x, y;
    std::memcpy(&x, src + i * sizeof(Elem), sizeof(Elem));
    std::memcpy(&y, dst + i * sizeof(Elem), sizeof(Elem));
    y = static_cast<Elem>(y ^ tab.mul(x));
    std::memcpy(dst + i * sizeof(Elem), &y, sizeof(Elem));
  }
}

template <unsigned Bits>
void wide_scale(std::byte* row, std::uint64_t c, std::size_t n) {
  using Elem = typename GF<Bits>::Elem;
  if (c == 1) return;
  if (c == 0) {
    // Annihilation; no table needed (row elimination to zero).
    std::memset(row, 0, n * sizeof(Elem));
    return;
  }
  const WindowTables<Bits> tab(static_cast<Elem>(c));
  for (std::size_t i = 0; i < n; ++i) {
    Elem x;
    std::memcpy(&x, row + i * sizeof(Elem), sizeof(Elem));
    x = tab.mul(x);
    std::memcpy(row + i * sizeof(Elem), &x, sizeof(Elem));
  }
}

// ------------------------------------------------------ scalar adapters

template <unsigned Bits>
std::uint64_t scalar_mul(std::uint64_t a, std::uint64_t b) {
  return GF<Bits>::mul(static_cast<typename GF<Bits>::Elem>(a),
                       static_cast<typename GF<Bits>::Elem>(b));
}

template <unsigned Bits>
std::uint64_t scalar_inv(std::uint64_t a) {
  return GF<Bits>::inv(static_cast<typename GF<Bits>::Elem>(a));
}

template <unsigned Bits>
std::uint64_t scalar_pow(std::uint64_t a, std::uint64_t e) {
  return GF<Bits>::pow(static_cast<typename GF<Bits>::Elem>(a), e);
}

}  // namespace

CpuFeatures cpu_features() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  static const CpuFeatures feat = [] {
    CpuFeatures f;
    f.ssse3 = __builtin_cpu_supports("ssse3") != 0;
    f.avx2 = __builtin_cpu_supports("avx2") != 0;
    f.gfni = __builtin_cpu_supports("gfni") != 0;
    f.avx512f = __builtin_cpu_supports("avx512f") != 0;
    f.avx512bw = __builtin_cpu_supports("avx512bw") != 0;
    return f;
  }();
  return feat;
#else
  return {};
#endif
}

const char* kernel_tier_cap() {
  static const char* cap = []() -> const char* {
    const char* v = std::getenv("FAIRSHARE_KERNEL_CAP");
    if (v == nullptr || v[0] == '\0') return nullptr;
    for (const char* known : {"avx2", "ssse3", "window64"})
      if (std::strcmp(v, known) == 0) return known;
    return nullptr;
  }();
  return cap;
}

namespace {

// Features visible to dispatch: the raw detection masked by the tier cap.
// The cap only ever removes capabilities, so a capped run is always a
// configuration some real host has — the same dispatch code paths, not a
// synthetic mode.
CpuFeatures dispatch_features() {
  CpuFeatures f = cpu_features();
  const char* cap = kernel_tier_cap();
  if (cap == nullptr) return f;
  // Every named cap disables the AVX-512/GFNI tier.
  f.gfni = f.avx512f = f.avx512bw = false;
  if (std::strcmp(cap, "avx2") == 0) return f;
  f.avx2 = false;
  if (std::strcmp(cap, "ssse3") == 0) return f;
  f.ssse3 = false;  // "window64": wide fields keep it, narrow go scalar
  return f;
}

}  // namespace

bool scalar_kernels_forced() {
#ifdef FAIRSHARE_FORCE_SCALAR_KERNELS
  return true;
#else
  static const bool forced = [] {
    const char* v = std::getenv("FAIRSHARE_FORCE_SCALAR_KERNELS");
    return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
  }();
  return forced;
#endif
}

const FieldView& scalar_field_view(FieldId id) {
  static const FieldView views[4] = {
      {FieldId::gf2_4, 4, 16, &scalar_mul<4>, &scalar_inv<4>, &scalar_pow<4>,
       &gf4_row_bytes, &gf4_get, &gf4_set, &gf4_axpy, &gf4_scale, "scalar"},
      {FieldId::gf2_8, 8, 256, &scalar_mul<8>, &scalar_inv<8>, &scalar_pow<8>,
       &gf8_row_bytes, &gf8_get, &gf8_set, &gf8_axpy, &gf8_scale, "scalar"},
      {FieldId::gf2_16, 16, 65536, &scalar_mul<16>, &scalar_inv<16>,
       &scalar_pow<16>, &wide_row_bytes<16>, &wide_get<16>, &wide_set<16>,
       &wide_axpy<16>, &wide_scale<16>, "scalar"},
      {FieldId::gf2_32, 32, std::uint64_t{1} << 32, &scalar_mul<32>,
       &scalar_inv<32>, &scalar_pow<32>, &wide_row_bytes<32>, &wide_get<32>,
       &wide_set<32>, &wide_axpy<32>, &wide_scale<32>, "scalar"},
  };
  return views[static_cast<std::size_t>(id)];
}

const FieldView& field_view(FieldId id) {
  // Dispatch runs exactly once (thread-safe magic static): start from the
  // scalar views and overlay the best accelerated axpy/scale per field.
  static const std::array<FieldView, 4> views = [] {
    std::array<FieldView, 4> v{
        scalar_field_view(FieldId::gf2_4), scalar_field_view(FieldId::gf2_8),
        scalar_field_view(FieldId::gf2_16),
        scalar_field_view(FieldId::gf2_32)};
    if (scalar_kernels_forced()) return v;
    const CpuFeatures feat = dispatch_features();
    for (auto& fv : v) {
      const detail::RowKernels k = detail::accelerated_row_kernels(fv.id, feat);
      if (k.axpy != nullptr) {
        fv.axpy = k.axpy;
        fv.scale = k.scale;
        fv.kernel = k.name;
      }
    }
    return v;
  }();
  return views[static_cast<std::size_t>(id)];
}

}  // namespace fairshare::gf
