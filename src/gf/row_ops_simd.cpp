// Accelerated row kernels behind runtime CPU dispatch (see row_ops.hpp for
// the dispatch contract and DESIGN.md "Row-kernel dispatch" for the
// technique).
//
//   * GF(2^4)/GF(2^8): the GF-Complete split-nibble shuffle.  A product
//     c*b over GF(2^8) splits as c*(b & 0xF) ^ c*(b >> 4 << 4); both halves
//     range over 16 values, so two 16-entry tables per scalar turn pshufb
//     into 16 (SSSE3) or 32 (AVX2) byte-products per instruction pair.
//     GF(2^4) packs two symbols per byte and needs only one 16-entry table,
//     applied to each nibble lane.
//   * GF(2^16)/GF(2^32): three tiers.
//       - "gfni512": multiplication by a constant is GF(2)-linear, so each
//         (input byte k -> output byte o) block of the map is an 8x8 bit
//         matrix applied with gf2p8affineqb.  Symbols are shuffled into
//         byte planes per 128-bit lane (pshufb + unpacks), each plane gets
//         kBytes affine transforms, and the inverse unpacks restore symbol
//         order.  Needs GFNI+AVX512F+AVX512BW; near-zero per-call setup.
//       - "avx2": the GF-Complete split-table scheme widened to 16/32-bit
//         symbols: the same byte-plane transpose, then 4-bit-indexed
//         pshufb sub-tables (NibbleTables) per (nibble j, output byte o)
//         pair — 8 resp. 32 pshufbs per 32 symbols.
//       - "window64": the same per-scalar window tables as the scalar
//         path, but consumed through unrolled 64-bit loads (4 resp. 2
//         symbols per load) instead of one memcpy per symbol.  Little-
//         endian only; the lane order of a u64 must match symbol order for
//         the byte-extraction shifts to index the right window.
//     The byte-plane transpose permutes symbols within a block, which is
//     harmless: products are per-symbol independent and the reinterleave
//     applies the exact inverse permutation.  Tails fall back to exact
//     per-symbol products — any correct GF(2^w) multiply is bit-identical,
//     so vector body and tail may use different table shapes.
//
// Every kernel here is bit-identical to its scalar counterpart, including
// the multiplied padding nibble of an odd-length GF(2^4) row — the
// differential suite (tests/gf/simd_dispatch_test.cpp) diffs whole buffers.
#include "gf/row_ops_simd.hpp"

#include <array>
#include <bit>
#include <cstring>

#include "gf/field.hpp"
#include "gf/window_tables.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define FAIRSHARE_HAVE_X86_KERNELS 1
#include <immintrin.h>
#else
#define FAIRSHARE_HAVE_X86_KERNELS 0
#endif

namespace fairshare::gf::detail {

namespace {

// ------------------------------------------------- per-scalar nibble tables

// GF(2^4): N[c][v] = c*v, value in the low nibble.  One 16-entry shuffle
// table covers both nibble lanes of a packed byte.
struct Gf4NibbleTable {
  alignas(16) std::uint8_t t[16][16];
  Gf4NibbleTable() {
    for (unsigned c = 0; c < 16; ++c)
      for (unsigned v = 0; v < 16; ++v)
        t[c][v] = GF<4>::mul(static_cast<std::uint8_t>(c),
                             static_cast<std::uint8_t>(v));
  }
};

const Gf4NibbleTable& gf4_nibble_table() {
  static const Gf4NibbleTable tab;
  return tab;
}

// GF(2^8): lo[c][v] = c*v, hi[c][v] = c*(v << 4); c*b = lo[b&0xF] ^ hi[b>>4].
struct Gf8NibbleTables {
  alignas(16) std::uint8_t lo[256][16];
  alignas(16) std::uint8_t hi[256][16];
  Gf8NibbleTables() {
    for (unsigned c = 0; c < 256; ++c)
      for (unsigned v = 0; v < 16; ++v) {
        lo[c][v] = GF<8>::mul(static_cast<std::uint8_t>(c),
                              static_cast<std::uint8_t>(v));
        hi[c][v] = GF<8>::mul(static_cast<std::uint8_t>(c),
                              static_cast<std::uint8_t>(v << 4));
      }
  }
};

const Gf8NibbleTables& gf8_nibble_tables() {
  static const Gf8NibbleTables tab;
  return tab;
}

// Scalar tails of the vector loops, built on the same tables so results
// stay bit-identical whichever loop handled a byte.
inline std::uint8_t gf4_byte_product(const std::uint8_t* nib, std::uint8_t b) {
  return static_cast<std::uint8_t>(nib[b & 0xF] | (nib[b >> 4] << 4));
}

inline std::uint8_t gf8_byte_product(const std::uint8_t* lo,
                                     const std::uint8_t* hi, std::uint8_t b) {
  return static_cast<std::uint8_t>(lo[b & 0xF] ^ hi[b >> 4]);
}

#if FAIRSHARE_HAVE_X86_KERNELS

#define FAIRSHARE_TARGET(isa) __attribute__((target(isa)))

// ----------------------------------------------------------- SSSE3 kernels

FAIRSHARE_TARGET("ssse3")
void gf4_axpy_ssse3(std::byte* dst, const std::byte* src, std::uint64_t c,
                    std::size_t n) {
  if (c == 0) return;
  const std::size_t nb = (n + 1) / 2;
  std::size_t i = 0;
  if (c == 1) {
    const __m128i* s128 = reinterpret_cast<const __m128i*>(src);
    __m128i* d128 = reinterpret_cast<__m128i*>(dst);
    for (; i + 16 <= nb; i += 16, ++s128, ++d128)
      _mm_storeu_si128(d128, _mm_xor_si128(_mm_loadu_si128(d128),
                                           _mm_loadu_si128(s128)));
    for (; i < nb; ++i) dst[i] ^= src[i];
    return;
  }
  const std::uint8_t* nib = gf4_nibble_table().t[c & 0xF];
  const __m128i tab = _mm_load_si128(reinterpret_cast<const __m128i*>(nib));
  const __m128i mask = _mm_set1_epi8(0x0F);
  for (; i + 16 <= nb; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i lo = _mm_and_si128(s, mask);
    const __m128i hi = _mm_and_si128(_mm_srli_epi64(s, 4), mask);
    // Products are 4-bit, so the high nibbles of ph are zero and a 64-bit
    // lane shift by 4 cannot leak bits across byte boundaries.
    const __m128i p = _mm_or_si128(_mm_shuffle_epi8(tab, lo),
                                   _mm_slli_epi64(_mm_shuffle_epi8(tab, hi), 4));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(d, p));
  }
  for (; i < nb; ++i)
    dst[i] ^= std::byte{gf4_byte_product(nib, std::to_integer<std::uint8_t>(src[i]))};
}

FAIRSHARE_TARGET("ssse3")
void gf4_scale_ssse3(std::byte* row, std::uint64_t c, std::size_t n) {
  if (c == 1) return;
  const std::size_t nb = (n + 1) / 2;
  const std::uint8_t* nib = gf4_nibble_table().t[c & 0xF];
  const __m128i tab = _mm_load_si128(reinterpret_cast<const __m128i*>(nib));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= nb; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + i));
    const __m128i lo = _mm_and_si128(s, mask);
    const __m128i hi = _mm_and_si128(_mm_srli_epi64(s, 4), mask);
    const __m128i p = _mm_or_si128(_mm_shuffle_epi8(tab, lo),
                                   _mm_slli_epi64(_mm_shuffle_epi8(tab, hi), 4));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(row + i), p);
  }
  for (; i < nb; ++i)
    row[i] = std::byte{gf4_byte_product(nib, std::to_integer<std::uint8_t>(row[i]))};
}

FAIRSHARE_TARGET("ssse3")
void gf8_axpy_ssse3(std::byte* dst, const std::byte* src, std::uint64_t c,
                    std::size_t n) {
  if (c == 0) return;
  std::size_t i = 0;
  if (c == 1) {
    for (; i + 16 <= n; i += 16) {
      const __m128i s =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
      const __m128i d =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                       _mm_xor_si128(d, s));
    }
    for (; i < n; ++i) dst[i] ^= src[i];
    return;
  }
  const auto& tabs = gf8_nibble_tables();
  const std::uint8_t* lo8 = tabs.lo[c & 0xFF];
  const std::uint8_t* hi8 = tabs.hi[c & 0xFF];
  const __m128i tlo = _mm_load_si128(reinterpret_cast<const __m128i*>(lo8));
  const __m128i thi = _mm_load_si128(reinterpret_cast<const __m128i*>(hi8));
  const __m128i mask = _mm_set1_epi8(0x0F);
  for (; i + 16 <= n; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i lo = _mm_and_si128(s, mask);
    const __m128i hi = _mm_and_si128(_mm_srli_epi64(s, 4), mask);
    const __m128i p = _mm_xor_si128(_mm_shuffle_epi8(tlo, lo),
                                    _mm_shuffle_epi8(thi, hi));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(d, p));
  }
  for (; i < n; ++i)
    dst[i] ^= std::byte{
        gf8_byte_product(lo8, hi8, std::to_integer<std::uint8_t>(src[i]))};
}

FAIRSHARE_TARGET("ssse3")
void gf8_scale_ssse3(std::byte* row, std::uint64_t c, std::size_t n) {
  if (c == 1) return;
  const auto& tabs = gf8_nibble_tables();
  const std::uint8_t* lo8 = tabs.lo[c & 0xFF];
  const std::uint8_t* hi8 = tabs.hi[c & 0xFF];
  const __m128i tlo = _mm_load_si128(reinterpret_cast<const __m128i*>(lo8));
  const __m128i thi = _mm_load_si128(reinterpret_cast<const __m128i*>(hi8));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + i));
    const __m128i lo = _mm_and_si128(s, mask);
    const __m128i hi = _mm_and_si128(_mm_srli_epi64(s, 4), mask);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(row + i),
                     _mm_xor_si128(_mm_shuffle_epi8(tlo, lo),
                                   _mm_shuffle_epi8(thi, hi)));
  }
  for (; i < n; ++i)
    row[i] = std::byte{
        gf8_byte_product(lo8, hi8, std::to_integer<std::uint8_t>(row[i]))};
}

// ------------------------------------------------------------ AVX2 kernels

FAIRSHARE_TARGET("avx2")
void gf4_axpy_avx2(std::byte* dst, const std::byte* src, std::uint64_t c,
                   std::size_t n) {
  if (c == 0) return;
  const std::size_t nb = (n + 1) / 2;
  std::size_t i = 0;
  if (c == 1) {
    for (; i + 32 <= nb; i += 32) {
      const __m256i s =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
      const __m256i d =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                          _mm256_xor_si256(d, s));
    }
    for (; i < nb; ++i) dst[i] ^= src[i];
    return;
  }
  const std::uint8_t* nib = gf4_nibble_table().t[c & 0xF];
  const __m256i tab = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(nib)));
  const __m256i mask = _mm256_set1_epi8(0x0F);
  for (; i + 32 <= nb; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i lo = _mm256_and_si256(s, mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi64(s, 4), mask);
    const __m256i p =
        _mm256_or_si256(_mm256_shuffle_epi8(tab, lo),
                        _mm256_slli_epi64(_mm256_shuffle_epi8(tab, hi), 4));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, p));
  }
  for (; i < nb; ++i)
    dst[i] ^= std::byte{gf4_byte_product(nib, std::to_integer<std::uint8_t>(src[i]))};
}

FAIRSHARE_TARGET("avx2")
void gf4_scale_avx2(std::byte* row, std::uint64_t c, std::size_t n) {
  if (c == 1) return;
  const std::size_t nb = (n + 1) / 2;
  const std::uint8_t* nib = gf4_nibble_table().t[c & 0xF];
  const __m256i tab = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(nib)));
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= nb; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i));
    const __m256i lo = _mm256_and_si256(s, mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi64(s, 4), mask);
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(row + i),
        _mm256_or_si256(_mm256_shuffle_epi8(tab, lo),
                        _mm256_slli_epi64(_mm256_shuffle_epi8(tab, hi), 4)));
  }
  for (; i < nb; ++i)
    row[i] = std::byte{gf4_byte_product(nib, std::to_integer<std::uint8_t>(row[i]))};
}

FAIRSHARE_TARGET("avx2")
void gf8_axpy_avx2(std::byte* dst, const std::byte* src, std::uint64_t c,
                   std::size_t n) {
  if (c == 0) return;
  std::size_t i = 0;
  if (c == 1) {
    for (; i + 32 <= n; i += 32) {
      const __m256i s =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
      const __m256i d =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                          _mm256_xor_si256(d, s));
    }
    for (; i < n; ++i) dst[i] ^= src[i];
    return;
  }
  const auto& tabs = gf8_nibble_tables();
  const std::uint8_t* lo8 = tabs.lo[c & 0xFF];
  const std::uint8_t* hi8 = tabs.hi[c & 0xFF];
  const __m256i tlo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(lo8)));
  const __m256i thi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(hi8)));
  const __m256i mask = _mm256_set1_epi8(0x0F);
  for (; i + 32 <= n; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i lo = _mm256_and_si256(s, mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi64(s, 4), mask);
    const __m256i p = _mm256_xor_si256(_mm256_shuffle_epi8(tlo, lo),
                                       _mm256_shuffle_epi8(thi, hi));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, p));
  }
  for (; i < n; ++i)
    dst[i] ^= std::byte{
        gf8_byte_product(lo8, hi8, std::to_integer<std::uint8_t>(src[i]))};
}

FAIRSHARE_TARGET("avx2")
void gf8_scale_avx2(std::byte* row, std::uint64_t c, std::size_t n) {
  if (c == 1) return;
  const auto& tabs = gf8_nibble_tables();
  const std::uint8_t* lo8 = tabs.lo[c & 0xFF];
  const std::uint8_t* hi8 = tabs.hi[c & 0xFF];
  const __m256i tlo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(lo8)));
  const __m256i thi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(hi8)));
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i));
    const __m256i lo = _mm256_and_si256(s, mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi64(s, 4), mask);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(row + i),
                        _mm256_xor_si256(_mm256_shuffle_epi8(tlo, lo),
                                         _mm256_shuffle_epi8(thi, hi)));
  }
  for (; i < n; ++i)
    row[i] = std::byte{
        gf8_byte_product(lo8, hi8, std::to_integer<std::uint8_t>(row[i]))};
}

// ------------------------------- GF(2^16)/GF(2^32) AVX2 split-table

// Both wide AVX2 kernels share one structure: shuffle 16/32-bit little-
// endian symbols into byte planes (one register per output-byte position),
// look up products a nibble at a time with 16-entry pshufb sub-tables, and
// apply the inverse unpack network to restore symbol order.  Per 128-bit
// lane the unpack semantics are identical, so the same network works for
// 256-bit registers; the symbol permutation it introduces cancels out.

FAIRSHARE_TARGET("avx2")
void gf16_axpy_avx2(std::byte* dst, const std::byte* src, std::uint64_t c,
                    std::size_t n) {
  if (c == 0) return;
  const std::size_t nb = n * 2;
  std::size_t i = 0;
  if (c == 1) {
    for (; i + 32 <= nb; i += 32) {
      const __m256i s =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
      const __m256i d =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                          _mm256_xor_si256(d, s));
    }
    for (; i < nb; ++i) dst[i] ^= src[i];
    return;
  }
  const NibbleTables<16> nt(static_cast<std::uint16_t>(c));
  __m256i T[4][2];
  for (int j = 0; j < 4; ++j)
    for (int o = 0; o < 2; ++o)
      T[j][o] = _mm256_broadcastsi128_si256(
          _mm_load_si128(reinterpret_cast<const __m128i*>(nt.t[j][o])));
  const __m256i deint = _mm256_broadcastsi128_si256(
      _mm_setr_epi8(0, 2, 4, 6, 8, 10, 12, 14, 1, 3, 5, 7, 9, 11, 13, 15));
  const __m256i maskf = _mm256_set1_epi8(0x0F);
  for (; i + 64 <= nb; i += 64) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    const __m256i t0 = _mm256_shuffle_epi8(v0, deint);
    const __m256i t1 = _mm256_shuffle_epi8(v1, deint);
    const __m256i lo = _mm256_unpacklo_epi64(t0, t1);
    const __m256i hi = _mm256_unpackhi_epi64(t0, t1);
    const __m256i ll = _mm256_and_si256(lo, maskf);
    const __m256i lh = _mm256_and_si256(_mm256_srli_epi64(lo, 4), maskf);
    const __m256i hl = _mm256_and_si256(hi, maskf);
    const __m256i hh = _mm256_and_si256(_mm256_srli_epi64(hi, 4), maskf);
    __m256i p0 = _mm256_xor_si256(_mm256_shuffle_epi8(T[0][0], ll),
                                  _mm256_shuffle_epi8(T[1][0], lh));
    p0 = _mm256_xor_si256(p0, _mm256_shuffle_epi8(T[2][0], hl));
    p0 = _mm256_xor_si256(p0, _mm256_shuffle_epi8(T[3][0], hh));
    __m256i p1 = _mm256_xor_si256(_mm256_shuffle_epi8(T[0][1], ll),
                                  _mm256_shuffle_epi8(T[1][1], lh));
    p1 = _mm256_xor_si256(p1, _mm256_shuffle_epi8(T[2][1], hl));
    p1 = _mm256_xor_si256(p1, _mm256_shuffle_epi8(T[3][1], hh));
    const __m256i r0 = _mm256_unpacklo_epi8(p0, p1);
    const __m256i r1 = _mm256_unpackhi_epi8(p0, p1);
    const __m256i d0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i d1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d0, r0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32),
                        _mm256_xor_si256(d1, r1));
  }
  for (; i < nb; i += 2) {
    std::uint16_t x, y;
    std::memcpy(&x, src + i, 2);
    std::memcpy(&y, dst + i, 2);
    y = static_cast<std::uint16_t>(y ^ nt.mul(x));
    std::memcpy(dst + i, &y, 2);
  }
}

FAIRSHARE_TARGET("avx2")
void gf16_scale_avx2(std::byte* row, std::uint64_t c, std::size_t n) {
  if (c == 1) return;
  if (c == 0) {
    std::memset(row, 0, n * 2);
    return;
  }
  const NibbleTables<16> nt(static_cast<std::uint16_t>(c));
  __m256i T[4][2];
  for (int j = 0; j < 4; ++j)
    for (int o = 0; o < 2; ++o)
      T[j][o] = _mm256_broadcastsi128_si256(
          _mm_load_si128(reinterpret_cast<const __m128i*>(nt.t[j][o])));
  const __m256i deint = _mm256_broadcastsi128_si256(
      _mm_setr_epi8(0, 2, 4, 6, 8, 10, 12, 14, 1, 3, 5, 7, 9, 11, 13, 15));
  const __m256i maskf = _mm256_set1_epi8(0x0F);
  const std::size_t nb = n * 2;
  std::size_t i = 0;
  for (; i + 64 <= nb; i += 64) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i + 32));
    const __m256i t0 = _mm256_shuffle_epi8(v0, deint);
    const __m256i t1 = _mm256_shuffle_epi8(v1, deint);
    const __m256i lo = _mm256_unpacklo_epi64(t0, t1);
    const __m256i hi = _mm256_unpackhi_epi64(t0, t1);
    const __m256i ll = _mm256_and_si256(lo, maskf);
    const __m256i lh = _mm256_and_si256(_mm256_srli_epi64(lo, 4), maskf);
    const __m256i hl = _mm256_and_si256(hi, maskf);
    const __m256i hh = _mm256_and_si256(_mm256_srli_epi64(hi, 4), maskf);
    __m256i p0 = _mm256_xor_si256(_mm256_shuffle_epi8(T[0][0], ll),
                                  _mm256_shuffle_epi8(T[1][0], lh));
    p0 = _mm256_xor_si256(p0, _mm256_shuffle_epi8(T[2][0], hl));
    p0 = _mm256_xor_si256(p0, _mm256_shuffle_epi8(T[3][0], hh));
    __m256i p1 = _mm256_xor_si256(_mm256_shuffle_epi8(T[0][1], ll),
                                  _mm256_shuffle_epi8(T[1][1], lh));
    p1 = _mm256_xor_si256(p1, _mm256_shuffle_epi8(T[2][1], hl));
    p1 = _mm256_xor_si256(p1, _mm256_shuffle_epi8(T[3][1], hh));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(row + i),
                        _mm256_unpacklo_epi8(p0, p1));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(row + i + 32),
                        _mm256_unpackhi_epi8(p0, p1));
  }
  for (; i < nb; i += 2) {
    std::uint16_t x;
    std::memcpy(&x, row + i, 2);
    x = nt.mul(x);
    std::memcpy(row + i, &x, 2);
  }
}

FAIRSHARE_TARGET("avx2")
void gf32_axpy_avx2(std::byte* dst, const std::byte* src, std::uint64_t c,
                    std::size_t n) {
  if (c == 0) return;
  const std::size_t nb = n * 4;
  std::size_t i = 0;
  if (c == 1) {
    for (; i + 32 <= nb; i += 32) {
      const __m256i s =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
      const __m256i d =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                          _mm256_xor_si256(d, s));
    }
    for (; i < nb; ++i) dst[i] ^= src[i];
    return;
  }
  const NibbleTables<32> nt(static_cast<std::uint32_t>(c));
  __m256i T[8][4];
  for (int j = 0; j < 8; ++j)
    for (int o = 0; o < 4; ++o)
      T[j][o] = _mm256_broadcastsi128_si256(
          _mm_load_si128(reinterpret_cast<const __m128i*>(nt.t[j][o])));
  const __m256i deint = _mm256_broadcastsi128_si256(
      _mm_setr_epi8(0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15));
  const __m256i maskf = _mm256_set1_epi8(0x0F);
  for (; i + 128 <= nb; i += 128) {
    __m256i t[4];
    for (int r = 0; r < 4; ++r)
      t[r] = _mm256_shuffle_epi8(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                                     src + i + 32 * static_cast<std::size_t>(r))),
                                 deint);
    const __m256i u0 = _mm256_unpacklo_epi32(t[0], t[1]);
    const __m256i u1 = _mm256_unpackhi_epi32(t[0], t[1]);
    const __m256i u2 = _mm256_unpacklo_epi32(t[2], t[3]);
    const __m256i u3 = _mm256_unpackhi_epi32(t[2], t[3]);
    const __m256i pl[4] = {_mm256_unpacklo_epi64(u0, u2),
                           _mm256_unpackhi_epi64(u0, u2),
                           _mm256_unpacklo_epi64(u1, u3),
                           _mm256_unpackhi_epi64(u1, u3)};
    __m256i q[4];
    for (int o = 0; o < 4; ++o) {
      __m256i acc = _mm256_setzero_si256();
      for (int k = 0; k < 4; ++k) {
        const __m256i lo = _mm256_and_si256(pl[k], maskf);
        const __m256i hi = _mm256_and_si256(_mm256_srli_epi64(pl[k], 4), maskf);
        acc = _mm256_xor_si256(acc, _mm256_shuffle_epi8(T[2 * k][o], lo));
        acc = _mm256_xor_si256(acc, _mm256_shuffle_epi8(T[2 * k + 1][o], hi));
      }
      q[o] = acc;
    }
    const __m256i w0 = _mm256_unpacklo_epi8(q[0], q[1]);
    const __m256i w1 = _mm256_unpacklo_epi8(q[2], q[3]);
    const __m256i w2 = _mm256_unpackhi_epi8(q[0], q[1]);
    const __m256i w3 = _mm256_unpackhi_epi8(q[2], q[3]);
    const __m256i z[4] = {_mm256_unpacklo_epi16(w0, w1),
                          _mm256_unpackhi_epi16(w0, w1),
                          _mm256_unpacklo_epi16(w2, w3),
                          _mm256_unpackhi_epi16(w2, w3)};
    for (int r = 0; r < 4; ++r) {
      std::byte* p = dst + i + 32 * static_cast<std::size_t>(r);
      const __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(p),
                          _mm256_xor_si256(d, z[r]));
    }
  }
  for (; i < nb; i += 4) {
    std::uint32_t x, y;
    std::memcpy(&x, src + i, 4);
    std::memcpy(&y, dst + i, 4);
    y ^= nt.mul(x);
    std::memcpy(dst + i, &y, 4);
  }
}

FAIRSHARE_TARGET("avx2")
void gf32_scale_avx2(std::byte* row, std::uint64_t c, std::size_t n) {
  if (c == 1) return;
  if (c == 0) {
    std::memset(row, 0, n * 4);
    return;
  }
  const NibbleTables<32> nt(static_cast<std::uint32_t>(c));
  __m256i T[8][4];
  for (int j = 0; j < 8; ++j)
    for (int o = 0; o < 4; ++o)
      T[j][o] = _mm256_broadcastsi128_si256(
          _mm_load_si128(reinterpret_cast<const __m128i*>(nt.t[j][o])));
  const __m256i deint = _mm256_broadcastsi128_si256(
      _mm_setr_epi8(0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15));
  const __m256i maskf = _mm256_set1_epi8(0x0F);
  const std::size_t nb = n * 4;
  std::size_t i = 0;
  for (; i + 128 <= nb; i += 128) {
    __m256i t[4];
    for (int r = 0; r < 4; ++r)
      t[r] = _mm256_shuffle_epi8(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                                     row + i + 32 * static_cast<std::size_t>(r))),
                                 deint);
    const __m256i u0 = _mm256_unpacklo_epi32(t[0], t[1]);
    const __m256i u1 = _mm256_unpackhi_epi32(t[0], t[1]);
    const __m256i u2 = _mm256_unpacklo_epi32(t[2], t[3]);
    const __m256i u3 = _mm256_unpackhi_epi32(t[2], t[3]);
    const __m256i pl[4] = {_mm256_unpacklo_epi64(u0, u2),
                           _mm256_unpackhi_epi64(u0, u2),
                           _mm256_unpacklo_epi64(u1, u3),
                           _mm256_unpackhi_epi64(u1, u3)};
    __m256i q[4];
    for (int o = 0; o < 4; ++o) {
      __m256i acc = _mm256_setzero_si256();
      for (int k = 0; k < 4; ++k) {
        const __m256i lo = _mm256_and_si256(pl[k], maskf);
        const __m256i hi = _mm256_and_si256(_mm256_srli_epi64(pl[k], 4), maskf);
        acc = _mm256_xor_si256(acc, _mm256_shuffle_epi8(T[2 * k][o], lo));
        acc = _mm256_xor_si256(acc, _mm256_shuffle_epi8(T[2 * k + 1][o], hi));
      }
      q[o] = acc;
    }
    const __m256i w0 = _mm256_unpacklo_epi8(q[0], q[1]);
    const __m256i w1 = _mm256_unpacklo_epi8(q[2], q[3]);
    const __m256i w2 = _mm256_unpackhi_epi8(q[0], q[1]);
    const __m256i w3 = _mm256_unpackhi_epi8(q[2], q[3]);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(row + i),
                        _mm256_unpacklo_epi16(w0, w1));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(row + i + 32),
                        _mm256_unpackhi_epi16(w0, w1));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(row + i + 64),
                        _mm256_unpacklo_epi16(w2, w3));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(row + i + 96),
                        _mm256_unpackhi_epi16(w2, w3));
  }
  for (; i < nb; i += 4) {
    std::uint32_t x;
    std::memcpy(&x, row + i, 4);
    x = nt.mul(x);
    std::memcpy(row + i, &x, 4);
  }
}

// ----------------------------- GF(2^16)/GF(2^32) GFNI + AVX-512

// Same byte-plane transpose as the AVX2 tier (identical per 128-bit lane,
// four lanes per zmm), but each plane's contribution to an output byte is
// a single gf2p8affineqb with the 8x8 bit-block of the multiply-by-c
// matrix — no table memory, near-zero setup.  Tails use the exact scalar
// product from GF<Bits>::mul.

FAIRSHARE_TARGET("gfni,avx512f,avx512bw")
void gf16_axpy_gfni512(std::byte* dst, const std::byte* src, std::uint64_t c,
                       std::size_t n) {
  if (c == 0) return;
  const std::size_t nb = n * 2;
  std::size_t i = 0;
  if (c == 1) {
    for (; i + 64 <= nb; i += 64) {
      const __m512i s = _mm512_loadu_si512(src + i);
      const __m512i d = _mm512_loadu_si512(dst + i);
      _mm512_storeu_si512(dst + i, _mm512_xor_si512(d, s));
    }
    for (; i < nb; ++i) dst[i] ^= src[i];
    return;
  }
  const GfniMatrices<16> gm(static_cast<std::uint16_t>(c));
  const __m512i m00 = _mm512_set1_epi64(static_cast<long long>(gm.m[0][0]));
  const __m512i m01 = _mm512_set1_epi64(static_cast<long long>(gm.m[0][1]));
  const __m512i m10 = _mm512_set1_epi64(static_cast<long long>(gm.m[1][0]));
  const __m512i m11 = _mm512_set1_epi64(static_cast<long long>(gm.m[1][1]));
  const __m512i deint = _mm512_broadcast_i32x4(
      _mm_setr_epi8(0, 2, 4, 6, 8, 10, 12, 14, 1, 3, 5, 7, 9, 11, 13, 15));
  for (; i + 128 <= nb; i += 128) {
    const __m512i v0 = _mm512_loadu_si512(src + i);
    const __m512i v1 = _mm512_loadu_si512(src + i + 64);
    const __m512i t0 = _mm512_shuffle_epi8(v0, deint);
    const __m512i t1 = _mm512_shuffle_epi8(v1, deint);
    const __m512i lo = _mm512_unpacklo_epi64(t0, t1);
    const __m512i hi = _mm512_unpackhi_epi64(t0, t1);
    const __m512i p0 =
        _mm512_xor_si512(_mm512_gf2p8affine_epi64_epi8(lo, m00, 0),
                         _mm512_gf2p8affine_epi64_epi8(hi, m01, 0));
    const __m512i p1 =
        _mm512_xor_si512(_mm512_gf2p8affine_epi64_epi8(lo, m10, 0),
                         _mm512_gf2p8affine_epi64_epi8(hi, m11, 0));
    const __m512i r0 = _mm512_unpacklo_epi8(p0, p1);
    const __m512i r1 = _mm512_unpackhi_epi8(p0, p1);
    const __m512i d0 = _mm512_loadu_si512(dst + i);
    const __m512i d1 = _mm512_loadu_si512(dst + i + 64);
    _mm512_storeu_si512(dst + i, _mm512_xor_si512(d0, r0));
    _mm512_storeu_si512(dst + i + 64, _mm512_xor_si512(d1, r1));
  }
  for (; i < nb; i += 2) {
    std::uint16_t x, y;
    std::memcpy(&x, src + i, 2);
    std::memcpy(&y, dst + i, 2);
    y = static_cast<std::uint16_t>(
        y ^ GF<16>::mul(static_cast<std::uint16_t>(c), x));
    std::memcpy(dst + i, &y, 2);
  }
}

FAIRSHARE_TARGET("gfni,avx512f,avx512bw")
void gf16_scale_gfni512(std::byte* row, std::uint64_t c, std::size_t n) {
  if (c == 1) return;
  if (c == 0) {
    std::memset(row, 0, n * 2);
    return;
  }
  const GfniMatrices<16> gm(static_cast<std::uint16_t>(c));
  const __m512i m00 = _mm512_set1_epi64(static_cast<long long>(gm.m[0][0]));
  const __m512i m01 = _mm512_set1_epi64(static_cast<long long>(gm.m[0][1]));
  const __m512i m10 = _mm512_set1_epi64(static_cast<long long>(gm.m[1][0]));
  const __m512i m11 = _mm512_set1_epi64(static_cast<long long>(gm.m[1][1]));
  const __m512i deint = _mm512_broadcast_i32x4(
      _mm_setr_epi8(0, 2, 4, 6, 8, 10, 12, 14, 1, 3, 5, 7, 9, 11, 13, 15));
  const std::size_t nb = n * 2;
  std::size_t i = 0;
  for (; i + 128 <= nb; i += 128) {
    const __m512i v0 = _mm512_loadu_si512(row + i);
    const __m512i v1 = _mm512_loadu_si512(row + i + 64);
    const __m512i t0 = _mm512_shuffle_epi8(v0, deint);
    const __m512i t1 = _mm512_shuffle_epi8(v1, deint);
    const __m512i lo = _mm512_unpacklo_epi64(t0, t1);
    const __m512i hi = _mm512_unpackhi_epi64(t0, t1);
    const __m512i p0 =
        _mm512_xor_si512(_mm512_gf2p8affine_epi64_epi8(lo, m00, 0),
                         _mm512_gf2p8affine_epi64_epi8(hi, m01, 0));
    const __m512i p1 =
        _mm512_xor_si512(_mm512_gf2p8affine_epi64_epi8(lo, m10, 0),
                         _mm512_gf2p8affine_epi64_epi8(hi, m11, 0));
    _mm512_storeu_si512(row + i, _mm512_unpacklo_epi8(p0, p1));
    _mm512_storeu_si512(row + i + 64, _mm512_unpackhi_epi8(p0, p1));
  }
  for (; i < nb; i += 2) {
    std::uint16_t x;
    std::memcpy(&x, row + i, 2);
    x = GF<16>::mul(static_cast<std::uint16_t>(c), x);
    std::memcpy(row + i, &x, 2);
  }
}

FAIRSHARE_TARGET("gfni,avx512f,avx512bw")
void gf32_axpy_gfni512(std::byte* dst, const std::byte* src, std::uint64_t c,
                       std::size_t n) {
  if (c == 0) return;
  const std::size_t nb = n * 4;
  std::size_t i = 0;
  if (c == 1) {
    for (; i + 64 <= nb; i += 64) {
      const __m512i s = _mm512_loadu_si512(src + i);
      const __m512i d = _mm512_loadu_si512(dst + i);
      _mm512_storeu_si512(dst + i, _mm512_xor_si512(d, s));
    }
    for (; i < nb; ++i) dst[i] ^= src[i];
    return;
  }
  const GfniMatrices<32> gm(static_cast<std::uint32_t>(c));
  __m512i M[4][4];
  for (int o = 0; o < 4; ++o)
    for (int k = 0; k < 4; ++k)
      M[o][k] = _mm512_set1_epi64(static_cast<long long>(gm.m[o][k]));
  const __m512i deint = _mm512_broadcast_i32x4(
      _mm_setr_epi8(0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15));
  for (; i + 256 <= nb; i += 256) {
    __m512i t[4];
    for (int r = 0; r < 4; ++r)
      t[r] = _mm512_shuffle_epi8(
          _mm512_loadu_si512(src + i + 64 * static_cast<std::size_t>(r)),
          deint);
    const __m512i u0 = _mm512_unpacklo_epi32(t[0], t[1]);
    const __m512i u1 = _mm512_unpackhi_epi32(t[0], t[1]);
    const __m512i u2 = _mm512_unpacklo_epi32(t[2], t[3]);
    const __m512i u3 = _mm512_unpackhi_epi32(t[2], t[3]);
    const __m512i pl[4] = {_mm512_unpacklo_epi64(u0, u2),
                           _mm512_unpackhi_epi64(u0, u2),
                           _mm512_unpacklo_epi64(u1, u3),
                           _mm512_unpackhi_epi64(u1, u3)};
    __m512i q[4];
    for (int o = 0; o < 4; ++o) {
      __m512i acc = _mm512_gf2p8affine_epi64_epi8(pl[0], M[o][0], 0);
      for (int k = 1; k < 4; ++k)
        acc = _mm512_xor_si512(acc,
                               _mm512_gf2p8affine_epi64_epi8(pl[k], M[o][k], 0));
      q[o] = acc;
    }
    const __m512i w0 = _mm512_unpacklo_epi8(q[0], q[1]);
    const __m512i w1 = _mm512_unpacklo_epi8(q[2], q[3]);
    const __m512i w2 = _mm512_unpackhi_epi8(q[0], q[1]);
    const __m512i w3 = _mm512_unpackhi_epi8(q[2], q[3]);
    const __m512i z[4] = {_mm512_unpacklo_epi16(w0, w1),
                          _mm512_unpackhi_epi16(w0, w1),
                          _mm512_unpacklo_epi16(w2, w3),
                          _mm512_unpackhi_epi16(w2, w3)};
    for (int r = 0; r < 4; ++r) {
      std::byte* p = dst + i + 64 * static_cast<std::size_t>(r);
      const __m512i d = _mm512_loadu_si512(p);
      _mm512_storeu_si512(p, _mm512_xor_si512(d, z[r]));
    }
  }
  for (; i < nb; i += 4) {
    std::uint32_t x, y;
    std::memcpy(&x, src + i, 4);
    std::memcpy(&y, dst + i, 4);
    y ^= GF<32>::mul(static_cast<std::uint32_t>(c), x);
    std::memcpy(dst + i, &y, 4);
  }
}

FAIRSHARE_TARGET("gfni,avx512f,avx512bw")
void gf32_scale_gfni512(std::byte* row, std::uint64_t c, std::size_t n) {
  if (c == 1) return;
  if (c == 0) {
    std::memset(row, 0, n * 4);
    return;
  }
  const GfniMatrices<32> gm(static_cast<std::uint32_t>(c));
  __m512i M[4][4];
  for (int o = 0; o < 4; ++o)
    for (int k = 0; k < 4; ++k)
      M[o][k] = _mm512_set1_epi64(static_cast<long long>(gm.m[o][k]));
  const __m512i deint = _mm512_broadcast_i32x4(
      _mm_setr_epi8(0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15));
  const std::size_t nb = n * 4;
  std::size_t i = 0;
  for (; i + 256 <= nb; i += 256) {
    __m512i t[4];
    for (int r = 0; r < 4; ++r)
      t[r] = _mm512_shuffle_epi8(
          _mm512_loadu_si512(row + i + 64 * static_cast<std::size_t>(r)),
          deint);
    const __m512i u0 = _mm512_unpacklo_epi32(t[0], t[1]);
    const __m512i u1 = _mm512_unpackhi_epi32(t[0], t[1]);
    const __m512i u2 = _mm512_unpacklo_epi32(t[2], t[3]);
    const __m512i u3 = _mm512_unpackhi_epi32(t[2], t[3]);
    const __m512i pl[4] = {_mm512_unpacklo_epi64(u0, u2),
                           _mm512_unpackhi_epi64(u0, u2),
                           _mm512_unpacklo_epi64(u1, u3),
                           _mm512_unpackhi_epi64(u1, u3)};
    __m512i q[4];
    for (int o = 0; o < 4; ++o) {
      __m512i acc = _mm512_gf2p8affine_epi64_epi8(pl[0], M[o][0], 0);
      for (int k = 1; k < 4; ++k)
        acc = _mm512_xor_si512(acc,
                               _mm512_gf2p8affine_epi64_epi8(pl[k], M[o][k], 0));
      q[o] = acc;
    }
    const __m512i w0 = _mm512_unpacklo_epi8(q[0], q[1]);
    const __m512i w1 = _mm512_unpacklo_epi8(q[2], q[3]);
    const __m512i w2 = _mm512_unpackhi_epi8(q[0], q[1]);
    const __m512i w3 = _mm512_unpackhi_epi8(q[2], q[3]);
    _mm512_storeu_si512(row + i, _mm512_unpacklo_epi16(w0, w1));
    _mm512_storeu_si512(row + i + 64, _mm512_unpackhi_epi16(w0, w1));
    _mm512_storeu_si512(row + i + 128, _mm512_unpacklo_epi16(w2, w3));
    _mm512_storeu_si512(row + i + 192, _mm512_unpackhi_epi16(w2, w3));
  }
  for (; i < nb; i += 4) {
    std::uint32_t x;
    std::memcpy(&x, row + i, 4);
    x = GF<32>::mul(static_cast<std::uint32_t>(c), x);
    std::memcpy(row + i, &x, 4);
  }
}

#undef FAIRSHARE_TARGET

#endif  // FAIRSHARE_HAVE_X86_KERNELS

// ----------------------------------------- GF(2^16)/GF(2^32) window64

// Window-table products consumed 64 bits per load: 4 GF(2^16) or 2
// GF(2^32) symbols per iteration, byte-extracted with shifts instead of
// one memcpy per symbol.  Little-endian only (symbol s must occupy bits
// [Bits*s, Bits*(s+1)) of the loaded word).
template <unsigned Bits>
void wide_axpy_win64(std::byte* dst, const std::byte* src, std::uint64_t c,
                     std::size_t n) {
  using Elem = typename GF<Bits>::Elem;
  if (c == 0) return;
  if (c == 1) {
    // Unit pivot: pure xor, widened to word width like the product loop.
    const std::size_t total = n * sizeof(Elem);
    std::size_t i = 0;
    for (; i + 8 <= total; i += 8) {
      std::uint64_t x, y;
      std::memcpy(&x, src + i, 8);
      std::memcpy(&y, dst + i, 8);
      y ^= x;
      std::memcpy(dst + i, &y, 8);
    }
    for (; i < total; ++i) dst[i] ^= src[i];
    return;
  }
  const WindowTables<Bits> tab(static_cast<Elem>(c));
  constexpr std::size_t kSyms = 64 / Bits;
  const std::size_t words = n / kSyms;
  const std::byte* s = src;
  std::byte* d = dst;
  for (std::size_t w = 0; w < words; ++w, s += 8, d += 8) {
    std::uint64_t x, y;
    std::memcpy(&x, s, 8);
    std::memcpy(&y, d, 8);
    std::uint64_t r;
    if constexpr (Bits == 16) {
      r = static_cast<std::uint64_t>(static_cast<std::uint16_t>(
          tab.w[0][x & 0xFF] ^ tab.w[1][(x >> 8) & 0xFF]));
      r |= static_cast<std::uint64_t>(static_cast<std::uint16_t>(
               tab.w[0][(x >> 16) & 0xFF] ^ tab.w[1][(x >> 24) & 0xFF]))
           << 16;
      r |= static_cast<std::uint64_t>(static_cast<std::uint16_t>(
               tab.w[0][(x >> 32) & 0xFF] ^ tab.w[1][(x >> 40) & 0xFF]))
           << 32;
      r |= static_cast<std::uint64_t>(static_cast<std::uint16_t>(
               tab.w[0][(x >> 48) & 0xFF] ^ tab.w[1][(x >> 56) & 0xFF]))
           << 48;
    } else {
      static_assert(Bits == 32);
      r = static_cast<std::uint64_t>(static_cast<std::uint32_t>(
          tab.w[0][x & 0xFF] ^ tab.w[1][(x >> 8) & 0xFF] ^
          tab.w[2][(x >> 16) & 0xFF] ^ tab.w[3][(x >> 24) & 0xFF]));
      r |= static_cast<std::uint64_t>(static_cast<std::uint32_t>(
               tab.w[0][(x >> 32) & 0xFF] ^ tab.w[1][(x >> 40) & 0xFF] ^
               tab.w[2][(x >> 48) & 0xFF] ^ tab.w[3][(x >> 56) & 0xFF]))
           << 32;
    }
    y ^= r;
    std::memcpy(d, &y, 8);
  }
  for (std::size_t i = words * kSyms; i < n; ++i) {
    Elem x, y;
    std::memcpy(&x, src + i * sizeof(Elem), sizeof(Elem));
    std::memcpy(&y, dst + i * sizeof(Elem), sizeof(Elem));
    y = static_cast<Elem>(y ^ tab.mul(x));
    std::memcpy(dst + i * sizeof(Elem), &y, sizeof(Elem));
  }
}

template <unsigned Bits>
void wide_scale_win64(std::byte* row, std::uint64_t c, std::size_t n) {
  using Elem = typename GF<Bits>::Elem;
  if (c == 1) return;
  if (c == 0) {
    std::memset(row, 0, n * sizeof(Elem));
    return;
  }
  const WindowTables<Bits> tab(static_cast<Elem>(c));
  constexpr std::size_t kSyms = 64 / Bits;
  const std::size_t words = n / kSyms;
  std::byte* p = row;
  for (std::size_t w = 0; w < words; ++w, p += 8) {
    std::uint64_t x;
    std::memcpy(&x, p, 8);
    std::uint64_t r;
    if constexpr (Bits == 16) {
      r = static_cast<std::uint64_t>(static_cast<std::uint16_t>(
          tab.w[0][x & 0xFF] ^ tab.w[1][(x >> 8) & 0xFF]));
      r |= static_cast<std::uint64_t>(static_cast<std::uint16_t>(
               tab.w[0][(x >> 16) & 0xFF] ^ tab.w[1][(x >> 24) & 0xFF]))
           << 16;
      r |= static_cast<std::uint64_t>(static_cast<std::uint16_t>(
               tab.w[0][(x >> 32) & 0xFF] ^ tab.w[1][(x >> 40) & 0xFF]))
           << 32;
      r |= static_cast<std::uint64_t>(static_cast<std::uint16_t>(
               tab.w[0][(x >> 48) & 0xFF] ^ tab.w[1][(x >> 56) & 0xFF]))
           << 48;
    } else {
      static_assert(Bits == 32);
      r = static_cast<std::uint64_t>(static_cast<std::uint32_t>(
          tab.w[0][x & 0xFF] ^ tab.w[1][(x >> 8) & 0xFF] ^
          tab.w[2][(x >> 16) & 0xFF] ^ tab.w[3][(x >> 24) & 0xFF]));
      r |= static_cast<std::uint64_t>(static_cast<std::uint32_t>(
               tab.w[0][(x >> 32) & 0xFF] ^ tab.w[1][(x >> 40) & 0xFF] ^
               tab.w[2][(x >> 48) & 0xFF] ^ tab.w[3][(x >> 56) & 0xFF]))
           << 32;
    }
    std::memcpy(p, &r, 8);
  }
  for (std::size_t i = words * kSyms; i < n; ++i) {
    Elem x;
    std::memcpy(&x, row + i * sizeof(Elem), sizeof(Elem));
    x = tab.mul(x);
    std::memcpy(row + i * sizeof(Elem), &x, sizeof(Elem));
  }
}

}  // namespace

RowKernels accelerated_row_kernels(FieldId id, const CpuFeatures& feat) {
  switch (id) {
    case FieldId::gf2_4:
#if FAIRSHARE_HAVE_X86_KERNELS
      if (feat.avx2) return {&gf4_axpy_avx2, &gf4_scale_avx2, "avx2"};
      if (feat.ssse3) return {&gf4_axpy_ssse3, &gf4_scale_ssse3, "ssse3"};
#endif
      break;
    case FieldId::gf2_8:
#if FAIRSHARE_HAVE_X86_KERNELS
      if (feat.avx2) return {&gf8_axpy_avx2, &gf8_scale_avx2, "avx2"};
      if (feat.ssse3) return {&gf8_axpy_ssse3, &gf8_scale_ssse3, "ssse3"};
#endif
      break;
    case FieldId::gf2_16:
#if FAIRSHARE_HAVE_X86_KERNELS
      if (feat.gfni && feat.avx512f && feat.avx512bw)
        return {&gf16_axpy_gfni512, &gf16_scale_gfni512, "gfni512"};
      if (feat.avx2) return {&gf16_axpy_avx2, &gf16_scale_avx2, "avx2"};
#endif
      if constexpr (std::endian::native == std::endian::little)
        return {&wide_axpy_win64<16>, &wide_scale_win64<16>, "window64"};
      break;
    case FieldId::gf2_32:
#if FAIRSHARE_HAVE_X86_KERNELS
      if (feat.gfni && feat.avx512f && feat.avx512bw)
        return {&gf32_axpy_gfni512, &gf32_scale_gfni512, "gfni512"};
      if (feat.avx2) return {&gf32_axpy_avx2, &gf32_scale_avx2, "avx2"};
#endif
      if constexpr (std::endian::native == std::endian::little)
        return {&wide_axpy_win64<32>, &wide_scale_win64<32>, "window64"};
      break;
  }
  (void)feat;
  return {};
}

}  // namespace fairshare::gf::detail
