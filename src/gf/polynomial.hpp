// Utilities for polynomials over GF(2) represented as bit masks, used to
// validate the reduction moduli of field.hpp and by tests/benches that
// explore alternative field constructions.
#pragma once

#include <cstdint>

namespace fairshare::gf {

/// Degree of the GF(2) polynomial `p` (index of its highest set bit).
/// Precondition: p != 0.
int poly_degree(std::uint64_t p);

/// Product of GF(2) polynomials a*b reduced modulo `modulus`, where
/// `modulus` has degree `bits` and deg(a), deg(b) < bits.
std::uint64_t poly_mul_mod(std::uint64_t a, std::uint64_t b,
                           std::uint64_t modulus, unsigned bits);

/// x^(2^e) mod modulus applied to `v` (e-fold Frobenius), i.e. squares `v`
/// e times in GF(2)[x]/(modulus).
std::uint64_t poly_frobenius(std::uint64_t v, std::uint64_t modulus,
                             unsigned bits, unsigned e);

/// Rabin irreducibility test for a degree-`bits` polynomial over GF(2).
/// `bits` must be in [2, 63] and `modulus` must have bit `bits` set.
///
/// The test checks x^(2^bits) == x (mod modulus) and, for every prime
/// divisor d of `bits`, that x^(2^(bits/d)) != x.  This is exact (not
/// probabilistic).
bool poly_is_irreducible(std::uint64_t modulus, unsigned bits);

/// True when x generates the multiplicative group of
/// GF(2)[x]/(modulus), i.e. the polynomial is primitive.  Requires
/// `modulus` irreducible of degree `bits` with bits <= 32.
bool poly_is_primitive(std::uint64_t modulus, unsigned bits);

}  // namespace fairshare::gf
