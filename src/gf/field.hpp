// Finite-field arithmetic over GF(2^p) for p in {4, 8, 16, 32}.
//
// These are the four field sizes evaluated in Tables I and II of the paper
// ("Fast data access over asymmetric channels using fair and secure
// bandwidth sharing", ICDCS 2006).  The random linear code of Section III
// operates on m-element vectors over one of these fields.
//
// Implementation strategy (mirrors how NTL, the library used by the paper,
// amortizes field-operation cost):
//   * GF(2^4), GF(2^8):  log/exp tables plus a full multiplication table.
//   * GF(2^16):          log/exp tables (256 KiB + 128 KiB, built lazily).
//   * GF(2^32):          carry-less shift-xor multiply; bulk row operations
//                        in row_ops.hpp build per-scalar window tables.
//
// All moduli below were verified irreducible with the Rabin test (see
// polynomial.hpp and tests/gf/polynomial_test.cpp); x is a primitive
// element for p <= 16, which the log/exp construction relies on.
#pragma once

#include <array>
#include <cstdint>
#include <type_traits>

namespace fairshare::gf {

/// Static description of one binary extension field GF(2^Bits).
///
/// `Elem` is the unsigned integer type that holds one field element in its
/// low `Bits` bits.  `modulus` is the irreducible reduction polynomial with
/// the implicit x^Bits term included (bit `Bits` set).
template <unsigned Bits>
struct FieldTraits;

template <>
struct FieldTraits<4> {
  using Elem = std::uint8_t;
  static constexpr std::uint64_t modulus = 0x13;  // x^4 + x + 1 (primitive)
};

template <>
struct FieldTraits<8> {
  using Elem = std::uint8_t;
  static constexpr std::uint64_t modulus = 0x11D;  // x^8+x^4+x^3+x^2+1 (primitive)
};

template <>
struct FieldTraits<16> {
  using Elem = std::uint16_t;
  static constexpr std::uint64_t modulus = 0x1100B;  // x^16+x^12+x^3+x+1 (primitive)
};

template <>
struct FieldTraits<32> {
  using Elem = std::uint32_t;
  static constexpr std::uint64_t modulus = 0x100400007;  // x^32+x^22+x^2+x+1
};

namespace detail {

/// Carry-less (polynomial) multiplication of a and b reduced mod `modulus`,
/// where the operands have degree < `bits`.  Used directly for GF(2^32) and
/// to build the tables of the smaller fields.
constexpr std::uint64_t polymul_mod(std::uint64_t a, std::uint64_t b,
                                    std::uint64_t modulus, unsigned bits) {
  std::uint64_t r = 0;
  while (b != 0) {
    if (b & 1) r ^= a;
    b >>= 1;
    a <<= 1;
    if ((a >> bits) & 1) a ^= modulus;
  }
  return r;
}

}  // namespace detail

/// Arithmetic in GF(2^Bits).  All functions are static; elements are plain
/// unsigned integers in [0, 2^Bits).  Addition is xor.  Multiplication and
/// inversion dispatch to table lookups for Bits <= 16 and to carry-less
/// arithmetic for Bits == 32.
template <unsigned Bits>
class GF {
 public:
  using Elem = typename FieldTraits<Bits>::Elem;
  static constexpr unsigned bits = Bits;
  static constexpr std::uint64_t modulus = FieldTraits<Bits>::modulus;
  /// Field size q = 2^Bits.
  static constexpr std::uint64_t order = std::uint64_t{1} << Bits;
  /// Multiplicative group order q - 1.
  static constexpr std::uint64_t group_order = order - 1;

  static constexpr Elem zero() { return 0; }
  static constexpr Elem one() { return 1; }

  /// Addition (== subtraction) is carry-less: xor.
  static constexpr Elem add(Elem a, Elem b) { return a ^ b; }
  static constexpr Elem sub(Elem a, Elem b) { return a ^ b; }

  /// Field multiplication.
  static Elem mul(Elem a, Elem b);

  /// Multiplicative inverse.  Precondition: a != 0.
  static Elem inv(Elem a);

  /// a / b.  Precondition: b != 0.
  static Elem div(Elem a, Elem b) { return mul(a, inv(b)); }

  /// a^e by square-and-multiply (e is an ordinary integer exponent).
  static Elem pow(Elem a, std::uint64_t e);

  /// Discrete log base the primitive element x (Bits <= 16 only).
  /// Precondition: a != 0.
  static std::uint32_t log(Elem a)
    requires(Bits <= 16);

  /// x^e for the primitive element x (Bits <= 16 only).
  static Elem exp(std::uint32_t e)
    requires(Bits <= 16);
};

// The small fields use lazily-built shared tables; see field.cpp.
extern template class GF<4>;
extern template class GF<8>;
extern template class GF<16>;
extern template class GF<32>;

}  // namespace fairshare::gf
