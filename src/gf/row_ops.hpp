// Bulk operations on rows of field symbols, plus a runtime-dispatched view
// of a field's scalar and row operations.
//
// A "row" is a contiguous buffer of n symbols in the field's packed wire
// representation:
//   GF(2^4)  : two symbols per byte, low nibble = even index
//   GF(2^8)  : one byte per symbol
//   GF(2^16) : two bytes per symbol, little endian
//   GF(2^32) : four bytes per symbol, little endian
//
// This packed form is exactly what the coded messages of Section III carry
// on the wire, so the decoder's Gaussian elimination runs directly on
// received payloads with no unpacking pass.
//
// Row operations are where virtually all decode time is spent (the paper's
// Table II cost O(m k^2) dominates the O(k^3) coefficient inversion), so
// `field_view()` dispatches each field's axpy/scale to the fastest kernel
// the host supports, selected once at first use:
//   * GF(2^4)/GF(2^8): SSSE3/AVX2 split-nibble shuffle kernels (two
//     16-entry pshufb tables per scalar, 16/32 bytes per step) on x86,
//     falling back to premultiplied byte tables (one lookup+xor/byte);
//   * GF(2^16)/GF(2^32): best of, in order — GFNI/AVX-512 per-byte-plane
//     affine kernels ("gfni512"), AVX2 split-table pshufb kernels on
//     deinterleaved byte planes ("avx2"), per-scalar window tables consumed
//     64 bits per load on little-endian hosts ("window64"), and the
//     symbol-at-a-time scalar window path everywhere else.
// Setting the FAIRSHARE_FORCE_SCALAR_KERNELS environment variable (or the
// CMake option of the same name) pins every field to the portable scalar
// path; `scalar_field_view()` exposes that path unconditionally so tests
// and benchmarks can compare the two in one process.  Setting
// FAIRSHARE_KERNEL_CAP to a tier name ("avx2", "ssse3", "window64")
// disables every tier above it, so the differential suite can exercise
// lower tiers on hosts whose dispatch would otherwise shadow them.
#pragma once

#include <cstddef>
#include <cstdint>

#include "gf/field_id.hpp"

namespace fairshare::gf {

/// Runtime-dispatched field interface.  Obtain with `field_view(id)`;
/// the returned reference has static storage duration.
///
/// Scalar values are passed as uint64_t holding an element in the low
/// `bits` bits.  Row buffers are raw bytes in the packed representation
/// described in the header comment.
struct FieldView {
  FieldId id;
  unsigned bits;        ///< p: bits per symbol
  std::uint64_t order;  ///< q = 2^p

  std::uint64_t (*mul)(std::uint64_t a, std::uint64_t b);
  std::uint64_t (*inv)(std::uint64_t a);  ///< precondition: a != 0
  std::uint64_t (*pow)(std::uint64_t a, std::uint64_t e);

  /// Bytes needed to store a row of n symbols.
  std::size_t (*row_bytes)(std::size_t n);
  /// Read symbol i of a packed row.
  std::uint64_t (*get)(const std::byte* row, std::size_t i);
  /// Write symbol i of a packed row.
  void (*set)(std::byte* row, std::size_t i, std::uint64_t v);

  /// dst ^= c * src over n symbols (the Gaussian-elimination kernel).
  /// dst and src must not overlap unless dst == src.
  void (*axpy)(std::byte* dst, const std::byte* src, std::uint64_t c,
               std::size_t n);
  /// row *= c over n symbols.
  void (*scale)(std::byte* row, std::uint64_t c, std::size_t n);

  /// Name of the row-kernel variant axpy/scale dispatched to: "scalar",
  /// "ssse3", "avx2", "window64", or "gfni512".  Diagnostic only — perf
  /// reports use it to attribute numbers to a code path.
  const char* kernel;
};

/// CPU features relevant to kernel dispatch, detected once at runtime.
/// All false on non-x86 builds.
struct CpuFeatures {
  bool ssse3 = false;
  bool avx2 = false;
  bool gfni = false;
  bool avx512f = false;
  bool avx512bw = false;
};

/// Detected features of the host CPU (cached after the first call).
/// Reports the raw hardware; the FAIRSHARE_KERNEL_CAP tier cap is applied
/// separately during dispatch (see kernel_tier_cap()).
CpuFeatures cpu_features();

/// The FAIRSHARE_KERNEL_CAP environment value ("avx2", "ssse3",
/// "window64") read once at first use, or nullptr when unset.  Dispatch
/// treats every tier above the cap as unsupported; unknown values behave
/// as unset.  Diagnostic surface for `fairshare_cli caps` and tests.
const char* kernel_tier_cap();

/// True when kernel dispatch is pinned to the portable scalar path, either
/// by compiling with -DFAIRSHARE_FORCE_SCALAR_KERNELS=ON or by setting the
/// FAIRSHARE_FORCE_SCALAR_KERNELS environment variable to anything but
/// "0"/"" before the first field_view() call.
bool scalar_kernels_forced();

/// The shared FieldView for `id` with axpy/scale dispatched to the fastest
/// supported kernel.  Thread-safe; dispatch runs once and tables are built
/// lazily on first use.
const FieldView& field_view(FieldId id);

/// The portable scalar FieldView for `id`, regardless of dispatch.  The
/// differential tests and the benchmark scalar-vs-SIMD axis diff this
/// against field_view(); everything else should use field_view().
const FieldView& scalar_field_view(FieldId id);

}  // namespace fairshare::gf
