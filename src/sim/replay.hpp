// Workload replay over the simulator, and the report schema both replay
// engines share.
//
// replay_sim() runs a WorkloadTrace through the slotted Simulator with a
// topology mirroring the live setup of net::replay_live: one serving peer
// dividing its upload by the paper's Equation (2) over a bytes-served
// ledger (exactly what PeerServer::pacing_tick_locked feeds its policy),
// and one closed-loop TraceDemand per user that requests while it has
// backlog.  Both engines emit a ReplayReport with identical fields, so a
// sim run and a live run of the same trace can be compared field-for-field
// by replay_agrees() — the agreement test that keeps the simulator honest.
//
// Unit mapping.  The simulator's native units are kbps with one slot = one
// second.  A replay slot instead stands for `slot_seconds` of wall time,
// and the live server's pacing budget is charged *framed* bytes (header +
// payload) while goodput counts payload only; so the serving peer's sim
// capacity is rate_kbps * slot_seconds / wire_overhead, making "bytes
// delivered per sim slot" equal "payload bytes per slot_seconds of wall
// time" (see net::wire_overhead_factor for the overhead of a FileInfo).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/workload.hpp"

namespace fairshare::sim {

/// Per-user outcome of one replay (either engine).
struct ReplayUserStats {
  std::uint64_t user_id = 0;
  std::uint64_t events = 0;         ///< workload events for this user
  std::uint64_t bytes = 0;          ///< demanded bytes (post-quantization)
  double delivered_bytes = 0.0;     ///< payload bytes actually delivered
  double first_seconds = 0.0;       ///< first arrival, seconds from start
  double done_seconds = 0.0;        ///< last delivery completed
  double goodput_bps = 0.0;         ///< delivered*8 / (done - first)
  double share = 0.0;               ///< goodput / sum of all goodputs
  /// Sim engine only: payload bytes delivered per slot (empty for live).
  std::vector<double> per_slot_bytes;
};

/// One replay run, comparable field-for-field across engines.
struct ReplayReport {
  std::string mode;                 ///< "sim" or "live"
  double rate_kbps = 0.0;           ///< serving peer's wire upload capacity
  double slot_seconds = 0.0;        ///< wall seconds one slot stands for
  double wire_overhead = 1.0;       ///< framed bytes / payload bytes
  std::uint64_t slots = 0;          ///< slots executed (live: derived)
  double seconds = 0.0;             ///< total run duration
  std::uint64_t total_bytes = 0;    ///< demanded bytes across users
  std::size_t transfers_failed = 0; ///< live: failed downloads; sim: users
                                    ///< still backlogged at max_slots
  std::vector<ReplayUserStats> users;  ///< sorted by user_id
};

struct SimReplayConfig {
  /// Live serving peer's upload capacity in kbps (the wire rate; the
  /// effective sim capacity divides out wire_overhead).
  double rate_kbps = 4000.0;
  /// Wall seconds one sim slot stands for.
  double slot_seconds = 0.05;
  /// Safety cap on slots (a trace the capacity cannot drain must not spin
  /// forever); leftovers are reported in transfers_failed.
  std::uint64_t max_slots = 1 << 20;
  /// When > 0, demand is rounded up to whole multiples (the live driver
  /// transfers whole files of this many bytes).
  std::uint64_t quantize_bytes = 0;
  /// Framed-bytes / payload-bytes factor of the live wire format (>= 1).
  double wire_overhead = 1.0;
  /// Initial Equation-(2) ledger credits, mirroring
  /// PeerServer::seed_contribution (user_id, amount-in-bytes).
  std::vector<std::pair<std::uint64_t, double>> seed_contributions;
  /// When set, the run publishes sim::publish_metrics plus the replay
  /// gauges of publish_replay_metrics into this registry.
  obs::MetricsRegistry* registry = nullptr;
};

/// Replay `trace` through the slotted simulator.  The trace must be
/// normalized (every importer/generator returns it that way).
ReplayReport replay_sim(const WorkloadTrace& trace,
                        const SimReplayConfig& config);

struct AgreementOptions {
  /// Max relative difference admitted per compared quantity.
  double tolerance = 0.15;
  /// Users whose share is below this in BOTH runs skip the goodput/share
  /// comparison (tiny flows are dominated by per-transfer setup noise).
  double min_share = 0.0;
};

/// Field-for-field agreement check between two replay runs of the same
/// trace: same users, same demanded bytes, per-user goodput and Equation-
/// (2) share within tolerance.  On failure *why (if given) names the first
/// disagreeing user and quantity.
bool replay_agrees(const ReplayReport& a, const ReplayReport& b,
                   const AgreementOptions& options = {},
                   std::string* why = nullptr);

/// JSON rendering of a report (the `fairshare_cli replay` output format;
/// stable key order).  per_slot_bytes series are included only when
/// non-empty.
std::string to_json(const ReplayReport& report);

/// Export a report's headline numbers as gauges: per-user goodput/share
/// (labels mode=<mode>, user=<id>) plus run totals.
void publish_replay_metrics(const ReplayReport& report,
                            obs::MetricsRegistry& registry);

}  // namespace fairshare::sim
