// Deterministic simulation RNG (SplitMix64).
//
// All non-cryptographic randomness in the simulator flows from explicit
// 64-bit seeds so every experiment in EXPERIMENTS.md is reproducible
// bit-for-bit.  (Coefficient generation uses ChaCha20 instead; see
// coding/coefficients.hpp.)
#pragma once

#include <cstdint>

namespace fairshare::sim {

/// SplitMix64: tiny, fast, passes BigCrush; ideal for simulation streams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound); bound >= 1.  Modulo bias is < 2^-32
  /// for the bounds used in simulation, which is acceptable here (the
  /// cryptographic paths use rejection sampling instead).
  std::uint64_t next_below(std::uint64_t bound) { return next() % bound; }

  /// Derive an independent stream (e.g. one per peer) from this one.
  SplitMix64 fork() { return SplitMix64(next() ^ 0xD1B54A32D192ED03ull); }

 private:
  std::uint64_t state_;
};

}  // namespace fairshare::sim
