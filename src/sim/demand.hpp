// User demand processes I_i(t).
//
// Section IV-A models each user as requesting bandwidth in slot t with
// probability gamma_i, iid across slots and users.  The evaluation
// additionally uses scripted patterns: always-on saturation (Fig 5),
// "12 randomly chosen hours in a day ... in chunks of 1 hour" (Figs 6-7),
// and step functions (Fig 8a).  Each pattern is a DemandProcess.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/rng.hpp"

namespace fairshare::sim {

/// Whether user i requests download bandwidth in slot t (the indicator
/// I_i(t) of Section IV-A).  Implementations must be deterministic
/// functions of (seed, t) so the engine may query any slot in order.
class DemandProcess {
 public:
  virtual ~DemandProcess() = default;
  virtual bool requests(std::uint64_t slot) = 0;
};

/// I(t) = 1 always: the saturated regime gamma -> 1 of Corollary 1 and of
/// Figures 5 and 8b.
class AlwaysDemand final : public DemandProcess {
 public:
  bool requests(std::uint64_t) override { return true; }
};

/// I(t) = 0 always (a pure contributor).
class NeverDemand final : public DemandProcess {
 public:
  bool requests(std::uint64_t) override { return false; }
};

/// iid Bernoulli(gamma) per slot — the analytical model of Section IV-A.
/// The draw is a pure function of (seed, slot): seeding SplitMix64 at
/// state seed + slot * gamma64 makes its first output the slot-th element
/// of the seed's canonical stream, so querying any slot, in any order, any
/// number of times, always yields that same element.
class BernoulliDemand final : public DemandProcess {
 public:
  BernoulliDemand(double gamma, std::uint64_t seed)
      : gamma_(gamma), seed_(seed) {}
  bool requests(std::uint64_t slot) override {
    SplitMix64 rng(seed_ + slot * 0x9E3779B97F4A7C15ull);
    return rng.next_double() < gamma_;
  }

 private:
  double gamma_;
  std::uint64_t seed_;
};

/// Demand driven externally between slots — the hook for job-level
/// workloads (a user requests while it has queued transfers and stops
/// when they finish, as in the service-capacity experiments).
class ManualDemand final : public DemandProcess {
 public:
  void set(bool requesting) { requesting_ = requesting; }
  bool requests(std::uint64_t) override { return requesting_; }

 private:
  bool requesting_ = false;
};

/// Requests exactly during the half-open intervals given (slots).
/// Used for step scenarios like Fig 8a ("requests from time = 1000").
class IntervalDemand final : public DemandProcess {
 public:
  using Interval = std::pair<std::uint64_t, std::uint64_t>;  // [begin, end)
  explicit IntervalDemand(std::vector<Interval> intervals)
      : intervals_(std::move(intervals)) {}
  bool requests(std::uint64_t slot) override {
    for (const auto& [b, e] : intervals_)
      if (slot >= b && slot < e) return true;
    return false;
  }

 private:
  std::vector<Interval> intervals_;
};

/// The Figs 6-7 pattern: time is divided into periods of `blocks_per_period
/// * block_slots` slots; in each period, `active_blocks` of the blocks are
/// chosen uniformly at random and the user requests throughout them.
/// With block_slots = 3600 s, blocks_per_period = 24, active_blocks = 12
/// this is "stream ... for 12 randomly chosen hours in a day ... in chunks
/// of 1 hour".
class RandomBlocksDemand final : public DemandProcess {
 public:
  RandomBlocksDemand(std::uint64_t block_slots, std::uint64_t blocks_per_period,
                     std::uint64_t active_blocks, std::uint64_t seed);
  bool requests(std::uint64_t slot) override;

 private:
  void ensure_period(std::uint64_t period);

  std::uint64_t block_slots_;
  std::uint64_t blocks_per_period_;
  std::uint64_t active_blocks_;
  SplitMix64 rng_;
  std::uint64_t cached_period_ = ~std::uint64_t{0};
  std::uint64_t next_period_to_draw_ = 0;
  std::vector<bool> active_;  // per block of the cached period
};

}  // namespace fairshare::sim
