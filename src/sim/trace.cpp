#include "sim/trace.hpp"

#include <algorithm>
#include <cassert>

namespace fairshare::sim {

double Trace::mean(std::size_t begin, std::size_t end) const {
  end = std::min(end, samples_.size());
  if (begin >= end) return 0.0;
  double sum = 0.0;
  for (std::size_t t = begin; t < end; ++t) sum += samples_[t];
  return sum / static_cast<double>(end - begin);
}

std::vector<double> Trace::smoothed(std::size_t window) const {
  assert(window >= 1);
  std::vector<double> out(samples_.size());
  double acc = 0.0;
  for (std::size_t t = 0; t < samples_.size(); ++t) {
    acc += samples_[t];
    if (t >= window) acc -= samples_[t - window];
    out[t] = acc / static_cast<double>(std::min(t + 1, window));
  }
  return out;
}

}  // namespace fairshare::sim
