#include "sim/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace fairshare::sim {

IncentiveBound incentive_bound(const Simulator& sim, std::size_t i) {
  IncentiveBound out;
  out.average_download = sim.average_download(i);
  out.isolated = sim.isolated_average(i);
  double free_share = 0.0;
  for (std::size_t l = 0; l < sim.n(); ++l) {
    if (l == i) continue;
    free_share += (1.0 - sim.empirical_gamma(l)) * sim.average_pairwise(l, i);
  }
  out.bound = out.isolated + free_share;
  return out;
}

double pairwise_unfairness(const Simulator& sim) {
  const std::size_t n = sim.n();
  double max_gap = 0.0;
  double sum = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double a = sim.average_pairwise(i, j);
      const double b = sim.average_pairwise(j, i);
      max_gap = std::max(max_gap, std::fabs(a - b));
      sum += (a + b) / 2.0;
      ++pairs;
    }
  }
  if (pairs == 0 || sum <= 0.0) return 0.0;
  const double mean_rate = sum / static_cast<double>(pairs);
  return max_gap / mean_rate;
}

std::vector<double> pairwise_matrix(const Simulator& sim) {
  const std::size_t n = sim.n();
  std::vector<double> out(n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      out[i * n + j] = sim.average_pairwise(i, j);
  return out;
}

double eq3_download_lower_bound(std::span<const double> mu,
                                std::span<const double> gamma,
                                std::size_t j) {
  double total_mu = 0.0, others = 0.0;
  for (std::size_t i = 0; i < mu.size(); ++i) {
    total_mu += mu[i];
    if (i != j) others += gamma[i] * mu[i];
  }
  return gamma[j] * mu[j] * total_mu / (mu[j] + others);
}

double jain_index(const std::vector<double>& values) {
  double sum = 0.0, sum_sq = 0.0;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq <= 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(values.size()) * sum_sq);
}

void publish_metrics(const Simulator& sim, obs::MetricsRegistry& registry) {
  const std::size_t n = sim.n();
  std::vector<double> downloads(n);
  for (std::size_t i = 0; i < n; ++i) {
    downloads[i] = sim.average_download(i);
    const obs::LabelList labels = {{"user", std::to_string(i)}};
    registry.gauge("fairshare_sim_avg_download_kbps", labels)
        .set(downloads[i]);
    registry.gauge("fairshare_sim_gamma", labels).set(sim.empirical_gamma(i));
  }
  registry.gauge("fairshare_sim_jain").set(jain_index(downloads));
  registry.gauge("fairshare_sim_pairwise_unfairness")
      .set(pairwise_unfairness(sim));
  registry.gauge("fairshare_sim_slots").set(static_cast<double>(sim.now()));
}

}  // namespace fairshare::sim
