// Federated-swarm scenario: several origin servers ("shards"), one user
// population, gossiped contribution ledgers.
//
// This is the simulation twin of the live disco path: each shard runs its
// own Eq. (2) ProportionalContributionPolicy fed only by the service IT
// delivered, plus an alloc::FederatedLedger replica.  Every slot a shard
// publishes its cumulative per-user totals into its replica and folds the
// gossiped REMOTE totals (every other origin's rows) into the policy
// feedback as deltas — exactly the PeerServer::pacing_tick_locked fold.
// Replicas max-merge pairwise every gossip_period_slots (0 = never, the
// negative control: shards then see only local history).
//
// The scenario the federation tests drive: a user contributes bytes
// through shard A, then shows up requesting at shard B.  With gossip on,
// B's ledger already carries the user's swarm-wide standing and Eq. (2)
// grants the earned share; with gossip off, the user starts from epsilon.
//
// sim cannot depend on disco (net links sim), which is why the gossip
// transport here is a direct replica merge rather than wire frames — the
// CRDT algebra and the fold are the shared, tested pieces.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "alloc/federated_ledger.hpp"
#include "alloc/policies.hpp"

namespace fairshare::sim {

struct FederationConfig {
  std::size_t shards = 2;
  std::size_t users = 4;
  /// Upload capacity of each shard per slot (kbps).
  double shard_capacity_kbps = 1000.0;
  /// Merge every replica pair each N slots; 0 = gossip disabled.
  std::uint64_t gossip_period_slots = 4;
  /// Eq. (2) epsilon (the arbitrary small positive initial ledger).
  double epsilon = 1.0;
};

class FederationSim {
 public:
  explicit FederationSim(FederationConfig config);

  /// Advance one slot.  requesting[s][u] != 0 iff user u requests from
  /// shard s this slot (a user may request from several shards at once —
  /// each shard allocates independently, as live servers do).
  void step(const std::vector<std::vector<std::uint8_t>>& requesting);

  /// Force one full anti-entropy round now (tests use this instead of
  /// waiting out gossip_period_slots).
  void gossip_now();

  std::uint64_t now() const { return slot_; }

  /// Share (kbps) shard `s` granted user `u` in the last step.
  double last_share(std::size_t s, std::size_t u) const;
  /// Cumulative service shard `s` itself delivered to user `u`.
  double local_total(std::size_t s, std::size_t u) const;
  /// User `u`'s gossiped remote standing at shard `s` (every other
  /// origin's rows, as the shard's replica currently knows them).
  double known_remote(std::size_t s, std::size_t u) const;
  /// Shard `s`'s Eq. (2) ledger row for user `u` (epsilon + local +
  /// folded remote).
  double policy_ledger(std::size_t s, std::size_t u) const;

 private:
  struct Shard {
    std::unique_ptr<alloc::ProportionalContributionPolicy> policy;
    alloc::FederatedLedger replica;
    std::vector<double> local_total;     ///< cumulative service delivered
    std::vector<double> applied_remote;  ///< remote already folded in
    std::vector<double> last_service;    ///< previous slot, = feedback
    std::vector<double> last_shares;
  };

  FederationConfig config_;
  std::vector<Shard> shards_;
  std::uint64_t slot_ = 0;
};

}  // namespace fairshare::sim
