#include "sim/replay.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <sstream>

#include "alloc/policies.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"

namespace fairshare::sim {

namespace {

/// The live server's Equation (2): shares proportional to a bytes-SERVED
/// ledger (PeerServer::pacing_tick_locked feeds its policy the bytes each
/// user was actually sent, seeded by seed_contribution).  The simulator's
/// built-in feedback is what this peer's own *user* received — not the
/// same measurement — so the replay loop credits this ledger explicitly
/// and engine feedback is ignored.
class ServedLedgerPolicy final : public alloc::AllocationPolicy {
 public:
  ServedLedgerPolicy(std::size_t n, double epsilon)
      : ledger_(n, epsilon) {}

  void allocate(const alloc::PeerContext& ctx,
                std::span<double> out) override {
    double denom = 0.0;
    for (std::size_t j = 0; j < ledger_.size(); ++j)
      if (ctx.requesting[j]) denom += ledger_[j];
    for (std::size_t j = 0; j < ledger_.size(); ++j)
      out[j] = (ctx.requesting[j] && denom > 0.0)
                   ? ctx.capacity * ledger_[j] / denom
                   : 0.0;
  }

  void credit(std::size_t j, double bytes) { ledger_[j] += bytes; }

 private:
  std::vector<double> ledger_;
};

double relative_diff(double a, double b) {
  const double scale = std::max(std::abs(a), std::abs(b));
  if (scale <= 0.0) return 0.0;
  return std::abs(a - b) / scale;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

}  // namespace

ReplayReport replay_sim(const WorkloadTrace& input,
                        const SimReplayConfig& config) {
  assert(input.is_sorted() && "normalize() the trace first");
  assert(config.rate_kbps > 0.0 && config.slot_seconds > 0.0);
  assert(config.wire_overhead >= 1.0);

  const WorkloadTrace trace = config.quantize_bytes > 0
                                  ? input.quantized(config.quantize_bytes)
                                  : input;
  const std::vector<std::uint64_t> ids = trace.users();
  const std::size_t n = ids.size() + 1;  // peer 0 serves

  // Payload bytes the server can deliver per sim slot, expressed in the
  // simulator's kbps units (bytes/slot = kbps * 125); see the unit-mapping
  // note in replay.hpp.
  const double effective_kbps =
      config.rate_kbps * config.slot_seconds / config.wire_overhead;

  auto policy = std::make_shared<ServedLedgerPolicy>(n, 1.0);
  std::map<std::uint64_t, std::size_t> index_of;  // user_id -> peer index
  for (std::size_t u = 0; u < ids.size(); ++u) index_of[ids[u]] = u + 1;
  for (const auto& [user_id, amount] : config.seed_contributions) {
    const auto it = index_of.find(user_id);
    if (it != index_of.end()) policy->credit(it->second, amount);
  }

  std::vector<std::shared_ptr<TraceDemand>> demands;
  std::vector<PeerSetup> peers(n);
  peers[0].upload_kbps = effective_kbps;
  peers[0].demand = std::make_shared<NeverDemand>();
  peers[0].policy = policy;
  for (std::size_t u = 0; u < ids.size(); ++u) {
    auto demand = std::make_shared<TraceDemand>(trace, ids[u]);
    demands.push_back(demand);
    peers[u + 1].upload_kbps = 0.0;  // pure consumers
    peers[u + 1].demand = demand;
    peers[u + 1].policy = std::make_shared<alloc::FreeRiderPolicy>();
  }

  SimConfig sim_config;
  sim_config.registry = config.registry;
  Simulator sim(std::move(peers), sim_config);

  ReplayReport report;
  report.mode = "sim";
  report.rate_kbps = config.rate_kbps;
  report.slot_seconds = config.slot_seconds;
  report.wire_overhead = config.wire_overhead;
  report.total_bytes = trace.total_bytes();
  report.users.resize(ids.size());

  std::vector<std::uint64_t> last_delivery(ids.size(), 0);
  std::vector<double> last_fraction(ids.size(), 1.0);
  while (sim.now() < config.max_slots) {
    bool pending = false;
    for (const auto& d : demands)
      if (!d->done()) pending = true;
    if (!pending) break;
    sim.step();
    const std::uint64_t t = sim.now() - 1;
    for (std::size_t u = 0; u < ids.size(); ++u) {
      const double bytes = sim.download(u + 1).at(t) * 125.0;
      const double consumed = demands[u]->deliver(bytes);
      // The live ledger accrues FRAMED bytes (the server charges
      // frame.size() against both budget and feedback), so seeds and
      // accrual mix at the same scale on both engines.
      policy->credit(u + 1, consumed * config.wire_overhead);
      report.users[u].per_slot_bytes.push_back(consumed);
      if (consumed > 0.0) {
        last_delivery[u] = t;
        // A backlog that drains before the slot's allocation runs out
        // finished partway through the slot; remember the fraction so
        // done_seconds carries sub-slot resolution like the live clock.
        last_fraction[u] = bytes > 0.0 ? std::min(consumed / bytes, 1.0)
                                       : 1.0;
      }
    }
  }

  report.slots = sim.now();
  report.seconds = static_cast<double>(report.slots) * config.slot_seconds;

  double goodput_sum = 0.0;
  for (std::size_t u = 0; u < ids.size(); ++u) {
    ReplayUserStats& s = report.users[u];
    const TraceDemand& d = *demands[u];
    s.user_id = ids[u];
    s.bytes = d.total_bytes();
    for (const WorkloadEvent& e : trace.events())
      if (e.user_id == ids[u]) {
        if (s.events == 0)
          s.first_seconds =
              static_cast<double>(e.arrival_slot) * config.slot_seconds;
        ++s.events;
      }
    s.delivered_bytes = d.delivered_bytes();
    s.done_seconds =
        (static_cast<double>(last_delivery[u]) + last_fraction[u]) *
        config.slot_seconds;
    const double span = s.done_seconds - s.first_seconds;
    s.goodput_bps = (s.delivered_bytes > 0.0 && span > 0.0)
                        ? s.delivered_bytes * 8.0 / span
                        : 0.0;
    goodput_sum += s.goodput_bps;
    if (!d.done()) ++report.transfers_failed;
  }
  for (ReplayUserStats& s : report.users)
    s.share = goodput_sum > 0.0 ? s.goodput_bps / goodput_sum : 0.0;

  if (config.registry) {
    publish_metrics(sim, *config.registry);
    publish_replay_metrics(report, *config.registry);
  }
  return report;
}

bool replay_agrees(const ReplayReport& a, const ReplayReport& b,
                   const AgreementOptions& options, std::string* why) {
  const auto fail = [&](const std::string& message) {
    if (why) *why = message;
    return false;
  };
  if (a.users.size() != b.users.size())
    return fail("user count differs: " + std::to_string(a.users.size()) +
                " vs " + std::to_string(b.users.size()));
  if (a.total_bytes != b.total_bytes)
    return fail("total_bytes differs: " + std::to_string(a.total_bytes) +
                " vs " + std::to_string(b.total_bytes));
  if (a.transfers_failed != 0 || b.transfers_failed != 0)
    return fail("transfers failed: " + std::to_string(a.transfers_failed) +
                " (" + a.mode + ") vs " + std::to_string(b.transfers_failed) +
                " (" + b.mode + ")");
  for (std::size_t u = 0; u < a.users.size(); ++u) {
    const ReplayUserStats& ua = a.users[u];
    const ReplayUserStats& ub = b.users[u];
    const std::string who = "user " + std::to_string(ua.user_id);
    if (ua.user_id != ub.user_id)
      return fail("user sets differ at index " + std::to_string(u));
    if (ua.bytes != ub.bytes)
      return fail(who + " demanded bytes differ: " +
                  std::to_string(ua.bytes) + " vs " + std::to_string(ub.bytes));
    if (ua.share < options.min_share && ub.share < options.min_share)
      continue;
    const double goodput_diff = relative_diff(ua.goodput_bps, ub.goodput_bps);
    if (goodput_diff > options.tolerance)
      return fail(who + " goodput disagrees by " +
                  format_double(goodput_diff * 100.0) + "%: " +
                  format_double(ua.goodput_bps) + " bps (" + a.mode +
                  ") vs " + format_double(ub.goodput_bps) + " bps (" +
                  b.mode + ")");
    const double share_diff = relative_diff(ua.share, ub.share);
    if (share_diff > options.tolerance)
      return fail(who + " share disagrees by " +
                  format_double(share_diff * 100.0) + "%: " +
                  format_double(ua.share) + " (" + a.mode + ") vs " +
                  format_double(ub.share) + " (" + b.mode + ")");
  }
  if (why) why->clear();
  return true;
}

std::string to_json(const ReplayReport& report) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"mode\": \"" << report.mode << "\",\n";
  out << "  \"rate_kbps\": " << format_double(report.rate_kbps) << ",\n";
  out << "  \"slot_seconds\": " << format_double(report.slot_seconds)
      << ",\n";
  out << "  \"wire_overhead\": " << format_double(report.wire_overhead)
      << ",\n";
  out << "  \"slots\": " << report.slots << ",\n";
  out << "  \"seconds\": " << format_double(report.seconds) << ",\n";
  out << "  \"total_bytes\": " << report.total_bytes << ",\n";
  out << "  \"transfers_failed\": " << report.transfers_failed << ",\n";
  out << "  \"users\": [";
  for (std::size_t u = 0; u < report.users.size(); ++u) {
    const ReplayUserStats& s = report.users[u];
    out << (u ? ",\n    {" : "\n    {");
    out << "\"user_id\": " << s.user_id;
    out << ", \"events\": " << s.events;
    out << ", \"bytes\": " << s.bytes;
    out << ", \"delivered_bytes\": " << format_double(s.delivered_bytes);
    out << ", \"first_seconds\": " << format_double(s.first_seconds);
    out << ", \"done_seconds\": " << format_double(s.done_seconds);
    out << ", \"goodput_bps\": " << format_double(s.goodput_bps);
    out << ", \"share\": " << format_double(s.share);
    if (!s.per_slot_bytes.empty()) {
      out << ", \"per_slot_bytes\": [";
      for (std::size_t t = 0; t < s.per_slot_bytes.size(); ++t)
        out << (t ? "," : "") << format_double(s.per_slot_bytes[t]);
      out << "]";
    }
    out << "}";
  }
  out << (report.users.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
  return out.str();
}

void publish_replay_metrics(const ReplayReport& report,
                            obs::MetricsRegistry& registry) {
  const obs::LabelList run_labels = {{"mode", report.mode}};
  registry.gauge("fairshare_replay_seconds", run_labels).set(report.seconds);
  registry.gauge("fairshare_replay_total_bytes", run_labels)
      .set(static_cast<double>(report.total_bytes));
  registry.gauge("fairshare_replay_transfers_failed", run_labels)
      .set(static_cast<double>(report.transfers_failed));
  for (const ReplayUserStats& s : report.users) {
    const obs::LabelList labels = {{"mode", report.mode},
                                   {"user", std::to_string(s.user_id)}};
    registry.gauge("fairshare_replay_goodput_bps", labels)
        .set(s.goodput_bps);
    registry.gauge("fairshare_replay_share", labels).set(s.share);
    registry.gauge("fairshare_replay_delivered_bytes", labels)
        .set(s.delivered_bytes);
  }
}

}  // namespace fairshare::sim
