// Fairness/incentive metrics derived from a finished simulation — the
// measurable forms of Theorem 1 and Corollary 1.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace fairshare::sim {

/// Measured form of the incentive guarantee.  Theorem 1's proof passes
/// through inequality (12):
///
///   mu_bar_i  >=  gamma_i * mu_i  +  sum_{l != i} (1 - gamma_l) * mu_bar_li
///
/// i.e. a user's long-run download is at least its isolated average plus
/// the free-bandwidth shares it earned.  Both sides are computable from
/// the omniscient simulator state using empirical gammas.
struct IncentiveBound {
  double average_download = 0.0;  ///< mu_bar_i (lhs)
  double bound = 0.0;             ///< rhs of inequality (12)
  double isolated = 0.0;          ///< gamma_i * mu_i term alone
  bool holds(double tolerance = 1e-9) const {
    return average_download + tolerance >= bound;
  }
};

IncentiveBound incentive_bound(const Simulator& sim, std::size_t i);

/// Pairwise-fairness discrepancy of Corollary 1: in the saturated regime
/// the long-run averages satisfy mu_bar_ij == mu_bar_ji.  Returns
/// max_{i != j} |mu_bar_ij - mu_bar_ji| normalized by the mean pairwise
/// rate (0 = perfectly pairwise fair).
double pairwise_unfairness(const Simulator& sim);

/// Full pairwise matrix mu_bar_ij for reporting.
std::vector<double> pairwise_matrix(const Simulator& sim);

/// Closed-form lower bound of Section IV-B, inequality (6), for the
/// declared-proportional baseline (Equation 3) with truthful declarations:
///
///   E[sum_i mu_ij]  >=  gamma_j * mu_j * sum_i mu_i
///                       / (mu_j + sum_{l != j} gamma_l * mu_l)
///
/// (obtained via Jensen's inequality; asymptotically exact as n grows with
/// per-peer bandwidth O(1/n)).  Used to validate the simulator against the
/// paper's analysis.
double eq3_download_lower_bound(std::span<const double> mu,
                                std::span<const double> gamma, std::size_t j);

/// Jain's fairness index over per-peer download/upload ratios — a scalar
/// summary used by the convergence benches (1 = every user's download
/// matches its contribution exactly).
double jain_index(const std::vector<double>& values);

/// Bridge from a (finished or running) simulation into the unified
/// registry: per-user average-download and empirical-gamma gauges, the
/// Jain index over average downloads, the Corollary-1 pairwise
/// unfairness, and a slots gauge.  Call after run(); gauges overwrite, so
/// repeated calls track a live simulation.
void publish_metrics(const Simulator& sim, obs::MetricsRegistry& registry);

}  // namespace fairshare::sim
