// Trace-driven workloads: one demand schema shared by the simulator and
// the live-server replay driver.
//
// Every demand source — imported storage/P2P traces and the synthetic
// generator families — is normalized into a WorkloadTrace: a time-sorted
// list of WorkloadEvent{user_id, arrival_slot, bytes}.  The same trace can
// then be run through sim::replay_sim (closed-loop backlog model, see
// replay.hpp) and through net::replay_live (real paced downloads against a
// PeerServer), and the two runs compared field-for-field — which is what
// turns "handles bursty, heavy-tailed arrivals" into a regression-tested
// property instead of a claim.
//
// The text importer reads a Darshan-DXT-like log format (the shape HPC
// I/O tracing tools emit); see parse_dxt for the grammar.  Synthetic
// generators cover the four canonical arrival shapes: Poisson background
// load, Zipf-popularity skew, a flash crowd, and a diurnal cycle.  All
// randomness flows from explicit SplitMix64 seeds, so a (config, seed)
// pair names one reproducible trace.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/demand.hpp"

namespace fairshare::sim {

/// One demand event: user `user_id` asks for `bytes` at `arrival_slot`.
struct WorkloadEvent {
  std::uint64_t user_id = 0;
  std::uint64_t arrival_slot = 0;
  std::uint64_t bytes = 0;

  friend bool operator==(const WorkloadEvent&, const WorkloadEvent&) = default;
};

/// A demand schedule: events sorted by (arrival_slot, user_id, insertion).
/// add() accepts events in any order; normalize() (called by the importer
/// and every generator) stable-sorts, so consumers can rely on time order.
class WorkloadTrace {
 public:
  void add(WorkloadEvent event);
  /// Stable-sort events by (arrival_slot, user_id).  Idempotent.
  void normalize();
  bool is_sorted() const { return sorted_; }

  const std::vector<WorkloadEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// Distinct user ids, ascending.
  std::vector<std::uint64_t> users() const;
  /// One past the last arrival slot (0 when empty).
  std::uint64_t horizon() const;
  std::uint64_t total_bytes() const;
  std::uint64_t user_bytes(std::uint64_t user_id) const;

  /// A copy with every event's bytes rounded UP to a multiple of `unit`
  /// (the live driver transfers whole files of `unit` bytes, so a sim run
  /// that should agree with it must serve the same rounded demand).
  WorkloadTrace quantized(std::uint64_t unit) const;

 private:
  std::vector<WorkloadEvent> events_;
  bool sorted_ = true;
};

/// Canonical text rendering used by the golden-file tests and `fairshare_cli
/// replay --dump`: a header line, one line per event (sorted), then a
/// per-user summary.  Deterministic for a normalized trace.
std::string to_text(const WorkloadTrace& trace);

// ------------------------------------------------------------- importer
//
// Darshan-DXT-like grammar, one record per line:
//
//   line      := comment | blank | record
//   comment   := '#' <anything>
//   record    := module rank op segment offset length start end
//   module    := non-space token (e.g. "X_POSIX"; content ignored)
//   rank      := uint64          -> WorkloadEvent::user_id
//   op        := "read" | "write"
//   segment   := uint64          (ignored)
//   offset    := uint64          (ignored)
//   length    := uint64          -> WorkloadEvent::bytes
//   start,end := seconds, double, end >= start
//                -> arrival_slot = floor(start / slot_seconds)
//
// Records may appear out of time order (DXT logs interleave ranks); the
// importer sorts.  Zero-length records are dropped (counted in stats).
// A malformed line — wrong field count, an unparsable number, an unknown
// op, or end < start — fails the whole parse with a message naming the
// 1-based line number.

struct DxtStats {
  std::size_t events = 0;        ///< records imported
  std::size_t skipped_zero = 0;  ///< zero-length records dropped
  bool reordered = false;        ///< input was not already time-sorted
};

/// Parse DXT-like text; nullopt on error (*error names the line).
std::optional<WorkloadTrace> parse_dxt(std::string_view text,
                                       double slot_seconds,
                                       std::string* error,
                                       DxtStats* stats = nullptr);

/// parse_dxt over a file's contents; nullopt also when unreadable.
std::optional<WorkloadTrace> load_dxt_file(const std::string& path,
                                           double slot_seconds,
                                           std::string* error,
                                           DxtStats* stats = nullptr);

// ----------------------------------------------------------- generators
//
// Event sizes are drawn from a truncated Pareto(alpha=2) with the given
// mean — heavy-tailed (most events small, occasional 16x-mean elephants),
// matching the shape of storage-trace transfer sizes.

/// Poisson background load: each user emits events as an independent
/// Poisson process of `events_per_user_slot` arrivals per slot.
struct PoissonConfig {
  std::size_t users = 4;
  std::uint64_t horizon = 64;          ///< slots
  double events_per_user_slot = 0.05;  ///< lambda per user per slot
  std::uint64_t mean_bytes = 32 * 1024;
  std::uint64_t seed = 1;
};
WorkloadTrace poisson_trace(const PoissonConfig& config);

/// Zipf-popularity skew: `events` total arrivals at uniform times, each
/// assigned to user rank r with probability proportional to 1/r^s —
/// a few users dominate, the tail barely shows up.
struct ZipfConfig {
  std::size_t users = 4;
  std::uint64_t horizon = 64;
  std::size_t events = 32;
  double s = 1.0;  ///< skew exponent (0 = uniform)
  std::uint64_t mean_bytes = 32 * 1024;
  std::uint64_t seed = 1;
};
WorkloadTrace zipf_trace(const ZipfConfig& config);

/// Flash crowd: Poisson background plus `burst_events` arrivals landing
/// in one slot, spread round-robin across the users.
struct FlashCrowdConfig {
  std::size_t users = 4;
  std::uint64_t horizon = 64;
  double base_events_per_user_slot = 0.02;
  std::uint64_t burst_slot = 8;
  std::size_t burst_events = 12;
  std::uint64_t mean_bytes = 32 * 1024;
  std::uint64_t seed = 1;
};
WorkloadTrace flash_crowd_trace(const FlashCrowdConfig& config);

/// Diurnal cycle: per-user Poisson whose rate follows a raised cosine
/// between `trough_events_per_user_slot` and `peak_events_per_user_slot`
/// with the given period (peak at period/2).
struct DiurnalConfig {
  std::size_t users = 4;
  std::uint64_t horizon = 96;
  std::uint64_t period = 48;  ///< slots per day
  double peak_events_per_user_slot = 0.10;
  double trough_events_per_user_slot = 0.01;
  std::uint64_t mean_bytes = 32 * 1024;
  std::uint64_t seed = 1;
};
WorkloadTrace diurnal_trace(const DiurnalConfig& config);

// ---------------------------------------------------------- TraceDemand

/// DemandProcess adapter for one user of a WorkloadTrace.  Closed-loop,
/// like ManualDemand: the user requests while it has backlog (arrived but
/// undelivered bytes), and the engine driving it reports deliveries via
/// deliver().  Slots must be queried in non-decreasing order (re-querying
/// the current slot is fine); with an identical delivery sequence two
/// instances answer identically, so replays are deterministic per seed.
class TraceDemand final : public DemandProcess {
 public:
  TraceDemand(const WorkloadTrace& trace, std::uint64_t user_id);

  bool requests(std::uint64_t slot) override;

  /// Record `bytes` of service; returns the amount actually consumed
  /// (delivery never exceeds what has arrived).
  double deliver(double bytes);

  double backlog() const { return arrived_bytes_ - delivered_bytes_; }
  double arrived_bytes() const { return arrived_bytes_; }
  double delivered_bytes() const { return delivered_bytes_; }
  std::uint64_t total_bytes() const { return total_bytes_; }
  /// Every event has arrived and been fully delivered.
  bool done() const;

 private:
  std::vector<WorkloadEvent> events_;  // this user's slice, time-sorted
  std::size_t next_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t last_slot_ = 0;
  double arrived_bytes_ = 0.0;
  double delivered_bytes_ = 0.0;
};

}  // namespace fairshare::sim
