// Time-slotted bandwidth-sharing simulator (the model of Section IV-A and
// the simulator of Section V).
//
// n peers share upload bandwidth in discrete slots (the paper reallocates
// "once per second"; one slot = one second, rates in kbps).  Each slot:
//   1. demand processes produce the indicator vector I(t);
//   2. every contributing peer's policy divides its current capacity among
//      requesting users (Equation 2 for honest peers; anything at all for
//      adversaries — the engine only enforces physics: no negative rates,
//      no exceeding the peer's own link capacity, no serving non-requesters);
//   3. allocations are optionally quantized to whole-message granularity
//      (the fairness "quantization errors" of Section III-D);
//   4. user download rates are recorded and each peer's policy receives
//      feedback about what its own user got (Figure 4(b)'s "periodic
//      feedback").
//
// The engine keeps the omniscient contribution matrix S_ij for metrics;
// policies themselves only ever see their local feedback.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "alloc/policy.hpp"
#include "obs/metrics.hpp"
#include "sim/demand.hpp"
#include "sim/trace.hpp"

namespace fairshare::sim {

/// Static + behavioral description of one peer.
struct PeerSetup {
  /// Baseline upload capacity mu_i in kbps.
  double upload_kbps = 0.0;
  /// Capacity the peer *claims* (read by Equation-3-style policies; liars
  /// inflate it).  Negative means "same as upload_kbps".
  double declared_kbps = -1.0;
  /// The user's request process I_i(t).
  std::shared_ptr<DemandProcess> demand;
  /// How the peer divides its upload among requesters.
  std::shared_ptr<alloc::AllocationPolicy> policy;
  /// Optional time-varying capacity (Fig 8b's drop/recovery); overrides
  /// upload_kbps when set.
  std::function<double(std::uint64_t)> capacity_schedule;
  /// Optional contribution gate (Fig 7 / Fig 8a late joiners): when it
  /// returns false the peer uploads nothing that slot (its user may still
  /// request).
  std::function<bool(std::uint64_t)> contributes;
};

struct SimConfig {
  /// Allocation granularity in kbps (0 = continuous).  With message size
  /// m*p bits served once per slot, the natural quantum is m*p/1000 kbps.
  double quantum_kbps = 0.0;
  /// Opt-in observability: when set, every step() runs under a "sim.slot"
  /// span and bumps fairshare_sim_slots_total.  Left null (the default)
  /// the engine carries zero instrumentation cost — the figure benches run
  /// millions of slots.  sim::publish_metrics() exports the derived
  /// fairness metrics into the same registry after a run.
  obs::MetricsRegistry* registry = nullptr;
};

class Simulator {
 public:
  explicit Simulator(std::vector<PeerSetup> peers, SimConfig config = {});

  void step();
  void run(std::uint64_t slots);

  std::size_t n() const { return peers_.size(); }
  std::uint64_t now() const { return slot_; }

  /// Download rate series of user i: D_i(t) = sum_j mu_ji(t).
  const Trace& download(std::size_t i) const { return download_[i]; }
  /// Request indicator series of user i (0/1).
  const Trace& requested(std::size_t i) const { return requested_[i]; }
  /// Capacity peer i actually offered per slot (after schedule/gate).
  const Trace& offered(std::size_t i) const { return offered_[i]; }

  /// Cumulative contribution S_ij = sum_t mu_ij(t): peer i -> user j.
  double contribution(std::size_t i, std::size_t j) const {
    return contribution_[i * peers_.size() + j];
  }
  /// Long-run average pairwise rate mu_bar_ij = S_ij / t.
  double average_pairwise(std::size_t i, std::size_t j) const;
  /// Long-run average download of user i.
  double average_download(std::size_t i) const;

  /// Capacity peer i would deliver to its own user in isolation, averaged
  /// over the run so far: mean over t of I_i(t) * capacity_i(t).  This is
  /// the gamma_i * mu_i baseline of Theorem 1, using realized demand.
  double isolated_average(std::size_t i) const;

  /// Empirical request probability gamma_hat_i over the run so far.
  double empirical_gamma(std::size_t i) const {
    return requested_[i].mean();
  }

 private:
  double capacity_at(std::size_t i, std::uint64_t t) const;

  std::vector<PeerSetup> peers_;
  SimConfig config_;
  std::uint64_t slot_ = 0;
  std::vector<double> declared_;
  std::vector<double> contribution_;  // n*n, S_ij
  std::vector<Trace> download_;
  std::vector<Trace> requested_;
  std::vector<Trace> offered_;
  // scratch reused across slots
  std::vector<std::uint8_t> requesting_;
  std::vector<double> alloc_row_;
  std::vector<double> slot_download_;
  std::vector<double> slot_matrix_;  // mu_ij(t)
  obs::Counter* slots_counter_ = nullptr;  // null when config_.registry is
};

}  // namespace fairshare::sim
