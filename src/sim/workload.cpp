#include "sim/workload.hpp"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "sim/rng.hpp"

namespace fairshare::sim {

// ------------------------------------------------------- WorkloadTrace

void WorkloadTrace::add(WorkloadEvent event) {
  if (!events_.empty() && sorted_) {
    const WorkloadEvent& last = events_.back();
    if (event.arrival_slot < last.arrival_slot ||
        (event.arrival_slot == last.arrival_slot &&
         event.user_id < last.user_id))
      sorted_ = false;
  }
  events_.push_back(event);
}

void WorkloadTrace::normalize() {
  if (sorted_) return;
  std::stable_sort(events_.begin(), events_.end(),
                   [](const WorkloadEvent& a, const WorkloadEvent& b) {
                     if (a.arrival_slot != b.arrival_slot)
                       return a.arrival_slot < b.arrival_slot;
                     return a.user_id < b.user_id;
                   });
  sorted_ = true;
}

std::vector<std::uint64_t> WorkloadTrace::users() const {
  std::vector<std::uint64_t> ids;
  for (const WorkloadEvent& e : events_) ids.push_back(e.user_id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

std::uint64_t WorkloadTrace::horizon() const {
  std::uint64_t last = 0;
  bool any = false;
  for (const WorkloadEvent& e : events_) {
    last = std::max(last, e.arrival_slot);
    any = true;
  }
  return any ? last + 1 : 0;
}

std::uint64_t WorkloadTrace::total_bytes() const {
  std::uint64_t sum = 0;
  for (const WorkloadEvent& e : events_) sum += e.bytes;
  return sum;
}

std::uint64_t WorkloadTrace::user_bytes(std::uint64_t user_id) const {
  std::uint64_t sum = 0;
  for (const WorkloadEvent& e : events_)
    if (e.user_id == user_id) sum += e.bytes;
  return sum;
}

WorkloadTrace WorkloadTrace::quantized(std::uint64_t unit) const {
  assert(unit > 0);
  WorkloadTrace out;
  for (WorkloadEvent e : events_) {
    const std::uint64_t units = (e.bytes + unit - 1) / unit;
    e.bytes = std::max<std::uint64_t>(units, 1) * unit;
    out.add(e);
  }
  out.normalize();
  return out;
}

std::string to_text(const WorkloadTrace& trace) {
  std::ostringstream out;
  out << "workload-trace v1\n";
  out << "events " << trace.size() << " users " << trace.users().size()
      << " horizon " << trace.horizon() << " total_bytes "
      << trace.total_bytes() << "\n";
  for (const WorkloadEvent& e : trace.events())
    out << e.user_id << " " << e.arrival_slot << " " << e.bytes << "\n";
  std::map<std::uint64_t, std::pair<std::size_t, std::uint64_t>> per_user;
  for (const WorkloadEvent& e : trace.events()) {
    auto& [n, bytes] = per_user[e.user_id];
    ++n;
    bytes += e.bytes;
  }
  for (const auto& [id, agg] : per_user)
    out << "user " << id << " events " << agg.first << " bytes "
        << agg.second << "\n";
  return out.str();
}

// ------------------------------------------------------------ importer

namespace {

bool parse_u64(std::string_view token, std::uint64_t& out) {
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end;
}

bool parse_double(std::string_view token, double& out) {
  // std::from_chars<double> is still spotty across stdlibs; strtod on a
  // bounded copy keeps this portable.
  const std::string copy(token);
  char* end = nullptr;
  out = std::strtod(copy.c_str(), &end);
  return end == copy.c_str() + copy.size() && copy.size() > 0;
}

std::vector<std::string_view> split_fields(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) fields.push_back(line.substr(start, i - start));
  }
  return fields;
}

std::string line_error(std::size_t line_no, const std::string& what) {
  std::ostringstream out;
  out << "line " << line_no << ": " << what;
  return out.str();
}

}  // namespace

std::optional<WorkloadTrace> parse_dxt(std::string_view text,
                                       double slot_seconds,
                                       std::string* error,
                                       DxtStats* stats) {
  assert(slot_seconds > 0.0);
  WorkloadTrace trace;
  DxtStats local;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? text.size() - pos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    const std::vector<std::string_view> fields = split_fields(line);
    if (fields.empty() || fields[0].front() == '#') continue;
    if (fields.size() != 8) {
      if (error)
        *error = line_error(line_no, "expected 8 fields, got " +
                                         std::to_string(fields.size()));
      return std::nullopt;
    }
    std::uint64_t rank = 0, segment = 0, offset = 0, length = 0;
    double start = 0.0, finish = 0.0;
    if (!parse_u64(fields[1], rank)) {
      if (error) *error = line_error(line_no, "bad rank");
      return std::nullopt;
    }
    if (fields[2] != "read" && fields[2] != "write") {
      if (error)
        *error = line_error(line_no,
                            "unknown op \"" + std::string(fields[2]) + "\"");
      return std::nullopt;
    }
    if (!parse_u64(fields[3], segment) || !parse_u64(fields[4], offset)) {
      if (error) *error = line_error(line_no, "bad segment/offset");
      return std::nullopt;
    }
    if (!parse_u64(fields[5], length)) {
      if (error) *error = line_error(line_no, "bad length");
      return std::nullopt;
    }
    if (!parse_double(fields[6], start) || !parse_double(fields[7], finish) ||
        start < 0.0) {
      if (error) *error = line_error(line_no, "bad start/end time");
      return std::nullopt;
    }
    if (finish < start) {
      if (error) *error = line_error(line_no, "end precedes start");
      return std::nullopt;
    }
    if (length == 0) {
      ++local.skipped_zero;
      continue;
    }
    WorkloadEvent event;
    event.user_id = rank;
    event.arrival_slot =
        static_cast<std::uint64_t>(std::floor(start / slot_seconds));
    event.bytes = length;
    trace.add(event);
    ++local.events;
  }
  local.reordered = !trace.is_sorted();
  trace.normalize();
  if (stats) *stats = local;
  return trace;
}

std::optional<WorkloadTrace> load_dxt_file(const std::string& path,
                                           double slot_seconds,
                                           std::string* error,
                                           DxtStats* stats) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error) *error = "cannot read " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_dxt(buffer.str(), slot_seconds, error, stats);
}

// ---------------------------------------------------------- generators

namespace {

/// Truncated Pareto(alpha=2, x_m=mean/2) — heavy-tailed transfer sizes
/// with finite mean ~= `mean`, capped at 16x to bound replay runtimes.
std::uint64_t heavy_bytes(SplitMix64& rng, std::uint64_t mean) {
  assert(mean > 0);
  const double u = rng.next_double();  // [0, 1)
  const double xm = static_cast<double>(mean) / 2.0;
  double v = xm / std::sqrt(1.0 - u);
  v = std::min(v, 16.0 * static_cast<double>(mean));
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(v));
}

/// Poisson(lambda) by Knuth's product-of-uniforms (lambda is O(1) here).
std::uint64_t poisson_draw(SplitMix64& rng, double lambda) {
  if (lambda <= 0.0) return 0;
  const double limit = std::exp(-lambda);
  std::uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng.next_double();
  } while (p > limit);
  return k - 1;
}

}  // namespace

WorkloadTrace poisson_trace(const PoissonConfig& config) {
  WorkloadTrace trace;
  SplitMix64 root(config.seed);
  for (std::size_t u = 0; u < config.users; ++u) {
    SplitMix64 rng = root.fork();
    for (std::uint64_t t = 0; t < config.horizon; ++t) {
      const std::uint64_t arrivals =
          poisson_draw(rng, config.events_per_user_slot);
      for (std::uint64_t a = 0; a < arrivals; ++a)
        trace.add({u + 1, t, heavy_bytes(rng, config.mean_bytes)});
    }
  }
  trace.normalize();
  return trace;
}

WorkloadTrace zipf_trace(const ZipfConfig& config) {
  WorkloadTrace trace;
  SplitMix64 rng(config.seed);
  // CDF over user ranks: P(rank r) ~ 1/r^s.
  std::vector<double> cdf(config.users, 0.0);
  double sum = 0.0;
  for (std::size_t r = 0; r < config.users; ++r) {
    sum += 1.0 / std::pow(static_cast<double>(r + 1), config.s);
    cdf[r] = sum;
  }
  for (std::size_t e = 0; e < config.events; ++e) {
    const double x = rng.next_double() * sum;
    std::size_t r = 0;
    while (r + 1 < config.users && x > cdf[r]) ++r;
    const std::uint64_t slot =
        config.horizon ? rng.next_below(config.horizon) : 0;
    trace.add({r + 1, slot, heavy_bytes(rng, config.mean_bytes)});
  }
  trace.normalize();
  return trace;
}

WorkloadTrace flash_crowd_trace(const FlashCrowdConfig& config) {
  PoissonConfig base;
  base.users = config.users;
  base.horizon = config.horizon;
  base.events_per_user_slot = config.base_events_per_user_slot;
  base.mean_bytes = config.mean_bytes;
  base.seed = config.seed;
  WorkloadTrace trace = poisson_trace(base);
  SplitMix64 rng(config.seed ^ 0xF1A5'4C40'DD00'1234ull);
  for (std::size_t e = 0; e < config.burst_events; ++e)
    trace.add({static_cast<std::uint64_t>(e % config.users) + 1,
               config.burst_slot, heavy_bytes(rng, config.mean_bytes)});
  trace.normalize();
  return trace;
}

WorkloadTrace diurnal_trace(const DiurnalConfig& config) {
  assert(config.period > 0);
  WorkloadTrace trace;
  SplitMix64 root(config.seed);
  const double pi = 3.14159265358979323846;
  for (std::size_t u = 0; u < config.users; ++u) {
    SplitMix64 rng = root.fork();
    for (std::uint64_t t = 0; t < config.horizon; ++t) {
      const double phase = 2.0 * pi * static_cast<double>(t % config.period) /
                           static_cast<double>(config.period);
      const double shape = 0.5 - 0.5 * std::cos(phase);  // 0 at t=0, 1 mid
      const double rate =
          config.trough_events_per_user_slot +
          (config.peak_events_per_user_slot -
           config.trough_events_per_user_slot) *
              shape;
      const std::uint64_t arrivals = poisson_draw(rng, rate);
      for (std::uint64_t a = 0; a < arrivals; ++a)
        trace.add({u + 1, t, heavy_bytes(rng, config.mean_bytes)});
    }
  }
  trace.normalize();
  return trace;
}

// --------------------------------------------------------- TraceDemand

TraceDemand::TraceDemand(const WorkloadTrace& trace, std::uint64_t user_id) {
  assert(trace.is_sorted() && "normalize() the trace before adapting it");
  for (const WorkloadEvent& e : trace.events())
    if (e.user_id == user_id) {
      events_.push_back(e);
      total_bytes_ += e.bytes;
    }
}

bool TraceDemand::requests(std::uint64_t slot) {
  assert(slot >= last_slot_ && "closed-loop demand is queried in slot order");
  last_slot_ = slot;
  while (next_ < events_.size() && events_[next_].arrival_slot <= slot) {
    arrived_bytes_ += static_cast<double>(events_[next_].bytes);
    ++next_;
  }
  return backlog() > 0.5;  // half a byte: absorbs double rounding
}

double TraceDemand::deliver(double bytes) {
  const double consumed = std::min(bytes, backlog());
  if (consumed <= 0.0) return 0.0;
  delivered_bytes_ += consumed;
  return consumed;
}

bool TraceDemand::done() const {
  return next_ == events_.size() && backlog() <= 0.5;
}

}  // namespace fairshare::sim
