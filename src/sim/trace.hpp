// Per-entity time series with the smoothing the paper's plots use.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fairshare::sim {

/// Append-only time series (one sample per slot).
class Trace {
 public:
  void append(double v) { samples_.push_back(v); }

  std::size_t size() const { return samples_.size(); }
  double at(std::size_t t) const { return samples_[t]; }
  const std::vector<double>& samples() const { return samples_; }

  /// Mean over [begin, end); empty range yields 0.
  double mean(std::size_t begin, std::size_t end) const;
  /// Mean over the whole series.
  double mean() const { return mean(0, samples_.size()); }

  /// Trailing running average with the given window ("our graphs were
  /// smoothed with a running average of 10 seconds", Section V); sample t
  /// averages slots (t-window, t].
  std::vector<double> smoothed(std::size_t window) const;

 private:
  std::vector<double> samples_;
};

}  // namespace fairshare::sim
