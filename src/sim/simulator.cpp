#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fairshare::sim {

Simulator::Simulator(std::vector<PeerSetup> peers, SimConfig config)
    : peers_(std::move(peers)), config_(config) {
  const std::size_t n = peers_.size();
  assert(n > 0);
  declared_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    assert(peers_[i].demand && "every peer needs a demand process");
    assert(peers_[i].policy && "every peer needs an allocation policy");
    declared_[i] = peers_[i].declared_kbps >= 0.0 ? peers_[i].declared_kbps
                                                  : peers_[i].upload_kbps;
  }
  if (config_.registry)
    slots_counter_ = &config_.registry->counter("fairshare_sim_slots_total");
  contribution_.assign(n * n, 0.0);
  download_.resize(n);
  requested_.resize(n);
  offered_.resize(n);
  requesting_.resize(n);
  alloc_row_.resize(n);
  slot_download_.resize(n);
  slot_matrix_.resize(n * n);
}

double Simulator::capacity_at(std::size_t i, std::uint64_t t) const {
  const PeerSetup& p = peers_[i];
  if (p.contributes && !p.contributes(t)) return 0.0;
  return p.capacity_schedule ? p.capacity_schedule(t) : p.upload_kbps;
}

void Simulator::step() {
  obs::TraceSpan span(
      config_.registry ? &config_.registry->spans() : nullptr, "sim.slot");
  const std::size_t n = peers_.size();
  const std::uint64_t t = slot_;

  for (std::size_t i = 0; i < n; ++i)
    requesting_[i] = peers_[i].demand->requests(t) ? 1 : 0;

  std::fill(slot_download_.begin(), slot_download_.end(), 0.0);
  std::fill(slot_matrix_.begin(), slot_matrix_.end(), 0.0);

  for (std::size_t i = 0; i < n; ++i) {
    const double cap = capacity_at(i, t);
    offered_[i].append(cap);
    if (cap <= 0.0) continue;

    alloc::PeerContext ctx;
    ctx.self = i;
    ctx.slot = t;
    ctx.capacity = cap;
    ctx.requesting = requesting_;
    ctx.declared = declared_;
    peers_[i].policy->allocate(ctx, alloc_row_);

    // Physics: no negative rates, no serving idle users, row sum <= cap.
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (!requesting_[j] || alloc_row_[j] < 0.0) alloc_row_[j] = 0.0;
      sum += alloc_row_[j];
    }
    if (sum > cap && sum > 0.0) {
      const double scale = cap / sum;
      for (std::size_t j = 0; j < n; ++j) alloc_row_[j] *= scale;
    }
    if (config_.quantum_kbps > 0.0) {
      for (std::size_t j = 0; j < n; ++j)
        alloc_row_[j] = std::floor(alloc_row_[j] / config_.quantum_kbps) *
                        config_.quantum_kbps;
    }

    for (std::size_t j = 0; j < n; ++j) {
      const double r = alloc_row_[j];
      if (r <= 0.0) continue;
      slot_matrix_[i * n + j] = r;
      slot_download_[j] += r;
      contribution_[i * n + j] += r;
    }
  }

  for (std::size_t j = 0; j < n; ++j) {
    download_[j].append(slot_download_[j]);
    requested_[j].append(requesting_[j] ? 1.0 : 0.0);
  }

  // Local feedback: what user i received from each peer this slot
  // (column i of the slot matrix).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) alloc_row_[j] = slot_matrix_[j * n + i];
    alloc::SlotFeedback fb;
    fb.slot = t;
    fb.received = alloc_row_;
    peers_[i].policy->observe(fb);
  }

  if (slots_counter_) slots_counter_->add();
  ++slot_;
}

void Simulator::run(std::uint64_t slots) {
  for (std::uint64_t s = 0; s < slots; ++s) step();
}

double Simulator::average_pairwise(std::size_t i, std::size_t j) const {
  if (slot_ == 0) return 0.0;
  return contribution(i, j) / static_cast<double>(slot_);
}

double Simulator::average_download(std::size_t i) const {
  return download_[i].mean();
}

double Simulator::isolated_average(std::size_t i) const {
  const Trace& req = requested_[i];
  const Trace& cap = offered_[i];
  if (req.size() == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t t = 0; t < req.size(); ++t)
    sum += req.at(t) * cap.at(t);
  return sum / static_cast<double>(req.size());
}

}  // namespace fairshare::sim
