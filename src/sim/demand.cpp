#include "sim/demand.hpp"

#include <cassert>

namespace fairshare::sim {

RandomBlocksDemand::RandomBlocksDemand(std::uint64_t block_slots,
                                       std::uint64_t blocks_per_period,
                                       std::uint64_t active_blocks,
                                       std::uint64_t seed)
    : block_slots_(block_slots),
      blocks_per_period_(blocks_per_period),
      active_blocks_(active_blocks),
      rng_(seed) {
  assert(block_slots_ > 0);
  assert(active_blocks_ <= blocks_per_period_);
}

void RandomBlocksDemand::ensure_period(std::uint64_t period) {
  if (period == cached_period_) return;
  // Draw skipped periods too, so the pattern depends only on (seed, slot),
  // not on the order of queries.
  assert(period >= next_period_to_draw_ ||
         period == cached_period_);  // engine advances monotonically
  while (next_period_to_draw_ <= period) {
    active_.assign(blocks_per_period_, false);
    // Floyd-style sampling: choose active_blocks_ distinct blocks.
    std::uint64_t chosen = 0;
    while (chosen < active_blocks_) {
      const std::uint64_t b = rng_.next_below(blocks_per_period_);
      if (!active_[b]) {
        active_[b] = true;
        ++chosen;
      }
    }
    cached_period_ = next_period_to_draw_++;
  }
}

bool RandomBlocksDemand::requests(std::uint64_t slot) {
  const std::uint64_t period_len = block_slots_ * blocks_per_period_;
  ensure_period(slot / period_len);
  const std::uint64_t block = (slot % period_len) / block_slots_;
  return active_[block];
}

}  // namespace fairshare::sim
