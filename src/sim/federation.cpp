#include "sim/federation.hpp"

#include <algorithm>
#include <cassert>

namespace fairshare::sim {

FederationSim::FederationSim(FederationConfig config)
    : config_(config), shards_(config.shards) {
  for (Shard& shard : shards_) {
    shard.policy = std::make_unique<alloc::ProportionalContributionPolicy>(
        config_.users, config_.epsilon);
    shard.local_total.assign(config_.users, 0.0);
    shard.applied_remote.assign(config_.users, 0.0);
    shard.last_service.assign(config_.users, 0.0);
    shard.last_shares.assign(config_.users, 0.0);
  }
}

void FederationSim::step(
    const std::vector<std::vector<std::uint8_t>>& requesting) {
  assert(requesting.size() == shards_.size());
  const std::vector<double> declared(config_.users, 0.0);
  std::vector<double> received(config_.users, 0.0);

  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    assert(requesting[s].size() == config_.users);

    // Mirror of the live pacing tick: measured feedback, publish local
    // totals, fold the remote delta, observe, allocate.
    for (std::size_t u = 0; u < config_.users; ++u) {
      received[u] = shard.last_service[u];
      const double remote = shard.replica.swarm_total(u, /*exclude=*/s);
      if (remote > shard.applied_remote[u]) {
        received[u] += remote - shard.applied_remote[u];
        shard.applied_remote[u] = remote;
      }
    }
    alloc::SlotFeedback feedback;
    feedback.slot = slot_;
    feedback.received = received;
    shard.policy->observe(feedback);

    alloc::PeerContext ctx;
    ctx.self = 0;
    ctx.slot = slot_;
    ctx.capacity = config_.shard_capacity_kbps;
    ctx.requesting = requesting[s];
    ctx.declared = declared;
    shard.policy->allocate(ctx, shard.last_shares);

    for (std::size_t u = 0; u < config_.users; ++u) {
      const double service =
          requesting[s][u] ? shard.last_shares[u] : 0.0;
      shard.last_shares[u] = service;
      shard.last_service[u] = service;
      shard.local_total[u] += service;
      // Publish end-of-slot totals, as the live tick publishes user_bytes_
      // already including the quantum that just ended.
      shard.replica.record(u, /*origin=*/s, shard.local_total[u]);
    }
  }

  ++slot_;
  if (config_.gossip_period_slots > 0 &&
      slot_ % config_.gossip_period_slots == 0) {
    gossip_now();
  }
}

void FederationSim::gossip_now() {
  // All-pairs push (one anti-entropy round converges the replicas fully;
  // the live path takes O(log n) random rounds for the same effect).
  std::vector<std::vector<alloc::FederatedLedger::Entry>> snapshots;
  snapshots.reserve(shards_.size());
  for (Shard& shard : shards_) snapshots.push_back(shard.replica.snapshot());
  for (std::size_t s = 0; s < shards_.size(); ++s)
    for (std::size_t o = 0; o < shards_.size(); ++o)
      if (o != s) shards_[s].replica.merge(snapshots[o]);
}

double FederationSim::last_share(std::size_t s, std::size_t u) const {
  return shards_[s].last_shares[u];
}

double FederationSim::local_total(std::size_t s, std::size_t u) const {
  return shards_[s].local_total[u];
}

double FederationSim::known_remote(std::size_t s, std::size_t u) const {
  return shards_[s].replica.swarm_total(u, /*exclude=*/s);
}

double FederationSim::policy_ledger(std::size_t s, std::size_t u) const {
  return shards_[s].policy->ledger()[u];
}

}  // namespace fairshare::sim
