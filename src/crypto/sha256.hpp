// SHA-256 (FIPS 180-4), implemented from the specification.
//
// Used for key derivation: the paper seeds a "cryptographically strong
// random number generator ... with a cryptographic hash of i, and a secret
// key known only to the encoding peer" (Section III-A).  We derive the
// per-message coefficient-stream key as SHA-256(secret || file_id ||
// message_id) and feed it to the ChaCha20 generator (chacha20.hpp).
// Also the basis of the HMAC used in session authentication (hmac.hpp).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace fairshare::crypto {

/// A 32-byte SHA-256 digest.
using Sha256Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 hasher, same usage pattern as Md5.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(std::span<const std::byte> data);
  void update(std::span<const std::uint8_t> data);
  Sha256Digest finish();

  static Sha256Digest hash(std::span<const std::byte> data);
  static Sha256Digest hash(std::span<const std::uint8_t> data);
  static Sha256Digest hash(std::string_view data);

  /// Internal block size in bytes (needed by HMAC).
  static constexpr std::size_t kBlockSize = 64;

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::uint64_t length_ = 0;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
};

}  // namespace fairshare::crypto
