// Mutual public-key challenge-response authentication.
//
// Implements transmission "1" of Figure 4(b): before a peer contributes
// messages to a downloading user, "user u authenticates itself to peer j
// ... Ideally, this authentication should go both ways (i.e., peer j
// should authenticate to user u as well) in order to prevent
// man-in-the-middle or IP spoofing attacks."  (Section III-B.)
//
// Three-message handshake:
//   1. user -> peer : Hello      (user id, 32-byte user nonce)
//   2. peer -> user : Challenge  (peer nonce, RSA signature over the
//                                 transcript so far — authenticates peer)
//   3. user -> peer : Response   (RSA signature over the full transcript —
//                                 authenticates user — plus a fresh session
//                                 key RSA-encrypted to the peer)
// Both sides then hold a shared 32-byte session key; subsequent messages
// of the session carry HMAC-SHA256 tags under that key.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/chacha20.hpp"
#include "crypto/rsa.hpp"

namespace fairshare::crypto {

using Nonce = std::array<std::uint8_t, 32>;
using SessionKey = std::array<std::uint8_t, 32>;

struct AuthHello {
  std::uint64_t user_id = 0;
  Nonce user_nonce{};
};

struct AuthChallenge {
  std::uint64_t peer_id = 0;
  Nonce peer_nonce{};
  std::vector<std::uint8_t> signature;  // over Hello || peer_id || peer_nonce
};

struct AuthResponse {
  std::vector<std::uint8_t> signature;  // over the full transcript
  std::vector<std::uint8_t> encrypted_session_key;
};

/// User side of the handshake.
class AuthInitiator {
 public:
  /// `rng` supplies the nonce and session key and must outlive the object.
  AuthInitiator(std::uint64_t user_id, const RsaKeyPair& user_key,
                const RsaPublicKey& peer_public_key, ChaCha20& rng);

  /// Message 1.
  AuthHello hello();

  /// Handle message 2.  Returns message 3, or nullopt when the peer's
  /// signature does not verify (handshake must be aborted).
  std::optional<AuthResponse> on_challenge(const AuthChallenge& challenge);

  /// Valid only after on_challenge succeeded.
  const SessionKey& session_key() const { return session_key_; }
  bool established() const { return established_; }

 private:
  std::uint64_t user_id_;
  const RsaKeyPair& user_key_;
  const RsaPublicKey& peer_public_key_;
  ChaCha20& rng_;
  Nonce user_nonce_{};
  SessionKey session_key_{};
  bool hello_sent_ = false;
  bool established_ = false;
};

/// Peer side of the handshake.
class AuthResponder {
 public:
  AuthResponder(std::uint64_t peer_id, const RsaKeyPair& peer_key,
                const RsaPublicKey& user_public_key, ChaCha20& rng);

  /// Handle message 1, produce message 2.
  AuthChallenge on_hello(const AuthHello& hello);

  /// Handle message 3.  Returns true when the user is authenticated and a
  /// session key has been agreed.
  bool on_response(const AuthResponse& response);

  const SessionKey& session_key() const { return session_key_; }
  bool established() const { return established_; }

 private:
  std::uint64_t peer_id_;
  const RsaKeyPair& peer_key_;
  const RsaPublicKey& user_public_key_;
  ChaCha20& rng_;
  AuthHello hello_{};
  Nonce peer_nonce_{};
  SessionKey session_key_{};
  bool challenged_ = false;
  bool established_ = false;
};

/// HMAC tag over a session message (payload framing helper shared by both
/// sides once the handshake completes).
Sha256Digest session_tag(const SessionKey& key,
                         std::span<const std::uint8_t> payload);

}  // namespace fairshare::crypto
