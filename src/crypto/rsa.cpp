#include "crypto/rsa.hpp"

#include <cassert>

#include "crypto/chacha20.hpp"

namespace fairshare::crypto {

RsaKeyPair RsaKeyPair::generate(std::size_t bits, ChaCha20& rng) {
  assert(bits >= 128);
  const BigUInt e{65537};
  for (;;) {
    const BigUInt p = generate_prime(bits / 2, rng);
    const BigUInt q = generate_prime(bits - bits / 2, rng);
    if (p == q) continue;
    const BigUInt n = p * q;
    if (n.bit_length() != bits) continue;
    const BigUInt phi = (p - BigUInt{1}) * (q - BigUInt{1});
    const auto d = BigUInt::mod_inverse(e, phi);
    if (!d) continue;  // e not coprime with phi; rare but possible
    return RsaKeyPair{RsaPublicKey{n, e}, *d};
  }
}

namespace {

// Deterministic digest padding: 0x01 || 0xFF.. || 0x00 || digest, sized to
// the modulus (guarantees the padded value is < n and has full length).
BigUInt pad_digest(const Sha256Digest& digest, std::size_t modulus_bytes) {
  assert(modulus_bytes >= digest.size() + 3);
  std::vector<std::uint8_t> padded(modulus_bytes, 0xFF);
  padded[0] = 0x01;
  padded[modulus_bytes - digest.size() - 1] = 0x00;
  std::copy(digest.begin(), digest.end(),
            padded.end() - static_cast<std::ptrdiff_t>(digest.size()));
  return BigUInt::from_bytes_be(padded);
}

}  // namespace

std::vector<std::uint8_t> rsa_sign(const RsaKeyPair& key,
                                   std::span<const std::uint8_t> message) {
  const Sha256Digest digest = Sha256::hash(message);
  const BigUInt m = pad_digest(digest, key.pub.modulus_bytes());
  const BigUInt s = BigUInt::mod_exp(m, key.d, key.pub.n);
  return s.to_bytes_be(key.pub.modulus_bytes());
}

bool rsa_verify(const RsaPublicKey& key, std::span<const std::uint8_t> message,
                std::span<const std::uint8_t> signature) {
  if (signature.size() != key.modulus_bytes()) return false;
  const BigUInt s = BigUInt::from_bytes_be(signature);
  if (s >= key.n) return false;
  const BigUInt recovered = BigUInt::mod_exp(s, key.e, key.n);
  const Sha256Digest digest = Sha256::hash(message);
  return recovered == pad_digest(digest, key.modulus_bytes());
}

std::optional<std::vector<std::uint8_t>> rsa_encrypt(
    const RsaPublicKey& key, std::span<const std::uint8_t> plaintext) {
  if (plaintext.size() + 2 > key.modulus_bytes()) return std::nullopt;
  std::vector<std::uint8_t> framed;
  framed.reserve(plaintext.size() + 1);
  framed.push_back(0x01);  // length-preserving frame marker
  framed.insert(framed.end(), plaintext.begin(), plaintext.end());
  const BigUInt m = BigUInt::from_bytes_be(framed);
  const BigUInt c = BigUInt::mod_exp(m, key.e, key.n);
  return c.to_bytes_be(key.modulus_bytes());
}

std::optional<std::vector<std::uint8_t>> rsa_decrypt(
    const RsaKeyPair& key, std::span<const std::uint8_t> ciphertext) {
  if (ciphertext.size() != key.pub.modulus_bytes()) return std::nullopt;
  const BigUInt c = BigUInt::from_bytes_be(ciphertext);
  if (c >= key.pub.n) return std::nullopt;
  const BigUInt m = BigUInt::mod_exp(c, key.d, key.pub.n);
  std::vector<std::uint8_t> framed = m.to_bytes_be();
  if (framed.empty() || framed[0] != 0x01) return std::nullopt;
  framed.erase(framed.begin());
  return framed;
}

}  // namespace fairshare::crypto
