#include "crypto/auth.hpp"

#include "crypto/hmac.hpp"

namespace fairshare::crypto {

namespace {

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

// Transcript through message 2 (what the peer signs).
std::vector<std::uint8_t> challenge_transcript(const AuthHello& hello,
                                               std::uint64_t peer_id,
                                               const Nonce& peer_nonce) {
  std::vector<std::uint8_t> t;
  t.reserve(8 + 32 + 8 + 32);
  append_u64(t, hello.user_id);
  t.insert(t.end(), hello.user_nonce.begin(), hello.user_nonce.end());
  append_u64(t, peer_id);
  t.insert(t.end(), peer_nonce.begin(), peer_nonce.end());
  return t;
}

// Full transcript (what the user signs): the challenge transcript plus the
// encrypted session key, binding key transport to this handshake.
std::vector<std::uint8_t> response_transcript(
    const AuthHello& hello, std::uint64_t peer_id, const Nonce& peer_nonce,
    const std::vector<std::uint8_t>& encrypted_key) {
  std::vector<std::uint8_t> t = challenge_transcript(hello, peer_id,
                                                     peer_nonce);
  t.insert(t.end(), encrypted_key.begin(), encrypted_key.end());
  return t;
}

}  // namespace

AuthInitiator::AuthInitiator(std::uint64_t user_id, const RsaKeyPair& user_key,
                             const RsaPublicKey& peer_public_key,
                             ChaCha20& rng)
    : user_id_(user_id),
      user_key_(user_key),
      peer_public_key_(peer_public_key),
      rng_(rng) {}

AuthHello AuthInitiator::hello() {
  rng_.generate(user_nonce_);
  hello_sent_ = true;
  return AuthHello{user_id_, user_nonce_};
}

std::optional<AuthResponse> AuthInitiator::on_challenge(
    const AuthChallenge& challenge) {
  if (!hello_sent_) return std::nullopt;
  const AuthHello hello{user_id_, user_nonce_};
  const auto transcript =
      challenge_transcript(hello, challenge.peer_id, challenge.peer_nonce);
  if (!rsa_verify(peer_public_key_, transcript, challenge.signature))
    return std::nullopt;  // peer failed to prove identity

  rng_.generate(session_key_);
  auto encrypted = rsa_encrypt(peer_public_key_, session_key_);
  if (!encrypted) return std::nullopt;  // modulus too small for the key

  const auto full = response_transcript(hello, challenge.peer_id,
                                        challenge.peer_nonce, *encrypted);
  AuthResponse response;
  response.signature = rsa_sign(user_key_, full);
  response.encrypted_session_key = std::move(*encrypted);
  established_ = true;
  return response;
}

AuthResponder::AuthResponder(std::uint64_t peer_id, const RsaKeyPair& peer_key,
                             const RsaPublicKey& user_public_key,
                             ChaCha20& rng)
    : peer_id_(peer_id),
      peer_key_(peer_key),
      user_public_key_(user_public_key),
      rng_(rng) {}

AuthChallenge AuthResponder::on_hello(const AuthHello& hello) {
  hello_ = hello;
  rng_.generate(peer_nonce_);
  challenged_ = true;
  AuthChallenge challenge;
  challenge.peer_id = peer_id_;
  challenge.peer_nonce = peer_nonce_;
  challenge.signature =
      rsa_sign(peer_key_, challenge_transcript(hello_, peer_id_, peer_nonce_));
  return challenge;
}

bool AuthResponder::on_response(const AuthResponse& response) {
  if (!challenged_) return false;
  const auto full = response_transcript(hello_, peer_id_, peer_nonce_,
                                        response.encrypted_session_key);
  if (!rsa_verify(user_public_key_, full, response.signature)) return false;
  const auto key = rsa_decrypt(peer_key_, response.encrypted_session_key);
  if (!key || key->size() != session_key_.size()) return false;
  std::copy(key->begin(), key->end(), session_key_.begin());
  established_ = true;
  return true;
}

Sha256Digest session_tag(const SessionKey& key,
                         std::span<const std::uint8_t> payload) {
  return hmac_sha256(std::span<const std::uint8_t>(key.data(), key.size()),
                     payload);
}

}  // namespace fairshare::crypto
