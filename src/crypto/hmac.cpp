#include "crypto/hmac.hpp"

#include <array>
#include <cstring>

namespace fairshare::crypto {

Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                         std::span<const std::uint8_t> data) {
  std::array<std::uint8_t, Sha256::kBlockSize> k{};
  if (key.size() > Sha256::kBlockSize) {
    const Sha256Digest kd = Sha256::hash(key);
    std::memcpy(k.data(), kd.data(), kd.size());
  } else {
    std::memcpy(k.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, Sha256::kBlockSize> ipad, opad;
  for (std::size_t i = 0; i < Sha256::kBlockSize; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(std::span<const std::uint8_t>(ipad));
  inner.update(data);
  const Sha256Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(std::span<const std::uint8_t>(opad));
  outer.update(std::span<const std::uint8_t>(inner_digest));
  return outer.finish();
}

Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                         std::span<const std::byte> data) {
  return hmac_sha256(
      key, std::span<const std::uint8_t>(
               reinterpret_cast<const std::uint8_t*>(data.data()),
               data.size()));
}

bool digest_equal(std::span<const std::uint8_t> a,
                  std::span<const std::uint8_t> b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace fairshare::crypto
