// Textbook RSA keypairs, signatures, and encryption over bigint.hpp.
//
// Backs the "classic public-key challenge response system" of Section
// III-B: a peer proves its identity by signing the verifier's nonce.  The
// paper does not fix a primitive, so we use RSA with SHA-256 digests and
// simple deterministic padding.  Key sizes in tests/examples are small
// (512-1024 bits) to keep key generation fast; this is a protocol
// demonstration, not hardened cryptography (no OAEP/PSS, no blinding).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "crypto/bigint.hpp"
#include "crypto/sha256.hpp"

namespace fairshare::crypto {

class ChaCha20;

/// RSA public half (n, e).
struct RsaPublicKey {
  BigUInt n;
  BigUInt e;
  /// Modulus size in bytes; signatures and ciphertexts have this length.
  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }
};

/// Full RSA keypair.
struct RsaKeyPair {
  RsaPublicKey pub;
  BigUInt d;  ///< private exponent

  /// Generate a keypair with an exactly `bits`-bit modulus, e = 65537.
  /// Randomness comes from `rng` (deterministic for a fixed seed, which
  /// tests exploit).
  static RsaKeyPair generate(std::size_t bits, ChaCha20& rng);
};

/// Sign SHA-256(message) with the private key.  The digest is left-padded
/// deterministically to the modulus size (a simplified EMSA-style pad).
std::vector<std::uint8_t> rsa_sign(const RsaKeyPair& key,
                                   std::span<const std::uint8_t> message);

/// Verify a signature produced by rsa_sign.
bool rsa_verify(const RsaPublicKey& key, std::span<const std::uint8_t> message,
                std::span<const std::uint8_t> signature);

/// Raw RSA encryption of a short message (must be < modulus_bytes - 1).
/// Used for the session-key transport in the handshake.
std::optional<std::vector<std::uint8_t>> rsa_encrypt(
    const RsaPublicKey& key, std::span<const std::uint8_t> plaintext);

/// Inverse of rsa_encrypt.
std::optional<std::vector<std::uint8_t>> rsa_decrypt(
    const RsaKeyPair& key, std::span<const std::uint8_t> ciphertext);

}  // namespace fairshare::crypto
