// MD5 message digest (RFC 1321), implemented from the specification.
//
// The paper stores a 128-bit MD5 hash of every uploaded coded message on
// the originating peer and uses it to authenticate messages on the fly
// during download (Section III-C), at a cost of "128 hash bytes per
// megabyte" for the paper's example parameters.  MD5 is used here for
// protocol fidelity with the paper; it is NOT collision resistant by
// modern standards (see sha256.hpp for the alternative the library also
// supports).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace fairshare::crypto {

/// A 16-byte MD5 digest.
using Md5Digest = std::array<std::uint8_t, 16>;

/// Incremental MD5 hasher.
///
///   Md5 h;
///   h.update(buf1); h.update(buf2);
///   Md5Digest d = h.finish();
///
/// finish() may be called once; the object can be reused after reset().
class Md5 {
 public:
  Md5() { reset(); }

  void reset();
  void update(std::span<const std::byte> data);
  void update(std::span<const std::uint8_t> data);
  Md5Digest finish();

  /// One-shot convenience.
  static Md5Digest hash(std::span<const std::byte> data);
  static Md5Digest hash(std::span<const std::uint8_t> data);
  static Md5Digest hash(std::string_view data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 4> state_;
  std::uint64_t length_ = 0;  // total bytes seen
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
};

/// Lowercase hex rendering of a digest, e.g. for logging/tests.
std::string to_hex(std::span<const std::uint8_t> digest);

}  // namespace fairshare::crypto
