// ChaCha20 stream generator (RFC 8439 block function), used as the
// "cryptographically strong random number generator" of Section III-A.
//
// The paper draws each coefficient beta_ij "randomly ... using a
// cryptographically strong random number generator seeded with a
// cryptographic hash of i, and a secret key known only to the encoding
// peer".  CoefficientStream reproduces exactly that construction: the
// 256-bit ChaCha20 key is SHA-256(secret || file_id || message_id) and the
// keystream is consumed as a sequence of field elements.  Anyone holding
// the secret can regenerate beta_i from the plain-text message id; nobody
// else can (Section III-C ties system security to this property).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace fairshare::crypto {

/// Raw ChaCha20 keystream generator.
///
/// Produces the RFC 8439 keystream for (key, nonce) starting at block
/// `counter`.  This class only generates keystream (which is all the coder
/// needs); XOR-with-plaintext encryption is a one-liner on top and is
/// exercised in tests.
class ChaCha20 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kNonceSize = 12;
  static constexpr std::size_t kBlockSize = 64;

  ChaCha20(std::span<const std::uint8_t, kKeySize> key,
           std::span<const std::uint8_t, kNonceSize> nonce,
           std::uint32_t counter = 0);

  /// Fill `out` with the next keystream bytes.
  void generate(std::span<std::uint8_t> out);

  /// Next keystream byte.
  std::uint8_t next_byte();

  /// Next 32-bit keystream word (little-endian consumption).
  std::uint32_t next_u32();

  /// Next 64-bit keystream word.
  std::uint64_t next_u64();

  /// Uniform value in [0, bound) by rejection sampling (no modulo bias);
  /// bound must be >= 1.
  std::uint64_t uniform(std::uint64_t bound);

 private:
  void refill();

  std::array<std::uint32_t, 16> state_;
  std::array<std::uint8_t, kBlockSize> block_;
  std::size_t block_pos_ = kBlockSize;  // forces refill on first use
};

}  // namespace fairshare::crypto
