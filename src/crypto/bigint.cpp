#include "crypto/bigint.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <span>
#include <stdexcept>

#include "crypto/chacha20.hpp"

namespace fairshare::crypto {

namespace {
constexpr std::uint64_t kBase = std::uint64_t{1} << 32;
}

void BigUInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUInt::BigUInt(std::uint64_t v) {
  if (v != 0) limbs_.push_back(static_cast<std::uint32_t>(v));
  if (v >> 32) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
}

BigUInt BigUInt::from_hex(std::string_view hex) {
  BigUInt out;
  for (char c : hex) {
    unsigned digit;
    if (c >= '0' && c <= '9')
      digit = static_cast<unsigned>(c - '0');
    else if (c >= 'a' && c <= 'f')
      digit = static_cast<unsigned>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F')
      digit = static_cast<unsigned>(c - 'A' + 10);
    else
      throw std::invalid_argument("BigUInt::from_hex: bad digit");
    // out = out * 16 + digit
    std::uint64_t carry = digit;
    for (auto& limb : out.limbs_) {
      const std::uint64_t v = (static_cast<std::uint64_t>(limb) << 4) | carry;
      limb = static_cast<std::uint32_t>(v);
      carry = v >> 32;
    }
    if (carry != 0) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  }
  return out;
}

BigUInt BigUInt::from_bytes_be(std::span<const std::uint8_t> bytes) {
  BigUInt out;
  const std::size_t n = bytes.size();
  out.limbs_.assign((n + 3) / 4, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t pos = n - 1 - i;  // byte significance
    out.limbs_[pos / 4] |= static_cast<std::uint32_t>(bytes[i])
                           << (8 * (pos % 4));
  }
  out.trim();
  return out;
}

BigUInt BigUInt::random_bits(std::size_t bits, ChaCha20& rng) {
  assert(bits >= 1);
  BigUInt out;
  out.limbs_.assign((bits + 31) / 32, 0);
  for (auto& limb : out.limbs_) limb = rng.next_u32();
  const std::size_t top = (bits - 1) % 32;
  // Mask off excess bits, then force the top bit so bit_length() == bits.
  out.limbs_.back() &= (top == 31) ? ~std::uint32_t{0}
                                   : ((std::uint32_t{1} << (top + 1)) - 1);
  out.limbs_.back() |= std::uint32_t{1} << top;
  return out;
}

BigUInt BigUInt::random_below(const BigUInt& bound, ChaCha20& rng) {
  assert(!bound.is_zero());
  const std::size_t bits = bound.bit_length();
  for (;;) {
    BigUInt candidate;
    candidate.limbs_.assign((bits + 31) / 32, 0);
    for (auto& limb : candidate.limbs_) limb = rng.next_u32();
    const std::size_t excess = candidate.limbs_.size() * 32 - bits;
    if (excess > 0) candidate.limbs_.back() >>= excess;
    candidate.trim();
    if (candidate < bound) return candidate;
  }
}

std::string BigUInt::to_hex() const {
  if (is_zero()) return "0";
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 28; shift >= 0; shift -= 4)
      out.push_back(kHex[(limbs_[i] >> shift) & 0xF]);
  }
  const std::size_t nz = out.find_first_not_of('0');
  return out.substr(nz);
}

std::vector<std::uint8_t> BigUInt::to_bytes_be(std::size_t min_len) const {
  std::vector<std::uint8_t> out;
  const std::size_t total_bytes = (bit_length() + 7) / 8;
  const std::size_t len = std::max(total_bytes, min_len);
  out.assign(len, 0);
  for (std::size_t pos = 0; pos < total_bytes; ++pos) {
    out[len - 1 - pos] = static_cast<std::uint8_t>(
        limbs_[pos / 4] >> (8 * (pos % 4)));
  }
  return out;
}

std::size_t BigUInt::bit_length() const {
  if (limbs_.empty()) return 0;
  return 32 * (limbs_.size() - 1) +
         (32 - static_cast<std::size_t>(std::countl_zero(limbs_.back())));
}

bool BigUInt::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

std::uint64_t BigUInt::low_u64() const {
  std::uint64_t v = limbs_.empty() ? 0 : limbs_[0];
  if (limbs_.size() > 1) v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return v;
}

std::strong_ordering BigUInt::operator<=>(const BigUInt& other) const {
  if (limbs_.size() != other.limbs_.size())
    return limbs_.size() <=> other.limbs_.size();
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] <=> other.limbs_[i];
  }
  return std::strong_ordering::equal;
}

BigUInt BigUInt::operator+(const BigUInt& other) const {
  BigUInt out;
  const std::size_t n = std::max(limbs_.size(), other.limbs_.size());
  out.limbs_.reserve(n + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t v = carry;
    if (i < limbs_.size()) v += limbs_[i];
    if (i < other.limbs_.size()) v += other.limbs_[i];
    out.limbs_.push_back(static_cast<std::uint32_t>(v));
    carry = v >> 32;
  }
  if (carry != 0) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

BigUInt BigUInt::operator-(const BigUInt& other) const {
  assert(*this >= other);
  BigUInt out;
  out.limbs_.reserve(limbs_.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int64_t v = static_cast<std::int64_t>(limbs_[i]) - borrow;
    if (i < other.limbs_.size()) v -= other.limbs_[i];
    borrow = 0;
    if (v < 0) {
      v += static_cast<std::int64_t>(kBase);
      borrow = 1;
    }
    out.limbs_.push_back(static_cast<std::uint32_t>(v));
  }
  assert(borrow == 0);
  out.trim();
  return out;
}

namespace {

using Limbs = std::vector<std::uint32_t>;

Limbs limbs_mul_school(std::span<const std::uint32_t> a,
                       std::span<const std::uint32_t> b) {
  Limbs out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t ai = a[i];
    for (std::size_t j = 0; j < b.size(); ++j) {
      const std::uint64_t v = ai * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<std::uint32_t>(v);
      carry = v >> 32;
    }
    out[i + b.size()] = static_cast<std::uint32_t>(carry);
  }
  return out;
}

Limbs limbs_add(std::span<const std::uint32_t> a,
                std::span<const std::uint32_t> b) {
  Limbs out(std::max(a.size(), b.size()) + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::uint64_t v = carry;
    if (i < a.size()) v += a[i];
    if (i < b.size()) v += b[i];
    out[i] = static_cast<std::uint32_t>(v);
    carry = v >> 32;
  }
  return out;
}

// out -= sub at limb offset `shift`; out must stay non-negative.
void limbs_sub_inplace(Limbs& out, const Limbs& sub, std::size_t shift = 0) {
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < sub.size() || borrow != 0; ++i) {
    std::int64_t v = static_cast<std::int64_t>(out[i + shift]) - borrow;
    if (i < sub.size()) v -= sub[i];
    borrow = 0;
    if (v < 0) {
      v += static_cast<std::int64_t>(kBase);
      borrow = 1;
    }
    out[i + shift] = static_cast<std::uint32_t>(v);
  }
}

void limbs_add_inplace(Limbs& out, const Limbs& add, std::size_t shift) {
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < add.size() || carry != 0; ++i) {
    std::uint64_t v = static_cast<std::uint64_t>(out[i + shift]) + carry;
    if (i < add.size()) v += add[i];
    out[i + shift] = static_cast<std::uint32_t>(v);
    carry = v >> 32;
  }
}

// Below this limb count, schoolbook's cache behavior wins.
constexpr std::size_t kKaratsubaThreshold = 24;

Limbs limbs_mul(std::span<const std::uint32_t> a,
                std::span<const std::uint32_t> b) {
  if (a.empty() || b.empty()) return {};
  if (std::min(a.size(), b.size()) < kKaratsubaThreshold)
    return limbs_mul_school(a, b);

  // Karatsuba: split both at half the larger operand.
  const std::size_t half = std::max(a.size(), b.size()) / 2;
  const auto a0 = a.subspan(0, std::min(half, a.size()));
  const auto a1 = a.size() > half ? a.subspan(half) : std::span<const std::uint32_t>{};
  const auto b0 = b.subspan(0, std::min(half, b.size()));
  const auto b1 = b.size() > half ? b.subspan(half) : std::span<const std::uint32_t>{};

  const auto trim = [](Limbs& v) {
    while (!v.empty() && v.back() == 0) v.pop_back();
  };

  Limbs z0 = limbs_mul(a0, b0);
  Limbs z2 = limbs_mul(a1, b1);
  const Limbs sa = limbs_add(a0, a1);
  const Limbs sb = limbs_add(b0, b1);
  Limbs z1 = limbs_mul(sa, sb);
  limbs_sub_inplace(z1, z0);
  limbs_sub_inplace(z1, z2);
  // Trim leading zero limbs: the vectors carry slack capacity, and adding
  // untrimmed zeros below would index past the exact-size output buffer.
  trim(z0);
  trim(z1);
  trim(z2);

  Limbs out(a.size() + b.size() + 1, 0);
  limbs_add_inplace(out, z0, 0);
  limbs_add_inplace(out, z1, half);
  limbs_add_inplace(out, z2, 2 * half);
  return out;
}

}  // namespace

BigUInt mul_schoolbook(const BigUInt& a, const BigUInt& b) {
  if (a.is_zero() || b.is_zero()) return BigUInt{};
  BigUInt out;
  out.limbs_ = limbs_mul_school(a.limbs_, b.limbs_);
  out.trim();
  return out;
}

BigUInt BigUInt::operator*(const BigUInt& other) const {
  if (is_zero() || other.is_zero()) return BigUInt{};
  BigUInt out;
  out.limbs_ = limbs_mul(limbs_, other.limbs_);
  out.trim();
  return out;
}

BigUInt BigUInt::operator<<(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  const std::size_t limb_shift = bits / 32;
  const unsigned bit_shift = bits % 32;
  BigUInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.trim();
  return out;
}

BigUInt BigUInt::operator>>(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  const std::size_t limb_shift = bits / 32;
  const unsigned bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) return BigUInt{};
  BigUInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = static_cast<std::uint64_t>(limbs_[i + limb_shift]) >>
                      bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size())
      v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.trim();
  return out;
}

DivMod BigUInt::divmod(const BigUInt& dividend, const BigUInt& divisor) {
  assert(!divisor.is_zero());
  if (dividend < divisor) return {BigUInt{}, dividend};

  // Single-limb divisor: straightforward short division.
  if (divisor.limbs_.size() == 1) {
    const std::uint64_t d = divisor.limbs_[0];
    BigUInt q;
    q.limbs_.assign(dividend.limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = dividend.limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | dividend.limbs_[i];
      q.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    q.trim();
    return {std::move(q), BigUInt{rem}};
  }

  // Knuth Algorithm D (TAOCP vol. 2, 4.3.1).
  const unsigned shift =
      static_cast<unsigned>(std::countl_zero(divisor.limbs_.back()));
  const BigUInt un_big = dividend << shift;
  const BigUInt vn = divisor << shift;
  const std::size_t n = vn.limbs_.size();
  const std::size_t m = dividend.limbs_.size() - n +
                        (un_big.limbs_.size() > dividend.limbs_.size() ? 1 : 0);

  // u gets an explicit extra high limb.
  std::vector<std::uint32_t> u = un_big.limbs_;
  u.resize(dividend.limbs_.size() + 1, 0);
  const std::vector<std::uint32_t>& v = vn.limbs_;

  BigUInt q;
  q.limbs_.assign(u.size() - n, 0);

  for (std::size_t j = u.size() - n; j-- > 0;) {
    // Estimate qhat from the top two limbs of the current remainder window.
    const std::uint64_t top =
        (static_cast<std::uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    std::uint64_t qhat = top / v[n - 1];
    std::uint64_t rhat = top % v[n - 1];
    while (qhat >= kBase ||
           qhat * v[n - 2] > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += v[n - 1];
      if (rhat >= kBase) break;
    }

    // Multiply-subtract u[j .. j+n] -= qhat * v.
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t p = qhat * v[i] + carry;
      carry = p >> 32;
      const std::int64_t t = static_cast<std::int64_t>(u[i + j]) -
                             static_cast<std::int64_t>(p & 0xFFFFFFFF) -
                             borrow;
      u[i + j] = static_cast<std::uint32_t>(t);
      borrow = (t < 0) ? 1 : 0;
    }
    const std::int64_t t = static_cast<std::int64_t>(u[j + n]) -
                           static_cast<std::int64_t>(carry) - borrow;
    u[j + n] = static_cast<std::uint32_t>(t);

    if (t < 0) {
      // qhat was one too large; add v back.
      --qhat;
      std::uint64_t c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t s =
            static_cast<std::uint64_t>(u[i + j]) + v[i] + c;
        u[i + j] = static_cast<std::uint32_t>(s);
        c = s >> 32;
      }
      u[j + n] += static_cast<std::uint32_t>(c);
    }
    q.limbs_[j] = static_cast<std::uint32_t>(qhat);
  }
  (void)m;

  q.trim();
  BigUInt r;
  r.limbs_.assign(u.begin(), u.begin() + static_cast<std::ptrdiff_t>(n));
  r.trim();
  return {std::move(q), r >> shift};
}

BigUInt BigUInt::operator/(const BigUInt& other) const {
  return divmod(*this, other).quotient;
}

BigUInt BigUInt::operator%(const BigUInt& other) const {
  return divmod(*this, other).remainder;
}

BigUInt BigUInt::mod_exp(const BigUInt& base, const BigUInt& exp,
                         const BigUInt& modulus) {
  assert(!modulus.is_zero());
  if (modulus == BigUInt{1}) return BigUInt{};
  BigUInt result{1};
  BigUInt b = base % modulus;
  const std::size_t bits = exp.bit_length();
  for (std::size_t i = 0; i < bits; ++i) {
    if (exp.bit(i)) result = (result * b) % modulus;
    b = (b * b) % modulus;
  }
  return result;
}

BigUInt BigUInt::gcd(BigUInt a, BigUInt b) {
  while (!b.is_zero()) {
    BigUInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

std::optional<BigUInt> BigUInt::mod_inverse(const BigUInt& a,
                                            const BigUInt& m) {
  // Extended Euclid with explicit signs on the Bezout coefficient for a.
  BigUInt old_r = a % m, r = m;
  BigUInt old_s{1}, s{};
  bool old_s_neg = false, s_neg = false;
  while (!r.is_zero()) {
    const auto [q, rem] = divmod(old_r, r);
    old_r = std::move(r);
    r = rem;
    // (old_s, s) <- (s, old_s - q*s) with sign tracking.
    BigUInt qs = q * s;
    BigUInt new_s;
    bool new_s_neg;
    if (old_s_neg == s_neg) {
      // old_s - qs where both have sign `old_s_neg`.
      if (old_s >= qs) {
        new_s = old_s - qs;
        new_s_neg = old_s_neg;
      } else {
        new_s = qs - old_s;
        new_s_neg = !old_s_neg;
      }
    } else {
      new_s = old_s + qs;
      new_s_neg = old_s_neg;
    }
    old_s = std::move(s);
    old_s_neg = s_neg;
    s = std::move(new_s);
    s_neg = new_s_neg;
  }
  if (old_r != BigUInt{1}) return std::nullopt;  // not coprime
  BigUInt inv = old_s % m;
  if (old_s_neg && !inv.is_zero()) inv = m - inv;
  return inv;
}

namespace {

// Small primes for trial division before Miller-Rabin.
constexpr std::uint32_t kSmallPrimes[] = {
    3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103,
    107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173,
    179, 181, 191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241,
    251, 257, 263, 269, 271, 277, 281, 283, 293};

bool miller_rabin_round(const BigUInt& n, const BigUInt& n_minus_1,
                        const BigUInt& d, std::size_t s, const BigUInt& a) {
  BigUInt x = BigUInt::mod_exp(a, d, n);
  if (x == BigUInt{1} || x == n_minus_1) return true;
  for (std::size_t i = 1; i < s; ++i) {
    x = (x * x) % n;
    if (x == n_minus_1) return true;
  }
  return false;
}

}  // namespace

bool is_probable_prime(const BigUInt& n, ChaCha20& rng, int rounds) {
  if (n < BigUInt{2}) return false;
  if (n == BigUInt{2} || n == BigUInt{3}) return true;
  if (!n.is_odd()) return false;
  for (std::uint32_t p : kSmallPrimes) {
    const BigUInt bp{p};
    if (n == bp) return true;
    if ((n % bp).is_zero()) return false;
  }

  const BigUInt n_minus_1 = n - BigUInt{1};
  BigUInt d = n_minus_1;
  std::size_t s = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++s;
  }

  if (!miller_rabin_round(n, n_minus_1, d, s, BigUInt{2})) return false;
  const BigUInt span = n - BigUInt{4};  // witnesses in [2, n-2]
  for (int i = 0; i < rounds; ++i) {
    const BigUInt a = BigUInt::random_below(span, rng) + BigUInt{2};
    if (!miller_rabin_round(n, n_minus_1, d, s, a)) return false;
  }
  return true;
}

BigUInt generate_prime(std::size_t bits, ChaCha20& rng) {
  assert(bits >= 16);
  for (;;) {
    BigUInt candidate = BigUInt::random_bits(bits, rng);
    if (!candidate.is_odd()) candidate = candidate + BigUInt{1};
    if (is_probable_prime(candidate, rng)) return candidate;
  }
}

}  // namespace fairshare::crypto
