#include "crypto/chacha20.hpp"

#include <bit>
#include <cassert>
#include <cstring>

namespace fairshare::crypto {

namespace {

std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                   std::uint32_t& d) {
  a += b; d ^= a; d = std::rotl(d, 16);
  c += d; b ^= c; b = std::rotl(b, 12);
  a += b; d ^= a; d = std::rotl(d, 8);
  c += d; b ^= c; b = std::rotl(b, 7);
}

}  // namespace

ChaCha20::ChaCha20(std::span<const std::uint8_t, kKeySize> key,
                   std::span<const std::uint8_t, kNonceSize> nonce,
                   std::uint32_t counter) {
  // "expand 32-byte k"
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state_[4 + i] = load_le32(key.data() + 4 * i);
  state_[12] = counter;
  for (int i = 0; i < 3; ++i) state_[13 + i] = load_le32(nonce.data() + 4 * i);
}

void ChaCha20::refill() {
  std::array<std::uint32_t, 16> x = state_;
  for (int round = 0; round < 10; ++round) {
    // Column rounds.
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    // Diagonal rounds.
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t v = x[i] + state_[i];
    block_[4 * i + 0] = static_cast<std::uint8_t>(v);
    block_[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    block_[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    block_[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
  ++state_[12];
  block_pos_ = 0;
}

void ChaCha20::generate(std::span<std::uint8_t> out) {
  std::size_t off = 0;
  while (off < out.size()) {
    if (block_pos_ == kBlockSize) refill();
    const std::size_t take =
        std::min(out.size() - off, kBlockSize - block_pos_);
    std::memcpy(out.data() + off, block_.data() + block_pos_, take);
    block_pos_ += take;
    off += take;
  }
}

std::uint8_t ChaCha20::next_byte() {
  if (block_pos_ == kBlockSize) refill();
  return block_[block_pos_++];
}

std::uint32_t ChaCha20::next_u32() {
  std::uint8_t b[4];
  generate(b);
  return load_le32(b);
}

std::uint64_t ChaCha20::next_u64() {
  const std::uint64_t lo = next_u32();
  const std::uint64_t hi = next_u32();
  return lo | (hi << 32);
}

std::uint64_t ChaCha20::uniform(std::uint64_t bound) {
  assert(bound >= 1);
  if (bound == 1) return 0;
  // Rejection sampling on the smallest power-of-two mask >= bound.
  const int bits = 64 - std::countl_zero(bound - 1);
  const std::uint64_t mask =
      bits == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
  for (;;) {
    std::uint64_t v;
    if (bits <= 8)
      v = next_byte() & mask;
    else if (bits <= 32)
      v = next_u32() & mask;
    else
      v = next_u64() & mask;
    if (v < bound) return v;
  }
}

}  // namespace fairshare::crypto
