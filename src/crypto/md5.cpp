#include "crypto/md5.hpp"

#include <bit>
#include <cmath>
#include <cstring>

namespace fairshare::crypto {

namespace {

// Per-round left-rotation amounts (RFC 1321, Section 3.4).
constexpr std::uint32_t kShift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

// K[i] = floor(|sin(i+1)| * 2^32), computed once as the RFC defines it
// (verified against the RFC test suite in tests/crypto/md5_test.cpp).
const std::array<std::uint32_t, 64>& sine_table() {
  static const std::array<std::uint32_t, 64> k = [] {
    std::array<std::uint32_t, 64> t{};
    for (int i = 0; i < 64; ++i)
      t[i] = static_cast<std::uint32_t>(
          std::floor(std::fabs(std::sin(static_cast<double>(i + 1))) *
                     4294967296.0));
    return t;
  }();
  return k;
}

std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void store_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace

void Md5::reset() {
  state_ = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u};
  length_ = 0;
  buffered_ = 0;
}

void Md5::process_block(const std::uint8_t* block) {
  std::uint32_t m[16];
  for (int i = 0; i < 16; ++i) m[i] = load_le32(block + 4 * i);

  const auto& k = sine_table();
  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];

  for (int i = 0; i < 64; ++i) {
    std::uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    const std::uint32_t tmp = d;
    d = c;
    c = b;
    b += std::rotl(a + f + k[i] + m[g], static_cast<int>(kShift[i]));
    a = tmp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Md5::update(std::span<const std::uint8_t> data) {
  length_ += data.size();
  std::size_t off = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    off = take;
    if (buffered_ == 64) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (off + 64 <= data.size()) {
    process_block(data.data() + off);
    off += 64;
  }
  if (off < data.size()) {
    std::memcpy(buffer_.data(), data.data() + off, data.size() - off);
    buffered_ = data.size() - off;
  }
}

void Md5::update(std::span<const std::byte> data) {
  update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

Md5Digest Md5::finish() {
  const std::uint64_t bit_length = length_ * 8;
  const std::uint8_t pad_byte = 0x80;
  update(std::span<const std::uint8_t>(&pad_byte, 1));
  const std::uint8_t zero = 0;
  while (buffered_ != 56) update(std::span<const std::uint8_t>(&zero, 1));
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i)
    len_bytes[i] = static_cast<std::uint8_t>(bit_length >> (8 * i));
  update(std::span<const std::uint8_t>(len_bytes, 8));

  Md5Digest digest;
  for (int i = 0; i < 4; ++i) store_le32(digest.data() + 4 * i, state_[i]);
  return digest;
}

Md5Digest Md5::hash(std::span<const std::uint8_t> data) {
  Md5 h;
  h.update(data);
  return h.finish();
}

Md5Digest Md5::hash(std::span<const std::byte> data) {
  Md5 h;
  h.update(data);
  return h.finish();
}

Md5Digest Md5::hash(std::string_view data) {
  return hash(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

std::string to_hex(std::span<const std::uint8_t> digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(digest.size() * 2);
  for (std::uint8_t b : digest) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

}  // namespace fairshare::crypto
