#include "crypto/merkle.hpp"

#include <cassert>

namespace fairshare::crypto {

namespace {

Sha256Digest interior_hash(const Sha256Digest& left,
                           const Sha256Digest& right) {
  Sha256 h;
  const std::uint8_t tag = 0x01;
  h.update(std::span<const std::uint8_t>(&tag, 1));
  h.update(std::span<const std::uint8_t>(left));
  h.update(std::span<const std::uint8_t>(right));
  return h.finish();
}

}  // namespace

Sha256Digest merkle_leaf_hash(std::span<const std::uint8_t> data) {
  Sha256 h;
  const std::uint8_t tag = 0x00;
  h.update(std::span<const std::uint8_t>(&tag, 1));
  h.update(data);
  return h.finish();
}

Sha256Digest merkle_leaf_hash(std::span<const std::byte> data) {
  return merkle_leaf_hash(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

MerkleTree::MerkleTree(std::vector<Sha256Digest> leaves)
    : leaf_count_(leaves.size()) {
  assert(!leaves.empty());
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) {
    const auto& prev = levels_.back();
    std::vector<Sha256Digest> next;
    next.reserve((prev.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < prev.size(); i += 2)
      next.push_back(interior_hash(prev[i], prev[i + 1]));
    if (prev.size() % 2 == 1) next.push_back(prev.back());  // promote
    levels_.push_back(std::move(next));
  }
}

const Sha256Digest& MerkleTree::root() const { return levels_.back()[0]; }

std::vector<Sha256Digest> MerkleTree::proof(std::size_t index) const {
  assert(index < leaf_count_);
  std::vector<Sha256Digest> path;
  std::size_t i = index;
  for (std::size_t level = 0; level + 1 < levels_.size(); ++level) {
    const auto& nodes = levels_[level];
    const std::size_t sibling = (i % 2 == 0) ? i + 1 : i - 1;
    if (sibling < nodes.size()) path.push_back(nodes[sibling]);
    // else: promoted odd node, no sibling at this level.
    i /= 2;
  }
  return path;
}

bool MerkleTree::verify(const Sha256Digest& root, std::size_t leaf_count,
                        std::size_t index, const Sha256Digest& leaf_hash,
                        std::span<const Sha256Digest> proof) {
  if (leaf_count == 0 || index >= leaf_count) return false;
  Sha256Digest node = leaf_hash;
  std::size_t i = index;
  std::size_t width = leaf_count;
  std::size_t used = 0;
  while (width > 1) {
    const bool is_promoted_odd = (i == width - 1) && (width % 2 == 1);
    if (!is_promoted_odd) {
      if (used >= proof.size()) return false;
      const Sha256Digest& sibling = proof[used++];
      node = (i % 2 == 0) ? interior_hash(node, sibling)
                          : interior_hash(sibling, node);
    }
    i /= 2;
    width = (width + 1) / 2;
  }
  return used == proof.size() && node == root;
}

std::size_t MerkleTree::proof_length(std::size_t leaf_count,
                                     std::size_t index) {
  std::size_t entries = 0;
  std::size_t i = index;
  std::size_t width = leaf_count;
  while (width > 1) {
    const bool is_promoted_odd = (i == width - 1) && (width % 2 == 1);
    if (!is_promoted_odd) ++entries;
    i /= 2;
    width = (width + 1) / 2;
  }
  return entries;
}

}  // namespace fairshare::crypto
