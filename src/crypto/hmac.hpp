// HMAC-SHA256 (RFC 2104 / FIPS 198-1).
//
// Used to bind download-session traffic to the key agreed during the
// challenge-response handshake (auth.hpp), so a man-in-the-middle cannot
// splice messages into an authenticated session (the paper calls for
// mutual authentication "to prevent man-in-the-middle or IP spoofing
// attacks", Section III-B).
#pragma once

#include <span>

#include "crypto/sha256.hpp"

namespace fairshare::crypto {

/// HMAC-SHA256 of `data` under `key`.  Any key length is accepted; keys
/// longer than the block size are hashed first, per the RFC.
Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                         std::span<const std::uint8_t> data);

Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                         std::span<const std::byte> data);

/// Constant-time digest comparison (avoids early-exit timing leaks when
/// verifying tags).
bool digest_equal(std::span<const std::uint8_t> a,
                  std::span<const std::uint8_t> b);

}  // namespace fairshare::crypto
