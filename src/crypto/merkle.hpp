// Merkle hash trees over SHA-256.
//
// Addresses the paper's future-work item: "minimizing the amount of
// meta-data that the user needs to carry around" (Section VI-A).  With the
// baseline scheme the user carries a 16-byte MD5 digest per coded message;
// with a Merkle tree the user carries one 32-byte root, and each stored
// message travels with a log2(n)-length authentication path that anyone
// can verify against the root.  coding/merkle_auth.hpp layers this under
// the codec.
//
// Construction notes:
//  * leaf hash     = SHA-256(0x00 || data)
//  * interior hash = SHA-256(0x01 || left || right)
//    (domain separation prevents leaf/interior second-preimage splicing);
//  * an odd node at any level is promoted unchanged to the next level
//    (no Bitcoin-style duplication, which admits ambiguous trees).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "crypto/sha256.hpp"

namespace fairshare::crypto {

/// Hash a leaf's raw content (applies the 0x00 domain tag).
Sha256Digest merkle_leaf_hash(std::span<const std::uint8_t> data);
Sha256Digest merkle_leaf_hash(std::span<const std::byte> data);

/// A Merkle tree built once over a fixed list of leaf hashes.
class MerkleTree {
 public:
  /// `leaves` are already leaf-hashed (merkle_leaf_hash).  Must be
  /// non-empty.
  explicit MerkleTree(std::vector<Sha256Digest> leaves);

  std::size_t leaf_count() const { return leaf_count_; }
  const Sha256Digest& root() const;

  /// Authentication path for leaf `index`: the sibling hash at each level
  /// where the node has one (promoted odd nodes contribute no entry).
  std::vector<Sha256Digest> proof(std::size_t index) const;

  /// Stateless verification: recompute the root from a leaf hash and its
  /// path.  `leaf_count` must be the count the tree was built with —
  /// promotion layout depends on it.
  static bool verify(const Sha256Digest& root, std::size_t leaf_count,
                     std::size_t index, const Sha256Digest& leaf_hash,
                     std::span<const Sha256Digest> proof);

  /// Proof length for a given tree size/index (bytes = 32 * entries).
  static std::size_t proof_length(std::size_t leaf_count, std::size_t index);

 private:
  std::size_t leaf_count_;
  // levels_[0] = leaf hashes, levels_.back() = {root}.
  std::vector<std::vector<Sha256Digest>> levels_;
};

}  // namespace fairshare::crypto
