// Arbitrary-precision unsigned integers, sized for the public-key
// challenge-response handshake of Section III-B.
//
// Little-endian 32-bit limbs, normalized (no high zero limbs; zero is the
// empty limb vector).  Division is Knuth's Algorithm D, so modular
// exponentiation of the RSA sizes used in tests (512-2048 bits) runs in
// milliseconds.  This is a protocol-fidelity substrate, not a hardened
// crypto library: operand-dependent timing is not hidden.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace fairshare::crypto {

class ChaCha20;
struct DivMod;

class BigUInt {
 public:
  /// Zero.
  BigUInt() = default;
  explicit BigUInt(std::uint64_t v);

  /// Parse from hex (no 0x prefix, case-insensitive).  Empty string -> 0.
  static BigUInt from_hex(std::string_view hex);
  /// Big-endian byte import (leading zeros allowed).
  static BigUInt from_bytes_be(std::span<const std::uint8_t> bytes);
  /// Uniformly random value with exactly `bits` bits (top bit forced to 1).
  static BigUInt random_bits(std::size_t bits, ChaCha20& rng);
  /// Uniformly random value in [0, bound), bound > 0.
  static BigUInt random_below(const BigUInt& bound, ChaCha20& rng);

  std::string to_hex() const;  ///< lowercase, no leading zeros ("0" for zero)
  /// Big-endian bytes, minimal length (empty for zero) unless `min_len`
  /// asks for left zero-padding.
  std::vector<std::uint8_t> to_bytes_be(std::size_t min_len = 0) const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  /// Number of significant bits (0 for zero).
  std::size_t bit_length() const;
  bool bit(std::size_t i) const;
  /// Value of the low 64 bits.
  std::uint64_t low_u64() const;

  std::strong_ordering operator<=>(const BigUInt& other) const;
  bool operator==(const BigUInt& other) const = default;

  BigUInt operator+(const BigUInt& other) const;
  /// Precondition: *this >= other.
  BigUInt operator-(const BigUInt& other) const;
  BigUInt operator*(const BigUInt& other) const;
  BigUInt operator<<(std::size_t bits) const;
  BigUInt operator>>(std::size_t bits) const;
  BigUInt operator/(const BigUInt& other) const;
  BigUInt operator%(const BigUInt& other) const;

  /// Quotient and remainder in one pass.  Precondition: divisor != 0.
  static DivMod divmod(const BigUInt& dividend, const BigUInt& divisor);

  /// (base^exp) mod modulus.  Precondition: modulus != 0.
  static BigUInt mod_exp(const BigUInt& base, const BigUInt& exp,
                         const BigUInt& modulus);
  static BigUInt gcd(BigUInt a, BigUInt b);
  /// a^-1 mod m, or nullopt when gcd(a, m) != 1.
  static std::optional<BigUInt> mod_inverse(const BigUInt& a,
                                            const BigUInt& m);

 private:
  friend BigUInt mul_schoolbook(const BigUInt& a, const BigUInt& b);
  void trim();
  std::vector<std::uint32_t> limbs_;  // little endian, normalized
};

/// Reference schoolbook product — kept public so tests and benches can
/// cross-check the Karatsuba path operator* takes for large operands.
BigUInt mul_schoolbook(const BigUInt& a, const BigUInt& b);

/// Result of BigUInt::divmod.
struct DivMod {
  BigUInt quotient;
  BigUInt remainder;
};

/// Miller-Rabin with `rounds` random bases drawn from `rng` (plus base 2).
/// Error probability <= 4^-rounds for odd composites.
bool is_probable_prime(const BigUInt& n, ChaCha20& rng, int rounds = 24);

/// Random prime with exactly `bits` bits (top and low bit set), found by
/// trial division over small primes followed by Miller-Rabin.
BigUInt generate_prime(std::size_t bits, ChaCha20& rng);

}  // namespace fairshare::crypto
