// Binary wire formats for the discovery/federation protocol.
//
// Discovery nodes speak length-prefixed frames over the same
// net::Transport seam as the serve path; this header defines what is
// inside those frames.  The protocol has three planes:
//
//   * routing  — lookup_request/_response: one iterative Chord hop.  The
//     client carries the query: a node answers either "done, the owner is
//     X (and here are X's successors for replica fallback)" or "ask Y
//     next" (its closest preceding finger, via ChordRing::route_step).
//   * records  — announce/resolve: TTL'd provider records (file id ->
//     serving endpoint) stored on the owner and pushed to its successor
//     list (`replicate` distinguishes the origin write from the replica
//     push so replication does not cascade).
//   * state    — join/gossip/status: membership and the federated
//     contribution ledger travel together in Gossip frames (push-pull
//     anti-entropy); the ledger rows are alloc::FederatedLedger entries,
//     max-merged at the receiver.
//
// Same conventions as p2p::wire: a type tag leads every frame (disco tags
// start at 64 so the two tag spaces stay disjoint), all integers are
// little-endian, every decoder is bounds-checked and total — malformed
// input yields nullopt, never UB.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "alloc/federated_ledger.hpp"
#include "dht/chord.hpp"

namespace fairshare::disco::wire {

/// Frame type tags (first byte of every frame).
enum class MessageType : std::uint8_t {
  lookup_request = 64,
  lookup_response = 65,
  announce_request = 66,
  announce_response = 67,
  resolve_request = 68,
  resolve_response = 69,
  join_request = 70,
  gossip = 71,  ///< push, pull-reply, and join-reply all use this shape
  status_request = 72,
  status_response = 73,
};

/// A discovery node as ring members address each other.
struct Member {
  dht::RingId id = 0;
  std::string host;
  std::uint16_t port = 0;

  bool operator==(const Member&) const = default;
};

/// A serving endpoint stored in a provider record.
struct Provider {
  std::uint64_t peer_id = 0;
  std::string host;
  std::uint16_t port = 0;

  bool operator==(const Provider&) const = default;
};

/// One iterative routing step: "who owns `key`, from where you stand?"
struct LookupRequest {
  dht::RingId key = 0;

  bool operator==(const LookupRequest&) const = default;
};

/// `done`: `target` owns the key and `successors` are its successor-list
/// members (the resolve fallbacks).  Not done: ask `target` next.
struct LookupResponse {
  bool done = false;
  Member target;
  std::vector<Member> successors;

  bool operator==(const LookupResponse&) const = default;
};

/// Store (or refresh) a provider record for `file_id`, alive for
/// `ttl_ms`.  `replicate` is true on the origin write — the owner then
/// pushes a replicate=false copy to each successor, and those copies must
/// not cascade further.
struct AnnounceRequest {
  std::uint64_t file_id = 0;
  Provider provider;
  std::uint32_t ttl_ms = 0;
  bool replicate = true;

  bool operator==(const AnnounceRequest&) const = default;
};

struct AnnounceResponse {
  bool stored = false;
  std::uint8_t replicas = 0;  ///< successor copies the owner pushed

  bool operator==(const AnnounceResponse&) const = default;
};

struct ResolveRequest {
  std::uint64_t file_id = 0;

  bool operator==(const ResolveRequest&) const = default;
};

struct ResolveResponse {
  std::vector<Provider> providers;

  bool operator==(const ResolveResponse&) const = default;
};

/// "Add me to the ring" — answered with a Gossip frame carrying the full
/// membership view and ledger.
struct JoinRequest {
  Member joiner;

  bool operator==(const JoinRequest&) const = default;
};

/// Anti-entropy payload: the sender's identity, membership view, and
/// contribution ledger.  `reply` distinguishes the pull half of a
/// push-pull round (a reply must not be replied to again).
struct Gossip {
  bool reply = false;
  Member from;
  std::vector<Member> members;
  std::vector<alloc::FederatedLedger::Entry> ledger;

  bool operator==(const Gossip&) const = default;
};

struct StatusRequest {
  bool operator==(const StatusRequest&) const = default;
};

struct StatusResponse {
  Member self;
  std::vector<Member> members;
  std::uint32_t provider_records = 0;
  std::uint32_t ledger_entries = 0;
  std::uint64_t gossip_rounds = 0;
  std::uint64_t lookups_served = 0;

  bool operator==(const StatusResponse&) const = default;
};

// --------------------------------------------------------------- encoders
std::vector<std::byte> encode(const LookupRequest& msg);
std::vector<std::byte> encode(const LookupResponse& msg);
std::vector<std::byte> encode(const AnnounceRequest& msg);
std::vector<std::byte> encode(const AnnounceResponse& msg);
std::vector<std::byte> encode(const ResolveRequest& msg);
std::vector<std::byte> encode(const ResolveResponse& msg);
std::vector<std::byte> encode(const JoinRequest& msg);
std::vector<std::byte> encode(const Gossip& msg);
std::vector<std::byte> encode(const StatusRequest& msg);
std::vector<std::byte> encode(const StatusResponse& msg);

// --------------------------------------------------------------- decoders
// Each consumes a full frame produced by the matching encode().
std::optional<LookupRequest> decode_lookup_request(
    std::span<const std::byte> frame);
std::optional<LookupResponse> decode_lookup_response(
    std::span<const std::byte> frame);
std::optional<AnnounceRequest> decode_announce_request(
    std::span<const std::byte> frame);
std::optional<AnnounceResponse> decode_announce_response(
    std::span<const std::byte> frame);
std::optional<ResolveRequest> decode_resolve_request(
    std::span<const std::byte> frame);
std::optional<ResolveResponse> decode_resolve_response(
    std::span<const std::byte> frame);
std::optional<JoinRequest> decode_join_request(
    std::span<const std::byte> frame);
std::optional<Gossip> decode_gossip(std::span<const std::byte> frame);
std::optional<StatusRequest> decode_status_request(
    std::span<const std::byte> frame);
std::optional<StatusResponse> decode_status_response(
    std::span<const std::byte> frame);

/// Type tag of a frame (nullopt when empty or unknown).
std::optional<MessageType> peek_type(std::span<const std::byte> frame);

}  // namespace fairshare::disco::wire
