// A discovery node: ChordRing routing served over real framed TCP.
//
// Each cooperating server process runs one DiscoveryNode.  The node
// answers four things on its listening port (disco/wire.hpp frames over
// the net::Transport seam, so FaultyTransport chaos schedules apply to
// lookups exactly as they do to the serve path):
//
//   * lookup   — one iterative Chord routing step, answered from the
//     node's own ChordRing via route_step(): "done, owner is X (and its
//     successors)" or "ask Y next".  The *client* carries the query from
//     hop to hop, so routing work and hop counts are real network
//     round-trips.
//   * announce/resolve — TTL'd provider records (file id -> serving
//     endpoints).  A record is written to the owner, which pushes copies
//     to its successor list; the origin re-announces every
//     reannounce_period_ms, so records survive node failure (replicas
//     answer) and node churn (the refresh lands on the new owner), and
//     orphaned records age out by TTL.
//   * join/gossip — membership and the federated contribution ledger.  A
//     joiner learns the full view from any seed; thereafter every node
//     runs push-pull anti-entropy rounds against a random member:
//     membership is merged by union, ledger rows by CRDT max-merge
//     (alloc::FederatedLedger).  A member that fails two consecutive
//     outbound dials is declared dead and dropped from the local ring.
//   * status — one-frame introspection for `fairshare_cli disco status`.
//
// Runtime shape: one net::EventLoop thread owns the listener and every
// inbound connection (non-blocking frame pumps, fault delays parked on
// the timer wheel), plus the periodic gossip / re-announce / TTL-sweep
// timers; a small util::ThreadPool performs the blocking *outbound* dials
// (gossip rounds, replica pushes, re-announces) so the loop thread never
// blocks on a connect.  Platforms without epoll fall back to a blocking
// accept thread handling one connection per pool worker — same frames,
// same state machine.
//
// The node implements net::DiscoveryHook, so a PeerServer wires to it by
// simply placing it (shared) in Config::discovery.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "alloc/federated_ledger.hpp"
#include "dht/chord.hpp"
#include "disco/wire.hpp"
#include "net/discovery.hpp"
#include "net/event_loop.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace fairshare::disco {

struct NodeConfig {
  std::string host = "127.0.0.1";  ///< address announced to the mesh
  std::uint16_t port = 0;          ///< 0 = pick a free port
  /// Position on the identifier ring; 0 = derive from host:port once the
  /// port is known (tests pin explicit ids to control ring geometry).
  dht::RingId ring_id = 0;
  /// Ledger origin this node publishes under (its PeerServer's peer_id);
  /// 0 = use the ring id.
  std::uint64_t origin_id = 0;
  /// Existing mesh members to join through (any one reachable suffices);
  /// empty = start a fresh single-node ring.
  std::vector<wire::Member> seeds;
  std::uint32_t provider_ttl_ms = 10'000;
  std::uint32_t reannounce_period_ms = 2'000;
  std::uint32_t gossip_period_ms = 250;
  /// Blocking outbound IO bound (dials, gossip replies).
  int io_timeout_ms = 2'000;
  std::uint64_t rng_seed = 1;  ///< gossip partner selection
  /// Inbound hook mirroring PeerServer::Config::transport_wrapper: every
  /// accepted connection's Transport passes through here, so chaos tests
  /// inject faults into the lookup/gossip path.  Must be thread-safe.
  std::function<std::unique_ptr<net::Transport>(
      std::unique_ptr<net::Transport>)>
      transport_wrapper;
  /// Registry for the disco instruments (lookups/gossip/members/records),
  /// labelled node=<ring id>; null = the process-wide global.
  obs::MetricsRegistry* registry = nullptr;
};

class DiscoveryNode : public net::DiscoveryHook {
 public:
  explicit DiscoveryNode(NodeConfig config);
  ~DiscoveryNode() override;

  DiscoveryNode(const DiscoveryNode&) = delete;
  DiscoveryNode& operator=(const DiscoveryNode&) = delete;

  /// Bind, join through the configured seeds, start serving.  False when
  /// the port cannot be bound.
  bool start();
  void stop();

  std::uint16_t port() const { return port_; }
  dht::RingId ring_id() const { return self_.id; }
  /// This node as mesh members address it (valid after start()).
  wire::Member self() const { return self_; }

  /// Local mesh view (for tests; the wire path is status_request).
  wire::StatusResponse status() const;
  /// Non-expired provider records this node holds for `file_id`.
  std::vector<wire::Provider> stored_providers(std::uint64_t file_id) const;

  /// Run one gossip round now (blocking, off-loop; tests use this to make
  /// propagation deterministic instead of waiting out the period).
  void gossip_now();

  // ------------------------------------------- net::DiscoveryHook
  bool announce_file(std::uint64_t file_id,
                     const net::ServeEndpoint& endpoint) override;
  void publish_contribution(std::uint64_t user_id, double total) override;
  double swarm_contribution(std::uint64_t user_id) const override;

 private:
  struct Conn;
  struct ProviderEntry {
    wire::Provider provider;
    std::chrono::steady_clock::time_point expires;
  };

  /// Largest inbound frame (gossip payloads dominate; lookups are tiny).
  static constexpr std::size_t kMaxFrame = 1 << 20;
  /// Consecutive failed outbound dials before a member is declared dead.
  static constexpr int kDialFailureLimit = 2;

  // Shared request logic (loop thread and blocking fallback): a full
  // request frame in, the response frame out (nullopt closes the
  // connection).
  std::optional<std::vector<std::byte>> handle_frame(
      std::span<const std::byte> frame);
  std::vector<std::byte> handle_lookup(const wire::LookupRequest& msg);
  std::vector<std::byte> handle_announce(const wire::AnnounceRequest& msg);
  std::vector<std::byte> handle_resolve(const wire::ResolveRequest& msg);
  std::vector<std::byte> handle_join(const wire::JoinRequest& msg);
  std::vector<std::byte> handle_gossip(const wire::Gossip& msg);
  std::vector<std::byte> handle_status();

  /// Requires mutex_.  Returns the members newly learned (to join eagerly).
  std::size_t merge_members_locked(const std::vector<wire::Member>& members);
  wire::Gossip local_view_locked(bool reply);
  std::vector<wire::Member> successor_members_locked(dht::RingId node);
  void update_mesh_gauges_locked();

  // Outbound (pool threads; blocking with io_timeout_ms bounds).
  std::unique_ptr<net::Transport> dial(const wire::Member& target);
  std::optional<std::vector<std::byte>> request(
      const wire::Member& target, std::span<const std::byte> frame);
  void gossip_round();
  void note_dial_result(const wire::Member& target, bool ok);
  void replicate_record(const wire::AnnounceRequest& record,
                        const std::vector<wire::Member>& replicas);
  bool announce_to_owner(std::uint64_t file_id, const wire::Provider& p);
  void reannounce_all();
  bool join_mesh();
  void sweep_expired();

  // Epoll serving core (loop thread only).
  bool loop_start();
  void loop_stop();
  void accept_ready();
  void pump(const std::shared_ptr<Conn>& c);
  void close_conn(const std::shared_ptr<Conn>& c);
  // Portable blocking fallback.
  bool fallback_start();
  void fallback_stop();
  void fallback_accept_loop();

  NodeConfig config_;
  wire::Member self_;
  std::uint64_t origin_ = 0;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  bool use_loop_ = false;

  net::Listener listener_;
  std::unique_ptr<net::EventLoop> loop_;
  std::thread loop_thread_;
  std::thread accept_thread_;  // fallback only
  std::unique_ptr<util::ThreadPool> inbound_;  // fallback only
  std::unique_ptr<util::ThreadPool> outbound_;
  std::atomic<bool> gossip_inflight_{false};

  // Mesh + record state: one mutex, touched briefly from the loop thread,
  // the outbound pool, and the public API.  The ledger synchronizes
  // itself.
  mutable std::mutex mutex_;
  std::map<dht::RingId, wire::Member> members_;
  dht::ChordRing ring_;
  std::map<std::uint64_t, std::map<std::uint64_t, ProviderEntry>> providers_;
  std::map<dht::RingId, int> dial_failures_;
  std::vector<std::pair<std::uint64_t, wire::Provider>> local_provides_;
  std::uint64_t gossip_cursor_ = 0;  // rng state for partner selection
  alloc::FederatedLedger ledger_;

  // Loop-thread-only connection table.
  std::map<int, std::shared_ptr<Conn>> conns_;

  std::atomic<std::uint64_t> lookups_served_{0};
  std::atomic<std::uint64_t> gossip_rounds_{0};

  obs::MetricsRegistry* registry_;
  obs::Counter* m_lookups_;
  obs::Counter* m_announces_;
  obs::Counter* m_resolves_;
  obs::Counter* m_gossip_rounds_;
  obs::Counter* m_members_dropped_;
  obs::Gauge* m_members_;
  obs::Gauge* m_provider_records_;
  obs::Gauge* m_ledger_entries_;
};

/// Ring key of a file id — the same placement ContentLocator simulates.
inline dht::RingId file_key(std::uint64_t file_id) {
  return dht::ring_hash_u64(file_id, /*salt=*/0x66696c65);  // "file"
}

}  // namespace fairshare::disco
