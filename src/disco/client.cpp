#include "disco/client.hpp"

#include <algorithm>
#include <chrono>

#include "disco/node.hpp"  // file_key
#include "net/socket.hpp"

namespace fairshare::disco {

Client::Client(ClientConfig config) : config_(std::move(config)) {}

std::optional<std::vector<std::byte>> Client::request(
    const wire::Member& target, std::span<const std::byte> frame) const {
  auto socket = net::Socket::connect_to(target.host, target.port);
  if (!socket) return std::nullopt;
  socket->set_recv_timeout(config_.io_timeout_ms);
  socket->set_send_timeout(config_.io_timeout_ms);
  if (!net::send_frame(*socket, frame)) return std::nullopt;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(config_.io_timeout_ms);
  for (;;) {
    auto resp = net::recv_frame(*socket, 1 << 20);
    if (resp) return resp;
    if (!socket->timed_out() || std::chrono::steady_clock::now() >= deadline)
      return std::nullopt;
  }
}

std::optional<LookupOutcome> Client::lookup(dht::RingId key) const {
  const auto frame = wire::encode(wire::LookupRequest{key});
  // Each seed gets one full walk; a dead hop mid-walk fails over to the
  // next seed (the ring re-routes around the casualty after its peers
  // drop it, so a later walk takes a live path).
  for (std::size_t s = 0; s < config_.seeds.size(); ++s) {
    wire::Member at = config_.seeds[s];
    LookupOutcome outcome;
    bool walk_alive = true;
    for (int hop = 0; hop < config_.max_hops && walk_alive; ++hop) {
      const auto resp = request(at, frame);
      if (!resp) {
        walk_alive = false;
        break;
      }
      const auto decoded = wire::decode_lookup_response(*resp);
      if (!decoded) {
        walk_alive = false;
        break;
      }
      ++outcome.hops;
      if (decoded->done) {
        outcome.owner = decoded->target;
        outcome.successors = decoded->successors;
        return outcome;
      }
      if (decoded->target == at) break;  // routing loop; try next seed
      at = decoded->target;
    }
  }
  return std::nullopt;
}

std::vector<wire::Provider> Client::resolve(std::uint64_t file_id,
                                            int* hops_out) const {
  if (hops_out) *hops_out = 0;
  const auto outcome = lookup(file_key(file_id));
  if (!outcome) return {};
  if (hops_out) *hops_out = outcome->hops;

  // Owner first, then its successor replicas: the union covers both a
  // freshly-killed owner (replicas still answer) and a replica that has
  // not yet received the record.
  std::vector<wire::Member> candidates;
  candidates.push_back(outcome->owner);
  for (const wire::Member& m : outcome->successors)
    if (m != outcome->owner) candidates.push_back(m);

  const auto frame = wire::encode(wire::ResolveRequest{file_id});
  std::vector<wire::Provider> providers;
  for (const wire::Member& target : candidates) {
    const auto resp = request(target, frame);
    if (!resp) continue;
    const auto decoded = wire::decode_resolve_response(*resp);
    if (!decoded) continue;
    for (const wire::Provider& p : decoded->providers) {
      const bool dup = std::any_of(
          providers.begin(), providers.end(),
          [&](const wire::Provider& q) { return q == p; });
      if (!dup) providers.push_back(p);
    }
    if (!providers.empty()) return providers;
  }
  return providers;
}

bool Client::announce(std::uint64_t file_id, const wire::Provider& provider,
                      std::uint32_t ttl_ms) const {
  const auto outcome = lookup(file_key(file_id));
  if (!outcome) return false;
  wire::AnnounceRequest req;
  req.file_id = file_id;
  req.provider = provider;
  req.ttl_ms = ttl_ms;
  req.replicate = true;
  const auto frame = wire::encode(req);

  std::vector<wire::Member> candidates;
  candidates.push_back(outcome->owner);
  for (const wire::Member& m : outcome->successors)
    if (m != outcome->owner) candidates.push_back(m);
  for (const wire::Member& target : candidates) {
    const auto resp = request(target, frame);
    if (!resp) continue;
    const auto decoded = wire::decode_announce_response(*resp);
    if (decoded && decoded->stored) return true;
  }
  return false;
}

std::optional<wire::StatusResponse> Client::status(
    const wire::Member& node) const {
  const auto resp = request(node, wire::encode(wire::StatusRequest{}));
  if (!resp) return std::nullopt;
  return wire::decode_status_response(*resp);
}

std::vector<net::PeerEndpoint> resolve_peers(
    std::uint64_t file_id, const ClientConfig& config,
    const std::vector<net::PeerEndpoint>& static_fallback, int* hops_out) {
  const Client client(config);
  std::vector<net::PeerEndpoint> peers;
  for (const wire::Provider& p : client.resolve(file_id, hops_out)) {
    net::PeerEndpoint endpoint;
    endpoint.host = p.host;
    endpoint.port = p.port;
    endpoint.peer_id = p.peer_id;
    peers.push_back(std::move(endpoint));
  }
  if (peers.empty()) peers = static_fallback;
  return net::dedup_endpoints(std::move(peers));
}

}  // namespace fairshare::disco
