// Client side of the discovery protocol: iterative lookups, announces,
// resolves, status — one short-lived blocking connection per request.
//
// The client owns the routing walk (that is what makes Chord hops real
// network round-trips): it asks a seed for one route_step, then the
// returned node, and so on until a node answers `done`.  Any hop that
// cannot be dialed restarts the walk from the next configured seed, so a
// killed discovery node costs retries, not failure, as long as one seed
// lives.  Resolution then queries the owner and — when the owner is the
// casualty — its successor replicas from the same lookup response.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "disco/wire.hpp"
#include "net/download_client.hpp"

namespace fairshare::disco {

struct ClientConfig {
  /// Discovery nodes to start walks from, tried in order per request.
  std::vector<wire::Member> seeds;
  int io_timeout_ms = 2'000;
  /// Routing-walk bound (a correct ring of n nodes needs O(log n)).
  int max_hops = 32;
};

/// A completed lookup: the owner, its successor replicas, and how many
/// network round-trips the walk took (the O(log n) figure tests assert).
struct LookupOutcome {
  wire::Member owner;
  std::vector<wire::Member> successors;
  int hops = 0;
};

class Client {
 public:
  explicit Client(ClientConfig config);

  /// Walk the ring to the owner of `key`.  nullopt when no seed is
  /// reachable or the walk exceeds max_hops.
  std::optional<LookupOutcome> lookup(dht::RingId key) const;

  /// Providers of `file_id`, via lookup + resolve against the owner (and
  /// its successors when the owner is unreachable or empty-handed).
  /// `hops_out`, when given, receives the routing hop count.
  std::vector<wire::Provider> resolve(std::uint64_t file_id,
                                      int* hops_out = nullptr) const;

  /// Write a provider record for `file_id` to its owner.
  bool announce(std::uint64_t file_id, const wire::Provider& provider,
                std::uint32_t ttl_ms) const;

  /// Introspect one discovery node directly (no routing).
  std::optional<wire::StatusResponse> status(const wire::Member& node) const;

 private:
  std::optional<std::vector<std::byte>> request(
      const wire::Member& target, std::span<const std::byte> frame) const;

  ClientConfig config_;
};

/// Resolve `file_id` through the DHT and convert the provider records to
/// download endpoints (identity keys are not distributed through
/// discovery; federated servers run with require_auth off or distribute
/// keys out of band).  Falls back to `static_fallback` when discovery
/// yields nothing, mirroring a client configured with both.  The result
/// is deduplicated by endpoint.
std::vector<net::PeerEndpoint> resolve_peers(
    std::uint64_t file_id, const ClientConfig& config,
    const std::vector<net::PeerEndpoint>& static_fallback = {},
    int* hops_out = nullptr);

}  // namespace fairshare::disco
