#include "disco/wire.hpp"

#include <bit>

namespace fairshare::disco::wire {

namespace {

// Hostnames on the wire are length-prefixed (u16); anything longer than a
// DNS name can be is malformed by construction.
constexpr std::size_t kMaxHostLen = 255;

class Writer {
 public:
  explicit Writer(MessageType type) { put_u8(static_cast<std::uint8_t>(type)); }

  void put_u8(std::uint8_t v) { buf_.push_back(std::byte{v}); }

  void put_u16(std::uint16_t v) {
    for (int i = 0; i < 2; ++i)
      buf_.push_back(std::byte{static_cast<std::uint8_t>(v >> (8 * i))});
  }

  void put_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      buf_.push_back(std::byte{static_cast<std::uint8_t>(v >> (8 * i))});
  }

  void put_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      buf_.push_back(std::byte{static_cast<std::uint8_t>(v >> (8 * i))});
  }

  void put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }

  void put_host(const std::string& host) {
    const std::size_t len = std::min(host.size(), kMaxHostLen);
    put_u16(static_cast<std::uint16_t>(len));
    for (std::size_t i = 0; i < len; ++i)
      buf_.push_back(static_cast<std::byte>(host[i]));
  }

  void put_member(const Member& m) {
    put_u64(m.id);
    put_host(m.host);
    put_u16(m.port);
  }

  void put_provider(const Provider& p) {
    put_u64(p.peer_id);
    put_host(p.host);
    put_u16(p.port);
  }

  std::vector<std::byte> take() { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  bool ok() const { return ok_; }
  bool at_end() const { return ok_ && pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

  bool expect_type(MessageType type) {
    return get_u8() == static_cast<std::uint8_t>(type) && ok_;
  }

  std::uint8_t get_u8() {
    if (!take(1)) return 0;
    return std::to_integer<std::uint8_t>(data_[pos_ - 1]);
  }

  std::uint16_t get_u16() {
    if (!take(2)) return 0;
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i)
      v = static_cast<std::uint16_t>(
          v | static_cast<std::uint16_t>(
                  std::to_integer<std::uint8_t>(data_[pos_ - 2 + i]))
                  << (8 * i));
    return v;
  }

  std::uint32_t get_u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(
               std::to_integer<std::uint8_t>(data_[pos_ - 4 + i]))
           << (8 * i);
    return v;
  }

  std::uint64_t get_u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               std::to_integer<std::uint8_t>(data_[pos_ - 8 + i]))
           << (8 * i);
    return v;
  }

  double get_f64() { return std::bit_cast<double>(get_u64()); }

  bool get_host(std::string& out) {
    const std::uint16_t len = get_u16();
    if (!ok_ || len > kMaxHostLen || !take(len)) {
      ok_ = false;
      return false;
    }
    out.resize(len);
    for (std::size_t i = 0; i < len; ++i)
      out[i] = static_cast<char>(
          std::to_integer<std::uint8_t>(data_[pos_ - len + i]));
    return true;
  }

  bool get_member(Member& m) {
    m.id = get_u64();
    if (!get_host(m.host)) return false;
    m.port = get_u16();
    return ok_;
  }

  bool get_provider(Provider& p) {
    p.peer_id = get_u64();
    if (!get_host(p.host)) return false;
    p.port = get_u16();
    return ok_;
  }

 private:
  bool take(std::size_t n) {
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// A corrupt element count must not allocate unbounded scratch before the
// per-element reads fail: every variable-length list is rechecked against
// a conservative minimum element size.
bool plausible_count(const Reader& r, std::size_t count,
                     std::size_t min_elem_bytes) {
  return count * min_elem_bytes <= r.remaining();
}

constexpr std::size_t kMinMemberBytes = 8 + 2 + 2;    // id + len + port
constexpr std::size_t kMinProviderBytes = 8 + 2 + 2;  // id + len + port
constexpr std::size_t kLedgerEntryBytes = 8 + 8 + 8;

}  // namespace

// --------------------------------------------------------------- encoders

std::vector<std::byte> encode(const LookupRequest& msg) {
  Writer w(MessageType::lookup_request);
  w.put_u64(msg.key);
  return w.take();
}

std::vector<std::byte> encode(const LookupResponse& msg) {
  Writer w(MessageType::lookup_response);
  w.put_u8(msg.done ? 1 : 0);
  w.put_member(msg.target);
  w.put_u16(static_cast<std::uint16_t>(msg.successors.size()));
  for (const Member& m : msg.successors) w.put_member(m);
  return w.take();
}

std::vector<std::byte> encode(const AnnounceRequest& msg) {
  Writer w(MessageType::announce_request);
  w.put_u64(msg.file_id);
  w.put_provider(msg.provider);
  w.put_u32(msg.ttl_ms);
  w.put_u8(msg.replicate ? 1 : 0);
  return w.take();
}

std::vector<std::byte> encode(const AnnounceResponse& msg) {
  Writer w(MessageType::announce_response);
  w.put_u8(msg.stored ? 1 : 0);
  w.put_u8(msg.replicas);
  return w.take();
}

std::vector<std::byte> encode(const ResolveRequest& msg) {
  Writer w(MessageType::resolve_request);
  w.put_u64(msg.file_id);
  return w.take();
}

std::vector<std::byte> encode(const ResolveResponse& msg) {
  Writer w(MessageType::resolve_response);
  w.put_u16(static_cast<std::uint16_t>(msg.providers.size()));
  for (const Provider& p : msg.providers) w.put_provider(p);
  return w.take();
}

std::vector<std::byte> encode(const JoinRequest& msg) {
  Writer w(MessageType::join_request);
  w.put_member(msg.joiner);
  return w.take();
}

std::vector<std::byte> encode(const Gossip& msg) {
  Writer w(MessageType::gossip);
  w.put_u8(msg.reply ? 1 : 0);
  w.put_member(msg.from);
  w.put_u16(static_cast<std::uint16_t>(msg.members.size()));
  for (const Member& m : msg.members) w.put_member(m);
  w.put_u32(static_cast<std::uint32_t>(msg.ledger.size()));
  for (const auto& e : msg.ledger) {
    w.put_u64(e.user_id);
    w.put_u64(e.origin);
    w.put_f64(e.total);
  }
  return w.take();
}

std::vector<std::byte> encode(const StatusRequest&) {
  Writer w(MessageType::status_request);
  return w.take();
}

std::vector<std::byte> encode(const StatusResponse& msg) {
  Writer w(MessageType::status_response);
  w.put_member(msg.self);
  w.put_u16(static_cast<std::uint16_t>(msg.members.size()));
  for (const Member& m : msg.members) w.put_member(m);
  w.put_u32(msg.provider_records);
  w.put_u32(msg.ledger_entries);
  w.put_u64(msg.gossip_rounds);
  w.put_u64(msg.lookups_served);
  return w.take();
}

// --------------------------------------------------------------- decoders

std::optional<LookupRequest> decode_lookup_request(
    std::span<const std::byte> frame) {
  Reader r(frame);
  if (!r.expect_type(MessageType::lookup_request)) return std::nullopt;
  LookupRequest msg;
  msg.key = r.get_u64();
  if (!r.at_end()) return std::nullopt;
  return msg;
}

std::optional<LookupResponse> decode_lookup_response(
    std::span<const std::byte> frame) {
  Reader r(frame);
  if (!r.expect_type(MessageType::lookup_response)) return std::nullopt;
  LookupResponse msg;
  msg.done = r.get_u8() != 0;
  if (!r.get_member(msg.target)) return std::nullopt;
  const std::uint16_t n = r.get_u16();
  if (!r.ok() || !plausible_count(r, n, kMinMemberBytes)) return std::nullopt;
  msg.successors.resize(n);
  for (Member& m : msg.successors)
    if (!r.get_member(m)) return std::nullopt;
  if (!r.at_end()) return std::nullopt;
  return msg;
}

std::optional<AnnounceRequest> decode_announce_request(
    std::span<const std::byte> frame) {
  Reader r(frame);
  if (!r.expect_type(MessageType::announce_request)) return std::nullopt;
  AnnounceRequest msg;
  msg.file_id = r.get_u64();
  if (!r.get_provider(msg.provider)) return std::nullopt;
  msg.ttl_ms = r.get_u32();
  msg.replicate = r.get_u8() != 0;
  if (!r.at_end()) return std::nullopt;
  return msg;
}

std::optional<AnnounceResponse> decode_announce_response(
    std::span<const std::byte> frame) {
  Reader r(frame);
  if (!r.expect_type(MessageType::announce_response)) return std::nullopt;
  AnnounceResponse msg;
  msg.stored = r.get_u8() != 0;
  msg.replicas = r.get_u8();
  if (!r.at_end()) return std::nullopt;
  return msg;
}

std::optional<ResolveRequest> decode_resolve_request(
    std::span<const std::byte> frame) {
  Reader r(frame);
  if (!r.expect_type(MessageType::resolve_request)) return std::nullopt;
  ResolveRequest msg;
  msg.file_id = r.get_u64();
  if (!r.at_end()) return std::nullopt;
  return msg;
}

std::optional<ResolveResponse> decode_resolve_response(
    std::span<const std::byte> frame) {
  Reader r(frame);
  if (!r.expect_type(MessageType::resolve_response)) return std::nullopt;
  ResolveResponse msg;
  const std::uint16_t n = r.get_u16();
  if (!r.ok() || !plausible_count(r, n, kMinProviderBytes))
    return std::nullopt;
  msg.providers.resize(n);
  for (Provider& p : msg.providers)
    if (!r.get_provider(p)) return std::nullopt;
  if (!r.at_end()) return std::nullopt;
  return msg;
}

std::optional<JoinRequest> decode_join_request(
    std::span<const std::byte> frame) {
  Reader r(frame);
  if (!r.expect_type(MessageType::join_request)) return std::nullopt;
  JoinRequest msg;
  if (!r.get_member(msg.joiner)) return std::nullopt;
  if (!r.at_end()) return std::nullopt;
  return msg;
}

std::optional<Gossip> decode_gossip(std::span<const std::byte> frame) {
  Reader r(frame);
  if (!r.expect_type(MessageType::gossip)) return std::nullopt;
  Gossip msg;
  msg.reply = r.get_u8() != 0;
  if (!r.get_member(msg.from)) return std::nullopt;
  const std::uint16_t nm = r.get_u16();
  if (!r.ok() || !plausible_count(r, nm, kMinMemberBytes)) return std::nullopt;
  msg.members.resize(nm);
  for (Member& m : msg.members)
    if (!r.get_member(m)) return std::nullopt;
  const std::uint32_t nl = r.get_u32();
  if (!r.ok() || !plausible_count(r, nl, kLedgerEntryBytes))
    return std::nullopt;
  msg.ledger.resize(nl);
  for (auto& e : msg.ledger) {
    e.user_id = r.get_u64();
    e.origin = r.get_u64();
    e.total = r.get_f64();
  }
  if (!r.at_end()) return std::nullopt;
  return msg;
}

std::optional<StatusRequest> decode_status_request(
    std::span<const std::byte> frame) {
  Reader r(frame);
  if (!r.expect_type(MessageType::status_request)) return std::nullopt;
  if (!r.at_end()) return std::nullopt;
  return StatusRequest{};
}

std::optional<StatusResponse> decode_status_response(
    std::span<const std::byte> frame) {
  Reader r(frame);
  if (!r.expect_type(MessageType::status_response)) return std::nullopt;
  StatusResponse msg;
  if (!r.get_member(msg.self)) return std::nullopt;
  const std::uint16_t n = r.get_u16();
  if (!r.ok() || !plausible_count(r, n, kMinMemberBytes)) return std::nullopt;
  msg.members.resize(n);
  for (Member& m : msg.members)
    if (!r.get_member(m)) return std::nullopt;
  msg.provider_records = r.get_u32();
  msg.ledger_entries = r.get_u32();
  msg.gossip_rounds = r.get_u64();
  msg.lookups_served = r.get_u64();
  if (!r.at_end()) return std::nullopt;
  return msg;
}

std::optional<MessageType> peek_type(std::span<const std::byte> frame) {
  if (frame.empty()) return std::nullopt;
  const auto tag = std::to_integer<std::uint8_t>(frame[0]);
  if (tag < static_cast<std::uint8_t>(MessageType::lookup_request) ||
      tag > static_cast<std::uint8_t>(MessageType::status_response))
    return std::nullopt;
  return static_cast<MessageType>(tag);
}

}  // namespace fairshare::disco::wire
