#include "disco/node.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "net/peer_server.hpp"  // default_net_backend

#ifdef __linux__
#include <sys/epoll.h>
#endif

namespace fairshare::disco {

namespace {

using Clock = std::chrono::steady_clock;

// Deterministic partner selection without dragging in an RNG dependency:
// one LCG step per draw (quality is irrelevant — any spread works for
// picking a gossip partner).
std::uint64_t lcg_step(std::uint64_t& state) {
  state = state * 6364136223846793005ull + 1442695040888963407ull;
  return state >> 33;
}

}  // namespace

// One inbound connection on the event loop: responses queue in `outq`
// until the transport accepts them, fault-injected delays park the fd on
// a timer (mirroring the PeerServer reactor's handling).
struct DiscoveryNode::Conn {
  int fd = -1;
  std::unique_ptr<net::Transport> transport;
  std::deque<std::vector<std::byte>> outq;
  bool registered = false;
  std::uint32_t interest = 0;
  net::EventLoop::TimerId retry_timer = 0;
  Clock::time_point last_active;
};

DiscoveryNode::DiscoveryNode(NodeConfig config)
    : config_(std::move(config)),
      registry_(config_.registry ? config_.registry
                                 : &obs::MetricsRegistry::global()) {}

DiscoveryNode::~DiscoveryNode() { stop(); }

bool DiscoveryNode::start() {
  auto listener = net::Listener::bind_local(config_.port);
  if (!listener) return false;
  listener_ = std::move(*listener);
  port_ = listener_.port();

  self_.host = config_.host;
  self_.port = port_;
  self_.id = config_.ring_id != 0
                 ? config_.ring_id
                 : dht::ring_hash(config_.host + ":" + std::to_string(port_));
  origin_ = config_.origin_id != 0 ? config_.origin_id : self_.id;
  gossip_cursor_ = config_.rng_seed ^ self_.id;

  const obs::LabelList node = {{"node", std::to_string(self_.id)}};
  m_lookups_ = &registry_->counter("fairshare_disco_lookups_total", node);
  m_announces_ = &registry_->counter("fairshare_disco_announces_total", node);
  m_resolves_ = &registry_->counter("fairshare_disco_resolves_total", node);
  m_gossip_rounds_ =
      &registry_->counter("fairshare_disco_gossip_rounds_total", node);
  m_members_dropped_ =
      &registry_->counter("fairshare_disco_members_dropped_total", node);
  m_members_ = &registry_->gauge("fairshare_disco_members", node);
  m_provider_records_ =
      &registry_->gauge("fairshare_disco_provider_records", node);
  m_ledger_entries_ = &registry_->gauge("fairshare_disco_ledger_entries", node);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    members_[self_.id] = self_;
    ring_.join(self_.id);
    update_mesh_gauges_locked();
  }

  outbound_ = std::make_unique<util::ThreadPool>(4);
  running_ = true;
  join_mesh();  // best-effort: unreachable seeds leave a single-node ring

  // Same serving-core resolution as PeerServer, so FAIRSHARE_NET_BACKEND=
  // threads pins the CI matrix onto the blocking fallback here too.
  use_loop_ = net::default_net_backend() == net::NetBackend::epoll;
  if (use_loop_ && loop_start()) return true;
  use_loop_ = false;
  return fallback_start();
}

void DiscoveryNode::stop() {
  if (!running_.exchange(false)) return;
  if (use_loop_)
    loop_stop();
  else
    fallback_stop();
  inbound_.reset();   // joins fallback session handlers
  outbound_.reset();  // joins in-flight gossip/replicate jobs
  listener_.close();
}

// ------------------------------------------------------------ mesh state

std::size_t DiscoveryNode::merge_members_locked(
    const std::vector<wire::Member>& members) {
  std::size_t learned = 0;
  for (const wire::Member& m : members) {
    if (m.id == 0 || m.port == 0) continue;  // malformed gossip rows
    const auto [it, inserted] = members_.emplace(m.id, m);
    if (inserted) {
      ring_.join(m.id);
      ++learned;
    }
  }
  if (learned > 0) update_mesh_gauges_locked();
  return learned;
}

wire::Gossip DiscoveryNode::local_view_locked(bool reply) {
  wire::Gossip g;
  g.reply = reply;
  g.from = self_;
  g.members.reserve(members_.size());
  for (const auto& [id, m] : members_) g.members.push_back(m);
  g.ledger = ledger_.snapshot();
  return g;
}

std::vector<wire::Member> DiscoveryNode::successor_members_locked(
    dht::RingId node) {
  std::vector<wire::Member> out;
  if (!ring_.contains(node)) return out;
  for (const dht::RingId id : ring_.successor_list(node)) {
    const auto it = members_.find(id);
    if (it != members_.end()) out.push_back(it->second);
  }
  return out;
}

void DiscoveryNode::update_mesh_gauges_locked() {
  m_members_->set(static_cast<double>(members_.size()));
  std::size_t records = 0;
  for (const auto& [file, entries] : providers_) records += entries.size();
  m_provider_records_->set(static_cast<double>(records));
  m_ledger_entries_->set(static_cast<double>(ledger_.size()));
}

wire::StatusResponse DiscoveryNode::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  wire::StatusResponse s;
  s.self = self_;
  s.members.reserve(members_.size());
  for (const auto& [id, m] : members_) s.members.push_back(m);
  for (const auto& [file, entries] : providers_)
    s.provider_records += static_cast<std::uint32_t>(entries.size());
  s.ledger_entries = static_cast<std::uint32_t>(ledger_.size());
  s.gossip_rounds = gossip_rounds_.load();
  s.lookups_served = lookups_served_.load();
  return s;
}

std::vector<wire::Provider> DiscoveryNode::stored_providers(
    std::uint64_t file_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<wire::Provider> out;
  const auto it = providers_.find(file_id);
  if (it == providers_.end()) return out;
  const auto now = Clock::now();
  for (const auto& [peer, entry] : it->second)
    if (entry.expires > now) out.push_back(entry.provider);
  return out;
}

// --------------------------------------------------------- request logic

std::optional<std::vector<std::byte>> DiscoveryNode::handle_frame(
    std::span<const std::byte> frame) {
  const auto type = wire::peek_type(frame);
  if (!type) return std::nullopt;
  switch (*type) {
    case wire::MessageType::lookup_request: {
      const auto msg = wire::decode_lookup_request(frame);
      if (!msg) return std::nullopt;
      return handle_lookup(*msg);
    }
    case wire::MessageType::announce_request: {
      const auto msg = wire::decode_announce_request(frame);
      if (!msg) return std::nullopt;
      return handle_announce(*msg);
    }
    case wire::MessageType::resolve_request: {
      const auto msg = wire::decode_resolve_request(frame);
      if (!msg) return std::nullopt;
      return handle_resolve(*msg);
    }
    case wire::MessageType::join_request: {
      const auto msg = wire::decode_join_request(frame);
      if (!msg) return std::nullopt;
      return handle_join(*msg);
    }
    case wire::MessageType::gossip: {
      const auto msg = wire::decode_gossip(frame);
      if (!msg) return std::nullopt;
      return handle_gossip(*msg);
    }
    case wire::MessageType::status_request: {
      if (!wire::decode_status_request(frame)) return std::nullopt;
      return handle_status();
    }
    default:
      return std::nullopt;  // a response tag inbound is a protocol error
  }
}

std::vector<std::byte> DiscoveryNode::handle_lookup(
    const wire::LookupRequest& msg) {
  ++lookups_served_;
  m_lookups_->add(1);
  wire::LookupResponse resp;
  std::lock_guard<std::mutex> lock(mutex_);
  const dht::RouteStep step = ring_.route_step(msg.key, self_.id);
  resp.done = step.done;
  const auto it = members_.find(step.next);
  resp.target = it != members_.end() ? it->second : self_;
  if (step.done) resp.successors = successor_members_locked(step.next);
  return wire::encode(resp);
}

std::vector<std::byte> DiscoveryNode::handle_announce(
    const wire::AnnounceRequest& msg) {
  m_announces_->add(1);
  wire::AnnounceResponse resp;
  if (msg.provider.port == 0 || msg.ttl_ms == 0)
    return wire::encode(resp);  // stored=false
  std::vector<wire::Member> replicas;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    providers_[msg.file_id][msg.provider.peer_id] = {
        msg.provider,
        Clock::now() + std::chrono::milliseconds(msg.ttl_ms)};
    if (msg.replicate) replicas = successor_members_locked(self_.id);
    update_mesh_gauges_locked();
  }
  resp.stored = true;
  resp.replicas = static_cast<std::uint8_t>(replicas.size());
  if (!replicas.empty()) {
    wire::AnnounceRequest copy = msg;
    copy.replicate = false;  // replicas must not cascade
    outbound_->submit([this, copy, replicas] {
      replicate_record(copy, replicas);
    });
  }
  return wire::encode(resp);
}

std::vector<std::byte> DiscoveryNode::handle_resolve(
    const wire::ResolveRequest& msg) {
  m_resolves_->add(1);
  wire::ResolveResponse resp;
  resp.providers = stored_providers(msg.file_id);
  return wire::encode(resp);
}

std::vector<std::byte> DiscoveryNode::handle_join(
    const wire::JoinRequest& msg) {
  wire::Gossip reply;
  std::vector<wire::Member> notify;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    merge_members_locked({msg.joiner});
    reply = local_view_locked(/*reply=*/true);
    // Tell the rest of the mesh about the joiner now rather than waiting
    // out a gossip period per hop — small federations converge instantly.
    for (const auto& [id, m] : members_)
      if (id != self_.id && id != msg.joiner.id) notify.push_back(m);
  }
  for (const wire::Member& target : notify) {
    outbound_->submit([this, target] {
      wire::Gossip push;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        push = local_view_locked(/*reply=*/false);
      }
      const auto resp = request(target, wire::encode(push));
      if (!resp) return;
      const auto merged = wire::decode_gossip(*resp);
      if (!merged) return;
      std::lock_guard<std::mutex> lock(mutex_);
      merge_members_locked(merged->members);
      ledger_.merge(merged->ledger);
      update_mesh_gauges_locked();
    });
  }
  return wire::encode(reply);
}

std::vector<std::byte> DiscoveryNode::handle_gossip(const wire::Gossip& msg) {
  std::lock_guard<std::mutex> lock(mutex_);
  merge_members_locked(msg.members);
  merge_members_locked({msg.from});
  ledger_.merge(msg.ledger);
  update_mesh_gauges_locked();
  return wire::encode(local_view_locked(/*reply=*/true));
}

std::vector<std::byte> DiscoveryNode::handle_status() {
  return wire::encode(status());
}

// ------------------------------------------------------- outbound (pool)

std::unique_ptr<net::Transport> DiscoveryNode::dial(
    const wire::Member& target) {
  auto socket = net::Socket::connect_to(target.host, target.port);
  if (!socket) return nullptr;
  auto transport = std::make_unique<net::Socket>(std::move(*socket));
  transport->set_recv_timeout(config_.io_timeout_ms);
  transport->set_send_timeout(config_.io_timeout_ms);
  return transport;
}

std::optional<std::vector<std::byte>> DiscoveryNode::request(
    const wire::Member& target, std::span<const std::byte> frame) {
  auto transport = dial(target);
  if (!transport) {
    note_dial_result(target, false);
    return std::nullopt;
  }
  note_dial_result(target, true);
  if (!net::send_frame(*transport, frame)) return std::nullopt;
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(config_.io_timeout_ms);
  while (running_) {
    auto resp = net::recv_frame(*transport, kMaxFrame);
    if (resp) return resp;
    if (!transport->timed_out() || Clock::now() >= deadline)
      return std::nullopt;
  }
  return std::nullopt;
}

void DiscoveryNode::note_dial_result(const wire::Member& target, bool ok) {
  if (target.id == 0 || target.id == self_.id) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (ok) {
    dial_failures_.erase(target.id);
    return;
  }
  if (++dial_failures_[target.id] < kDialFailureLimit) return;
  // Declared dead: drop it from the local view; provider records it held
  // keep being answered by its successors until re-announce refresh moves
  // them to the new owner.
  dial_failures_.erase(target.id);
  if (members_.erase(target.id) > 0) {
    ring_.leave(target.id);
    m_members_dropped_->add(1);
    update_mesh_gauges_locked();
  }
}

void DiscoveryNode::gossip_round() {
  wire::Member target;
  wire::Gossip push;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (members_.size() < 2) return;
    // Pick a random member other than self.
    std::vector<const wire::Member*> others;
    others.reserve(members_.size() - 1);
    for (const auto& [id, m] : members_)
      if (id != self_.id) others.push_back(&m);
    target = *others[lcg_step(gossip_cursor_) % others.size()];
    push = local_view_locked(/*reply=*/false);
  }
  ++gossip_rounds_;
  m_gossip_rounds_->add(1);
  const auto resp = request(target, wire::encode(push));
  if (!resp) return;
  const auto merged = wire::decode_gossip(*resp);
  if (!merged || !merged->reply) return;
  std::lock_guard<std::mutex> lock(mutex_);
  merge_members_locked(merged->members);
  ledger_.merge(merged->ledger);
  update_mesh_gauges_locked();
}

void DiscoveryNode::gossip_now() { gossip_round(); }

void DiscoveryNode::replicate_record(
    const wire::AnnounceRequest& record,
    const std::vector<wire::Member>& replicas) {
  const auto frame = wire::encode(record);
  for (const wire::Member& target : replicas) {
    if (!running_) return;
    request(target, frame);  // best-effort; TTL refresh repairs misses
  }
}

bool DiscoveryNode::announce_to_owner(std::uint64_t file_id,
                                      const wire::Provider& p) {
  wire::AnnounceRequest req;
  req.file_id = file_id;
  req.provider = p;
  req.ttl_ms = config_.provider_ttl_ms;
  req.replicate = true;

  bool local = false;
  std::vector<wire::Member> targets;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const dht::RingId owner = ring_.successor(file_key(file_id));
    if (owner == self_.id) {
      local = true;
    } else {
      const auto it = members_.find(owner);
      if (it != members_.end()) targets.push_back(it->second);
      // The owner may be freshly dead: its successors are the fallback
      // write targets (replicate=true there re-covers the shifted range).
      for (const wire::Member& m : successor_members_locked(owner))
        targets.push_back(m);
    }
  }
  if (local) {
    handle_announce(req);  // stores + pushes replicas
    return true;
  }
  const auto frame = wire::encode(req);
  for (const wire::Member& target : targets) {
    const auto resp = request(target, frame);
    if (!resp) continue;
    const auto decoded = wire::decode_announce_response(*resp);
    if (decoded && decoded->stored) return true;
  }
  return false;
}

void DiscoveryNode::reannounce_all() {
  std::vector<std::pair<std::uint64_t, wire::Provider>> provides;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    provides = local_provides_;
  }
  for (const auto& [file_id, provider] : provides) {
    if (!running_) return;
    announce_to_owner(file_id, provider);
  }
}

bool DiscoveryNode::join_mesh() {
  if (config_.seeds.empty()) return true;
  const auto frame = wire::encode(wire::JoinRequest{self_});
  for (const wire::Member& seed : config_.seeds) {
    const auto resp = request(seed, frame);
    if (!resp) continue;
    const auto view = wire::decode_gossip(*resp);
    if (!view) continue;
    std::lock_guard<std::mutex> lock(mutex_);
    merge_members_locked(view->members);
    merge_members_locked({view->from});
    ledger_.merge(view->ledger);
    update_mesh_gauges_locked();
    return true;
  }
  return false;
}

void DiscoveryNode::sweep_expired() {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto now = Clock::now();
  for (auto it = providers_.begin(); it != providers_.end();) {
    auto& entries = it->second;
    for (auto e = entries.begin(); e != entries.end();)
      e = e->second.expires <= now ? entries.erase(e) : std::next(e);
    it = entries.empty() ? providers_.erase(it) : std::next(it);
  }
  update_mesh_gauges_locked();
}

// ------------------------------------------------------------ DiscoveryHook

bool DiscoveryNode::announce_file(std::uint64_t file_id,
                                  const net::ServeEndpoint& endpoint) {
  wire::Provider p;
  p.peer_id = endpoint.peer_id;
  p.host = endpoint.host;
  p.port = endpoint.port;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    local_provides_.emplace_back(file_id, p);
  }
  return announce_to_owner(file_id, p);
}

void DiscoveryNode::publish_contribution(std::uint64_t user_id,
                                         double total) {
  ledger_.record(user_id, origin_, total);
}

double DiscoveryNode::swarm_contribution(std::uint64_t user_id) const {
  return ledger_.swarm_total(user_id, origin_);
}

// --------------------------------------------------- epoll serving core

#ifdef __linux__

bool DiscoveryNode::loop_start() {
  loop_ = std::make_unique<net::EventLoop>("disco." + std::to_string(port_),
                                           registry_);
  if (!loop_->valid()) return false;
  listener_.set_nonblocking(true);
  loop_->post([this] {
    loop_->add_fd(listener_.native_handle(), EPOLLIN,
                  [this](std::uint32_t) { accept_ready(); });
    if (config_.gossip_period_ms > 0) {
      loop_->add_periodic(
          std::uint64_t{config_.gossip_period_ms} * 1'000'000ull, [this] {
            // One round in flight at a time: a slow partner must not
            // stack queued rounds behind itself.
            if (gossip_inflight_.exchange(true)) return;
            outbound_->submit([this] {
              if (running_) gossip_round();
              gossip_inflight_ = false;
            });
          });
    }
    if (config_.reannounce_period_ms > 0) {
      loop_->add_periodic(
          std::uint64_t{config_.reannounce_period_ms} * 1'000'000ull,
          [this] { outbound_->submit([this] { reannounce_all(); }); });
    }
    const std::uint64_t sweep_ns =
        std::max<std::uint64_t>(config_.provider_ttl_ms / 2, 100) *
        1'000'000ull;
    loop_->add_periodic(sweep_ns, [this] {
      sweep_expired();
      // Idle inbound connections (a crashed client, a wedged wrapper)
      // must not accumulate: close anything quiet for 30 s.
      const auto cutoff = Clock::now() - std::chrono::seconds(30);
      std::vector<std::shared_ptr<Conn>> idle;
      for (const auto& [fd, c] : conns_)
        if (c->last_active < cutoff) idle.push_back(c);
      for (const auto& c : idle) close_conn(c);
    });
  });
  loop_thread_ = std::thread([this] { loop_->run(); });
  return true;
}

void DiscoveryNode::loop_stop() {
  if (!loop_) return;
  loop_->post([this] {
    std::vector<std::shared_ptr<Conn>> doomed;
    doomed.reserve(conns_.size());
    for (const auto& [fd, c] : conns_) doomed.push_back(c);
    for (const auto& c : doomed) close_conn(c);
    loop_->stop();
  });
  if (loop_thread_.joinable()) loop_thread_.join();
  loop_.reset();
}

void DiscoveryNode::accept_ready() {
  for (;;) {
    auto client = listener_.accept(/*timeout_ms=*/0);
    if (!client || !running_) return;
    client->set_nonblocking(true);
    const int fd = client->native_handle();
    std::unique_ptr<net::Transport> transport =
        std::make_unique<net::Socket>(std::move(*client));
    if (config_.transport_wrapper)
      transport = config_.transport_wrapper(std::move(transport));
    auto c = std::make_shared<Conn>();
    c->fd = fd;
    c->transport = std::move(transport);
    c->last_active = Clock::now();
    conns_[fd] = c;
    c->registered = true;
    c->interest = EPOLLIN;
    loop_->add_fd(fd, EPOLLIN, [this, c](std::uint32_t) { pump(c); });
    pump(c);  // the wrapper may already hold buffered input or refuse
  }
}

void DiscoveryNode::pump(const std::shared_ptr<Conn>& c) {
  if (!c->transport) return;  // already closed
  if (!running_) {
    close_conn(c);
    return;
  }
  const auto arm_retry = [this, &c](Clock::time_point release) {
    if (c->retry_timer) return;
    const auto delay = release - Clock::now();
    const std::int64_t ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(delay).count();
    c->retry_timer = loop_->add_timer_after(
        ns > 0 ? static_cast<std::uint64_t>(ns) + 500'000ull : 1,
        [this, c] {
          c->retry_timer = 0;
          pump(c);
        });
  };

  // Drain staged + queued responses.
  const auto flush = [&]() -> bool {  // false = connection gone
    for (;;) {
      if (c->transport->want_write()) {
        const net::IoStatus st = c->transport->try_flush();
        if (st == net::IoStatus::closed || st == net::IoStatus::error) {
          close_conn(c);
          return false;
        }
        if (st == net::IoStatus::blocked) return true;
      } else if (!c->outq.empty()) {
        const net::TryWrite r = c->transport->try_write_frame(c->outq.front());
        if (r.status == net::IoStatus::closed ||
            r.status == net::IoStatus::error) {
          close_conn(c);
          return false;
        }
        if (r.accepted) {
          c->outq.pop_front();
        } else {
          if (const auto release = c->transport->retry_after())
            arm_retry(*release);
          return true;
        }
      } else {
        return true;
      }
    }
  };

  if (!flush()) return;
  for (int i = 0; i < 16; ++i) {
    net::TryRead r = c->transport->try_read_frame(kMaxFrame);
    if (r.status == net::IoStatus::blocked) {
      if (const auto release = c->transport->retry_after())
        arm_retry(*release);
      break;
    }
    if (r.status != net::IoStatus::ok) {
      close_conn(c);
      return;
    }
    c->last_active = Clock::now();
    auto resp = handle_frame(r.frame);
    if (!resp) {
      close_conn(c);
      return;
    }
    c->outq.push_back(std::move(*resp));
  }
  if (!flush()) return;

  // Fault-delayed transports leave the interest set; the retry timer owns
  // the wakeup (level-triggered epoll would busy-spin otherwise).
  if (c->transport->retry_after().has_value()) {
    if (c->registered) {
      loop_->remove_fd(c->fd);
      c->registered = false;
    }
    return;
  }
  std::uint32_t want = EPOLLIN;
  if (c->transport->want_write() || !c->outq.empty()) want |= EPOLLOUT;
  if (!c->registered) {
    c->registered = true;
    c->interest = want;
    loop_->add_fd(c->fd, want, [this, c](std::uint32_t) { pump(c); });
  } else if (want != c->interest) {
    c->interest = want;
    loop_->modify_fd(c->fd, want);
  }
}

void DiscoveryNode::close_conn(const std::shared_ptr<Conn>& c) {
  if (!c->transport) return;
  if (c->retry_timer) {
    loop_->cancel_timer(c->retry_timer);
    c->retry_timer = 0;
  }
  if (c->registered) {
    loop_->remove_fd(c->fd);
    c->registered = false;
  }
  c->transport->close();
  c->transport.reset();
  conns_.erase(c->fd);
}

#else  // !__linux__

bool DiscoveryNode::loop_start() { return false; }
void DiscoveryNode::loop_stop() {}
void DiscoveryNode::accept_ready() {}
void DiscoveryNode::pump(const std::shared_ptr<Conn>&) {}
void DiscoveryNode::close_conn(const std::shared_ptr<Conn>&) {}

#endif

// ------------------------------------------- portable blocking fallback

bool DiscoveryNode::fallback_start() {
  inbound_ = std::make_unique<util::ThreadPool>(8);
  accept_thread_ = std::thread([this] { fallback_accept_loop(); });
  return true;
}

void DiscoveryNode::fallback_stop() {
  if (accept_thread_.joinable()) accept_thread_.join();
}

void DiscoveryNode::fallback_accept_loop() {
  const auto period = [](std::uint32_t ms) {
    return std::chrono::milliseconds(ms > 0 ? ms : 1'000'000);
  };
  auto next_gossip = Clock::now() + period(config_.gossip_period_ms);
  auto next_reannounce = Clock::now() + period(config_.reannounce_period_ms);
  auto next_sweep =
      Clock::now() + std::chrono::milliseconds(
                         std::max<std::uint32_t>(config_.provider_ttl_ms / 2,
                                                 100));
  while (running_) {
    const auto now = Clock::now();
    if (config_.gossip_period_ms > 0 && now >= next_gossip) {
      next_gossip = now + period(config_.gossip_period_ms);
      if (!gossip_inflight_.exchange(true)) {
        outbound_->submit([this] {
          if (running_) gossip_round();
          gossip_inflight_ = false;
        });
      }
    }
    if (config_.reannounce_period_ms > 0 && now >= next_reannounce) {
      next_reannounce = now + period(config_.reannounce_period_ms);
      outbound_->submit([this] { reannounce_all(); });
    }
    if (now >= next_sweep) {
      next_sweep = now + std::chrono::milliseconds(std::max<std::uint32_t>(
                             config_.provider_ttl_ms / 2, 100));
      sweep_expired();
    }
    auto client = listener_.accept(/*timeout_ms=*/50);
    if (!client) continue;
    client->set_recv_timeout(100);
    client->set_send_timeout(config_.io_timeout_ms);
    std::unique_ptr<net::Transport> transport =
        std::make_unique<net::Socket>(std::move(*client));
    if (config_.transport_wrapper)
      transport = config_.transport_wrapper(std::move(transport));
    std::shared_ptr<net::Transport> shared = std::move(transport);
    inbound_->submit([this, shared] {
      auto idle_deadline = Clock::now() + std::chrono::seconds(5);
      while (running_ && Clock::now() < idle_deadline) {
        auto frame = net::recv_frame(*shared, kMaxFrame);
        if (!frame) {
          if (shared->timed_out()) continue;  // clean poll timeout
          break;
        }
        const auto resp = handle_frame(*frame);
        if (!resp || !net::send_frame(*shared, *resp)) break;
        idle_deadline = Clock::now() + std::chrono::seconds(5);
      }
      shared->close();
    });
  }
}

}  // namespace fairshare::disco
