file(REMOVE_RECURSE
  "CMakeFiles/ext_dht_scaling.dir/ext_dht_scaling.cpp.o"
  "CMakeFiles/ext_dht_scaling.dir/ext_dht_scaling.cpp.o.d"
  "ext_dht_scaling"
  "ext_dht_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dht_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
