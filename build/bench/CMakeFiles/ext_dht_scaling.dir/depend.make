# Empty dependencies file for ext_dht_scaling.
# This may be replaced when dependencies are built.
