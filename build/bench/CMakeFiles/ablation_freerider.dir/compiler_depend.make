# Empty compiler generated dependencies file for ablation_freerider.
# This may be replaced when dependencies are built.
