file(REMOVE_RECURSE
  "CMakeFiles/ablation_freerider.dir/ablation_freerider.cpp.o"
  "CMakeFiles/ablation_freerider.dir/ablation_freerider.cpp.o.d"
  "ablation_freerider"
  "ablation_freerider.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_freerider.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
