file(REMOVE_RECURSE
  "CMakeFiles/ablation_fountain.dir/ablation_fountain.cpp.o"
  "CMakeFiles/ablation_fountain.dir/ablation_fountain.cpp.o.d"
  "ablation_fountain"
  "ablation_fountain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fountain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
