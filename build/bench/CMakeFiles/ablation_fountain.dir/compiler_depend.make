# Empty compiler generated dependencies file for ablation_fountain.
# This may be replaced when dependencies are built.
