# Empty compiler generated dependencies file for fig8b_dynamics.
# This may be replaced when dependencies are built.
