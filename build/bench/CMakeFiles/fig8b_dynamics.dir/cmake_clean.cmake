file(REMOVE_RECURSE
  "CMakeFiles/fig8b_dynamics.dir/fig8b_dynamics.cpp.o"
  "CMakeFiles/fig8b_dynamics.dir/fig8b_dynamics.cpp.o.d"
  "fig8b_dynamics"
  "fig8b_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8b_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
