# Empty dependencies file for fig1_asymmetry.
# This may be replaced when dependencies are built.
