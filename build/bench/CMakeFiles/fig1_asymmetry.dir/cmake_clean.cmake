file(REMOVE_RECURSE
  "CMakeFiles/fig1_asymmetry.dir/fig1_asymmetry.cpp.o"
  "CMakeFiles/fig1_asymmetry.dir/fig1_asymmetry.cpp.o.d"
  "fig1_asymmetry"
  "fig1_asymmetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_asymmetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
