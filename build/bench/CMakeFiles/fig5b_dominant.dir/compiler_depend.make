# Empty compiler generated dependencies file for fig5b_dominant.
# This may be replaced when dependencies are built.
