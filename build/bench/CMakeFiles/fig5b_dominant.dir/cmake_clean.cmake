file(REMOVE_RECURSE
  "CMakeFiles/fig5b_dominant.dir/fig5b_dominant.cpp.o"
  "CMakeFiles/fig5b_dominant.dir/fig5b_dominant.cpp.o.d"
  "fig5b_dominant"
  "fig5b_dominant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_dominant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
