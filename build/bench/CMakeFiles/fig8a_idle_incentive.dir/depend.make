# Empty dependencies file for fig8a_idle_incentive.
# This may be replaced when dependencies are built.
