file(REMOVE_RECURSE
  "CMakeFiles/fig8a_idle_incentive.dir/fig8a_idle_incentive.cpp.o"
  "CMakeFiles/fig8a_idle_incentive.dir/fig8a_idle_incentive.cpp.o.d"
  "fig8a_idle_incentive"
  "fig8a_idle_incentive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8a_idle_incentive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
