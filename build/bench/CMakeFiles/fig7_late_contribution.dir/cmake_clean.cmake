file(REMOVE_RECURSE
  "CMakeFiles/fig7_late_contribution.dir/fig7_late_contribution.cpp.o"
  "CMakeFiles/fig7_late_contribution.dir/fig7_late_contribution.cpp.o.d"
  "fig7_late_contribution"
  "fig7_late_contribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_late_contribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
