# Empty dependencies file for fig7_late_contribution.
# This may be replaced when dependencies are built.
