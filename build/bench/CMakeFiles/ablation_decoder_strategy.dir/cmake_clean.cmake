file(REMOVE_RECURSE
  "CMakeFiles/ablation_decoder_strategy.dir/ablation_decoder_strategy.cpp.o"
  "CMakeFiles/ablation_decoder_strategy.dir/ablation_decoder_strategy.cpp.o.d"
  "ablation_decoder_strategy"
  "ablation_decoder_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_decoder_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
