# Empty dependencies file for ablation_decoder_strategy.
# This may be replaced when dependencies are built.
