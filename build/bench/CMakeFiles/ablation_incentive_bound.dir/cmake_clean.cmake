file(REMOVE_RECURSE
  "CMakeFiles/ablation_incentive_bound.dir/ablation_incentive_bound.cpp.o"
  "CMakeFiles/ablation_incentive_bound.dir/ablation_incentive_bound.cpp.o.d"
  "ablation_incentive_bound"
  "ablation_incentive_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_incentive_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
