# Empty compiler generated dependencies file for ablation_incentive_bound.
# This may be replaced when dependencies are built.
