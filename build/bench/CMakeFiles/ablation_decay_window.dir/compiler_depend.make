# Empty compiler generated dependencies file for ablation_decay_window.
# This may be replaced when dependencies are built.
