file(REMOVE_RECURSE
  "CMakeFiles/ablation_decay_window.dir/ablation_decay_window.cpp.o"
  "CMakeFiles/ablation_decay_window.dir/ablation_decay_window.cpp.o.d"
  "ablation_decay_window"
  "ablation_decay_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_decay_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
