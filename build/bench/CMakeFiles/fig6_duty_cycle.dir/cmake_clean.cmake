file(REMOVE_RECURSE
  "CMakeFiles/fig6_duty_cycle.dir/fig6_duty_cycle.cpp.o"
  "CMakeFiles/fig6_duty_cycle.dir/fig6_duty_cycle.cpp.o.d"
  "fig6_duty_cycle"
  "fig6_duty_cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_duty_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
