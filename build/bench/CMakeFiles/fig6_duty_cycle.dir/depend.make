# Empty dependencies file for fig6_duty_cycle.
# This may be replaced when dependencies are built.
