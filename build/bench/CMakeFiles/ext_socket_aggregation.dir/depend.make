# Empty dependencies file for ext_socket_aggregation.
# This may be replaced when dependencies are built.
