file(REMOVE_RECURSE
  "CMakeFiles/ext_socket_aggregation.dir/ext_socket_aggregation.cpp.o"
  "CMakeFiles/ext_socket_aggregation.dir/ext_socket_aggregation.cpp.o.d"
  "ext_socket_aggregation"
  "ext_socket_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_socket_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
