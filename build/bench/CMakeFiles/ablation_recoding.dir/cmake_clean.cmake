file(REMOVE_RECURSE
  "CMakeFiles/ablation_recoding.dir/ablation_recoding.cpp.o"
  "CMakeFiles/ablation_recoding.dir/ablation_recoding.cpp.o.d"
  "ablation_recoding"
  "ablation_recoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_recoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
