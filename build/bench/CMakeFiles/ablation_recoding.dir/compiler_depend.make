# Empty compiler generated dependencies file for ablation_recoding.
# This may be replaced when dependencies are built.
