file(REMOVE_RECURSE
  "CMakeFiles/ext_innovation.dir/ext_innovation.cpp.o"
  "CMakeFiles/ext_innovation.dir/ext_innovation.cpp.o.d"
  "ext_innovation"
  "ext_innovation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_innovation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
