# Empty dependencies file for ext_innovation.
# This may be replaced when dependencies are built.
