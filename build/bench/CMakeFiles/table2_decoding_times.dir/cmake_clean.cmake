file(REMOVE_RECURSE
  "CMakeFiles/table2_decoding_times.dir/table2_decoding_times.cpp.o"
  "CMakeFiles/table2_decoding_times.dir/table2_decoding_times.cpp.o.d"
  "table2_decoding_times"
  "table2_decoding_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_decoding_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
