# Empty dependencies file for table2_decoding_times.
# This may be replaced when dependencies are built.
