# Empty dependencies file for ext_parallel_decode.
# This may be replaced when dependencies are built.
