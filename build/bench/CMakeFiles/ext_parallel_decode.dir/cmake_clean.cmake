file(REMOVE_RECURSE
  "CMakeFiles/ext_parallel_decode.dir/ext_parallel_decode.cpp.o"
  "CMakeFiles/ext_parallel_decode.dir/ext_parallel_decode.cpp.o.d"
  "ext_parallel_decode"
  "ext_parallel_decode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_parallel_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
