file(REMOVE_RECURSE
  "CMakeFiles/fig5a_convergence.dir/fig5a_convergence.cpp.o"
  "CMakeFiles/fig5a_convergence.dir/fig5a_convergence.cpp.o.d"
  "fig5a_convergence"
  "fig5a_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
