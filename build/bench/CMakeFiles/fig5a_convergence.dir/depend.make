# Empty dependencies file for fig5a_convergence.
# This may be replaced when dependencies are built.
