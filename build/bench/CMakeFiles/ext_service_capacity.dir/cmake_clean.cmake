file(REMOVE_RECURSE
  "CMakeFiles/ext_service_capacity.dir/ext_service_capacity.cpp.o"
  "CMakeFiles/ext_service_capacity.dir/ext_service_capacity.cpp.o.d"
  "ext_service_capacity"
  "ext_service_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_service_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
