# Empty dependencies file for ext_service_capacity.
# This may be replaced when dependencies are built.
