# Empty dependencies file for ablation_liar_attack.
# This may be replaced when dependencies are built.
