file(REMOVE_RECURSE
  "CMakeFiles/ablation_liar_attack.dir/ablation_liar_attack.cpp.o"
  "CMakeFiles/ablation_liar_attack.dir/ablation_liar_attack.cpp.o.d"
  "ablation_liar_attack"
  "ablation_liar_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_liar_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
