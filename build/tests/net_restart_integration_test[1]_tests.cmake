add_test([=[RestartIntegration.PeerServesFromReloadedStore]=]  /root/repo/build/tests/net_restart_integration_test [==[--gtest_filter=RestartIntegration.PeerServesFromReloadedStore]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[RestartIntegration.PeerServesFromReloadedStore]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  net_restart_integration_test_TESTS RestartIntegration.PeerServesFromReloadedStore)
