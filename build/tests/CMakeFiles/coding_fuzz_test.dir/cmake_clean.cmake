file(REMOVE_RECURSE
  "CMakeFiles/coding_fuzz_test.dir/coding/fuzz_test.cpp.o"
  "CMakeFiles/coding_fuzz_test.dir/coding/fuzz_test.cpp.o.d"
  "coding_fuzz_test"
  "coding_fuzz_test.pdb"
  "coding_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coding_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
