# Empty dependencies file for coding_fuzz_test.
# This may be replaced when dependencies are built.
