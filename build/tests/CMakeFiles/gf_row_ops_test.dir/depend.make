# Empty dependencies file for gf_row_ops_test.
# This may be replaced when dependencies are built.
