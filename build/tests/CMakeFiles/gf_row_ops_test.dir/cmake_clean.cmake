file(REMOVE_RECURSE
  "CMakeFiles/gf_row_ops_test.dir/gf/row_ops_test.cpp.o"
  "CMakeFiles/gf_row_ops_test.dir/gf/row_ops_test.cpp.o.d"
  "gf_row_ops_test"
  "gf_row_ops_test.pdb"
  "gf_row_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gf_row_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
