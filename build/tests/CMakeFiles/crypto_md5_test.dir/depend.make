# Empty dependencies file for crypto_md5_test.
# This may be replaced when dependencies are built.
