# Empty dependencies file for coding_merkle_auth_test.
# This may be replaced when dependencies are built.
