file(REMOVE_RECURSE
  "CMakeFiles/coding_merkle_auth_test.dir/coding/merkle_auth_test.cpp.o"
  "CMakeFiles/coding_merkle_auth_test.dir/coding/merkle_auth_test.cpp.o.d"
  "coding_merkle_auth_test"
  "coding_merkle_auth_test.pdb"
  "coding_merkle_auth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coding_merkle_auth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
