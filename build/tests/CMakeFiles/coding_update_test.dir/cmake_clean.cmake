file(REMOVE_RECURSE
  "CMakeFiles/coding_update_test.dir/coding/update_test.cpp.o"
  "CMakeFiles/coding_update_test.dir/coding/update_test.cpp.o.d"
  "coding_update_test"
  "coding_update_test.pdb"
  "coding_update_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coding_update_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
