# Empty dependencies file for coding_update_test.
# This may be replaced when dependencies are built.
