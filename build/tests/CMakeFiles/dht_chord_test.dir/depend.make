# Empty dependencies file for dht_chord_test.
# This may be replaced when dependencies are built.
