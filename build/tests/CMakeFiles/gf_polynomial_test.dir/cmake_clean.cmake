file(REMOVE_RECURSE
  "CMakeFiles/gf_polynomial_test.dir/gf/polynomial_test.cpp.o"
  "CMakeFiles/gf_polynomial_test.dir/gf/polynomial_test.cpp.o.d"
  "gf_polynomial_test"
  "gf_polynomial_test.pdb"
  "gf_polynomial_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gf_polynomial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
