# Empty compiler generated dependencies file for gf_polynomial_test.
# This may be replaced when dependencies are built.
