file(REMOVE_RECURSE
  "CMakeFiles/coding_encoder_test.dir/coding/encoder_test.cpp.o"
  "CMakeFiles/coding_encoder_test.dir/coding/encoder_test.cpp.o.d"
  "coding_encoder_test"
  "coding_encoder_test.pdb"
  "coding_encoder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coding_encoder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
