# Empty dependencies file for coding_encoder_test.
# This may be replaced when dependencies are built.
