file(REMOVE_RECURSE
  "CMakeFiles/sim_fairness_properties_test.dir/sim/fairness_properties_test.cpp.o"
  "CMakeFiles/sim_fairness_properties_test.dir/sim/fairness_properties_test.cpp.o.d"
  "sim_fairness_properties_test"
  "sim_fairness_properties_test.pdb"
  "sim_fairness_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_fairness_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
