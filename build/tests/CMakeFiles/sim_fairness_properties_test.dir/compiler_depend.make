# Empty compiler generated dependencies file for sim_fairness_properties_test.
# This may be replaced when dependencies are built.
