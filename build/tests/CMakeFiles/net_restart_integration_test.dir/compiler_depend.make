# Empty compiler generated dependencies file for net_restart_integration_test.
# This may be replaced when dependencies are built.
