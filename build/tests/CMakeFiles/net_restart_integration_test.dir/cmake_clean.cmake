file(REMOVE_RECURSE
  "CMakeFiles/net_restart_integration_test.dir/net/restart_integration_test.cpp.o"
  "CMakeFiles/net_restart_integration_test.dir/net/restart_integration_test.cpp.o.d"
  "net_restart_integration_test"
  "net_restart_integration_test.pdb"
  "net_restart_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_restart_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
