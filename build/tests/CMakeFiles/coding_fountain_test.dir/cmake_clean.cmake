file(REMOVE_RECURSE
  "CMakeFiles/coding_fountain_test.dir/coding/fountain_test.cpp.o"
  "CMakeFiles/coding_fountain_test.dir/coding/fountain_test.cpp.o.d"
  "coding_fountain_test"
  "coding_fountain_test.pdb"
  "coding_fountain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coding_fountain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
