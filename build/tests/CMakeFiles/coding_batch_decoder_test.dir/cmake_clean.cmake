file(REMOVE_RECURSE
  "CMakeFiles/coding_batch_decoder_test.dir/coding/batch_decoder_test.cpp.o"
  "CMakeFiles/coding_batch_decoder_test.dir/coding/batch_decoder_test.cpp.o.d"
  "coding_batch_decoder_test"
  "coding_batch_decoder_test.pdb"
  "coding_batch_decoder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coding_batch_decoder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
