# Empty compiler generated dependencies file for coding_batch_decoder_test.
# This may be replaced when dependencies are built.
