file(REMOVE_RECURSE
  "CMakeFiles/coding_params_test.dir/coding/params_test.cpp.o"
  "CMakeFiles/coding_params_test.dir/coding/params_test.cpp.o.d"
  "coding_params_test"
  "coding_params_test.pdb"
  "coding_params_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coding_params_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
