# Empty compiler generated dependencies file for linalg_progressive_test.
# This may be replaced when dependencies are built.
