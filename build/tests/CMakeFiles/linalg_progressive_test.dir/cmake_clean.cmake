file(REMOVE_RECURSE
  "CMakeFiles/linalg_progressive_test.dir/linalg/progressive_test.cpp.o"
  "CMakeFiles/linalg_progressive_test.dir/linalg/progressive_test.cpp.o.d"
  "linalg_progressive_test"
  "linalg_progressive_test.pdb"
  "linalg_progressive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_progressive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
