# Empty dependencies file for coding_codec_test.
# This may be replaced when dependencies are built.
