file(REMOVE_RECURSE
  "CMakeFiles/coding_codec_test.dir/coding/codec_test.cpp.o"
  "CMakeFiles/coding_codec_test.dir/coding/codec_test.cpp.o.d"
  "coding_codec_test"
  "coding_codec_test.pdb"
  "coding_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coding_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
