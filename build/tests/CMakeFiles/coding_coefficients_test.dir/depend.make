# Empty dependencies file for coding_coefficients_test.
# This may be replaced when dependencies are built.
