file(REMOVE_RECURSE
  "CMakeFiles/coding_coefficients_test.dir/coding/coefficients_test.cpp.o"
  "CMakeFiles/coding_coefficients_test.dir/coding/coefficients_test.cpp.o.d"
  "coding_coefficients_test"
  "coding_coefficients_test.pdb"
  "coding_coefficients_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coding_coefficients_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
