# Empty dependencies file for coding_recoding_test.
# This may be replaced when dependencies are built.
