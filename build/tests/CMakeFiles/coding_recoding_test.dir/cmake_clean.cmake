file(REMOVE_RECURSE
  "CMakeFiles/coding_recoding_test.dir/coding/recoding_test.cpp.o"
  "CMakeFiles/coding_recoding_test.dir/coding/recoding_test.cpp.o.d"
  "coding_recoding_test"
  "coding_recoding_test.pdb"
  "coding_recoding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coding_recoding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
