file(REMOVE_RECURSE
  "CMakeFiles/sim_demand_test.dir/sim/demand_test.cpp.o"
  "CMakeFiles/sim_demand_test.dir/sim/demand_test.cpp.o.d"
  "sim_demand_test"
  "sim_demand_test.pdb"
  "sim_demand_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_demand_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
