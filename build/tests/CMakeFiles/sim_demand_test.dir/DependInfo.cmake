
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/demand_test.cpp" "tests/CMakeFiles/sim_demand_test.dir/sim/demand_test.cpp.o" "gcc" "tests/CMakeFiles/sim_demand_test.dir/sim/demand_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fairshare_core.dir/DependInfo.cmake"
  "/root/repo/build/src/p2p/CMakeFiles/fairshare_p2p.dir/DependInfo.cmake"
  "/root/repo/build/src/dht/CMakeFiles/fairshare_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fairshare_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/fairshare_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/coding/CMakeFiles/fairshare_coding.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fairshare_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/fairshare_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/fairshare_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fairshare_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
