# Empty dependencies file for sim_demand_test.
# This may be replaced when dependencies are built.
