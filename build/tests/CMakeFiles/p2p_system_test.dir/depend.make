# Empty dependencies file for p2p_system_test.
# This may be replaced when dependencies are built.
