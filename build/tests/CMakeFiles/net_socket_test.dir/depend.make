# Empty dependencies file for net_socket_test.
# This may be replaced when dependencies are built.
