file(REMOVE_RECURSE
  "CMakeFiles/net_socket_test.dir/net/socket_test.cpp.o"
  "CMakeFiles/net_socket_test.dir/net/socket_test.cpp.o.d"
  "net_socket_test"
  "net_socket_test.pdb"
  "net_socket_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_socket_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
