# Empty dependencies file for coding_chunker_test.
# This may be replaced when dependencies are built.
