file(REMOVE_RECURSE
  "CMakeFiles/coding_chunker_test.dir/coding/chunker_test.cpp.o"
  "CMakeFiles/coding_chunker_test.dir/coding/chunker_test.cpp.o.d"
  "coding_chunker_test"
  "coding_chunker_test.pdb"
  "coding_chunker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coding_chunker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
