file(REMOVE_RECURSE
  "CMakeFiles/net_swarm_test.dir/net/swarm_test.cpp.o"
  "CMakeFiles/net_swarm_test.dir/net/swarm_test.cpp.o.d"
  "net_swarm_test"
  "net_swarm_test.pdb"
  "net_swarm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_swarm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
