# Empty compiler generated dependencies file for net_swarm_test.
# This may be replaced when dependencies are built.
