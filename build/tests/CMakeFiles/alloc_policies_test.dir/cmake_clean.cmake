file(REMOVE_RECURSE
  "CMakeFiles/alloc_policies_test.dir/alloc/policies_test.cpp.o"
  "CMakeFiles/alloc_policies_test.dir/alloc/policies_test.cpp.o.d"
  "alloc_policies_test"
  "alloc_policies_test.pdb"
  "alloc_policies_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alloc_policies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
