# Empty dependencies file for gf_field_test.
# This may be replaced when dependencies are built.
