file(REMOVE_RECURSE
  "CMakeFiles/gf_field_test.dir/gf/field_test.cpp.o"
  "CMakeFiles/gf_field_test.dir/gf/field_test.cpp.o.d"
  "gf_field_test"
  "gf_field_test.pdb"
  "gf_field_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gf_field_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
