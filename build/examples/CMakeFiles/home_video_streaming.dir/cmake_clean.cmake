file(REMOVE_RECURSE
  "CMakeFiles/home_video_streaming.dir/home_video_streaming.cpp.o"
  "CMakeFiles/home_video_streaming.dir/home_video_streaming.cpp.o.d"
  "home_video_streaming"
  "home_video_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/home_video_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
