# Empty dependencies file for home_video_streaming.
# This may be replaced when dependencies are built.
