# Empty compiler generated dependencies file for localhost_swarm.
# This may be replaced when dependencies are built.
