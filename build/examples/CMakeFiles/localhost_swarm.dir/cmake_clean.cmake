file(REMOVE_RECURSE
  "CMakeFiles/localhost_swarm.dir/localhost_swarm.cpp.o"
  "CMakeFiles/localhost_swarm.dir/localhost_swarm.cpp.o.d"
  "localhost_swarm"
  "localhost_swarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/localhost_swarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
