# Empty compiler generated dependencies file for incremental_backup.
# This may be replaced when dependencies are built.
