file(REMOVE_RECURSE
  "CMakeFiles/incremental_backup.dir/incremental_backup.cpp.o"
  "CMakeFiles/incremental_backup.dir/incremental_backup.cpp.o.d"
  "incremental_backup"
  "incremental_backup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
