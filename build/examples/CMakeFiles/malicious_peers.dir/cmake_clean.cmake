file(REMOVE_RECURSE
  "CMakeFiles/malicious_peers.dir/malicious_peers.cpp.o"
  "CMakeFiles/malicious_peers.dir/malicious_peers.cpp.o.d"
  "malicious_peers"
  "malicious_peers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malicious_peers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
