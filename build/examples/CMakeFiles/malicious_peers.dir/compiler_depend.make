# Empty compiler generated dependencies file for malicious_peers.
# This may be replaced when dependencies are built.
