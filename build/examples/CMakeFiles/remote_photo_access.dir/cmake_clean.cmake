file(REMOVE_RECURSE
  "CMakeFiles/remote_photo_access.dir/remote_photo_access.cpp.o"
  "CMakeFiles/remote_photo_access.dir/remote_photo_access.cpp.o.d"
  "remote_photo_access"
  "remote_photo_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_photo_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
