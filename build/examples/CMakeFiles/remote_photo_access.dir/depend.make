# Empty dependencies file for remote_photo_access.
# This may be replaced when dependencies are built.
