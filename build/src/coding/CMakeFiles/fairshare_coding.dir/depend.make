# Empty dependencies file for fairshare_coding.
# This may be replaced when dependencies are built.
