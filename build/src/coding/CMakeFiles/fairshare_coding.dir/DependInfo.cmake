
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coding/batch_decoder.cpp" "src/coding/CMakeFiles/fairshare_coding.dir/batch_decoder.cpp.o" "gcc" "src/coding/CMakeFiles/fairshare_coding.dir/batch_decoder.cpp.o.d"
  "/root/repo/src/coding/chunker.cpp" "src/coding/CMakeFiles/fairshare_coding.dir/chunker.cpp.o" "gcc" "src/coding/CMakeFiles/fairshare_coding.dir/chunker.cpp.o.d"
  "/root/repo/src/coding/coefficients.cpp" "src/coding/CMakeFiles/fairshare_coding.dir/coefficients.cpp.o" "gcc" "src/coding/CMakeFiles/fairshare_coding.dir/coefficients.cpp.o.d"
  "/root/repo/src/coding/decoder.cpp" "src/coding/CMakeFiles/fairshare_coding.dir/decoder.cpp.o" "gcc" "src/coding/CMakeFiles/fairshare_coding.dir/decoder.cpp.o.d"
  "/root/repo/src/coding/encoder.cpp" "src/coding/CMakeFiles/fairshare_coding.dir/encoder.cpp.o" "gcc" "src/coding/CMakeFiles/fairshare_coding.dir/encoder.cpp.o.d"
  "/root/repo/src/coding/fountain.cpp" "src/coding/CMakeFiles/fairshare_coding.dir/fountain.cpp.o" "gcc" "src/coding/CMakeFiles/fairshare_coding.dir/fountain.cpp.o.d"
  "/root/repo/src/coding/merkle_auth.cpp" "src/coding/CMakeFiles/fairshare_coding.dir/merkle_auth.cpp.o" "gcc" "src/coding/CMakeFiles/fairshare_coding.dir/merkle_auth.cpp.o.d"
  "/root/repo/src/coding/message.cpp" "src/coding/CMakeFiles/fairshare_coding.dir/message.cpp.o" "gcc" "src/coding/CMakeFiles/fairshare_coding.dir/message.cpp.o.d"
  "/root/repo/src/coding/params.cpp" "src/coding/CMakeFiles/fairshare_coding.dir/params.cpp.o" "gcc" "src/coding/CMakeFiles/fairshare_coding.dir/params.cpp.o.d"
  "/root/repo/src/coding/recoding.cpp" "src/coding/CMakeFiles/fairshare_coding.dir/recoding.cpp.o" "gcc" "src/coding/CMakeFiles/fairshare_coding.dir/recoding.cpp.o.d"
  "/root/repo/src/coding/update.cpp" "src/coding/CMakeFiles/fairshare_coding.dir/update.cpp.o" "gcc" "src/coding/CMakeFiles/fairshare_coding.dir/update.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gf/CMakeFiles/fairshare_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/fairshare_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fairshare_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fairshare_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
