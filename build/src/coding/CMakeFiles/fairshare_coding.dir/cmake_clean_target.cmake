file(REMOVE_RECURSE
  "libfairshare_coding.a"
)
