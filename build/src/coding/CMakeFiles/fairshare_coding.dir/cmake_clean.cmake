file(REMOVE_RECURSE
  "CMakeFiles/fairshare_coding.dir/batch_decoder.cpp.o"
  "CMakeFiles/fairshare_coding.dir/batch_decoder.cpp.o.d"
  "CMakeFiles/fairshare_coding.dir/chunker.cpp.o"
  "CMakeFiles/fairshare_coding.dir/chunker.cpp.o.d"
  "CMakeFiles/fairshare_coding.dir/coefficients.cpp.o"
  "CMakeFiles/fairshare_coding.dir/coefficients.cpp.o.d"
  "CMakeFiles/fairshare_coding.dir/decoder.cpp.o"
  "CMakeFiles/fairshare_coding.dir/decoder.cpp.o.d"
  "CMakeFiles/fairshare_coding.dir/encoder.cpp.o"
  "CMakeFiles/fairshare_coding.dir/encoder.cpp.o.d"
  "CMakeFiles/fairshare_coding.dir/fountain.cpp.o"
  "CMakeFiles/fairshare_coding.dir/fountain.cpp.o.d"
  "CMakeFiles/fairshare_coding.dir/merkle_auth.cpp.o"
  "CMakeFiles/fairshare_coding.dir/merkle_auth.cpp.o.d"
  "CMakeFiles/fairshare_coding.dir/message.cpp.o"
  "CMakeFiles/fairshare_coding.dir/message.cpp.o.d"
  "CMakeFiles/fairshare_coding.dir/params.cpp.o"
  "CMakeFiles/fairshare_coding.dir/params.cpp.o.d"
  "CMakeFiles/fairshare_coding.dir/recoding.cpp.o"
  "CMakeFiles/fairshare_coding.dir/recoding.cpp.o.d"
  "CMakeFiles/fairshare_coding.dir/update.cpp.o"
  "CMakeFiles/fairshare_coding.dir/update.cpp.o.d"
  "libfairshare_coding.a"
  "libfairshare_coding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairshare_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
