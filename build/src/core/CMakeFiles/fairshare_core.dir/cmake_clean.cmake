file(REMOVE_RECURSE
  "CMakeFiles/fairshare_core.dir/scenario.cpp.o"
  "CMakeFiles/fairshare_core.dir/scenario.cpp.o.d"
  "libfairshare_core.a"
  "libfairshare_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairshare_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
