file(REMOVE_RECURSE
  "libfairshare_core.a"
)
