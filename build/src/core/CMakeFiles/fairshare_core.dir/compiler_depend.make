# Empty compiler generated dependencies file for fairshare_core.
# This may be replaced when dependencies are built.
