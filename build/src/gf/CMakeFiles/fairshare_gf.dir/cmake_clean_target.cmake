file(REMOVE_RECURSE
  "libfairshare_gf.a"
)
