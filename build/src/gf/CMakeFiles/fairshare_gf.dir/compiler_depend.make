# Empty compiler generated dependencies file for fairshare_gf.
# This may be replaced when dependencies are built.
