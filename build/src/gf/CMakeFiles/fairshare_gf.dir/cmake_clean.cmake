file(REMOVE_RECURSE
  "CMakeFiles/fairshare_gf.dir/field.cpp.o"
  "CMakeFiles/fairshare_gf.dir/field.cpp.o.d"
  "CMakeFiles/fairshare_gf.dir/polynomial.cpp.o"
  "CMakeFiles/fairshare_gf.dir/polynomial.cpp.o.d"
  "CMakeFiles/fairshare_gf.dir/row_ops.cpp.o"
  "CMakeFiles/fairshare_gf.dir/row_ops.cpp.o.d"
  "libfairshare_gf.a"
  "libfairshare_gf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairshare_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
