file(REMOVE_RECURSE
  "libfairshare_util.a"
)
