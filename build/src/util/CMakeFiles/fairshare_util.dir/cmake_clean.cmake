file(REMOVE_RECURSE
  "CMakeFiles/fairshare_util.dir/thread_pool.cpp.o"
  "CMakeFiles/fairshare_util.dir/thread_pool.cpp.o.d"
  "libfairshare_util.a"
  "libfairshare_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairshare_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
