# Empty compiler generated dependencies file for fairshare_util.
# This may be replaced when dependencies are built.
