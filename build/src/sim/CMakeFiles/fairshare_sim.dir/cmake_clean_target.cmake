file(REMOVE_RECURSE
  "libfairshare_sim.a"
)
