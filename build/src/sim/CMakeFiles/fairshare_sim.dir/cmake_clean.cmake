file(REMOVE_RECURSE
  "CMakeFiles/fairshare_sim.dir/demand.cpp.o"
  "CMakeFiles/fairshare_sim.dir/demand.cpp.o.d"
  "CMakeFiles/fairshare_sim.dir/metrics.cpp.o"
  "CMakeFiles/fairshare_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/fairshare_sim.dir/simulator.cpp.o"
  "CMakeFiles/fairshare_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/fairshare_sim.dir/trace.cpp.o"
  "CMakeFiles/fairshare_sim.dir/trace.cpp.o.d"
  "libfairshare_sim.a"
  "libfairshare_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairshare_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
