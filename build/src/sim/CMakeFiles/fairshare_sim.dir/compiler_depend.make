# Empty compiler generated dependencies file for fairshare_sim.
# This may be replaced when dependencies are built.
