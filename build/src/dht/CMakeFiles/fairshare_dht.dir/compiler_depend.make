# Empty compiler generated dependencies file for fairshare_dht.
# This may be replaced when dependencies are built.
