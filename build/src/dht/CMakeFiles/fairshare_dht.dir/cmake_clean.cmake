file(REMOVE_RECURSE
  "CMakeFiles/fairshare_dht.dir/chord.cpp.o"
  "CMakeFiles/fairshare_dht.dir/chord.cpp.o.d"
  "libfairshare_dht.a"
  "libfairshare_dht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairshare_dht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
