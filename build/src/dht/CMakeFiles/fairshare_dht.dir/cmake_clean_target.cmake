file(REMOVE_RECURSE
  "libfairshare_dht.a"
)
