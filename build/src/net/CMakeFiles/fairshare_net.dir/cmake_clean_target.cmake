file(REMOVE_RECURSE
  "libfairshare_net.a"
)
