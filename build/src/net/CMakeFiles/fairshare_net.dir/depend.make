# Empty dependencies file for fairshare_net.
# This may be replaced when dependencies are built.
