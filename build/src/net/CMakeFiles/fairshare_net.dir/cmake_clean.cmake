file(REMOVE_RECURSE
  "CMakeFiles/fairshare_net.dir/download_client.cpp.o"
  "CMakeFiles/fairshare_net.dir/download_client.cpp.o.d"
  "CMakeFiles/fairshare_net.dir/peer_server.cpp.o"
  "CMakeFiles/fairshare_net.dir/peer_server.cpp.o.d"
  "CMakeFiles/fairshare_net.dir/socket.cpp.o"
  "CMakeFiles/fairshare_net.dir/socket.cpp.o.d"
  "libfairshare_net.a"
  "libfairshare_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairshare_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
