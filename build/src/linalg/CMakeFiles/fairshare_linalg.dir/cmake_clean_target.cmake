file(REMOVE_RECURSE
  "libfairshare_linalg.a"
)
