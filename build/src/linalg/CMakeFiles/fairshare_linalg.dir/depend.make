# Empty dependencies file for fairshare_linalg.
# This may be replaced when dependencies are built.
