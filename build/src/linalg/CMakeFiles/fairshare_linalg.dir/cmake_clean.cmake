file(REMOVE_RECURSE
  "CMakeFiles/fairshare_linalg.dir/matrix.cpp.o"
  "CMakeFiles/fairshare_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/fairshare_linalg.dir/parallel_ops.cpp.o"
  "CMakeFiles/fairshare_linalg.dir/parallel_ops.cpp.o.d"
  "CMakeFiles/fairshare_linalg.dir/progressive.cpp.o"
  "CMakeFiles/fairshare_linalg.dir/progressive.cpp.o.d"
  "libfairshare_linalg.a"
  "libfairshare_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairshare_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
