# Empty dependencies file for fairshare_p2p.
# This may be replaced when dependencies are built.
