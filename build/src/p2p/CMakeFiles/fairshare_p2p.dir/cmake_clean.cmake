file(REMOVE_RECURSE
  "CMakeFiles/fairshare_p2p.dir/persistence.cpp.o"
  "CMakeFiles/fairshare_p2p.dir/persistence.cpp.o.d"
  "CMakeFiles/fairshare_p2p.dir/store.cpp.o"
  "CMakeFiles/fairshare_p2p.dir/store.cpp.o.d"
  "CMakeFiles/fairshare_p2p.dir/system.cpp.o"
  "CMakeFiles/fairshare_p2p.dir/system.cpp.o.d"
  "CMakeFiles/fairshare_p2p.dir/wire.cpp.o"
  "CMakeFiles/fairshare_p2p.dir/wire.cpp.o.d"
  "libfairshare_p2p.a"
  "libfairshare_p2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairshare_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
