file(REMOVE_RECURSE
  "libfairshare_p2p.a"
)
