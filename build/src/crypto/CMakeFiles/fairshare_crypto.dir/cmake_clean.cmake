file(REMOVE_RECURSE
  "CMakeFiles/fairshare_crypto.dir/auth.cpp.o"
  "CMakeFiles/fairshare_crypto.dir/auth.cpp.o.d"
  "CMakeFiles/fairshare_crypto.dir/bigint.cpp.o"
  "CMakeFiles/fairshare_crypto.dir/bigint.cpp.o.d"
  "CMakeFiles/fairshare_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/fairshare_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/fairshare_crypto.dir/hmac.cpp.o"
  "CMakeFiles/fairshare_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/fairshare_crypto.dir/md5.cpp.o"
  "CMakeFiles/fairshare_crypto.dir/md5.cpp.o.d"
  "CMakeFiles/fairshare_crypto.dir/merkle.cpp.o"
  "CMakeFiles/fairshare_crypto.dir/merkle.cpp.o.d"
  "CMakeFiles/fairshare_crypto.dir/rsa.cpp.o"
  "CMakeFiles/fairshare_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/fairshare_crypto.dir/sha256.cpp.o"
  "CMakeFiles/fairshare_crypto.dir/sha256.cpp.o.d"
  "libfairshare_crypto.a"
  "libfairshare_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairshare_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
