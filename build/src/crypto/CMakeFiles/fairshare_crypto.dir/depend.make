# Empty dependencies file for fairshare_crypto.
# This may be replaced when dependencies are built.
