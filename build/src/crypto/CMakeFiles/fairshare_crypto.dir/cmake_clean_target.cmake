file(REMOVE_RECURSE
  "libfairshare_crypto.a"
)
