file(REMOVE_RECURSE
  "libfairshare_alloc.a"
)
