file(REMOVE_RECURSE
  "CMakeFiles/fairshare_alloc.dir/policies.cpp.o"
  "CMakeFiles/fairshare_alloc.dir/policies.cpp.o.d"
  "libfairshare_alloc.a"
  "libfairshare_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairshare_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
