# Empty dependencies file for fairshare_alloc.
# This may be replaced when dependencies are built.
