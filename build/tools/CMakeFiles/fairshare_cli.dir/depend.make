# Empty dependencies file for fairshare_cli.
# This may be replaced when dependencies are built.
