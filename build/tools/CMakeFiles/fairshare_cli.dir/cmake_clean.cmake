file(REMOVE_RECURSE
  "CMakeFiles/fairshare_cli.dir/fairshare_cli.cpp.o"
  "CMakeFiles/fairshare_cli.dir/fairshare_cli.cpp.o.d"
  "fairshare_cli"
  "fairshare_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairshare_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
