// BigUInt arithmetic: identities, division correctness, modular algebra,
// and primality testing.
#include <gtest/gtest.h>

#include "crypto/bigint.hpp"
#include "crypto/chacha20.hpp"
#include "sim/rng.hpp"

namespace fairshare::crypto {
namespace {

ChaCha20 make_rng(std::uint8_t tag) {
  std::array<std::uint8_t, 32> key{};
  key[0] = tag;
  std::array<std::uint8_t, 12> nonce{};
  return ChaCha20(key, nonce, 0);
}

TEST(BigUInt, ConstructionAndHexRoundTrip) {
  EXPECT_EQ(BigUInt{}.to_hex(), "0");
  EXPECT_EQ(BigUInt{1}.to_hex(), "1");
  EXPECT_EQ(BigUInt{0xdeadbeefull}.to_hex(), "deadbeef");
  EXPECT_EQ(BigUInt{0x123456789abcdef0ull}.to_hex(), "123456789abcdef0");
  const auto big = BigUInt::from_hex(
      "fedcba9876543210fedcba9876543210fedcba9876543210");
  EXPECT_EQ(big.to_hex(), "fedcba9876543210fedcba9876543210fedcba9876543210");
}

TEST(BigUInt, FromHexIgnoresLeadingZerosAndCase) {
  EXPECT_EQ(BigUInt::from_hex("000ff"), BigUInt{0xff});
  EXPECT_EQ(BigUInt::from_hex("ABCDEF"), BigUInt::from_hex("abcdef"));
  EXPECT_EQ(BigUInt::from_hex(""), BigUInt{});
}

TEST(BigUInt, BytesBeRoundTrip) {
  const auto v = BigUInt::from_hex("0102030405060708090a0b0c");
  const auto bytes = v.to_bytes_be();
  ASSERT_EQ(bytes.size(), 12u);
  EXPECT_EQ(bytes[0], 0x01);
  EXPECT_EQ(bytes[11], 0x0c);
  EXPECT_EQ(BigUInt::from_bytes_be(bytes), v);
}

TEST(BigUInt, BytesBePadding) {
  const BigUInt v{0xabcd};
  const auto padded = v.to_bytes_be(8);
  ASSERT_EQ(padded.size(), 8u);
  EXPECT_EQ(padded[0], 0);
  EXPECT_EQ(padded[6], 0xab);
  EXPECT_EQ(padded[7], 0xcd);
  EXPECT_EQ(BigUInt::from_bytes_be(padded), v);  // leading zeros trimmed
}

TEST(BigUInt, ComparisonOrdering) {
  EXPECT_LT(BigUInt{1}, BigUInt{2});
  EXPECT_LT(BigUInt{0xffffffffull}, BigUInt{0x100000000ull});
  EXPECT_GT(BigUInt::from_hex("10000000000000000"), BigUInt{~0ull});
  EXPECT_EQ(BigUInt{42}, BigUInt{42});
}

TEST(BigUInt, AddSubRoundTripRandom) {
  sim::SplitMix64 rng(1);
  ChaCha20 crng = make_rng(1);
  for (int i = 0; i < 100; ++i) {
    const auto a = BigUInt::random_bits(1 + rng.next_below(200), crng);
    const auto b = BigUInt::random_bits(1 + rng.next_below(200), crng);
    const auto sum = a + b;
    EXPECT_EQ(sum - a, b);
    EXPECT_EQ(sum - b, a);
    EXPECT_GE(sum, a);
  }
}

TEST(BigUInt, AdditionCarryChain) {
  const auto a = BigUInt::from_hex("ffffffffffffffffffffffffffffffff");
  EXPECT_EQ((a + BigUInt{1}).to_hex(), "100000000000000000000000000000000");
}

TEST(BigUInt, MultiplicationMatchesU64) {
  sim::SplitMix64 rng(2);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng.next() >> 33;
    const std::uint64_t b = rng.next() >> 33;
    EXPECT_EQ(BigUInt{a} * BigUInt{b}, BigUInt{a * b});
  }
}

TEST(BigUInt, MultiplicationKnownBigProduct) {
  // (2^128 - 1)^2 = 2^256 - 2^129 + 1.
  const auto a = BigUInt::from_hex("ffffffffffffffffffffffffffffffff");
  EXPECT_EQ((a * a).to_hex(),
            "fffffffffffffffffffffffffffffffe"
            "00000000000000000000000000000001");
}

TEST(BigUInt, ShiftsMatchMultiplication) {
  const auto v = BigUInt::from_hex("123456789abcdef");
  EXPECT_EQ(v << 4, v * BigUInt{16});
  EXPECT_EQ((v << 100) >> 100, v);
  EXPECT_EQ(v >> 200, BigUInt{});
  EXPECT_EQ(v << 0, v);
}

TEST(BigUInt, DivModInvariantRandom) {
  sim::SplitMix64 rng(3);
  ChaCha20 crng = make_rng(3);
  for (int i = 0; i < 200; ++i) {
    const auto a = BigUInt::random_bits(1 + rng.next_below(256), crng);
    const auto b = BigUInt::random_bits(1 + rng.next_below(256), crng);
    const auto [q, r] = BigUInt::divmod(a, b);
    EXPECT_LT(r, b);
    EXPECT_EQ(q * b + r, a);
  }
}

TEST(BigUInt, DivModMatchesU64) {
  sim::SplitMix64 rng(4);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng.next();
    const std::uint64_t b = 1 + rng.next_below(~0ull - 1);
    const auto [q, r] = BigUInt::divmod(BigUInt{a}, BigUInt{b});
    EXPECT_EQ(q, BigUInt{a / b});
    EXPECT_EQ(r, BigUInt{a % b});
  }
}

TEST(BigUInt, DivModAlgorithmDAddBackCase) {
  // Dividend/divisor pattern that exercises the rare "add back" branch of
  // Knuth's Algorithm D (top limbs equal).
  const auto a = BigUInt::from_hex("80000000000000000000000000000000");
  const auto b = BigUInt::from_hex("800000000000000000000001");
  const auto [q, r] = BigUInt::divmod(a, b);
  EXPECT_EQ(q * b + r, a);
  EXPECT_LT(r, b);
}

TEST(BigUInt, DividingSmallerYieldsZero) {
  const auto [q, r] = BigUInt::divmod(BigUInt{5}, BigUInt{7});
  EXPECT_EQ(q, BigUInt{});
  EXPECT_EQ(r, BigUInt{5});
}

TEST(BigUInt, ModExpSmallCases) {
  EXPECT_EQ(BigUInt::mod_exp(BigUInt{2}, BigUInt{10}, BigUInt{1000}),
            BigUInt{24});
  EXPECT_EQ(BigUInt::mod_exp(BigUInt{3}, BigUInt{0}, BigUInt{7}), BigUInt{1});
  EXPECT_EQ(BigUInt::mod_exp(BigUInt{0}, BigUInt{5}, BigUInt{7}), BigUInt{});
  // Modulus 1 -> everything is 0.
  EXPECT_EQ(BigUInt::mod_exp(BigUInt{9}, BigUInt{9}, BigUInt{1}), BigUInt{});
}

TEST(BigUInt, FermatLittleTheorem) {
  // 2^(p-1) mod p == 1 for prime p = 2^61 - 1.
  const BigUInt p{(1ull << 61) - 1};
  EXPECT_EQ(BigUInt::mod_exp(BigUInt{2}, p - BigUInt{1}, p), BigUInt{1});
}

TEST(BigUInt, GcdBasics) {
  EXPECT_EQ(BigUInt::gcd(BigUInt{12}, BigUInt{18}), BigUInt{6});
  EXPECT_EQ(BigUInt::gcd(BigUInt{17}, BigUInt{13}), BigUInt{1});
  EXPECT_EQ(BigUInt::gcd(BigUInt{0}, BigUInt{5}), BigUInt{5});
  EXPECT_EQ(BigUInt::gcd(BigUInt{5}, BigUInt{0}), BigUInt{5});
}

TEST(BigUInt, ModInverseRoundTrip) {
  sim::SplitMix64 rng(5);
  ChaCha20 crng = make_rng(5);
  const auto m = BigUInt::from_hex("fffffffffffffffffffffffffffffff1");
  for (int i = 0; i < 50; ++i) {
    const auto a = BigUInt::random_below(m, crng);
    if (a.is_zero()) continue;
    const auto inv = BigUInt::mod_inverse(a, m);
    if (!inv) continue;  // not coprime
    EXPECT_EQ((a * *inv) % m, BigUInt{1});
  }
}

TEST(BigUInt, ModInverseOfNonCoprimeFails) {
  EXPECT_FALSE(BigUInt::mod_inverse(BigUInt{6}, BigUInt{9}).has_value());
  EXPECT_FALSE(BigUInt::mod_inverse(BigUInt{0}, BigUInt{7}).has_value());
}

TEST(BigUInt, ModInverseKnownValue) {
  // 3 * 4 = 12 == 1 (mod 11).
  const auto inv = BigUInt::mod_inverse(BigUInt{3}, BigUInt{11});
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ(*inv, BigUInt{4});
}

TEST(BigUInt, RandomBitsHasExactBitLength) {
  ChaCha20 crng = make_rng(6);
  for (std::size_t bits : {1u, 2u, 31u, 32u, 33u, 64u, 100u, 256u}) {
    for (int i = 0; i < 10; ++i)
      EXPECT_EQ(BigUInt::random_bits(bits, crng).bit_length(), bits);
  }
}

TEST(BigUInt, RandomBelowStaysBelow) {
  ChaCha20 crng = make_rng(7);
  const auto bound = BigUInt::from_hex("10000000000000001");
  for (int i = 0; i < 100; ++i)
    EXPECT_LT(BigUInt::random_below(bound, crng), bound);
}

TEST(Primality, KnownPrimes) {
  ChaCha20 crng = make_rng(8);
  for (std::uint64_t p : {2ull, 3ull, 5ull, 7ull, 65537ull,
                          2147483647ull /* 2^31-1 */,
                          (1ull << 61) - 1 /* Mersenne */}) {
    EXPECT_TRUE(is_probable_prime(BigUInt{p}, crng)) << p;
  }
}

TEST(Primality, KnownComposites) {
  ChaCha20 crng = make_rng(9);
  for (std::uint64_t c : {1ull, 4ull, 6ull, 9ull, 561ull /* Carmichael */,
                          1729ull /* Carmichael */, 25326001ull,
                          (1ull << 32) + 1 /* F5 = 641 * 6700417 */}) {
    EXPECT_FALSE(is_probable_prime(BigUInt{c}, crng)) << c;
  }
}

TEST(Primality, LargeKnownPrime) {
  // 2^127 - 1 is a Mersenne prime.
  ChaCha20 crng = make_rng(10);
  const auto p = BigUInt::from_hex("7fffffffffffffffffffffffffffffff");
  EXPECT_TRUE(is_probable_prime(p, crng));
}

TEST(Primality, GeneratePrimeHasRequestedSize) {
  ChaCha20 crng = make_rng(11);
  const auto p = generate_prime(96, crng);
  EXPECT_EQ(p.bit_length(), 96u);
  EXPECT_TRUE(p.is_odd());
  EXPECT_TRUE(is_probable_prime(p, crng));
}

TEST(BigUInt, KaratsubaMatchesSchoolbookAtAllSizes) {
  // operator* switches to Karatsuba above ~24 limbs; cross-check against
  // the reference schoolbook product across the switch-over and beyond,
  // including asymmetric operand sizes.
  ChaCha20 crng = make_rng(20);
  sim::SplitMix64 rng(21);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t bits_a = 32 + rng.next_below(4096);
    const std::size_t bits_b = 32 + rng.next_below(4096);
    const BigUInt a = BigUInt::random_bits(bits_a, crng);
    const BigUInt b = BigUInt::random_bits(bits_b, crng);
    EXPECT_EQ(a * b, mul_schoolbook(a, b))
        << "bits_a=" << bits_a << " bits_b=" << bits_b;
  }
}

TEST(BigUInt, KaratsubaAlgebraicIdentities) {
  ChaCha20 crng = make_rng(22);
  const BigUInt a = BigUInt::random_bits(3000, crng);
  const BigUInt b = BigUInt::random_bits(2900, crng);
  // (a + b)^2 == a^2 + 2ab + b^2.
  const BigUInt lhs = (a + b) * (a + b);
  const BigUInt rhs = a * a + (a * b) * BigUInt{2} + b * b;
  EXPECT_EQ(lhs, rhs);
  // Distributivity at large sizes.
  const BigUInt c = BigUInt::random_bits(1500, crng);
  EXPECT_EQ(a * (b + c), a * b + a * c);
}

TEST(BigUInt, LargeModExpStillCorrect) {
  // Fermat on a big prime exercises the Karatsuba path inside mod_exp:
  // p = 2^521 - 1 (Mersenne).
  BigUInt p{1};
  p = (p << 521) - BigUInt{1};
  EXPECT_EQ(BigUInt::mod_exp(BigUInt{3}, p - BigUInt{1}, p), BigUInt{1});
}

}  // namespace
}  // namespace fairshare::crypto
