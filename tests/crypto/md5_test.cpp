// RFC 1321 test suite plus incremental-hashing behavior.
#include <gtest/gtest.h>

#include <string>

#include "crypto/md5.hpp"

namespace fairshare::crypto {
namespace {

std::string md5_hex(std::string_view s) { return to_hex(Md5::hash(s)); }

TEST(Md5, Rfc1321TestSuite) {
  EXPECT_EQ(md5_hex(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(md5_hex("a"), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(md5_hex("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(md5_hex("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(md5_hex("abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(md5_hex("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
                    "0123456789"),
            "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(md5_hex("1234567890123456789012345678901234567890123456789012345"
                    "6789012345678901234567890"),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, IncrementalMatchesOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Md5 h;
    h.update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(msg.data()), split));
    h.update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(msg.data()) + split,
        msg.size() - split));
    EXPECT_EQ(to_hex(h.finish()), md5_hex(msg)) << "split at " << split;
  }
}

TEST(Md5, BlockBoundaryLengths) {
  // Lengths around the 64-byte block and 56-byte padding boundaries.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string msg(len, 'x');
    Md5 one;
    one.update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
    const auto d1 = one.finish();

    Md5 bytewise;
    for (char c : msg) {
      const auto b = static_cast<std::uint8_t>(c);
      bytewise.update(std::span<const std::uint8_t>(&b, 1));
    }
    EXPECT_EQ(bytewise.finish(), d1) << "len " << len;
  }
}

TEST(Md5, ResetAllowsReuse) {
  Md5 h;
  h.update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>("garbage"), 7));
  h.reset();
  const auto empty = h.finish();
  EXPECT_EQ(to_hex(empty), "d41d8cd98f00b204e9800998ecf8427e");
}

TEST(Md5, DistinctInputsDistinctDigests) {
  EXPECT_NE(Md5::hash("abc"), Md5::hash("abd"));
  EXPECT_NE(Md5::hash("abc"), Md5::hash("abc "));
}

TEST(Md5, ByteSpanOverloadMatchesString) {
  const std::string s = "abc";
  const auto bytes = std::as_bytes(std::span(s.data(), s.size()));
  EXPECT_EQ(Md5::hash(bytes), Md5::hash(s));
}

TEST(ToHex, FormatsLowercasePairs) {
  const std::array<std::uint8_t, 4> data{0x00, 0x0f, 0xa0, 0xff};
  EXPECT_EQ(to_hex(data), "000fa0ff");
}

}  // namespace
}  // namespace fairshare::crypto
