// The mutual challenge-response handshake of Figure 4(b).
#include <gtest/gtest.h>

#include "crypto/auth.hpp"
#include "crypto/chacha20.hpp"

namespace fairshare::crypto {
namespace {

ChaCha20 make_rng(std::uint8_t tag) {
  std::array<std::uint8_t, 32> key{};
  key[0] = tag;
  std::array<std::uint8_t, 12> nonce{};
  return ChaCha20(key, nonce, 0);
}

class AuthTest : public ::testing::Test {
 protected:
  static const RsaKeyPair& user_key() {
    static ChaCha20 rng = make_rng(1);
    static const RsaKeyPair k = RsaKeyPair::generate(512, rng);
    return k;
  }
  static const RsaKeyPair& peer_key() {
    static ChaCha20 rng = make_rng(2);
    static const RsaKeyPair k = RsaKeyPair::generate(512, rng);
    return k;
  }
  static const RsaKeyPair& rogue_key() {
    static ChaCha20 rng = make_rng(3);
    static const RsaKeyPair k = RsaKeyPair::generate(512, rng);
    return k;
  }
};

TEST_F(AuthTest, SuccessfulMutualHandshake) {
  ChaCha20 rng = make_rng(10);
  AuthInitiator user(7, user_key(), peer_key().pub, rng);
  AuthResponder peer(3, peer_key(), user_key().pub, rng);

  const AuthHello hello = user.hello();
  EXPECT_EQ(hello.user_id, 7u);
  const AuthChallenge challenge = peer.on_hello(hello);
  EXPECT_EQ(challenge.peer_id, 3u);
  const auto response = user.on_challenge(challenge);
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(peer.on_response(*response));

  EXPECT_TRUE(user.established());
  EXPECT_TRUE(peer.established());
  EXPECT_EQ(user.session_key(), peer.session_key());
}

TEST_F(AuthTest, SessionKeysDifferAcrossHandshakes) {
  ChaCha20 rng = make_rng(11);
  SessionKey first{};
  {
    AuthInitiator user(1, user_key(), peer_key().pub, rng);
    AuthResponder peer(2, peer_key(), user_key().pub, rng);
    auto resp = user.on_challenge(peer.on_hello(user.hello()));
    ASSERT_TRUE(resp && peer.on_response(*resp));
    first = user.session_key();
  }
  AuthInitiator user(1, user_key(), peer_key().pub, rng);
  AuthResponder peer(2, peer_key(), user_key().pub, rng);
  auto resp = user.on_challenge(peer.on_hello(user.hello()));
  ASSERT_TRUE(resp && peer.on_response(*resp));
  EXPECT_NE(first, user.session_key());
}

TEST_F(AuthTest, ImpersonatingPeerIsRejectedByUser) {
  ChaCha20 rng = make_rng(12);
  // User expects peer_key but a rogue signs the challenge.
  AuthInitiator user(1, user_key(), peer_key().pub, rng);
  AuthResponder rogue(2, rogue_key(), user_key().pub, rng);
  const auto challenge = rogue.on_hello(user.hello());
  EXPECT_FALSE(user.on_challenge(challenge).has_value());
  EXPECT_FALSE(user.established());
}

TEST_F(AuthTest, ImpersonatingUserIsRejectedByPeer) {
  ChaCha20 rng = make_rng(13);
  // Rogue initiator signs with its own key; peer expects user_key.
  AuthInitiator rogue(1, rogue_key(), peer_key().pub, rng);
  AuthResponder peer(2, peer_key(), user_key().pub, rng);
  const auto challenge = peer.on_hello(rogue.hello());
  const auto response = rogue.on_challenge(challenge);
  ASSERT_TRUE(response.has_value());  // rogue verified the honest peer fine
  EXPECT_FALSE(peer.on_response(*response));
  EXPECT_FALSE(peer.established());
}

TEST_F(AuthTest, TamperedChallengeNonceRejected) {
  ChaCha20 rng = make_rng(14);
  AuthInitiator user(1, user_key(), peer_key().pub, rng);
  AuthResponder peer(2, peer_key(), user_key().pub, rng);
  AuthChallenge challenge = peer.on_hello(user.hello());
  challenge.peer_nonce[0] ^= 1;  // MITM flips a nonce bit
  EXPECT_FALSE(user.on_challenge(challenge).has_value());
}

TEST_F(AuthTest, TamperedSessionKeyTransportRejected) {
  ChaCha20 rng = make_rng(15);
  AuthInitiator user(1, user_key(), peer_key().pub, rng);
  AuthResponder peer(2, peer_key(), user_key().pub, rng);
  auto response = user.on_challenge(peer.on_hello(user.hello()));
  ASSERT_TRUE(response.has_value());
  response->encrypted_session_key[5] ^= 0x10;  // splice attempt
  EXPECT_FALSE(peer.on_response(*response));
}

TEST_F(AuthTest, ReplayedResponseAcrossHandshakesRejected) {
  ChaCha20 rng = make_rng(16);
  // Complete one handshake and capture the response.
  AuthInitiator user1(1, user_key(), peer_key().pub, rng);
  AuthResponder peer1(2, peer_key(), user_key().pub, rng);
  auto response = user1.on_challenge(peer1.on_hello(user1.hello()));
  ASSERT_TRUE(response && peer1.on_response(*response));

  // Replaying it against a fresh handshake (fresh nonces) must fail.
  AuthInitiator user2(1, user_key(), peer_key().pub, rng);
  AuthResponder peer2(2, peer_key(), user_key().pub, rng);
  (void)peer2.on_hello(user2.hello());
  EXPECT_FALSE(peer2.on_response(*response));
}

TEST_F(AuthTest, ChallengeBeforeHelloFails) {
  ChaCha20 rng = make_rng(17);
  AuthInitiator user(1, user_key(), peer_key().pub, rng);
  AuthChallenge bogus;
  bogus.peer_id = 2;
  bogus.signature.assign(64, 0);
  EXPECT_FALSE(user.on_challenge(bogus).has_value());
}

TEST_F(AuthTest, ResponseBeforeHelloFails) {
  ChaCha20 rng = make_rng(18);
  AuthResponder peer(2, peer_key(), user_key().pub, rng);
  AuthResponse bogus;
  bogus.signature.assign(64, 0);
  bogus.encrypted_session_key.assign(64, 0);
  EXPECT_FALSE(peer.on_response(bogus));
}

TEST_F(AuthTest, SessionTagBindsKeyAndPayload) {
  SessionKey key{};
  key[0] = 1;
  const std::vector<std::uint8_t> payload{1, 2, 3};
  const auto tag = session_tag(key, payload);
  SessionKey other = key;
  other[31] = 9;
  EXPECT_NE(tag, session_tag(other, payload));
  const std::vector<std::uint8_t> payload2{1, 2, 4};
  EXPECT_NE(tag, session_tag(key, payload2));
}

}  // namespace
}  // namespace fairshare::crypto
