// ChaCha20 keystream correctness and the uniform() sampler.
#include <gtest/gtest.h>

#include <array>
#include <map>
#include <vector>

#include "crypto/chacha20.hpp"
#include "crypto/md5.hpp"  // to_hex

namespace fairshare::crypto {
namespace {

std::array<std::uint8_t, 32> zero_key{};
std::array<std::uint8_t, 12> zero_nonce{};

TEST(ChaCha20, AllZeroKeystreamVector) {
  // Well-known vector: key = 0^32, nonce = 0^12, counter = 0.  The first
  // keystream block begins 76 b8 e0 ad a0 f1 3d 90 ...
  ChaCha20 c(zero_key, zero_nonce, 0);
  std::array<std::uint8_t, 32> out{};
  c.generate(out);
  EXPECT_EQ(to_hex(out),
            "76b8e0ada0f13d90405d6ae55386bd28"
            "bdd219b8a08ded1aa836efcc8b770dc7");
}

TEST(ChaCha20, SecondBlockContinuesStream) {
  ChaCha20 whole(zero_key, zero_nonce, 0);
  std::array<std::uint8_t, 128> big{};
  whole.generate(big);

  ChaCha20 skip(zero_key, zero_nonce, 1);  // start at block 1
  std::array<std::uint8_t, 64> second{};
  skip.generate(second);
  EXPECT_TRUE(std::equal(second.begin(), second.end(), big.begin() + 64));
}

TEST(ChaCha20, ChunkedGenerationMatchesBulk) {
  ChaCha20 a(zero_key, zero_nonce, 0);
  ChaCha20 b(zero_key, zero_nonce, 0);
  std::vector<std::uint8_t> bulk(257);
  a.generate(bulk);
  std::vector<std::uint8_t> pieces;
  for (std::size_t chunk : {1u, 3u, 64u, 65u, 124u}) {
    std::vector<std::uint8_t> part(chunk);
    b.generate(part);
    pieces.insert(pieces.end(), part.begin(), part.end());
  }
  ASSERT_EQ(pieces.size(), bulk.size());
  EXPECT_EQ(pieces, bulk);
}

TEST(ChaCha20, NextByteMatchesGenerate) {
  ChaCha20 a(zero_key, zero_nonce, 0);
  ChaCha20 b(zero_key, zero_nonce, 0);
  std::array<std::uint8_t, 100> bulk{};
  a.generate(bulk);
  for (std::uint8_t expected : bulk) EXPECT_EQ(b.next_byte(), expected);
}

TEST(ChaCha20, KeySensitivity) {
  auto key2 = zero_key;
  key2[0] = 1;
  ChaCha20 a(zero_key, zero_nonce, 0);
  ChaCha20 b(key2, zero_nonce, 0);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(ChaCha20, NonceSensitivity) {
  auto nonce2 = zero_nonce;
  nonce2[11] = 7;
  ChaCha20 a(zero_key, zero_nonce, 0);
  ChaCha20 b(zero_key, nonce2, 0);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(ChaCha20, UniformStaysBelowBound) {
  ChaCha20 c(zero_key, zero_nonce, 0);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 255ull, 1000ull,
                              (1ull << 32), (1ull << 33) + 5}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(c.uniform(bound), bound);
  }
}

TEST(ChaCha20, UniformBoundOneAlwaysZero) {
  ChaCha20 c(zero_key, zero_nonce, 0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(c.uniform(1), 0u);
}

TEST(ChaCha20, UniformIsRoughlyUniform) {
  ChaCha20 c(zero_key, zero_nonce, 0);
  std::map<std::uint64_t, int> counts;
  const int trials = 16000;
  for (int i = 0; i < trials; ++i) ++counts[c.uniform(16)];
  for (const auto& [v, n] : counts) {
    EXPECT_LT(v, 16u);
    EXPECT_GT(n, trials / 16 / 2) << "value " << v << " undersampled";
    EXPECT_LT(n, trials / 16 * 2) << "value " << v << " oversampled";
  }
}

TEST(ChaCha20, KeystreamLooksBalanced) {
  // Sanity: bit balance of 64 KiB of keystream within 1%.
  ChaCha20 c(zero_key, zero_nonce, 0);
  std::vector<std::uint8_t> buf(65536);
  c.generate(buf);
  std::size_t ones = 0;
  for (std::uint8_t b : buf)
    for (int i = 0; i < 8; ++i) ones += (b >> i) & 1;
  const double frac = static_cast<double>(ones) / (buf.size() * 8.0);
  EXPECT_NEAR(frac, 0.5, 0.01);
}

}  // namespace
}  // namespace fairshare::crypto
