// RSA keypair generation, signatures, and short-message encryption.
#include <gtest/gtest.h>

#include <vector>

#include "crypto/chacha20.hpp"
#include "crypto/rsa.hpp"

namespace fairshare::crypto {
namespace {

ChaCha20 make_rng(std::uint8_t tag) {
  std::array<std::uint8_t, 32> key{};
  key[0] = tag;
  std::array<std::uint8_t, 12> nonce{};
  return ChaCha20(key, nonce, 0);
}

std::vector<std::uint8_t> bytes(std::string_view s) {
  return {s.begin(), s.end()};
}

class RsaTest : public ::testing::Test {
 protected:
  static const RsaKeyPair& key() {
    static ChaCha20 rng = make_rng(1);
    static const RsaKeyPair k = RsaKeyPair::generate(512, rng);
    return k;
  }
};

TEST_F(RsaTest, ModulusHasRequestedSize) {
  EXPECT_EQ(key().pub.n.bit_length(), 512u);
  EXPECT_EQ(key().pub.e, BigUInt{65537});
  EXPECT_EQ(key().pub.modulus_bytes(), 64u);
}

TEST_F(RsaTest, PrivateExponentInvertsPublic) {
  // m^(e*d) == m (mod n) for random small m.
  for (std::uint64_t m : {2ull, 3ull, 0xdeadbeefull}) {
    const BigUInt msg{m};
    const BigUInt c = BigUInt::mod_exp(msg, key().pub.e, key().pub.n);
    EXPECT_EQ(BigUInt::mod_exp(c, key().d, key().pub.n), msg);
  }
}

TEST_F(RsaTest, SignVerifyRoundTrip) {
  const auto msg = bytes("authenticate me");
  const auto sig = rsa_sign(key(), msg);
  EXPECT_EQ(sig.size(), key().pub.modulus_bytes());
  EXPECT_TRUE(rsa_verify(key().pub, msg, sig));
}

TEST_F(RsaTest, VerifyRejectsTamperedMessage) {
  const auto msg = bytes("authenticate me");
  const auto sig = rsa_sign(key(), msg);
  EXPECT_FALSE(rsa_verify(key().pub, bytes("authenticate mE"), sig));
}

TEST_F(RsaTest, VerifyRejectsTamperedSignature) {
  const auto msg = bytes("authenticate me");
  auto sig = rsa_sign(key(), msg);
  sig[10] ^= 0x40;
  EXPECT_FALSE(rsa_verify(key().pub, msg, sig));
}

TEST_F(RsaTest, VerifyRejectsWrongLengthSignature) {
  const auto msg = bytes("m");
  auto sig = rsa_sign(key(), msg);
  sig.pop_back();
  EXPECT_FALSE(rsa_verify(key().pub, msg, sig));
}

TEST_F(RsaTest, VerifyRejectsSignatureFromAnotherKey) {
  ChaCha20 rng = make_rng(2);
  const RsaKeyPair other = RsaKeyPair::generate(512, rng);
  const auto msg = bytes("cross-key");
  const auto sig = rsa_sign(other, msg);
  EXPECT_FALSE(rsa_verify(key().pub, msg, sig));
  EXPECT_TRUE(rsa_verify(other.pub, msg, sig));
}

TEST_F(RsaTest, EncryptDecryptRoundTrip) {
  const auto plain = bytes("session-key-0123456789abcdef");
  const auto cipher = rsa_encrypt(key().pub, plain);
  ASSERT_TRUE(cipher.has_value());
  EXPECT_EQ(cipher->size(), key().pub.modulus_bytes());
  const auto decrypted = rsa_decrypt(key(), *cipher);
  ASSERT_TRUE(decrypted.has_value());
  EXPECT_EQ(*decrypted, plain);
}

TEST_F(RsaTest, EncryptPreservesLeadingZeroBytes) {
  std::vector<std::uint8_t> plain{0x00, 0x00, 0xab};
  const auto cipher = rsa_encrypt(key().pub, plain);
  ASSERT_TRUE(cipher.has_value());
  const auto decrypted = rsa_decrypt(key(), *cipher);
  ASSERT_TRUE(decrypted.has_value());
  EXPECT_EQ(*decrypted, plain);
}

TEST_F(RsaTest, EncryptRejectsOversizedPlaintext) {
  const std::vector<std::uint8_t> plain(key().pub.modulus_bytes(), 0x5a);
  EXPECT_FALSE(rsa_encrypt(key().pub, plain).has_value());
}

TEST_F(RsaTest, DecryptRejectsWrongLengthCiphertext) {
  const std::vector<std::uint8_t> junk(10, 1);
  EXPECT_FALSE(rsa_decrypt(key(), junk).has_value());
}

TEST_F(RsaTest, DecryptWithWrongKeyFailsFraming) {
  ChaCha20 rng = make_rng(3);
  const RsaKeyPair other = RsaKeyPair::generate(512, rng);
  const auto plain = bytes("secret");
  const auto cipher = rsa_encrypt(key().pub, plain);
  ASSERT_TRUE(cipher.has_value());
  const auto decrypted = rsa_decrypt(other, *cipher);
  // Either framing fails or the bytes are wrong; both are acceptable.
  if (decrypted) EXPECT_NE(*decrypted, plain);
}

TEST(RsaDeterminism, SameSeedSameKey) {
  ChaCha20 rng1 = make_rng(4);
  ChaCha20 rng2 = make_rng(4);
  const RsaKeyPair a = RsaKeyPair::generate(256, rng1);
  const RsaKeyPair b = RsaKeyPair::generate(256, rng2);
  EXPECT_EQ(a.pub.n, b.pub.n);
  EXPECT_EQ(a.d, b.d);
}

}  // namespace
}  // namespace fairshare::crypto
