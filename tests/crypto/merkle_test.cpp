// Merkle tree construction, proofs, and verification.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/merkle.hpp"

namespace fairshare::crypto {
namespace {

std::vector<std::uint8_t> bytes(std::string_view s) {
  return {s.begin(), s.end()};
}

std::vector<Sha256Digest> make_leaves(std::size_t n) {
  std::vector<Sha256Digest> leaves;
  for (std::size_t i = 0; i < n; ++i) {
    const std::string item = "leaf-" + std::to_string(i);
    leaves.push_back(merkle_leaf_hash(bytes(item)));
  }
  return leaves;
}

TEST(Merkle, SingleLeafRootIsTheLeaf) {
  const auto leaves = make_leaves(1);
  MerkleTree tree(leaves);
  EXPECT_EQ(tree.root(), leaves[0]);
  EXPECT_TRUE(MerkleTree::verify(tree.root(), 1, 0, leaves[0], {}));
}

TEST(Merkle, RootIsDeterministic) {
  MerkleTree a(make_leaves(7));
  MerkleTree b(make_leaves(7));
  EXPECT_EQ(a.root(), b.root());
}

TEST(Merkle, RootDependsOnEveryLeaf) {
  auto leaves = make_leaves(8);
  MerkleTree base(leaves);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    auto mutated = leaves;
    mutated[i][0] ^= 1;
    EXPECT_NE(MerkleTree(mutated).root(), base.root()) << "leaf " << i;
  }
}

TEST(Merkle, RootDependsOnLeafOrder) {
  auto leaves = make_leaves(4);
  MerkleTree base(leaves);
  std::swap(leaves[1], leaves[2]);
  EXPECT_NE(MerkleTree(leaves).root(), base.root());
}

TEST(Merkle, AllProofsVerifyForAllSizes) {
  for (std::size_t n = 1; n <= 20; ++n) {
    const auto leaves = make_leaves(n);
    MerkleTree tree(leaves);
    for (std::size_t i = 0; i < n; ++i) {
      const auto proof = tree.proof(i);
      EXPECT_TRUE(MerkleTree::verify(tree.root(), n, i, leaves[i], proof))
          << "n=" << n << " i=" << i;
      EXPECT_EQ(proof.size(), MerkleTree::proof_length(n, i))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(Merkle, ProofSizeIsLogarithmic) {
  const std::size_t n = 1024;
  MerkleTree tree(make_leaves(n));
  for (std::size_t i : {0u, 511u, 1023u})
    EXPECT_EQ(tree.proof(i).size(), 10u);  // log2(1024)
}

TEST(Merkle, TamperedLeafRejected) {
  const auto leaves = make_leaves(9);
  MerkleTree tree(leaves);
  auto bad_leaf = leaves[4];
  bad_leaf[10] ^= 0xFF;
  EXPECT_FALSE(
      MerkleTree::verify(tree.root(), 9, 4, bad_leaf, tree.proof(4)));
}

TEST(Merkle, TamperedProofRejected) {
  const auto leaves = make_leaves(9);
  MerkleTree tree(leaves);
  auto proof = tree.proof(4);
  ASSERT_FALSE(proof.empty());
  proof[0][0] ^= 1;
  EXPECT_FALSE(MerkleTree::verify(tree.root(), 9, 4, leaves[4], proof));
}

TEST(Merkle, WrongIndexRejected) {
  const auto leaves = make_leaves(8);
  MerkleTree tree(leaves);
  EXPECT_FALSE(
      MerkleTree::verify(tree.root(), 8, 5, leaves[4], tree.proof(4)));
  EXPECT_FALSE(
      MerkleTree::verify(tree.root(), 8, 8, leaves[4], tree.proof(4)));
}

TEST(Merkle, WrongLeafCountRejected) {
  const auto leaves = make_leaves(8);
  MerkleTree tree(leaves);
  // Claiming a different tree size changes the promotion layout.
  EXPECT_FALSE(
      MerkleTree::verify(tree.root(), 9, 4, leaves[4], tree.proof(4)));
}

TEST(Merkle, TruncatedAndPaddedProofsRejected) {
  const auto leaves = make_leaves(8);
  MerkleTree tree(leaves);
  auto proof = tree.proof(3);
  auto truncated = proof;
  truncated.pop_back();
  EXPECT_FALSE(MerkleTree::verify(tree.root(), 8, 3, leaves[3], truncated));
  auto padded = proof;
  padded.push_back(proof[0]);
  EXPECT_FALSE(MerkleTree::verify(tree.root(), 8, 3, leaves[3], padded));
}

TEST(Merkle, CrossLeafProofRejected) {
  const auto leaves = make_leaves(16);
  MerkleTree tree(leaves);
  EXPECT_FALSE(
      MerkleTree::verify(tree.root(), 16, 2, leaves[2], tree.proof(9)));
}

TEST(Merkle, DomainSeparationLeafVsInterior) {
  // A 65-byte buffer that mimics an interior preimage must not produce an
  // interior hash (leaf tag 0x00 differs from interior tag 0x01).
  const auto a = merkle_leaf_hash(bytes("x"));
  const auto b = merkle_leaf_hash(bytes("y"));
  std::vector<std::uint8_t> concat;
  concat.insert(concat.end(), a.begin(), a.end());
  concat.insert(concat.end(), b.begin(), b.end());
  MerkleTree two({a, b});
  EXPECT_NE(merkle_leaf_hash(concat), two.root());
}

TEST(Merkle, ByteAndU8LeafOverloadsAgree) {
  const auto u8 = bytes("same-content");
  const auto as_bytes = std::as_bytes(std::span(u8.data(), u8.size()));
  EXPECT_EQ(merkle_leaf_hash(u8), merkle_leaf_hash(as_bytes));
}

}  // namespace
}  // namespace fairshare::crypto
