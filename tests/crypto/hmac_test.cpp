// RFC 4231 HMAC-SHA256 test vectors and constant-time comparison.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/hmac.hpp"
#include "crypto/md5.hpp"  // to_hex

namespace fairshare::crypto {
namespace {

std::vector<std::uint8_t> bytes(std::string_view s) {
  return {s.begin(), s.end()};
}

TEST(HmacSha256, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  const auto data = bytes("Hi There");
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  const auto key = bytes("Jefe");
  const auto data = bytes("what do ya want for nothing?");
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  const std::vector<std::uint8_t> key(20, 0xaa);
  const std::vector<std::uint8_t> data(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, LongKeyIsHashedFirst) {
  // RFC 4231 case 6: 131-byte key, "Test Using Larger Than Block-Size Key".
  const std::vector<std::uint8_t> key(131, 0xaa);
  const auto data = bytes("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, KeySensitivity) {
  const auto data = bytes("payload");
  EXPECT_NE(hmac_sha256(bytes("key1"), data), hmac_sha256(bytes("key2"), data));
}

TEST(HmacSha256, MessageSensitivity) {
  const auto key = bytes("key");
  EXPECT_NE(hmac_sha256(key, bytes("payload-a")),
            hmac_sha256(key, bytes("payload-b")));
}

TEST(DigestEqual, EqualAndUnequal) {
  const auto key = bytes("k");
  const auto a = hmac_sha256(key, bytes("m"));
  auto b = a;
  EXPECT_TRUE(digest_equal(a, b));
  b[31] ^= 1;
  EXPECT_FALSE(digest_equal(a, b));
}

TEST(DigestEqual, LengthMismatchIsUnequal) {
  const std::vector<std::uint8_t> a(32, 0);
  const std::vector<std::uint8_t> b(31, 0);
  EXPECT_FALSE(digest_equal(a, b));
}

}  // namespace
}  // namespace fairshare::crypto
