// FIPS 180-4 / NIST test vectors and incremental behavior for SHA-256.
#include <gtest/gtest.h>

#include <string>

#include "crypto/md5.hpp"  // to_hex
#include "crypto/sha256.hpp"

namespace fairshare::crypto {
namespace {

std::string sha_hex(std::string_view s) { return to_hex(Sha256::hash(s)); }

TEST(Sha256, NistShortVectors) {
  EXPECT_EQ(sha_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(sha_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(sha_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i)
    h.update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(chunk.data()), chunk.size()));
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  const std::string expected = sha_hex(msg);
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(msg.data()), split));
    h.update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(msg.data()) + split,
        msg.size() - split));
    EXPECT_EQ(to_hex(h.finish()), expected) << "split at " << split;
  }
}

TEST(Sha256, BlockBoundaryLengths) {
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 127u, 128u}) {
    const std::string msg(len, 'y');
    Sha256 whole;
    whole.update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
    Sha256 bytewise;
    for (char c : msg) {
      const auto b = static_cast<std::uint8_t>(c);
      bytewise.update(std::span<const std::uint8_t>(&b, 1));
    }
    EXPECT_EQ(bytewise.finish(), whole.finish()) << "len " << len;
  }
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 h;
  h.update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>("junk"), 4));
  h.reset();
  EXPECT_EQ(to_hex(h.finish()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, AvalancheOnSingleBitFlip) {
  const auto a = Sha256::hash("fairshare");
  const auto b = Sha256::hash("fairshbre");  // one changed character
  int differing_bits = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint8_t x = a[i] ^ b[i];
    while (x) {
      differing_bits += x & 1;
      x >>= 1;
    }
  }
  // Expect roughly half of 256 bits to differ; 80 is a loose floor.
  EXPECT_GT(differing_bits, 80);
}

}  // namespace
}  // namespace fairshare::crypto
