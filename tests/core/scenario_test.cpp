// Scenario builder facade.
#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "sim/metrics.hpp"

namespace fairshare::core {
namespace {

TEST(Scenario, SaturatedScenarioConverges) {
  auto scenario = saturated_scenario({100, 200, 300});
  sim::Simulator s = scenario.build();
  s.run(5000);
  EXPECT_NEAR(s.download(0).mean(4000, 5000), 100, 15);
  EXPECT_NEAR(s.download(1).mean(4000, 5000), 200, 25);
  EXPECT_NEAR(s.download(2).mean(4000, 5000), 300, 35);
}

TEST(Scenario, DefaultsAreSaturatedEq2) {
  Scenario sc;
  sc.add_peer(500);
  sc.add_peer(500);
  sim::Simulator s = sc.build();
  s.run(100);
  EXPECT_DOUBLE_EQ(s.empirical_gamma(0), 1.0);
  EXPECT_NEAR(s.average_download(0), 500, 1e-6);
}

TEST(Scenario, DemandOverride) {
  Scenario sc;
  sc.add_peer(100);
  sc.add_peer(100);
  sc.demand(0, std::make_shared<sim::NeverDemand>());
  sim::Simulator s = sc.build();
  s.run(50);
  EXPECT_DOUBLE_EQ(s.average_download(0), 0.0);
  EXPECT_DOUBLE_EQ(s.average_download(1), 200.0);  // gets both uploads
}

TEST(Scenario, ContributionGate) {
  Scenario sc;
  sc.add_peer(100);
  sc.add_peer(100);
  sc.contributes_when(0, [](std::uint64_t t) { return t >= 10; });
  sim::Simulator s = sc.build();
  s.run(20);
  EXPECT_DOUBLE_EQ(s.offered(0).at(5), 0.0);
  EXPECT_DOUBLE_EQ(s.offered(0).at(15), 100.0);
}

TEST(Scenario, CapacitySchedule) {
  Scenario sc;
  sc.add_peer(100);
  sc.capacity_schedule(0, [](std::uint64_t t) { return t < 5 ? 80.0 : 40.0; });
  sim::Simulator s = sc.build();
  s.run(10);
  EXPECT_DOUBLE_EQ(s.offered(0).at(0), 80.0);
  EXPECT_DOUBLE_EQ(s.offered(0).at(9), 40.0);
}

TEST(Scenario, DeclaredCapacityFeedsEquation3) {
  Scenario sc;
  sc.add_peer(100);
  sc.add_peer(100);
  sc.declares(0, 900.0);
  for (std::size_t i = 0; i < 2; ++i)
    sc.policy(i, std::make_shared<alloc::DeclaredProportionalPolicy>());
  sim::Simulator s = sc.build();
  s.run(100);
  // Liar (peer 0) claims 900 vs honest 100: gets 90% of both uploads.
  EXPECT_NEAR(s.average_download(0), 180.0, 1.0);
  EXPECT_NEAR(s.average_download(1), 20.0, 1.0);
}

TEST(Scenario, QuantumPropagates) {
  Scenario sc;
  sc.quantum(40.0);
  sc.add_peer(100);
  sc.add_peer(100);
  sim::Simulator s = sc.build();
  s.run(5);
  // Equal split 50/50 quantized to 40: each user gets 80.
  EXPECT_NEAR(s.download(0).at(0), 80.0, 1e-9);
}

TEST(Scenario, JainIndexOfFairSystemNearOne) {
  auto sc = saturated_scenario({400, 400, 400, 400});
  sim::Simulator s = sc.build();
  s.run(3000);
  std::vector<double> ratios;
  for (std::size_t i = 0; i < s.n(); ++i)
    ratios.push_back(s.download(i).mean(2000, 3000) / 400.0);
  EXPECT_GT(sim::jain_index(ratios), 0.999);
}

}  // namespace
}  // namespace fairshare::core
