// Unit tests for the fairness metrics (the Theorem 1 / Corollary 1
// measurement machinery itself).
#include <gtest/gtest.h>

#include <memory>

#include "alloc/policies.hpp"
#include "sim/metrics.hpp"

namespace fairshare::sim {
namespace {

PeerSetup eq2_peer(double kbps, std::size_t n) {
  PeerSetup p;
  p.upload_kbps = kbps;
  p.demand = std::make_shared<AlwaysDemand>();
  p.policy = std::make_shared<alloc::ProportionalContributionPolicy>(n, 1.0);
  return p;
}

TEST(JainIndex, PerfectEqualityIsOne) {
  EXPECT_DOUBLE_EQ(jain_index({5, 5, 5, 5}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({1}), 1.0);
}

TEST(JainIndex, AllZerosConventionallyOne) {
  EXPECT_DOUBLE_EQ(jain_index({0, 0, 0}), 1.0);
}

TEST(JainIndex, KnownUnfairValue) {
  // One user hogging everything among n: index = 1/n.
  EXPECT_NEAR(jain_index({1, 0, 0, 0}), 0.25, 1e-12);
  // Classic two-value case: {1, 3} -> (4^2)/(2*10) = 0.8.
  EXPECT_NEAR(jain_index({1, 3}), 0.8, 1e-12);
}

TEST(JainIndex, ScaleInvariant) {
  EXPECT_NEAR(jain_index({1, 2, 3}), jain_index({10, 20, 30}), 1e-12);
}

TEST(PairwiseUnfairness, SymmetricExchangeIsZero) {
  std::vector<PeerSetup> peers;
  for (int i = 0; i < 3; ++i) peers.push_back(eq2_peer(300, 3));
  Simulator sim(std::move(peers));
  sim.run(2000);
  EXPECT_LT(pairwise_unfairness(sim), 1e-6);  // symmetric setup: exact
}

TEST(PairwiseUnfairness, DetectsOneSidedFlows) {
  // Peer 0 never requests: it gives but never receives -> S_01 > 0,
  // S_10 = 0, a maximal pairwise asymmetry.
  std::vector<PeerSetup> peers;
  auto giver = eq2_peer(300, 2);
  giver.demand = std::make_shared<NeverDemand>();
  peers.push_back(std::move(giver));
  peers.push_back(eq2_peer(300, 2));
  Simulator sim(std::move(peers));
  sim.run(500);
  EXPECT_GT(pairwise_unfairness(sim), 1.0);
}

TEST(PairwiseMatrix, MatchesContributionAverages) {
  std::vector<PeerSetup> peers;
  for (int i = 0; i < 3; ++i) peers.push_back(eq2_peer(100 + 100 * i, 3));
  Simulator sim(std::move(peers));
  sim.run(100);
  const auto m = pairwise_matrix(sim);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(m[i * 3 + j], sim.average_pairwise(i, j));
}

TEST(IncentiveBound, SaturatedNetworkBoundIsTight) {
  // gamma = 1 everywhere: free bandwidth term vanishes, bound = isolated
  // = mu, and measured = mu too.
  std::vector<PeerSetup> peers;
  for (int i = 0; i < 4; ++i) peers.push_back(eq2_peer(400, 4));
  Simulator sim(std::move(peers));
  sim.run(2000);
  for (std::size_t i = 0; i < 4; ++i) {
    const IncentiveBound b = incentive_bound(sim, i);
    EXPECT_NEAR(b.isolated, 400.0, 1e-9);
    EXPECT_NEAR(b.bound, 400.0, 1e-9);  // (1 - gamma_l) = 0 kills the sum
    EXPECT_NEAR(b.average_download, 400.0, 1e-6);
    EXPECT_TRUE(b.holds());
  }
}

TEST(IncentiveBound, FreeBandwidthTermAppearsWhenOthersIdle) {
  // Peer 1 contributes but never downloads (gamma = 0): peer 0's bound
  // includes (1 - 0) * mu_bar_10 — everything peer 1 gave it.
  std::vector<PeerSetup> peers;
  peers.push_back(eq2_peer(200, 2));
  auto idle = eq2_peer(200, 2);
  idle.demand = std::make_shared<NeverDemand>();
  peers.push_back(std::move(idle));
  Simulator sim(std::move(peers));
  sim.run(1000);
  const IncentiveBound b = incentive_bound(sim, 0);
  EXPECT_NEAR(b.isolated, 200.0, 1e-9);
  EXPECT_NEAR(b.bound, 400.0, 1.0);  // isolated + peer 1's whole upload
  EXPECT_NEAR(b.average_download, 400.0, 1e-6);
  EXPECT_TRUE(b.holds());
}

}  // namespace
}  // namespace fairshare::sim
