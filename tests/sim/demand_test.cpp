// Demand processes I_i(t).
#include <gtest/gtest.h>

#include "sim/demand.hpp"

namespace fairshare::sim {
namespace {

TEST(AlwaysNever, Basics) {
  AlwaysDemand always;
  NeverDemand never;
  for (std::uint64_t t : {0ull, 5ull, 1000000ull}) {
    EXPECT_TRUE(always.requests(t));
    EXPECT_FALSE(never.requests(t));
  }
}

TEST(Bernoulli, EmpiricalRateMatchesGamma) {
  for (double gamma : {0.1, 0.5, 0.9}) {
    BernoulliDemand demand(gamma, 42);
    int hits = 0;
    const int trials = 20000;
    for (int t = 0; t < trials; ++t)
      if (demand.requests(static_cast<std::uint64_t>(t))) ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / trials, gamma, 0.02) << gamma;
  }
}

TEST(Bernoulli, ExtremeGammas) {
  BernoulliDemand zero(0.0, 1);
  BernoulliDemand one(1.0, 1);
  for (int t = 0; t < 100; ++t) {
    EXPECT_FALSE(zero.requests(static_cast<std::uint64_t>(t)));
    EXPECT_TRUE(one.requests(static_cast<std::uint64_t>(t)));
  }
}

TEST(Interval, RespectsHalfOpenBounds) {
  IntervalDemand demand({{10, 20}, {30, 31}});
  EXPECT_FALSE(demand.requests(9));
  EXPECT_TRUE(demand.requests(10));
  EXPECT_TRUE(demand.requests(19));
  EXPECT_FALSE(demand.requests(20));
  EXPECT_TRUE(demand.requests(30));
  EXPECT_FALSE(demand.requests(31));
  EXPECT_FALSE(demand.requests(1000));
}

TEST(Interval, EmptyNeverRequests) {
  IntervalDemand demand({});
  EXPECT_FALSE(demand.requests(0));
}

TEST(RandomBlocks, ExactlyTwelveOfTwentyFourHoursActive) {
  // The Figs 6-7 pattern: 12 of 24 one-hour blocks per day.
  const std::uint64_t hour = 3600;
  RandomBlocksDemand demand(hour, 24, 12, 7);
  for (int day = 0; day < 3; ++day) {
    int active_hours = 0;
    for (int h = 0; h < 24; ++h) {
      const std::uint64_t slot =
          static_cast<std::uint64_t>(day) * 24 * hour +
          static_cast<std::uint64_t>(h) * hour;
      // Whole block has a constant value.
      const bool at_start = demand.requests(slot);
      EXPECT_EQ(demand.requests(slot + hour - 1), at_start);
      if (at_start) ++active_hours;
    }
    EXPECT_EQ(active_hours, 12) << "day " << day;
  }
}

TEST(RandomBlocks, AllBlocksActiveWhenSaturated) {
  RandomBlocksDemand demand(10, 4, 4, 1);
  for (std::uint64_t t = 0; t < 40; ++t) EXPECT_TRUE(demand.requests(t));
}

TEST(RandomBlocks, NoBlocksActiveWhenZero) {
  RandomBlocksDemand demand(10, 4, 0, 1);
  for (std::uint64_t t = 0; t < 40; ++t) EXPECT_FALSE(demand.requests(t));
}

TEST(RandomBlocks, DeterministicForFixedSeed) {
  RandomBlocksDemand a(100, 24, 12, 99);
  RandomBlocksDemand b(100, 24, 12, 99);
  for (std::uint64_t t = 0; t < 24 * 100 * 2; t += 37)
    EXPECT_EQ(a.requests(t), b.requests(t)) << t;
}

TEST(RandomBlocks, DifferentSeedsDiffer) {
  RandomBlocksDemand a(100, 24, 12, 1);
  RandomBlocksDemand b(100, 24, 12, 2);
  int differences = 0;
  for (std::uint64_t t = 0; t < 24 * 100; t += 100)
    if (a.requests(t) != b.requests(t)) ++differences;
  EXPECT_GT(differences, 0);
}

}  // namespace
}  // namespace fairshare::sim
