// Workload schema, DXT importer (against committed fixtures + goldens),
// and the synthetic generator families.
//
// Goldens cover only importer output — to_text of a parsed trace is pure
// integer formatting, stable across platforms.  Generator traces depend
// on libm (exp/cos/sqrt) and are checked by run-twice determinism and
// shape assertions instead of byte-for-byte files.
//
// Regenerate goldens after an intentional format change with
//   FAIRSHARE_REGEN_GOLDEN=1 ./sim_workload_test
// and review the diff before committing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/workload.hpp"

#ifndef SIM_GOLDEN_DIR
#define SIM_GOLDEN_DIR "."
#endif
#ifndef SIM_DATA_DIR
#define SIM_DATA_DIR "."
#endif

namespace {

using namespace fairshare;

std::string data_path(const std::string& file) {
  return std::string(SIM_DATA_DIR) + "/" + file;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void compare_golden(const std::string& actual, const std::string& file) {
  const std::string path = std::string(SIM_GOLDEN_DIR) + "/" + file;
  if (std::getenv("FAIRSHARE_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }
  const std::string expected = read_file(path);
  ASSERT_FALSE(expected.empty()) << "missing golden " << path;
  EXPECT_EQ(actual, expected) << "importer output drifted from " << path
                              << "; regenerate deliberately if intended";
}

// ---------------------------------------------------------------- schema

TEST(WorkloadTrace, NormalizeSortsAndAggregates) {
  sim::WorkloadTrace trace;
  trace.add({2, 5, 100});
  trace.add({1, 3, 200});
  trace.add({1, 5, 50});
  EXPECT_FALSE(trace.is_sorted());
  trace.normalize();
  ASSERT_TRUE(trace.is_sorted());
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.events()[0].user_id, 1u);
  EXPECT_EQ(trace.events()[1].user_id, 1u);
  EXPECT_EQ(trace.events()[2].user_id, 2u);
  EXPECT_EQ(trace.horizon(), 6u);
  EXPECT_EQ(trace.total_bytes(), 350u);
  EXPECT_EQ(trace.user_bytes(1), 250u);
  EXPECT_EQ(trace.user_bytes(2), 100u);
  EXPECT_EQ(trace.users(), (std::vector<std::uint64_t>{1, 2}));
}

TEST(WorkloadTrace, QuantizedRoundsBytesUpToUnit) {
  sim::WorkloadTrace trace;
  trace.add({1, 0, 1});        // -> 1 file
  trace.add({1, 1, 20000});    // exactly one file, unchanged
  trace.add({2, 2, 20001});    // -> 2 files
  trace.normalize();
  const sim::WorkloadTrace q = trace.quantized(20000);
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q.events()[0].bytes, 20000u);
  EXPECT_EQ(q.events()[1].bytes, 20000u);
  EXPECT_EQ(q.events()[2].bytes, 40000u);
  // Original untouched.
  EXPECT_EQ(trace.total_bytes(), 1u + 20000u + 20001u);
}

// -------------------------------------------------------------- importer

TEST(DxtImporter, ValidFixtureMatchesGolden) {
  std::string error;
  sim::DxtStats stats;
  const auto trace =
      sim::load_dxt_file(data_path("valid.dxt"), 1.0, &error, &stats);
  ASSERT_TRUE(trace.has_value()) << error;
  EXPECT_EQ(stats.events, 6u);
  EXPECT_EQ(stats.skipped_zero, 0u);
  EXPECT_FALSE(stats.reordered);
  EXPECT_EQ(trace->users(), (std::vector<std::uint64_t>{1, 2, 3}));
  // start=0.60 at slot_seconds=1.0 lands in slot 0; 1.20/1.90 in slot 1.
  EXPECT_EQ(trace->horizon(), 4u);
  compare_golden(sim::to_text(*trace), "dxt_valid.txt");
}

TEST(DxtImporter, SubSecondSlotsRescaleArrivals) {
  std::string error;
  const auto trace = sim::load_dxt_file(data_path("valid.dxt"), 0.5, &error);
  ASSERT_TRUE(trace.has_value()) << error;
  // First record starts at 0.01s -> slot 0; last at 3.75s -> slot 7.
  EXPECT_EQ(trace->horizon(), 8u);
  EXPECT_EQ(trace->total_bytes(),
            65536u + 32768u + 16384u + 131072u + 8192u + 4096u);
}

TEST(DxtImporter, TruncatedLineFailsWithLineNumber) {
  std::string error;
  const auto trace = sim::load_dxt_file(data_path("truncated.dxt"), 1.0, &error);
  EXPECT_FALSE(trace.has_value());
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
  EXPECT_NE(error.find("expected 8 fields"), std::string::npos) << error;
}

TEST(DxtImporter, OutOfOrderFixtureIsSortedAndFlagged) {
  std::string error;
  sim::DxtStats stats;
  const auto trace =
      sim::load_dxt_file(data_path("out_of_order.dxt"), 1.0, &error, &stats);
  ASSERT_TRUE(trace.has_value()) << error;
  EXPECT_TRUE(stats.reordered);
  ASSERT_TRUE(trace->is_sorted());
  for (std::size_t i = 1; i < trace->size(); ++i)
    EXPECT_LE(trace->events()[i - 1].arrival_slot,
              trace->events()[i].arrival_slot);
  compare_golden(sim::to_text(*trace), "dxt_out_of_order.txt");
}

TEST(DxtImporter, DuplicateUsersMergeAndZeroLengthDrops) {
  std::string error;
  sim::DxtStats stats;
  const auto trace = sim::load_dxt_file(data_path("duplicate_users.dxt"), 1.0,
                                        &error, &stats);
  ASSERT_TRUE(trace.has_value()) << error;
  EXPECT_EQ(stats.events, 5u);
  EXPECT_EQ(stats.skipped_zero, 1u);  // rank 9's zero-length probe
  EXPECT_EQ(trace->users(), (std::vector<std::uint64_t>{7, 9}));
  EXPECT_EQ(trace->user_bytes(7), 30000u + 30000u + 10000u + 25000u);
  EXPECT_EQ(trace->user_bytes(9), 50000u);
  compare_golden(sim::to_text(*trace), "dxt_duplicate_users.txt");
}

TEST(DxtImporter, UnknownOpFails) {
  std::string error;
  const auto trace =
      sim::parse_dxt("X_POSIX 1 seek 0 0 4096 0.1 0.2\n", 1.0, &error);
  EXPECT_FALSE(trace.has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  EXPECT_NE(error.find("unknown op"), std::string::npos) << error;
}

TEST(DxtImporter, BadNumberFails) {
  std::string error;
  const auto trace =
      sim::parse_dxt("X_POSIX 1 read 0 0 4z96 0.1 0.2\n", 1.0, &error);
  EXPECT_FALSE(trace.has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
}

TEST(DxtImporter, EndBeforeStartFails) {
  std::string error;
  const auto trace =
      sim::parse_dxt("X_POSIX 1 read 0 0 4096 2.0 1.0\n", 1.0, &error);
  EXPECT_FALSE(trace.has_value());
  EXPECT_NE(error.find("end precedes start"), std::string::npos) << error;
}

TEST(DxtImporter, CommentsAndBlanksIgnored) {
  std::string error;
  const auto trace =
      sim::parse_dxt("# header\n\nX_POSIX 4 read 0 0 512 0.0 0.1\n", 1.0,
                     &error);
  ASSERT_TRUE(trace.has_value()) << error;
  EXPECT_EQ(trace->size(), 1u);
  EXPECT_EQ(trace->events()[0].user_id, 4u);
}

// ------------------------------------------------------------ generators

TEST(Generators, SameSeedSameTrace) {
  EXPECT_EQ(sim::poisson_trace({}).events(), sim::poisson_trace({}).events());
  EXPECT_EQ(sim::zipf_trace({}).events(), sim::zipf_trace({}).events());
  EXPECT_EQ(sim::flash_crowd_trace({}).events(),
            sim::flash_crowd_trace({}).events());
  EXPECT_EQ(sim::diurnal_trace({}).events(), sim::diurnal_trace({}).events());
}

TEST(Generators, DifferentSeedsDiffer) {
  sim::PoissonConfig a;
  sim::PoissonConfig b;
  b.seed = 2;
  EXPECT_NE(sim::poisson_trace(a).events(), sim::poisson_trace(b).events());
}

TEST(Generators, TracesAreNormalizedAndBounded) {
  const sim::WorkloadTrace traces[] = {
      sim::poisson_trace({}), sim::zipf_trace({}), sim::flash_crowd_trace({}),
      sim::diurnal_trace({})};
  for (const sim::WorkloadTrace& t : traces) {
    EXPECT_TRUE(t.is_sorted());
    EXPECT_FALSE(t.empty());
    for (const sim::WorkloadEvent& e : t.events()) {
      EXPECT_GE(e.user_id, 1u);
      EXPECT_GT(e.bytes, 0u);
    }
  }
}

TEST(Generators, FlashCrowdBurstLandsInBurstSlot) {
  sim::FlashCrowdConfig config;
  config.base_events_per_user_slot = 0.0;  // isolate the burst
  config.burst_slot = 8;
  config.burst_events = 12;
  const sim::WorkloadTrace trace = sim::flash_crowd_trace(config);
  ASSERT_EQ(trace.size(), 12u);
  for (const sim::WorkloadEvent& e : trace.events())
    EXPECT_EQ(e.arrival_slot, 8u);
  // Round-robin spread: every user participates.
  EXPECT_EQ(trace.users().size(), config.users);
}

TEST(Generators, DiurnalPeakBeatsTrough) {
  sim::DiurnalConfig config;
  config.users = 8;
  config.horizon = 96;
  config.period = 48;
  config.peak_events_per_user_slot = 0.5;
  config.trough_events_per_user_slot = 0.0;
  const sim::WorkloadTrace trace = sim::diurnal_trace(config);
  // Count arrivals near the peaks (period/2 and 3*period/2) vs troughs.
  std::size_t near_peak = 0;
  std::size_t near_trough = 0;
  for (const sim::WorkloadEvent& e : trace.events()) {
    const std::uint64_t phase = e.arrival_slot % config.period;
    if (phase >= 18 && phase < 30) ++near_peak;
    if (phase < 6 || phase >= 42) ++near_trough;
  }
  EXPECT_GT(near_peak, near_trough);
}

TEST(Generators, ZipfSkewsTowardLowRanks) {
  sim::ZipfConfig config;
  config.users = 8;
  config.events = 400;
  config.s = 1.4;
  const sim::WorkloadTrace trace = sim::zipf_trace(config);
  std::size_t head = 0;  // events on ranks 1-2
  for (const sim::WorkloadEvent& e : trace.events())
    if (e.user_id <= 2) ++head;
  EXPECT_GT(head * 2, trace.size());  // top quarter of ranks takes majority
}

// ----------------------------------------------------------- TraceDemand

TEST(TraceDemand, ClosedLoopBacklogAndDone) {
  sim::WorkloadTrace trace;
  trace.add({1, 2, 1000});
  trace.add({1, 5, 500});
  trace.add({2, 0, 999});  // another user's events are invisible to user 1
  trace.normalize();

  sim::TraceDemand demand(trace, 1);
  EXPECT_EQ(demand.total_bytes(), 1500u);
  EXPECT_FALSE(demand.requests(0));
  EXPECT_FALSE(demand.requests(1));
  EXPECT_TRUE(demand.requests(2));
  EXPECT_DOUBLE_EQ(demand.backlog(), 1000.0);

  // Over-delivery is clamped to what has arrived.
  EXPECT_DOUBLE_EQ(demand.deliver(1500.0), 1000.0);
  EXPECT_FALSE(demand.requests(3));
  EXPECT_FALSE(demand.done());  // slot-5 event still pending

  EXPECT_TRUE(demand.requests(5));
  EXPECT_DOUBLE_EQ(demand.deliver(200.0), 200.0);
  EXPECT_TRUE(demand.requests(5));  // re-query same slot is allowed
  EXPECT_DOUBLE_EQ(demand.deliver(300.0), 300.0);
  EXPECT_FALSE(demand.requests(6));
  EXPECT_TRUE(demand.done());
}

TEST(TraceDemand, UserWithNoEventsNeverRequests) {
  sim::WorkloadTrace trace;
  trace.add({1, 0, 100});
  trace.normalize();
  sim::TraceDemand demand(trace, 42);
  EXPECT_EQ(demand.total_bytes(), 0u);
  for (std::uint64_t slot = 0; slot < 8; ++slot)
    EXPECT_FALSE(demand.requests(slot));
  EXPECT_TRUE(demand.done());
}

}  // namespace
