// Engine mechanics: conservation, physics enforcement, schedules, gates,
// quantization.
#include <gtest/gtest.h>

#include <memory>

#include "alloc/policies.hpp"
#include "sim/simulator.hpp"

namespace fairshare::sim {
namespace {

PeerSetup eq2_peer(double kbps, std::size_t n, double epsilon = 1.0) {
  PeerSetup p;
  p.upload_kbps = kbps;
  p.demand = std::make_shared<AlwaysDemand>();
  p.policy =
      std::make_shared<alloc::ProportionalContributionPolicy>(n, epsilon);
  return p;
}

TEST(Simulator, BandwidthConservation) {
  // Total download == total offered upload when everyone requests.
  std::vector<PeerSetup> peers;
  for (double u : {100.0, 200.0, 300.0}) peers.push_back(eq2_peer(u, 3));
  Simulator sim(std::move(peers));
  sim.run(50);
  for (std::size_t t = 0; t < 50; ++t) {
    double down = 0, up = 0;
    for (std::size_t i = 0; i < sim.n(); ++i) {
      down += sim.download(i).at(t);
      up += sim.offered(i).at(t);
    }
    EXPECT_NEAR(down, up, 1e-9) << "slot " << t;
  }
}

TEST(Simulator, ContributionMatrixMatchesDownloads) {
  std::vector<PeerSetup> peers;
  for (double u : {150.0, 450.0}) peers.push_back(eq2_peer(u, 2));
  Simulator sim(std::move(peers));
  sim.run(100);
  for (std::size_t j = 0; j < 2; ++j) {
    const double via_matrix =
        sim.contribution(0, j) + sim.contribution(1, j);
    double via_trace = 0;
    for (std::size_t t = 0; t < 100; ++t) via_trace += sim.download(j).at(t);
    EXPECT_NEAR(via_matrix, via_trace, 1e-9);
  }
}

// A policy that tries to allocate more than the peer's capacity and to
// serve idle users; the engine must clamp both.
class OverAllocatingPolicy final : public alloc::AllocationPolicy {
 public:
  void allocate(const alloc::PeerContext& ctx,
                std::span<double> out) override {
    for (auto& v : out) v = ctx.capacity;  // n * capacity total, everyone
  }
};

TEST(Simulator, EngineClampsOverAllocation) {
  std::vector<PeerSetup> peers;
  peers.push_back(eq2_peer(100, 2));
  PeerSetup cheat;
  cheat.upload_kbps = 100;
  cheat.demand = std::make_shared<NeverDemand>();  // idle user
  cheat.policy = std::make_shared<OverAllocatingPolicy>();
  peers.push_back(std::move(cheat));
  Simulator sim(std::move(peers));
  sim.run(10);
  for (std::size_t t = 0; t < 10; ++t) {
    // Peer 1 offered 100; its total giving cannot exceed that, and the
    // idle user 1 must receive nothing.
    EXPECT_LE(sim.download(0).at(t), 200.0 + 1e-9);
    EXPECT_DOUBLE_EQ(sim.download(1).at(t), 0.0);
  }
  EXPECT_NEAR(sim.contribution(1, 0), 10 * 100.0, 1e-6);
}

// A policy returning negative allocations; engine must zero them.
class NegativePolicy final : public alloc::AllocationPolicy {
 public:
  void allocate(const alloc::PeerContext&, std::span<double> out) override {
    for (auto& v : out) v = -50.0;
  }
};

TEST(Simulator, NegativeAllocationsZeroed) {
  std::vector<PeerSetup> peers;
  PeerSetup p;
  p.upload_kbps = 100;
  p.demand = std::make_shared<AlwaysDemand>();
  p.policy = std::make_shared<NegativePolicy>();
  peers.push_back(std::move(p));
  peers.push_back(eq2_peer(100, 2));
  Simulator sim(std::move(peers));
  sim.run(5);
  for (std::size_t t = 0; t < 5; ++t)
    EXPECT_GE(sim.download(0).at(t), 0.0);
}

TEST(Simulator, CapacityScheduleOverridesBaseline) {
  std::vector<PeerSetup> peers;
  auto p = eq2_peer(1000, 2);
  p.capacity_schedule = [](std::uint64_t t) {
    return t < 5 ? 1000.0 : 500.0;
  };
  peers.push_back(std::move(p));
  peers.push_back(eq2_peer(1000, 2));
  Simulator sim(std::move(peers));
  sim.run(10);
  EXPECT_DOUBLE_EQ(sim.offered(0).at(0), 1000.0);
  EXPECT_DOUBLE_EQ(sim.offered(0).at(7), 500.0);
}

TEST(Simulator, ContributionGateSilencesPeer) {
  std::vector<PeerSetup> peers;
  auto p = eq2_peer(1000, 2);
  p.contributes = [](std::uint64_t t) { return t >= 3; };
  peers.push_back(std::move(p));
  peers.push_back(eq2_peer(1000, 2));
  Simulator sim(std::move(peers));
  sim.run(6);
  EXPECT_DOUBLE_EQ(sim.offered(0).at(0), 0.0);
  EXPECT_DOUBLE_EQ(sim.offered(0).at(3), 1000.0);
  // While gated, peer 0 contributed nothing to anyone: user 1's download
  // at slot 0 is only peer 1's equal split between the two requesters.
  EXPECT_DOUBLE_EQ(sim.download(1).at(0), 500.0);
  EXPECT_DOUBLE_EQ(sim.download(0).at(0), 500.0);
}

TEST(Simulator, QuantizationFloorsAllocations) {
  SimConfig config;
  config.quantum_kbps = 30.0;
  std::vector<PeerSetup> peers;
  for (int i = 0; i < 3; ++i) peers.push_back(eq2_peer(100, 3));
  Simulator sim(std::move(peers), config);
  sim.run(5);
  // Equal split would be 33.3 each; quantized to 30.
  EXPECT_NEAR(sim.download(0).at(0), 90.0, 1e-9);
}

TEST(Simulator, EmpiricalGammaTracksDemand) {
  std::vector<PeerSetup> peers;
  auto p = eq2_peer(100, 2);
  p.demand = std::make_shared<BernoulliDemand>(0.3, 11);
  peers.push_back(std::move(p));
  peers.push_back(eq2_peer(100, 2));
  Simulator sim(std::move(peers));
  sim.run(5000);
  EXPECT_NEAR(sim.empirical_gamma(0), 0.3, 0.03);
  EXPECT_DOUBLE_EQ(sim.empirical_gamma(1), 1.0);
}

TEST(Simulator, IsolatedAverageUsesRealizedDemand) {
  std::vector<PeerSetup> peers;
  auto p = eq2_peer(200, 2);
  p.demand = std::make_shared<IntervalDemand>(
      std::vector<IntervalDemand::Interval>{{0, 50}});
  peers.push_back(std::move(p));
  peers.push_back(eq2_peer(100, 2));
  Simulator sim(std::move(peers));
  sim.run(100);
  // Requested half the time at 200 kbps capacity.
  EXPECT_NEAR(sim.isolated_average(0), 100.0, 1e-9);
}

TEST(Simulator, SingleSaturatedPeerKeepsOwnBandwidth) {
  std::vector<PeerSetup> peers;
  peers.push_back(eq2_peer(640, 1));
  Simulator sim(std::move(peers));
  sim.run(20);
  EXPECT_NEAR(sim.average_download(0), 640.0, 1e-9);
}

}  // namespace
}  // namespace fairshare::sim
