// Trace accumulation and smoothing.
#include <gtest/gtest.h>

#include "sim/trace.hpp"

namespace fairshare::sim {
namespace {

TEST(Trace, AppendAndAccess) {
  Trace t;
  EXPECT_EQ(t.size(), 0u);
  t.append(1.0);
  t.append(2.0);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t.at(0), 1.0);
  EXPECT_DOUBLE_EQ(t.at(1), 2.0);
}

TEST(Trace, MeanOverRanges) {
  Trace t;
  for (int i = 1; i <= 4; ++i) t.append(i);
  EXPECT_DOUBLE_EQ(t.mean(), 2.5);
  EXPECT_DOUBLE_EQ(t.mean(0, 2), 1.5);
  EXPECT_DOUBLE_EQ(t.mean(2, 4), 3.5);
  EXPECT_DOUBLE_EQ(t.mean(3, 3), 0.0);    // empty range
  EXPECT_DOUBLE_EQ(t.mean(2, 100), 3.5);  // end clamped
}

TEST(Trace, MeanOfEmptyTraceIsZero) {
  Trace t;
  EXPECT_DOUBLE_EQ(t.mean(), 0.0);
}

TEST(Trace, SmoothedWindowOneIsIdentity) {
  Trace t;
  for (double v : {3.0, 1.0, 4.0, 1.0, 5.0}) t.append(v);
  const auto s = t.smoothed(1);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_DOUBLE_EQ(s[i], t.at(i));
}

TEST(Trace, SmoothedRunningAverage) {
  Trace t;
  for (double v : {2.0, 4.0, 6.0, 8.0}) t.append(v);
  const auto s = t.smoothed(2);
  EXPECT_DOUBLE_EQ(s[0], 2.0);  // partial window
  EXPECT_DOUBLE_EQ(s[1], 3.0);
  EXPECT_DOUBLE_EQ(s[2], 5.0);
  EXPECT_DOUBLE_EQ(s[3], 7.0);
}

TEST(Trace, SmoothedConstantSeriesUnchanged) {
  Trace t;
  for (int i = 0; i < 50; ++i) t.append(7.5);
  for (double v : t.smoothed(10)) EXPECT_DOUBLE_EQ(v, 7.5);
}

TEST(Trace, SmoothedWindowLargerThanSeries) {
  Trace t;
  t.append(1.0);
  t.append(3.0);
  const auto s = t.smoothed(100);
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  EXPECT_DOUBLE_EQ(s[1], 2.0);
}

}  // namespace
}  // namespace fairshare::sim
