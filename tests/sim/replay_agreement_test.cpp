// Sim-vs-real agreement: the same WorkloadTrace replayed through the
// slotted simulator (sim::replay_sim) and against a live paced PeerServer
// over TCP (net::replay_live) must tell the same story — per-user goodput
// and Equation (2) shares within the ±15% tolerance of replay_agrees().
//
// Runs under both serving backends via the `replay` ctest label matrix
// (FAIRSHARE_NET_BACKEND=threads|epoll), like the rest of the net suite.
//
// Parameters are deliberately small and validated: 3 users over a
// 12-slot (0.6 s) horizon, 20000-byte files at 8 Mbit/s wire rate keep a
// full sim+live round under a couple of seconds while leaving each user
// several files of work, enough for pacing shares to express themselves.
#include <gtest/gtest.h>

#include <string>

#include "coding/params.hpp"
#include "net/replay_driver.hpp"
#include "sim/replay.hpp"
#include "sim/workload.hpp"

namespace {

using namespace fairshare;

constexpr std::uint64_t kFileBytes = 20000;
constexpr double kRateKbps = 8000.0;
constexpr double kSlotSeconds = 0.05;
const coding::CodingParams kParams{gf::FieldId::gf2_32, 256};

double overhead() {
  coding::FileInfo shape;
  shape.original_bytes = kFileBytes;
  shape.params = kParams;
  shape.k = coding::chunks_for_bytes(kFileBytes, kParams);
  return net::wire_overhead_factor(shape);
}

sim::ReplayReport run_sim(const sim::WorkloadTrace& trace) {
  sim::SimReplayConfig config;
  config.rate_kbps = kRateKbps;
  config.slot_seconds = kSlotSeconds;
  config.quantize_bytes = kFileBytes;
  config.wire_overhead = overhead();
  return sim::replay_sim(trace, config);
}

sim::ReplayReport run_live(const sim::WorkloadTrace& trace) {
  net::LiveReplayConfig config;
  config.rate_kbps = kRateKbps;
  config.slot_seconds = kSlotSeconds;
  return net::replay_live(trace, kFileBytes, kParams, config);
}

void expect_agreement(const sim::WorkloadTrace& trace, const char* family) {
  const sim::ReplayReport sim_report = run_sim(trace);
  const sim::ReplayReport live_report = run_live(trace);
  EXPECT_EQ(sim_report.transfers_failed, 0u) << family;
  EXPECT_EQ(live_report.transfers_failed, 0u) << family;
  std::string why;
  EXPECT_TRUE(
      sim::replay_agrees(sim_report, live_report, sim::AgreementOptions{}, &why))
      << family << ": " << why << "\nsim: " << sim::to_json(sim_report)
      << "\nlive: " << sim::to_json(live_report);
}

TEST(ReplayAgreement, PoissonFamily) {
  sim::PoissonConfig config;
  config.users = 3;
  config.horizon = 12;
  config.mean_bytes = kFileBytes;
  config.seed = 1;
  expect_agreement(sim::poisson_trace(config), "poisson");
}

TEST(ReplayAgreement, ZipfFamily) {
  sim::ZipfConfig config;
  config.users = 3;
  config.horizon = 12;
  config.events = 24;
  config.mean_bytes = kFileBytes;
  config.seed = 1;
  expect_agreement(sim::zipf_trace(config), "zipf");
}

TEST(ReplayAgreement, FlashCrowdFamily) {
  sim::FlashCrowdConfig config;
  config.users = 3;
  config.horizon = 12;
  config.mean_bytes = kFileBytes;
  config.seed = 1;
  expect_agreement(sim::flash_crowd_trace(config), "flash");
}

// The sim side alone must be bit-stable per seed: same trace + same config
// -> byte-identical JSON, the determinism half of the acceptance bar.
TEST(ReplayAgreement, SimReplayIsDeterministic) {
  sim::FlashCrowdConfig config;
  config.users = 3;
  config.horizon = 12;
  config.mean_bytes = kFileBytes;
  config.seed = 3;
  const sim::WorkloadTrace trace = sim::flash_crowd_trace(config);
  const std::string a = sim::to_json(run_sim(trace));
  const std::string b = sim::to_json(run_sim(trace));
  EXPECT_EQ(a, b);
}

// Negative control: replay_agrees must actually catch divergence and name
// the offending user/quantity, or the family tests above prove nothing.
TEST(ReplayAgreement, DetectsGoodputDivergence) {
  sim::PoissonConfig config;
  config.users = 3;
  config.horizon = 12;
  config.mean_bytes = kFileBytes;
  config.seed = 2;
  const sim::WorkloadTrace trace = sim::poisson_trace(config);
  const sim::ReplayReport a = run_sim(trace);
  sim::ReplayReport b = a;
  ASSERT_FALSE(b.users.empty());
  b.users[0].goodput_bps *= 1.4;  // 40% off, outside the 15% tolerance
  std::string why;
  EXPECT_FALSE(sim::replay_agrees(a, b, sim::AgreementOptions{}, &why));
  EXPECT_NE(why.find("goodput"), std::string::npos) << why;
}

}  // namespace
